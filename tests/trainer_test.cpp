// Tests for GraphTrainer: single- and multi-worker training must learn; the
// pipeline optimization must not change semantics; evaluation metrics wire
// through correctly.

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "flat/graphflat.h"
#include "trainer/trainer.h"

namespace agl::trainer {
namespace {

using subgraph::GraphFeature;

struct Prepared {
  data::Dataset dataset;
  data::FeatureSplits splits;
};

Prepared MakeUugCase(int hops) {
  data::UugLikeOptions opts;
  opts.num_nodes = 300;
  opts.feature_dim = 8;
  opts.attach_edges = 3;
  opts.train_size = 150;
  opts.val_size = 50;
  opts.test_size = 80;
  Prepared p;
  p.dataset = data::MakeUugLike(opts);
  flat::GraphFlatConfig fc;
  fc.hops = hops;
  fc.sampler = {sampling::Strategy::kUniform, 10};
  auto features =
      flat::RunGraphFlatInMemory(fc, p.dataset.nodes, p.dataset.edges);
  AGL_CHECK(features.ok()) << features.status().ToString();
  p.splits = data::SplitFeatures(std::move(features).value(), p.dataset);
  return p;
}

TrainerConfig BaseConfig(const Prepared& p, int workers) {
  TrainerConfig config;
  config.model.type = gnn::ModelType::kGcn;
  config.model.num_layers = 2;
  config.model.in_dim = p.dataset.feature_dim;
  config.model.hidden_dim = 8;
  config.model.out_dim = 2;
  config.task = TaskKind::kBinaryAuc;
  config.num_workers = workers;
  config.batch_size = 16;
  config.epochs = 4;
  config.adam.lr = 0.01f;
  return config;
}

TEST(TrainerTest, SingleWorkerLearnsAboveChance) {
  Prepared p = MakeUugCase(2);
  GraphTrainer trainer(BaseConfig(p, 1));
  auto report = trainer.Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->epochs.empty());
  EXPECT_GT(report->best_val_metric, 0.6);  // well above AUC 0.5
  // Loss decreases from first to last epoch.
  EXPECT_LT(report->epochs.back().mean_train_loss,
            report->epochs.front().mean_train_loss);
}

TEST(TrainerTest, MultiWorkerConvergesToSameLevel) {
  Prepared p = MakeUugCase(2);
  TrainerConfig c1 = BaseConfig(p, 1);
  TrainerConfig c4 = BaseConfig(p, 4);
  c1.epochs = c4.epochs = 5;
  auto r1 = GraphTrainer(c1).Train(p.splits.train, p.splits.val);
  auto r4 = GraphTrainer(c4).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(r1.ok() && r4.ok());
  // Figure 7 property: same final AUC level regardless of worker count.
  EXPECT_NEAR(r1->best_val_metric, r4->best_val_metric, 0.12);
  EXPECT_GT(r4->best_val_metric, 0.6);
}

TEST(TrainerTest, PipelineDoesNotChangeResults) {
  Prepared p = MakeUugCase(2);
  TrainerConfig with = BaseConfig(p, 1);
  with.use_pipeline = true;
  TrainerConfig without = BaseConfig(p, 1);
  without.use_pipeline = false;
  auto a = GraphTrainer(with).Train(p.splits.train, p.splits.val);
  auto b = GraphTrainer(without).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(a.ok() && b.ok());
  // Single worker + deterministic batches: identical trajectories.
  ASSERT_EQ(a->epochs.size(), b->epochs.size());
  for (std::size_t i = 0; i < a->epochs.size(); ++i) {
    EXPECT_NEAR(a->epochs[i].mean_train_loss, b->epochs[i].mean_train_loss,
                1e-5);
  }
}

TEST(TrainerTest, EvaluateUsesFinalState) {
  Prepared p = MakeUugCase(2);
  TrainerConfig config = BaseConfig(p, 1);
  GraphTrainer trainer(config);
  auto report = trainer.Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(report.ok());
  auto test_metric = trainer.Evaluate(report->final_state, p.splits.test);
  ASSERT_TRUE(test_metric.ok());
  EXPECT_GT(*test_metric, 0.55);
}

TEST(TrainerTest, EmptyTrainSetRejected) {
  Prepared p = MakeUugCase(1);
  GraphTrainer trainer(BaseConfig(p, 1));
  auto report = trainer.Train({}, p.splits.val);
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(TrainerTest, EarlyStoppingHonorsPatience) {
  Prepared p = MakeUugCase(1);
  TrainerConfig config = BaseConfig(p, 1);
  config.epochs = 50;
  config.patience = 2;
  auto report = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->epochs.size(), 50u);  // stopped early
}

TEST(TrainerTest, MultiLabelTaskTrains) {
  data::PpiLikeOptions popts;
  popts.num_graphs = 4;
  popts.nodes_per_graph = 60;
  popts.feature_dim = 10;
  popts.num_labels = 12;
  popts.train_graphs = 3;
  popts.val_graphs = 1;
  data::Dataset ds = data::MakePpiLike(popts);
  flat::GraphFlatConfig fc;
  fc.hops = 1;
  fc.sampler = {sampling::Strategy::kUniform, 8};
  auto features = flat::RunGraphFlatInMemory(fc, ds.nodes, ds.edges);
  ASSERT_TRUE(features.ok());
  auto splits = data::SplitFeatures(std::move(features).value(), ds);
  ASSERT_FALSE(splits.train.empty());

  TrainerConfig config;
  config.model.type = gnn::ModelType::kGraphSage;
  config.model.num_layers = 1;
  config.model.in_dim = 10;
  config.model.hidden_dim = 16;
  config.model.out_dim = 12;
  config.task = TaskKind::kMultiLabel;
  config.epochs = 5;
  config.batch_size = 32;
  config.adam.lr = 0.02f;
  auto report = GraphTrainer(config).Train(splits.train, splits.val);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->best_val_metric, 0.5);  // micro-F1 beats random
}

TEST(TrainerTest, SingleLabelAccuracyTask) {
  data::CoraLikeOptions copts;
  copts.num_nodes = 200;
  copts.feature_dim = 32;
  copts.num_classes = 4;
  copts.train_per_class = 15;
  copts.val_size = 40;
  copts.test_size = 40;
  data::Dataset ds = data::MakeCoraLike(copts);
  flat::GraphFlatConfig fc;
  fc.hops = 2;
  auto features = flat::RunGraphFlatInMemory(fc, ds.nodes, ds.edges);
  ASSERT_TRUE(features.ok());
  auto splits = data::SplitFeatures(std::move(features).value(), ds);

  TrainerConfig config;
  config.model.type = gnn::ModelType::kGcn;
  config.model.num_layers = 2;
  config.model.in_dim = 32;
  config.model.hidden_dim = 16;
  config.model.out_dim = 4;
  config.task = TaskKind::kSingleLabel;
  config.epochs = 8;
  config.batch_size = 16;
  config.adam.lr = 0.02f;
  auto report = GraphTrainer(config).Train(splits.train, splits.val);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->best_val_metric, 0.4);  // 4 classes, chance = 0.25
}

TEST(TaskMetricTest, BinaryAucUsesClassOneMargin) {
  gnn::PreparedBatch batch;
  batch.labels = {1, 0, 1, 0};
  tensor::Tensor logits(4, 2,
                        {0.f, 2.f,   // strongly class 1
                         2.f, 0.f,   // strongly class 0
                         0.f, 1.f,   // class 1
                         1.f, 0.f}); // class 0
  EXPECT_NEAR(TaskMetric(TaskKind::kBinaryAuc, logits, batch), 1.0, 1e-9);
}

}  // namespace
}  // namespace agl::trainer
