// Runtime coverage for the annotated locking layer (common/mutex.h): the
// wrappers must behave exactly like the std primitives they hold. The
// *static* half of the contract — that the annotations reject an unlocked
// access at compile time — is proven by the negative-compile harness in
// tests/negative_compile/ (ctest -L negative_compile, clang legs only).

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace agl {
namespace {

TEST(MutexTest, ProtectsCounterAcrossThreads) {
  common::Mutex mu;
  int counter GUARDED_BY(mu) = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        common::MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  common::MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReportsContention) {
  common::Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());  // std::mutex: self-try while held fails
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitReleasesAndReacquiresTheMutex) {
  common::Mutex mu;
  common::CondVar cv;
  bool ready GUARDED_BY(mu) = false;

  std::thread waker([&] {
    // If Wait() failed to release the mutex, this Lock would deadlock and
    // the test would time out.
    common::MutexLock lock(&mu);
    ready = true;
    cv.Signal();
  });

  {
    common::MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);  // reacquired: guarded read is safe here
  }
  waker.join();
}

TEST(CondVarTest, SignalAllWakesEveryWaiter) {
  common::Mutex mu;
  common::CondVar cv;
  bool go GUARDED_BY(mu) = false;
  int awake GUARDED_BY(mu) = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      common::MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++awake;
    });
  }
  {
    common::MutexLock lock(&mu);
    go = true;
  }
  cv.SignalAll();
  for (auto& t : waiters) t.join();
  common::MutexLock lock(&mu);
  EXPECT_EQ(awake, kWaiters);
}

TEST(CondVarTest, TwoCondVarsShareOneMutex) {
  // The BoundedQueue shape: one mutex, a not_full/not_empty pair.
  common::Mutex mu;
  common::CondVar ping;
  common::CondVar pong;
  int turn GUARDED_BY(mu) = 0;
  constexpr int kRounds = 100;

  std::thread other([&] {
    common::MutexLock lock(&mu);
    while (turn < 2 * kRounds) {
      while (turn % 2 == 0 && turn < 2 * kRounds) ping.Wait(&mu);
      if (turn >= 2 * kRounds) break;
      ++turn;
      pong.Signal();
    }
  });

  {
    common::MutexLock lock(&mu);
    while (turn < 2 * kRounds) {
      ++turn;
      ping.Signal();
      while (turn % 2 == 1) pong.Wait(&mu);
    }
  }
  ping.SignalAll();
  other.join();
  common::MutexLock lock(&mu);
  EXPECT_EQ(turn, 2 * kRounds);
}

}  // namespace
}  // namespace agl
