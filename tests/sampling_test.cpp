// Tests for the neighbor sampling framework.

#include <gtest/gtest.h>

#include <map>

#include "sampling/sampler.h"

namespace agl::sampling {
namespace {

std::vector<float> Weights(std::initializer_list<float> w) { return w; }

TEST(StrategyTest, ParseRoundTrip) {
  for (Strategy s : {Strategy::kNone, Strategy::kUniform, Strategy::kWeighted,
                     Strategy::kTopK}) {
    auto parsed = ParseStrategy(StrategyName(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(ParseStrategy("bogus").ok());
}

TEST(SamplerTest, NoneKeepsEverything) {
  auto sampler = MakeSampler({Strategy::kNone, 2});
  Rng rng(1);
  auto w = Weights({1, 2, 3, 4, 5});
  auto kept = sampler->Sample({w.data(), w.size()}, &rng);
  EXPECT_EQ(kept.size(), 5u);
}

TEST(SamplerTest, UniformRespectsCap) {
  auto sampler = MakeSampler({Strategy::kUniform, 3});
  Rng rng(2);
  auto w = Weights({1, 1, 1, 1, 1, 1, 1, 1});
  auto kept = sampler->Sample({w.data(), w.size()}, &rng);
  EXPECT_EQ(kept.size(), 3u);
  // Sorted ascending and in range.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_LT(kept[i], 8u);
    if (i > 0) {
      EXPECT_LT(kept[i - 1], kept[i]);
    }
  }
}

TEST(SamplerTest, UniformKeepsAllWhenUnderCap) {
  auto sampler = MakeSampler({Strategy::kUniform, 10});
  Rng rng(3);
  auto w = Weights({1, 1, 1});
  EXPECT_EQ(sampler->Sample({w.data(), w.size()}, &rng).size(), 3u);
}

TEST(SamplerTest, UniformIsApproximatelyUniform) {
  auto sampler = MakeSampler({Strategy::kUniform, 1});
  Rng rng(4);
  std::map<std::size_t, int> counts;
  auto w = Weights({1, 1, 1, 1});
  for (int trial = 0; trial < 4000; ++trial) {
    auto kept = sampler->Sample({w.data(), w.size()}, &rng);
    ASSERT_EQ(kept.size(), 1u);
    counts[kept[0]]++;
  }
  for (const auto& [idx, c] : counts) {
    EXPECT_NEAR(c, 1000, 150) << "index " << idx;
  }
  EXPECT_EQ(counts.size(), 4u);
}

TEST(SamplerTest, WeightedPrefersHeavyEdges) {
  auto sampler = MakeSampler({Strategy::kWeighted, 1});
  Rng rng(5);
  auto w = Weights({0.01f, 0.01f, 10.f});
  int heavy = 0;
  for (int trial = 0; trial < 500; ++trial) {
    auto kept = sampler->Sample({w.data(), w.size()}, &rng);
    if (kept[0] == 2) ++heavy;
  }
  EXPECT_GT(heavy, 450);  // overwhelmingly the heavy edge
}

TEST(SamplerTest, WeightedReturnsDistinctIndices) {
  auto sampler = MakeSampler({Strategy::kWeighted, 4});
  Rng rng(6);
  auto w = Weights({1, 2, 3, 4, 5, 6});
  auto kept = sampler->Sample({w.data(), w.size()}, &rng);
  EXPECT_EQ(kept.size(), 4u);
  for (std::size_t i = 1; i < kept.size(); ++i) {
    EXPECT_LT(kept[i - 1], kept[i]);
  }
}

TEST(SamplerTest, TopKDeterministicLargestWeights) {
  auto sampler = MakeSampler({Strategy::kTopK, 2});
  Rng rng(7);
  auto w = Weights({0.5f, 3.f, 1.f, 2.f});
  auto kept = sampler->Sample({w.data(), w.size()}, &rng);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 1u);  // weight 3
  EXPECT_EQ(kept[1], 3u);  // weight 2
}

TEST(SamplerTest, TopKTieBreaksOnIndex) {
  auto sampler = MakeSampler({Strategy::kTopK, 2});
  Rng rng(8);
  auto w = Weights({1.f, 1.f, 1.f});
  auto kept = sampler->Sample({w.data(), w.size()}, &rng);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 0u);
  EXPECT_EQ(kept[1], 1u);
}

TEST(SamplerTest, EmptyCandidatesEmptyResult) {
  for (Strategy s : {Strategy::kNone, Strategy::kUniform, Strategy::kWeighted,
                     Strategy::kTopK}) {
    auto sampler = MakeSampler({s, 3});
    Rng rng(9);
    EXPECT_TRUE(sampler->Sample({}, &rng).empty());
  }
}

TEST(SamplerTest, UnlimitedCapKeepsAll) {
  for (Strategy s : {Strategy::kUniform, Strategy::kWeighted,
                     Strategy::kTopK}) {
    auto sampler = MakeSampler({s, 0});
    Rng rng(10);
    auto w = Weights({1, 2, 3});
    EXPECT_EQ(sampler->Sample({w.data(), w.size()}, &rng).size(), 3u);
  }
}

}  // namespace
}  // namespace agl::sampling
