// End-to-end integration: the full AGL pipeline of Figure 6 — GraphFlat on
// raw tables -> DFS -> GraphTrainer on the PS -> model state -> GraphInfer
// over the whole graph — plus the baseline cross-checks.

#include <gtest/gtest.h>

#include <filesystem>
#include <unordered_map>
#include <unordered_set>

#include "agl/agl.h"
#include "baseline/full_graph.h"
#include "data/dataset.h"
#include "nn/metrics.h"

namespace agl {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("agl_e2e_" + std::to_string(::getpid())))
                .string();
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::string root_;
};

TEST_F(PipelineTest, FlatTrainInferEndToEnd) {
  // 1. Data: a small UUG-like social graph.
  data::UugLikeOptions dopts;
  dopts.num_nodes = 250;
  dopts.feature_dim = 8;
  dopts.attach_edges = 3;
  dopts.train_size = 120;
  dopts.val_size = 40;
  dopts.test_size = 60;
  data::Dataset ds = data::MakeUugLike(dopts);

  // 2. GraphFlat: k-hop neighborhoods onto the DFS.
  auto dfs = mr::LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  flat::GraphFlatConfig fconfig;
  fconfig.hops = 2;
  fconfig.sampler = {sampling::Strategy::kUniform, 10};
  auto fstats = GraphFlat(fconfig, ds.nodes, ds.edges, &*dfs, "features");
  ASSERT_TRUE(fstats.ok()) << fstats.status().ToString();
  EXPECT_EQ(fstats->num_features, ds.num_nodes());  // all labeled

  // 3. Load back and split.
  auto features = LoadGraphFeatures(*dfs, "features");
  ASSERT_TRUE(features.ok());
  auto splits = data::SplitFeatures(std::move(features).value(), ds);
  ASSERT_EQ(splits.train.size(), 120u);

  // 4. GraphTrainer with 2 workers on the parameter server.
  trainer::TrainerConfig tconfig;
  tconfig.model.type = gnn::ModelType::kGcn;
  tconfig.model.num_layers = 2;
  tconfig.model.in_dim = ds.feature_dim;
  tconfig.model.hidden_dim = 8;
  tconfig.model.out_dim = 2;
  tconfig.task = trainer::TaskKind::kBinaryAuc;
  tconfig.num_workers = 2;
  tconfig.epochs = 5;
  tconfig.batch_size = 16;
  tconfig.adam.lr = 0.02f;
  auto report = GraphTrainer(tconfig, splits.train, splits.val);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->best_val_metric, 0.6);

  // 5. Model state round-trips through serialization (DFS storage).
  const std::string state_bytes = SerializeState(report->final_state);
  auto state = ParseState(state_bytes);
  ASSERT_TRUE(state.ok());

  // 6. GraphInfer over the whole graph.
  infer::InferConfig iconfig;
  iconfig.model = tconfig.model;
  auto inference = GraphInfer(iconfig, *state, ds.nodes, ds.edges);
  ASSERT_TRUE(inference.ok()) << inference.status().ToString();
  ASSERT_EQ(inference->scores.size(), ds.nodes.size());

  // 7. The inferred scores reproduce the trainer's test metric: AUC over
  // the test ids must also beat chance.
  std::unordered_map<uint64_t, int> label_of;
  for (const auto& n : ds.nodes) label_of[n.id] = static_cast<int>(n.label);
  std::vector<float> scores;
  std::vector<int> labels;
  std::unordered_set<uint64_t> test_ids(ds.test_ids.begin(),
                                        ds.test_ids.end());
  for (const auto& [id, score] : inference->scores) {
    if (test_ids.count(id) == 0) continue;
    scores.push_back(score[1]);
    labels.push_back(label_of[id]);
  }
  ASSERT_EQ(scores.size(), ds.test_ids.size());
  EXPECT_GT(nn::Auc(scores, labels), 0.6);
}

TEST_F(PipelineTest, AglMatchesFullGraphBaselineEffectiveness) {
  // Table 3 property: the AGL-trained model reaches the same metric level
  // as the in-memory full-graph engine on the same data.
  data::CoraLikeOptions copts;
  copts.num_nodes = 300;
  copts.feature_dim = 48;
  copts.num_classes = 4;
  copts.train_per_class = 20;
  copts.val_size = 60;
  copts.test_size = 60;
  data::Dataset ds = data::MakeCoraLike(copts);

  gnn::ModelConfig model;
  model.type = gnn::ModelType::kGcn;
  model.num_layers = 2;
  model.in_dim = ds.feature_dim;
  model.hidden_dim = 16;
  model.out_dim = 4;

  // Baseline: full-graph engine.
  baseline::FullGraphConfig bconfig;
  bconfig.model = model;
  bconfig.task = trainer::TaskKind::kSingleLabel;
  bconfig.epochs = 60;
  bconfig.adam.lr = 0.02f;
  auto bl = baseline::TrainFullGraph(bconfig, ds);
  ASSERT_TRUE(bl.ok()) << bl.status().ToString();

  // AGL: GraphFlat + subgraph trainer.
  flat::GraphFlatConfig fconfig;
  fconfig.hops = 2;
  auto features =
      flat::RunGraphFlatInMemory(fconfig, ds.nodes, ds.edges);
  ASSERT_TRUE(features.ok());
  auto splits = data::SplitFeatures(std::move(features).value(), ds);
  trainer::TrainerConfig tconfig;
  tconfig.model = model;
  tconfig.task = trainer::TaskKind::kSingleLabel;
  tconfig.epochs = 12;
  tconfig.batch_size = 20;
  tconfig.adam.lr = 0.02f;
  auto agl_report = GraphTrainer(tconfig, splits.train, splits.val);
  ASSERT_TRUE(agl_report.ok());

  // Both beat chance clearly and land within a band of each other.
  EXPECT_GT(bl->val_metric, 0.5);
  EXPECT_GT(agl_report->best_val_metric, 0.5);
  EXPECT_NEAR(agl_report->best_val_metric, bl->val_metric, 0.2);
}

}  // namespace
}  // namespace agl
