// Tests for GraphFlat: the MapReduce k-hop pipeline must be semantically
// equivalent to the reference single-machine extractor (ExtractKHop), and
// the skew machinery (re-indexing + sampling) must bound neighborhood size
// while preserving merge soundness.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <unordered_map>

#include "common/failpoint.h"
#include "data/dataset.h"
#include "flat/graphflat.h"
#include "flat/state.h"
#include "mr/local_dfs.h"
#include "subgraph/khop.h"

namespace agl::flat {
namespace {

using subgraph::GraphFeature;

std::vector<NodeRecord> ChainNodes(int n) {
  std::vector<NodeRecord> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back({static_cast<NodeId>(i),
                     {static_cast<float>(i), 1.f},
                     i % 2,
                     {}});
  }
  return nodes;
}

std::vector<EdgeRecord> ChainEdges(int n) {
  std::vector<EdgeRecord> edges;
  for (int i = 0; i + 1 < n; ++i) {
    edges.push_back({static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                     1.f,
                     {}});
  }
  return edges;
}

TEST(TablesTest, NodeRecordRoundTrip) {
  NodeRecord n{7, {1.f, 2.f}, 3, {0.f, 1.f}};
  auto parsed = NodeRecord::Parse(n.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == n);
}

TEST(TablesTest, EdgeRecordRoundTrip) {
  EdgeRecord e{1, 2, 0.25f, {5.f}};
  auto parsed = EdgeRecord::Parse(e.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == e);
}

TEST(StateTest, MergeIsSetUnion) {
  SubgraphState a(1), b(1);
  a.AddNode({1, {1.f}, 0, {}});
  a.AddNode({2, {2.f}, -1, {}});
  a.AddEdge({2, 1, 1.f, {}});
  b.AddNode({2, {2.f}, -1, {}});
  b.AddNode({3, {3.f}, -1, {}});
  b.AddEdge({3, 2, 1.f, {}});
  a.Merge(b);
  EXPECT_EQ(a.num_nodes(), 3);
  EXPECT_EQ(a.num_edges(), 2);
}

TEST(StateTest, MergeIsIdempotentAndCommutative) {
  auto make = [](int variant) {
    SubgraphState s(1);
    s.AddNode({1, {1.f}, 0, {}});
    if (variant > 0) {
      s.AddNode({2, {2.f}, -1, {}});
      s.AddEdge({2, 1, 1.f, {}});
    }
    return s;
  };
  SubgraphState ab = make(0);
  ab.Merge(make(1));
  SubgraphState ba = make(1);
  ba.Merge(make(0));
  EXPECT_TRUE(ab == ba);
  SubgraphState twice = ab;
  twice.Merge(ab);
  EXPECT_TRUE(twice == ab);
}

TEST(StateTest, SerializationCanonical) {
  // Same logical state built in different orders serializes identically.
  SubgraphState a(5), b(5);
  a.AddNode({5, {0.f}, 1, {}});
  a.AddNode({9, {1.f}, -1, {}});
  a.AddEdge({9, 5, 1.f, {}});
  b.AddEdge({9, 5, 1.f, {}});
  b.AddNode({9, {1.f}, -1, {}});
  b.AddNode({5, {0.f}, 1, {}});
  EXPECT_EQ(a.Serialize(), b.Serialize());
  auto parsed = SubgraphState::Parse(a.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == a);
}

TEST(StateTest, ToGraphFeatureDropsDanglingEdges) {
  SubgraphState s(1);
  s.AddNode({1, {1.f}, 0, {}});
  s.AddNode({2, {2.f}, -1, {}});
  s.AddEdge({2, 1, 1.f, {}});
  s.AddEdge({77, 2, 1.f, {}});  // source 77 has no features
  auto gf = s.ToGraphFeature(1, 0);
  ASSERT_TRUE(gf.ok());
  EXPECT_EQ(gf->num_nodes(), 2);
  EXPECT_EQ(gf->num_edges(), 1);
}

GraphFlatConfig SmallConfig(int hops) {
  GraphFlatConfig config;
  config.hops = hops;
  config.job.num_workers = 4;
  config.job.num_map_tasks = 3;
  config.job.num_reduce_tasks = 5;
  return config;
}

/// Canonical comparable form of a GraphFeature.
struct CanonicalFeature {
  uint64_t target;
  int64_t label;
  std::set<uint64_t> nodes;
  std::set<std::pair<uint64_t, uint64_t>> edges;

  explicit CanonicalFeature(const GraphFeature& gf)
      : target(gf.target_id), label(gf.label) {
    nodes.insert(gf.node_ids.begin(), gf.node_ids.end());
    for (const auto& e : gf.edges) {
      edges.insert({gf.node_ids[e.src], gf.node_ids[e.dst]});
    }
  }
  bool operator==(const CanonicalFeature& o) const {
    return target == o.target && label == o.label && nodes == o.nodes &&
           edges == o.edges;
  }
};

TEST(GraphFlatTest, MatchesReferenceExtractorOnChain) {
  const int n = 12;
  auto nodes = ChainNodes(n);
  auto edges = ChainEdges(n);
  for (int hops : {1, 2, 3}) {
    auto features = RunGraphFlatInMemory(SmallConfig(hops), nodes, edges);
    ASSERT_TRUE(features.ok()) << features.status().ToString();
    ASSERT_EQ(static_cast<int>(features->size()), n);  // all labeled

    // Reference: single-machine k-hop extraction on the same graph.
    data::Dataset ds;
    ds.feature_dim = 2;
    ds.nodes = nodes;
    ds.edges = edges;
    auto graph = data::BuildGraph(ds);
    ASSERT_TRUE(graph.ok());
    for (const GraphFeature& gf : *features) {
      subgraph::KHopOptions opts;
      opts.k = hops;
      auto ref = subgraph::ExtractKHop(*graph, gf.target_id, opts);
      ASSERT_TRUE(ref.ok());
      EXPECT_TRUE(CanonicalFeature(gf) == CanonicalFeature(*ref))
          << "target " << gf.target_id << " hops " << hops;
    }
  }
}

TEST(GraphFlatTest, MatchesReferenceOnRandomGraph) {
  data::UugLikeOptions opts;
  opts.num_nodes = 60;
  opts.feature_dim = 4;
  opts.attach_edges = 3;
  data::Dataset ds = data::MakeUugLike(opts);
  auto features = RunGraphFlatInMemory(SmallConfig(2), ds.nodes, ds.edges);
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  auto graph = data::BuildGraph(ds);
  ASSERT_TRUE(graph.ok());
  ASSERT_FALSE(features->empty());
  for (const GraphFeature& gf : *features) {
    subgraph::KHopOptions kopts;
    kopts.k = 2;
    auto ref = subgraph::ExtractKHop(*graph, gf.target_id, kopts);
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(CanonicalFeature(gf) == CanonicalFeature(*ref))
        << "target " << gf.target_id;
  }
}

TEST(GraphFlatTest, DeterministicAcrossRuns) {
  auto nodes = ChainNodes(10);
  auto edges = ChainEdges(10);
  auto a = RunGraphFlatInMemory(SmallConfig(2), nodes, edges);
  auto b = RunGraphFlatInMemory(SmallConfig(2), nodes, edges);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE((*a)[i] == (*b)[i]);
  }
}

TEST(GraphFlatTest, SurvivesInjectedFaults) {
  auto nodes = ChainNodes(10);
  auto edges = ChainEdges(10);
  GraphFlatConfig config = SmallConfig(2);
  fail::ScopedFailpoint map_fault("mr.map", fail::ErrorConfig(0.3));
  fail::ScopedFailpoint reduce_fault("mr.reduce", fail::ErrorConfig(0.3));
  config.job.max_task_attempts = 15;
  auto faulty = RunGraphFlatInMemory(config, nodes, edges);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  auto clean = RunGraphFlatInMemory(SmallConfig(2), nodes, edges);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(faulty->size(), clean->size());
  for (std::size_t i = 0; i < faulty->size(); ++i) {
    EXPECT_TRUE((*faulty)[i] == (*clean)[i]) << "feature " << i;
  }
}

TEST(GraphFlatTest, SamplingBoundsNeighborhoodSize) {
  // Star graph: hub node 0 with 50 in-edges.
  std::vector<NodeRecord> nodes;
  std::vector<EdgeRecord> edges;
  nodes.push_back({0, {0.f}, 1, {}});
  for (int i = 1; i <= 50; ++i) {
    nodes.push_back({static_cast<NodeId>(i), {static_cast<float>(i)}, 0, {}});
    edges.push_back({static_cast<NodeId>(i), 0, 1.f, {}});
  }
  GraphFlatConfig config = SmallConfig(1);
  config.sampler = {sampling::Strategy::kUniform, 8};
  auto features = RunGraphFlatInMemory(config, nodes, edges);
  ASSERT_TRUE(features.ok());
  for (const GraphFeature& gf : *features) {
    if (gf.target_id == 0) {
      EXPECT_LE(gf.num_nodes(), 9);  // target + at most 8 sampled
      EXPECT_GE(gf.num_nodes(), 2);
    }
  }
}

TEST(GraphFlatTest, LabeledTargetsOnly) {
  auto nodes = ChainNodes(6);
  nodes[1].label = -1;
  nodes[3].label = -1;
  auto features =
      RunGraphFlatInMemory(SmallConfig(1), nodes, ChainEdges(6));
  ASSERT_TRUE(features.ok());
  std::set<NodeId> targets;
  for (const auto& gf : *features) targets.insert(gf.target_id);
  EXPECT_EQ(targets, (std::set<NodeId>{0, 2, 4, 5}));
}

TEST(GraphFlatTest, AllNodesTargets) {
  auto nodes = ChainNodes(6);
  nodes[1].label = -1;
  GraphFlatConfig config = SmallConfig(1);
  config.targets = GraphFlatConfig::Targets::kAllNodes;
  auto features = RunGraphFlatInMemory(config, nodes, ChainEdges(6));
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->size(), 6u);
}

TEST(GraphFlatTest, ReindexingPreservesResultUnderTopK) {
  // Re-indexing samples a hub's records per suffix shard independently of
  // the hub's own round-0 edge sampling, so the exact neighborhood content
  // is not pinned down — the guaranteed properties are the size bound,
  // full target coverage, and determinism (byte-identical across runs,
  // which the sharding suite extends to shard-count invariance).
  std::vector<NodeRecord> nodes;
  std::vector<EdgeRecord> edges;
  nodes.push_back({0, {0.f}, 1, {}});
  for (int i = 1; i <= 40; ++i) {
    nodes.push_back({static_cast<NodeId>(i), {static_cast<float>(i)}, 0, {}});
    edges.push_back({static_cast<NodeId>(i), 0,
                     static_cast<float>(i), {}});
  }
  GraphFlatConfig config = SmallConfig(1);
  config.sampler = {sampling::Strategy::kTopK, 8};
  config.hub_threshold = 10;  // force the re-indexing path
  config.reindex_fanout = 4;
  auto features = RunGraphFlatInMemory(config, nodes, edges);
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  ASSERT_EQ(features->size(), 41u);
  for (const auto& gf : *features) {
    if (gf.target_id == 0) {
      EXPECT_LE(gf.num_nodes(), 9);  // target + at most the sampler cap
      EXPECT_GE(gf.num_nodes(), 1);
    }
  }
  auto again = RunGraphFlatInMemory(config, nodes, edges);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), features->size());
  for (std::size_t i = 0; i < features->size(); ++i) {
    EXPECT_EQ((*again)[i].Serialize(), (*features)[i].Serialize())
        << "feature " << i;
  }
}

TEST(ReindexTest, HubKeysSplitAndRestored) {
  GraphFlatConfig config;
  config.hub_threshold = 5;
  config.reindex_fanout = 4;
  config.sampler = {sampling::Strategy::kUniform, 6};
  config.job.num_reduce_tasks = 4;
  std::vector<mr::KeyValue> records;
  // 20 in-edge records for hub key "7", 2 for key "8".
  const auto in_edge = [](const EdgeRecord& e) {
    std::string value("I");
    value += e.Serialize();
    return value;
  };
  for (int i = 0; i < 20; ++i) {
    EdgeRecord e{static_cast<NodeId>(100 + i), 7, 1.f, {}};
    records.push_back({"7", in_edge(e)});
  }
  for (int i = 0; i < 2; ++i) {
    EdgeRecord e{static_cast<NodeId>(200 + i), 8, 1.f, {}};
    records.push_back({"8", in_edge(e)});
  }
  auto result = ReindexAndSampleHubKeys(config, std::move(records), 0);
  ASSERT_TRUE(result.ok());
  int hub_count = 0, other_count = 0;
  for (const auto& kv : *result) {
    EXPECT_EQ(kv.key.find('#'), std::string::npos)
        << "suffix not inverted: " << kv.key;
    if (kv.key == "7") ++hub_count;
    if (kv.key == "8") ++other_count;
  }
  EXPECT_EQ(other_count, 2);         // non-hub untouched
  EXPECT_LE(hub_count, 8);           // sampled down (<= ~cap)
  EXPECT_GE(hub_count, 1);
}

TEST(GraphFlatTest, DfsOutputRoundTrip) {
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("agl_flat_dfs_" + std::to_string(::getpid())))
          .string();
  auto dfs = mr::LocalDfs::Open(root);
  ASSERT_TRUE(dfs.ok());
  auto stats = RunGraphFlat(SmallConfig(2), ChainNodes(8), ChainEdges(8),
                            &*dfs, "train_features");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->num_features, 8);
  EXPECT_GT(stats->total_edges, 0);
  auto records = dfs->ReadDataset("train_features");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 8u);
  for (const std::string& bytes : *records) {
    EXPECT_TRUE(GraphFeature::Parse(bytes).ok());
  }
  std::filesystem::remove_all(root);
}

TEST(GraphFlatTest, EmptyNodeTableRejected) {
  auto result = RunGraphFlatInMemory(SmallConfig(1), {}, {});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace agl::flat
