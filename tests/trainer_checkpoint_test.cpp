// Mid-epoch checkpoint/resume tests: the kill-and-resume property (a run
// crashed at batch k and resumed from the rolling "-mid" checkpoint ends
// bit-identical to the uninterrupted run) across the deterministic modes,
// plus checkpoint-format rejection (corruption, fingerprint mismatch) and
// the config validations.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "data/dataset.h"
#include "flat/graphflat.h"
#include "mr/local_dfs.h"
#include "trainer/checkpoint.h"
#include "trainer/feature_source.h"
#include "trainer/trainer.h"

namespace agl::trainer {
namespace {

// --- Checkpoint format ------------------------------------------------------

tensor::Tensor FilledTensor(int64_t rows, int64_t cols, float start) {
  tensor::Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) t.data()[i] = start + 0.25f * i;
  return t;
}

TrainCheckpoint SampleCheckpoint() {
  TrainCheckpoint c;
  c.fingerprint = 0xfeedface;
  c.epoch = 2;
  c.tick = 6;
  c.best_val_metric = 0.875;
  c.bad_evals = 1;
  c.cursors.resize(2);
  c.cursors[0] = {6, 1.5, "12345 67 state-a"};
  c.cursors[1] = {6, 2.25, "99 1 state-b"};
  ps::ExportedParam p0;
  p0.value = FilledTensor(2, 3, 1.f);
  p0.opt_state.t = 11;
  p0.opt_state.m = FilledTensor(2, 3, -1.f);
  p0.opt_state.v = FilledTensor(2, 3, 0.5f);
  c.ps_state.emplace("layer0.w", std::move(p0));
  ps::ExportedParam p1;
  p1.value = FilledTensor(1, 3, 4.f);
  c.ps_state.emplace("layer0.b", std::move(p1));
  return c;
}

TEST(TrainCheckpointFormat, RoundTrip) {
  const TrainCheckpoint c = SampleCheckpoint();
  auto parsed = ParseTrainCheckpoint(SerializeTrainCheckpoint(c),
                                     c.fingerprint);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->fingerprint, c.fingerprint);
  EXPECT_EQ(parsed->epoch, c.epoch);
  EXPECT_EQ(parsed->tick, c.tick);
  EXPECT_EQ(parsed->best_val_metric, c.best_val_metric);
  EXPECT_EQ(parsed->bad_evals, c.bad_evals);
  ASSERT_EQ(parsed->cursors.size(), c.cursors.size());
  for (std::size_t i = 0; i < c.cursors.size(); ++i) {
    EXPECT_EQ(parsed->cursors[i].next_batch, c.cursors[i].next_batch);
    EXPECT_EQ(parsed->cursors[i].loss_sum, c.cursors[i].loss_sum);
    EXPECT_EQ(parsed->cursors[i].rng_state, c.cursors[i].rng_state);
  }
  ASSERT_EQ(parsed->ps_state.size(), c.ps_state.size());
  for (const auto& [name, param] : c.ps_state) {
    const ps::ExportedParam& got = parsed->ps_state.at(name);
    EXPECT_TRUE(got.value.AllClose(param.value, 0.f)) << name;
    EXPECT_EQ(got.opt_state.t, param.opt_state.t) << name;
    EXPECT_TRUE(got.opt_state.m.AllClose(param.opt_state.m, 0.f)) << name;
    EXPECT_TRUE(got.opt_state.v.AllClose(param.opt_state.v, 0.f)) << name;
  }
}

TEST(TrainCheckpointFormat, BadMagicIsCorruption) {
  std::string bytes = SerializeTrainCheckpoint(SampleCheckpoint());
  bytes[0] = 'X';
  auto parsed = ParseTrainCheckpoint(bytes, 0xfeedface);
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
}

TEST(TrainCheckpointFormat, EveryTruncationIsCorruption) {
  // Cut the serialized checkpoint at every byte: a torn write must never
  // parse into a state the trainer would resume from.
  const std::string full = SerializeTrainCheckpoint(SampleCheckpoint());
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    auto parsed = ParseTrainCheckpoint(full.substr(0, cut), 0xfeedface);
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption)
        << "cut at " << cut;
  }
}

TEST(TrainCheckpointFormat, TrailingBytesAreCorruption) {
  std::string bytes = SerializeTrainCheckpoint(SampleCheckpoint());
  bytes.push_back('\0');
  EXPECT_EQ(ParseTrainCheckpoint(bytes, 0xfeedface).status().code(),
            StatusCode::kCorruption);
}

TEST(TrainCheckpointFormat, FingerprintMismatchIsFailedPrecondition) {
  const std::string bytes = SerializeTrainCheckpoint(SampleCheckpoint());
  auto parsed = ParseTrainCheckpoint(bytes, 0xfeedface + 1);
  EXPECT_EQ(parsed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TrainCheckpointFormat, MidCheckpointNaming) {
  EXPECT_EQ(MidCheckpointName("checkpoint"), "checkpoint-mid");
}

// --- Kill-and-resume --------------------------------------------------------

struct Prepared {
  data::Dataset dataset;
  data::FeatureSplits splits;
};

Prepared MakeCase() {
  data::UugLikeOptions opts;
  opts.num_nodes = 240;
  opts.feature_dim = 8;
  opts.train_size = 128;
  opts.val_size = 40;
  opts.test_size = 40;
  Prepared p;
  p.dataset = data::MakeUugLike(opts);
  flat::GraphFlatConfig fc;
  fc.hops = 1;
  auto features =
      flat::RunGraphFlatInMemory(fc, p.dataset.nodes, p.dataset.edges);
  AGL_CHECK(features.ok());
  p.splits = data::SplitFeatures(std::move(features).value(), p.dataset);
  return p;
}

TrainerConfig BaseConfig(const Prepared& p, SyncMode mode, int workers) {
  TrainerConfig config;
  config.model.type = gnn::ModelType::kGcn;
  config.model.num_layers = 1;
  config.model.in_dim = p.dataset.feature_dim;
  config.model.hidden_dim = 8;
  config.model.out_dim = 2;
  // Dropout on: resume must also restore the per-worker RNG streams, not
  // just the weights, to stay bit-exact.
  config.model.dropout = 0.25f;
  config.task = TaskKind::kBinaryAuc;
  config.sync_mode = mode;
  config.staleness_bound = 0;
  config.num_workers = workers;
  config.batch_size = 8;
  config.epochs = 3;
  config.checkpoint_every_batches = 2;
  return config;
}

void ExpectStateBitIdentical(
    const std::map<std::string, tensor::Tensor>& a,
    const std::map<std::string, tensor::Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, value] : a) {
    ASSERT_TRUE(b.count(key)) << key;
    EXPECT_TRUE(b.at(key).AllClose(value, 0.f)) << key;
  }
}

class KillResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (std::filesystem::temp_directory_path() /
             ("agl_ckpt_" + std::string(info->name()) + "_" +
              std::to_string(::getpid())))
                .string();
  }
  void TearDown() override {
    fail::FailpointRegistry::Global().ClearAll();
    std::filesystem::remove_all(root_);
  }

  mr::LocalDfs OpenDfs(const std::string& sub) {
    auto dfs = mr::LocalDfs::Open(root_ + "/" + sub);
    AGL_CHECK(dfs.ok());
    return std::move(dfs).value();
  }

  std::string root_;
};

TEST_F(KillResumeTest, ResumeIsBitExactAcrossModesAndWorkerCounts) {
  Prepared p = MakeCase();
  struct Combo {
    SyncMode mode;
    int workers;
    bool pipeline;
  };
  const Combo combos[] = {
      {SyncMode::kBsp, 1, true},  {SyncMode::kBsp, 4, true},
      {SyncMode::kSsp, 1, true},  {SyncMode::kSsp, 4, true},
      {SyncMode::kSsp, 4, false},  // inline (non-pipelined) runner
  };
  for (const Combo& combo : combos) {
    SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(combo.mode)) +
                 " workers=" + std::to_string(combo.workers) +
                 " pipeline=" + std::to_string(combo.pipeline));
    TrainerConfig config = BaseConfig(p, combo.mode, combo.workers);
    config.use_pipeline = combo.pipeline;

    // Reference: the uninterrupted run.
    mr::LocalDfs ref_dfs = OpenDfs("ref" + std::to_string(combo.workers) +
                                   std::to_string(combo.pipeline) +
                                   std::to_string(static_cast<int>(
                                       combo.mode)));
    config.checkpoint_dfs = &ref_dfs;
    auto ref = GraphTrainer(config).Train(p.splits.train, p.splits.val);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    // Completion drops the rolling checkpoint.
    EXPECT_FALSE(ref_dfs.DatasetExists(MidCheckpointName("checkpoint")));

    // Killed run: an injected crash in epoch 1 (16 trainer.step hits per
    // epoch here), after at least one checkpoint barrier completed.
    mr::LocalDfs dfs = OpenDfs("kill" + std::to_string(combo.workers) +
                               std::to_string(combo.pipeline) +
                               std::to_string(static_cast<int>(combo.mode)));
    config.checkpoint_dfs = &dfs;
    {
      fail::ScopedFailpoint fp("trainer.step", fail::CrashOnHit(26));
      auto killed = GraphTrainer(config).Train(p.splits.train, p.splits.val);
      ASSERT_FALSE(killed.ok());
      EXPECT_TRUE(fail::IsInjectedCrash(killed.status()))
          << killed.status().ToString();
    }
    ASSERT_TRUE(dfs.DatasetExists(MidCheckpointName("checkpoint")));

    // Resume: bit-identical to the run that never crashed.
    config.resume = true;
    auto resumed = GraphTrainer(config).Train(p.splits.train, p.splits.val);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ExpectStateBitIdentical(ref->final_state, resumed->final_state);
    EXPECT_EQ(ref->best_val_metric, resumed->best_val_metric);
    EXPECT_FALSE(dfs.DatasetExists(MidCheckpointName("checkpoint")));
  }
}

TEST_F(KillResumeTest, CrashBeforeFirstCheckpointResumesFresh) {
  // A crash before any checkpoint barrier leaves no "-mid"; resume=true
  // then simply starts fresh — and still matches the reference.
  Prepared p = MakeCase();
  TrainerConfig config = BaseConfig(p, SyncMode::kSsp, 4);
  mr::LocalDfs ref_dfs = OpenDfs("ref");
  config.checkpoint_dfs = &ref_dfs;
  auto ref = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  mr::LocalDfs dfs = OpenDfs("kill");
  config.checkpoint_dfs = &dfs;
  {
    fail::ScopedFailpoint fp("trainer.step", fail::CrashOnHit(3));
    auto killed = GraphTrainer(config).Train(p.splits.train, p.splits.val);
    ASSERT_FALSE(killed.ok());
  }
  EXPECT_FALSE(dfs.DatasetExists(MidCheckpointName("checkpoint")));
  config.resume = true;
  auto resumed = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectStateBitIdentical(ref->final_state, resumed->final_state);
}

TEST_F(KillResumeTest, CorruptCheckpointIsRejectedNotResumed) {
  Prepared p = MakeCase();
  TrainerConfig config = BaseConfig(p, SyncMode::kBsp, 2);
  mr::LocalDfs dfs = OpenDfs("corrupt");
  config.checkpoint_dfs = &dfs;
  {
    fail::ScopedFailpoint fp("trainer.step", fail::CrashOnHit(20));
    auto killed = GraphTrainer(config).Train(p.splits.train, p.splits.val);
    ASSERT_FALSE(killed.ok());
  }
  const std::string mid = MidCheckpointName("checkpoint");
  ASSERT_TRUE(dfs.DatasetExists(mid));
  ASSERT_TRUE(dfs.WriteDataset(mid, {"not a checkpoint"}, 1).ok());
  config.resume = true;
  auto resumed = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  EXPECT_EQ(resumed.status().code(), StatusCode::kCorruption);
}

TEST_F(KillResumeTest, MismatchedConfigIsRejectedOnResume) {
  Prepared p = MakeCase();
  TrainerConfig config = BaseConfig(p, SyncMode::kBsp, 2);
  mr::LocalDfs dfs = OpenDfs("mismatch");
  config.checkpoint_dfs = &dfs;
  {
    fail::ScopedFailpoint fp("trainer.step", fail::CrashOnHit(20));
    auto killed = GraphTrainer(config).Train(p.splits.train, p.splits.val);
    ASSERT_FALSE(killed.ok());
  }
  ASSERT_TRUE(dfs.DatasetExists(MidCheckpointName("checkpoint")));
  // Same dataset, different schedule (seed feeds the fingerprint).
  config.resume = true;
  config.seed += 1;
  auto resumed = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

// --- Config validation ------------------------------------------------------

TEST_F(KillResumeTest, AsyncModeRejectsMidCheckpoints) {
  Prepared p = MakeCase();
  TrainerConfig config = BaseConfig(p, SyncMode::kAsync, 2);
  mr::LocalDfs dfs = OpenDfs("async");
  config.checkpoint_dfs = &dfs;
  auto report = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(KillResumeTest, MidCheckpointsNeedADfs) {
  Prepared p = MakeCase();
  TrainerConfig config = BaseConfig(p, SyncMode::kBsp, 2);
  config.checkpoint_dfs = nullptr;
  auto report = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(KillResumeTest, StreamingRejectsMidCheckpoints) {
  // TrainStreaming has no replayable batch cursor (records stream off the
  // DFS); mid-epoch checkpoint/resume is a Train()-only feature.
  Prepared p = MakeCase();
  mr::LocalDfs dfs = OpenDfs("streaming");
  std::vector<std::string> records;
  records.reserve(p.splits.train.size());
  for (const auto& gf : p.splits.train) {
    records.push_back(gf.Serialize());
  }
  ASSERT_TRUE(dfs.WriteDataset("features", records, 4).ok());
  auto source = DfsFeatureSource::Open(dfs, "features");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  TrainerConfig config = BaseConfig(p, SyncMode::kSsp, 2);
  config.checkpoint_dfs = &dfs;
  auto report =
      GraphTrainer(config).TrainStreaming(*source, p.splits.val);
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(report.status().ToString().find("Train()"), std::string::npos);
}

}  // namespace
}  // namespace agl::trainer
