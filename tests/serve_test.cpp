// Always-on inference service properties (ctest -L serve).
//
// The load-bearing invariants:
//
//   * Served scores are byte-identical to a cold offline
//     RunGraphInferBatched over the current tables — for every coalescing
//     pattern the admission queue happens to produce, and after any
//     mutation batch (the model-aware store invalidation + incremental
//     re-flatten must be exact, not approximate).
//   * A killed-and-restarted service re-opens the persistent store and
//     serves warm hits with the same bytes the first process computed.
//   * The maintained flattened dataset stays byte-identical to a cold
//     RunGraphFlat over the mutated tables.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "agl/agl.h"
#include "data/dataset.h"
#include "infer/persistent_store.h"
#include "serve/inference_service.h"
#include "serve/mutation.h"

namespace agl::serve {
namespace {

data::Dataset SmallUug(int nodes, int attach_edges = 3) {
  data::UugLikeOptions opts;
  opts.num_nodes = nodes;
  opts.feature_dim = 6;
  opts.attach_edges = attach_edges;
  opts.train_size = nodes / 2;
  opts.val_size = nodes / 8;
  opts.test_size = nodes / 8;
  return data::MakeUugLike(opts);
}

gnn::ModelConfig SmallModel(gnn::ModelType type, int layers, int64_t in_dim) {
  gnn::ModelConfig config;
  config.type = type;
  config.num_layers = layers;
  config.in_dim = in_dim;
  config.hidden_dim = 5;
  config.out_dim = 2;
  config.seed = 17;
  return config;
}

std::vector<flat::NodeId> AllIds(const data::Dataset& ds) {
  std::vector<flat::NodeId> ids;
  for (const auto& n : ds.nodes) ids.push_back(n.id);
  return ids;
}

/// The cold offline reference for a request: a fresh RunGraphInferBatched
/// (no cache at all) over the given tables, same pipeline shape.
InferenceService::Scores ColdScores(
    const infer::InferConfig& base,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges,
    const std::vector<flat::NodeId>& targets) {
  infer::InferConfig config = base;
  config.target_ids = targets;
  config.cache_budget_bytes = 0;
  config.cache_spill_path.clear();
  auto result = infer::RunGraphInferBatched(config, state, nodes, edges);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->scores : InferenceService::Scores{};
}

void ExpectScoresIdentical(const InferenceService::Scores& served,
                           const InferenceService::Scores& reference,
                           const std::string& what) {
  ASSERT_EQ(served.size(), reference.size()) << what;
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].first, reference[i].first) << what;
    EXPECT_EQ(served[i].second, reference[i].second)
        << what << " node " << reference[i].first;
  }
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    root_ = (std::filesystem::temp_directory_path() /
             ("agl_serve_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++)))
                .string();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  mr::LocalDfs OpenDfs() {
    auto dfs = mr::LocalDfs::Open(root_);
    EXPECT_TRUE(dfs.ok()) << dfs.status().ToString();
    return std::move(dfs).value();
  }

  std::string root_;
};

// --- mutation.h unit properties -------------------------------------------

TEST(MutationTest, ParseToStringRoundTrip) {
  for (const char* line :
       {"add-edge 3 9 1.5 0.25,1,-2", "add-edge 4 5 1", "remove-edge 7 2",
        "update-features 11 1,2,3.5"}) {
    auto m = Mutation::Parse(line);
    ASSERT_TRUE(m.ok()) << line << ": " << m.status().ToString();
    auto again = Mutation::Parse(m->ToString());
    ASSERT_TRUE(again.ok()) << m->ToString();
    EXPECT_EQ(again->ToString(), m->ToString());
  }
  EXPECT_FALSE(Mutation::Parse("frobnicate 1 2").ok());
  EXPECT_FALSE(Mutation::Parse("add-edge 1").ok());
  EXPECT_FALSE(Mutation::Parse("update-features x 1,2").ok());

  auto stream = ParseMutationStream(
      "# warmup\n\nadd-edge 1 2 1\nremove-edge 2 1\n");
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(stream->size(), 2u);
  auto bad = ParseMutationStream("add-edge 1 2 1\nnope\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(MutationTest, ApplyIsStrictAndAtomicPerMutation) {
  std::vector<flat::NodeRecord> nodes = {{1, {1.f, 2.f}, 0, {}},
                                         {2, {3.f, 4.f}, 1, {}}};
  std::vector<flat::EdgeRecord> edges = {{1, 2, 1.f, {}}};

  auto parse = [](const char* s) { return *Mutation::Parse(s); };
  // Unknown endpoint / duplicate edge / missing edge / width mismatch.
  EXPECT_EQ(ApplyMutation(parse("add-edge 1 9 1"), &nodes, &edges).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ApplyMutation(parse("add-edge 1 2 1"), &nodes, &edges).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(ApplyMutation(parse("remove-edge 2 1"), &nodes, &edges).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      ApplyMutation(parse("update-features 1 1,2,3"), &nodes, &edges).code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(edges.size(), 1u);

  EXPECT_TRUE(ApplyMutation(parse("add-edge 2 1 2"), &nodes, &edges).ok());
  EXPECT_TRUE(ApplyMutation(parse("remove-edge 1 2"), &nodes, &edges).ok());
  EXPECT_TRUE(
      ApplyMutation(parse("update-features 1 5,6"), &nodes, &edges).ok());
  EXPECT_EQ(edges.size(), 1u);
  EXPECT_EQ(nodes[0].features, (std::vector<float>{5.f, 6.f}));
}

TEST(MutationTest, DirtySeedsAreModelAware) {
  // Chain 1 -> 2 -> 3 plus 2 -> 4 (so outN(2) = {3, 4}).
  const std::vector<flat::EdgeRecord> pre = {
      {1, 2, 1.f, {}}, {2, 3, 1.f, {}}, {2, 4, 1.f, {}}};
  std::vector<flat::EdgeRecord> post = pre;
  const Mutation add = *Mutation::Parse("add-edge 2 5 1");
  post.push_back(add.edge);

  // Row-normalized models: only the destination's gather row changes.
  DirtySeeds sage =
      ComputeDirtySeeds(gnn::ModelType::kGraphSage, {add}, pre, post);
  EXPECT_EQ(sage.dataset_seeds, (std::vector<flat::NodeId>{5}));
  EXPECT_EQ(sage.cache_seeds,
            (std::vector<std::pair<flat::NodeId, int>>{{5, 1}}));

  // GCN: col_deg(2) changes, so rows {2} + outN(2) join the dst.
  DirtySeeds gcn = ComputeDirtySeeds(gnn::ModelType::kGcn, {add}, pre, post);
  EXPECT_EQ(gcn.dataset_seeds, (std::vector<flat::NodeId>{5}));
  EXPECT_EQ(gcn.cache_seeds, (std::vector<std::pair<flat::NodeId, int>>{
                                 {2, 1}, {3, 1}, {4, 1}, {5, 1}}));

  // A feature update seeds the node itself at base round 0.
  const Mutation feat = *Mutation::Parse("update-features 1 9");
  DirtySeeds f = ComputeDirtySeeds(gnn::ModelType::kGcn, {feat}, pre, pre);
  EXPECT_EQ(f.cache_seeds,
            (std::vector<std::pair<flat::NodeId, int>>{{1, 0}}));
}

TEST(MutationTest, PropagationFloorsFollowOutEdgeDistance) {
  // 1 -> 2 -> 3 -> 4, K = 2.
  const std::vector<flat::EdgeRecord> edges = {
      {1, 2, 1.f, {}}, {2, 3, 1.f, {}}, {3, 4, 1.f, {}}};
  // Feature update at 1 (base 0): floor 1 at node 1, 1 at node 2 (its
  // round-1 embedding aggregates 1's features), 2 at node 3; node 4 is 3
  // hops out — beyond every cached round, so it is absent.
  auto floors = PropagateInvalidations({{1, 0}}, edges, 2);
  EXPECT_EQ(floors, (std::vector<std::pair<flat::NodeId, int32_t>>{
                        {1, 1}, {2, 1}, {3, 2}}));
  // Edge mutation dirtying row 2 (base 1): node 2 from round 1, node 3
  // from round 2; node 4 would start at round 3 > K.
  floors = PropagateInvalidations({{2, 1}}, edges, 2);
  EXPECT_EQ(floors, (std::vector<std::pair<flat::NodeId, int32_t>>{
                        {2, 1}, {3, 2}}));
}

// --- config validation ----------------------------------------------------

TEST_F(ServeTest, ValidateRejectsBadConfigs) {
  data::Dataset ds = SmallUug(20);
  gnn::GnnModel model(SmallModel(gnn::ModelType::kGcn, 2, ds.feature_dim));
  const auto state = model.StateDict();
  mr::LocalDfs dfs = OpenDfs();

  ServeConfig good;
  good.infer.model = SmallModel(gnn::ModelType::kGcn, 2, ds.feature_dim);
  ASSERT_TRUE(good.Validate().ok());

  ServeConfig bad = good;
  bad.max_pending = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = good;
  bad.store_budget_bytes = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = good;
  bad.store_name.clear();
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = good;
  bad.infer.model.num_layers = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = good;
  bad.features_dataset = "features";
  bad.flat.sampler = {sampling::Strategy::kUniform, 3};
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);

  // The facade surfaces Validate() failures before any work runs.
  ServeConfig invalid = good;
  invalid.max_batch_targets = 0;
  auto svc = agl::Run(invalid, state, ds.nodes, ds.edges, &dfs);
  EXPECT_EQ(svc.status().code(), StatusCode::kInvalidArgument);

  // A configured-but-missing features dataset fails fast at Start.
  ServeConfig missing = good;
  missing.features_dataset = "not_there";
  auto svc2 = agl::Run(missing, state, ds.nodes, ds.edges, &dfs);
  EXPECT_EQ(svc2.status().code(), StatusCode::kFailedPrecondition);
}

// --- serving equivalence --------------------------------------------------

TEST_F(ServeTest, ServedScoresMatchOfflineAcrossCoalescingPatterns) {
  data::Dataset ds = SmallUug(60);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGraphSage, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();
  mr::LocalDfs dfs = OpenDfs();

  ServeConfig config;
  config.infer.model = mconfig;
  config.infer.batch_slices = 3;
  auto svc = agl::Run(config, state, ds.nodes, ds.edges, &dfs);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  InferenceService& service = **svc;

  // Admission-time validation.
  EXPECT_EQ(service.Submit({}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Submit({9999}).status().code(), StatusCode::kNotFound);

  const std::vector<flat::NodeId> all = AllIds(ds);
  // Overlapping requests with duplicates, submitted in a burst so the
  // queue coalesces whatever runs it can — the equivalence must hold for
  // every pattern the scheduler produces.
  std::vector<std::vector<flat::NodeId>> requests = {
      {all.begin(), all.begin() + 20},
      {all.begin() + 10, all.begin() + 30},
      {all[5], all[5], all[7], all[3]},
      {all.begin() + 25, all.end()},
      {all[0]},
  };
  std::vector<std::shared_ptr<InferenceService::Pending>> pending;
  for (const auto& r : requests) {
    auto p = service.Submit(r);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    pending.push_back(*p);
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto served = pending[i]->Wait();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    // Per-request responses are deduplicated and sorted by id.
    std::vector<flat::NodeId> ids = requests[i];
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    ExpectScoresIdentical(*served,
                          ColdScores(config.infer, state, ds.nodes, ds.edges,
                                     ids),
                          "request " + std::to_string(i));
  }
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.admitted, static_cast<int64_t>(requests.size()));
  EXPECT_EQ(stats.served, static_cast<int64_t>(requests.size()));
  EXPECT_EQ(stats.failed, 0);
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.batches, static_cast<int64_t>(requests.size()));

  // A second pass over the same targets is served from the store.
  auto again = service.Score(all);
  ASSERT_TRUE(again.ok());
  ExpectScoresIdentical(
      *again, ColdScores(config.infer, state, ds.nodes, ds.edges, all),
      "second pass");
  EXPECT_GT(service.stats().store.hits, 0);
}

TEST_F(ServeTest, AdmissionBoundRejectsAndShutdownDrains) {
  data::Dataset ds = SmallUug(80, 4);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGcn, 3, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();
  mr::LocalDfs dfs = OpenDfs();

  ServeConfig config;
  config.infer.model = mconfig;
  config.max_pending = 1;
  auto svc = agl::Run(config, state, ds.nodes, ds.edges, &dfs);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  InferenceService& service = **svc;

  // Keep the serving thread busy with full-graph passes, then flood: with
  // one slot, rejections must appear long before 200 submits drain.
  const std::vector<flat::NodeId> all = AllIds(ds);
  std::vector<std::shared_ptr<InferenceService::Pending>> accepted;
  bool rejected = false;
  for (int i = 0; i < 200 && !rejected; ++i) {
    auto p = service.Submit(all);
    if (p.ok()) {
      accepted.push_back(*p);
    } else {
      ASSERT_EQ(p.status().code(), StatusCode::kResourceExhausted);
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);
  for (auto& p : accepted) {
    auto served = p->Wait();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
  }
  EXPECT_GT(service.stats().rejected, 0);

  ASSERT_TRUE(service.Shutdown().ok());
  EXPECT_EQ(service.Submit(all).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.ApplyMutations({*Mutation::Parse("remove-edge 0 1")})
                .code(),
            StatusCode::kFailedPrecondition);
}

// --- persistence ----------------------------------------------------------

TEST_F(ServeTest, PersistentStoreSurvivesReopenAndDegradesOnCorruption) {
  mr::LocalDfs dfs = OpenDfs();
  infer::PersistentEmbeddingStore::Options opts;
  opts.model_version = 42;

  const infer::CacheKey k1{1, 1, 42}, k2{2, 1, 42};
  const std::vector<float> v1 = {1.f, 2.f}, v2 = {3.f, 4.f};
  {
    auto store = infer::PersistentEmbeddingStore::Open(&dfs, "emb", opts);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_FALSE((*store)->opened_warm());
    (*store)->Insert(k1, v1);
    (*store)->Insert(k2, v2);
    ASSERT_TRUE((*store)->Publish().ok());
  }
  {
    // Same process-independent state: re-open from the published index.
    auto dfs2 = mr::LocalDfs::Open(root_);
    ASSERT_TRUE(dfs2.ok());
    auto store = infer::PersistentEmbeddingStore::Open(&*dfs2, "emb", opts);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE((*store)->opened_warm());
    std::vector<float> out;
    ASSERT_TRUE((*store)->Lookup(k1, &out));
    EXPECT_EQ(out, v1);
    ASSERT_TRUE((*store)->Lookup(k2, &out));
    EXPECT_EQ(out, v2);
    EXPECT_GT((*store)->stats().spill_hits, 0);

    // A torn tail past the published prefix is dropped on re-open.
    (*store)->Insert({3, 1, 42}, {9.f});
  }
  {
    std::FILE* f = std::fopen((root_ + "/emb.spill").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("torn-tail-garbage", f);
    std::fclose(f);
    auto dfs3 = mr::LocalDfs::Open(root_);
    ASSERT_TRUE(dfs3.ok());
    auto store = infer::PersistentEmbeddingStore::Open(&*dfs3, "emb", opts);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE((*store)->opened_warm());
    std::vector<float> out;
    EXPECT_TRUE((*store)->Lookup(k1, &out));
    // The unpublished insert died with the torn tail.
    EXPECT_FALSE((*store)->Lookup({3, 1, 42}, &out));
  }
  {
    // A different model version discards the snapshot wholesale.
    auto dfs4 = mr::LocalDfs::Open(root_);
    ASSERT_TRUE(dfs4.ok());
    infer::PersistentEmbeddingStore::Options other = opts;
    other.model_version = 43;
    auto store = infer::PersistentEmbeddingStore::Open(&*dfs4, "emb", other);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_FALSE((*store)->opened_warm());
  }
}

TEST_F(ServeTest, RestartedServiceServesWarmHitsWithSameBytes) {
  data::Dataset ds = SmallUug(50);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGraphSage, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();
  const std::vector<flat::NodeId> all = AllIds(ds);

  ServeConfig config;
  config.infer.model = mconfig;
  config.infer.batch_slices = 2;

  InferenceService::Scores first;
  {
    mr::LocalDfs dfs = OpenDfs();
    auto svc = agl::Run(config, state, ds.nodes, ds.edges, &dfs);
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    EXPECT_FALSE((*svc)->stats().opened_warm);
    auto scores = (*svc)->Score(all);
    ASSERT_TRUE(scores.ok()) << scores.status().ToString();
    first = *scores;
    ASSERT_TRUE((*svc)->Persist().ok());
    // Destructor shutdown = the process dying after its durability point.
  }
  {
    mr::LocalDfs dfs = OpenDfs();  // fresh "process": re-opens the root
    auto svc = agl::Run(config, state, ds.nodes, ds.edges, &dfs);
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    EXPECT_TRUE((*svc)->stats().opened_warm);
    auto scores = (*svc)->Score(all);
    ASSERT_TRUE(scores.ok()) << scores.status().ToString();
    ExpectScoresIdentical(*scores, first, "restarted service");
    const ServeStats stats = (*svc)->stats();
    EXPECT_GT(stats.store.hits, 0) << "restart served no warm hits";
    EXPECT_GT(stats.store.spill_hits, 0);
  }
}

// A store persisted AFTER mutations describes the mutated graph; an
// incarnation restarted with the ORIGINAL tables (the exact `agl_cli serve`
// re-run shape) must not serve those embeddings — it starts cold and its
// scores match cold inference over the tables it was actually given.
TEST_F(ServeTest, StoreReopenAgainstDifferentGraphStartsCold) {
  data::Dataset ds = SmallUug(50);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGraphSage, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();
  const std::vector<flat::NodeId> all = AllIds(ds);

  ServeConfig config;
  config.infer.model = mconfig;
  config.infer.batch_slices = 2;

  const Mutation remove = [&] {
    auto m = Mutation::Parse("remove-edge " + std::to_string(ds.edges[0].src) +
                             " " + std::to_string(ds.edges[0].dst));
    return *m;
  }();
  std::vector<flat::NodeRecord> post_nodes = ds.nodes;
  std::vector<flat::EdgeRecord> post_edges = ds.edges;
  ASSERT_TRUE(ApplyMutation(remove, &post_nodes, &post_edges).ok());

  {
    mr::LocalDfs dfs = OpenDfs();
    auto svc = agl::Run(config, state, ds.nodes, ds.edges, &dfs);
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    ASSERT_TRUE((*svc)->Score(all).ok());
    ASSERT_TRUE((*svc)->ApplyMutations({remove}).ok());
    ASSERT_TRUE((*svc)->Score(all).ok());
    ASSERT_TRUE((*svc)->Persist().ok());  // index pinned to the POST graph
  }
  {
    // Restart with the pre-mutation tables: graph fingerprint mismatch.
    mr::LocalDfs dfs = OpenDfs();
    auto svc = agl::Run(config, state, ds.nodes, ds.edges, &dfs);
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    EXPECT_FALSE((*svc)->stats().opened_warm)
        << "stale store served against a different graph";
    auto scores = (*svc)->Score(all);
    ASSERT_TRUE(scores.ok()) << scores.status().ToString();
    ExpectScoresIdentical(
        *scores, ColdScores(config.infer, state, ds.nodes, ds.edges, all),
        "restart with pre-mutation tables");
  }
  {
    // Restart with the post-mutation tables: fingerprints match, warm.
    mr::LocalDfs dfs = OpenDfs();
    auto svc = agl::Run(config, state, post_nodes, post_edges, &dfs);
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    EXPECT_TRUE((*svc)->stats().opened_warm);
    auto scores = (*svc)->Score(all);
    ASSERT_TRUE(scores.ok()) << scores.status().ToString();
    ExpectScoresIdentical(
        *scores, ColdScores(config.infer, state, post_nodes, post_edges, all),
        "restart with post-mutation tables");
    EXPECT_GT((*svc)->stats().store.hits, 0);
  }
}

// --- mutations ------------------------------------------------------------

class ServeMutationTest
    : public ServeTest,
      public ::testing::WithParamInterface<gnn::ModelType> {};

TEST_P(ServeMutationTest, MutationStreamKeepsServingByteIdenticalToCold) {
  const gnn::ModelType type = GetParam();
  data::Dataset ds = SmallUug(50);
  gnn::ModelConfig mconfig = SmallModel(type, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();
  const std::vector<flat::NodeId> all = AllIds(ds);
  mr::LocalDfs dfs = OpenDfs();

  // Flatten the dataset the service will keep fresh.
  flat::GraphFlatConfig fconfig;
  fconfig.hops = 2;
  fconfig.targets = flat::GraphFlatConfig::Targets::kLabeledNodes;
  ASSERT_TRUE(agl::Run(fconfig, ds.nodes, ds.edges, &dfs, "features").ok());

  ServeConfig config;
  config.infer.model = mconfig;
  config.infer.batch_slices = 3;
  config.features_dataset = "features";
  config.flat = fconfig;
  auto svc = agl::Run(config, state, ds.nodes, ds.edges, &dfs);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  InferenceService& service = **svc;

  // Warm the store on the pre-mutation graph.
  auto before = service.Score(all);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // A batch touching all three mutation kinds, built from the generated
  // table (drop an existing edge, add a currently-absent one).
  std::set<std::pair<flat::NodeId, flat::NodeId>> present;
  for (const auto& e : ds.edges) present.insert({e.src, e.dst});
  std::pair<flat::NodeId, flat::NodeId> absent{0, 0};
  for (const auto& n : ds.nodes) {
    if (n.id != 0 && !present.count({0, n.id})) {
      absent = {0, n.id};
      break;
    }
  }
  ASSERT_NE(absent.second, 0u) << "node 0 connected to everything?";
  std::vector<Mutation> batch;
  batch.push_back(*Mutation::Parse(
      "remove-edge " + std::to_string(ds.edges[0].src) + " " +
      std::to_string(ds.edges[0].dst)));
  batch.push_back(*Mutation::Parse("add-edge " +
                                   std::to_string(absent.first) + " " +
                                   std::to_string(absent.second) + " 2"));
  batch.push_back(*Mutation::Parse("update-features 3 9,8,7,6,5,4"));
  ASSERT_TRUE(service.ApplyMutations(batch).ok());

  // Mutate a reference copy of the tables the same way.
  std::vector<flat::NodeRecord> nodes = ds.nodes;
  std::vector<flat::EdgeRecord> edges = ds.edges;
  for (const Mutation& m : batch) {
    ASSERT_TRUE(ApplyMutation(m, &nodes, &edges).ok());
  }

  // Served scores == cold offline run over the mutated graph, byte for
  // byte — the invalidation was exact.
  auto after = service.Score(all);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectScoresIdentical(
      *after, ColdScores(config.infer, state, nodes, edges, all),
      std::string("post-mutation ") + gnn::ModelTypeName(type));

  // ...and not vacuously: the mutations really moved some scores.
  bool changed = false;
  for (std::size_t i = 0; i < before->size(); ++i) {
    if ((*before)[i].second != (*after)[i].second) changed = true;
  }
  EXPECT_TRUE(changed) << "mutations did not affect any served score";

  // The maintained dataset is byte-identical to a cold re-flatten of the
  // mutated tables (same part structure included).
  ASSERT_TRUE(agl::Run(fconfig, nodes, edges, &dfs, "features_cold").ok());
  auto incremental = dfs.ReadDataset("features");
  auto cold = dfs.ReadDataset("features_cold");
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(*incremental, *cold);

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.mutation_batches, 1);
  EXPECT_EQ(stats.mutations_applied, 3);
  EXPECT_GT(stats.invalidated_nodes, 0);
  EXPECT_EQ(stats.reflatten_runs, 1);
  EXPECT_GT(stats.reflatten_dirty_targets, 0);

  // A failing batch rolls back wholesale: nothing applied, nothing
  // invalidated, scores unmoved.
  const ServeStats pre_fail = service.stats();
  std::vector<Mutation> doomed;
  doomed.push_back(*Mutation::Parse(
      "remove-edge " + std::to_string(absent.first) + " " +
      std::to_string(absent.second)));
  doomed.push_back(*Mutation::Parse("add-edge 0 424242 1"));
  EXPECT_EQ(service.ApplyMutations(doomed).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.stats().mutation_batches, pre_fail.mutation_batches);
  auto unmoved = service.Score(all);
  ASSERT_TRUE(unmoved.ok());
  ExpectScoresIdentical(*unmoved, *after, "rollback left the graph alone");
}

INSTANTIATE_TEST_SUITE_P(AllModels, ServeMutationTest,
                         ::testing::Values(gnn::ModelType::kGcn,
                                           gnn::ModelType::kGraphSage,
                                           gnn::ModelType::kGat),
                         [](const auto& info) {
                           return gnn::ModelTypeName(info.param);
                         });

}  // namespace
}  // namespace agl::serve
