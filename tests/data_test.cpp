// Tests for the synthetic dataset generators: shape contracts (Table 2),
// split disjointness, planted-structure learnability hooks, and the skewed
// degree distribution the UUG generator must exhibit.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>

#include "data/dataset.h"

namespace agl::data {
namespace {

TEST(CoraLikeTest, ShapesMatchOptions) {
  CoraLikeOptions opts;
  opts.num_nodes = 500;
  opts.feature_dim = 140;
  opts.num_classes = 7;
  opts.val_size = 100;   // must fit inside num_nodes - train
  opts.test_size = 200;
  Dataset ds = MakeCoraLike(opts);
  EXPECT_EQ(ds.num_nodes(), 500);
  EXPECT_EQ(ds.feature_dim, 140);
  EXPECT_EQ(ds.num_classes, 7);
  EXPECT_FALSE(ds.multilabel);
  EXPECT_EQ(static_cast<int64_t>(ds.train_ids.size()), 7 * 20);
  EXPECT_EQ(static_cast<int64_t>(ds.val_ids.size()), opts.val_size);
  EXPECT_EQ(static_cast<int64_t>(ds.test_ids.size()), opts.test_size);
  for (const auto& n : ds.nodes) {
    EXPECT_EQ(static_cast<int64_t>(n.features.size()), 140);
    EXPECT_GE(n.label, 0);
    EXPECT_LT(n.label, 7);
  }
}

TEST(CoraLikeTest, SplitsDisjoint) {
  Dataset ds = MakeCoraLike({});
  std::set<NodeId> train(ds.train_ids.begin(), ds.train_ids.end());
  std::set<NodeId> val(ds.val_ids.begin(), ds.val_ids.end());
  std::set<NodeId> test(ds.test_ids.begin(), ds.test_ids.end());
  for (NodeId id : val) EXPECT_EQ(train.count(id), 0u);
  for (NodeId id : test) {
    EXPECT_EQ(train.count(id), 0u);
    EXPECT_EQ(val.count(id), 0u);
  }
}

TEST(CoraLikeTest, TrainBalancedPerClass) {
  Dataset ds = MakeCoraLike({});
  std::unordered_map<NodeId, int64_t> label_of;
  for (const auto& n : ds.nodes) label_of[n.id] = n.label;
  std::unordered_map<int64_t, int> counts;
  for (NodeId id : ds.train_ids) counts[label_of[id]]++;
  EXPECT_EQ(counts.size(), 7u);
  for (const auto& [cls, c] : counts) EXPECT_EQ(c, 20) << "class " << cls;
}

TEST(CoraLikeTest, EdgesHomophilous) {
  Dataset ds = MakeCoraLike({});
  std::unordered_map<NodeId, int64_t> label_of;
  for (const auto& n : ds.nodes) label_of[n.id] = n.label;
  int64_t same = 0;
  for (const auto& e : ds.edges) {
    if (label_of[e.src] == label_of[e.dst]) ++same;
  }
  EXPECT_GT(static_cast<double>(same) / ds.edges.size(), 0.6);
}

TEST(CoraLikeTest, Deterministic) {
  Dataset a = MakeCoraLike({});
  Dataset b = MakeCoraLike({});
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_TRUE(a.nodes[i] == b.nodes[i]);
  }
  EXPECT_EQ(a.train_ids, b.train_ids);
}

TEST(PpiLikeTest, ShapesAndGraphSplits) {
  PpiLikeOptions opts;
  opts.num_graphs = 6;
  opts.nodes_per_graph = 50;
  opts.num_labels = 20;
  opts.train_graphs = 4;
  opts.val_graphs = 1;
  Dataset ds = MakePpiLike(opts);
  EXPECT_EQ(ds.num_nodes(), 300);
  EXPECT_TRUE(ds.multilabel);
  EXPECT_EQ(static_cast<int64_t>(ds.train_ids.size()), 200);
  EXPECT_EQ(static_cast<int64_t>(ds.val_ids.size()), 50);
  EXPECT_EQ(static_cast<int64_t>(ds.test_ids.size()), 50);
  for (const auto& n : ds.nodes) {
    EXPECT_EQ(n.multilabel.size(), 20u);
    for (float v : n.multilabel) EXPECT_TRUE(v == 0.f || v == 1.f);
  }
}

TEST(PpiLikeTest, GraphsAreDisjoint) {
  PpiLikeOptions opts;
  opts.num_graphs = 3;
  opts.nodes_per_graph = 40;
  Dataset ds = MakePpiLike(opts);
  // No edge crosses a graph boundary of 40.
  for (const auto& e : ds.edges) {
    EXPECT_EQ(e.src / 40, e.dst / 40)
        << "edge crosses graphs: " << e.src << "->" << e.dst;
  }
}

TEST(PpiLikeTest, LabelsNotDegenerate) {
  Dataset ds = MakePpiLike({});
  int64_t positives = 0, total = 0;
  for (const auto& n : ds.nodes) {
    for (float v : n.multilabel) {
      positives += v > 0.5f ? 1 : 0;
      ++total;
    }
  }
  const double rate = static_cast<double>(positives) / total;
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.8);
}

TEST(UugLikeTest, ShapesAndBinaryLabels) {
  UugLikeOptions opts;
  opts.num_nodes = 1000;
  opts.feature_dim = 16;
  Dataset ds = MakeUugLike(opts);
  EXPECT_EQ(ds.num_nodes(), 1000);
  EXPECT_EQ(ds.num_classes, 2);
  for (const auto& n : ds.nodes) {
    EXPECT_TRUE(n.label == 0 || n.label == 1);
  }
  EXPECT_GT(ds.num_edges(), 1000);
}

TEST(UugLikeTest, DegreeDistributionIsSkewed) {
  UugLikeOptions opts;
  opts.num_nodes = 3000;
  opts.feature_dim = 4;
  Dataset ds = MakeUugLike(opts);
  std::unordered_map<NodeId, int64_t> degree;
  for (const auto& e : ds.edges) degree[e.dst]++;
  int64_t max_deg = 0;
  double sum_deg = 0;
  for (const auto& [id, d] : degree) {
    max_deg = std::max(max_deg, d);
    sum_deg += static_cast<double>(d);
  }
  const double mean_deg = sum_deg / ds.num_nodes();
  // Hubs: the max degree dwarfs the mean (power-law-ish tail) — this is
  // what exercises GraphFlat's re-indexing path.
  EXPECT_GT(static_cast<double>(max_deg), 10 * mean_deg);
}

TEST(UugLikeTest, CommunitiesMostlyAssortative) {
  Dataset ds = MakeUugLike({});
  std::unordered_map<NodeId, int64_t> label_of;
  for (const auto& n : ds.nodes) label_of[n.id] = n.label;
  int64_t same = 0;
  for (const auto& e : ds.edges) {
    if (label_of[e.src] == label_of[e.dst]) ++same;
  }
  EXPECT_GT(static_cast<double>(same) / ds.num_edges(), 0.7);
}

TEST(BuildGraphTest, RoundTripsTables) {
  UugLikeOptions opts;
  opts.num_nodes = 100;
  opts.feature_dim = 4;
  Dataset ds = MakeUugLike(opts);
  auto g = BuildGraph(ds);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), ds.num_nodes());
  EXPECT_EQ(g->num_edges(), ds.num_edges());
  EXPECT_EQ(g->node_feature_dim(), 4);
}

TEST(SplitFeaturesTest, RoutesByTargetId) {
  Dataset ds;
  ds.train_ids = {1, 2};
  ds.val_ids = {3};
  ds.test_ids = {4};
  std::vector<subgraph::GraphFeature> features(5);
  for (uint64_t i = 0; i < 5; ++i) features[i].target_id = i + 1;
  FeatureSplits splits = SplitFeatures(std::move(features), ds);
  EXPECT_EQ(splits.train.size(), 2u);
  EXPECT_EQ(splits.val.size(), 1u);
  EXPECT_EQ(splits.test.size(), 1u);  // id 5 dropped
  EXPECT_EQ(splits.val[0].target_id, 3u);
}

}  // namespace
}  // namespace agl::data
