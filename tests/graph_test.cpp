// Tests for the attributed graph container and its builder.

#include <gtest/gtest.h>

#include "graph/graph.h"

namespace agl::graph {
namespace {

Graph Diamond() {
  // 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4 plus features = id value.
  GraphBuilder b(/*node_feature_dim=*/1, /*edge_feature_dim=*/2);
  for (NodeId id : {1, 2, 3, 4}) {
    AGL_CHECK_OK(b.AddNode(id, {static_cast<float>(id)},
                           static_cast<int64_t>(id % 2)));
  }
  b.AddEdge(1, 2, 0.5f, {1.f, 0.f});
  b.AddEdge(1, 3, 1.0f, {0.f, 1.f});
  b.AddEdge(2, 4, 2.0f, {1.f, 1.f});
  b.AddEdge(3, 4, 3.0f, {2.f, 2.f});
  auto g = b.Build();
  AGL_CHECK(g.ok());
  return std::move(g).value();
}

TEST(GraphBuilderTest, BasicCounts) {
  Graph g = Diamond();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.node_feature_dim(), 1);
  EXPECT_EQ(g.edge_feature_dim(), 2);
}

TEST(GraphBuilderTest, LocalIndexLookup) {
  Graph g = Diamond();
  for (NodeId id : {1, 2, 3, 4}) {
    const int64_t local = g.LocalIndex(id);
    ASSERT_NE(local, Graph::kNotFound);
    EXPECT_EQ(g.node_id(local), id);
  }
  EXPECT_EQ(g.LocalIndex(99), Graph::kNotFound);
}

TEST(GraphTest, InEdgesPointAtNode) {
  Graph g = Diamond();
  const int64_t n4 = g.LocalIndex(4);
  auto in = g.InEdges(n4);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(g.InDegree(n4), 2);
  // Sources are nodes 2 and 3; CSR sorts by (dst, src).
  EXPECT_EQ(g.node_id(in[0].src), 2u);
  EXPECT_EQ(g.node_id(in[1].src), 3u);
  EXPECT_EQ(in[0].weight, 2.0f);
}

TEST(GraphTest, OutEdgesLeaveNode) {
  Graph g = Diamond();
  const int64_t n1 = g.LocalIndex(1);
  auto out_idx = g.OutEdgeIndices(n1);
  ASSERT_EQ(out_idx.size(), 2u);
  EXPECT_EQ(g.OutDegree(n1), 2);
  for (int64_t idx : out_idx) {
    EXPECT_EQ(g.node_id(g.edge(idx).src), 1u);
  }
  EXPECT_EQ(g.InDegree(n1), 0);
}

TEST(GraphTest, EdgeFeaturesAccessible) {
  Graph g = Diamond();
  const int64_t n4 = g.LocalIndex(4);
  auto in = g.InEdges(n4);
  const auto& ef = g.edge_features();
  EXPECT_EQ(ef.at(in[0].feature_offset, 0), 1.f);  // edge 2->4
  EXPECT_EQ(ef.at(in[1].feature_offset, 0), 2.f);  // edge 3->4
}

TEST(GraphTest, LabelsStored) {
  Graph g = Diamond();
  EXPECT_EQ(g.labels()[g.LocalIndex(1)], 1);
  EXPECT_EQ(g.labels()[g.LocalIndex(2)], 0);
}

TEST(GraphBuilderTest, RejectsDuplicateNode) {
  GraphBuilder b(1);
  ASSERT_TRUE(b.AddNode(1, {0.f}).ok());
  EXPECT_EQ(b.AddNode(1, {0.f}).code(), StatusCode::kAlreadyExists);
}

TEST(GraphBuilderTest, RejectsWrongFeatureWidth) {
  GraphBuilder b(2);
  EXPECT_EQ(b.AddNode(1, {0.f}).code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsEdgeToMissingNode) {
  GraphBuilder b(1);
  ASSERT_TRUE(b.AddNode(1, {0.f}).ok());
  b.AddEdge(1, 42);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kNotFound);
}

TEST(GraphBuilderTest, MultilabelRoundTrip) {
  GraphBuilder b(1);
  ASSERT_TRUE(b.AddNode(1, {0.f}).ok());
  ASSERT_TRUE(b.AddNode(2, {0.f}).ok());
  ASSERT_TRUE(b.SetMultilabel(1, {1.f, 0.f, 1.f}).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->multilabels().cols(), 3);
  EXPECT_EQ(g->multilabels().at(g->LocalIndex(1), 2), 1.f);
  EXPECT_EQ(g->multilabels().at(g->LocalIndex(2), 0), 0.f);
}

TEST(GraphBuilderTest, MultilabelWidthMismatchRejected) {
  GraphBuilder b(1);
  ASSERT_TRUE(b.AddNode(1, {0.f}).ok());
  ASSERT_TRUE(b.AddNode(2, {0.f}).ok());
  ASSERT_TRUE(b.SetMultilabel(1, {1.f, 0.f}).ok());
  EXPECT_EQ(b.SetMultilabel(2, {1.f}).code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, SelfLoopAllowed) {
  GraphBuilder b(1);
  ASSERT_TRUE(b.AddNode(1, {0.f}).ok());
  b.AddEdge(1, 1, 2.f);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->InDegree(0), 1);
  EXPECT_EQ(g->OutDegree(0), 1);
}

TEST(GraphBuilderTest, EmptyGraphBuilds) {
  GraphBuilder b(3);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 0);
  EXPECT_EQ(g->num_edges(), 0);
}

}  // namespace
}  // namespace agl::graph
