// Tests for the unified failpoint framework: registry semantics (hit
// gating, fire caps, probability, crash vs error), spec parsing and
// validation, determinism under a fixed seed, and the RAII test helper.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"

namespace agl::fail {
namespace {

// Every test arms sites on the process-global registry; clean up so tests
// stay order-independent.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().ClearAll(); }
};

TEST_F(FailpointTest, DisarmedSiteIsOkAndUncounted) {
  EXPECT_TRUE(MaybeFail("mr.map").ok());
  EXPECT_TRUE(MaybeFail("no.such.site").ok());
  EXPECT_EQ(FailpointRegistry::Global().HitCount("mr.map"), 0);
  EXPECT_EQ(FailpointRegistry::Global().FireCount("mr.map"), 0);
}

TEST_F(FailpointTest, ErrorModeReturnsConfiguredCodeAndMessage) {
  ScopedFailpoint fp("dfs.write", ErrorConfig(1.0, StatusCode::kIoError));
  agl::Status s = MaybeFail("dfs.write");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.ToString().find("injected fault at dfs.write (hit 1)"),
            std::string::npos)
      << s.ToString();
  EXPECT_FALSE(IsInjectedCrash(s));
}

TEST_F(FailpointTest, FirstHitGatesEarlyHits) {
  SiteConfig cfg;
  cfg.mode = Mode::kError;
  cfg.first_hit = 3;
  ScopedFailpoint fp("mr.reduce", cfg);
  EXPECT_TRUE(MaybeFail("mr.reduce").ok());
  EXPECT_TRUE(MaybeFail("mr.reduce").ok());
  agl::Status s = MaybeFail("mr.reduce");
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_NE(s.ToString().find("(hit 3)"), std::string::npos);
  // From first_hit on, every hit fires (no max_fires cap set).
  EXPECT_FALSE(MaybeFail("mr.reduce").ok());
  EXPECT_EQ(FailpointRegistry::Global().HitCount("mr.reduce"), 4);
  EXPECT_EQ(FailpointRegistry::Global().FireCount("mr.reduce"), 2);
}

TEST_F(FailpointTest, MaxFiresCapsInjections) {
  SiteConfig cfg;
  cfg.mode = Mode::kError;
  cfg.max_fires = 2;
  ScopedFailpoint fp("ps.push", cfg);
  EXPECT_FALSE(MaybeFail("ps.push").ok());
  EXPECT_FALSE(MaybeFail("ps.push").ok());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(MaybeFail("ps.push").ok());
  EXPECT_EQ(FailpointRegistry::Global().HitCount("ps.push"), 7);
  EXPECT_EQ(FailpointRegistry::Global().FireCount("ps.push"), 2);
}

TEST_F(FailpointTest, CrashOnHitFiresExactlyOnce) {
  ScopedFailpoint fp("trainer.step", CrashOnHit(2));
  EXPECT_TRUE(MaybeFail("trainer.step").ok());
  agl::Status s = MaybeFail("trainer.step");
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_TRUE(IsInjectedCrash(s)) << s.ToString();
  EXPECT_NE(s.ToString().find("injected crash at trainer.step (hit 2)"),
            std::string::npos);
  // x1: later hits pass.
  EXPECT_TRUE(MaybeFail("trainer.step").ok());
}

TEST_F(FailpointTest, PlainAbortedIsNotAnInjectedCrash) {
  EXPECT_FALSE(IsInjectedCrash(agl::Status::Aborted("user abort")));
  EXPECT_FALSE(IsInjectedCrash(agl::Status::OK()));
  // An error-mode failpoint with code kAborted is a transient failure the
  // retry layers may re-run — not a crash.
  ScopedFailpoint fp("mr.map", ErrorConfig(1.0, StatusCode::kAborted));
  EXPECT_FALSE(IsInjectedCrash(MaybeFail("mr.map")));
}

TEST_F(FailpointTest, ProbabilityIsDeterministicGivenSeedAndUid) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.SetSeed(42);
  auto pattern = [&reg]() {
    reg.Configure("dfs.read", ErrorConfig(0.5));
    std::vector<bool> fired;
    for (uint64_t uid = 0; uid < 200; ++uid) {
      fired.push_back(!reg.MaybeFail("dfs.read", uid).ok());
    }
    return fired;
  };
  const std::vector<bool> a = pattern();
  const std::vector<bool> b = pattern();  // reconfigure resets counters
  EXPECT_EQ(a, b);
  // p=0.5 over 200 draws: neither all nor none fire.
  const int fires = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 200);
  // A different seed produces a different draw sequence.
  reg.SetSeed(43);
  EXPECT_NE(pattern(), a);
}

TEST_F(FailpointTest, ConfigureResetsCounters) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.Configure("infer.spill", ErrorConfig(1.0));
  EXPECT_FALSE(MaybeFail("infer.spill").ok());
  EXPECT_EQ(reg.HitCount("infer.spill"), 1);
  reg.Configure("infer.spill", CrashOnHit(1));
  EXPECT_EQ(reg.HitCount("infer.spill"), 0);
  EXPECT_EQ(reg.FireCount("infer.spill"), 0);
  EXPECT_TRUE(IsInjectedCrash(MaybeFail("infer.spill")));
  reg.Disable("infer.spill");
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnDestruction) {
  {
    ScopedFailpoint fp("dfs.rename", ErrorConfig(1.0));
    EXPECT_FALSE(MaybeFail("dfs.rename").ok());
  }
  EXPECT_TRUE(MaybeFail("dfs.rename").ok());
  EXPECT_EQ(FailpointRegistry::Global().HitCount("dfs.rename"), 0);
}

TEST_F(FailpointTest, KnownSitesAreSortedAndCoverTheSubsystems) {
  const std::vector<std::string>& sites = KnownSites();
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  for (const char* site : {"dfs.read", "dfs.rename", "dfs.write", "mr.map",
                           "mr.reduce", "ps.push", "ps.pull", "trainer.step",
                           "infer.spill"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
  }
}

TEST_F(FailpointTest, ApplySpecArmsSitesAndSeed) {
  ASSERT_TRUE(
      ApplySpec("seed=7;mr.map=error(IoError,1.0)@2x1;dfs.write=crash").ok());
  EXPECT_TRUE(MaybeFail("mr.map").ok());  // gated until hit 2
  agl::Status s = MaybeFail("mr.map");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_TRUE(MaybeFail("mr.map").ok());  // x1 exhausted
  EXPECT_TRUE(IsInjectedCrash(MaybeFail("dfs.write")));
}

TEST_F(FailpointTest, ApplySpecOffDisarms) {
  ASSERT_TRUE(ApplySpec("ps.pull=error").ok());
  EXPECT_FALSE(MaybeFail("ps.pull").ok());
  ASSERT_TRUE(ApplySpec("ps.pull=off").ok());
  EXPECT_TRUE(MaybeFail("ps.pull").ok());
}

TEST_F(FailpointTest, ValidateSpecAcceptsTheDocumentedGrammar) {
  for (const char* good :
       {"mr.map=error(0.3)", "dfs.write=error(IoError,0.1)",
        "trainer.step=crash@7x1", "dfs.rename=crash@2;seed=9",
        "infer.spill=off", "ps.push=error(Unavailable,1)x3",
        "mr.reduce=error;;"}) {
    EXPECT_TRUE(ValidateSpec(good).ok()) << good;
  }
}

TEST_F(FailpointTest, ValidateSpecNamesTheBadEntry) {
  struct Case {
    const char* spec;
    const char* expect_substr;
  };
  const Case cases[] = {
      {"bogus.site=error", "unknown failpoint site 'bogus.site'"},
      {"bogus.site=error", "trainer.step"},  // ... and lists known sites
      {"mr.map=explode", "unknown mode"},
      {"mr.map=error(2.0)", "probability"},
      {"mr.map=error(NoSuchCode,0.5)", "unknown status code"},
      {"mr.map=error@0", "positive hit index"},
      {"mr.map=error x0", "unknown mode"},
      {"mr.map=crash@1x0", "positive fire count"},
      {"seed=abc", "seed must be a uint"},
      {"mr.map", "expected site=mode"},
      {"mr.map=error(0.5", "unbalanced '('"},
  };
  for (const Case& c : cases) {
    agl::Status s = ValidateSpec(c.spec);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << c.spec;
    EXPECT_NE(s.ToString().find(c.expect_substr), std::string::npos)
        << c.spec << " -> " << s.ToString();
  }
}

TEST_F(FailpointTest, ValidateSpecDoesNotArm) {
  ASSERT_TRUE(ValidateSpec("mr.map=error").ok());
  EXPECT_TRUE(MaybeFail("mr.map").ok());
}

TEST_F(FailpointTest, RetryClassification) {
  // The contract the MR retry layer is built on: transient codes retry,
  // deterministic ones fail fast.
  EXPECT_TRUE(IsRetryableError(agl::Status::Aborted("x")));
  EXPECT_TRUE(IsRetryableError(agl::Status::IoError("x")));
  EXPECT_TRUE(IsRetryableError(agl::Status::Unavailable("x")));
  EXPECT_FALSE(IsRetryableError(agl::Status::OK()));
  EXPECT_FALSE(IsRetryableError(agl::Status::Corruption("x")));
  EXPECT_FALSE(IsRetryableError(agl::Status::InvalidArgument("x")));
  EXPECT_FALSE(IsRetryableError(agl::Status::Internal("x")));
  EXPECT_FALSE(IsRetryableError(agl::Status::NotFound("x")));
}

}  // namespace
}  // namespace agl::fail
