// Parity tests for the SIMD-dispatched kernel layer: every entry of the
// active (runtime-dispatched) table must match the scalar baseline within
// float-reassociation tolerance, and the scalar baseline itself must match
// naive golden references. Sizes sweep odd lengths (1, 3, 7, 17, 64) so
// every vector-width remainder path is exercised, plus empty/zero-row
// edge cases. The same suite runs under AGL_SIMD=ON and =OFF (where the
// active table IS the scalar table) and under ASan/UBSan in CI.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "tensor/kernels/kernels.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace agl::tensor::kernels {
namespace {

constexpr int64_t kSizes[] = {1, 3, 7, 17, 64};
constexpr float kTol = 2e-4f;

std::vector<float> RandomVec(int64_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng->Normal(0, 1));
  return v;
}

void ExpectClose(const std::vector<float>& a, const std::vector<float>& b,
                 float tol = kTol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "index " << i;
  }
}

TEST(KernelParityTest, BackendReportsName) {
  EXPECT_STREQ(ScalarKernels().name, "scalar");
  EXPECT_STREQ(ActiveKernels().name, ActiveBackendName());
}

TEST(KernelParityTest, AxpyRowMatchesScalarAndGolden) {
  Rng rng(1);
  for (int64_t n : kSizes) {
    const std::vector<float> src = RandomVec(n, &rng);
    const std::vector<float> base = RandomVec(n, &rng);
    const float alpha = 0.37f;
    std::vector<float> golden = base;
    for (int64_t j = 0; j < n; ++j) golden[j] += alpha * src[j];

    std::vector<float> scalar = base;
    ScalarKernels().axpy_row(scalar.data(), src.data(), alpha, n);
    ExpectClose(scalar, golden);

    std::vector<float> active = base;
    ActiveKernels().axpy_row(active.data(), src.data(), alpha, n);
    ExpectClose(active, scalar);
  }
  // n == 0 must be a no-op on a null-ish span.
  float dummy = 5.f;
  ActiveKernels().axpy_row(&dummy, &dummy, 2.f, 0);
  EXPECT_EQ(dummy, 5.f);
}

TEST(KernelParityTest, DotMatchesScalarAndGolden) {
  Rng rng(2);
  for (int64_t n : kSizes) {
    const std::vector<float> a = RandomVec(n, &rng);
    const std::vector<float> b = RandomVec(n, &rng);
    double golden = 0;
    for (int64_t j = 0; j < n; ++j) {
      golden += static_cast<double>(a[j]) * b[j];
    }
    const float s = ScalarKernels().dot(a.data(), b.data(), n);
    const float v = ActiveKernels().dot(a.data(), b.data(), n);
    EXPECT_NEAR(s, golden, kTol) << n;
    EXPECT_NEAR(v, s, kTol) << n;
  }
  EXPECT_EQ(ActiveKernels().dot(nullptr, nullptr, 0), 0.f);
}

TEST(KernelParityTest, ScaledAccumulateMatchesScalarAndGolden) {
  Rng rng(3);
  for (int64_t n : kSizes) {
    const std::vector<float> s0 = RandomVec(n, &rng);
    const std::vector<float> s1 = RandomVec(n, &rng);
    const std::vector<float> s2 = RandomVec(n, &rng);
    const std::vector<float> s3 = RandomVec(n, &rng);
    const std::vector<float> base = RandomVec(n, &rng);
    const float w[kAccumulateWidth] = {0.5f, -1.25f, 0.f, 2.f};
    const float* srcs[kAccumulateWidth] = {s0.data(), s1.data(), s2.data(),
                                           s3.data()};
    std::vector<float> golden = base;
    for (int64_t j = 0; j < n; ++j) {
      golden[j] += w[0] * s0[j] + w[1] * s1[j] + w[2] * s2[j] + w[3] * s3[j];
    }
    std::vector<float> scalar = base;
    ScalarKernels().scaled_accumulate(scalar.data(), srcs, w, n);
    ExpectClose(scalar, golden);
    std::vector<float> active = base;
    ActiveKernels().scaled_accumulate(active.data(), srcs, w, n);
    ExpectClose(active, scalar);
  }
}

TEST(KernelParityTest, RowSoftmaxMatchesScalarSumsToOne) {
  Rng rng(4);
  for (int64_t n : kSizes) {
    const std::vector<float> in = RandomVec(n, &rng);
    std::vector<float> scalar = in;
    ScalarKernels().row_softmax(scalar.data(), n);
    std::vector<float> active = in;
    ActiveKernels().row_softmax(active.data(), n);
    float sum = 0.f;
    for (float x : active) sum += x;
    EXPECT_NEAR(sum, 1.f, 1e-4f) << n;
    ExpectClose(active, scalar, 1e-5f);
  }
  // Large magnitudes must not overflow (max subtraction).
  std::vector<float> big = {1000.f, 1000.f, 1000.f};
  ActiveKernels().row_softmax(big.data(), 3);
  for (float x : big) EXPECT_NEAR(x, 1.f / 3.f, 1e-5f);
  // Empty row is a no-op.
  ActiveKernels().row_softmax(nullptr, 0);
}

TEST(KernelParityTest, SpmmRowMatchesScalarAndGolden) {
  Rng rng(9);
  const int64_t num_src = 37;
  for (int64_t f : kSizes) {
    const std::vector<float> dense = RandomVec(num_src * f, &rng);
    for (int64_t count : {int64_t{0}, int64_t{1}, int64_t{4}, int64_t{11}}) {
      std::vector<int64_t> cols(count);
      std::vector<float> w(count);
      for (int64_t e = 0; e < count; ++e) {
        cols[e] = rng.UniformInt(0, num_src - 1);
        w[e] = static_cast<float>(rng.Normal(0, 1));
      }
      const std::vector<float> base = RandomVec(f, &rng);
      std::vector<float> golden = base;
      for (int64_t e = 0; e < count; ++e) {
        for (int64_t j = 0; j < f; ++j) {
          golden[j] += w[e] * dense[cols[e] * f + j];
        }
      }
      std::vector<float> scalar = base;
      ScalarKernels().spmm_row(scalar.data(), dense.data(), cols.data(),
                               w.data(), count, f);
      ExpectClose(scalar, golden);
      std::vector<float> active = base;
      ActiveKernels().spmm_row(active.data(), dense.data(), cols.data(),
                               w.data(), count, f);
      ExpectClose(active, scalar);
    }
  }
}

TEST(KernelParityTest, GatEdgeSoftmaxMatchesScalar) {
  Rng rng(5);
  const int64_t num_nodes = 40;
  const std::vector<float> ar = RandomVec(num_nodes, &rng);
  for (int64_t count : {int64_t{0}, int64_t{1}, int64_t{3}, int64_t{5},
                        int64_t{8}, int64_t{13}}) {
    std::vector<int64_t> cols(count);
    for (int64_t& c : cols) c = rng.UniformInt(0, num_nodes - 1);
    std::vector<float> alpha_s(count), dzf_s(count);
    std::vector<float> alpha_v(count), dzf_v(count);
    ScalarKernels().gat_edge_softmax(cols.data(), count, 0.21f, ar.data(),
                                     0.2f, alpha_s.data(), dzf_s.data());
    ActiveKernels().gat_edge_softmax(cols.data(), count, 0.21f, ar.data(),
                                     0.2f, alpha_v.data(), dzf_v.data());
    ExpectClose(alpha_v, alpha_s, 1e-5f);
    ExpectClose(dzf_v, dzf_s, 0.f);  // derivative factor is exact
    if (count > 0) {
      float sum = 0.f;
      for (float x : alpha_v) sum += x;
      EXPECT_NEAR(sum, 1.f, 1e-4f);
    }
  }
}

TEST(KernelParityTest, AdamUpdateMatchesScalar) {
  Rng rng(6);
  AdamConsts c;
  c.weight_decay = 0.01f;
  c.inv_bias1 = 1.f / (1.f - 0.9f);
  c.inv_bias2 = 1.f / (1.f - 0.999f);
  for (int64_t n : kSizes) {
    const std::vector<float> grad = RandomVec(n, &rng);
    const std::vector<float> value = RandomVec(n, &rng);
    const std::vector<float> m0 = RandomVec(n, &rng);
    std::vector<float> v0(n, 0.f);
    for (int64_t j = 0; j < n; ++j) {
      v0[j] = std::fabs(static_cast<float>(rng.Normal(0, 1)));
    }
    std::vector<float> vs = value, ms = m0, vvs = v0;
    ScalarKernels().adam_update(vs.data(), grad.data(), ms.data(), vvs.data(),
                                c, n);
    std::vector<float> va = value, ma = m0, vva = v0;
    ActiveKernels().adam_update(va.data(), grad.data(), ma.data(), vva.data(),
                                c, n);
    ExpectClose(va, vs, 1e-5f);
    ExpectClose(ma, ms, 1e-5f);
    ExpectClose(vva, vvs, 1e-5f);
  }
}

// Naive reference: out[r, j] = sum_p a[r, p] * b_eff[p, j].
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  Tensor out(a.rows(), b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t p = 0; p < a.cols(); ++p) {
      for (int64_t j = 0; j < b.cols(); ++j) {
        out.at(r, j) += a.at(r, p) * b.at(p, j);
      }
    }
  }
  return out;
}

TEST(KernelParityTest, GemmFamilyMatchesScalarAndGolden) {
  Rng rng(7);
  for (int64_t n : {1, 5, 17}) {
    for (int64_t k : kSizes) {
      for (int64_t m : {1, 7, 64}) {
        const Tensor a = Tensor::RandomNormal(n, k, 0, 1, &rng);
        const Tensor b = Tensor::RandomNormal(k, m, 0, 1, &rng);
        const Tensor golden = NaiveMatMul(a, b);

        for (const KernelTable* kt : {&ScalarKernels(), &ActiveKernels()}) {
          Tensor out(n, m);
          kt->gemm(a.data(), b.data(), out.data(), 0, n, k, m);
          EXPECT_TRUE(out.AllClose(golden, kTol))
              << kt->name << " gemm " << n << "x" << k << "x" << m;

          const Tensor b_ta = Tensor::RandomNormal(n, m, 0, 1, &rng);
          Tensor out_ta(k, m);
          kt->gemm_trans_a(a.data(), b_ta.data(), out_ta.data(), 0, 0, k, m);
          EXPECT_TRUE(out_ta.AllClose(Tensor(k, m), 0.f))
              << "empty i-range must be a no-op";
          kt->gemm_trans_a(a.data(), b_ta.data(), out_ta.data(), 0, n, k, m);
          EXPECT_TRUE(out_ta.AllClose(NaiveMatMul(Transpose(a), b_ta), kTol))
              << kt->name << " gemm_trans_a " << n << "x" << k << "x" << m;

          const Tensor bt = Transpose(b);  // [m x k]
          Tensor out_tb(n, m);
          kt->gemm_trans_b(a.data(), bt.data(), out_tb.data(), 0, n, k, m);
          EXPECT_TRUE(out_tb.AllClose(golden, kTol))
              << kt->name << " gemm_trans_b " << n << "x" << k << "x" << m;
        }
      }
    }
  }
}

TEST(KernelParityTest, GemmZeroDimensionsAreNoOps) {
  for (const KernelTable* kt : {&ScalarKernels(), &ActiveKernels()}) {
    Tensor a(0, 5), b(5, 3), out(0, 3);
    kt->gemm(a.data(), b.data(), out.data(), 0, 0, 5, 3);
    Tensor a2(4, 0), b2(0, 3), out2(4, 3);
    kt->gemm(a2.data(), b2.data(), out2.data(), 0, 4, 0, 3);
    EXPECT_TRUE(out2.AllClose(Tensor(4, 3), 0.f)) << kt->name;
    Tensor out3(0, 3);
    kt->gemm_trans_a(a.data(), b.data(), out3.data(), 0, 0, 0, 3);
  }
}

// The high-level entry points must agree with the kernels they dispatch to
// across the parallel/serial threshold, including zero-size feature dims.
TEST(KernelParityTest, SpmmZeroFeatureAndEmptyRows) {
  Rng rng(8);
  SparseMatrix adj = SparseMatrix::FromCoo(
      5, 5, {{0, 1, 1.f}, {0, 2, 2.f}, {4, 0, 3.f}});  // rows 1-3 empty
  for (int64_t f : {int64_t{0}, int64_t{1}, int64_t{3}, int64_t{17}}) {
    const Tensor h = Tensor::RandomNormal(5, f, 0, 1, &rng);
    const Tensor out = Spmm(adj, h, {4});
    const Tensor serial = Spmm(adj, h, {1});
    EXPECT_TRUE(out.AllClose(serial, 0.f)) << f;
    for (int64_t j = 0; j < f; ++j) {
      EXPECT_EQ(out.at(2, j), 0.f);  // empty row stays zero
    }
  }
}

}  // namespace
}  // namespace agl::tensor::kernels
