// Tests for GNN layers and models: shape discipline, pruning equivalence on
// target rows (Theorem 1 corollary), optimization-invariance (pruning /
// partitioning must not change target logits), and learnability.

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "data/dataset.h"
#include "flat/graphflat.h"
#include "gnn/layers.h"
#include "gnn/model.h"
#include "nn/optimizer.h"
#include "subgraph/batch.h"
#include "subgraph/khop.h"
#include "trainer/trainer.h"

namespace agl::gnn {
namespace {

using autograd::Variable;
using subgraph::GraphFeature;
using subgraph::VectorizedBatch;

TEST(ModelTypeTest, ParseRoundTrip) {
  for (ModelType t : {ModelType::kGcn, ModelType::kGraphSage,
                      ModelType::kGat}) {
    auto parsed = ParseModelType(ModelTypeName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(ParseModelType("transformer").ok());
}

std::vector<GraphFeature> ChainFeatures(int n, int k) {
  std::vector<flat::NodeRecord> nodes;
  std::vector<flat::EdgeRecord> edges;
  for (int i = 0; i < n; ++i) {
    // Labels split by halves: smooth w.r.t. the chain topology so graph
    // convolutions can actually fit it.
    nodes.push_back({static_cast<flat::NodeId>(i),
                     {static_cast<float>(i) / n, 1.f, 0.5f},
                     i < n / 2 ? 0 : 1,
                     {}});
  }
  for (int i = 0; i + 1 < n; ++i) {
    edges.push_back({static_cast<flat::NodeId>(i),
                     static_cast<flat::NodeId>(i + 1), 1.f,
                     {}});
  }
  flat::GraphFlatConfig config;
  config.hops = k;
  auto features = flat::RunGraphFlatInMemory(config, nodes, edges);
  AGL_CHECK(features.ok());
  return std::move(features).value();
}

ModelConfig BaseConfig(ModelType type, int layers) {
  ModelConfig config;
  config.type = type;
  config.num_layers = layers;
  config.in_dim = 3;
  config.hidden_dim = 8;
  config.out_dim = 2;
  config.seed = 7;
  return config;
}

class ModelForwardTest
    : public ::testing::TestWithParam<std::tuple<ModelType, int>> {};

TEST_P(ModelForwardTest, LogitShapeMatchesTargets) {
  const auto [type, layers] = GetParam();
  auto features = ChainFeatures(10, layers);
  GnnModel model(BaseConfig(type, layers));
  Rng rng(1);
  VectorizedBatch vec = subgraph::MergeAndVectorize(
      std::span<const GraphFeature>(features.data(), 4));
  PreparedBatch batch = model.Prepare(vec);
  Variable logits = model.Forward(batch, /*training=*/false, &rng);
  EXPECT_EQ(logits.rows(), 4);
  EXPECT_EQ(logits.cols(), 2);
}

TEST_P(ModelForwardTest, PruningDoesNotChangeTargetLogits) {
  const auto [type, layers] = GetParam();
  auto features = ChainFeatures(12, layers);
  ModelConfig config = BaseConfig(type, layers);
  VectorizedBatch vec = subgraph::MergeAndVectorize(
      std::span<const GraphFeature>(features.data(), 5));

  config.use_pruning = true;
  GnnModel pruned_model(config);
  config.use_pruning = false;
  config.seed = 7;  // identical init
  GnnModel full_model(config);

  Rng rng1(2), rng2(2);
  Variable a = pruned_model.Forward(pruned_model.Prepare(vec), false, &rng1);
  Variable b = full_model.Forward(full_model.Prepare(vec), false, &rng2);
  EXPECT_TRUE(a.value().AllClose(b.value(), 2e-4f))
      << ModelTypeName(type) << " " << layers << " layers";
}

TEST_P(ModelForwardTest, EdgePartitioningDoesNotChangeLogits) {
  const auto [type, layers] = GetParam();
  auto features = ChainFeatures(12, layers);
  ModelConfig config = BaseConfig(type, layers);
  VectorizedBatch vec = subgraph::MergeAndVectorize(
      std::span<const GraphFeature>(features.data(), 5));

  config.aggregation_threads = 1;
  GnnModel serial(config);
  config.aggregation_threads = 4;
  GnnModel parallel(config);

  Rng rng1(3), rng2(3);
  Variable a = serial.Forward(serial.Prepare(vec), false, &rng1);
  Variable b = parallel.Forward(parallel.Prepare(vec), false, &rng2);
  EXPECT_TRUE(a.value().AllClose(b.value(), 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelForwardTest,
    ::testing::Combine(::testing::Values(ModelType::kGcn,
                                         ModelType::kGraphSage,
                                         ModelType::kGat),
                       ::testing::Values(1, 2, 3)));

TEST(ModelTest, KHopTheorem1SubgraphSufficient) {
  // The K-hop neighborhood must produce the same target embedding as the
  // full graph (Theorem 1).
  const int n = 14, k = 2;
  data::UugLikeOptions uopts;
  uopts.num_nodes = n;
  uopts.feature_dim = 3;
  uopts.attach_edges = 2;
  data::Dataset ds = data::MakeUugLike(uopts);
  auto graph = data::BuildGraph(ds);
  ASSERT_TRUE(graph.ok());

  ModelConfig config = BaseConfig(ModelType::kGcn, k);
  GnnModel model(config);
  Rng rng(4);

  // Whole graph as one "batch" targeting node t.
  flat::GraphFlatConfig fc;
  fc.hops = k;
  fc.targets = flat::GraphFlatConfig::Targets::kAllNodes;
  auto features = flat::RunGraphFlatInMemory(fc, ds.nodes, ds.edges);
  ASSERT_TRUE(features.ok());

  // Full-graph feature: every node, all edges, target = feature's target.
  for (std::size_t fi = 0; fi < 3 && fi < features->size(); ++fi) {
    const GraphFeature& gf = (*features)[fi];
    // Build a GraphFeature covering the entire graph with same target.
    GraphFeature whole;
    whole.target_id = gf.target_id;
    whole.label = gf.label;
    for (const auto& node : ds.nodes) whole.node_ids.push_back(node.id);
    whole.target_index = static_cast<int64_t>(
        std::find(whole.node_ids.begin(), whole.node_ids.end(),
                  gf.target_id) -
        whole.node_ids.begin());
    whole.node_features =
        tensor::Tensor(static_cast<int64_t>(ds.nodes.size()), 3);
    for (std::size_t i = 0; i < ds.nodes.size(); ++i) {
      std::copy(ds.nodes[i].features.begin(), ds.nodes[i].features.end(),
                whole.node_features.row(static_cast<int64_t>(i)));
    }
    std::unordered_map<uint64_t, int64_t> idx;
    for (std::size_t i = 0; i < whole.node_ids.size(); ++i) {
      idx[whole.node_ids[i]] = static_cast<int64_t>(i);
    }
    for (const auto& e : ds.edges) {
      whole.edges.push_back({idx[e.src], idx[e.dst], e.weight});
    }

    std::vector<GraphFeature> sub = {gf};
    std::vector<GraphFeature> full = {whole};
    // NOTE: GCN normalization depends on degrees inside the subgraph; the
    // k-hop neighborhood preserves every in-edge of nodes within k-1 hops,
    // but border nodes lose in-edges, changing their *own* normalization
    // only at distance k (whose embeddings beyond layer 0 are unused).
    // Out-degrees differ though, so compare with row-normalized SAGE which
    // only depends on in-edges — exactly information-complete.
    ModelConfig sage_config = BaseConfig(ModelType::kGraphSage, k);
    GnnModel sage(sage_config);
    Variable a = sage.Forward(
        sage.Prepare(subgraph::MergeAndVectorize(sub)), false, &rng);
    Variable b = sage.Forward(
        sage.Prepare(subgraph::MergeAndVectorize(full)), false, &rng);
    EXPECT_TRUE(a.value().AllClose(b.value(), 2e-4f))
        << "target " << gf.target_id;
  }
}

TEST(ModelTest, StateDictKeysFollowLayerConvention) {
  GnnModel model(BaseConfig(ModelType::kGat, 2));
  for (const auto& [key, value] : model.StateDict()) {
    EXPECT_EQ(key.rfind("layer", 0), 0u) << key;
  }
  EXPECT_GT(model.NumParameters(), 0);
}

TEST(ModelTest, GatHeadsChangeHiddenWidth) {
  ModelConfig config = BaseConfig(ModelType::kGat, 2);
  config.gat_heads = 4;
  GnnModel model(config);
  auto features = ChainFeatures(8, 2);
  VectorizedBatch vec = subgraph::MergeAndVectorize(
      std::span<const GraphFeature>(features.data(), 2));
  Rng rng(5);
  Variable logits = model.Forward(model.Prepare(vec), false, &rng);
  EXPECT_EQ(logits.cols(), 2);  // output layer averages heads
}

TEST(ModelTest, OverfitsTinyDataset) {
  // Sanity: a 2-layer GCN should drive training loss near zero on 8
  // separable examples.
  auto features = ChainFeatures(10, 2);
  std::vector<GraphFeature> train(features.begin(), features.begin() + 8);
  ModelConfig config = BaseConfig(ModelType::kGcn, 2);
  GnnModel model(config);
  nn::Adam::Options aopts;
  aopts.lr = 0.05f;
  nn::Adam opt(model.Parameters(), aopts);
  Rng rng(6);
  VectorizedBatch vec = subgraph::MergeAndVectorize(
      std::span<const GraphFeature>(train.data(), train.size()));
  PreparedBatch batch = model.Prepare(vec);
  float last_loss = 0;
  for (int step = 0; step < 150; ++step) {
    Variable logits = model.Forward(batch, true, &rng);
    Variable loss = autograd::SoftmaxCrossEntropy(logits, batch.labels);
    autograd::Backward(loss);
    opt.Step();
    last_loss = loss.value().at(0, 0);
  }
  EXPECT_LT(last_loss, 0.1f);
}

TEST(ModelTest, DropoutOnlyActiveInTraining) {
  auto features = ChainFeatures(8, 1);
  ModelConfig config = BaseConfig(ModelType::kGcn, 1);
  config.dropout = 0.5f;
  GnnModel model(config);
  VectorizedBatch vec = subgraph::MergeAndVectorize(
      std::span<const GraphFeature>(features.data(), 3));
  PreparedBatch batch = model.Prepare(vec);
  Rng rng1(7), rng2(8);
  // Inference is deterministic regardless of RNG (no dropout applied).
  Variable a = model.Forward(batch, false, &rng1);
  Variable b = model.Forward(batch, false, &rng2);
  EXPECT_TRUE(a.value().AllClose(b.value(), 0.f));
}

}  // namespace
}  // namespace agl::gnn
