#include "testing/graph_gen.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/rng.h"

namespace agl::testing {

using flat::EdgeRecord;
using flat::NodeId;
using flat::NodeRecord;

GeneratedGraph MakeGraph(const GraphGenOptions& options) {
  Rng rng(options.seed);
  const int64_t n = std::max<int64_t>(1, options.num_nodes);
  GeneratedGraph out;
  out.nodes.reserve(n);

  for (int64_t i = 0; i < n; ++i) {
    NodeRecord node;
    node.id = static_cast<NodeId>(i);
    node.features.reserve(options.node_feature_dim);
    for (int64_t f = 0; f < options.node_feature_dim; ++f) {
      node.features.push_back(static_cast<float>(rng.Normal()));
    }
    node.label = rng.Bernoulli(options.unlabeled_fraction)
                     ? -1
                     : rng.UniformInt(0, options.num_classes - 1);
    out.nodes.push_back(std::move(node));
  }

  auto make_edge = [&](NodeId src, NodeId dst) {
    EdgeRecord e;
    e.src = src;
    e.dst = dst;
    e.weight = options.unit_weights
                   ? 1.0f
                   : static_cast<float>(
                         rng.Uniform(options.min_weight, options.max_weight));
    e.features.reserve(options.edge_feature_dim);
    for (int64_t f = 0; f < options.edge_feature_dim; ++f) {
      e.features.push_back(static_cast<float>(rng.Normal()));
    }
    out.edges.push_back(std::move(e));
  };

  // Contiguous component blocks; with num_components == 1 (the default)
  // there is a single block [0, n) and the RNG stream is byte-identical to
  // what it was before components existed.
  const int64_t k =
      std::clamp<int64_t>(options.num_components, 1, n);
  std::vector<int64_t> boundaries;
  boundaries.reserve(k + 1);
  for (int64_t c = 0; c <= k; ++c) boundaries.push_back(c * n / k);

  std::set<std::pair<NodeId, NodeId>> seen;
  if (options.topology == GraphGenOptions::Topology::kPowerLaw) {
    // Preferential attachment: node i wires `attach_edges` directed edges
    // toward earlier nodes of its block drawn proportionally to
    // (degree + 1), so early nodes become hubs.
    std::vector<double> degree(n, 0.0);
    for (int64_t c = 0; c < k; ++c) {
      const int64_t lo = boundaries[c], hi = boundaries[c + 1];
      for (int64_t i = lo + 1; i < hi; ++i) {
        const int64_t m = std::min<int64_t>(options.attach_edges, i - lo);
        for (int64_t a = 0; a < m; ++a) {
          std::vector<double> weights(i - lo);
          for (int64_t j = lo; j < i; ++j) weights[j - lo] = degree[j] + 1.0;
          const int64_t j = lo + static_cast<int64_t>(rng.Discrete(weights));
          if (!seen.insert({static_cast<NodeId>(i), static_cast<NodeId>(j)})
                   .second) {
            continue;
          }
          make_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
          degree[i] += 1.0;
          degree[j] += 1.0;
        }
      }
    }
  } else {
    for (int64_t c = 0; c < k; ++c) {
      const int64_t lo = boundaries[c], hi = boundaries[c + 1];
      for (int64_t src = lo; src < hi; ++src) {
        for (int64_t dst = lo; dst < hi; ++dst) {
          if (src == dst) continue;
          if (rng.Bernoulli(options.edge_prob)) {
            make_edge(static_cast<NodeId>(src), static_cast<NodeId>(dst));
          }
        }
      }
    }
  }

  if (options.self_loop_prob > 0) {
    for (int64_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(options.self_loop_prob)) {
        make_edge(static_cast<NodeId>(i), static_cast<NodeId>(i));
      }
    }
  }

  std::vector<int64_t> in_degree(n, 0);
  for (const EdgeRecord& e : out.edges) in_degree[e.dst]++;
  for (int64_t d : in_degree) out.max_in_degree = std::max(out.max_in_degree, d);
  return out;
}

}  // namespace agl::testing
