#include "testing/reference_analytics.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <tuple>
#include <unordered_map>

namespace agl::testing {
namespace {

using flat::EdgeRecord;
using flat::NodeId;
using flat::NodeRecord;

struct PlainEdge {
  NodeId src = 0;
  NodeId dst = 0;
  float weight = 1.f;
};

/// The engine's documented normalization, re-implemented: optional
/// symmetrization, then parallel (src, dst) rows collapse to the
/// minimum-weight edge.
std::vector<PlainEdge> Normalize(const std::vector<EdgeRecord>& edges,
                                 bool symmetrize) {
  std::vector<PlainEdge> out;
  out.reserve(edges.size() * (symmetrize ? 2 : 1));
  for (const EdgeRecord& e : edges) {
    out.push_back({e.src, e.dst, e.weight});
    if (symmetrize && e.src != e.dst) out.push_back({e.dst, e.src, e.weight});
  }
  std::sort(out.begin(), out.end(), [](const PlainEdge& a, const PlainEdge& b) {
    return std::tie(a.src, a.dst, a.weight) <
           std::tie(b.src, b.dst, b.weight);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const PlainEdge& a, const PlainEdge& b) {
                          return a.src == b.src && a.dst == b.dst;
                        }),
            out.end());
  return out;
}

std::vector<NodeId> SortedIds(const std::vector<NodeRecord>& nodes) {
  std::vector<NodeId> ids;
  ids.reserve(nodes.size());
  for (const NodeRecord& n : nodes) ids.push_back(n.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

AnalyticsValues ReferencePageRank(const std::vector<NodeRecord>& nodes,
                                  const std::vector<EdgeRecord>& edges,
                                  double damping, double tolerance,
                                  int max_iters) {
  const std::vector<NodeId> ids = SortedIds(nodes);
  const auto n = static_cast<int64_t>(ids.size());
  std::unordered_map<NodeId, int64_t> index;
  index.reserve(ids.size());
  for (int64_t i = 0; i < n; ++i) index[ids[i]] = i;

  const std::vector<PlainEdge> plain = Normalize(edges, /*symmetrize=*/false);
  std::vector<int64_t> out_degree(n, 0);
  for (const PlainEdge& e : plain) out_degree[index.at(e.src)]++;

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < max_iters; ++iter) {
    std::fill(next.begin(), next.end(),
              (1.0 - damping) / static_cast<double>(n));
    for (const PlainEdge& e : plain) {
      const int64_t u = index.at(e.src);
      next[index.at(e.dst)] +=
          damping * rank[u] / static_cast<double>(out_degree[u]);
    }
    double residual = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      residual = std::max(residual, std::abs(next[i] - rank[i]));
    }
    rank.swap(next);
    if (residual <= tolerance) break;
  }

  AnalyticsValues result;
  result.reserve(n);
  for (int64_t i = 0; i < n; ++i) result.emplace_back(ids[i], rank[i]);
  return result;
}

AnalyticsValues ReferenceConnectedComponents(
    const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges) {
  std::unordered_map<NodeId, NodeId> parent;
  parent.reserve(nodes.size());
  for (const NodeRecord& n : nodes) parent[n.id] = n.id;
  std::function<NodeId(NodeId)> find = [&](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const EdgeRecord& e : edges) parent[find(e.src)] = find(e.dst);

  std::unordered_map<NodeId, NodeId> component_min;
  for (const NodeRecord& n : nodes) {
    const NodeId root = find(n.id);
    auto it = component_min.find(root);
    if (it == component_min.end()) {
      component_min[root] = n.id;
    } else {
      it->second = std::min(it->second, n.id);
    }
  }

  AnalyticsValues result;
  result.reserve(nodes.size());
  for (const NodeRecord& n : nodes) {
    result.emplace_back(n.id,
                        static_cast<double>(component_min.at(find(n.id))));
  }
  std::sort(result.begin(), result.end());
  return result;
}

AnalyticsValues ReferenceSssp(const std::vector<NodeRecord>& nodes,
                              const std::vector<EdgeRecord>& edges,
                              NodeId source) {
  const std::vector<PlainEdge> plain = Normalize(edges, /*symmetrize=*/false);
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, float>>> adj;
  for (const PlainEdge& e : plain) adj[e.src].emplace_back(e.dst, e.weight);

  std::unordered_map<NodeId, double> dist;
  dist.reserve(nodes.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (const NodeRecord& n : nodes) dist[n.id] = kInf;
  dist[source] = 0.0;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  frontier.emplace(0.0, source);
  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist.at(u)) continue;
    auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (const auto& [v, w] : it->second) {
      // The exact relaxation expression the engine evaluates.
      const double candidate = d + static_cast<double>(w);
      if (candidate < dist.at(v)) {
        dist[v] = candidate;
        frontier.emplace(candidate, v);
      }
    }
  }

  AnalyticsValues result;
  result.reserve(nodes.size());
  for (const NodeRecord& n : nodes) result.emplace_back(n.id, dist.at(n.id));
  std::sort(result.begin(), result.end());
  return result;
}

AnalyticsValues ReferenceLabelPropagation(
    const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges, int rounds) {
  const std::vector<PlainEdge> plain = Normalize(edges, /*symmetrize=*/true);
  std::unordered_map<NodeId, std::vector<NodeId>> neighbors;
  for (const PlainEdge& e : plain) neighbors[e.dst].push_back(e.src);

  std::unordered_map<NodeId, double> label;
  label.reserve(nodes.size());
  for (const NodeRecord& n : nodes) label[n.id] = static_cast<double>(n.id);

  for (int r = 0; r < rounds; ++r) {
    std::unordered_map<NodeId, double> next = label;
    bool changed = false;
    for (const NodeRecord& n : nodes) {
      auto it = neighbors.find(n.id);
      if (it == neighbors.end()) continue;
      std::map<double, int64_t> votes;
      for (NodeId u : it->second) ++votes[label.at(u)];
      double best_label = label.at(n.id);
      int64_t best_count = 0;
      for (const auto& [candidate, count] : votes) {
        if (count > best_count) {
          best_count = count;
          best_label = candidate;
        }
      }
      if (best_label != label.at(n.id)) changed = true;
      next[n.id] = best_label;
    }
    label.swap(next);
    if (!changed) break;
  }

  AnalyticsValues result;
  result.reserve(nodes.size());
  for (const NodeRecord& n : nodes) result.emplace_back(n.id, label.at(n.id));
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace agl::testing
