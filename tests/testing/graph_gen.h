// Deterministic random-graph generator for the test suites.
//
// Two topologies cover the regimes the pipeline must be exercised in:
// power-law graphs (preferential attachment — produces the hubs that
// trigger GraphFlat's re-indexing) and Erdős–Rényi G(n, p) (homogeneous
// degrees). Every node carries features and a label (a configurable
// fraction unlabeled), and edges carry weights plus optional edge
// features, so the generated tables drive every GraphFlat code path.
// Identical options (including seed) always produce the identical graph.

#pragma once

#include <cstdint>
#include <vector>

#include "flat/tables.h"

namespace agl::testing {

struct GraphGenOptions {
  enum class Topology {
    kPowerLaw,    // preferential attachment; hubs emerge
    kErdosRenyi,  // independent edge coin-flips
  };
  Topology topology = Topology::kPowerLaw;
  int64_t num_nodes = 60;
  /// Power-law: directed edges attached from each new node to existing
  /// nodes drawn by degree.
  int64_t attach_edges = 3;
  /// Erdős–Rényi: probability of each directed edge (self-loops excluded).
  double edge_prob = 0.05;
  int64_t node_feature_dim = 4;
  /// 0 omits edge features entirely (exercises the no-edge-feature path).
  int64_t edge_feature_dim = 0;
  int64_t num_classes = 3;
  /// Fraction of nodes left unlabeled (label = -1).
  double unlabeled_fraction = 0.25;
  /// Every edge weight is exactly 1.0 (skips the weight draw) — the
  /// unweighted regime for label propagation / unweighted SSSP.
  bool unit_weights = false;
  /// Edge-weight range for the weighted regime (ignored by unit_weights).
  double min_weight = 0.1;
  double max_weight = 1.0;
  /// Per-node probability of a self-loop, appended after the topology's
  /// edges. 0 (the default) draws nothing.
  double self_loop_prob = 0.0;
  /// > 1 partitions the nodes into that many contiguous blocks with no
  /// edges across blocks — the disconnected graph family for CC/SSSP
  /// reachability tests.
  int64_t num_components = 1;
  uint64_t seed = 1;
};

struct GeneratedGraph {
  std::vector<flat::NodeRecord> nodes;
  std::vector<flat::EdgeRecord> edges;
  /// Largest in-degree — handy for picking hub thresholds that do / don't
  /// trigger re-indexing.
  int64_t max_in_degree = 0;
};

/// Generates a graph per `options`; deterministic in all fields.
GeneratedGraph MakeGraph(const GraphGenOptions& options);

}  // namespace agl::testing
