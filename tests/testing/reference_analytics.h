// Naive single-threaded reference oracles for the analytics layer's four
// vertex programs. These deliberately do NOT use src/analytics — they are
// the independent side of the differential tests in analytics_test.cpp.
//
// Each oracle applies the same adjacency normalization the engine
// documents (symmetrization for undirected algorithms, parallel-edge
// collapse to the minimum weight) but with its own textbook algorithm:
// power iteration, union-find, Dijkstra, synchronous label propagation.
// Results come back as (node id, value) pairs sorted by id — the same
// shape as analytics::AnalyticsResult::values.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "flat/tables.h"

namespace agl::testing {

using AnalyticsValues = std::vector<std::pair<flat::NodeId, double>>;

/// Power iteration to a global L-inf residual of `tolerance` (or
/// `max_iters`): rank_v = (1-d)/N + d * sum over in-neighbors u of
/// rank_u / out_degree_u. Weights ignored; dangling mass dropped.
AnalyticsValues ReferencePageRank(const std::vector<flat::NodeRecord>& nodes,
                                  const std::vector<flat::EdgeRecord>& edges,
                                  double damping, double tolerance,
                                  int max_iters);

/// Union-find over the edges (direction ignored); each vertex's value is
/// the smallest node id in its weakly connected component.
AnalyticsValues ReferenceConnectedComponents(
    const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges);

/// Dijkstra over the directed weighted graph (parallel edges collapse to
/// the minimum weight); unreachable vertices are +inf. Weights must be
/// non-negative.
AnalyticsValues ReferenceSssp(const std::vector<flat::NodeRecord>& nodes,
                              const std::vector<flat::EdgeRecord>& edges,
                              flat::NodeId source);

/// Exactly `rounds` synchronous Jacobi iterations of unweighted majority
/// label propagation on the symmetrized graph (ties toward the smallest
/// label, initial label = node id, isolated vertices keep theirs) —
/// mirrors the engine's superstep trajectory step for step.
AnalyticsValues ReferenceLabelPropagation(
    const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges, int rounds);

}  // namespace agl::testing
