// Tests for the command-line flag parser.

#include <gtest/gtest.h>

#include "common/flags.h"

namespace agl {
namespace {

TEST(FlagParserTest, ParsesAllTypes) {
  std::string s = "default";
  int64_t i = 1;
  double d = 0.5;
  bool b = false;
  FlagParser parser;
  parser.AddString("name", &s)
      .AddInt("count", &i)
      .AddDouble("rate", &d)
      .AddBool("flag", &b);
  ASSERT_TRUE(parser
                  .Parse({"-name", "hello", "-count", "42", "-rate", "2.5",
                          "-flag", "true"})
                  .ok());
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(i, 42);
  EXPECT_EQ(d, 2.5);
  EXPECT_TRUE(b);
}

TEST(FlagParserTest, DoubleDashAndEqualsSyntax) {
  int64_t i = 0;
  std::string s;
  FlagParser parser;
  parser.AddInt("count", &i).AddString("name", &s);
  ASSERT_TRUE(parser.Parse({"--count=7", "--name", "x"}).ok());
  EXPECT_EQ(i, 7);
  EXPECT_EQ(s, "x");
}

TEST(FlagParserTest, BareBooleanFlag) {
  bool verbose = false;
  int64_t n = 0;
  FlagParser parser;
  parser.AddBool("verbose", &verbose).AddInt("n", &n);
  ASSERT_TRUE(parser.Parse({"--verbose", "-n", "3"}).ok());
  EXPECT_TRUE(verbose);
  EXPECT_EQ(n, 3);
}

TEST(FlagParserTest, DefaultsPreservedWhenAbsent) {
  std::string s = "keep";
  int64_t i = 99;
  FlagParser parser;
  parser.AddString("s", &s).AddInt("i", &i);
  ASSERT_TRUE(parser.Parse(std::vector<std::string>{}).ok());
  EXPECT_EQ(s, "keep");
  EXPECT_EQ(i, 99);
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser parser;
  EXPECT_EQ(parser.Parse({"-bogus", "1"}).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, BadIntRejected) {
  int64_t i = 0;
  FlagParser parser;
  parser.AddInt("i", &i);
  EXPECT_FALSE(parser.Parse({"-i", "notanint"}).ok());
  EXPECT_FALSE(parser.Parse({"-i", "12abc"}).ok());
}

TEST(FlagParserTest, MissingValueRejected) {
  int64_t i = 0;
  FlagParser parser;
  parser.AddInt("i", &i);
  EXPECT_FALSE(parser.Parse({"-i"}).ok());
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  int64_t i = 0;
  FlagParser parser;
  parser.AddInt("i", &i);
  ASSERT_TRUE(parser.Parse({"first", "-i", "2", "second"}).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagParserTest, HelpListsFlags) {
  int64_t i = 5;
  FlagParser parser;
  parser.AddInt("count", &i, "how many");
  const std::string help = parser.Help();
  EXPECT_NE(help.find("count"), std::string::npos);
  EXPECT_NE(help.find("how many"), std::string::npos);
  EXPECT_NE(help.find("5"), std::string::npos);
}

}  // namespace
}  // namespace agl
