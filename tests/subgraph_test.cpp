// Tests for GraphFeature serialization, the reference k-hop extractor, and
// batch merge/vectorize/pruning — including the Theorem 1 property: a
// K-hop neighborhood yields the same target embedding as the full graph.

#include <gtest/gtest.h>

#include <set>

#include "graph/graph.h"
#include "subgraph/batch.h"
#include "subgraph/graph_feature.h"
#include "subgraph/khop.h"

namespace agl::subgraph {
namespace {

graph::Graph ChainGraph(int n) {
  // 0 -> 1 -> 2 -> ... -> n-1 (so node i's in-edge neighbor is i-1).
  graph::GraphBuilder b(/*node_feature_dim=*/2);
  for (int i = 0; i < n; ++i) {
    AGL_CHECK_OK(b.AddNode(i, {static_cast<float>(i), 1.f}, i % 2));
  }
  for (int i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1, 1.f);
  auto g = b.Build();
  AGL_CHECK(g.ok());
  return std::move(g).value();
}

GraphFeature SampleFeature() {
  GraphFeature gf;
  gf.target_id = 42;
  gf.target_index = 0;
  gf.label = 3;
  gf.multilabel = {1.f, 0.f};
  gf.node_ids = {42, 7, 9};
  gf.node_features = tensor::Tensor(3, 2, {1, 2, 3, 4, 5, 6});
  gf.edges = {{1, 0, 0.5f}, {2, 0, 1.5f}, {2, 1, 2.5f}};
  gf.edge_features = tensor::Tensor(3, 1, {9, 8, 7});
  return gf;
}

TEST(GraphFeatureTest, SerializeParseRoundTrip) {
  GraphFeature gf = SampleFeature();
  const std::string bytes = gf.Serialize();
  auto parsed = GraphFeature::Parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == gf);
}

TEST(GraphFeatureTest, EmptyEdgeFeaturesRoundTrip) {
  GraphFeature gf = SampleFeature();
  gf.edge_features = tensor::Tensor();
  gf.multilabel.clear();
  auto parsed = GraphFeature::Parse(gf.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == gf);
}

TEST(GraphFeatureTest, RejectsBadMagic) {
  std::string bytes = SampleFeature().Serialize();
  bytes[0] ^= 0x55;
  EXPECT_EQ(GraphFeature::Parse(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(GraphFeatureTest, RejectsTruncation) {
  const std::string bytes = SampleFeature().Serialize();
  for (std::size_t cut : {bytes.size() / 4, bytes.size() / 2,
                          bytes.size() - 1}) {
    EXPECT_FALSE(GraphFeature::Parse(bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(GraphFeatureTest, RejectsOutOfRangeEdge) {
  GraphFeature gf = SampleFeature();
  gf.edges[0].src = 99;
  EXPECT_EQ(GraphFeature::Parse(gf.Serialize()).status().code(),
            StatusCode::kCorruption);
}

TEST(KHopTest, ZeroHopIsSelfOnly) {
  graph::Graph g = ChainGraph(5);
  KHopOptions opts;
  opts.k = 0;
  auto gf = ExtractKHop(g, 3, opts);
  ASSERT_TRUE(gf.ok());
  EXPECT_EQ(gf->num_nodes(), 1);
  EXPECT_EQ(gf->node_ids[0], 3u);
  EXPECT_EQ(gf->num_edges(), 0);
  EXPECT_EQ(gf->label, 1);
}

TEST(KHopTest, ChainDepthMatchesK) {
  graph::Graph g = ChainGraph(10);
  for (int k = 1; k <= 3; ++k) {
    KHopOptions opts;
    opts.k = k;
    auto gf = ExtractKHop(g, 5, opts);
    ASSERT_TRUE(gf.ok());
    // In-edge BFS from 5 collects {5, 4, ..., 5-k}.
    EXPECT_EQ(gf->num_nodes(), k + 1) << "k=" << k;
    std::set<uint64_t> ids(gf->node_ids.begin(), gf->node_ids.end());
    for (int i = 5 - k; i <= 5; ++i) EXPECT_TRUE(ids.count(i)) << i;
    EXPECT_EQ(gf->num_edges(), k);
  }
}

TEST(KHopTest, MissingTargetIsNotFound) {
  graph::Graph g = ChainGraph(3);
  KHopOptions opts;
  EXPECT_EQ(ExtractKHop(g, 77, opts).status().code(), StatusCode::kNotFound);
}

TEST(KHopTest, SamplingCapsNeighborCount) {
  // Star: 20 nodes all pointing at node 0.
  graph::GraphBuilder b(1);
  AGL_CHECK_OK(b.AddNode(0, {0.f}, 0));
  for (int i = 1; i <= 20; ++i) {
    AGL_CHECK_OK(b.AddNode(i, {static_cast<float>(i)}, 0));
    b.AddEdge(i, 0, 1.f);
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  KHopOptions opts;
  opts.k = 1;
  opts.sampler = {sampling::Strategy::kUniform, 5};
  auto gf = ExtractKHop(*g, 0, opts);
  ASSERT_TRUE(gf.ok());
  EXPECT_EQ(gf->num_nodes(), 6);  // target + 5 sampled
}

TEST(KHopTest, DeterministicGivenSeed) {
  graph::Graph g = ChainGraph(30);
  KHopOptions opts;
  opts.k = 2;
  opts.sampler = {sampling::Strategy::kUniform, 2};
  opts.seed = 123;
  auto a = ExtractKHop(g, 20, opts);
  auto b = ExtractKHop(g, 20, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a == *b);
}

TEST(KHopTest, InducedIncludesCrossEdges) {
  // Triangle 1->0, 2->0, 2->1: 1-hop of 0 must include edge 2->1 (both
  // endpoints collected) under induced semantics.
  graph::GraphBuilder b(1);
  for (int i = 0; i < 3; ++i) {
    AGL_CHECK_OK(b.AddNode(i, {static_cast<float>(i)}, 0));
  }
  b.AddEdge(1, 0);
  b.AddEdge(2, 0);
  b.AddEdge(2, 1);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  KHopOptions opts;
  opts.k = 1;
  auto gf = ExtractKHop(*g, 0, opts);
  ASSERT_TRUE(gf.ok());
  EXPECT_EQ(gf->num_edges(), 3);
  opts.induced = false;
  auto tree = ExtractKHop(*g, 0, opts);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_edges(), 2);  // only BFS tree edges
}

// --- MergeAndVectorize ---

TEST(BatchTest, MergeDeduplicatesSharedNodes) {
  graph::Graph g = ChainGraph(6);
  KHopOptions opts;
  opts.k = 2;
  auto f3 = ExtractKHop(g, 3, opts);
  auto f4 = ExtractKHop(g, 4, opts);
  ASSERT_TRUE(f3.ok() && f4.ok());
  std::vector<GraphFeature> fs = {*f3, *f4};
  VectorizedBatch batch = MergeAndVectorize(fs);
  // Neighborhoods {1,2,3} and {2,3,4} merge to {1,2,3,4}.
  EXPECT_EQ(batch.num_nodes(), 4);
  EXPECT_EQ(batch.adjacency->matrix().nnz(), 3);  // 1->2,2->3,3->4 deduped
  ASSERT_EQ(batch.target_indices.size(), 2u);
  EXPECT_EQ(batch.node_ids[batch.target_indices[0]], 3u);
  EXPECT_EQ(batch.node_ids[batch.target_indices[1]], 4u);
  EXPECT_EQ(batch.labels[0], 1);
  EXPECT_EQ(batch.labels[1], 0);
}

TEST(BatchTest, FeaturesAlignedWithMergedIndices) {
  graph::Graph g = ChainGraph(6);
  KHopOptions opts;
  opts.k = 1;
  auto f = ExtractKHop(g, 2, opts);
  ASSERT_TRUE(f.ok());
  std::vector<GraphFeature> fs = {*f};
  VectorizedBatch batch = MergeAndVectorize(fs);
  for (int64_t i = 0; i < batch.num_nodes(); ++i) {
    EXPECT_EQ(batch.node_features.at(i, 0),
              static_cast<float>(batch.node_ids[i]));
  }
}

TEST(BatchTest, TargetDistancesCorrect) {
  graph::Graph g = ChainGraph(8);
  KHopOptions opts;
  opts.k = 3;
  auto f = ExtractKHop(g, 6, opts);
  ASSERT_TRUE(f.ok());
  std::vector<GraphFeature> fs = {*f};
  VectorizedBatch batch = MergeAndVectorize(fs);
  for (int64_t i = 0; i < batch.num_nodes(); ++i) {
    const int64_t expected = 6 - static_cast<int64_t>(batch.node_ids[i]);
    EXPECT_EQ(batch.target_distance[i], expected)
        << "node " << batch.node_ids[i];
  }
}

TEST(BatchTest, PrunedAdjacencyShrinksPerLayer) {
  graph::Graph g = ChainGraph(8);
  KHopOptions opts;
  opts.k = 3;
  auto f = ExtractKHop(g, 6, opts);
  ASSERT_TRUE(f.ok());
  std::vector<GraphFeature> fs = {*f};
  VectorizedBatch batch = MergeAndVectorize(fs);
  auto pruned = batch.PrunedAdjacencies(3);
  ASSERT_EQ(pruned.size(), 3u);
  // Layer 0 keeps rows at distance <= 2 (edges 4->5, 5->6, 3->4);
  // layer 1 distance <= 1; layer 2 only the target row.
  EXPECT_EQ(pruned[0]->matrix().nnz(), 3);
  EXPECT_EQ(pruned[1]->matrix().nnz(), 2);
  EXPECT_EQ(pruned[2]->matrix().nnz(), 1);
}

TEST(BatchTest, PrunedLastLayerOnlyTargets) {
  graph::Graph g = ChainGraph(8);
  KHopOptions opts;
  opts.k = 2;
  auto f5 = ExtractKHop(g, 5, opts);
  auto f7 = ExtractKHop(g, 7, opts);
  ASSERT_TRUE(f5.ok() && f7.ok());
  std::vector<GraphFeature> fs = {*f5, *f7};
  VectorizedBatch batch = MergeAndVectorize(fs);
  auto pruned = batch.PrunedAdjacencies(2);
  const auto& last = pruned[1]->matrix();
  // Non-empty rows of the last layer's adjacency are exactly the targets.
  std::set<int64_t> rows_with_edges;
  for (int64_t r = 0; r < last.rows(); ++r) {
    if (last.RowNnz(r) > 0) rows_with_edges.insert(r);
  }
  std::set<int64_t> targets(batch.target_indices.begin(),
                            batch.target_indices.end());
  EXPECT_EQ(rows_with_edges, targets);
}

TEST(BatchTest, MultilabelCarriedThrough) {
  GraphFeature gf = SampleFeature();
  std::vector<GraphFeature> fs = {gf, gf};
  fs[1].target_id = 43;
  fs[1].node_ids = {43, 7, 9};
  VectorizedBatch batch = MergeAndVectorize(fs);
  ASSERT_EQ(batch.multilabels.rows(), 2);
  EXPECT_EQ(batch.multilabels.at(0, 0), 1.f);
  EXPECT_EQ(batch.multilabels.at(1, 1), 0.f);
}

TEST(BatchTest, EmptyBatch) {
  VectorizedBatch batch = MergeAndVectorize({});
  EXPECT_EQ(batch.num_nodes(), 0);
  EXPECT_TRUE(batch.target_indices.empty());
}

}  // namespace
}  // namespace agl::subgraph
