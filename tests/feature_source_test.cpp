// Tests for the streaming DFS feature source: shard coverage/disjointness
// and corruption surfacing.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "flat/graphflat.h"
#include "trainer/feature_source.h"
#include "trainer/trainer.h"

namespace agl::trainer {
namespace {

// Flips one byte near the end of `path` without changing its size: the
// dataset manifest (which records part sizes) stays satisfied, so the
// corruption is only caught by the per-record checksum at read time —
// the layer these tests exercise.
void FlipTrailingByte(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -3, SEEK_END), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, -3, SEEK_END), 0);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);
}

class FeatureSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("agl_fsrc_" + std::to_string(::getpid())))
                .string();
    auto dfs = mr::LocalDfs::Open(root_);
    AGL_CHECK(dfs.ok());
    dfs_ = std::make_unique<mr::LocalDfs>(std::move(dfs).value());

    // A chain graph flattened to 10 features over 4 parts.
    std::vector<flat::NodeRecord> nodes;
    std::vector<flat::EdgeRecord> edges;
    for (int i = 0; i < 10; ++i) {
      nodes.push_back({static_cast<flat::NodeId>(i),
                       {static_cast<float>(i)},
                       i % 2,
                       {}});
      if (i > 0) {
        edges.push_back({static_cast<flat::NodeId>(i - 1),
                         static_cast<flat::NodeId>(i), 1.f,
                         {}});
      }
    }
    flat::GraphFlatConfig config;
    config.hops = 1;
    config.output_parts = 4;
    auto stats =
        flat::RunGraphFlat(config, nodes, edges, dfs_.get(), "features");
    AGL_CHECK(stats.ok());
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<mr::LocalDfs> dfs_;
};

TEST_F(FeatureSourceTest, ReadAllSeesEveryFeature) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->num_parts(), 4);
  auto all = src->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 10u);
}

TEST_F(FeatureSourceTest, ShardsPartitionTheDataset) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  std::multiset<uint64_t> seen;
  for (int w = 0; w < 3; ++w) {
    auto shard = src->ReadShard(w, 3);
    ASSERT_TRUE(shard.ok());
    for (const auto& gf : *shard) seen.insert(gf.target_id);
  }
  EXPECT_EQ(seen.size(), 10u);  // every feature exactly once
  std::set<uint64_t> uniq(seen.begin(), seen.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST_F(FeatureSourceTest, MoreWorkersThanPartsGetEmptyShards) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  auto shard = src->ReadShard(7, 8);  // only 4 parts exist
  ASSERT_TRUE(shard.ok());
  EXPECT_TRUE(shard->empty());
}

TEST_F(FeatureSourceTest, BadShardSpecRejected) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  EXPECT_FALSE(src->ReadShard(-1, 2).ok());
  EXPECT_FALSE(src->ReadShard(2, 2).ok());
  EXPECT_FALSE(src->ReadShard(0, 0).ok());
}

TEST_F(FeatureSourceTest, ScanStopsOnCallbackError) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  int count = 0;
  agl::Status s = src->ScanPart(0, [&](subgraph::GraphFeature) {
    if (++count >= 2) return agl::Status::Aborted("enough");
    return agl::Status::OK();
  });
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(count, 2);
}

TEST_F(FeatureSourceTest, MissingDatasetIsNotFound) {
  EXPECT_EQ(DfsFeatureSource::Open(*dfs_, "nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(FeatureSourceTest, ReadsUnmergedShardFamilyTransparently) {
  // An unmerged "<dataset>.shard-NN" family (sharded GraphFlat staging
  // layout) reads as one logical dataset with all parts bound in shard
  // order.
  auto records = dfs_->ReadDataset("features");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  std::vector<std::string> a(records->begin(), records->begin() + 6);
  std::vector<std::string> b(records->begin() + 6, records->end());
  ASSERT_TRUE(
      dfs_->WriteDataset(mr::ShardDatasetName("fam", 0), a, 2).ok());
  ASSERT_TRUE(
      dfs_->WriteDataset(mr::ShardDatasetName("fam", 1), b, 2).ok());

  auto src = DfsFeatureSource::Open(*dfs_, "fam");
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->num_parts(), 4);
  auto all = src->ReadAll();
  ASSERT_TRUE(all.ok());
  std::multiset<uint64_t> ids;
  for (const auto& gf : *all) ids.insert(gf.target_id);
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()).size(), 10u);
}

TEST_F(FeatureSourceTest, CorruptPartSurfacesAsError) {
  auto parts = dfs_->ListParts("features");
  ASSERT_TRUE(parts.ok());
  FlipTrailingByte((*parts)[0]);
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  EXPECT_FALSE(src->ReadAll().ok());
}

// --- StreamingShardReader --------------------------------------------------

TEST_F(FeatureSourceTest, StreamingMatchesMaterializedShardOrder) {
  // The prefetching stream must yield exactly ReadShard's records in
  // exactly ReadShard's order (parts round-robin, records in file order) —
  // the trainer relies on this for pipeline/inline equivalence.
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  for (int workers : {1, 2, 3}) {
    for (int w = 0; w < workers; ++w) {
      auto materialized = src->ReadShard(w, workers);
      ASSERT_TRUE(materialized.ok());
      StreamingShardReader::Options opts;
      opts.batch_size = 3;
      auto reader = StreamingShardReader::Open(*src, w, workers, opts);
      ASSERT_TRUE(reader.ok());
      std::vector<uint64_t> streamed;
      while (true) {
        auto batch = (*reader)->Next();
        ASSERT_TRUE(batch.ok()) << batch.status().ToString();
        if (batch->empty()) break;
        EXPECT_LE(batch->size(), 3u);
        for (const auto& gf : *batch) streamed.push_back(gf.target_id);
      }
      ASSERT_EQ(streamed.size(), materialized->size());
      for (std::size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_EQ(streamed[i], (*materialized)[i].target_id) << i;
      }
    }
  }
}

TEST_F(FeatureSourceTest, StreamingReaderEndIsSticky) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  auto reader =
      StreamingShardReader::Open(*src, 0, 1, {.batch_size = 100});
  ASSERT_TRUE(reader.ok());
  auto batch = (*reader)->Next();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 10u);  // whole dataset in one batch
  for (int i = 0; i < 3; ++i) {
    auto end = (*reader)->Next();
    ASSERT_TRUE(end.ok());
    EXPECT_TRUE(end->empty());
  }
}

TEST_F(FeatureSourceTest, StreamingReaderBadSpecRejected) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  EXPECT_FALSE(StreamingShardReader::Open(*src, -1, 2, {}).ok());
  EXPECT_FALSE(StreamingShardReader::Open(*src, 2, 2, {}).ok());
  EXPECT_FALSE(
      StreamingShardReader::Open(*src, 0, 1, {.batch_size = 0}).ok());
}

TEST_F(FeatureSourceTest, StreamingReaderCancelUnblocks) {
  // With a depth-1 queue and batch_size 1 the reader parks on the queue
  // almost immediately; Cancel() must release it and poison Next().
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  auto reader = StreamingShardReader::Open(
      *src, 0, 1, {.batch_size = 1, .prefetch_batches = 1});
  ASSERT_TRUE(reader.ok());
  auto first = (*reader)->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 1u);
  (*reader)->Cancel();
  auto after = (*reader)->Next();
  EXPECT_EQ(after.status().code(), StatusCode::kAborted);
  // Destructor must join cleanly (implicitly tested by scope exit).
}

TEST_F(FeatureSourceTest, StreamingReaderSurfacesCorruption) {
  auto parts = dfs_->ListParts("features");
  ASSERT_TRUE(parts.ok());
  FlipTrailingByte((*parts)[0]);
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  auto reader =
      StreamingShardReader::Open(*src, 0, 1, {.batch_size = 2});
  ASSERT_TRUE(reader.ok());
  agl::Status last = agl::Status::OK();
  for (int i = 0; i < 32 && last.ok(); ++i) {
    auto batch = (*reader)->Next();
    if (!batch.ok()) {
      last = batch.status();
      break;
    }
    ASSERT_FALSE(batch->empty()) << "stream ended without surfacing error";
  }
  EXPECT_FALSE(last.ok());
  EXPECT_NE(last.code(), StatusCode::kAborted);  // the real read error
}

TEST_F(FeatureSourceTest, TrainStreamingMatchesMaterializedTraining) {
  // One worker, async: the stream yields the same batches in the same
  // order as training over ReadAll()'s span, so the trajectories agree.
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  auto all = src->ReadAll();
  ASSERT_TRUE(all.ok());

  TrainerConfig config;
  config.model.type = gnn::ModelType::kGcn;
  config.model.num_layers = 1;
  config.model.in_dim = 1;
  config.model.hidden_dim = 4;
  config.model.out_dim = 2;
  config.model.dropout = 0.f;
  config.task = TaskKind::kBinaryAuc;
  config.num_workers = 1;
  config.batch_size = 4;
  config.epochs = 3;
  config.eval_every = 0;

  auto streamed = GraphTrainer(config).TrainStreaming(*src, {});
  auto materialized = GraphTrainer(config).Train(*all, {});
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ASSERT_TRUE(materialized.ok());
  ASSERT_EQ(streamed->epochs.size(), materialized->epochs.size());
  for (std::size_t i = 0; i < streamed->epochs.size(); ++i) {
    EXPECT_EQ(streamed->epochs[i].mean_train_loss,
              materialized->epochs[i].mean_train_loss)
        << "epoch " << i;
  }
  for (const auto& [key, value] : materialized->final_state) {
    EXPECT_TRUE(streamed->final_state.at(key).AllClose(value, 0.f)) << key;
  }
}

TEST_F(FeatureSourceTest, TrainStreamingRejectsBsp) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  TrainerConfig config;
  config.sync_mode = SyncMode::kBsp;
  auto report = GraphTrainer(config).TrainStreaming(*src, {});
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FeatureSourceTest, TrainStreamingSspLockstep) {
  // Multi-worker SSP straight off the DFS: bound 0 lockstep must finish
  // and never admit a pull beyond the bound.
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  TrainerConfig config;
  config.model.type = gnn::ModelType::kGcn;
  config.model.num_layers = 1;
  config.model.in_dim = 1;
  config.model.hidden_dim = 4;
  config.model.out_dim = 2;
  config.task = TaskKind::kBinaryAuc;
  config.sync_mode = SyncMode::kSsp;
  config.staleness_bound = 0;
  config.num_workers = 3;
  config.batch_size = 2;
  config.epochs = 2;
  config.eval_every = 0;
  auto report = GraphTrainer(config).TrainStreaming(*src, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->ps_stats.max_staleness, 0);
  EXPECT_GT(report->ps_stats.ssp_commits, 0);
}

}  // namespace
}  // namespace agl::trainer
