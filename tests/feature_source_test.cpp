// Tests for the streaming DFS feature source: shard coverage/disjointness
// and corruption surfacing.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "flat/graphflat.h"
#include "trainer/feature_source.h"

namespace agl::trainer {
namespace {

class FeatureSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("agl_fsrc_" + std::to_string(::getpid())))
                .string();
    auto dfs = mr::LocalDfs::Open(root_);
    AGL_CHECK(dfs.ok());
    dfs_ = std::make_unique<mr::LocalDfs>(std::move(dfs).value());

    // A chain graph flattened to 10 features over 4 parts.
    std::vector<flat::NodeRecord> nodes;
    std::vector<flat::EdgeRecord> edges;
    for (int i = 0; i < 10; ++i) {
      nodes.push_back({static_cast<flat::NodeId>(i),
                       {static_cast<float>(i)},
                       i % 2,
                       {}});
      if (i > 0) {
        edges.push_back({static_cast<flat::NodeId>(i - 1),
                         static_cast<flat::NodeId>(i), 1.f,
                         {}});
      }
    }
    flat::GraphFlatConfig config;
    config.hops = 1;
    config.output_parts = 4;
    auto stats =
        flat::RunGraphFlat(config, nodes, edges, dfs_.get(), "features");
    AGL_CHECK(stats.ok());
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<mr::LocalDfs> dfs_;
};

TEST_F(FeatureSourceTest, ReadAllSeesEveryFeature) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->num_parts(), 4);
  auto all = src->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 10u);
}

TEST_F(FeatureSourceTest, ShardsPartitionTheDataset) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  std::multiset<uint64_t> seen;
  for (int w = 0; w < 3; ++w) {
    auto shard = src->ReadShard(w, 3);
    ASSERT_TRUE(shard.ok());
    for (const auto& gf : *shard) seen.insert(gf.target_id);
  }
  EXPECT_EQ(seen.size(), 10u);  // every feature exactly once
  std::set<uint64_t> uniq(seen.begin(), seen.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST_F(FeatureSourceTest, MoreWorkersThanPartsGetEmptyShards) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  auto shard = src->ReadShard(7, 8);  // only 4 parts exist
  ASSERT_TRUE(shard.ok());
  EXPECT_TRUE(shard->empty());
}

TEST_F(FeatureSourceTest, BadShardSpecRejected) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  EXPECT_FALSE(src->ReadShard(-1, 2).ok());
  EXPECT_FALSE(src->ReadShard(2, 2).ok());
  EXPECT_FALSE(src->ReadShard(0, 0).ok());
}

TEST_F(FeatureSourceTest, ScanStopsOnCallbackError) {
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  int count = 0;
  agl::Status s = src->ScanPart(0, [&](subgraph::GraphFeature) {
    if (++count >= 2) return agl::Status::Aborted("enough");
    return agl::Status::OK();
  });
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(count, 2);
}

TEST_F(FeatureSourceTest, MissingDatasetIsNotFound) {
  EXPECT_EQ(DfsFeatureSource::Open(*dfs_, "nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(FeatureSourceTest, ReadsUnmergedShardFamilyTransparently) {
  // An unmerged "<dataset>.shard-NN" family (sharded GraphFlat staging
  // layout) reads as one logical dataset with all parts bound in shard
  // order.
  auto records = dfs_->ReadDataset("features");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  std::vector<std::string> a(records->begin(), records->begin() + 6);
  std::vector<std::string> b(records->begin() + 6, records->end());
  ASSERT_TRUE(
      dfs_->WriteDataset(mr::ShardDatasetName("fam", 0), a, 2).ok());
  ASSERT_TRUE(
      dfs_->WriteDataset(mr::ShardDatasetName("fam", 1), b, 2).ok());

  auto src = DfsFeatureSource::Open(*dfs_, "fam");
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->num_parts(), 4);
  auto all = src->ReadAll();
  ASSERT_TRUE(all.ok());
  std::multiset<uint64_t> ids;
  for (const auto& gf : *all) ids.insert(gf.target_id);
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()).size(), 10u);
}

TEST_F(FeatureSourceTest, CorruptPartSurfacesAsError) {
  auto parts = dfs_->ListParts("features");
  ASSERT_TRUE(parts.ok());
  // Truncate one part file mid-record.
  std::filesystem::resize_file((*parts)[0],
                               std::filesystem::file_size((*parts)[0]) - 5);
  auto src = DfsFeatureSource::Open(*dfs_, "features");
  ASSERT_TRUE(src.ok());
  EXPECT_FALSE(src->ReadAll().ok());
}

}  // namespace
}  // namespace agl::trainer
