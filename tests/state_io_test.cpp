// Tests for state-dict serialization and trainer checkpoint/resume.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "data/dataset.h"
#include "flat/graphflat.h"
#include "nn/state_io.h"
#include "trainer/trainer.h"

namespace agl {
namespace {

using tensor::Tensor;

std::map<std::string, Tensor> RandomState(uint64_t seed) {
  Rng rng(seed);
  std::map<std::string, Tensor> state;
  state.emplace("layer0.weight", Tensor::RandomNormal(4, 8, 0, 1, &rng));
  state.emplace("layer0.bias", Tensor::RandomNormal(1, 8, 0, 1, &rng));
  state.emplace("layer1.weight", Tensor::RandomNormal(8, 2, 0, 1, &rng));
  return state;
}

TEST(StateIoTest, RoundTrip) {
  auto state = RandomState(1);
  auto parsed = nn::ParseStateDict(nn::SerializeStateDict(state));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), state.size());
  for (const auto& [key, value] : state) {
    ASSERT_TRUE(parsed->count(key) > 0) << key;
    EXPECT_TRUE(parsed->at(key).AllClose(value, 0.f));
  }
}

TEST(StateIoTest, EmptyState) {
  auto parsed = nn::ParseStateDict(nn::SerializeStateDict({}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(StateIoTest, RejectsBadMagic) {
  std::string bytes = nn::SerializeStateDict(RandomState(2));
  bytes[0] ^= 0x1;
  EXPECT_EQ(nn::ParseStateDict(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(StateIoTest, RejectsTruncation) {
  const std::string bytes = nn::SerializeStateDict(RandomState(3));
  EXPECT_FALSE(nn::ParseStateDict(bytes.substr(0, bytes.size() / 2)).ok());
}

TEST(StateIoTest, RejectsTrailingBytes) {
  std::string bytes = nn::SerializeStateDict(RandomState(4));
  bytes += "garbage";
  EXPECT_EQ(nn::ParseStateDict(bytes).status().code(),
            StatusCode::kCorruption);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("agl_ckpt_" + std::to_string(::getpid())))
                .string();
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::string root_;
};

TEST_F(CheckpointTest, SaveAndResume) {
  data::UugLikeOptions opts;
  opts.num_nodes = 150;
  opts.feature_dim = 6;
  opts.train_size = 80;
  opts.val_size = 30;
  opts.test_size = 30;
  data::Dataset ds = data::MakeUugLike(opts);
  flat::GraphFlatConfig fc;
  fc.hops = 1;
  auto features = flat::RunGraphFlatInMemory(fc, ds.nodes, ds.edges);
  ASSERT_TRUE(features.ok());
  auto splits = data::SplitFeatures(std::move(features).value(), ds);

  auto dfs = mr::LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());

  trainer::TrainerConfig config;
  config.model.type = gnn::ModelType::kGcn;
  config.model.num_layers = 1;
  config.model.in_dim = ds.feature_dim;
  config.model.hidden_dim = 4;
  config.model.out_dim = 2;
  config.task = trainer::TaskKind::kBinaryAuc;
  config.epochs = 3;
  config.batch_size = 16;
  config.checkpoint_dfs = &*dfs;
  config.checkpoint_prefix = "ckpt";
  trainer::GraphTrainer trainer(config);
  auto report = trainer.Train(splits.train, splits.val);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Each epoch left a checkpoint; the last one equals the final state.
  for (int epoch = 0; epoch < 3; ++epoch) {
    auto ckpt = trainer::LoadCheckpoint(*dfs, "ckpt", epoch);
    ASSERT_TRUE(ckpt.ok()) << "epoch " << epoch;
    EXPECT_EQ(ckpt->size(), report->final_state.size());
  }
  auto last = trainer::LoadCheckpoint(*dfs, "ckpt", 2);
  ASSERT_TRUE(last.ok());
  for (const auto& [key, value] : report->final_state) {
    EXPECT_TRUE(last->at(key).AllClose(value, 0.f)) << key;
  }

  // Resume: warm-starting from epoch-0 must be loadable and trainable.
  auto warm = trainer::LoadCheckpoint(*dfs, "ckpt", 0);
  ASSERT_TRUE(warm.ok());
  trainer::TrainerConfig resume_config = config;
  resume_config.checkpoint_dfs = nullptr;
  resume_config.initial_state = *warm;
  resume_config.epochs = 1;
  auto resumed =
      trainer::GraphTrainer(resume_config).Train(splits.train, splits.val);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->epochs.empty());
}

TEST_F(CheckpointTest, MissingCheckpointIsNotFound) {
  auto dfs = mr::LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  EXPECT_EQ(trainer::LoadCheckpoint(*dfs, "nope", 0).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace agl
