// Tests for the edge-featured extension: the EdgeGatedAggregate op's
// gradients and the EdgeGcnModel end-to-end (it must be able to learn a
// task where the *edge feature* decides which neighbors matter — something
// the edge-blind models cannot represent).

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "gnn/edge_model.h"
#include "nn/optimizer.h"
#include "subgraph/batch.h"

namespace agl::gnn {
namespace {

using autograd::Variable;
using tensor::SparseMatrix;
using tensor::Tensor;

autograd::AdjacencyPtr SmallAdj() {
  return std::make_shared<autograd::SharedAdjacency>(SparseMatrix::FromCoo(
      4, 4, {{0, 1, 1.f}, {0, 2, 2.f}, {1, 3, 1.f}, {2, 0, 0.5f},
             {3, 3, 1.f}}));
}

void CheckGrad(Variable param, const std::function<Variable()>& loss_fn) {
  autograd::Backward(loss_fn());
  Tensor analytic = param.grad();
  Tensor& value = param.mutable_value();
  const float eps = 1e-3f;
  for (int64_t i = 0; i < value.size(); ++i) {
    const float orig = value.data()[i];
    value.data()[i] = orig + eps;
    const float up = loss_fn().value().at(0, 0);
    value.data()[i] = orig - eps;
    const float down = loss_fn().value().at(0, 0);
    value.data()[i] = orig;
    EXPECT_NEAR(analytic.data()[i], (up - down) / (2 * eps), 2e-2f)
        << "element " << i;
  }
}

TEST(EdgeGatedAggregateTest, GradientWrtInputsAndGate) {
  Rng rng(51);
  autograd::AdjacencyPtr adj = SmallAdj();
  Variable h = Variable::Parameter(Tensor::RandomNormal(4, 3, 0, 1, &rng));
  Variable gate = Variable::Parameter(
      Tensor::RandomNormal(adj->matrix().nnz(), 1, 0, 1, &rng));
  auto loss = [&] {
    return autograd::Sum(autograd::EdgeGatedAggregate(adj, h, gate));
  };
  CheckGrad(h, loss);
  CheckGrad(gate, loss);
}

TEST(EdgeGatedAggregateTest, UnitGateEqualsSpmm) {
  Rng rng(52);
  autograd::AdjacencyPtr adj = SmallAdj();
  Variable h = Variable::Constant(Tensor::RandomNormal(4, 5, 0, 1, &rng));
  Variable ones =
      Variable::Constant(Tensor::Full(adj->matrix().nnz(), 1, 1.f));
  Variable gated = autograd::EdgeGatedAggregate(adj, h, ones);
  Variable plain = autograd::SpmmAggregate(adj, h);
  EXPECT_TRUE(gated.value().AllClose(plain.value(), 1e-6f));
}

TEST(EdgeGatedAggregateTest, ZeroGateBlocksAllFlow) {
  Rng rng(53);
  autograd::AdjacencyPtr adj = SmallAdj();
  Variable h = Variable::Constant(Tensor::RandomNormal(4, 5, 0, 1, &rng));
  Variable zeros =
      Variable::Constant(Tensor(adj->matrix().nnz(), 1));
  Variable out = autograd::EdgeGatedAggregate(adj, h, zeros);
  EXPECT_EQ(out.value().AbsMax(), 0.f);
}

TEST(EdgeGatedAggregateTest, ParallelMatchesSerial) {
  Rng rng(54);
  autograd::AdjacencyPtr adj = SmallAdj();
  Tensor h0 = Tensor::RandomNormal(4, 3, 0, 1, &rng);
  Tensor g0 = Tensor::RandomNormal(adj->matrix().nnz(), 1, 0, 1, &rng);
  auto run = [&](int threads) {
    Variable h = Variable::Parameter(h0);
    Variable gate = Variable::Parameter(g0);
    Variable out = autograd::EdgeGatedAggregate(adj, h, gate, {threads});
    autograd::Backward(autograd::Sum(out));
    return std::make_tuple(out.value(), h.grad(), gate.grad());
  };
  auto [o1, h1, g1] = run(1);
  auto [o4, h4, g4] = run(4);
  EXPECT_TRUE(o1.AllClose(o4, 1e-6f));
  EXPECT_TRUE(h1.AllClose(h4, 1e-6f));
  EXPECT_TRUE(g1.AllClose(g4, 1e-6f));
}

/// A batch where the label equals the feature of the neighbor connected by
/// a "strong" edge (edge feature [1]), while a decoy neighbor with a
/// "weak" edge (edge feature [0]) carries the opposite feature. Only an
/// edge-aware model can separate the two.
subgraph::VectorizedBatch EdgeTaskBatch(int num_targets, Rng* rng) {
  std::vector<subgraph::GraphFeature> features;
  for (int t = 0; t < num_targets; ++t) {
    subgraph::GraphFeature gf;
    const uint64_t base = static_cast<uint64_t>(t) * 3;
    gf.target_id = base;
    gf.target_index = 0;
    const int64_t label = rng->Bernoulli(0.5) ? 1 : 0;
    gf.label = label;
    gf.node_ids = {base, base + 1, base + 2};
    gf.node_features = Tensor(3, 1);
    gf.node_features.at(0, 0) = 0.f;  // target carries no signal
    gf.node_features.at(1, 0) = label == 1 ? 1.f : -1.f;   // true neighbor
    gf.node_features.at(2, 0) = label == 1 ? -1.f : 1.f;   // decoy
    gf.edges = {{1, 0, 1.f}, {2, 0, 1.f}};
    gf.edge_features = Tensor(2, 1);
    gf.edge_features.at(0, 0) = 1.f;  // strong edge -> true neighbor
    gf.edge_features.at(1, 0) = 0.f;  // weak edge -> decoy
    features.push_back(std::move(gf));
  }
  return subgraph::MergeAndVectorize(features);
}

TEST(EdgeGcnModelTest, LearnsEdgeConditionedTask) {
  Rng data_rng(55);
  subgraph::VectorizedBatch batch = EdgeTaskBatch(64, &data_rng);

  EdgeModelConfig config;
  config.num_layers = 1;
  config.in_dim = 1;
  config.edge_dim = 1;
  config.hidden_dim = 4;
  config.out_dim = 2;
  EdgeGcnModel model(config);
  nn::Adam::Options aopts;
  aopts.lr = 0.1f;
  nn::Adam opt(model.Parameters(), aopts);
  Rng rng(56);
  float last_loss = 1e9f;
  for (int step = 0; step < 200; ++step) {
    auto logits = model.Forward(batch, true, &rng);
    ASSERT_TRUE(logits.ok()) << logits.status().ToString();
    Variable loss = autograd::SoftmaxCrossEntropy(*logits, batch.labels);
    autograd::Backward(loss);
    opt.Step();
    last_loss = loss.value().at(0, 0);
  }
  // Without the edge gate this task is information-theoretically stuck at
  // ln 2 ≈ 0.69 (the two neighbors cancel); the gate separates them.
  EXPECT_LT(last_loss, 0.2f);
}

TEST(EdgeGcnModelTest, RejectsMissingEdgeFeatures) {
  Rng data_rng(57);
  subgraph::VectorizedBatch batch = EdgeTaskBatch(4, &data_rng);
  batch.edge_features = Tensor();  // strip them
  EdgeModelConfig config;
  config.num_layers = 1;
  config.in_dim = 1;
  config.edge_dim = 1;
  config.out_dim = 2;
  EdgeGcnModel model(config);
  Rng rng(58);
  EXPECT_EQ(model.Forward(batch, false, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EdgeGcnModelTest, ParameterNamesIncludeGate) {
  EdgeModelConfig config;
  config.num_layers = 2;
  config.in_dim = 3;
  config.edge_dim = 2;
  config.out_dim = 2;
  EdgeGcnModel model(config);
  bool has_gate = false;
  for (const auto& p : model.Parameters()) {
    if (p.name.rfind("gate.", 0) == 0) has_gate = true;
  }
  EXPECT_TRUE(has_gate);
}

}  // namespace
}  // namespace agl::gnn
