// Tests for the MapReduce engine: map/shuffle/reduce semantics, fault
// injection + retry, determinism, and the LocalDfs record store.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>

#include "mr/local_dfs.h"
#include "mr/mapreduce.h"

namespace agl::mr {
namespace {

/// Word-count style mapper: splits value on spaces, emits (word, "1").
class WordMapper : public Mapper {
 public:
  agl::Status Map(const KeyValue& input, Emitter* out) override {
    std::size_t start = 0;
    const std::string& s = input.value;
    while (start < s.size()) {
      std::size_t end = s.find(' ', start);
      if (end == std::string::npos) end = s.size();
      if (end > start) out->Emit(s.substr(start, end - start), "1");
      start = end + 1;
    }
    return agl::Status::OK();
  }
};

class CountReducer : public Reducer {
 public:
  agl::Status Reduce(const std::string& key,
                     const std::vector<std::string>& values,
                     Emitter* out) override {
    out->Emit(key, std::to_string(values.size()));
    return agl::Status::OK();
  }
};

std::vector<KeyValue> WordInput() {
  return {{"", "the quick brown fox"},
          {"", "the lazy dog"},
          {"", "the quick dog"}};
}

std::map<std::string, std::string> ToMap(const std::vector<KeyValue>& kvs) {
  std::map<std::string, std::string> m;
  for (const auto& kv : kvs) m[kv.key] = kv.value;
  return m;
}

TEST(MapReduceTest, WordCount) {
  JobConfig config;
  auto result = RunJob(config, WordInput(),
                       [] { return std::make_unique<WordMapper>(); },
                       [] { return std::make_unique<CountReducer>(); });
  ASSERT_TRUE(result.ok());
  auto counts = ToMap(*result);
  EXPECT_EQ(counts["the"], "3");
  EXPECT_EQ(counts["quick"], "2");
  EXPECT_EQ(counts["fox"], "1");
  EXPECT_EQ(counts.size(), 6u);
}

TEST(MapReduceTest, ResultIndependentOfTaskCounts) {
  std::map<std::string, std::string> reference;
  for (int workers : {1, 3}) {
    for (int tasks : {1, 4, 16}) {
      JobConfig config;
      config.num_workers = workers;
      config.num_map_tasks = tasks;
      config.num_reduce_tasks = tasks;
      auto result = RunJob(config, WordInput(),
                           [] { return std::make_unique<WordMapper>(); },
                           [] { return std::make_unique<CountReducer>(); });
      ASSERT_TRUE(result.ok());
      auto counts = ToMap(*result);
      if (reference.empty()) {
        reference = counts;
      } else {
        EXPECT_EQ(counts, reference)
            << workers << " workers, " << tasks << " tasks";
      }
    }
  }
}

TEST(MapReduceTest, FaultInjectionRetriesSucceed) {
  JobConfig config;
  config.fault_injection_rate = 0.4;
  config.max_task_attempts = 12;
  config.seed = 99;
  JobStats stats;
  auto result = RunJob(config, WordInput(),
                       [] { return std::make_unique<WordMapper>(); },
                       [] { return std::make_unique<CountReducer>(); },
                       &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.failed_attempts, 0);  // faults actually fired
  EXPECT_EQ(ToMap(*result)["the"], "3");
}

TEST(MapReduceTest, ExhaustedRetriesAbort) {
  JobConfig config;
  config.fault_injection_rate = 1.0;  // every attempt dies
  config.max_task_attempts = 3;
  auto result = RunJob(config, WordInput(),
                       [] { return std::make_unique<WordMapper>(); },
                       [] { return std::make_unique<CountReducer>(); });
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
}

class FailingMapper : public Mapper {
 public:
  agl::Status Map(const KeyValue&, Emitter*) override {
    return agl::Status::Internal("user code bug");
  }
};

TEST(MapReduceTest, UserErrorSurfacesAfterRetries) {
  JobConfig config;
  config.max_task_attempts = 2;
  auto result = RunMapPhase(config, WordInput(),
                            [] { return std::make_unique<FailingMapper>(); });
  EXPECT_FALSE(result.ok());
}

TEST(MapReduceTest, ReducerSeesAllValuesForKey) {
  class CollectReducer : public Reducer {
   public:
    agl::Status Reduce(const std::string& key,
                       const std::vector<std::string>& values,
                       Emitter* out) override {
      std::vector<std::string> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      std::string joined;
      for (const auto& v : sorted) joined += v + ",";
      out->Emit(key, joined);
      return agl::Status::OK();
    }
  };
  std::vector<KeyValue> input = {
      {"a", "1"}, {"b", "2"}, {"a", "3"}, {"a", "2"}};
  JobConfig config;
  config.num_reduce_tasks = 4;
  auto result = RunReducePhase(
      config, input, [] { return std::make_unique<CollectReducer>(); });
  ASSERT_TRUE(result.ok());
  auto m = ToMap(*result);
  EXPECT_EQ(m["a"], "1,2,3,");
  EXPECT_EQ(m["b"], "2,");
}

TEST(MapReduceTest, ReduceValuesArriveInCanonicalOrder) {
  // The engine guarantees byte-sorted value delivery, so an order-sensitive
  // reducer produces output that depends only on the input multiset — not
  // on input record order or how records were partitioned upstream. The
  // sharded GraphFlat pipeline's byte-identity rests on this.
  class JoinInOrderReducer : public Reducer {
   public:
    agl::Status Reduce(const std::string& key,
                       const std::vector<std::string>& values,
                       Emitter* out) override {
      std::string joined;
      for (const auto& v : values) joined += v + ",";  // arrival order
      out->Emit(key, joined);
      return agl::Status::OK();
    }
  };
  std::vector<KeyValue> input = {{"a", "3"}, {"b", "9"}, {"a", "1"},
                                 {"a", "2"}, {"b", "4"}, {"a", "1"}};
  std::map<std::string, std::string> reference;
  for (int tasks : {1, 2, 5}) {
    for (int rotate : {0, 3}) {
      std::vector<KeyValue> perm = input;
      std::rotate(perm.begin(), perm.begin() + rotate, perm.end());
      JobConfig config;
      config.num_reduce_tasks = tasks;
      auto result = RunReducePhase(
          config, perm, [] { return std::make_unique<JoinInOrderReducer>(); });
      ASSERT_TRUE(result.ok());
      auto m = ToMap(*result);
      EXPECT_EQ(m["a"], "1,1,2,3,");
      EXPECT_EQ(m["b"], "4,9,");
      if (reference.empty()) {
        reference = m;
      } else {
        EXPECT_EQ(m, reference) << tasks << " tasks, rotate " << rotate;
      }
    }
  }
}

TEST(MapReduceTest, StatsTrackCounts) {
  JobConfig config;
  config.num_map_tasks = 2;
  config.num_reduce_tasks = 3;
  JobStats stats;
  auto result = RunJob(config, WordInput(),
                       [] { return std::make_unique<WordMapper>(); },
                       [] { return std::make_unique<CountReducer>(); },
                       &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.map_tasks, 2);
  EXPECT_EQ(stats.reduce_tasks, 3);
  EXPECT_EQ(stats.input_records, 3);
  EXPECT_EQ(stats.shuffled_records, 10);  // total words
  EXPECT_EQ(stats.output_records, 6);     // distinct words
  EXPECT_GT(stats.max_reduce_task_records, 0);
}

TEST(MapReduceTest, EmptyInputProducesEmptyOutput) {
  JobConfig config;
  auto result = RunJob(config, std::vector<KeyValue>{},
                       [] { return std::make_unique<WordMapper>(); },
                       [] { return std::make_unique<CountReducer>(); });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

// --- LocalDfs ---

class DfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("agl_dfs_test_" + std::to_string(::getpid())))
                .string();
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::string root_;
};

TEST_F(DfsTest, WriteReadRoundTrip) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  std::vector<std::string> records = {"alpha", "beta", "gamma", "delta"};
  ASSERT_TRUE(dfs->WriteDataset("d1", records, /*num_parts=*/3).ok());
  auto read = dfs->ReadDataset("d1");
  ASSERT_TRUE(read.ok());
  std::multiset<std::string> got(read->begin(), read->end());
  std::multiset<std::string> want(records.begin(), records.end());
  EXPECT_EQ(got, want);
}

TEST_F(DfsTest, PartsCreated) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("d2", {"a", "b", "c"}, 2).ok());
  auto parts = dfs->ListParts("d2");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 2u);
  auto bytes = dfs->DatasetBytes("d2");
  ASSERT_TRUE(bytes.ok());
  EXPECT_GT(*bytes, 0u);
}

TEST_F(DfsTest, OverwriteReplacesDataset) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("d3", {"old1", "old2"}, 4).ok());
  ASSERT_TRUE(dfs->WriteDataset("d3", {"new"}, 1).ok());
  auto read = dfs->ReadDataset("d3");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 1u);
  EXPECT_EQ((*read)[0], "new");
}

TEST_F(DfsTest, MissingDatasetIsNotFound) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  EXPECT_EQ(dfs->ReadDataset("nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(dfs->DatasetExists("nope"));
}

TEST_F(DfsTest, DropDataset) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("d4", {"x"}, 1).ok());
  EXPECT_TRUE(dfs->DatasetExists("d4"));
  ASSERT_TRUE(dfs->DropDataset("d4").ok());
  EXPECT_FALSE(dfs->DatasetExists("d4"));
}

}  // namespace
}  // namespace agl::mr
