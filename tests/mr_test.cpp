// Tests for the MapReduce engine: map/shuffle/reduce semantics, fault
// injection + retry, determinism, and the LocalDfs record store.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>

#include "common/failpoint.h"
#include "mr/local_dfs.h"
#include "mr/mapreduce.h"

namespace agl::mr {
namespace {

/// Word-count style mapper: splits value on spaces, emits (word, "1").
class WordMapper : public Mapper {
 public:
  agl::Status Map(const KeyValue& input, Emitter* out) override {
    std::size_t start = 0;
    const std::string& s = input.value;
    while (start < s.size()) {
      std::size_t end = s.find(' ', start);
      if (end == std::string::npos) end = s.size();
      if (end > start) out->Emit(s.substr(start, end - start), "1");
      start = end + 1;
    }
    return agl::Status::OK();
  }
};

class CountReducer : public Reducer {
 public:
  agl::Status Reduce(const std::string& key,
                     const std::vector<std::string>& values,
                     Emitter* out) override {
    out->Emit(key, std::to_string(values.size()));
    return agl::Status::OK();
  }
};

std::vector<KeyValue> WordInput() {
  return {{"", "the quick brown fox"},
          {"", "the lazy dog"},
          {"", "the quick dog"}};
}

std::map<std::string, std::string> ToMap(const std::vector<KeyValue>& kvs) {
  std::map<std::string, std::string> m;
  for (const auto& kv : kvs) m[kv.key] = kv.value;
  return m;
}

TEST(MapReduceTest, WordCount) {
  JobConfig config;
  auto result = RunJob(config, WordInput(),
                       [] { return std::make_unique<WordMapper>(); },
                       [] { return std::make_unique<CountReducer>(); });
  ASSERT_TRUE(result.ok());
  auto counts = ToMap(*result);
  EXPECT_EQ(counts["the"], "3");
  EXPECT_EQ(counts["quick"], "2");
  EXPECT_EQ(counts["fox"], "1");
  EXPECT_EQ(counts.size(), 6u);
}

TEST(MapReduceTest, ResultIndependentOfTaskCounts) {
  std::map<std::string, std::string> reference;
  for (int workers : {1, 3}) {
    for (int tasks : {1, 4, 16}) {
      JobConfig config;
      config.num_workers = workers;
      config.num_map_tasks = tasks;
      config.num_reduce_tasks = tasks;
      auto result = RunJob(config, WordInput(),
                           [] { return std::make_unique<WordMapper>(); },
                           [] { return std::make_unique<CountReducer>(); });
      ASSERT_TRUE(result.ok());
      auto counts = ToMap(*result);
      if (reference.empty()) {
        reference = counts;
      } else {
        EXPECT_EQ(counts, reference)
            << workers << " workers, " << tasks << " tasks";
      }
    }
  }
}

TEST(MapReduceTest, FaultInjectionRetriesSucceed) {
  fail::ScopedFailpoint map_fault("mr.map", fail::ErrorConfig(0.4));
  fail::ScopedFailpoint reduce_fault("mr.reduce", fail::ErrorConfig(0.4));
  JobConfig config;
  config.max_task_attempts = 12;
  config.seed = 99;
  JobStats stats;
  auto result = RunJob(config, WordInput(),
                       [] { return std::make_unique<WordMapper>(); },
                       [] { return std::make_unique<CountReducer>(); },
                       &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.failed_attempts, 0);  // faults actually fired
  EXPECT_GT(stats.task_attempts, stats.map_tasks + stats.reduce_tasks);
  EXPECT_GT(stats.retry_backoff_ms, 0.0);  // retries actually backed off
  EXPECT_EQ(ToMap(*result)["the"], "3");
}

TEST(MapReduceTest, ExhaustedRetriesAbort) {
  fail::ScopedFailpoint fault("mr.map", fail::ErrorConfig(1.0));
  JobConfig config;
  config.max_task_attempts = 3;
  auto result = RunJob(config, WordInput(),
                       [] { return std::make_unique<WordMapper>(); },
                       [] { return std::make_unique<CountReducer>(); });
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
}

TEST(MapReduceTest, RetryableCodesAreRetried) {
  // IoError and Unavailable count as transient, like Aborted.
  for (StatusCode code : {StatusCode::kIoError, StatusCode::kUnavailable}) {
    fail::SiteConfig fp = fail::ErrorConfig(1.0, code);
    fp.max_fires = 2;  // fail twice, then run clean
    fail::ScopedFailpoint fault("mr.map", fp);
    JobConfig config;
    config.num_map_tasks = 1;
    config.max_task_attempts = 5;
    JobStats stats;
    auto result =
        RunMapPhase(config, WordInput(),
                    [] { return std::make_unique<WordMapper>(); }, &stats);
    ASSERT_TRUE(result.ok()) << StatusCodeName(code);
    EXPECT_EQ(stats.failed_attempts, 2);
    EXPECT_EQ(stats.task_attempts, 3);
  }
}

TEST(MapReduceTest, PermanentErrorsFailFast) {
  // Corruption / InvalidArgument must not burn retries: one attempt, then
  // the original code surfaces to the caller.
  for (StatusCode code :
       {StatusCode::kCorruption, StatusCode::kInvalidArgument}) {
    fail::ScopedFailpoint fault("mr.map", fail::ErrorConfig(1.0, code));
    JobConfig config;
    config.num_map_tasks = 1;
    config.max_task_attempts = 10;
    JobStats stats;
    auto result =
        RunMapPhase(config, WordInput(),
                    [] { return std::make_unique<WordMapper>(); }, &stats);
    EXPECT_EQ(result.status().code(), code);
    EXPECT_EQ(stats.task_attempts, 1);
    EXPECT_EQ(stats.retry_backoff_ms, 0.0);
  }
}

class FailingMapper : public Mapper {
 public:
  agl::Status Map(const KeyValue&, Emitter*) override {
    return agl::Status::Internal("user code bug");
  }
};

TEST(MapReduceTest, UserErrorFailsFast) {
  // kInternal is permanent under classification: deterministic user bugs
  // surface immediately instead of being retried max_task_attempts times.
  JobConfig config;
  config.num_map_tasks = 1;
  config.max_task_attempts = 5;
  JobStats stats;
  auto result = RunMapPhase(config, WordInput(),
                            [] { return std::make_unique<FailingMapper>(); },
                            &stats);
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(stats.task_attempts, 1);
}

TEST(MapReduceTest, RetryDeadlineAborts) {
  fail::ScopedFailpoint fault("mr.map", fail::ErrorConfig(1.0));
  JobConfig config;
  config.num_map_tasks = 1;
  config.max_task_attempts = 1000;
  config.backoff_initial_ms = 50.0;
  config.retry_deadline_ms = 5.0;  // the first backoff already overruns
  JobStats stats;
  auto result = RunMapPhase(config, WordInput(),
                            [] { return std::make_unique<WordMapper>(); },
                            &stats);
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_NE(result.status().message().find("deadline"), std::string::npos);
  EXPECT_LT(stats.task_attempts, 1000);
}

TEST(MapReduceTest, InjectedCrashSurfacesUnretried) {
  fail::ScopedFailpoint fault("mr.map", fail::CrashOnHit(1));
  JobConfig config;
  config.num_map_tasks = 1;
  config.max_task_attempts = 10;
  JobStats stats;
  auto result = RunMapPhase(config, WordInput(),
                            [] { return std::make_unique<WordMapper>(); },
                            &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(fail::IsInjectedCrash(result.status()));
  EXPECT_EQ(stats.task_attempts, 1);  // a dead process cannot retry
}

TEST(MapReduceTest, ReducerSeesAllValuesForKey) {
  class CollectReducer : public Reducer {
   public:
    agl::Status Reduce(const std::string& key,
                       const std::vector<std::string>& values,
                       Emitter* out) override {
      std::vector<std::string> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      std::string joined;
      for (const auto& v : sorted) joined += v + ",";
      out->Emit(key, joined);
      return agl::Status::OK();
    }
  };
  std::vector<KeyValue> input = {
      {"a", "1"}, {"b", "2"}, {"a", "3"}, {"a", "2"}};
  JobConfig config;
  config.num_reduce_tasks = 4;
  auto result = RunReducePhase(
      config, input, [] { return std::make_unique<CollectReducer>(); });
  ASSERT_TRUE(result.ok());
  auto m = ToMap(*result);
  EXPECT_EQ(m["a"], "1,2,3,");
  EXPECT_EQ(m["b"], "2,");
}

TEST(MapReduceTest, ReduceValuesArriveInCanonicalOrder) {
  // The engine guarantees byte-sorted value delivery, so an order-sensitive
  // reducer produces output that depends only on the input multiset — not
  // on input record order or how records were partitioned upstream. The
  // sharded GraphFlat pipeline's byte-identity rests on this.
  class JoinInOrderReducer : public Reducer {
   public:
    agl::Status Reduce(const std::string& key,
                       const std::vector<std::string>& values,
                       Emitter* out) override {
      std::string joined;
      for (const auto& v : values) joined += v + ",";  // arrival order
      out->Emit(key, joined);
      return agl::Status::OK();
    }
  };
  std::vector<KeyValue> input = {{"a", "3"}, {"b", "9"}, {"a", "1"},
                                 {"a", "2"}, {"b", "4"}, {"a", "1"}};
  std::map<std::string, std::string> reference;
  for (int tasks : {1, 2, 5}) {
    for (int rotate : {0, 3}) {
      std::vector<KeyValue> perm = input;
      std::rotate(perm.begin(), perm.begin() + rotate, perm.end());
      JobConfig config;
      config.num_reduce_tasks = tasks;
      auto result = RunReducePhase(
          config, perm, [] { return std::make_unique<JoinInOrderReducer>(); });
      ASSERT_TRUE(result.ok());
      auto m = ToMap(*result);
      EXPECT_EQ(m["a"], "1,1,2,3,");
      EXPECT_EQ(m["b"], "4,9,");
      if (reference.empty()) {
        reference = m;
      } else {
        EXPECT_EQ(m, reference) << tasks << " tasks, rotate " << rotate;
      }
    }
  }
}

TEST(MapReduceTest, StatsTrackCounts) {
  JobConfig config;
  config.num_map_tasks = 2;
  config.num_reduce_tasks = 3;
  JobStats stats;
  auto result = RunJob(config, WordInput(),
                       [] { return std::make_unique<WordMapper>(); },
                       [] { return std::make_unique<CountReducer>(); },
                       &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.map_tasks, 2);
  EXPECT_EQ(stats.reduce_tasks, 3);
  EXPECT_EQ(stats.input_records, 3);
  EXPECT_EQ(stats.shuffled_records, 10);  // total words
  EXPECT_EQ(stats.output_records, 6);     // distinct words
  EXPECT_GT(stats.max_reduce_task_records, 0);
}

TEST(MapReduceTest, EmptyInputProducesEmptyOutput) {
  JobConfig config;
  auto result = RunJob(config, std::vector<KeyValue>{},
                       [] { return std::make_unique<WordMapper>(); },
                       [] { return std::make_unique<CountReducer>(); });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

// --- LocalDfs ---

class DfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("agl_dfs_test_" + std::to_string(::getpid())))
                .string();
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::string root_;
};

TEST_F(DfsTest, WriteReadRoundTrip) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  std::vector<std::string> records = {"alpha", "beta", "gamma", "delta"};
  ASSERT_TRUE(dfs->WriteDataset("d1", records, /*num_parts=*/3).ok());
  auto read = dfs->ReadDataset("d1");
  ASSERT_TRUE(read.ok());
  std::multiset<std::string> got(read->begin(), read->end());
  std::multiset<std::string> want(records.begin(), records.end());
  EXPECT_EQ(got, want);
}

TEST_F(DfsTest, PartsCreated) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("d2", {"a", "b", "c"}, 2).ok());
  auto parts = dfs->ListParts("d2");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 2u);
  auto bytes = dfs->DatasetBytes("d2");
  ASSERT_TRUE(bytes.ok());
  EXPECT_GT(*bytes, 0u);
}

TEST_F(DfsTest, OverwriteReplacesDataset) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("d3", {"old1", "old2"}, 4).ok());
  ASSERT_TRUE(dfs->WriteDataset("d3", {"new"}, 1).ok());
  auto read = dfs->ReadDataset("d3");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 1u);
  EXPECT_EQ((*read)[0], "new");
}

TEST_F(DfsTest, MissingDatasetIsNotFound) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  EXPECT_EQ(dfs->ReadDataset("nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(dfs->DatasetExists("nope"));
}

TEST_F(DfsTest, DropDataset) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("d4", {"x"}, 1).ok());
  EXPECT_TRUE(dfs->DatasetExists("d4"));
  ASSERT_TRUE(dfs->DropDataset("d4").ok());
  EXPECT_FALSE(dfs->DatasetExists("d4"));
}

// --- crash consistency -----------------------------------------------------

TEST_F(DfsTest, TornPartDetectedAsCorruption) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("d5", {"alpha", "beta"}, 2).ok());
  auto parts = dfs->ListParts("d5");
  ASSERT_TRUE(parts.ok());
  // Truncation disagrees with the manifest's recorded size — the dataset
  // must read as Corruption, never as a silently shorter record stream.
  std::filesystem::resize_file(
      (*parts)[0], std::filesystem::file_size((*parts)[0]) - 1);
  EXPECT_EQ(dfs->ListParts("d5").status().code(), StatusCode::kCorruption);
  EXPECT_EQ(dfs->ReadDataset("d5").status().code(), StatusCode::kCorruption);
  EXPECT_EQ(dfs->ValidateAllDatasets().code(), StatusCode::kCorruption);
}

TEST_F(DfsTest, MissingManifestDetectedAsCorruption) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("d6", {"x"}, 1).ok());
  std::filesystem::remove(root_ + "/d6/MANIFEST");
  EXPECT_FALSE(dfs->DatasetExists("d6"));
  EXPECT_EQ(dfs->ReadDataset("d6").status().code(), StatusCode::kCorruption);
}

TEST_F(DfsTest, CrashMidPublishLeavesOldDatasetReadable) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("d7", {"old"}, 1).ok());
  {
    fail::ScopedFailpoint crash("dfs.rename", fail::CrashOnHit(1));
    auto st = dfs->WriteDataset("d7", {"new1", "new2"}, 2);
    ASSERT_TRUE(fail::IsInjectedCrash(st)) << st.ToString();
  }
  // The old dataset is still the published one, fully readable...
  auto read = dfs->ReadDataset("d7");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 1u);
  EXPECT_EQ((*read)[0], "old");
  // ...and the crash left its scratch behind (as a real kill would),
  // which the next Open sweeps.
  EXPECT_EQ(dfs->ValidateAllDatasets().code(), StatusCode::kCorruption);
  auto reopened = LocalDfs::Open(root_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->ValidateAllDatasets().ok());
  // A retried publish after recovery succeeds.
  ASSERT_TRUE(reopened->WriteDataset("d7", {"new1", "new2"}, 2).ok());
  EXPECT_EQ(reopened->ReadDataset("d7")->size(), 2u);
}

TEST_F(DfsTest, ForgedStaleScratchSweptOnOpenAndDrop) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("d8", {"x"}, 1).ok());
  // Forge the two scratch layouts a crashed publish can leave behind.
  auto forge = [&] {
    std::filesystem::create_directories(root_ + "/d8.tmp-42");
    std::ofstream(root_ + "/d8.tmp-42/part-00000") << "partial";
    std::filesystem::create_directories(root_ + "/d8.unify-tmp");
  };
  forge();
  EXPECT_EQ(dfs->ValidateAllDatasets().code(), StatusCode::kCorruption);
  auto reopened = LocalDfs::Open(root_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(std::filesystem::exists(root_ + "/d8.tmp-42"));
  EXPECT_FALSE(std::filesystem::exists(root_ + "/d8.unify-tmp"));
  EXPECT_TRUE(reopened->ValidateAllDatasets().ok());
  // DropDataset reclaims them too, without waiting for a reopen.
  forge();
  ASSERT_TRUE(reopened->DropDataset("d8").ok());
  EXPECT_FALSE(std::filesystem::exists(root_ + "/d8.tmp-42"));
  EXPECT_FALSE(std::filesystem::exists(root_ + "/d8.unify-tmp"));
  EXPECT_FALSE(reopened->DatasetExists("d8"));
}

TEST_F(DfsTest, UnifyCrashLeavesSourcesIntactAndIsRerunnable) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("s0", {"a", "b"}, 2).ok());
  ASSERT_TRUE(dfs->WriteDataset("s1", {"c"}, 1).ok());
  {
    fail::ScopedFailpoint crash("dfs.rename", fail::CrashOnHit(1));
    auto st = dfs->UnifyDatasets("merged", {"s0", "s1"});
    ASSERT_TRUE(fail::IsInjectedCrash(st)) << st.ToString();
  }
  // Sources must survive the crash (parts are linked, not moved), so the
  // unify can simply be re-run after recovery.
  auto recovered = LocalDfs::Open(root_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->DatasetExists("s0"));
  EXPECT_TRUE(recovered->DatasetExists("s1"));
  EXPECT_FALSE(recovered->DatasetExists("merged"));
  ASSERT_TRUE(recovered->UnifyDatasets("merged", {"s0", "s1"}).ok());
  auto read = recovered->ReadDataset("merged");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 3u);
  EXPECT_FALSE(recovered->DatasetExists("s0"));
  EXPECT_TRUE(recovered->ValidateAllDatasets().ok());
}

TEST_F(DfsTest, ListDatasetsSkipsScratch) {
  auto dfs = LocalDfs::Open(root_);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(dfs->WriteDataset("a", {"1"}, 1).ok());
  ASSERT_TRUE(dfs->WriteDataset("b", {"2"}, 1).ok());
  std::filesystem::create_directories(root_ + "/b.tmp-7");
  EXPECT_EQ(dfs->ListDatasets(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace agl::mr
