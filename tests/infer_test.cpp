// Tests for model segmentation and GraphInfer. The central equivalence:
// sliced MapReduce inference must reproduce the whole-graph forward pass
// (FullGraphScores) for every model type, and must agree with the Original
// per-GraphFeature baseline on predictions while doing strictly fewer
// embedding evaluations.

#include <gtest/gtest.h>

#include <cmath>

#include "common/failpoint.h"
#include "baseline/full_graph.h"
#include "data/dataset.h"
#include "infer/graphinfer.h"
#include "infer/original.h"
#include "infer/segmentation.h"

namespace agl::infer {
namespace {

data::Dataset SmallUug(int nodes = 80) {
  data::UugLikeOptions opts;
  opts.num_nodes = nodes;
  opts.feature_dim = 6;
  opts.attach_edges = 3;
  opts.train_size = nodes / 2;
  opts.val_size = nodes / 8;
  opts.test_size = nodes / 8;
  return data::MakeUugLike(opts);
}

gnn::ModelConfig SmallModel(gnn::ModelType type, int layers,
                            int64_t in_dim) {
  gnn::ModelConfig config;
  config.type = type;
  config.num_layers = layers;
  config.in_dim = in_dim;
  config.hidden_dim = 5;
  config.out_dim = 2;
  config.seed = 17;
  return config;
}

TEST(SegmentationTest, SplitsByLayer) {
  gnn::GnnModel model(SmallModel(gnn::ModelType::kGat, 3, 6));
  auto slices = SegmentModel(model.StateDict(), 3);
  ASSERT_TRUE(slices.ok());
  ASSERT_EQ(slices->size(), 4u);  // 3 layers + prediction slice
  for (int k = 0; k < 3; ++k) {
    EXPECT_FALSE((*slices)[k].params.empty());
    EXPECT_EQ((*slices)[k].layer, k);
  }
  EXPECT_TRUE((*slices)[3].params.empty());  // identity prediction head
}

TEST(SegmentationTest, SliceParamsCoverWholeModel) {
  gnn::GnnModel model(SmallModel(gnn::ModelType::kGraphSage, 2, 6));
  auto slices = SegmentModel(model.StateDict(), 2);
  ASSERT_TRUE(slices.ok());
  std::size_t total = 0;
  for (const auto& s : *slices) total += s.params.size();
  EXPECT_EQ(total, model.StateDict().size());
}

TEST(SegmentationTest, RejectsUnknownKeys) {
  std::map<std::string, tensor::Tensor> state;
  state.emplace("not_a_layer.weight", tensor::Tensor(1, 1));
  EXPECT_FALSE(SegmentModel(state, 2).ok());
}

class InferEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<gnn::ModelType, int>> {};

TEST_P(InferEquivalenceTest, MatchesFullGraphForward) {
  const auto [type, layers] = GetParam();
  data::Dataset ds = SmallUug();
  gnn::ModelConfig mconfig = SmallModel(type, layers, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();

  // Ground truth: whole-graph forward (softmax scores per node).
  auto truth = baseline::FullGraphScores(mconfig, state, ds);
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();

  InferConfig iconfig;
  iconfig.model = mconfig;
  iconfig.job.num_reduce_tasks = 5;
  auto result = RunGraphInfer(iconfig, state, ds.nodes, ds.edges);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->scores.size(), ds.nodes.size());

  for (std::size_t i = 0; i < result->scores.size(); ++i) {
    const auto& [id, scores] = result->scores[i];
    // ds.nodes are ordered by id == row index in `truth`.
    ASSERT_EQ(id, ds.nodes[i].id);
    ASSERT_EQ(scores.size(), 2u);
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR(scores[c], truth->at(static_cast<int64_t>(i), c), 2e-3f)
          << "node " << id << " class " << c << " ("
          << gnn::ModelTypeName(type) << ", " << layers << " layers)";
    }
  }
  // Exactly one embedding evaluation per node per layer.
  EXPECT_EQ(result->costs.embedding_evaluations,
            static_cast<int64_t>(ds.nodes.size()) * layers);
}

INSTANTIATE_TEST_SUITE_P(
    Models, InferEquivalenceTest,
    ::testing::Combine(::testing::Values(gnn::ModelType::kGcn,
                                         gnn::ModelType::kGraphSage,
                                         gnn::ModelType::kGat),
                       ::testing::Values(1, 2)));

TEST(GraphInferTest, ShardedInferenceIsBitExact) {
  // num_shards partitions the rounds the same way sharded GraphFlat does;
  // with the engine's canonical value ordering the float accumulation
  // order is fixed, so scores must be bit-exact across shard counts.
  data::Dataset ds = SmallUug(70);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGcn, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();

  InferConfig iconfig;
  iconfig.model = mconfig;
  iconfig.job.num_reduce_tasks = 5;
  auto single = RunGraphInfer(iconfig, state, ds.nodes, ds.edges);
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  for (int num_shards : {2, 4, 7}) {
    iconfig.num_shards = num_shards;
    auto sharded = RunGraphInfer(iconfig, state, ds.nodes, ds.edges);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_EQ(sharded->scores.size(), single->scores.size());
    for (std::size_t i = 0; i < sharded->scores.size(); ++i) {
      EXPECT_EQ(sharded->scores[i].first, single->scores[i].first);
      EXPECT_EQ(sharded->scores[i].second, single->scores[i].second)
          << "node " << single->scores[i].first << " with " << num_shards
          << " shards";
    }
    EXPECT_EQ(sharded->costs.embedding_evaluations,
              single->costs.embedding_evaluations);
  }
}

TEST(OriginalInferenceTest, AgreesWithGraphInferOnPredictions) {
  data::Dataset ds = SmallUug(60);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGraphSage, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();

  InferConfig iconfig;
  iconfig.model = mconfig;
  auto sliced = RunGraphInfer(iconfig, state, ds.nodes, ds.edges);
  ASSERT_TRUE(sliced.ok());

  OriginalInferenceConfig oconfig;
  oconfig.model = mconfig;
  auto original = RunOriginalInference(oconfig, state, ds.nodes, ds.edges);
  ASSERT_TRUE(original.ok()) << original.status().ToString();

  ASSERT_EQ(sliced->scores.size(), original->scores.size());
  for (std::size_t i = 0; i < sliced->scores.size(); ++i) {
    EXPECT_EQ(sliced->scores[i].first, original->scores[i].first);
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR(sliced->scores[i].second[c],
                  original->scores[i].second[c], 2e-3f)
          << "node " << sliced->scores[i].first;
    }
  }
}

TEST(OriginalInferenceTest, RepeatsEmbeddingWork) {
  // The whole point of GraphInfer: the Original baseline evaluates far more
  // embeddings because overlapping neighborhoods recompute shared nodes.
  data::Dataset ds = SmallUug(60);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGcn, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();

  InferConfig iconfig;
  iconfig.model = mconfig;
  auto sliced = RunGraphInfer(iconfig, state, ds.nodes, ds.edges);
  ASSERT_TRUE(sliced.ok());

  OriginalInferenceConfig oconfig;
  oconfig.model = mconfig;
  // Small batches: neighborhoods overlap across batches and the Original
  // module recomputes the shared nodes (within a batch the merge dedupes).
  oconfig.batch_size = 4;
  auto original = RunOriginalInference(oconfig, state, ds.nodes, ds.edges);
  ASSERT_TRUE(original.ok());

  EXPECT_GT(original->costs.embedding_evaluations,
            2 * sliced->costs.embedding_evaluations);
}

TEST(GraphInferTest, SurvivesInjectedFaults) {
  data::Dataset ds = SmallUug(40);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGcn, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();

  InferConfig clean_config;
  clean_config.model = mconfig;
  auto clean = RunGraphInfer(clean_config, state, ds.nodes, ds.edges);
  ASSERT_TRUE(clean.ok());

  InferConfig faulty_config = clean_config;
  fail::ScopedFailpoint map_fault("mr.map", fail::ErrorConfig(0.3));
  fail::ScopedFailpoint reduce_fault("mr.reduce", fail::ErrorConfig(0.3));
  faulty_config.job.max_task_attempts = 15;
  auto faulty = RunGraphInfer(faulty_config, state, ds.nodes, ds.edges);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();

  ASSERT_EQ(clean->scores.size(), faulty->scores.size());
  for (std::size_t i = 0; i < clean->scores.size(); ++i) {
    EXPECT_EQ(clean->scores[i].first, faulty->scores[i].first);
    for (std::size_t c = 0; c < clean->scores[i].second.size(); ++c) {
      EXPECT_NEAR(clean->scores[i].second[c], faulty->scores[i].second[c],
                  1e-6f);
    }
  }
}

TEST(GraphInferTest, TargetSubsetMatchesFullRun) {
  // §3.4: pruned inference over part of the graph. For models whose
  // normalization depends only on in-edges (SAGE row-norm, GAT attention),
  // the K-hop neighborhood is information-complete, so subset scores must
  // equal the full run's scores for those targets.
  data::Dataset ds = SmallUug(70);
  for (gnn::ModelType type : {gnn::ModelType::kGraphSage,
                              gnn::ModelType::kGat}) {
    gnn::ModelConfig mconfig = SmallModel(type, 2, ds.feature_dim);
    gnn::GnnModel model(mconfig);
    const auto state = model.StateDict();

    InferConfig full_config;
    full_config.model = mconfig;
    auto full = RunGraphInfer(full_config, state, ds.nodes, ds.edges);
    ASSERT_TRUE(full.ok());

    InferConfig subset_config = full_config;
    subset_config.target_ids = {ds.nodes[3].id, ds.nodes[17].id,
                                ds.nodes[42].id};
    auto subset = RunGraphInfer(subset_config, state, ds.nodes, ds.edges);
    ASSERT_TRUE(subset.ok()) << subset.status().ToString();
    ASSERT_EQ(subset->scores.size(), 3u);

    std::unordered_map<uint64_t, const std::vector<float>*> full_of;
    for (const auto& [id, s] : full->scores) full_of[id] = &s;
    for (const auto& [id, s] : subset->scores) {
      ASSERT_TRUE(full_of.count(id) > 0);
      for (std::size_t c = 0; c < s.size(); ++c) {
        EXPECT_NEAR(s[c], (*full_of[id])[c], 1e-5f)
            << gnn::ModelTypeName(type) << " node " << id;
      }
    }
    // Pruning must reduce the work: fewer embedding evaluations than the
    // full graph run.
    EXPECT_LT(subset->costs.embedding_evaluations,
              full->costs.embedding_evaluations);
  }
}

TEST(GraphInferTest, TargetSubsetSingleNodeNoEdges) {
  data::Dataset ds = SmallUug(30);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGraphSage, 1, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  InferConfig config;
  config.model = mconfig;
  config.target_ids = {ds.nodes[0].id};
  auto result =
      RunGraphInfer(config, model.StateDict(), ds.nodes, ds.edges);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->scores.size(), 1u);
  EXPECT_EQ(result->scores[0].first, ds.nodes[0].id);
}

TEST(GraphInferTest, EmptyNodesRejected) {
  InferConfig config;
  config.model = SmallModel(gnn::ModelType::kGcn, 1, 4);
  gnn::GnnModel model(config.model);
  auto result = RunGraphInfer(config, model.StateDict(), {}, {});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace agl::infer
