// Unit tests for the common substrate: Status/Result, thread pool, RNG,
// resource accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace agl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status Inner(bool fail) {
  if (fail) return Status::Aborted("inner");
  return Status::OK();
}

Status Outer(bool fail) {
  AGL_RETURN_IF_ERROR(Inner(fail));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  EXPECT_EQ(Outer(true).code(), StatusCode::kAborted);
}

Result<int> MakeInt(bool fail) {
  if (fail) return Status::NotFound("none");
  return 7;
}

Status UseInt(bool fail, int* out) {
  AGL_ASSIGN_OR_RETURN(int v, MakeInt(fail));
  *out = v;
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseInt(false, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UseInt(true, &out).code(), StatusCode::kNotFound);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

// Regression: ParallelFor from inside a pool worker used to block on
// futures that only the exhausted pool could run. With every worker stuck
// in an outer ParallelFor, the inner ones must still complete because the
// waiting threads execute queued chunks themselves.
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(8, [&](std::size_t) {
    pool.ParallelFor(8, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 64);
}

// Several non-pool threads issuing ParallelFor on one pool concurrently:
// each caller may only help-run its own chunks, and completion of a call
// must not touch pool state once the caller can return.
TEST(ThreadPoolTest, ConcurrentParallelForCallers) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int r = 0; r < 10; ++r) {
        pool.ParallelFor(64, [&](std::size_t) { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(counter.load(), 4 * 10 * 64);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](std::size_t i) {
                                  if (i == 57) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(2);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementAllWhenKTooLarge) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(10, 50);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(RngTest, DeriveSeedDecorrelatesStreams) {
  const uint64_t s1 = DeriveSeed(42, 0);
  const uint64_t s2 = DeriveSeed(42, 1);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(DeriveSeed(42, 0), s1);  // deterministic
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(4);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Discrete(w), 1u);
}

TEST(TimerTest, StopwatchAdvances) {
  Stopwatch w;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GE(w.Seconds(), 0.0);
  EXPECT_GE(w.Millis(), w.Seconds() * 1000.0 - 1e-6);
}

TEST(TimerTest, ResourceMeterAccumulates) {
  ResourceMeter meter;
  meter.ChargeCpuSeconds(120.0);
  EXPECT_NEAR(meter.cpu_core_minutes(), 2.0, 1e-9);
  meter.ChargeMemory(1024.0 * 1024.0 * 1024.0, 60.0);
  EXPECT_NEAR(meter.memory_gb_minutes(), 1.0, 1e-9);
  meter.Reset();
  EXPECT_EQ(meter.cpu_core_minutes(), 0.0);
}

TEST(TimerTest, ProcessStatsAvailable) {
  EXPECT_GT(CurrentRssBytes(), 0u);
  EXPECT_GT(ProcessCpuSeconds(), 0.0);
}

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 4u);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
}

TEST(BoundedQueueTest, PushBlocksUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    q.Push(2);  // blocks: capacity 1
    second_pushed = true;
  });
  EXPECT_FALSE(second_pushed.load());
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(7));
  ASSERT_TRUE(q.Push(8));
  q.Close();
  EXPECT_FALSE(q.Push(9));  // closed to producers
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));  // but queued items still drain
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(q.Pop(&v));  // drained + closed = end of stream
}

TEST(BoundedQueueTest, CancelDropsItemsAndReleasesWaiters) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<int> released{0};
  std::thread blocked_producer([&] {
    // May slip in if the consumer drains item 1 before the cancel lands;
    // either way the call must return (not hang).
    q.Push(2);
    released++;
  });
  std::thread blocked_consumer([&] {
    int v;
    // May consume the queued item before the cancel lands; either way the
    // call must return (not hang).
    q.Pop(&v);
    released++;
  });
  q.Cancel();
  blocked_producer.join();
  blocked_consumer.join();
  EXPECT_EQ(released.load(), 2);
  EXPECT_TRUE(q.cancelled());
  int v;
  EXPECT_FALSE(q.Pop(&v));   // cancelled queue stays dead
  EXPECT_FALSE(q.Push(3));
}

TEST(BoundedQueueTest, TryPopDistinguishesNotYetFromNever) {
  using Result = BoundedQueue<int>::TryPopResult;
  BoundedQueue<int> q(2);
  int v = 0;
  EXPECT_EQ(q.TryPop(&v), Result::kEmpty);  // open, nothing queued
  ASSERT_TRUE(q.Push(5));
  EXPECT_EQ(q.TryPop(&v), Result::kItem);
  EXPECT_EQ(v, 5);
  ASSERT_TRUE(q.Push(6));
  q.Close();
  EXPECT_EQ(q.TryPop(&v), Result::kItem);  // drains after close
  EXPECT_EQ(v, 6);
  EXPECT_EQ(q.TryPop(&v), Result::kDone);  // closed + drained
  BoundedQueue<int> cancelled(2);
  ASSERT_TRUE(cancelled.Push(1));
  cancelled.Cancel();
  EXPECT_EQ(cancelled.TryPop(&v), Result::kDone);
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 250;
  BoundedQueue<int> q(8);
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int v;
      while (q.Pop(&v)) {
        sum += v;
        popped++;
      }
    });
  }
  for (auto& t : threads) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), static_cast<long>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace agl
