// Batched GraphInfer + cross-slice EmbeddingCache properties.
//
// The central property (ctest -L infer_batch): RunGraphInferBatched must
// produce *bit-identical* scores to running its target slices one by one
// through RunGraphInfer — for every (batch_slices, num_shards,
// cache_budget) combination, including budget 0 (cache disabled entirely)
// and unbounded, with the spill path engaged and with faults injected into
// it. The cache only ever substitutes a value the reducer would have
// recomputed byte-for-byte, so any divergence here is a real bug.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/failpoint.h"
#include "data/dataset.h"
#include "infer/embedding_cache.h"
#include "infer/graphinfer.h"

namespace agl::infer {
namespace {

data::Dataset SmallUug(int nodes, int attach_edges = 3) {
  data::UugLikeOptions opts;
  opts.num_nodes = nodes;
  opts.feature_dim = 6;
  opts.attach_edges = attach_edges;
  opts.train_size = nodes / 2;
  opts.val_size = nodes / 8;
  opts.test_size = nodes / 8;
  return data::MakeUugLike(opts);
}

gnn::ModelConfig SmallModel(gnn::ModelType type, int layers, int64_t in_dim) {
  gnn::ModelConfig config;
  config.type = type;
  config.num_layers = layers;
  config.in_dim = in_dim;
  config.hidden_dim = 5;
  config.out_dim = 2;
  config.seed = 17;
  return config;
}

std::vector<flat::NodeId> AllIds(const data::Dataset& ds) {
  std::vector<flat::NodeId> ids;
  ids.reserve(ds.nodes.size());
  for (const auto& n : ds.nodes) ids.push_back(n.id);
  return ids;
}

/// The unbatched reference: each slice through its own RunGraphInfer call
/// (no cache exists on this path), results concatenated and sorted.
agl::Result<InferResult> RunSliceBySlice(
    InferConfig config, const std::map<std::string, tensor::Tensor>& state,
    const data::Dataset& ds, const std::vector<flat::NodeId>& targets,
    int batch_slices) {
  InferResult combined;
  combined.num_slices = 0;
  for (const auto& slice : PartitionTargets(targets, batch_slices)) {
    config.target_ids = slice;
    AGL_ASSIGN_OR_RETURN(InferResult r,
                         RunGraphInfer(config, state, ds.nodes, ds.edges));
    combined.costs.embedding_evaluations += r.costs.embedding_evaluations;
    combined.scores.insert(combined.scores.end(),
                           std::make_move_iterator(r.scores.begin()),
                           std::make_move_iterator(r.scores.end()));
    ++combined.num_slices;
  }
  std::sort(combined.scores.begin(), combined.scores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return combined;
}

void ExpectScoresIdentical(const InferResult& batched,
                           const InferResult& reference,
                           const std::string& what) {
  ASSERT_EQ(batched.scores.size(), reference.scores.size()) << what;
  for (std::size_t i = 0; i < batched.scores.size(); ++i) {
    EXPECT_EQ(batched.scores[i].first, reference.scores[i].first) << what;
    EXPECT_EQ(batched.scores[i].second, reference.scores[i].second)
        << what << " node " << reference.scores[i].first;
  }
}

TEST(PartitionTargetsTest, ContiguousDedupedBalanced) {
  const std::vector<flat::NodeId> targets = {5, 3, 5, 9, 1, 3, 7};
  auto slices = PartitionTargets(targets, 2);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0], (std::vector<flat::NodeId>{5, 3, 9}));
  EXPECT_EQ(slices[1], (std::vector<flat::NodeId>{1, 7}));
  // More slices than (unique) targets: one singleton slice each.
  slices = PartitionTargets(targets, 50);
  EXPECT_EQ(slices.size(), 5u);
  for (const auto& s : slices) EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(PartitionTargets({}, 4).empty());
  // Non-positive slice counts clamp to one slice.
  EXPECT_EQ(PartitionTargets(targets, 0).size(), 1u);
}

class BatchedSweepTest
    : public ::testing::TestWithParam<std::tuple<gnn::ModelType, int>> {};

TEST_P(BatchedSweepTest, BitExactAcrossSlicesShardsAndBudgets) {
  const auto [type, layers] = GetParam();
  data::Dataset ds = SmallUug(60);
  gnn::ModelConfig mconfig = SmallModel(type, layers, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();
  const std::vector<flat::NodeId> targets = AllIds(ds);

  for (int batch_slices : {1, 3, 5}) {
    InferConfig base;
    base.model = mconfig;
    base.job.num_reduce_tasks = 5;
    auto reference =
        RunSliceBySlice(base, state, ds, targets, batch_slices);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (int num_shards : {1, 3}) {
      // Budgets: disabled, eviction-heavy tiny, unbounded.
      for (int64_t budget : {int64_t{0}, int64_t{1024}, int64_t{-1}}) {
        InferConfig config = base;
        config.num_shards = num_shards;
        config.batch_slices = batch_slices;
        config.cache_budget_bytes = budget;
        auto batched =
            RunGraphInferBatched(config, state, ds.nodes, ds.edges);
        ASSERT_TRUE(batched.ok()) << batched.status().ToString();
        const std::string what =
            std::string(gnn::ModelTypeName(type)) + " layers=" +
            std::to_string(layers) + " B=" + std::to_string(batch_slices) +
            " S=" + std::to_string(num_shards) +
            " budget=" + std::to_string(budget);
        EXPECT_EQ(batched->num_slices, reference->num_slices) << what;
        ExpectScoresIdentical(*batched, *reference, what);
        if (budget == 0) {
          // Cache disabled: identical work to the slice-by-slice runs.
          EXPECT_EQ(batched->costs.embedding_evaluations,
                    reference->costs.embedding_evaluations)
              << what;
          EXPECT_EQ(batched->costs.cache_hits, 0) << what;
          EXPECT_EQ(batched->costs.cache_misses, 0) << what;
        } else {
          // Cached: never MORE work, and every hit is a skipped eval.
          EXPECT_EQ(batched->costs.embedding_evaluations +
                        batched->costs.cache_hits,
                    reference->costs.embedding_evaluations)
              << what;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, BatchedSweepTest,
    ::testing::Combine(::testing::Values(gnn::ModelType::kGraphSage,
                                         gnn::ModelType::kGat,
                                         gnn::ModelType::kGcn),
                       ::testing::Values(1, 2)));

TEST(BatchedInferTest, CacheSavesEvaluationsOnOverlappingSlices) {
  data::Dataset ds = SmallUug(80, 4);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGraphSage, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();

  InferConfig config;
  config.model = mconfig;
  config.batch_slices = 4;

  config.cache_budget_bytes = 0;
  auto independent = RunGraphInferBatched(config, state, ds.nodes, ds.edges);
  ASSERT_TRUE(independent.ok()) << independent.status().ToString();

  config.cache_budget_bytes = -1;  // unbounded
  auto cached = RunGraphInferBatched(config, state, ds.nodes, ds.edges);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();

  ExpectScoresIdentical(*cached, *independent, "cached vs independent");
  EXPECT_GT(cached->costs.cache_hits, 0);
  EXPECT_GT(cached->costs.cache_misses, 0);
  EXPECT_LT(cached->costs.embedding_evaluations,
            independent->costs.embedding_evaluations);
  EXPECT_EQ(cached->costs.embedding_evaluations + cached->costs.cache_hits,
            independent->costs.embedding_evaluations);
}

TEST(BatchedInferTest, ExplicitTargetSubsetWithDuplicates) {
  data::Dataset ds = SmallUug(70);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGat, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();

  std::vector<flat::NodeId> targets = {ds.nodes[3].id,  ds.nodes[17].id,
                                       ds.nodes[3].id,  ds.nodes[42].id,
                                       ds.nodes[55].id, ds.nodes[17].id};
  InferConfig config;
  config.model = mconfig;
  config.target_ids = targets;
  config.batch_slices = 2;
  config.cache_budget_bytes = -1;
  auto batched = RunGraphInferBatched(config, state, ds.nodes, ds.edges);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched->scores.size(), 4u);  // deduplicated targets

  InferConfig unbatched = config;
  unbatched.batch_slices = 1;
  unbatched.cache_budget_bytes = 0;
  auto reference = RunSliceBySlice(unbatched, state, ds, targets, 2);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ExpectScoresIdentical(*batched, *reference, "subset targets");
}

TEST(BatchedInferTest, SpillServesHitsUnderTinyBudget) {
  data::Dataset ds = SmallUug(80, 4);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGraphSage, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();

  InferConfig config;
  config.model = mconfig;
  config.batch_slices = 6;

  config.cache_budget_bytes = 0;
  auto independent = RunGraphInferBatched(config, state, ds.nodes, ds.edges);
  ASSERT_TRUE(independent.ok());

  // A budget far below the working set (one entry is ~84 bytes) with a
  // spill file: evictions spill, later slices read them back.
  config.cache_budget_bytes = 512;
  config.cache_spill_path =
      ::testing::TempDir() + "/infer_batch_spill.records";
  auto spilled = RunGraphInferBatched(config, state, ds.nodes, ds.edges);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();

  ExpectScoresIdentical(*spilled, *independent, "spill vs independent");
  EXPECT_GT(spilled->costs.cache_evictions, 0);
  EXPECT_GT(spilled->costs.cache_spilled, 0);
  EXPECT_GT(spilled->costs.cache_spill_hits, 0);
  EXPECT_LT(spilled->costs.embedding_evaluations,
            independent->costs.embedding_evaluations);
}

TEST(BatchedInferTest, SpillFaultInjectionDegradesToRecompute) {
  data::Dataset ds = SmallUug(70, 4);
  gnn::ModelConfig mconfig =
      SmallModel(gnn::ModelType::kGat, 2, ds.feature_dim);
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();

  InferConfig config;
  config.model = mconfig;
  config.batch_slices = 5;

  config.cache_budget_bytes = 0;
  auto independent = RunGraphInferBatched(config, state, ds.nodes, ds.edges);
  ASSERT_TRUE(independent.ok());

  // Tiny budget + spill, with spill writes/reads failing at 40%, plus
  // MapReduce task-level fault injection on top: the cache must degrade to
  // recomputation, never to a different score.
  config.cache_budget_bytes = 768;
  config.cache_spill_path =
      ::testing::TempDir() + "/infer_batch_spill_faulty.records";
  fail::ScopedFailpoint spill_fault(
      "infer.spill", fail::ErrorConfig(0.4, StatusCode::kIoError));
  fail::ScopedFailpoint map_fault("mr.map", fail::ErrorConfig(0.2));
  fail::ScopedFailpoint reduce_fault("mr.reduce", fail::ErrorConfig(0.2));
  config.job.max_task_attempts = 15;
  auto faulty = RunGraphInferBatched(config, state, ds.nodes, ds.edges);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();

  ExpectScoresIdentical(*faulty, *independent, "faulty spill");
  EXPECT_GT(faulty->costs.cache_spill_failures, 0);
}

TEST(EmbeddingCacheTest, LruEvictsLeastRecentlyUsed) {
  // Budget fits exactly two entries (2 floats = 8 bytes payload + 64
  // overhead each).
  EmbeddingCache cache(2 * (8 + 64));
  const std::vector<float> emb{1.f, 2.f};
  cache.Insert({1, 1, 7}, emb);
  cache.Insert({2, 1, 7}, emb);
  std::vector<float> out;
  ASSERT_TRUE(cache.Lookup({1, 1, 7}, &out));  // touch 1: now 2 is LRU
  cache.Insert({3, 1, 7}, emb);                // evicts 2
  EXPECT_TRUE(cache.Lookup({1, 1, 7}, &out));
  EXPECT_FALSE(cache.Lookup({2, 1, 7}, &out));
  EXPECT_TRUE(cache.Lookup({3, 1, 7}, &out));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.resident_entries, 2);
}

TEST(EmbeddingCacheTest, VersionAndRoundArePartOfTheKey) {
  EmbeddingCache cache(-1);
  cache.Insert({1, 1, 7}, {1.f});
  std::vector<float> out;
  EXPECT_FALSE(cache.Lookup({1, 1, 8}, &out));  // other model version
  EXPECT_FALSE(cache.Lookup({1, 2, 7}, &out));  // other round
  EXPECT_TRUE(cache.Lookup({1, 1, 7}, &out));
  EXPECT_EQ(out, (std::vector<float>{1.f}));
}

TEST(EmbeddingCacheTest, DisabledCacheDoesNothing) {
  EmbeddingCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert({1, 1, 7}, {1.f});
  std::vector<float> out;
  EXPECT_FALSE(cache.Lookup({1, 1, 7}, &out));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.inserts, 0);
  EXPECT_EQ(stats.misses, 0);
}

TEST(EmbeddingCacheTest, SpillRoundTripsEvictedEntries) {
  EmbeddingCache cache(8 + 64);  // budget: a single one-float entry
  ASSERT_TRUE(
      cache.EnableSpill(::testing::TempDir() + "/cache_spill_unit.records")
          .ok());
  cache.Insert({1, 1, 7}, {1.5f, -2.5f});  // oversized: spills immediately
  cache.Insert({2, 1, 7}, {3.f});
  std::vector<float> out;
  ASSERT_TRUE(cache.Lookup({1, 1, 7}, &out));  // served from the spill file
  EXPECT_EQ(out, (std::vector<float>{1.5f, -2.5f}));
  const auto stats = cache.stats();
  EXPECT_GT(stats.spilled, 0);
  EXPECT_EQ(stats.spill_hits, 1);
  EXPECT_EQ(stats.spill_failures, 0);
}

TEST(EmbeddingCacheTest, TruncatedSpillFileDegradesToMiss) {
  const std::string path =
      ::testing::TempDir() + "/cache_spill_truncated.records";
  EmbeddingCache cache(8 + 64);
  ASSERT_TRUE(cache.EnableSpill(path).ok());
  cache.Insert({1, 1, 7}, {1.f, 2.f, 3.f});  // evicted + spilled
  cache.Insert({2, 1, 7}, {4.f});
  ASSERT_GT(cache.stats().spilled, 0);
  // Spill writes are batched, so push them to disk first — otherwise the
  // truncation below hits an empty file and the lazy pre-read flush would
  // just re-materialize the record from the writer's buffer.
  ASSERT_TRUE(cache.PublishSpill().ok());
  // Corrupt the spill file: keep only its first 3 bytes (mid-record).
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
#if defined(_WIN32)
    ASSERT_EQ(_chsize(_fileno(f), 3), 0);
#else
    ASSERT_EQ(ftruncate(fileno(f), 3), 0);
#endif
    std::fclose(f);
  }
  std::vector<float> out;
  EXPECT_FALSE(cache.Lookup({1, 1, 7}, &out));  // corruption -> plain miss
  const auto stats = cache.stats();
  EXPECT_GT(stats.spill_failures, 0);
  EXPECT_EQ(stats.spill_hits, 0);
}

// Heavier nightly-style sweep, enabled via AGL_INFER_BATCH_HEAVY (the
// infer_batch_sweep ctest entry sets it; a direct binary run skips).
TEST(BatchedSweepHeavyTest, WiderMatrix) {
  if (std::getenv("AGL_INFER_BATCH_HEAVY") == nullptr) {
    GTEST_SKIP() << "set AGL_INFER_BATCH_HEAVY=1 to run the heavy sweep";
  }
  for (int nodes : {40, 90}) {
    data::Dataset ds = SmallUug(nodes, 4);
    const std::vector<flat::NodeId> targets = AllIds(ds);
    for (gnn::ModelType type :
         {gnn::ModelType::kGcn, gnn::ModelType::kGraphSage,
          gnn::ModelType::kGat}) {
      for (int layers : {1, 3}) {
        gnn::ModelConfig mconfig = SmallModel(type, layers, ds.feature_dim);
        gnn::GnnModel model(mconfig);
        const auto state = model.StateDict();
        for (int batch_slices : {2, 7}) {
          InferConfig base;
          base.model = mconfig;
          auto reference =
              RunSliceBySlice(base, state, ds, targets, batch_slices);
          ASSERT_TRUE(reference.ok()) << reference.status().ToString();
          for (int num_shards : {1, 4}) {
            for (int64_t budget :
                 {int64_t{0}, int64_t{512}, int64_t{4096}, int64_t{-1}}) {
              InferConfig config = base;
              config.num_shards = num_shards;
              config.batch_slices = batch_slices;
              config.cache_budget_bytes = budget;
              if (budget > 0) {
                config.cache_spill_path =
                    ::testing::TempDir() + "/infer_batch_heavy.records";
              }
              auto batched =
                  RunGraphInferBatched(config, state, ds.nodes, ds.edges);
              ASSERT_TRUE(batched.ok()) << batched.status().ToString();
              ExpectScoresIdentical(
                  *batched, *reference,
                  std::string(gnn::ModelTypeName(type)) + " n=" +
                      std::to_string(nodes) + " L=" +
                      std::to_string(layers) + " B=" +
                      std::to_string(batch_slices) + " S=" +
                      std::to_string(num_shards) + " budget=" +
                      std::to_string(budget));
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace agl::infer
