// Autograd correctness: every differentiable op is verified against
// central-difference numerical gradients, including the two graph kernels
// (SpMM aggregation and the fused GAT edge-softmax). The numerical check is
// the strongest property test available for an AD engine.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"

namespace agl::autograd {
namespace {

using tensor::SparseMatrix;
using tensor::Tensor;

/// Checks d(loss)/d(param) against central differences for every element.
void CheckGradient(Variable param,
                   const std::function<Variable()>& loss_fn,
                   float eps = 1e-3f, float tol = 2e-2f) {
  Variable loss = loss_fn();
  Backward(loss);
  Tensor analytic = param.grad();

  Tensor& value = param.mutable_value();
  for (int64_t i = 0; i < value.size(); ++i) {
    const float orig = value.data()[i];
    value.data()[i] = orig + eps;
    const float up = loss_fn().value().at(0, 0);
    value.data()[i] = orig - eps;
    const float down = loss_fn().value().at(0, 0);
    value.data()[i] = orig;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric,
                tol * std::max(1.f, std::fabs(numeric)))
        << "element " << i;
  }
}

TEST(VariableTest, ParameterRequiresGrad) {
  Variable p = Variable::Parameter(Tensor(2, 2));
  EXPECT_TRUE(p.requires_grad());
  Variable c = Variable::Constant(Tensor(2, 2));
  EXPECT_FALSE(c.requires_grad());
}

TEST(VariableTest, BackwardAccumulatesThroughSharedInput) {
  // y = x + x => dy/dx = 2.
  Variable x = Variable::Parameter(Tensor::Full(1, 1, 3.f));
  Variable y = Add(x, x);
  Backward(Sum(y));
  EXPECT_NEAR(x.grad().at(0, 0), 2.f, 1e-6f);
}

TEST(VariableTest, RepeatedBackwardDoesNotDoubleCount) {
  Variable x = Variable::Parameter(Tensor::Full(1, 1, 2.f));
  auto make_loss = [&] { return Sum(Mul(x, x)); };
  Backward(make_loss());
  const float g1 = x.grad().at(0, 0);
  Backward(make_loss());
  EXPECT_NEAR(x.grad().at(0, 0), g1, 1e-6f);  // zeroed between passes
}

TEST(OpsGradTest, MatMul) {
  Rng rng(21);
  Variable a = Variable::Parameter(Tensor::RandomNormal(3, 4, 0, 1, &rng));
  Variable b = Variable::Parameter(Tensor::RandomNormal(4, 2, 0, 1, &rng));
  CheckGradient(a, [&] { return Sum(MatMul(a, b)); });
  CheckGradient(b, [&] { return Sum(MatMul(a, b)); });
}

TEST(OpsGradTest, AddSubMul) {
  Rng rng(22);
  Variable a = Variable::Parameter(Tensor::RandomNormal(2, 3, 0, 1, &rng));
  Variable b = Variable::Parameter(Tensor::RandomNormal(2, 3, 0, 1, &rng));
  CheckGradient(a, [&] { return Sum(Mul(Add(a, b), Sub(a, b))); });
  CheckGradient(b, [&] { return Sum(Mul(Add(a, b), Sub(a, b))); });
}

TEST(OpsGradTest, AddBias) {
  Rng rng(23);
  Variable a = Variable::Parameter(Tensor::RandomNormal(4, 3, 0, 1, &rng));
  Variable bias = Variable::Parameter(Tensor::RandomNormal(1, 3, 0, 1, &rng));
  CheckGradient(bias, [&] { return Sum(AddBias(a, bias)); });
  CheckGradient(a, [&] { return Sum(AddBias(a, bias)); });
}

TEST(OpsGradTest, ScaleAndMean) {
  Rng rng(24);
  Variable a = Variable::Parameter(Tensor::RandomNormal(3, 3, 0, 1, &rng));
  CheckGradient(a, [&] { return Mean(Scale(a, 2.5f)); });
}

TEST(OpsGradTest, ConcatCols) {
  Rng rng(25);
  Variable a = Variable::Parameter(Tensor::RandomNormal(3, 2, 0, 1, &rng));
  Variable b = Variable::Parameter(Tensor::RandomNormal(3, 4, 0, 1, &rng));
  Variable w = Variable::Constant(Tensor::RandomNormal(6, 1, 0, 1, &rng));
  auto loss = [&] { return Sum(MatMul(ConcatCols(a, b), w)); };
  CheckGradient(a, loss);
  CheckGradient(b, loss);
}

TEST(OpsGradTest, GatherRows) {
  Rng rng(26);
  Variable a = Variable::Parameter(Tensor::RandomNormal(5, 3, 0, 1, &rng));
  // Repeated index: gradients must accumulate.
  auto loss = [&] { return Sum(GatherRows(a, {0, 2, 2, 4})); };
  CheckGradient(a, loss);
  Backward(loss());
  EXPECT_NEAR(a.grad().at(2, 0), 2.f, 1e-5f);
  EXPECT_NEAR(a.grad().at(1, 0), 0.f, 1e-5f);
}

TEST(OpsGradTest, Activations) {
  Rng rng(27);
  // Avoid kinks at 0 by shifting values away from it.
  Tensor init = Tensor::RandomNormal(3, 3, 0, 1, &rng);
  for (int64_t i = 0; i < init.size(); ++i) {
    if (std::fabs(init.data()[i]) < 0.2f) init.data()[i] += 0.5f;
  }
  Variable a = Variable::Parameter(init);
  CheckGradient(a, [&] { return Sum(Relu(a)); });
  CheckGradient(a, [&] { return Sum(LeakyRelu(a, 0.2f)); });
  CheckGradient(a, [&] { return Sum(Elu(a)); });
  CheckGradient(a, [&] { return Sum(Sigmoid(a)); });
  CheckGradient(a, [&] { return Sum(Tanh(a)); });
}

TEST(OpsGradTest, SoftmaxCrossEntropy) {
  Rng rng(28);
  Variable logits =
      Variable::Parameter(Tensor::RandomNormal(4, 3, 0, 1, &rng));
  const std::vector<int64_t> labels = {0, 2, 1, 2};
  CheckGradient(logits,
                [&] { return SoftmaxCrossEntropy(logits, labels); });
}

TEST(OpsGradTest, BceWithLogits) {
  Rng rng(29);
  Variable logits =
      Variable::Parameter(Tensor::RandomNormal(3, 5, 0, 1, &rng));
  Tensor targets(3, 5);
  for (int64_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = rng.Bernoulli(0.4) ? 1.f : 0.f;
  }
  CheckGradient(logits, [&] { return BceWithLogits(logits, targets); });
}

TEST(OpsGradTest, L2Penalty) {
  Rng rng(30);
  Variable w = Variable::Parameter(Tensor::RandomNormal(3, 3, 0, 1, &rng));
  CheckGradient(w, [&] { return L2Penalty(w, 0.3f); });
}

TEST(OpsTest, DropoutTrainFalseIsIdentity) {
  Rng rng(31);
  Variable a = Variable::Parameter(Tensor::RandomNormal(4, 4, 0, 1, &rng));
  Variable out = Dropout(a, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(out.value().AllClose(a.value(), 0.f));
}

TEST(OpsTest, DropoutPreservesScaleInExpectation) {
  Rng rng(32);
  Variable a = Variable::Constant(Tensor::Full(100, 100, 1.f));
  Variable out = Dropout(a, 0.3f, /*training=*/true, &rng);
  // Inverted dropout: E[out] == 1. Mean over 10k elements is tight.
  EXPECT_NEAR(out.value().Sum() / out.value().size(), 1.0, 0.05);
}

TEST(OpsTest, DropoutGradientMatchesMask) {
  Rng rng(33);
  Variable a = Variable::Parameter(Tensor::Full(10, 10, 2.f));
  Variable out = Dropout(a, 0.5f, true, &rng);
  Backward(Sum(out));
  // Gradient equals the mask: out = a * mask => d/da sum(out) = mask.
  for (int64_t i = 0; i < a.value().size(); ++i) {
    const float m = out.value().data()[i] / 2.f;
    EXPECT_NEAR(a.grad().data()[i], m, 1e-6f);
  }
}

AdjacencyPtr TestAdjacency() {
  // 5 nodes, mixed degrees incl. an isolated destination (row 4 empty).
  return std::make_shared<SharedAdjacency>(SparseMatrix::FromCoo(
      5, 5,
      {{0, 1, 1.f}, {0, 2, 0.5f}, {1, 0, 2.f}, {2, 3, 1.f}, {2, 0, 1.f},
       {3, 3, 1.f}}));
}

TEST(SharedAdjacencyTest, TransposeIndexIsConsistent) {
  AdjacencyPtr adj = TestAdjacency();
  const auto& tix = adj->transpose_index();
  const auto& m = adj->matrix();
  EXPECT_EQ(static_cast<int64_t>(tix.dst.size()), m.nnz());
  // Every (row j of transpose, entry -> dst i at orig_pos p) must satisfy
  // m.col_idx[p] == j and p lies in row i of the forward CSR.
  for (int64_t j = 0; j < m.cols(); ++j) {
    for (int64_t q = tix.row_ptr[j]; q < tix.row_ptr[j + 1]; ++q) {
      const int64_t i = tix.dst[q];
      const int64_t p = tix.orig_pos[q];
      EXPECT_EQ(m.col_idx()[p], j);
      EXPECT_GE(p, m.row_ptr()[i]);
      EXPECT_LT(p, m.row_ptr()[i + 1]);
    }
  }
}

TEST(OpsGradTest, SpmmAggregate) {
  Rng rng(34);
  AdjacencyPtr adj = TestAdjacency();
  Variable h = Variable::Parameter(Tensor::RandomNormal(5, 3, 0, 1, &rng));
  CheckGradient(h, [&] { return Sum(SpmmAggregate(adj, h)); });
}

TEST(OpsGradTest, SpmmAggregateMultiThreaded) {
  Rng rng(35);
  AdjacencyPtr adj = TestAdjacency();
  Variable h = Variable::Parameter(Tensor::RandomNormal(5, 3, 0, 1, &rng));
  tensor::SpmmOptions opts{4};
  CheckGradient(h, [&] { return Sum(SpmmAggregate(adj, h, opts)); });
}

TEST(OpsGradTest, GatAggregateAllInputs) {
  Rng rng(36);
  AdjacencyPtr adj = TestAdjacency();
  Variable h = Variable::Parameter(Tensor::RandomNormal(5, 3, 0, 0.5, &rng));
  Variable al = Variable::Parameter(Tensor::RandomNormal(5, 1, 0, 0.5, &rng));
  Variable ar = Variable::Parameter(Tensor::RandomNormal(5, 1, 0, 0.5, &rng));
  auto loss = [&] { return Sum(GatAggregate(adj, h, al, ar)); };
  CheckGradient(h, loss, 1e-3f, 3e-2f);
  CheckGradient(al, loss, 1e-3f, 3e-2f);
  CheckGradient(ar, loss, 1e-3f, 3e-2f);
}

TEST(OpsGradTest, GatAggregateParallelMatchesSerial) {
  Rng rng(37);
  AdjacencyPtr adj = TestAdjacency();
  Tensor h0 = Tensor::RandomNormal(5, 4, 0, 1, &rng);
  Tensor al0 = Tensor::RandomNormal(5, 1, 0, 1, &rng);
  Tensor ar0 = Tensor::RandomNormal(5, 1, 0, 1, &rng);

  auto run = [&](int threads) {
    Variable h = Variable::Parameter(h0);
    Variable al = Variable::Parameter(al0);
    Variable ar = Variable::Parameter(ar0);
    Variable out = GatAggregate(adj, h, al, ar, 0.2f, {threads});
    Backward(Sum(out));
    return std::make_tuple(out.value(), h.grad(), al.grad(), ar.grad());
  };
  auto [o1, gh1, gal1, gar1] = run(1);
  auto [o4, gh4, gal4, gar4] = run(4);
  EXPECT_TRUE(o1.AllClose(o4, 1e-6f));
  EXPECT_TRUE(gh1.AllClose(gh4, 1e-6f));
  EXPECT_TRUE(gal1.AllClose(gal4, 1e-6f));
  EXPECT_TRUE(gar1.AllClose(gar4, 1e-6f));
}

TEST(OpsTest, GatAggregateRowsAreConvexCombinations) {
  Rng rng(38);
  AdjacencyPtr adj = TestAdjacency();
  // With identical h rows, any convex combination returns that row.
  Tensor h(5, 2);
  for (int64_t i = 0; i < 5; ++i) {
    h.at(i, 0) = 1.f;
    h.at(i, 1) = -2.f;
  }
  Variable out = GatAggregate(adj, Variable::Constant(h),
                              Variable::Constant(Tensor(5, 1)),
                              Variable::Constant(Tensor(5, 1)));
  const auto& m = adj->matrix();
  for (int64_t i = 0; i < 5; ++i) {
    if (m.RowNnz(i) == 0) {
      EXPECT_EQ(out.value().at(i, 0), 0.f);  // isolated row stays zero
    } else {
      EXPECT_NEAR(out.value().at(i, 0), 1.f, 1e-5f);
      EXPECT_NEAR(out.value().at(i, 1), -2.f, 1e-5f);
    }
  }
}

}  // namespace
}  // namespace agl::autograd
