// Tests for the nn layer: module registry, Linear, optimizers, metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "nn/linear.h"
#include "nn/metrics.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace agl::nn {
namespace {

using autograd::Variable;
using tensor::Tensor;

class TinyModule : public Module {
 public:
  explicit TinyModule(Rng* rng)
      : lin1_(4, 8, rng), lin2_(8, 2, rng) {
    RegisterChild("lin1", &lin1_);
    RegisterChild("lin2", &lin2_);
    extra_ = RegisterParameter("extra", Tensor(1, 2));
  }

  Variable Forward(const Variable& x) const {
    return autograd::AddBias(lin2_.Forward(autograd::Relu(lin1_.Forward(x))),
                             extra_);
  }

 private:
  Linear lin1_;
  Linear lin2_;
  Variable extra_;
};

TEST(ModuleTest, HierarchicalNames) {
  Rng rng(1);
  TinyModule m(&rng);
  auto params = m.Parameters();
  std::vector<std::string> names;
  for (const auto& p : params) names.push_back(p.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "lin1.weight"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "lin2.bias"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "extra"), names.end());
  EXPECT_EQ(params.size(), 5u);
}

TEST(ModuleTest, NumParametersCountsScalars) {
  Rng rng(2);
  TinyModule m(&rng);
  // 4*8 + 8 + 8*2 + 2 + 2 = 60
  EXPECT_EQ(m.NumParameters(), 60);
}

TEST(ModuleTest, StateDictRoundTrip) {
  Rng rng(3);
  TinyModule a(&rng);
  Rng rng2(99);
  TinyModule b(&rng2);
  ASSERT_TRUE(b.LoadStateDict(a.StateDict()).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(
        pa[i].variable.value().AllClose(pb[i].variable.value(), 0.f));
  }
}

TEST(ModuleTest, LoadStateDictRejectsMissingKey) {
  Rng rng(4);
  TinyModule m(&rng);
  auto state = m.StateDict();
  state.erase("extra");
  EXPECT_EQ(m.LoadStateDict(state).code(), StatusCode::kNotFound);
}

TEST(ModuleTest, LoadStateDictRejectsShapeMismatch) {
  Rng rng(5);
  TinyModule m(&rng);
  auto state = m.StateDict();
  state["extra"] = Tensor(2, 2);
  EXPECT_EQ(m.LoadStateDict(state).code(), StatusCode::kInvalidArgument);
}

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(6);
  Linear lin(3, 5, &rng);
  Variable x = Variable::Constant(Tensor::Full(2, 3, 0.f));
  Variable y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 5);
  // Zero input: output equals the (zero-initialized) bias.
  EXPECT_NEAR(y.value().Sum(), 0.0, 1e-6);
}

TEST(LinearTest, NoBiasVariantHasOneParameter) {
  Rng rng(7);
  Linear lin(3, 5, &rng, /*bias=*/false);
  EXPECT_EQ(lin.Parameters().size(), 1u);
}

TEST(SgdTest, StepsDownhillOnQuadratic) {
  // minimize f(w) = ||w - 3||^2 elementwise.
  Variable w = Variable::Parameter(Tensor::Full(1, 1, 0.f));
  Sgd opt({{"w", w}}, /*lr=*/0.1f);
  for (int i = 0; i < 200; ++i) {
    Variable diff =
        autograd::Sub(w, Variable::Constant(Tensor::Full(1, 1, 3.f)));
    Variable loss = autograd::Sum(autograd::Mul(diff, diff));
    autograd::Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(w.value().at(0, 0), 3.f, 1e-3f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Variable w = Variable::Parameter(Tensor::Full(1, 3, -2.f));
  Adam::Options opts;
  opts.lr = 0.05f;
  Adam opt({{"w", w}}, opts);
  for (int i = 0; i < 500; ++i) {
    Variable diff =
        autograd::Sub(w, Variable::Constant(Tensor::Full(1, 3, 1.5f)));
    Variable loss = autograd::Sum(autograd::Mul(diff, diff));
    autograd::Backward(loss);
    opt.Step();
  }
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(w.value().at(0, j), 1.5f, 1e-2f);
  }
}

TEST(AdamTest, FunctionalMatchesStateful) {
  // AdamApply (server-side) must produce the same trajectory as Adam.
  Rng rng(8);
  Tensor init = Tensor::RandomNormal(2, 2, 0, 1, &rng);
  Adam::Options opts;
  opts.lr = 0.01f;

  Variable w = Variable::Parameter(init);
  Adam opt({{"w", w}}, opts);

  Tensor server_value = init;
  AdamState server_state;

  for (int step = 0; step < 10; ++step) {
    Tensor grad = Tensor::RandomNormal(2, 2, 0, 1, &rng);
    w.ZeroGrad();
    w.node()->AccumulateGrad(grad);
    opt.Step();
    AdamApply(opts, grad, &server_value, &server_state);
    EXPECT_TRUE(w.value().AllClose(server_value, 1e-6f)) << "step " << step;
  }
}

TEST(MetricsTest, AccuracyBasics) {
  Tensor logits(3, 2, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  EXPECT_NEAR(Accuracy(logits, {0, 1, 0}), 1.0, 1e-9);
  EXPECT_NEAR(Accuracy(logits, {1, 0, 1}), 0.0, 1e-9);
  EXPECT_NEAR(Accuracy(logits, {0, 0, 0}), 2.0 / 3.0, 1e-9);
}

TEST(MetricsTest, MicroF1PerfectAndWorst) {
  Tensor targets(2, 3, {1, 0, 1, 0, 1, 0});
  Tensor perfect(2, 3, {5, -5, 5, -5, 5, -5});
  EXPECT_NEAR(MicroF1(perfect, targets), 1.0, 1e-9);
  Tensor inverted(2, 3, {-5, 5, -5, 5, -5, 5});
  EXPECT_NEAR(MicroF1(inverted, targets), 0.0, 1e-9);
}

TEST(MetricsTest, MicroF1PartialKnownValue) {
  // tp=1 (pred+ truth+), fp=1, fn=1 -> F1 = 2*1/(2+1+1) = 0.5
  Tensor targets(1, 3, {1, 1, 0});
  Tensor logits(1, 3, {1, -1, 1});
  EXPECT_NEAR(MicroF1(logits, targets), 0.5, 1e-9);
}

TEST(MetricsTest, AucPerfectRankingIsOne) {
  EXPECT_NEAR(Auc({0.1f, 0.2f, 0.8f, 0.9f}, {0, 0, 1, 1}), 1.0, 1e-9);
  EXPECT_NEAR(Auc({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}), 0.0, 1e-9);
}

TEST(MetricsTest, AucRandomScoresNearHalf) {
  Rng rng(9);
  std::vector<float> scores(4000);
  std::vector<int> labels(4000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<float>(rng.Uniform());
    labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_NEAR(Auc(scores, labels), 0.5, 0.05);
}

TEST(MetricsTest, AucHandlesTies) {
  // All scores equal: AUC must be exactly 0.5 by the tie rule.
  EXPECT_NEAR(Auc({1.f, 1.f, 1.f, 1.f}, {0, 1, 0, 1}), 0.5, 1e-9);
}

TEST(MetricsTest, AucDegenerateSingleClass) {
  EXPECT_NEAR(Auc({0.1f, 0.5f}, {1, 1}), 0.5, 1e-9);
}

}  // namespace
}  // namespace agl::nn
