// Tests for the varint codec and the checksummed record file format.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "common/failpoint.h"
#include "io/codec.h"
#include "io/record_file.h"

namespace agl::io {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CodecTest, VarintRoundTrip) {
  BufferWriter w;
  const std::vector<uint64_t> values = {
      0, 1, 127, 128, 300, 1u << 20, std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) w.PutVarint64(v);
  BufferReader r(w.data());
  for (uint64_t expected : values) {
    uint64_t got;
    ASSERT_TRUE(r.GetVarint64(&got).ok());
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, SignedVarintRoundTrip) {
  BufferWriter w;
  const std::vector<int64_t> values = {0, -1, 1, -64, 64, -1000000,
                                       std::numeric_limits<int64_t>::min(),
                                       std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) w.PutVarint64Signed(v);
  BufferReader r(w.data());
  for (int64_t expected : values) {
    int64_t got;
    ASSERT_TRUE(r.GetVarint64Signed(&got).ok());
    EXPECT_EQ(got, expected);
  }
}

TEST(CodecTest, SmallNegativesAreCompact) {
  BufferWriter w;
  w.PutVarint64Signed(-1);
  EXPECT_EQ(w.size(), 1u);  // zig-zag: -1 -> 1
}

TEST(CodecTest, FixedAndFloatRoundTrip) {
  BufferWriter w;
  w.PutFixed32(0xdeadbeef);
  w.PutFixed64(0x0123456789abcdefULL);
  w.PutFloat(3.14159f);
  w.PutDouble(-2.71828);
  BufferReader r(w.data());
  uint32_t a;
  uint64_t b;
  float f;
  double d;
  ASSERT_TRUE(r.GetFixed32(&a).ok());
  ASSERT_TRUE(r.GetFixed64(&b).ok());
  ASSERT_TRUE(r.GetFloat(&f).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  EXPECT_EQ(a, 0xdeadbeef);
  EXPECT_EQ(b, 0x0123456789abcdefULL);
  EXPECT_EQ(f, 3.14159f);
  EXPECT_EQ(d, -2.71828);
}

TEST(CodecTest, StringAndArrays) {
  BufferWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutFloatArray({1.f, 2.f, 3.f});
  w.PutFloatArray({});
  w.PutVarintArray({10, 20, 30});
  BufferReader r(w.data());
  std::string s1, s2;
  std::vector<float> f1, f2;
  std::vector<uint64_t> v1;
  ASSERT_TRUE(r.GetString(&s1).ok());
  ASSERT_TRUE(r.GetString(&s2).ok());
  ASSERT_TRUE(r.GetFloatArray(&f1).ok());
  ASSERT_TRUE(r.GetFloatArray(&f2).ok());
  ASSERT_TRUE(r.GetVarintArray(&v1).ok());
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(f1, (std::vector<float>{1.f, 2.f, 3.f}));
  EXPECT_TRUE(f2.empty());
  EXPECT_EQ(v1, (std::vector<uint64_t>{10, 20, 30}));
}

TEST(CodecTest, UnderflowReportsCorruption) {
  BufferWriter w;
  w.PutVarint64(1000);  // 2 bytes
  BufferReader r(w.data().data(), 1);
  uint64_t v;
  EXPECT_EQ(r.GetVarint64(&v).code(), StatusCode::kCorruption);
}

TEST(CodecTest, TruncatedStringReportsCorruption) {
  BufferWriter w;
  w.PutString("abcdef");
  BufferReader r(w.data().data(), 3);
  std::string s;
  EXPECT_EQ(r.GetString(&s).code(), StatusCode::kCorruption);
}

TEST(CodecTest, OverlongVarintRejected) {
  std::string bad(11, static_cast<char>(0xff));
  BufferReader r(bad);
  uint64_t v;
  EXPECT_EQ(r.GetVarint64(&v).code(), StatusCode::kCorruption);
}

TEST(CodecTest, TruncationFuzzEveryPrefixLength) {
  // A representative record (the cache-spill layout plus every other
  // codec), truncated at every possible byte: decoding must fail with
  // kCorruption at or before the cut — never crash, never hand back a
  // value assembled from missing bytes.
  BufferWriter w;
  w.PutVarint64(0xabcdef0123ULL);
  w.PutVarint64Signed(-123456789);
  w.PutFixed32(0xdeadbeef);
  w.PutFixed64(0x0123456789abcdefULL);
  w.PutFloat(3.25f);
  w.PutDouble(-1.5);
  w.PutString("spill-payload");
  w.PutFloatArray({1.f, 2.f, 3.f, 4.f});
  w.PutVarintArray({7, 8, 9});
  const std::string full = w.data();

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    BufferReader r(full.data(), cut);
    uint64_t u;
    int64_t i;
    uint32_t f32;
    uint64_t f64;
    float f;
    double d;
    std::string s;
    std::vector<float> fa;
    std::vector<uint64_t> va;
    agl::Status st = r.GetVarint64(&u);
    if (st.ok()) st = r.GetVarint64Signed(&i);
    if (st.ok()) st = r.GetFixed32(&f32);
    if (st.ok()) st = r.GetFixed64(&f64);
    if (st.ok()) st = r.GetFloat(&f);
    if (st.ok()) st = r.GetDouble(&d);
    if (st.ok()) st = r.GetString(&s);
    if (st.ok()) st = r.GetFloatArray(&fa);
    if (st.ok()) st = r.GetVarintArray(&va);
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "cut at " << cut;
  }
}

TEST(CodecTest, HostileLengthPrefixesAreCorruptionNotBadAlloc) {
  // Length prefixes near UINT64_MAX must not wrap the bounds check, and
  // huge-but-unwrapped ones must be rejected before any allocation.
  for (uint64_t hostile :
       {std::numeric_limits<uint64_t>::max(),
        std::numeric_limits<uint64_t>::max() / sizeof(float),
        uint64_t{1} << 62, uint64_t{1} << 32}) {
    BufferWriter w;
    w.PutVarint64(hostile);
    w.PutFloat(1.f);  // a few real bytes after the lying length
    std::string s;
    std::vector<float> fa;
    std::vector<uint64_t> va;
    EXPECT_EQ(BufferReader(w.data()).GetString(&s).code(),
              StatusCode::kCorruption)
        << hostile;
    EXPECT_EQ(BufferReader(w.data()).GetFloatArray(&fa).code(),
              StatusCode::kCorruption)
        << hostile;
    EXPECT_EQ(BufferReader(w.data()).GetVarintArray(&va).code(),
              StatusCode::kCorruption)
        << hostile;
  }
}

TEST(Crc32cTest, KnownProperties) {
  EXPECT_EQ(Crc32c("", 0), 0u);
  const uint32_t a = Crc32c("hello", 5);
  const uint32_t b = Crc32c("hellp", 5);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Crc32c("hello", 5));  // deterministic
}

TEST(RecordFileTest, RoundTrip) {
  const std::string path = TempPath("agl_record_test.dat");
  {
    auto w = RecordWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("first").ok());
    ASSERT_TRUE(w->Append("").ok());
    ASSERT_TRUE(w->Append(std::string(100000, 'x')).ok());
    EXPECT_EQ(w->num_records(), 3u);
    ASSERT_TRUE(w->Close().ok());
  }
  auto r = RecordReader::Open(path);
  ASSERT_TRUE(r.ok());
  std::vector<std::string> records;
  ASSERT_TRUE(r->ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "first");
  EXPECT_EQ(records[1], "");
  EXPECT_EQ(records[2].size(), 100000u);
  std::remove(path.c_str());
}

TEST(RecordFileTest, NextReportsEndOfFile) {
  const std::string path = TempPath("agl_record_eof.dat");
  {
    auto w = RecordWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("only").ok());
    ASSERT_TRUE(w->Close().ok());
  }
  auto r = RecordReader::Open(path);
  ASSERT_TRUE(r.ok());
  std::string rec;
  EXPECT_TRUE(r->Next(&rec).ok());
  EXPECT_EQ(r->Next(&rec).code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(RecordFileTest, DetectsCorruption) {
  const std::string path = TempPath("agl_record_corrupt.dat");
  {
    auto w = RecordWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("payload-that-will-be-corrupted").ok());
    ASSERT_TRUE(w->Close().ok());
  }
  // Flip a payload byte.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -3, SEEK_END);
    std::fputc('Z', f);
    std::fclose(f);
  }
  auto r = RecordReader::Open(path);
  ASSERT_TRUE(r.ok());
  std::string rec;
  EXPECT_EQ(r->Next(&rec).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(RecordFileTest, MissingFileIsIoError) {
  auto r = RecordReader::Open("/nonexistent/path/file.dat");
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(RecordFileTest, TruncationFuzzEveryByte) {
  // A spill/part file cut short at every possible byte (torn write, full
  // disk): the reader must yield exactly the records that fit, then
  // kCorruption mid-record (including mid-length-varint) or kOutOfRange at
  // a clean record boundary — never an OK partial record.
  const std::string path = TempPath("agl_record_truncfuzz.dat");
  const std::vector<std::string> records = {"alpha", "",
                                            std::string(300, 'b'), "tail"};
  std::vector<uint64_t> boundaries = {0};
  {
    auto w = RecordWriter::Open(path);
    ASSERT_TRUE(w.ok());
    for (const std::string& rec : records) {
      ASSERT_TRUE(w->Append(rec).ok());
      boundaries.push_back(w->bytes_written());
    }
    ASSERT_TRUE(w->Close().ok());
  }
  std::string full;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) full.append(buf, n);
    std::fclose(f);
  }
  ASSERT_EQ(full.size(), boundaries.back());

  const std::string cut_path = TempPath("agl_record_truncfuzz_cut.dat");
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    {
      std::FILE* f = std::fopen(cut_path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      ASSERT_EQ(std::fwrite(full.data(), 1, cut, f), cut);
      std::fclose(f);
    }
    auto r = RecordReader::Open(cut_path);
    ASSERT_TRUE(r.ok());
    std::size_t readable = 0;
    while (readable < records.size() && boundaries[readable + 1] <= cut) {
      ++readable;
    }
    std::string rec;
    for (std::size_t i = 0; i < readable; ++i) {
      ASSERT_TRUE(r->Next(&rec).ok()) << "cut " << cut << " record " << i;
      EXPECT_EQ(rec, records[i]);
    }
    const agl::Status tail_status = r->Next(&rec);
    if (cut == boundaries[readable]) {
      EXPECT_EQ(tail_status.code(), StatusCode::kOutOfRange) << "cut " << cut;
    } else {
      EXPECT_EQ(tail_status.code(), StatusCode::kCorruption) << "cut " << cut;
    }
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(RecordFileTest, SeekToReadsRecordAtOffset) {
  const std::string path = TempPath("agl_record_seek.dat");
  std::vector<uint64_t> offsets;
  {
    auto w = RecordWriter::Open(path);
    ASSERT_TRUE(w.ok());
    for (int i = 0; i < 5; ++i) {
      offsets.push_back(w->bytes_written());
      ASSERT_TRUE(w->Append("record-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(w->Close().ok());
  }
  auto r = RecordReader::Open(path);
  ASSERT_TRUE(r.ok());
  std::string rec;
  // Random-access pattern, including re-reads.
  for (int i : {3, 0, 4, 2, 2}) {
    ASSERT_TRUE(r->SeekTo(offsets[i]).ok());
    ASSERT_TRUE(r->Next(&rec).ok());
    EXPECT_EQ(rec, "record-" + std::to_string(i));
  }
  // Seeking into the middle of a record surfaces corruption on read.
  ASSERT_TRUE(r->SeekTo(offsets[1] + 2).ok());
  EXPECT_NE(r->Next(&rec).code(), StatusCode::kOk);
  std::remove(path.c_str());
}

TEST(RecordFileTest, AppendSurfacesInjectedWriteFault) {
  const std::string path = TempPath("agl_record_append_fault.dat");
  auto w = RecordWriter::Open(path);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->Append("first").ok());
  {
    fail::ScopedFailpoint fp(
        "dfs.write", fail::ErrorConfig(1.0, StatusCode::kIoError));
    EXPECT_EQ(w->Append("dropped").code(), StatusCode::kIoError);
  }
  // The failed append wrote nothing: the file stays a valid record stream.
  ASSERT_TRUE(w->Append("second").ok());
  ASSERT_TRUE(w->Close().ok());
  auto r = RecordReader::Open(path);
  ASSERT_TRUE(r.ok());
  std::vector<std::string> records;
  ASSERT_TRUE(r->ReadAll(&records).ok());
  EXPECT_EQ(records, (std::vector<std::string>{"first", "second"}));
  std::remove(path.c_str());
}

TEST(RecordFileTest, CloseSurfacesInjectedWriteFault) {
  // Close is the durability point (flush + fsync + fclose); a failure
  // there must propagate, not be swallowed — a silent loss of the tail of
  // a part file is exactly the torn-write class the manifest layer hunts.
  const std::string path = TempPath("agl_record_close_fault.dat");
  auto w = RecordWriter::Open(path);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->Append("payload").ok());
  {
    fail::ScopedFailpoint fp(
        "dfs.write", fail::ErrorConfig(1.0, StatusCode::kIoError));
    EXPECT_EQ(w->Close().code(), StatusCode::kIoError);
  }
  // The descriptor was still released; closing again is a clean no-op.
  EXPECT_TRUE(w->Close().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace agl::io
