// Tests for the CSV node/edge table readers and writers.

#include <gtest/gtest.h>

#include "flat/csv_io.h"

namespace agl::flat {
namespace {

TEST(NodeCsvTest, ParsesBasicRows) {
  const std::string text =
      "# comment line\n"
      "1,0,0.5;1.5;2.5\n"
      "2,-1,1;2;3\n"
      "\n"
      "3,2,0;0;0,1;0;1\n";
  auto nodes = ParseNodeCsv(text);
  ASSERT_TRUE(nodes.ok()) << nodes.status().ToString();
  ASSERT_EQ(nodes->size(), 3u);
  EXPECT_EQ((*nodes)[0].id, 1u);
  EXPECT_EQ((*nodes)[0].label, 0);
  EXPECT_EQ((*nodes)[0].features, (std::vector<float>{0.5f, 1.5f, 2.5f}));
  EXPECT_EQ((*nodes)[1].label, -1);
  EXPECT_EQ((*nodes)[2].multilabel, (std::vector<float>{1.f, 0.f, 1.f}));
}

TEST(NodeCsvTest, EmptyLabelMeansUnlabeled) {
  auto nodes = ParseNodeCsv("5,,1;2\n");
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ((*nodes)[0].label, -1);
}

TEST(NodeCsvTest, RejectsMalformedRows) {
  EXPECT_FALSE(ParseNodeCsv("1\n").ok());                 // too few columns
  EXPECT_FALSE(ParseNodeCsv("x,0,1;2\n").ok());           // bad id
  EXPECT_FALSE(ParseNodeCsv("1,0,1;zzz\n").ok());         // bad feature
  EXPECT_FALSE(ParseNodeCsv("1,0,1;2,0;1,extra\n").ok()); // too many columns
}

TEST(NodeCsvTest, ErrorIncludesLineNumber) {
  auto result = ParseNodeCsv("1,0,1;2\nbroken\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(EdgeCsvTest, ParsesWithOptionalColumns) {
  const std::string text =
      "1,2\n"
      "2,3,0.5\n"
      "3,4,2.0,1;0;1\n";
  auto edges = ParseEdgeCsv(text);
  ASSERT_TRUE(edges.ok()) << edges.status().ToString();
  ASSERT_EQ(edges->size(), 3u);
  EXPECT_EQ((*edges)[0].weight, 1.f);  // default
  EXPECT_EQ((*edges)[1].weight, 0.5f);
  EXPECT_EQ((*edges)[2].features, (std::vector<float>{1.f, 0.f, 1.f}));
}

TEST(EdgeCsvTest, RejectsMalformed) {
  EXPECT_FALSE(ParseEdgeCsv("1\n").ok());
  EXPECT_FALSE(ParseEdgeCsv("1,y\n").ok());
  EXPECT_FALSE(ParseEdgeCsv("1,2,w\n").ok());
}

TEST(CsvRoundTripTest, NodesSurviveWriteParse) {
  std::vector<NodeRecord> nodes = {
      {1, {0.25f, -1.5f}, 3, {}},
      {2, {0.f, 0.f}, -1, {1.f, 0.f}},
  };
  auto parsed = ParseNodeCsv(WriteNodeCsv(nodes));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_TRUE((*parsed)[0] == nodes[0]);
  EXPECT_TRUE((*parsed)[1] == nodes[1]);
}

TEST(CsvRoundTripTest, EdgesSurviveWriteParse) {
  std::vector<EdgeRecord> edges = {
      {1, 2, 0.5f, {}},
      {2, 1, 1.25f, {3.f, 4.f}},
  };
  auto parsed = ParseEdgeCsv(WriteEdgeCsv(edges));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_TRUE((*parsed)[0] == edges[0]);
  EXPECT_TRUE((*parsed)[1] == edges[1]);
}

TEST(CsvFileTest, FileRoundTrip) {
  const std::string dir = ::testing::TempDir();
  std::vector<NodeRecord> nodes = {{7, {1.f}, 0, {}}};
  std::vector<EdgeRecord> edges = {{7, 7, 2.f, {}}};
  ASSERT_TRUE(WriteNodeCsvFile(dir + "/n.csv", nodes).ok());
  ASSERT_TRUE(WriteEdgeCsvFile(dir + "/e.csv", edges).ok());
  auto n = ReadNodeCsv(dir + "/n.csv");
  auto e = ReadEdgeCsv(dir + "/e.csv");
  ASSERT_TRUE(n.ok() && e.ok());
  EXPECT_TRUE((*n)[0] == nodes[0]);
  EXPECT_TRUE((*e)[0] == edges[0]);
}

TEST(CsvFileTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadNodeCsv("/no/such/file.csv").status().code(),
            StatusCode::kIoError);
}

TEST(CsvCrLfTest, WindowsLineEndingsAccepted) {
  auto nodes = ParseNodeCsv("1,0,1;2\r\n2,1,3;4\r\n");
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 2u);
  EXPECT_EQ((*nodes)[1].features, (std::vector<float>{3.f, 4.f}));
}

TEST(CsvCrLfTest, CrLfWithTrailingColumnAndNoFinalNewline) {
  auto nodes = ParseNodeCsv("1,0,1;2,\r\n2,1,3;4");
  ASSERT_TRUE(nodes.ok()) << nodes.status().ToString();
  ASSERT_EQ(nodes->size(), 2u);
  EXPECT_TRUE((*nodes)[0].multilabel.empty());
  // A line that is only a carriage return is a blank line.
  auto edges = ParseEdgeCsv("1,2\r\n\r\n2,3\r\n");
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 2u);
}

TEST(NodeCsvHardeningTest, TrailingEmptyOptionalColumnsAreAbsent) {
  // Spreadsheet-style padded rows: the empty 4th column is not an (empty)
  // multilabel, and an edge row's empty weight/features columns fall back
  // to the defaults.
  auto nodes = ParseNodeCsv("1,0,1;2,\n");
  ASSERT_TRUE(nodes.ok()) << nodes.status().ToString();
  EXPECT_TRUE((*nodes)[0].multilabel.empty());
  auto edges = ParseEdgeCsv("1,2,\n2,3,,\n");
  ASSERT_TRUE(edges.ok()) << edges.status().ToString();
  EXPECT_EQ((*edges)[0].weight, 1.f);
  EXPECT_EQ((*edges)[1].weight, 1.f);
  EXPECT_TRUE((*edges)[1].features.empty());
}

TEST(NodeCsvHardeningTest, EmptyFeatureColumnRejected) {
  // The feature column is required: an all-empty tail must not silently
  // produce a featureless node.
  auto nodes = ParseNodeCsv("1,0,\n");
  ASSERT_FALSE(nodes.ok());
  EXPECT_EQ(nodes.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(nodes.status().message().find("feature"), std::string::npos);
}

TEST(NodeCsvHardeningTest, DuplicateNodeIdsRejectedWithLine) {
  auto nodes = ParseNodeCsv("1,0,1;2\n2,0,3;4\n1,1,5;6\n");
  ASSERT_FALSE(nodes.ok());
  EXPECT_EQ(nodes.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(nodes.status().message().find("duplicate node id 1"),
            std::string::npos);
  EXPECT_NE(nodes.status().message().find("line 3"), std::string::npos);
}

TEST(NodeCsvHardeningTest, NonNumericIdsRejected) {
  for (const char* row : {"x,0,1;2\n", "+1,0,1;2\n", " 1,0,1;2\n",
                          "1x,0,1;2\n", "0x10,0,1;2\n", "-1,0,1;2\n"}) {
    auto nodes = ParseNodeCsv(row);
    EXPECT_FALSE(nodes.ok()) << "row accepted: " << row;
    EXPECT_EQ(nodes.status().code(), StatusCode::kInvalidArgument) << row;
  }
  // Ids beyond uint64 are out of range, not wrapped.
  EXPECT_FALSE(ParseNodeCsv("99999999999999999999999,0,1;2\n").ok());
}

TEST(NodeCsvHardeningTest, FloatEdgeCasesRejected) {
  EXPECT_FALSE(ParseNodeCsv("1,0,1e999\n").ok());    // overflow -> inf
  EXPECT_FALSE(ParseNodeCsv("1,0, 1.5\n").ok());     // leading whitespace
  EXPECT_FALSE(ParseNodeCsv("1,0,1;;2\n").ok());     // empty list element
  EXPECT_FALSE(ParseEdgeCsv("1,2,1e999\n").ok());    // weight overflow
  // Tiny-but-representable values still parse (denormal underflow is not
  // an error).
  auto nodes = ParseNodeCsv("1,0,1e-44\n");
  ASSERT_TRUE(nodes.ok()) << nodes.status().ToString();
}

}  // namespace
}  // namespace agl::flat
