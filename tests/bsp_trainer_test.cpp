// Tests for the BSP (bulk-synchronous) consistency mode of GraphTrainer.

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "flat/graphflat.h"
#include "trainer/trainer.h"

namespace agl::trainer {
namespace {

struct Prepared {
  data::Dataset dataset;
  data::FeatureSplits splits;
};

Prepared MakeCase() {
  data::UugLikeOptions opts;
  opts.num_nodes = 240;
  opts.feature_dim = 8;
  opts.train_size = 128;
  opts.val_size = 40;
  opts.test_size = 40;
  Prepared p;
  p.dataset = data::MakeUugLike(opts);
  flat::GraphFlatConfig fc;
  fc.hops = 1;
  auto features =
      flat::RunGraphFlatInMemory(fc, p.dataset.nodes, p.dataset.edges);
  AGL_CHECK(features.ok());
  p.splits = data::SplitFeatures(std::move(features).value(), p.dataset);
  return p;
}

TrainerConfig BaseConfig(const Prepared& p, int workers) {
  TrainerConfig config;
  config.model.type = gnn::ModelType::kGcn;
  config.model.num_layers = 1;
  config.model.in_dim = p.dataset.feature_dim;
  config.model.hidden_dim = 8;
  config.model.out_dim = 2;
  config.model.dropout = 0.f;
  config.task = TaskKind::kBinaryAuc;
  config.num_workers = workers;
  config.batch_size = 16;
  config.epochs = 4;
  config.sync_mode = SyncMode::kBsp;
  return config;
}

TEST(BspTrainerTest, LearnsAboveChance) {
  Prepared p = MakeCase();
  auto report = GraphTrainer(BaseConfig(p, 3)).Train(p.splits.train,
                                                     p.splits.val);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->best_val_metric, 0.6);
}

TEST(BspTrainerTest, DeterministicAcrossRuns) {
  // BSP has no asynchronous races: two runs with identical config produce
  // identical loss trajectories even with multiple workers.
  Prepared p = MakeCase();
  TrainerConfig config = BaseConfig(p, 4);
  auto a = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  auto b = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->epochs.size(), b->epochs.size());
  for (std::size_t i = 0; i < a->epochs.size(); ++i) {
    EXPECT_EQ(a->epochs[i].mean_train_loss, b->epochs[i].mean_train_loss)
        << "epoch " << i;
  }
  for (const auto& [key, value] : a->final_state) {
    EXPECT_TRUE(b->final_state.at(key).AllClose(value, 0.f)) << key;
  }
}

TEST(BspTrainerTest, MatchesAsyncWithOneWorker) {
  // With a single worker there is nothing to synchronize: BSP and async
  // follow the same trajectory.
  Prepared p = MakeCase();
  TrainerConfig bsp = BaseConfig(p, 1);
  TrainerConfig async = BaseConfig(p, 1);
  async.sync_mode = SyncMode::kAsync;
  auto a = GraphTrainer(bsp).Train(p.splits.train, p.splits.val);
  auto b = GraphTrainer(async).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->epochs.size(), b->epochs.size());
  for (std::size_t i = 0; i < a->epochs.size(); ++i) {
    EXPECT_NEAR(a->epochs[i].mean_train_loss, b->epochs[i].mean_train_loss,
                1e-6)
        << "epoch " << i;
  }
}

TEST(BspTrainerTest, ConvergesToSameLevelAsAsync) {
  Prepared p = MakeCase();
  TrainerConfig bsp = BaseConfig(p, 4);
  TrainerConfig async = BaseConfig(p, 4);
  async.sync_mode = SyncMode::kAsync;
  auto a = GraphTrainer(bsp).Train(p.splits.train, p.splits.val);
  auto b = GraphTrainer(async).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->best_val_metric, b->best_val_metric, 0.15);
}

TEST(BspTrainerTest, UnevenPartitionsHandled) {
  // 5 workers over 128 features -> ragged partitions; later rounds run
  // with fewer contributors and the gradient average must not divide by
  // the idle workers.
  Prepared p = MakeCase();
  TrainerConfig config = BaseConfig(p, 5);
  config.batch_size = 10;
  auto report = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->best_val_metric, 0.55);
}

}  // namespace
}  // namespace agl::trainer
