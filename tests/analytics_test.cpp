// Differential-oracle and shard-count-invariance harness for the
// vertex-program analytics layer (`ctest -L analytics`).
//
// Two independent implementations are compared for each shipped program:
// the sharded GAS engine (src/analytics) against a naive single-threaded
// textbook oracle (tests/testing/reference_analytics — power iteration,
// union-find, Dijkstra, synchronous label propagation). CC/SSSP/LP must
// match bitwise; PageRank within a 1e-6 band (the engine stops on a
// per-vertex activation tolerance, the oracle on a global residual).
// Separately, every program must produce byte-identical SerializeValues()
// output for every shard count — with and without injected MR faults.
// The wider seed sweep runs under AGL_ANALYTICS_HEAVY=1 (set by the
// `analytics_sweep` CTest entry, mirroring sharding_sweep).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "analytics/programs.h"
#include "analytics/vertex_program.h"
#include "common/failpoint.h"
#include "mr/local_dfs.h"
#include "subgraph/graph_feature.h"
#include "testing/graph_gen.h"
#include "testing/reference_analytics.h"

namespace agl::analytics {
namespace {

using testing::AnalyticsValues;
using testing::GeneratedGraph;
using testing::GraphGenOptions;
using testing::MakeGraph;

AnalyticsConfig BaseConfig(int num_shards) {
  AnalyticsConfig config;
  config.max_supersteps = 200;
  config.num_shards = num_shards;
  config.job.num_workers = 4;
  config.job.num_map_tasks = 3;
  config.job.num_reduce_tasks = 5;
  return config;
}

// The five graph families of the differential matrix.
GraphGenOptions PowerLaw(uint64_t seed) {
  GraphGenOptions opt;
  opt.seed = seed;
  return opt;
}

GraphGenOptions ErdosRenyi(uint64_t seed) {
  GraphGenOptions opt;
  opt.topology = GraphGenOptions::Topology::kErdosRenyi;
  opt.edge_prob = 0.06;
  opt.seed = seed;
  return opt;
}

GraphGenOptions Disconnected(uint64_t seed) {
  GraphGenOptions opt;
  opt.topology = GraphGenOptions::Topology::kErdosRenyi;
  opt.num_nodes = 48;
  opt.edge_prob = 0.12;
  opt.num_components = 3;
  opt.seed = seed;
  return opt;
}

GraphGenOptions SelfLoops(uint64_t seed) {
  GraphGenOptions opt;
  opt.self_loop_prob = 0.4;
  opt.seed = seed;
  return opt;
}

GraphGenOptions EmptyEdges(uint64_t seed) {
  GraphGenOptions opt;
  opt.topology = GraphGenOptions::Topology::kErdosRenyi;
  opt.edge_prob = 0.0;
  opt.num_nodes = 24;
  opt.seed = seed;
  return opt;
}

std::vector<GraphGenOptions> AllFamilies(uint64_t seed) {
  return {PowerLaw(seed), ErdosRenyi(seed), Disconnected(seed),
          SelfLoops(seed), EmptyEdges(seed)};
}

AnalyticsResult MustRun(const VertexProgram& program, const GeneratedGraph& g,
                        int num_shards, int max_supersteps = 200) {
  AnalyticsConfig config = BaseConfig(num_shards);
  config.max_supersteps = max_supersteps;
  auto result = RunVertexProgram(config, program, g.nodes, g.edges);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(*result) : AnalyticsResult{};
}

void ExpectExactMatch(const AnalyticsResult& engine,
                      const AnalyticsValues& oracle, const std::string& what) {
  ASSERT_EQ(engine.values.size(), oracle.size()) << what;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(engine.values[i].first, oracle[i].first) << what << " #" << i;
    EXPECT_EQ(engine.values[i].second, oracle[i].second)
        << what << " vertex " << oracle[i].first;
  }
}

// --- Differential tests: engine vs oracle -------------------------------

TEST(AnalyticsDifferentialTest, PageRankMatchesOracleWithinTolerance) {
  PageRankProgram program(0.85, 1e-10);
  for (uint64_t seed : {1u, 2u}) {
    for (const GraphGenOptions& family : AllFamilies(seed)) {
      GeneratedGraph g = MakeGraph(family);
      AnalyticsResult engine = MustRun(program, g, 1);
      EXPECT_TRUE(engine.stats.converged);
      AnalyticsValues oracle =
          testing::ReferencePageRank(g.nodes, g.edges, 0.85, 1e-13, 20000);
      ASSERT_EQ(engine.values.size(), oracle.size());
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(engine.values[i].first, oracle[i].first);
        EXPECT_NEAR(engine.values[i].second, oracle[i].second, 1e-6)
            << "vertex " << oracle[i].first << " seed " << seed;
      }
    }
  }
}

TEST(AnalyticsDifferentialTest, ConnectedComponentsMatchesOracleExactly) {
  ConnectedComponentsProgram program;
  for (uint64_t seed : {1u, 2u}) {
    for (const GraphGenOptions& family : AllFamilies(seed)) {
      GeneratedGraph g = MakeGraph(family);
      AnalyticsResult engine = MustRun(program, g, 1);
      EXPECT_TRUE(engine.stats.converged);
      ExpectExactMatch(engine,
                       testing::ReferenceConnectedComponents(g.nodes, g.edges),
                       "cc seed " + std::to_string(seed));
    }
  }
}

TEST(AnalyticsDifferentialTest, SsspMatchesOracleExactly) {
  SsspProgram program(/*source=*/0);
  for (uint64_t seed : {1u, 2u}) {
    for (const GraphGenOptions& family : AllFamilies(seed)) {
      GeneratedGraph g = MakeGraph(family);
      AnalyticsResult engine = MustRun(program, g, 1);
      EXPECT_TRUE(engine.stats.converged);
      ExpectExactMatch(engine, testing::ReferenceSssp(g.nodes, g.edges, 0),
                       "sssp seed " + std::to_string(seed));
    }
  }
}

TEST(AnalyticsDifferentialTest, SsspUnitWeightsIsHopCount) {
  GraphGenOptions opt = ErdosRenyi(5);
  opt.unit_weights = true;
  GeneratedGraph g = MakeGraph(opt);
  SsspProgram program(0);
  AnalyticsResult engine = MustRun(program, g, 1);
  EXPECT_TRUE(engine.stats.converged);
  ExpectExactMatch(engine, testing::ReferenceSssp(g.nodes, g.edges, 0),
                   "sssp unit weights");
  // Unit weights: every finite distance is an integral hop count.
  for (const auto& [id, dist] : engine.values) {
    if (std::isinf(dist)) continue;
    EXPECT_EQ(dist, std::floor(dist)) << "vertex " << id;
  }
}

TEST(AnalyticsDifferentialTest, LabelPropagationMatchesOracleExactly) {
  LabelPropagationProgram program;
  for (uint64_t seed : {1u, 2u}) {
    for (const GraphGenOptions& family : AllFamilies(seed)) {
      GraphGenOptions opt = family;
      opt.unit_weights = true;
      GeneratedGraph g = MakeGraph(opt);
      AnalyticsResult engine = MustRun(program, g, 1);
      // LP may oscillate on symmetric motifs — converged is not asserted;
      // the oracle replays the exact same number of synchronous rounds.
      ExpectExactMatch(
          engine,
          testing::ReferenceLabelPropagation(g.nodes, g.edges,
                                             engine.stats.supersteps),
          "lp seed " + std::to_string(seed));
    }
  }
}

// The engine's superstep trajectory (not just the fixpoint) must equal
// synchronous Jacobi iteration: cap the supersteps and replay.
TEST(AnalyticsDifferentialTest, LabelPropagationTrajectoryIsSynchronous) {
  GraphGenOptions opt = PowerLaw(7);
  opt.unit_weights = true;
  GeneratedGraph g = MakeGraph(opt);
  LabelPropagationProgram program;
  for (int cap : {1, 2, 3}) {
    AnalyticsResult engine = MustRun(program, g, 1, cap);
    ASSERT_EQ(engine.stats.supersteps, cap);
    ExpectExactMatch(engine,
                     testing::ReferenceLabelPropagation(g.nodes, g.edges, cap),
                     "lp cap " + std::to_string(cap));
  }
}

// --- Engine semantics ----------------------------------------------------

TEST(AnalyticsEngineTest, ActiveSetDecaysAndStatsAreConsistent) {
  GeneratedGraph g = MakeGraph(PowerLaw(3));
  PageRankProgram program(0.85, 1e-10);
  AnalyticsResult result = MustRun(program, g, 1);
  ASSERT_TRUE(result.stats.converged);
  ASSERT_GT(result.stats.supersteps, 1);
  ASSERT_EQ(result.stats.active_per_round.size(),
            static_cast<std::size_t>(result.stats.supersteps));
  ASSERT_EQ(result.stats.messages_per_round.size(),
            static_cast<std::size_t>(result.stats.supersteps));
  // The DynPageRank idiom: converged vertices stop generating traffic, so
  // the tail of the run touches far fewer vertices than the head.
  EXPECT_LT(result.stats.active_per_round.back(),
            result.stats.active_per_round.front());
  EXPECT_EQ(result.stats.num_vertices,
            static_cast<int64_t>(g.nodes.size()));
  EXPECT_GT(result.stats.num_gather_edges, 0);
}

TEST(AnalyticsEngineTest, IsolatedVerticesGetTheirPostApplyValue) {
  GeneratedGraph g = MakeGraph(EmptyEdges(1));
  PageRankProgram program(0.85, 1e-10);
  AnalyticsResult result = MustRun(program, g, 1);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_EQ(result.stats.supersteps, 0);
  // No in-edges anywhere: every vertex holds the teleport-only rank, not
  // its pre-Apply Init value 1/N.
  const double expected = 0.15 / static_cast<double>(g.nodes.size());
  for (const auto& [id, value] : result.values) {
    EXPECT_DOUBLE_EQ(value, expected) << "vertex " << id;
  }
}

TEST(AnalyticsEngineTest, InputValidation) {
  GeneratedGraph g = MakeGraph(PowerLaw(1));
  PageRankProgram program;
  AnalyticsConfig config = BaseConfig(1);

  auto empty = RunVertexProgram(config, program, {}, {});
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  std::vector<flat::NodeRecord> dup_nodes = g.nodes;
  dup_nodes.push_back(g.nodes.front());
  auto dup = RunVertexProgram(config, program, dup_nodes, g.edges);
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  std::vector<flat::EdgeRecord> dangling_edges = g.edges;
  flat::EdgeRecord bad;
  bad.src = g.nodes.front().id;
  bad.dst = 999999;
  dangling_edges.push_back(bad);
  auto dangling = RunVertexProgram(config, program, g.nodes, dangling_edges);
  EXPECT_EQ(dangling.status().code(), StatusCode::kInvalidArgument);
}

TEST(AnalyticsEngineTest, MakeProgramFactory) {
  ProgramOptions options;
  for (const char* name : {"pagerank", "cc", "sssp", "lp"}) {
    auto program = MakeProgram(name, options);
    ASSERT_TRUE(program.ok()) << name;
    EXPECT_EQ((*program)->Name(), name);
  }
  EXPECT_EQ(MakeProgram("bogus", options).status().code(),
            StatusCode::kInvalidArgument);
  options.damping = 1.5;
  EXPECT_EQ(MakeProgram("pagerank", options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AnalyticsEngineTest, AugmentNodeTableAppendsOneColumn) {
  GeneratedGraph g = MakeGraph(PowerLaw(4));
  ConnectedComponentsProgram program;
  AnalyticsResult result = MustRun(program, g, 1);
  auto augmented = AugmentNodeTable(g.nodes, result);
  ASSERT_TRUE(augmented.ok());
  ASSERT_EQ(augmented->size(), g.nodes.size());
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    ASSERT_EQ((*augmented)[i].features.size(),
              g.nodes[i].features.size() + 1);
    EXPECT_EQ((*augmented)[i].features.back(),
              static_cast<float>(result.values[i].second));
  }
  // A result that lacks a node is rejected.
  AnalyticsResult truncated = result;
  truncated.values.pop_back();
  EXPECT_EQ(AugmentNodeTable(g.nodes, truncated).status().code(),
            StatusCode::kInvalidArgument);
}

// --- Shard-count invariance ----------------------------------------------

std::vector<std::unique_ptr<VertexProgram>> AllPrograms() {
  std::vector<std::unique_ptr<VertexProgram>> programs;
  programs.push_back(std::make_unique<PageRankProgram>(0.85, 1e-10));
  programs.push_back(std::make_unique<ConnectedComponentsProgram>());
  programs.push_back(std::make_unique<SsspProgram>(0));
  programs.push_back(std::make_unique<LabelPropagationProgram>());
  return programs;
}

TEST(AnalyticsShardInvarianceTest, AllProgramsByteIdenticalAcrossShards) {
  for (const GraphGenOptions& family : {PowerLaw(3), Disconnected(3)}) {
    GeneratedGraph g = MakeGraph(family);
    for (const auto& program : AllPrograms()) {
      AnalyticsResult single = MustRun(*program, g, 1);
      const std::string expected = single.SerializeValues();
      for (int num_shards : {2, 4, 7}) {
        AnalyticsResult sharded = MustRun(*program, g, num_shards);
        EXPECT_TRUE(sharded.SerializeValues() == expected)
            << program->Name() << " diverges at " << num_shards << " shards";
        EXPECT_EQ(sharded.stats.supersteps, single.stats.supersteps)
            << program->Name();
      }
    }
  }
}

TEST(AnalyticsShardInvarianceTest, FaultInjectionPreservesEquivalence) {
  GeneratedGraph g = MakeGraph(PowerLaw(9));
  PageRankProgram program(0.85, 1e-10);
  AnalyticsResult clean = MustRun(program, g, 1);

  fail::ScopedFailpoint map_fault("mr.map", fail::ErrorConfig(0.25));
  fail::ScopedFailpoint reduce_fault("mr.reduce", fail::ErrorConfig(0.25));
  AnalyticsConfig faulty = BaseConfig(4);
  faulty.job.max_task_attempts = 20;
  auto sharded = RunVertexProgram(faulty, program, g.nodes, g.edges);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_GT(sharded->stats.job_stats.failed_attempts, 0);  // faults fired
  EXPECT_TRUE(sharded->SerializeValues() == clean.SerializeValues());
}

TEST(AnalyticsShardInvarianceTest, DfsDatasetBytesAreShardCountInvariant) {
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("agl_analytics_dfs_" + std::to_string(::getpid())))
          .string();
  auto dfs = mr::LocalDfs::Open(root);
  ASSERT_TRUE(dfs.ok());
  GeneratedGraph g = MakeGraph(PowerLaw(6));
  PageRankProgram program(0.85, 1e-10);

  AnalyticsConfig single = BaseConfig(1);
  auto single_result = RunVertexProgramToDfs(single, program, g.nodes,
                                             g.edges, &*dfs, "pr_single");
  ASSERT_TRUE(single_result.ok()) << single_result.status().ToString();
  AnalyticsConfig sharded = BaseConfig(4);
  auto sharded_result = RunVertexProgramToDfs(sharded, program, g.nodes,
                                              g.edges, &*dfs, "pr_sharded");
  ASSERT_TRUE(sharded_result.ok()) << sharded_result.status().ToString();

  auto single_bytes = dfs->ReadDataset("pr_single");
  auto sharded_bytes = dfs->ReadDataset("pr_sharded");
  ASSERT_TRUE(single_bytes.ok());
  ASSERT_TRUE(sharded_bytes.ok());
  EXPECT_TRUE(*single_bytes == *sharded_bytes);

  // The dataset is well-formed GraphFeatures: one single-node subgraph per
  // vertex carrying the value as its [1 x 1] feature block. ReadDataset
  // concatenates part files, so the id order comes back permuted —
  // compare as a sorted set.
  ASSERT_EQ(single_bytes->size(), g.nodes.size());
  std::vector<std::pair<flat::NodeId, double>> parsed;
  parsed.reserve(single_bytes->size());
  for (const std::string& bytes : *single_bytes) {
    auto gf = subgraph::GraphFeature::Parse(bytes);
    ASSERT_TRUE(gf.ok()) << gf.status().ToString();
    ASSERT_EQ(gf->node_features.rows(), 1);
    ASSERT_EQ(gf->node_features.cols(), 1);
    parsed.emplace_back(gf->target_id,
                        static_cast<double>(gf->node_features.at(0, 0)));
  }
  std::sort(parsed.begin(), parsed.end());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].first, single_result->values[i].first);
    EXPECT_EQ(parsed[i].second,
              static_cast<double>(
                  static_cast<float>(single_result->values[i].second)));
  }
  std::filesystem::remove_all(root);
}

// --- Heavy sweep (AGL_ANALYTICS_HEAVY=1, set by the analytics_sweep
// CTest entry; a direct run of the binary skips it) ------------------------

TEST(AnalyticsSweepTest, FullDifferentialAndInvarianceSweep) {
  if (std::getenv("AGL_ANALYTICS_HEAVY") == nullptr) {
    GTEST_SKIP() << "set AGL_ANALYTICS_HEAVY=1 (or run `ctest -L analytics`)";
  }
  for (uint64_t seed : {11u, 12u, 13u}) {
    for (const GraphGenOptions& family : AllFamilies(seed)) {
      GraphGenOptions lp_family = family;
      lp_family.unit_weights = true;
      GeneratedGraph g = MakeGraph(family);
      GeneratedGraph lp_g = MakeGraph(lp_family);
      for (const auto& program : AllPrograms()) {
        const bool is_lp = program->Name() == "lp";
        const GeneratedGraph& graph = is_lp ? lp_g : g;
        AnalyticsResult single = MustRun(*program, graph, 1);

        // Differential leg.
        if (program->Name() == "pagerank") {
          AnalyticsValues oracle = testing::ReferencePageRank(
              graph.nodes, graph.edges, 0.85, 1e-13, 20000);
          ASSERT_EQ(single.values.size(), oracle.size());
          for (std::size_t i = 0; i < oracle.size(); ++i) {
            EXPECT_NEAR(single.values[i].second, oracle[i].second, 1e-6);
          }
        } else if (program->Name() == "cc") {
          ExpectExactMatch(
              single,
              testing::ReferenceConnectedComponents(graph.nodes, graph.edges),
              "sweep cc");
        } else if (program->Name() == "sssp") {
          ExpectExactMatch(single,
                           testing::ReferenceSssp(graph.nodes, graph.edges, 0),
                           "sweep sssp");
        } else {
          ExpectExactMatch(single,
                           testing::ReferenceLabelPropagation(
                               graph.nodes, graph.edges,
                               single.stats.supersteps),
                           "sweep lp");
        }

        // Invariance leg.
        const std::string expected = single.SerializeValues();
        for (int num_shards : {2, 4, 7}) {
          AnalyticsResult sharded = MustRun(*program, graph, num_shards);
          EXPECT_TRUE(sharded.SerializeValues() == expected)
              << program->Name() << " seed " << seed << " shards "
              << num_shards;
        }
      }
    }
  }
}

}  // namespace
}  // namespace agl::analytics
