// Tests for the sharded parameter server: pull/push semantics, server-side
// Adam equivalence with local training, and concurrent-worker safety.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ps/parameter_server.h"

namespace agl::ps {
namespace {

using tensor::Tensor;

std::map<std::string, Tensor> TinyState() {
  std::map<std::string, Tensor> state;
  state.emplace("layer0.weight", Tensor::Full(2, 3, 1.f));
  state.emplace("layer0.bias", Tensor::Full(1, 3, 0.f));
  state.emplace("layer1.weight", Tensor::Full(3, 2, -1.f));
  return state;
}

TEST(ParameterServerTest, InitializeAndPull) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  EXPECT_EQ(server.NumParameters(), 3);
  auto pulled = server.PullAll();
  ASSERT_EQ(pulled.size(), 3u);
  EXPECT_TRUE(pulled.at("layer0.weight").AllClose(Tensor::Full(2, 3, 1.f)));
}

TEST(ParameterServerTest, PushAppliesAdamUpdate) {
  ServerOptions opts;
  opts.adam.lr = 0.1f;
  ParameterServer server(opts);
  server.Initialize(TinyState());
  std::map<std::string, Tensor> grads;
  grads.emplace("layer0.bias", Tensor::Full(1, 3, 1.f));
  ASSERT_TRUE(server.PushGradients(grads).ok());
  auto pulled = server.PullAll();
  // Adam's first step moves by ~lr against the gradient sign.
  EXPECT_NEAR(pulled.at("layer0.bias").at(0, 0), -0.1f, 1e-4f);
  // Untouched parameters stay put.
  EXPECT_TRUE(pulled.at("layer0.weight").AllClose(Tensor::Full(2, 3, 1.f)));
}

TEST(ParameterServerTest, PushUnknownKeyFails) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  std::map<std::string, Tensor> grads;
  grads.emplace("bogus", Tensor(1, 1));
  EXPECT_EQ(server.PushGradients(grads).code(), StatusCode::kNotFound);
}

TEST(ParameterServerTest, PushShapeMismatchFails) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  std::map<std::string, Tensor> grads;
  grads.emplace("layer0.bias", Tensor(2, 3));
  EXPECT_EQ(server.PushGradients(grads).code(),
            StatusCode::kInvalidArgument);
}

TEST(ParameterServerTest, MatchesLocalAdamTrajectory) {
  // Sequential pushes through the PS must equal a local Adam loop.
  ServerOptions opts;
  opts.adam.lr = 0.05f;
  opts.num_shards = 3;
  ParameterServer server(opts);
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor::Full(1, 1, 4.f));
  server.Initialize(state);

  Tensor local = Tensor::Full(1, 1, 4.f);
  nn::AdamState local_state;
  Rng rng(11);
  for (int step = 0; step < 25; ++step) {
    Tensor grad(1, 1);
    grad.at(0, 0) = static_cast<float>(rng.Normal(0, 1));
    std::map<std::string, Tensor> grads;
    grads.emplace("w", grad);
    ASSERT_TRUE(server.PushGradients(grads).ok());
    nn::AdamApply(opts.adam, grad, &local, &local_state);
  }
  EXPECT_TRUE(server.PullAll().at("w").AllClose(local, 1e-6f));
}

TEST(ParameterServerTest, ShardingSpreadsKeys) {
  ServerOptions opts;
  opts.num_shards = 4;
  ParameterServer server(opts);
  std::map<std::string, Tensor> state;
  for (int i = 0; i < 64; ++i) {
    state.emplace("param_" + std::to_string(i), Tensor(1, 1));
  }
  server.Initialize(state);
  EXPECT_EQ(server.NumParameters(), 64);
  auto pulled = server.PullAll();
  EXPECT_EQ(pulled.size(), 64u);
}

TEST(ParameterServerTest, ConcurrentPushersStayConsistent) {
  // N threads pushing constant gradients: the value must equal the result
  // of N*K sequential Adam steps with that gradient (Adam on a constant
  // gradient is order-independent).
  ServerOptions opts;
  opts.adam.lr = 0.01f;
  ParameterServer server(opts);
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor::Full(1, 1, 1.f));
  server.Initialize(state);

  constexpr int kThreads = 8, kPushes = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server] {
      for (int i = 0; i < kPushes; ++i) {
        std::map<std::string, Tensor> grads;
        grads.emplace("w", Tensor::Full(1, 1, 1.f));
        AGL_CHECK_OK(server.PushGradients(grads));
      }
    });
  }
  for (auto& th : threads) th.join();

  Tensor local = Tensor::Full(1, 1, 1.f);
  nn::AdamState local_state;
  for (int i = 0; i < kThreads * kPushes; ++i) {
    nn::AdamApply(opts.adam, Tensor::Full(1, 1, 1.f), &local, &local_state);
  }
  EXPECT_TRUE(server.PullAll().at("w").AllClose(local, 1e-4f));
  EXPECT_EQ(server.stats().pushes, kThreads * kPushes);
}

TEST(ParameterServerTest, StatsAccounting) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  server.PullAll();
  auto stats = server.stats();
  EXPECT_EQ(stats.pulls, 3);
  EXPECT_EQ(stats.bytes_pulled,
            static_cast<int64_t>((6 + 3 + 6) * sizeof(float)));
}

TEST(ParameterServerTest, ReinitializeResets) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  std::map<std::string, Tensor> smaller;
  smaller.emplace("only", Tensor(1, 1));
  server.Initialize(smaller);
  EXPECT_EQ(server.NumParameters(), 1);
}

// --- SSP clock layer -------------------------------------------------------

std::map<std::string, Tensor> UnitGrads() {
  std::map<std::string, Tensor> grads;
  grads.emplace("w", Tensor::Full(1, 1, 1.f));
  return grads;
}

TEST(SspClockTest, PullOutsideEpochFails) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  EXPECT_EQ(server.PullSsp(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.PushSsp(0, UnitGrads()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SspClockTest, TickCommitsWhenAllWorkersContributed) {
  // Two workers, bound 0: worker 0's push alone must NOT move the value;
  // worker 1's push completes the tick and commits the averaged update.
  ServerOptions opts;
  opts.adam.lr = 0.1f;
  ParameterServer server(opts);
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor::Full(1, 1, 1.f));
  server.Initialize(state);
  server.BeginSspEpoch(2, 0);

  ASSERT_TRUE(server.PushSsp(0, UnitGrads()).ok());
  EXPECT_TRUE(server.PullAll().at("w").AllClose(Tensor::Full(1, 1, 1.f)));
  ASSERT_TRUE(server.PushSsp(1, UnitGrads()).ok());

  Tensor local = Tensor::Full(1, 1, 1.f);
  nn::AdamState local_state;
  nn::AdamApply(opts.adam, Tensor::Full(1, 1, 1.f), &local, &local_state);
  EXPECT_TRUE(server.PullAll().at("w").AllClose(local, 0.f));
  EXPECT_EQ(server.stats().ssp_commits, 1);
  server.EndSspEpoch();
}

TEST(SspClockTest, FinishedWorkerStopsHoldingTheClock) {
  ServerOptions opts;
  ParameterServer server(opts);
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor::Full(1, 1, 1.f));
  server.Initialize(state);
  server.BeginSspEpoch(2, 0);

  ASSERT_TRUE(server.PushSsp(0, UnitGrads()).ok());
  EXPECT_EQ(server.stats().ssp_commits, 0);  // tick 0 still open
  server.FinishSspWorker(1);                 // worker 1 had no batches
  EXPECT_EQ(server.stats().ssp_commits, 1);  // tick 0 commits without it
  // Worker 0 now runs alone; its next tick commits on push.
  ASSERT_TRUE(server.PushSsp(0, UnitGrads()).ok());
  EXPECT_EQ(server.stats().ssp_commits, 2);
  server.EndSspEpoch();
}

TEST(SspClockTest, GateBlocksRunaheadUntilSlowestCatchesUp) {
  ParameterServer server(ServerOptions{});
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor::Full(1, 1, 1.f));
  server.Initialize(state);
  server.BeginSspEpoch(2, /*staleness_bound=*/1);

  // Worker 0 completes one tick; at clock 1 vs min 0 (skew 1 == bound) it
  // may still pull, but after a second tick (skew 2) it must block.
  ASSERT_TRUE(server.PushSsp(0, UnitGrads()).ok());
  ASSERT_TRUE(server.PullSsp(0).ok());
  ASSERT_TRUE(server.PushSsp(0, UnitGrads()).ok());

  std::atomic<bool> admitted{false};
  std::thread runahead([&] {
    auto r = server.PullSsp(0);  // skew 2 > bound 1: blocks
    EXPECT_TRUE(r.ok());
    admitted = true;
  });
  // Give the wait a moment to engage, then release it via worker 1.
  while (server.stats().ssp_waits == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(admitted.load());
  ASSERT_TRUE(server.PushSsp(1, UnitGrads()).ok());  // min clock -> 1
  runahead.join();
  EXPECT_TRUE(admitted.load());
  auto stats = server.stats();
  EXPECT_EQ(stats.ssp_waits, 1);
  EXPECT_EQ(stats.max_staleness, 1);  // skew observed at admit time
  server.EndSspEpoch();
}

TEST(SspClockTest, CancelReleasesBlockedPullAsAborted) {
  ParameterServer server(ServerOptions{});
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor::Full(1, 1, 1.f));
  server.Initialize(state);
  server.BeginSspEpoch(2, 0);

  ASSERT_TRUE(server.PushSsp(0, UnitGrads()).ok());
  std::atomic<bool> released{false};
  std::thread blocked([&] {
    auto r = server.PullSsp(0);  // skew 1 > bound 0 (worker 1 at clock 0)
    EXPECT_EQ(r.status().code(), StatusCode::kAborted);
    released = true;
  });
  while (server.stats().ssp_waits == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(released.load());
  server.CancelSsp();
  blocked.join();
  EXPECT_TRUE(released.load());
  EXPECT_EQ(server.PushSsp(1, UnitGrads()).code(), StatusCode::kAborted);
  server.EndSspEpoch();
}

TEST(SspClockTest, EndEpochReleasesParkedPull) {
  // Ending (not cancelling) the epoch while a worker is parked at the
  // gate must fail that pull out rather than leave it waiting on clocks
  // that no longer exist.
  ParameterServer server(ServerOptions{});
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor::Full(1, 1, 1.f));
  server.Initialize(state);
  server.BeginSspEpoch(2, 0);
  ASSERT_TRUE(server.PushSsp(0, UnitGrads()).ok());
  std::atomic<bool> released{false};
  std::thread blocked([&] {
    auto r = server.PullSsp(0);  // skew 1 > bound 0
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
    released = true;
  });
  while (server.stats().ssp_waits == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(released.load());
  server.EndSspEpoch();
  blocked.join();
  EXPECT_TRUE(released.load());
}

TEST(SspClockTest, PushValidatesKeysAndShapes) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  server.BeginSspEpoch(1, 0);
  std::map<std::string, Tensor> unknown;
  unknown.emplace("nope", Tensor::Full(1, 1, 1.f));
  EXPECT_EQ(server.PushSsp(0, unknown).code(), StatusCode::kNotFound);
  std::map<std::string, Tensor> bad_shape;
  bad_shape.emplace("layer0.bias", Tensor::Full(2, 2, 1.f));
  EXPECT_EQ(server.PushSsp(0, bad_shape).code(),
            StatusCode::kInvalidArgument);
  server.EndSspEpoch();
}

TEST(SspClockTest, FinishedWorkerPullObservesZeroSkew) {
  // A finished worker's clock can sit BELOW the minimum of the unfinished
  // workers; a late pull from it must clamp to bucket 0, not index the
  // histogram negatively.
  ParameterServer server(ServerOptions{});
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor::Full(1, 1, 1.f));
  server.Initialize(state);
  server.BeginSspEpoch(2, 1);
  ASSERT_TRUE(server.PushSsp(1, UnitGrads()).ok());
  ASSERT_TRUE(server.PushSsp(1, UnitGrads()).ok());  // clock 2
  server.FinishSspWorker(0);                         // clock 0, excluded
  auto r = server.PullSsp(0);
  ASSERT_TRUE(r.ok());
  auto stats = server.stats();
  EXPECT_EQ(stats.staleness_hist[0], 1);
  EXPECT_EQ(stats.max_staleness, 0);
  server.EndSspEpoch();
}

TEST(SspClockTest, StalenessHistogramCountsAdmits) {
  ParameterServer server(ServerOptions{});
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor::Full(1, 1, 1.f));
  server.Initialize(state);
  server.BeginSspEpoch(2, 3);
  ASSERT_TRUE(server.PullSsp(0).ok());                // skew 0
  ASSERT_TRUE(server.PushSsp(0, UnitGrads()).ok());
  ASSERT_TRUE(server.PullSsp(0).ok());                // skew 1
  ASSERT_TRUE(server.PushSsp(0, UnitGrads()).ok());
  ASSERT_TRUE(server.PullSsp(0).ok());                // skew 2
  auto stats = server.stats();
  ASSERT_EQ(static_cast<int>(stats.staleness_hist.size()),
            kStalenessBuckets);
  EXPECT_EQ(stats.staleness_hist[0], 1);
  EXPECT_EQ(stats.staleness_hist[1], 1);
  EXPECT_EQ(stats.staleness_hist[2], 1);
  EXPECT_EQ(stats.ssp_pulls, 3);
  EXPECT_EQ(stats.max_staleness, 2);
  server.EndSspEpoch();
}

}  // namespace
}  // namespace agl::ps
