// Tests for the sharded parameter server: pull/push semantics, server-side
// Adam equivalence with local training, and concurrent-worker safety.

#include <gtest/gtest.h>

#include <thread>

#include "ps/parameter_server.h"

namespace agl::ps {
namespace {

using tensor::Tensor;

std::map<std::string, Tensor> TinyState() {
  std::map<std::string, Tensor> state;
  state.emplace("layer0.weight", Tensor::Full(2, 3, 1.f));
  state.emplace("layer0.bias", Tensor::Full(1, 3, 0.f));
  state.emplace("layer1.weight", Tensor::Full(3, 2, -1.f));
  return state;
}

TEST(ParameterServerTest, InitializeAndPull) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  EXPECT_EQ(server.NumParameters(), 3);
  auto pulled = server.PullAll();
  ASSERT_EQ(pulled.size(), 3u);
  EXPECT_TRUE(pulled.at("layer0.weight").AllClose(Tensor::Full(2, 3, 1.f)));
}

TEST(ParameterServerTest, PushAppliesAdamUpdate) {
  ServerOptions opts;
  opts.adam.lr = 0.1f;
  ParameterServer server(opts);
  server.Initialize(TinyState());
  std::map<std::string, Tensor> grads;
  grads.emplace("layer0.bias", Tensor::Full(1, 3, 1.f));
  ASSERT_TRUE(server.PushGradients(grads).ok());
  auto pulled = server.PullAll();
  // Adam's first step moves by ~lr against the gradient sign.
  EXPECT_NEAR(pulled.at("layer0.bias").at(0, 0), -0.1f, 1e-4f);
  // Untouched parameters stay put.
  EXPECT_TRUE(pulled.at("layer0.weight").AllClose(Tensor::Full(2, 3, 1.f)));
}

TEST(ParameterServerTest, PushUnknownKeyFails) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  std::map<std::string, Tensor> grads;
  grads.emplace("bogus", Tensor(1, 1));
  EXPECT_EQ(server.PushGradients(grads).code(), StatusCode::kNotFound);
}

TEST(ParameterServerTest, PushShapeMismatchFails) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  std::map<std::string, Tensor> grads;
  grads.emplace("layer0.bias", Tensor(2, 3));
  EXPECT_EQ(server.PushGradients(grads).code(),
            StatusCode::kInvalidArgument);
}

TEST(ParameterServerTest, MatchesLocalAdamTrajectory) {
  // Sequential pushes through the PS must equal a local Adam loop.
  ServerOptions opts;
  opts.adam.lr = 0.05f;
  opts.num_shards = 3;
  ParameterServer server(opts);
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor::Full(1, 1, 4.f));
  server.Initialize(state);

  Tensor local = Tensor::Full(1, 1, 4.f);
  nn::AdamState local_state;
  Rng rng(11);
  for (int step = 0; step < 25; ++step) {
    Tensor grad(1, 1);
    grad.at(0, 0) = static_cast<float>(rng.Normal(0, 1));
    std::map<std::string, Tensor> grads;
    grads.emplace("w", grad);
    ASSERT_TRUE(server.PushGradients(grads).ok());
    nn::AdamApply(opts.adam, grad, &local, &local_state);
  }
  EXPECT_TRUE(server.PullAll().at("w").AllClose(local, 1e-6f));
}

TEST(ParameterServerTest, ShardingSpreadsKeys) {
  ServerOptions opts;
  opts.num_shards = 4;
  ParameterServer server(opts);
  std::map<std::string, Tensor> state;
  for (int i = 0; i < 64; ++i) {
    state.emplace("param_" + std::to_string(i), Tensor(1, 1));
  }
  server.Initialize(state);
  EXPECT_EQ(server.NumParameters(), 64);
  auto pulled = server.PullAll();
  EXPECT_EQ(pulled.size(), 64u);
}

TEST(ParameterServerTest, ConcurrentPushersStayConsistent) {
  // N threads pushing constant gradients: the value must equal the result
  // of N*K sequential Adam steps with that gradient (Adam on a constant
  // gradient is order-independent).
  ServerOptions opts;
  opts.adam.lr = 0.01f;
  ParameterServer server(opts);
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor::Full(1, 1, 1.f));
  server.Initialize(state);

  constexpr int kThreads = 8, kPushes = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server] {
      for (int i = 0; i < kPushes; ++i) {
        std::map<std::string, Tensor> grads;
        grads.emplace("w", Tensor::Full(1, 1, 1.f));
        AGL_CHECK_OK(server.PushGradients(grads));
      }
    });
  }
  for (auto& th : threads) th.join();

  Tensor local = Tensor::Full(1, 1, 1.f);
  nn::AdamState local_state;
  for (int i = 0; i < kThreads * kPushes; ++i) {
    nn::AdamApply(opts.adam, Tensor::Full(1, 1, 1.f), &local, &local_state);
  }
  EXPECT_TRUE(server.PullAll().at("w").AllClose(local, 1e-4f));
  EXPECT_EQ(server.stats().pushes, kThreads * kPushes);
}

TEST(ParameterServerTest, StatsAccounting) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  server.PullAll();
  auto stats = server.stats();
  EXPECT_EQ(stats.pulls, 3);
  EXPECT_EQ(stats.bytes_pulled,
            static_cast<int64_t>((6 + 3 + 6) * sizeof(float)));
}

TEST(ParameterServerTest, ReinitializeResets) {
  ParameterServer server(ServerOptions{});
  server.Initialize(TinyState());
  std::map<std::string, Tensor> smaller;
  smaller.emplace("only", Tensor(1, 1));
  server.Initialize(smaller);
  EXPECT_EQ(server.NumParameters(), 1);
}

}  // namespace
}  // namespace agl::ps
