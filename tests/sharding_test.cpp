// Sharded GraphFlat property suite: the pipeline's output must be
// invariant to the shard count. For every (seed, hops, S) the sharded run
// must produce byte-identical GraphFeatures — and identical feature stats
// — to the single-shard run, including when hub re-indexing and sampling
// are active and when task faults are injected into the per-shard jobs and
// the merge stage.
//
// The heavier seed sweep runs under the `sharding` CTest label
// (`ctest -L sharding`) with AGL_SHARDING_HEAVY=1 set by its CTest entry;
// see tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "flat/graphflat.h"
#include "flat/shard.h"
#include "flat/state.h"
#include "mr/local_dfs.h"
#include "testing/graph_gen.h"
#include "trainer/feature_source.h"

namespace agl::flat {
namespace {

using subgraph::GraphFeature;
using testing::GeneratedGraph;
using testing::GraphGenOptions;
using testing::MakeGraph;

GraphGenOptions HubbyGraph(uint64_t seed) {
  GraphGenOptions opts;
  opts.topology = GraphGenOptions::Topology::kPowerLaw;
  opts.num_nodes = 60;
  opts.attach_edges = 3;
  opts.node_feature_dim = 4;
  opts.edge_feature_dim = 2;  // exercise the edge-feature matrix path
  opts.seed = seed;
  return opts;
}

/// Base config: small task counts so several tasks exist per shard, a hub
/// threshold low enough that power-law hubs trigger re-indexing every
/// round, and uniform sampling so the sampler's Rng draws are exercised.
GraphFlatConfig ShardedConfig(int hops, int num_shards) {
  GraphFlatConfig config;
  config.hops = hops;
  config.num_shards = num_shards;
  config.sampler = {sampling::Strategy::kUniform, 6};
  config.hub_threshold = 5;
  config.reindex_fanout = 3;
  config.job.num_workers = 4;
  config.job.num_map_tasks = 3;
  config.job.num_reduce_tasks = 5;
  return config;
}

std::vector<std::string> FeatureBytes(const std::vector<GraphFeature>& fs) {
  std::vector<std::string> bytes;
  bytes.reserve(fs.size());
  for (const GraphFeature& gf : fs) bytes.push_back(gf.Serialize());
  return bytes;  // RunGraphFlatInMemory sorts by target id
}

void ExpectFeatureStatsEqual(const GraphFlatStats& sharded,
                             const GraphFlatStats& single,
                             const std::string& context) {
  EXPECT_EQ(sharded.num_features, single.num_features) << context;
  EXPECT_EQ(sharded.total_nodes, single.total_nodes) << context;
  EXPECT_EQ(sharded.total_edges, single.total_edges) << context;
  EXPECT_EQ(sharded.max_nodes, single.max_nodes) << context;
}

TEST(ShardPlanTest, HomeShardIsDeterministicAndInRange) {
  ShardPlan plan(4);
  std::vector<int> counts(4, 0);
  for (NodeId id = 0; id < 200; ++id) {
    const int s = plan.HomeShardOf(id);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(s, plan.HomeShard(std::to_string(id)));
    EXPECT_EQ(s, plan.HomeShardOf(id));  // stable across calls
    counts[s]++;
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(counts[s], 0) << "shard " << s << " received no keys";
  }
  EXPECT_EQ(ShardPlan(1).HomeShard("12345"), 0);
}

TEST(ShardRouterTest, EdgesLandOnBothEndpointShards) {
  ShardPlan plan(3);
  ShardRouter router(plan);
  GeneratedGraph g = MakeGraph(HubbyGraph(7));
  ShardedTables tables = router.PartitionTables(g.nodes, g.edges);

  std::size_t total_nodes = 0;
  for (int s = 0; s < 3; ++s) {
    for (const NodeRecord& n : tables.nodes[s]) {
      EXPECT_EQ(plan.HomeShardOf(n.id), s);
    }
    total_nodes += tables.nodes[s].size();
  }
  EXPECT_EQ(total_nodes, g.nodes.size());

  std::size_t expected_edge_rows = 0;
  for (const EdgeRecord& e : g.edges) {
    expected_edge_rows +=
        plan.HomeShardOf(e.src) == plan.HomeShardOf(e.dst) ? 1 : 2;
  }
  std::size_t total_edges = 0;
  for (int s = 0; s < 3; ++s) {
    for (const EdgeRecord& e : tables.edges[s]) {
      EXPECT_TRUE(plan.HomeShardOf(e.src) == s || plan.HomeShardOf(e.dst) == s);
    }
    total_edges += tables.edges[s].size();
  }
  EXPECT_EQ(total_edges, expected_edge_rows);
}

TEST(ShardRouterTest, ExchangeRoutesEveryRecordHome) {
  ShardPlan plan(4);
  ShardRouter router(plan);
  std::vector<std::vector<mr::KeyValue>> scattered(4);
  for (int i = 0; i < 100; ++i) {
    std::string value("v");
    value += std::to_string(i);
    scattered[i % 4].push_back({std::to_string(i), std::move(value)});
  }
  auto routed = router.Exchange(std::move(scattered));
  ASSERT_EQ(routed.size(), 4u);
  std::size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    for (const mr::KeyValue& kv : routed[s]) {
      EXPECT_EQ(plan.HomeShard(kv.key), s);
    }
    total += routed[s].size();
  }
  EXPECT_EQ(total, 100u);
}

// The merge stage's reconcile contract, exercised directly: states for a
// node arriving from several shards (as looser, at-least-once routing can
// produce) are set-unioned before the Storing step.
TEST(ShardMergeTest, OverlappingStatesAreSetUnioned) {
  SubgraphState a(1), b(1);
  a.AddNode({1, {1.f}, 0, {}});
  a.AddNode({2, {2.f}, -1, {}});
  a.AddEdge({2, 1, 1.f, {}});
  b.AddNode({1, {1.f}, 0, {}});
  b.AddNode({3, {3.f}, -1, {}});
  b.AddEdge({3, 1, 1.f, {}});
  b.AddEdge({2, 1, 1.f, {}});  // overlap with `a`
  const auto state_record = [](const SubgraphState& s) {
    std::string value("S");
    value += s.Serialize();
    return value;
  };
  std::vector<mr::KeyValue> records = {{"1", state_record(a)},
                                       {"1", state_record(b)},
                                       {"1", state_record(a)}};  // dup

  GraphFlatConfig config;
  auto merged = MergeShardStates(config, /*node_feature_dim=*/1,
                                 /*edge_feature_dim=*/0, records);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged->size(), 1u);
  ASSERT_EQ((*merged)[0].value[0], 'F');
  auto gf = GraphFeature::Parse((*merged)[0].value.substr(1));
  ASSERT_TRUE(gf.ok());

  SubgraphState expected = a;
  expected.Merge(b);
  auto expected_gf = expected.ToGraphFeature(1, 0);
  ASSERT_TRUE(expected_gf.ok());
  EXPECT_EQ(gf->Serialize(), expected_gf->Serialize());
  EXPECT_EQ(gf->num_nodes(), 3);
  EXPECT_EQ(gf->num_edges(), 2);

  // Non-state records in the merge stage surface as corruption.
  records.push_back({"1", "Xjunk"});
  EXPECT_FALSE(MergeShardStates(config, 1, 0, records).ok());
}

// The tentpole property: sharded output is byte-identical to single-shard
// for seeds x hops{1,2,3} x S{1,2,4,7}, with hub re-indexing active.
TEST(ShardInvarianceTest, ByteIdenticalAcrossShardCounts) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    GeneratedGraph g = MakeGraph(HubbyGraph(seed));
    ASSERT_GT(g.max_in_degree, 5)  // hub threshold actually fires
        << "seed " << seed;
    for (int hops : {1, 2, 3}) {
      GraphFlatStats single_stats;
      auto single = RunGraphFlatInMemory(ShardedConfig(hops, 1), g.nodes,
                                         g.edges, &single_stats);
      ASSERT_TRUE(single.ok()) << single.status().ToString();
      ASSERT_FALSE(single->empty());
      const std::vector<std::string> reference = FeatureBytes(*single);
      for (int num_shards : {2, 4, 7}) {
        const std::string context = "seed " + std::to_string(seed) +
                                    " hops " + std::to_string(hops) +
                                    " shards " + std::to_string(num_shards);
        GraphFlatStats stats;
        auto sharded = RunGraphFlatInMemory(ShardedConfig(hops, num_shards),
                                            g.nodes, g.edges, &stats);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
        const std::vector<std::string> bytes = FeatureBytes(*sharded);
        ASSERT_EQ(bytes.size(), reference.size()) << context;
        for (std::size_t i = 0; i < bytes.size(); ++i) {
          ASSERT_EQ(bytes[i], reference[i])
              << context << ", target " << (*sharded)[i].target_id;
        }
        ExpectFeatureStatsEqual(stats, single_stats, context);
      }
    }
  }
}

// Same property on a homogeneous (Erdős–Rényi) graph without sampling:
// full neighborhoods, no re-indexing.
TEST(ShardInvarianceTest, ByteIdenticalOnErdosRenyiWithoutSampling) {
  GraphGenOptions opts;
  opts.topology = GraphGenOptions::Topology::kErdosRenyi;
  opts.num_nodes = 50;
  opts.edge_prob = 0.05;
  opts.node_feature_dim = 3;
  opts.seed = 99;
  GeneratedGraph g = MakeGraph(opts);
  GraphFlatConfig config;
  config.hops = 2;
  config.hub_threshold = 0;  // re-indexing off
  config.job.num_reduce_tasks = 5;
  auto single = RunGraphFlatInMemory(config, g.nodes, g.edges);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  config.num_shards = 4;
  auto sharded = RunGraphFlatInMemory(config, g.nodes, g.edges);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_TRUE(FeatureBytes(*sharded) == FeatureBytes(*single));
}

// GraphFlatStats must aggregate across shards without double-counting
// boundary nodes, and job stats must cover every per-shard job.
TEST(ShardInvarianceTest, StatsAggregateAcrossShards) {
  GeneratedGraph g = MakeGraph(HubbyGraph(44));
  GraphFlatConfig config = ShardedConfig(2, 4);
  GraphFlatStats sharded_stats;
  auto sharded =
      RunGraphFlatInMemory(config, g.nodes, g.edges, &sharded_stats);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  config.num_shards = 1;
  GraphFlatStats single_stats;
  auto single = RunGraphFlatInMemory(config, g.nodes, g.edges, &single_stats);
  ASSERT_TRUE(single.ok());

  // A boundary node reached from several shards must still count once.
  ExpectFeatureStatsEqual(sharded_stats, single_stats, "stats");
  EXPECT_EQ(sharded_stats.num_features,
            static_cast<int64_t>(sharded->size()));

  // Job stats accumulate over all 4 shards: the map phase alone runs
  // num_map_tasks tasks per shard.
  EXPECT_EQ(sharded_stats.job_stats.map_tasks,
            4 * static_cast<int64_t>(config.job.num_map_tasks));
  EXPECT_GT(sharded_stats.job_stats.reduce_tasks,
            single_stats.job_stats.reduce_tasks);
}

// Deterministic task failures during the per-shard jobs AND the merge
// stage must still yield the single-shard-equivalent output.
TEST(ShardInvarianceTest, FaultInjectionPreservesEquivalence) {
  GeneratedGraph g = MakeGraph(HubbyGraph(55));
  auto clean = RunGraphFlatInMemory(ShardedConfig(2, 1), g.nodes, g.edges);
  ASSERT_TRUE(clean.ok());

  GraphFlatConfig faulty = ShardedConfig(2, 4);
  fail::ScopedFailpoint map_fault("mr.map", fail::ErrorConfig(0.25));
  fail::ScopedFailpoint reduce_fault("mr.reduce", fail::ErrorConfig(0.25));
  faulty.job.max_task_attempts = 20;
  GraphFlatStats stats;
  auto sharded = RunGraphFlatInMemory(faulty, g.nodes, g.edges, &stats);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_GT(stats.job_stats.failed_attempts, 0);  // faults actually fired
  EXPECT_TRUE(FeatureBytes(*sharded) == FeatureBytes(*clean));
}

// DFS store path: per-shard part files are unified under one dataset with
// stable part numbering, the staging family is cleaned up, and readers see
// content identical to a single-shard dataset.
TEST(ShardInvarianceTest, DfsStoreUnifiesShardParts) {
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("agl_shard_dfs_" + std::to_string(::getpid())))
          .string();
  auto dfs = mr::LocalDfs::Open(root);
  ASSERT_TRUE(dfs.ok());
  GeneratedGraph g = MakeGraph(HubbyGraph(66));

  GraphFlatConfig config = ShardedConfig(2, 3);
  config.output_parts = 2;
  auto sharded_stats =
      RunGraphFlat(config, g.nodes, g.edges, &*dfs, "sharded");
  ASSERT_TRUE(sharded_stats.ok()) << sharded_stats.status().ToString();
  config.num_shards = 1;
  auto single_stats = RunGraphFlat(config, g.nodes, g.edges, &*dfs, "single");
  ASSERT_TRUE(single_stats.ok());
  ExpectFeatureStatsEqual(*sharded_stats, *single_stats, "dfs stats");

  // Stable numbering: 3 shards x 2 parts each, no staging datasets left.
  auto parts = dfs->ListParts("sharded");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 6u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_FALSE(dfs->DatasetExists(mr::ShardDatasetName("sharded", s)));
  }

  auto ReadSorted = [&](const std::string& dataset) {
    auto src = trainer::DfsFeatureSource::Open(*dfs, dataset);
    AGL_CHECK(src.ok());
    auto features = src->ReadAll();
    AGL_CHECK(features.ok());
    std::sort(features->begin(), features->end(),
              [](const GraphFeature& a, const GraphFeature& b) {
                return a.target_id < b.target_id;
              });
    return FeatureBytes(*features);
  };
  EXPECT_TRUE(ReadSorted("sharded") == ReadSorted("single"));
  std::filesystem::remove_all(root);
}

// Heavier seed sweep, scoped behind `ctest -L sharding` (the CTest entry
// sets AGL_SHARDING_HEAVY=1; a direct run of the binary skips it).
TEST(ShardSweepTest, SeedSweepAcrossShardCounts) {
  if (std::getenv("AGL_SHARDING_HEAVY") == nullptr) {
    GTEST_SKIP() << "set AGL_SHARDING_HEAVY=1 (or run `ctest -L sharding`)";
  }
  for (uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
    GraphGenOptions opts = HubbyGraph(seed);
    opts.num_nodes = 120;
    opts.attach_edges = 4;
    GeneratedGraph g = MakeGraph(opts);
    for (int hops : {1, 2, 3}) {
      auto single = RunGraphFlatInMemory(ShardedConfig(hops, 1), g.nodes,
                                         g.edges);
      ASSERT_TRUE(single.ok()) << single.status().ToString();
      const std::vector<std::string> reference = FeatureBytes(*single);
      for (int num_shards : {2, 3, 4, 5, 7}) {
        auto sharded = RunGraphFlatInMemory(
            ShardedConfig(hops, num_shards), g.nodes, g.edges);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
        EXPECT_TRUE(FeatureBytes(*sharded) == reference)
            << "seed " << seed << " hops " << hops << " shards "
            << num_shards;
      }
    }
  }
}

}  // namespace
}  // namespace agl::flat
