// Tests for the dense tensor, CSR sparse matrix, SpMM aggregation and the
// edge-partitioning strategy. The key property: partitioned aggregation is
// bit-for-bit identical to the serial loop, because each destination row is
// owned by exactly one thread.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/edge_partition.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace agl::tensor {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.f);
}

TEST(TensorTest, FullEyeAndFill) {
  Tensor f = Tensor::Full(2, 2, 3.f);
  EXPECT_EQ(f.Sum(), 12.0);
  Tensor e = Tensor::Eye(3);
  EXPECT_EQ(e.Sum(), 3.0);
  EXPECT_EQ(e.at(1, 1), 1.f);
  EXPECT_EQ(e.at(0, 1), 0.f);
  f.Fill(-1.f);
  EXPECT_EQ(f.Sum(), -4.0);
}

TEST(TensorTest, AddAxpyScale) {
  Tensor a = Tensor::Full(2, 2, 1.f);
  Tensor b = Tensor::Full(2, 2, 2.f);
  a.Add(b);
  EXPECT_EQ(a.at(0, 0), 3.f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a.at(1, 1), 4.f);
  a.Scale(0.25f);
  EXPECT_EQ(a.at(0, 1), 1.f);
}

TEST(TensorTest, RowOperations) {
  Tensor t(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Row(1);
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r.at(0, 0), 3.f);
  Tensor s = t.RowSlice(1, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.at(1, 1), 6.f);
  Tensor g = t.GatherRows({2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.at(0, 0), 5.f);
  EXPECT_EQ(g.at(1, 1), 2.f);
  EXPECT_EQ(g.at(2, 0), 5.f);
}

TEST(TensorTest, MatMulKnownValues) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.f);
  EXPECT_EQ(c.at(0, 1), 64.f);
  EXPECT_EQ(c.at(1, 0), 139.f);
  EXPECT_EQ(c.at(1, 1), 154.f);
}

TEST(TensorTest, MatMulTransVariantsAgree) {
  Rng rng(11);
  Tensor a = Tensor::RandomNormal(5, 7, 0, 1, &rng);
  Tensor b = Tensor::RandomNormal(5, 3, 0, 1, &rng);
  // a^T @ b computed two ways.
  Tensor direct = MatMulTransA(a, b);
  Tensor via_transpose = MatMul(Transpose(a), b);
  EXPECT_TRUE(direct.AllClose(via_transpose, 1e-5f));

  Tensor c = Tensor::RandomNormal(4, 7, 0, 1, &rng);
  Tensor direct2 = MatMulTransB(a, c);  // a @ c^T : [5x7]@[7x4]
  Tensor via2 = MatMul(a, Transpose(c));
  EXPECT_TRUE(direct2.AllClose(via2, 1e-5f));
}

TEST(TensorTest, LargeMatMulParallelPathMatchesSerial) {
  Rng rng(12);
  // Big enough to take the ParallelFor path.
  Tensor a = Tensor::RandomNormal(64, 64, 0, 1, &rng);
  Tensor b = Tensor::RandomNormal(64, 64, 0, 1, &rng);
  Tensor big = MatMul(a, b);
  // Serial reference.
  Tensor ref(64, 64);
  for (int64_t i = 0; i < 64; ++i) {
    for (int64_t p = 0; p < 64; ++p) {
      for (int64_t j = 0; j < 64; ++j) {
        ref.at(i, j) += a.at(i, p) * b.at(p, j);
      }
    }
  }
  EXPECT_TRUE(big.AllClose(ref, 1e-4f));
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  Rng rng(13);
  Tensor a = Tensor::RandomNormal(10, 6, 0, 3, &rng);
  Tensor s = RowSoftmax(a);
  for (int64_t i = 0; i < s.rows(); ++i) {
    float sum = 0;
    for (int64_t j = 0; j < s.cols(); ++j) {
      EXPECT_GT(s.at(i, j), 0.f);
      sum += s.at(i, j);
    }
    EXPECT_NEAR(sum, 1.f, 1e-5f);
  }
}

TEST(TensorTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(14);
  Tensor a = Tensor::RandomNormal(5, 4, 0, 2, &rng);
  Tensor ls = RowLogSoftmax(a);
  Tensor s = RowSoftmax(a);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-5f);
  }
}

TEST(TensorTest, SoftmaxNumericallyStableForLargeInputs) {
  Tensor a(1, 3, {1000.f, 1000.f, 1000.f});
  Tensor s = RowSoftmax(a);
  for (int64_t j = 0; j < 3; ++j) EXPECT_NEAR(s.at(0, j), 1.f / 3.f, 1e-5f);
}

TEST(TensorTest, GlorotWithinLimit) {
  Rng rng(15);
  Tensor t = Tensor::GlorotUniform(30, 50, &rng);
  const float limit = std::sqrt(6.f / 80.f);
  EXPECT_LE(t.AbsMax(), limit + 1e-6f);
  EXPECT_GT(t.AbsMax(), 0.f);
}

// --- SparseMatrix ---

SparseMatrix SmallGraph() {
  // 4 nodes; edges (dst <- src): 0<-1, 0<-2, 1<-2, 2<-3, 3<-0
  return SparseMatrix::FromCoo(4, 4,
                               {{0, 1, 1.f},
                                {0, 2, 2.f},
                                {1, 2, 3.f},
                                {2, 3, 4.f},
                                {3, 0, 5.f}});
}

TEST(SparseTest, FromCooBuildsSortedCsr) {
  SparseMatrix m = SmallGraph();
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.nnz(), 5);
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.col_idx()[0], 1);
  EXPECT_EQ(m.col_idx()[1], 2);
  EXPECT_EQ(m.values()[1], 2.f);
}

TEST(SparseTest, DuplicateEntriesCoalesce) {
  SparseMatrix m = SparseMatrix::FromCoo(
      2, 2, {{0, 1, 1.f}, {0, 1, 2.f}, {1, 0, 3.f}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.values()[0], 3.f);  // 1 + 2
}

TEST(SparseTest, TransposedSwapsDirection) {
  SparseMatrix m = SmallGraph();
  SparseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.nnz(), 5);
  // edge 3<-0 becomes 0<-3 in the transpose: row 0 has col 3.
  bool found = false;
  for (int64_t p = t.row_ptr()[0]; p < t.row_ptr()[1]; ++p) {
    if (t.col_idx()[p] == 3) {
      found = true;
      EXPECT_EQ(t.values()[p], 5.f);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(t.Transposed() == m);
}

TEST(SparseTest, TransposedRandomRoundTripAndSorted) {
  // The counting-sort transpose must produce column-sorted rows and be an
  // exact involution, including empty rows/columns and rectangular shapes.
  Rng rng(21);
  std::vector<CooEntry> entries;
  const int64_t rows = 57, cols = 91;
  for (int i = 0; i < 400; ++i) {
    entries.push_back({rng.UniformInt(0, rows - 1),
                       rng.UniformInt(0, cols - 1),
                       static_cast<float>(rng.Uniform(-2, 2))});
  }
  SparseMatrix m = SparseMatrix::FromCoo(rows, cols, entries);
  SparseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), cols);
  EXPECT_EQ(t.cols(), rows);
  EXPECT_EQ(t.nnz(), m.nnz());
  for (int64_t r = 0; r < t.rows(); ++r) {
    for (int64_t p = t.row_ptr()[r] + 1; p < t.row_ptr()[r + 1]; ++p) {
      EXPECT_LT(t.col_idx()[p - 1], t.col_idx()[p]) << "row " << r;
    }
  }
  EXPECT_TRUE(t.Transposed() == m);
}

TEST(SparseTest, RowNormalizedRowsSumToOne) {
  SparseMatrix m = SmallGraph().RowNormalized();
  for (int64_t r = 0; r < m.rows(); ++r) {
    if (m.RowNnz(r) == 0) continue;
    float sum = 0;
    for (int64_t p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p) {
      sum += m.values()[p];
    }
    EXPECT_NEAR(sum, 1.f, 1e-6f);
  }
}

TEST(SparseTest, WithSelfLoopsAddsMissingOnly) {
  SparseMatrix m = SparseMatrix::FromCoo(3, 3, {{0, 0, 2.f}, {1, 0, 1.f}});
  SparseMatrix s = m.WithSelfLoops();
  EXPECT_EQ(s.nnz(), 4);  // (0,0) kept with original weight, (1,1),(2,2) new
  EXPECT_EQ(s.values()[0], 2.f);
}

TEST(SparseTest, GcnNormalizedSymmetricCase) {
  // Undirected single edge 0<->1 with self loops: classic GCN norm gives
  // 1/sqrt(2*2) = 0.5 for the cross terms.
  SparseMatrix m =
      SparseMatrix::FromCoo(2, 2, {{0, 1, 1.f}, {1, 0, 1.f}})
          .WithSelfLoops()
          .GcnNormalized();
  for (int64_t p = 0; p < m.nnz(); ++p) {
    EXPECT_NEAR(m.values()[p], 0.5f, 1e-6f);
  }
}

TEST(SpmmTest, MatchesDenseReference) {
  Rng rng(16);
  SparseMatrix a = SmallGraph();
  Tensor h = Tensor::RandomNormal(4, 6, 0, 1, &rng);
  Tensor out = Spmm(a, h);
  // Dense reference.
  Tensor dense(4, 4);
  dense.at(0, 1) = 1.f;
  dense.at(0, 2) = 2.f;
  dense.at(1, 2) = 3.f;
  dense.at(2, 3) = 4.f;
  dense.at(3, 0) = 5.f;
  Tensor ref = MatMul(dense, h);
  EXPECT_TRUE(out.AllClose(ref, 1e-5f));
}

TEST(SpmmTest, PartitionedIdenticalToSerial) {
  Rng rng(17);
  // Random sparse matrix with skewed rows.
  std::vector<CooEntry> entries;
  const int64_t n = 200;
  for (int64_t r = 0; r < n; ++r) {
    const int64_t deg = r == 0 ? 150 : rng.UniformInt(0, 6);
    for (int64_t d = 0; d < deg; ++d) {
      entries.push_back({r, rng.UniformInt(0, n - 1),
                         static_cast<float>(rng.Uniform(0.1, 2.0))});
    }
  }
  SparseMatrix a = SparseMatrix::FromCoo(n, n, entries);
  Tensor h = Tensor::RandomNormal(n, 16, 0, 1, &rng);
  Tensor serial = Spmm(a, h, {1});
  for (int threads : {2, 4, 8}) {
    Tensor parallel = Spmm(a, h, {threads});
    // Bit-identical: same row is always summed by a single thread in the
    // same order.
    EXPECT_TRUE(parallel.AllClose(serial, 0.f)) << threads << " threads";
  }
}

TEST(EdgePartitionTest, CoversAllRowsOnce) {
  std::vector<int64_t> row_ptr = {0, 5, 5, 9, 20, 21, 30};
  auto spans = PartitionRowsByNnz(row_ptr, 6, 3);
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().row_begin, 0);
  EXPECT_EQ(spans.back().row_end, 6);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].row_begin, spans[i - 1].row_end);
  }
  EXPECT_LE(spans.size(), 3u);
}

TEST(EdgePartitionTest, SinglePartIsWholeRange) {
  std::vector<int64_t> row_ptr = {0, 1, 2, 3};
  auto spans = PartitionRowsByNnz(row_ptr, 3, 1);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].row_begin, 0);
  EXPECT_EQ(spans[0].row_end, 3);
}

TEST(EdgePartitionTest, EmptyMatrix) {
  std::vector<int64_t> row_ptr = {0};
  EXPECT_TRUE(PartitionRowsByNnz(row_ptr, 0, 4).empty());
}

TEST(EdgePartitionTest, HubRowsAtTailDoNotOverloadLastSpan) {
  // 99 light rows (1 nnz each) followed by one hub row with 1000 nnz. The
  // per-span target must adapt as rows are consumed: the hub ends up in
  // its own span instead of being swallowed by the first span (which is
  // what a fixed global target produces when hubs cluster near the end).
  std::vector<int64_t> row_ptr(101);
  for (int i = 0; i <= 99; ++i) row_ptr[i] = i;
  row_ptr[100] = 99 + 1000;
  auto spans = PartitionRowsByNnz(row_ptr, 100, 4);
  ASSERT_GE(spans.size(), 2u);
  EXPECT_EQ(spans.back().row_begin, 99);
  EXPECT_EQ(spans.back().row_end, 100);
  for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
    const int64_t span_nnz =
        row_ptr[spans[i].row_end] - row_ptr[spans[i].row_begin];
    EXPECT_LE(span_nnz, 99) << "span " << i;
  }
}

TEST(EdgePartitionTest, ClusteredTailHubsStayBalanced) {
  // 196 light rows then 4 hub rows of 250 nnz each, 4 parts: no span may
  // end up with more than two hubs' worth of work (the old greedy cut put
  // all four hubs plus the remainder in the final span).
  std::vector<int64_t> row_ptr(201);
  for (int i = 0; i <= 196; ++i) row_ptr[i] = i;
  for (int i = 197; i <= 200; ++i) row_ptr[i] = row_ptr[i - 1] + 250;
  auto spans = PartitionRowsByNnz(row_ptr, 200, 4);
  ASSERT_GE(spans.size(), 3u);
  EXPECT_EQ(spans.back().row_end, 200);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const int64_t span_nnz =
        row_ptr[spans[i].row_end] - row_ptr[spans[i].row_begin];
    EXPECT_LE(span_nnz, 500) << "span " << i;
  }
}

TEST(EdgePartitionTest, BalancesSkewedNnz) {
  // One hub row with 1000 nnz, 99 rows with 1 nnz.
  std::vector<int64_t> row_ptr(101);
  row_ptr[0] = 0;
  row_ptr[1] = 1000;
  for (int i = 2; i <= 100; ++i) row_ptr[i] = row_ptr[i - 1] + 1;
  auto spans = PartitionRowsByNnz(row_ptr, 100, 4);
  // The hub row must sit alone-ish in its span; the light rows share.
  EXPECT_GE(spans.size(), 2u);
  EXPECT_EQ(spans.front().row_begin, 0);
}

// Parameterized sweep: Spmm equivalence across shapes and thread counts.
class SpmmSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SpmmSweepTest, ParallelMatchesSerial) {
  const auto [n, f, threads] = GetParam();
  Rng rng(100 + n * 7 + f * 3 + threads);
  std::vector<CooEntry> entries;
  for (int64_t r = 0; r < n; ++r) {
    const int64_t deg = rng.UniformInt(0, 5);
    for (int64_t d = 0; d < deg; ++d) {
      entries.push_back({r, rng.UniformInt(0, n - 1),
                         static_cast<float>(rng.Uniform(-1, 1))});
    }
  }
  SparseMatrix a = SparseMatrix::FromCoo(n, n, entries);
  Tensor h = Tensor::RandomNormal(n, f, 0, 1, &rng);
  EXPECT_TRUE(Spmm(a, h, {threads}).AllClose(Spmm(a, h, {1}), 0.f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmmSweepTest,
    ::testing::Combine(::testing::Values(1, 17, 64, 301),
                       ::testing::Values(1, 8, 33),
                       ::testing::Values(2, 4, 7)));

}  // namespace
}  // namespace agl::tensor
