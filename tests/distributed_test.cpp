// Multi-process runtime suite: the driver's process-promoted jobs must be
// byte-identical to their in-process twins, and its classified-retry
// supervision must recover bit-exactly from worker SIGKILLs.
//
//   * GraphFlat / analytics across S in {1, 2, 4, 7} shard processes
//     produce the same DFS dataset bytes / SerializeValues as the
//     threaded runs;
//   * TrainProcesses reproduces GraphTrainer::Train bit-for-bit for kBsp
//     and kSsp at bound 0 (the wire PS runs both as SSP);
//   * a worker killed by SIGKILL mid-epoch (an injected crash failpoint
//     armed only in first attempts becomes a real `raise(SIGKILL)`) is
//     relaunched and the job's final output is unchanged;
//   * a worker-reported non-retryable error fails the job without a
//     relaunch;
//   * LocalDfs honors its concurrency contract: peer processes publishing
//     different datasets under concurrent Opens (each of which sweeps
//     stale scratch) never corrupt one another.
//
// This binary spawns copies of ITSELF as the driver's workers, so main()
// is custom: RunWorkerIfSpawned must run before gtest sees argv.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analytics/programs.h"
#include "analytics/vertex_program.h"
#include "common/subprocess.h"
#include "data/dataset.h"
#include "driver/driver.h"
#include "flat/graphflat.h"
#include "mr/local_dfs.h"
#include "nn/state_io.h"
#include "testing/graph_gen.h"
#include "trainer/trainer.h"

namespace agl::driver {

/// Re-exec'd writer mode (see main below): peer processes publishing
/// DIFFERENT datasets while the parent keeps re-Opening the root. Open's
/// stale-scratch sweep must skip the live peers' in-flight publishes, so
/// every dataset lands complete and checksummed.
constexpr const char* kDfsWriterArgv1 = "__dfs_writer";

std::vector<std::string> WriterPayload(int id) {
  std::vector<std::string> records;
  records.reserve(300);
  for (int r = 0; r < 300; ++r) {
    records.push_back("writer-" + std::to_string(id) + "-record-" +
                      std::to_string(r) + "-" + std::string(64, 'a' + id % 26));
  }
  return records;
}

int RunDfsWriter(const std::string& root, int id) {
  auto dfs = mr::LocalDfs::Open(root);
  if (!dfs.ok()) return 1;
  const std::vector<std::string> records = WriterPayload(id);
  for (int round = 0; round < 8; ++round) {
    if (!dfs->WriteDataset("peer" + std::to_string(id), records, 4).ok()) {
      return 1;
    }
  }
  return 0;
}

namespace {

using testing::GeneratedGraph;
using testing::GraphGenOptions;
using testing::MakeGraph;

bool Heavy() { return std::getenv("AGL_DISTRIBUTED_HEAVY") != nullptr; }

/// The quick matrix exercises 1 (degenerate), a divisor-free count, and a
/// power of two; the heavy sweep adds the ISSUE's full set.
std::vector<int> ShardCounts() {
  return Heavy() ? std::vector<int>{1, 2, 4, 7} : std::vector<int>{1, 4, 7};
}

class DistributedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("agl_distributed_" + std::to_string(::getpid())))
                .string();
    auto dfs = mr::LocalDfs::Open(root_ + "/coord");
    ASSERT_TRUE(dfs.ok()) << dfs.status().ToString();
    coord_ = std::make_unique<mr::LocalDfs>(std::move(*dfs));
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  DriverOptions Options(const std::string& prefix) {
    DriverOptions options;
    options.dfs = coord_.get();
    options.job_prefix = prefix;
    return options;
  }

  agl::Result<mr::LocalDfs> OutDfs() {
    return mr::LocalDfs::Open(root_ + "/out");
  }

  std::string root_;
  std::unique_ptr<mr::LocalDfs> coord_;
};

GraphGenOptions TestGraph(uint64_t seed) {
  GraphGenOptions opts;
  opts.topology = GraphGenOptions::Topology::kPowerLaw;
  opts.num_nodes = 90;
  opts.attach_edges = 3;
  opts.node_feature_dim = 5;
  opts.seed = seed;
  return opts;
}

// --- GraphFlat --------------------------------------------------------------

TEST_F(DistributedTest, FlatProcessesMatchInProcessAcrossShardCounts) {
  GeneratedGraph g = MakeGraph(TestGraph(11));
  auto out = OutDfs();
  ASSERT_TRUE(out.ok());
  for (int shards : ShardCounts()) {
    flat::GraphFlatConfig config;
    config.hops = 2;
    config.num_shards = shards;
    config.job.num_workers = 3;

    auto in_proc =
        flat::RunGraphFlat(config, g.nodes, g.edges, &*out, "flat_thread");
    ASSERT_TRUE(in_proc.ok()) << in_proc.status().ToString();
    DriverStats stats;
    auto proc = RunGraphFlatProcesses(Options("flat"), config, g.nodes,
                                      g.edges, &*out, "flat_proc", &stats);
    ASSERT_TRUE(proc.ok()) << "S=" << shards << ": "
                           << proc.status().ToString();

    EXPECT_EQ(in_proc->num_features, proc->num_features) << "S=" << shards;
    auto a = out->ReadDataset("flat_thread");
    auto b = out->ReadDataset("flat_proc");
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(*a == *b) << "dataset bytes diverged at S=" << shards;
    EXPECT_EQ(stats.spawns, shards);
    EXPECT_EQ(stats.clean_exits, shards);
    EXPECT_EQ(stats.restarts, 0);
  }
}

TEST_F(DistributedTest, FlatShardSigkillRecoversBitExact) {
  GeneratedGraph g = MakeGraph(TestGraph(12));
  auto out = OutDfs();
  ASSERT_TRUE(out.ok());
  flat::GraphFlatConfig config;
  config.hops = 2;
  config.num_shards = 3;
  config.job.num_workers = 2;

  auto clean = RunGraphFlatProcesses(Options("flat_clean"), config, g.nodes,
                                     g.edges, &*out, "flat_clean");
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // Every shard's first attempt dies by SIGKILL on its third map task; the
  // relaunches recompute and republish idempotently while the surviving
  // peers keep polling the exchange.
  DriverOptions chaos = Options("flat_chaos");
  chaos.first_attempt_env = {"AGL_FAILPOINTS=mr.map=crash@3x1"};
  DriverStats stats;
  auto result = RunGraphFlatProcesses(chaos, config, g.nodes, g.edges, &*out,
                                      "flat_chaos", &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(stats.restarts, 0);
  EXPECT_GT(stats.signal_exits, 0);

  auto a = out->ReadDataset("flat_clean");
  auto b = out->ReadDataset("flat_chaos");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
}

// --- Analytics --------------------------------------------------------------

TEST_F(DistributedTest, AnalyticsProcessesMatchInProcessAcrossShardCounts) {
  GeneratedGraph g = MakeGraph(TestGraph(13));
  analytics::PageRankProgram oracle(0.85, 1e-10);
  ProgramSpec spec;
  spec.name = "pagerank";

  for (int shards : ShardCounts()) {
    analytics::AnalyticsConfig config;
    config.num_shards = shards;
    config.job.num_workers = 2;

    auto in_proc =
        analytics::RunVertexProgram(config, oracle, g.nodes, g.edges);
    ASSERT_TRUE(in_proc.ok()) << in_proc.status().ToString();
    DriverStats stats;
    auto proc = RunAnalyticsProcesses(Options("pr"), config, spec, g.nodes,
                                      g.edges, &stats);
    ASSERT_TRUE(proc.ok()) << "S=" << shards << ": "
                           << proc.status().ToString();

    EXPECT_TRUE(in_proc->SerializeValues() == proc->SerializeValues())
        << "values diverged at S=" << shards;
    EXPECT_EQ(in_proc->stats.supersteps, proc->stats.supersteps);
    EXPECT_EQ(in_proc->stats.converged, proc->stats.converged);
    EXPECT_EQ(stats.clean_exits, shards);
  }
}

TEST_F(DistributedTest, AnalyticsShardSigkillRecoversBitExact) {
  GeneratedGraph g = MakeGraph(TestGraph(14));
  analytics::AnalyticsConfig config;
  config.num_shards = 3;
  config.job.num_workers = 2;
  ProgramSpec spec;
  spec.name = "cc";

  auto clean =
      RunAnalyticsProcesses(Options("cc_clean"), config, spec, g.nodes,
                            g.edges);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  DriverOptions chaos = Options("cc_chaos");
  chaos.first_attempt_env = {"AGL_FAILPOINTS=mr.map=crash@2x1"};
  DriverStats stats;
  auto result = RunAnalyticsProcesses(chaos, config, spec, g.nodes, g.edges,
                                      &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(stats.restarts, 0);
  EXPECT_TRUE(clean->SerializeValues() == result->SerializeValues());
}

// --- Trainer ----------------------------------------------------------------

struct TrainCase {
  std::vector<subgraph::GraphFeature> train;
  std::vector<subgraph::GraphFeature> val;
  trainer::TrainerConfig config;
};

TrainCase MakeTrainCase(int workers, trainer::SyncMode mode, int staleness) {
  data::UugLikeOptions opts;
  opts.num_nodes = 160;
  opts.feature_dim = 6;
  opts.train_size = 72;
  opts.val_size = 30;
  opts.test_size = 30;
  data::Dataset ds = data::MakeUugLike(opts);
  flat::GraphFlatConfig fc;
  fc.hops = 1;
  auto features = flat::RunGraphFlatInMemory(fc, ds.nodes, ds.edges);
  AGL_CHECK(features.ok());
  data::FeatureSplits splits =
      data::SplitFeatures(std::move(features).value(), ds);

  TrainCase c;
  c.train = std::move(splits.train);
  c.val = std::move(splits.val);
  c.config.model.type = gnn::ModelType::kGcn;
  c.config.model.num_layers = 1;
  c.config.model.in_dim = opts.feature_dim;
  c.config.model.hidden_dim = 8;
  c.config.model.out_dim = 2;
  c.config.model.dropout = 0.f;
  c.config.task = trainer::TaskKind::kBinaryAuc;
  c.config.num_workers = workers;
  c.config.batch_size = 16;
  c.config.epochs = 3;
  c.config.eval_every = 1;
  c.config.sync_mode = mode;
  c.config.staleness_bound = staleness;
  return c;
}

void ExpectSameTraining(const trainer::TrainReport& a,
                        const trainer::TrainReport& b) {
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].mean_train_loss, b.epochs[i].mean_train_loss)
        << "epoch " << i;
  }
  EXPECT_TRUE(nn::SerializeStateDict(a.final_state) ==
              nn::SerializeStateDict(b.final_state))
      << "final state dicts diverged";
}

TEST_F(DistributedTest, TrainProcessesMatchInProcessBsp) {
  for (int workers : {1, 3}) {
    TrainCase c = MakeTrainCase(workers, trainer::SyncMode::kBsp, 0);
    auto in_proc = trainer::GraphTrainer(c.config).Train(c.train, c.val);
    ASSERT_TRUE(in_proc.ok()) << in_proc.status().ToString();
    DriverStats stats;
    auto proc = TrainProcesses(Options("bsp"), c.config, c.train, c.val,
                               &stats);
    ASSERT_TRUE(proc.ok()) << "W=" << workers << ": "
                           << proc.status().ToString();
    ExpectSameTraining(*in_proc, *proc);
    EXPECT_EQ(stats.restarts, 0);
    EXPECT_GT(stats.ps_transport.requests, 0);  // the wire PS carried it
  }
}

TEST_F(DistributedTest, TrainProcessesMatchInProcessSspBoundZero) {
  TrainCase c = MakeTrainCase(3, trainer::SyncMode::kSsp, 0);
  auto in_proc = trainer::GraphTrainer(c.config).Train(c.train, c.val);
  ASSERT_TRUE(in_proc.ok()) << in_proc.status().ToString();
  auto proc = TrainProcesses(Options("ssp0"), c.config, c.train, c.val);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  ExpectSameTraining(*in_proc, *proc);
}

TEST_F(DistributedTest, TrainerSigkillMidEpochRecoversBitExact) {
  TrainCase c = MakeTrainCase(3, trainer::SyncMode::kBsp, 0);
  auto clean = TrainProcesses(Options("t_clean"), c.config, c.train, c.val);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // Each epoch's first-attempt workers die by SIGKILL on their second
  // step; the driver cancels the SSP epoch, restores the epoch-start PS
  // snapshot (values + Adam moments), and replays the epoch clean.
  DriverOptions chaos = Options("t_chaos");
  chaos.first_attempt_env = {"AGL_FAILPOINTS=trainer.step=crash@2x1"};
  DriverStats stats;
  auto result = TrainProcesses(chaos, c.config, c.train, c.val, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(stats.restarts, 0);
  EXPECT_GT(stats.signal_exits, 0);
  ExpectSameTraining(*clean, *result);
}

TEST_F(DistributedTest, NonRetryableWorkerErrorFailsWithoutRelaunch) {
  TrainCase c = MakeTrainCase(2, trainer::SyncMode::kBsp, 0);
  DriverOptions options = Options("t_fatal");
  options.first_attempt_env = {
      "AGL_FAILPOINTS=trainer.step=error(Internal,1)x1"};
  DriverStats stats;
  auto result = TrainProcesses(options, c.config, c.train, c.val, &stats);
  ASSERT_FALSE(result.ok());
  // The worker's own reported status wins over its cancelled peers'
  // kAborted collateral, and kInternal is not in the retryable set.
  EXPECT_EQ(result.status().code(), StatusCode::kInternal)
      << result.status().ToString();
  EXPECT_EQ(stats.restarts, 0);
}

TEST_F(DistributedTest, TrainProcessesRejectsUnsupportedModes) {
  TrainCase c = MakeTrainCase(2, trainer::SyncMode::kAsync, 0);
  auto async = TrainProcesses(Options("t_async"), c.config, c.train, c.val);
  EXPECT_EQ(async.status().code(), StatusCode::kInvalidArgument);

  TrainCase mid = MakeTrainCase(2, trainer::SyncMode::kBsp, 0);
  mid.config.checkpoint_dfs = coord_.get();
  mid.config.checkpoint_every_batches = 4;
  auto resumable =
      TrainProcesses(Options("t_mid"), mid.config, mid.train, mid.val);
  EXPECT_EQ(resumable.status().code(), StatusCode::kInvalidArgument);
}

// --- LocalDfs concurrency contract ------------------------------------------

TEST_F(DistributedTest, LocalDfsConcurrentOpensNeverSweepLivePeers) {
  const std::string root = root_ + "/dfs_contract";
  auto self = common::SelfExecutable();
  ASSERT_TRUE(self.ok());

  constexpr int kWriters = 4;
  std::vector<pid_t> pids;
  for (int id = 0; id < kWriters; ++id) {
    auto pid = common::Spawn(
        {*self, kDfsWriterArgv1, root, std::to_string(id)});
    ASSERT_TRUE(pid.ok()) << pid.status().ToString();
    pids.push_back(*pid);
  }
  // Each Open sweeps scratch directories; racing it against the live
  // writers is the point of the test.
  for (int i = 0; i < 50; ++i) {
    auto dfs = mr::LocalDfs::Open(root);
    ASSERT_TRUE(dfs.ok()) << dfs.status().ToString();
  }
  for (pid_t pid : pids) {
    auto exit = common::Wait(pid);
    ASSERT_TRUE(exit.ok());
    EXPECT_TRUE(exit->clean()) << "writer exited "
                               << (exit->signaled ? "signal " : "code ")
                               << exit->value;
  }
  auto dfs = mr::LocalDfs::Open(root);
  ASSERT_TRUE(dfs.ok());
  for (int id = 0; id < kWriters; ++id) {
    auto records = dfs->ReadDataset("peer" + std::to_string(id));
    ASSERT_TRUE(records.ok()) << records.status().ToString();
    // Round-robin parts permute read-back order; compare as sorted sets.
    std::vector<std::string> got = std::move(*records);
    std::vector<std::string> want = WriterPayload(id);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_TRUE(got == want) << "peer " << id;
  }
}

// --- heavy sweep ------------------------------------------------------------

/// Nightly-style widening behind AGL_DISTRIBUTED_HEAVY (the CTest entry
/// sets it): more seeds x the full shard set for both shard pipelines.
TEST_F(DistributedTest, DistributedSweepTest) {
  if (!Heavy()) GTEST_SKIP() << "set AGL_DISTRIBUTED_HEAVY=1 to run";
  auto out = OutDfs();
  ASSERT_TRUE(out.ok());
  for (uint64_t seed : {21u, 22u, 23u}) {
    GeneratedGraph g = MakeGraph(TestGraph(seed));
    for (int shards : {2, 4, 7}) {
      flat::GraphFlatConfig fc;
      fc.hops = 2;
      fc.num_shards = shards;
      fc.job.num_workers = 2;
      auto in_proc =
          flat::RunGraphFlat(fc, g.nodes, g.edges, &*out, "sweep_thread");
      ASSERT_TRUE(in_proc.ok());
      auto proc = RunGraphFlatProcesses(Options("sweep"), fc, g.nodes,
                                        g.edges, &*out, "sweep_proc");
      ASSERT_TRUE(proc.ok()) << proc.status().ToString();
      auto a = out->ReadDataset("sweep_thread");
      auto b = out->ReadDataset("sweep_proc");
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_TRUE(*a == *b) << "seed " << seed << " S=" << shards;

      analytics::AnalyticsConfig ac;
      ac.num_shards = shards;
      ac.job.num_workers = 2;
      analytics::PageRankProgram oracle(0.85, 1e-10);
      ProgramSpec spec;
      spec.name = "pagerank";
      auto ref = analytics::RunVertexProgram(ac, oracle, g.nodes, g.edges);
      ASSERT_TRUE(ref.ok());
      auto pr = RunAnalyticsProcesses(Options("sweep_pr"), ac, spec, g.nodes,
                                      g.edges);
      ASSERT_TRUE(pr.ok()) << pr.status().ToString();
      EXPECT_TRUE(ref->SerializeValues() == pr->SerializeValues())
          << "seed " << seed << " S=" << shards;
    }
  }
}

}  // namespace
}  // namespace agl::driver

/// Custom main: this binary is its own worker pool. The driver hook must
/// see argv before gtest (a spawned worker never reaches the test runner),
/// and the DFS-contract writers re-enter here too.
int main(int argc, char** argv) {
  if (auto code = agl::driver::RunWorkerIfSpawned(argc, argv)) return *code;
  if (argc == 4 &&
      std::string(argv[1]) == agl::driver::kDfsWriterArgv1) {
    return agl::driver::RunDfsWriter(argv[2], std::atoi(argv[3]));
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
