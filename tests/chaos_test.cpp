// Chaos harness: randomized failpoint schedules thrown at the full
// graphflat -> train -> infer pipeline. Every schedule is deterministic
// (derived from its index), and every run must end in exactly one of two
// states:
//
//   * every stage succeeded and the outputs are byte-identical to the
//     fault-free reference run (injected transient errors were absorbed by
//     the retry/recovery layers without perturbing any arithmetic), or
//   * some stage returned a clean non-OK Status (no hang, no crash, no
//     partial output passed downstream).
//
// Either way the DFS must hold zero torn datasets afterwards: reopening
// the root (which sweeps scratch left by injected "crashes") followed by
// ValidateAllDatasets() must come back clean. When the failed stage was
// the trainer and a mid-epoch checkpoint survived, the harness also
// re-runs training with resume=true and faults cleared — the recovered
// run must be bit-identical to the reference.
//
// To reproduce one schedule outside the harness, set AGL_FAILPOINTS to
// the spec string logged with the failure (the harness arms its schedules
// through the same ApplySpec grammar the env variable uses).
//
// The default run covers 50 schedules; AGL_CHAOS_HEAVY=1 (the ctest
// "chaos_sweep" entry) extends the sweep.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "agl/agl.h"
#include "analytics/programs.h"
#include "analytics/vertex_program.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace agl {
namespace {

constexpr uint64_t kChaosSeed = 0xc7a05;

enum class Stage { kNone, kFlat, kLoad, kTrain, kInfer };

struct PipelineOutput {
  Stage failed_stage = Stage::kNone;
  agl::Status status;       // first failing stage's status (OK otherwise)
  std::string train_state;  // SerializeState(final_state)
  std::vector<std::pair<flat::NodeId, std::vector<float>>> scores;
};

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("agl_chaos_" + std::to_string(::getpid())))
                .string();
    data::UugLikeOptions opts;
    opts.num_nodes = 150;
    opts.feature_dim = 6;
    opts.train_size = 64;
    opts.val_size = 30;
    opts.test_size = 30;
    ds_ = data::MakeUugLike(opts);
  }
  void TearDown() override {
    fail::FailpointRegistry::Global().ClearAll();
    std::filesystem::remove_all(root_);
  }

  trainer::TrainerConfig TrainConfig(mr::LocalDfs* dfs) const {
    trainer::TrainerConfig config;
    config.model.type = gnn::ModelType::kGcn;
    config.model.num_layers = 1;
    config.model.in_dim = ds_.feature_dim;
    config.model.hidden_dim = 8;
    config.model.out_dim = 2;
    config.task = trainer::TaskKind::kBinaryAuc;
    config.sync_mode = trainer::SyncMode::kSsp;
    config.staleness_bound = 0;
    config.num_workers = 2;
    config.batch_size = 8;
    config.epochs = 2;
    config.checkpoint_dfs = dfs;
    config.checkpoint_every_batches = 2;
    return config;
  }

  /// One full pipeline pass under whatever failpoints are currently armed.
  /// Stops at the first failing stage; later stages never see partial
  /// output.
  PipelineOutput RunPipeline(const std::string& run_root) {
    PipelineOutput out;
    auto dfs = mr::LocalDfs::Open(run_root + "/dfs");
    if (!dfs.ok()) {
      out.failed_stage = Stage::kFlat;
      out.status = dfs.status();
      return out;
    }
    flat::GraphFlatConfig fconfig;
    fconfig.hops = 1;
    auto fstats = GraphFlat(fconfig, ds_.nodes, ds_.edges, &*dfs,
                            "features");
    if (!fstats.ok()) {
      out.failed_stage = Stage::kFlat;
      out.status = fstats.status();
      return out;
    }
    auto features = LoadGraphFeatures(*dfs, "features");
    if (!features.ok()) {
      out.failed_stage = Stage::kLoad;
      out.status = features.status();
      return out;
    }
    auto splits = data::SplitFeatures(std::move(features).value(), ds_);
    auto report =
        trainer::GraphTrainer(TrainConfig(&*dfs))
            .Train(splits.train, splits.val);
    if (!report.ok()) {
      out.failed_stage = Stage::kTrain;
      out.status = report.status();
      return out;
    }
    out.train_state = SerializeState(report->final_state);
    std::filesystem::create_directories(run_root + "/spill");
    infer::InferConfig iconfig;
    iconfig.model = TrainConfig(nullptr).model;
    iconfig.num_shards = 2;
    iconfig.batch_slices = 2;
    iconfig.cache_budget_bytes = 4096;
    iconfig.cache_spill_path = run_root + "/spill/cache.rec";
    auto inference = GraphInferBatched(iconfig, report->final_state,
                                       ds_.nodes, ds_.edges);
    if (!inference.ok()) {
      out.failed_stage = Stage::kInfer;
      out.status = inference.status();
      return out;
    }
    out.scores = std::move(inference->scores);
    return out;
  }

  /// Draws a deterministic random schedule for iteration `i`: 1-3 sites,
  /// each in crash or error mode, probabilistic or hit-targeted. Returned
  /// in the AGL_FAILPOINTS grammar so a failure log is directly
  /// reproducible.
  std::string MakeSchedule(uint64_t i) {
    Rng rng(DeriveSeed(kChaosSeed, i));
    const std::vector<std::string>& sites = fail::KnownSites();
    const int num_sites = static_cast<int>(rng.UniformInt(1, 3));
    std::string spec = "seed=" + std::to_string(i);
    for (int s = 0; s < num_sites; ++s) {
      const std::string& site =
          sites[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<int64_t>(sites.size()) - 1))];
      std::string entry = site + "=";
      const bool crash = rng.Bernoulli(0.3);
      entry += crash ? "crash" : "error";
      if (!crash) {
        static const char* kCodes[] = {"IoError", "Unavailable", "Aborted",
                                       "Internal", "Corruption"};
        entry += "(";
        entry += kCodes[rng.UniformInt(0, 4)];
        entry += ",1.0)";
      }
      if (rng.Bernoulli(0.5)) {
        // Hit-targeted: fire once somewhere in the schedule.
        entry += "@";
        entry += std::to_string(rng.UniformInt(1, 60));
        entry += "x1";
      } else {
        // Probabilistic: low rate so retries can win some runs.
        const int pct = static_cast<int>(rng.UniformInt(2, 20));
        std::string prob = "0.";
        if (pct < 10) prob += "0";
        prob += std::to_string(pct);
        if (entry.find('(') == std::string::npos) {
          entry += "(" + prob + ")";
        } else {
          // Splice the probability into the existing "(code,1.0)".
          std::string spliced = entry.substr(0, entry.size() - 4);
          spliced += prob;
          spliced += ")";
          entry = std::move(spliced);
        }
      }
      spec += ";" + entry;
    }
    return spec;
  }

  /// Like MakeSchedule, but restricted to the sites an analytics job
  /// actually crosses (MR tasks + DFS publish), so both outcome classes
  /// stay reachable on the shorter pipeline.
  std::string MakeAnalyticsSchedule(uint64_t i) {
    static const char* kSites[] = {"mr.map", "mr.reduce", "dfs.read",
                                   "dfs.write", "dfs.rename"};
    Rng rng(DeriveSeed(kChaosSeed ^ 0xa7a1, i));
    const int num_sites = static_cast<int>(rng.UniformInt(1, 2));
    std::string spec = "seed=" + std::to_string(i);
    for (int s = 0; s < num_sites; ++s) {
      std::string entry = kSites[rng.UniformInt(0, 4)];
      entry += "=";
      if (rng.Bernoulli(0.3)) {
        entry += "crash@" + std::to_string(rng.UniformInt(1, 40)) + "x1";
      } else {
        static const char* kCodes[] = {"IoError", "Unavailable", "Aborted",
                                       "Internal", "Corruption"};
        entry += "error(";
        entry += kCodes[rng.UniformInt(0, 4)];
        if (rng.Bernoulli(0.5)) {
          entry += ",1.0)@" + std::to_string(rng.UniformInt(1, 40)) + "x1";
        } else {
          const int pct = static_cast<int>(rng.UniformInt(2, 15));
          entry += ",0.";
          if (pct < 10) entry += "0";
          entry += std::to_string(pct) + ")";
        }
      }
      spec += ";" + entry;
    }
    return spec;
  }

  std::string root_;
  data::Dataset ds_;
};

TEST_F(ChaosTest, RandomScheduleSweep) {
  // Fault-free reference.
  PipelineOutput ref = RunPipeline(root_ + "/ref");
  ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
  ASSERT_EQ(ref.failed_stage, Stage::kNone);
  ASSERT_FALSE(ref.scores.empty());

  const bool heavy = std::getenv("AGL_CHAOS_HEAVY") != nullptr;
  const int schedules = heavy ? 300 : 50;
  int clean_failures = 0;
  int absorbed = 0;
  int resumes_checked = 0;
  for (int i = 0; i < schedules; ++i) {
    const std::string spec = MakeSchedule(static_cast<uint64_t>(i));
    SCOPED_TRACE("schedule " + std::to_string(i) + ": AGL_FAILPOINTS=\"" +
                 spec + "\"");
    ASSERT_TRUE(fail::ApplySpec(spec).ok());
    const std::string run_root = root_ + "/run" + std::to_string(i);
    PipelineOutput out = RunPipeline(run_root);
    fail::FailpointRegistry::Global().ClearAll();

    if (out.status.ok()) {
      // Faults absorbed (retries, spill degradation, sub-threshold
      // probability): the outputs must be byte-identical to the fault-free
      // run — absorbed never means "slightly different".
      ++absorbed;
      EXPECT_EQ(out.train_state, ref.train_state);
      EXPECT_EQ(out.scores, ref.scores);
    } else {
      ++clean_failures;
    }

    // Zero torn datasets: reopening sweeps any crash-orphaned scratch,
    // after which every published dataset must verify against its
    // manifest.
    auto reopened = mr::LocalDfs::Open(run_root + "/dfs");
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    agl::Status integrity = reopened->ValidateAllDatasets();
    EXPECT_TRUE(integrity.ok()) << integrity.ToString();

    // Crash-recovery: when the trainer died after a checkpoint barrier,
    // resuming with faults cleared must land exactly where the
    // uninterrupted run did.
    if (out.failed_stage == Stage::kTrain &&
        reopened->DatasetExists(
            trainer::MidCheckpointName("checkpoint"))) {
      auto features = LoadGraphFeatures(*reopened, "features");
      ASSERT_TRUE(features.ok()) << features.status().ToString();
      auto splits = data::SplitFeatures(std::move(features).value(), ds_);
      trainer::TrainerConfig config = TrainConfig(&*reopened);
      config.resume = true;
      auto resumed =
          trainer::GraphTrainer(config).Train(splits.train, splits.val);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      EXPECT_EQ(SerializeState(resumed->final_state), ref.train_state);
      ++resumes_checked;
    }
    std::filesystem::remove_all(run_root);
  }
  // The sweep must actually bite, in every mode: schedules are seeded
  // deterministically, so all three outcome classes occur on every run
  // (all-absorbed would mean the injection sites are dead code; zero
  // absorbed would mean the retry layers never win; zero resumes would
  // mean the crash/checkpoint interplay went untested).
  EXPECT_GT(clean_failures, 0);
  EXPECT_GT(absorbed, 0);
  EXPECT_GT(resumes_checked, 0);
  std::cerr << "[chaos] " << schedules << " schedules: " << clean_failures
            << " clean failures, " << absorbed << " absorbed, "
            << resumes_checked << " checkpoint resumes verified\n";
}

// Second job family under chaos: a sharded PageRank analytics run with
// mr.map / mr.reduce / dfs.* failpoints armed. Same contract as the
// pipeline sweep — every schedule either is absorbed (output byte-identical
// to the fault-free reference, both the in-memory values and the published
// GraphFeatures dataset) or fails with a clean Status, and the DFS holds
// zero torn datasets either way.
TEST_F(ChaosTest, AnalyticsPageRankSchedules) {
  analytics::PageRankProgram program(0.85, 1e-8);
  analytics::AnalyticsConfig config;
  config.max_supersteps = 200;
  config.num_shards = 2;
  config.job.num_workers = 4;
  config.job.num_map_tasks = 3;
  config.job.num_reduce_tasks = 4;
  config.job.max_task_attempts = 20;

  // Fault-free reference.
  auto ref_dfs = mr::LocalDfs::Open(root_ + "/aref/dfs");
  ASSERT_TRUE(ref_dfs.ok());
  auto ref = analytics::RunVertexProgramToDfs(config, program, ds_.nodes,
                                              ds_.edges, &*ref_dfs,
                                              "pagerank");
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  ASSERT_TRUE(ref->stats.converged);
  auto ref_bytes = ref_dfs->ReadDataset("pagerank");
  ASSERT_TRUE(ref_bytes.ok());
  const std::string ref_values = ref->SerializeValues();

  const bool heavy = std::getenv("AGL_CHAOS_HEAVY") != nullptr;
  const int schedules = heavy ? 120 : 40;
  int clean_failures = 0;
  int absorbed = 0;
  for (int i = 0; i < schedules; ++i) {
    const std::string spec = MakeAnalyticsSchedule(static_cast<uint64_t>(i));
    SCOPED_TRACE("analytics schedule " + std::to_string(i) +
                 ": AGL_FAILPOINTS=\"" + spec + "\"");
    const std::string run_root = root_ + "/arun" + std::to_string(i);
    ASSERT_TRUE(fail::ApplySpec(spec).ok());
    agl::Status status;
    auto dfs = mr::LocalDfs::Open(run_root + "/dfs");
    if (!dfs.ok()) {
      status = dfs.status();
    } else {
      auto out = analytics::RunVertexProgramToDfs(
          config, program, ds_.nodes, ds_.edges, &*dfs, "pagerank");
      status = out.status();
      if (out.ok()) {
        EXPECT_TRUE(out->SerializeValues() == ref_values);
      }
    }
    fail::FailpointRegistry::Global().ClearAll();

    if (status.ok()) {
      ++absorbed;
      auto bytes = dfs->ReadDataset("pagerank");
      ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
      EXPECT_TRUE(*bytes == *ref_bytes);
    } else {
      ++clean_failures;
    }

    auto reopened = mr::LocalDfs::Open(run_root + "/dfs");
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    agl::Status integrity = reopened->ValidateAllDatasets();
    EXPECT_TRUE(integrity.ok()) << integrity.ToString();
    std::filesystem::remove_all(run_root);
  }
  EXPECT_GT(clean_failures, 0);
  EXPECT_GT(absorbed, 0);
  std::cerr << "[chaos] analytics: " << schedules << " schedules, "
            << clean_failures << " clean failures, " << absorbed
            << " absorbed\n";
}

// Third job family under chaos: the always-on inference service driven
// through score -> mutate -> score -> persist -> restart -> score with
// infer.spill / dfs.* failpoints armed. Contract: every score call that
// returns OK is byte-identical to the fault-free reference for the same
// graph epoch (spill faults degrade to recompute, NEVER to different
// bytes); every failure is a clean Status; and the DFS holds zero torn
// datasets afterwards. A faulted store re-open silently degrades to a
// cold start, which is an absorbed outcome, not a failure.
TEST_F(ChaosTest, ServeSchedules) {
  gnn::ModelConfig mconfig;
  mconfig.type = gnn::ModelType::kGcn;
  mconfig.num_layers = 1;
  mconfig.in_dim = ds_.feature_dim;
  mconfig.hidden_dim = 8;
  mconfig.out_dim = 2;
  gnn::GnnModel model(mconfig);
  const auto state = model.StateDict();

  std::vector<flat::NodeId> all;
  for (const auto& n : ds_.nodes) all.push_back(n.id);

  // Fixed mutation batch (one edge drop, one feature rewrite) applied to
  // a reference copy of the tables, so both graph epochs have an oracle.
  std::vector<serve::Mutation> batch;
  batch.push_back(*serve::Mutation::Parse(
      "remove-edge " + std::to_string(ds_.edges[0].src) + " " +
      std::to_string(ds_.edges[0].dst)));
  batch.push_back(*serve::Mutation::Parse("update-features 5 4,3,2,1,0,-1"));
  std::vector<flat::NodeRecord> post_nodes = ds_.nodes;
  std::vector<flat::EdgeRecord> post_edges = ds_.edges;
  for (const auto& m : batch) {
    ASSERT_TRUE(serve::ApplyMutation(m, &post_nodes, &post_edges).ok());
  }

  serve::ServeConfig sconfig;
  sconfig.infer.model = mconfig;
  sconfig.infer.batch_slices = 2;
  // Budget far below the working set: every pass churns the spill file,
  // keeping the infer.spill / dfs.write sites hot while serving.
  sconfig.store_budget_bytes = 4096;

  struct ServeOut {
    agl::Status status;
    std::vector<std::pair<flat::NodeId, std::vector<float>>> pre, post, warm;
    bool opened_warm = false;
  };
  auto run_sequence = [&](const std::string& run_root) -> ServeOut {
    ServeOut out;
    auto dfs = mr::LocalDfs::Open(run_root + "/dfs");
    if (!dfs.ok()) {
      out.status = dfs.status();
      return out;
    }
    auto svc = agl::Run(sconfig, state, ds_.nodes, ds_.edges, &*dfs);
    if (!svc.ok()) {
      out.status = svc.status();
      return out;
    }
    auto pre = (*svc)->Score(all);
    if (!pre.ok()) {
      out.status = pre.status();
      return out;
    }
    out.pre = std::move(pre).value();
    out.status = (*svc)->ApplyMutations(batch);
    if (!out.status.ok()) return out;
    auto post = (*svc)->Score(all);
    if (!post.ok()) {
      out.status = post.status();
      return out;
    }
    out.post = std::move(post).value();
    out.status = (*svc)->Persist();
    if (!out.status.ok()) return out;
    out.status = (*svc)->Shutdown();
    if (!out.status.ok()) return out;
    svc->reset();
    // "New process": same DFS root, the mutated tables (tables and store
    // root travel together across restarts).
    auto svc2 = agl::Run(sconfig, state, post_nodes, post_edges, &*dfs);
    if (!svc2.ok()) {
      out.status = svc2.status();
      return out;
    }
    out.opened_warm = (*svc2)->stats().opened_warm;
    auto warm = (*svc2)->Score(all);
    if (!warm.ok()) {
      out.status = warm.status();
      return out;
    }
    out.warm = std::move(warm).value();
    out.status = agl::Status::OK();
    return out;
  };

  // Fault-free reference.
  ServeOut ref = run_sequence(root_ + "/sref");
  ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
  ASSERT_TRUE(ref.opened_warm);
  ASSERT_FALSE(ref.pre.empty());
  // The warm restart serves the post-mutation epoch.
  ASSERT_EQ(ref.warm, ref.post);
  ASSERT_NE(ref.pre, ref.post);

  auto make_schedule = [&](uint64_t i) {
    static const char* kSites[] = {"infer.spill", "dfs.read", "dfs.write",
                                   "dfs.rename"};
    Rng rng(DeriveSeed(kChaosSeed ^ 0x5e44e, i));
    const int num_sites = static_cast<int>(rng.UniformInt(1, 2));
    std::string spec = "seed=" + std::to_string(i);
    for (int s = 0; s < num_sites; ++s) {
      std::string entry = kSites[rng.UniformInt(0, 3)];
      entry += "=";
      if (rng.Bernoulli(0.3)) {
        entry += "crash@" + std::to_string(rng.UniformInt(1, 40)) + "x1";
      } else {
        static const char* kCodes[] = {"IoError", "Unavailable", "Aborted",
                                       "Internal", "Corruption"};
        entry += "error(";
        entry += kCodes[rng.UniformInt(0, 4)];
        if (rng.Bernoulli(0.5)) {
          entry += ",1.0)@" + std::to_string(rng.UniformInt(1, 40)) + "x1";
        } else {
          const int pct = static_cast<int>(rng.UniformInt(2, 15));
          entry += ",0.";
          if (pct < 10) entry += "0";
          entry += std::to_string(pct) + ")";
        }
      }
      spec += ";" + entry;
    }
    return spec;
  };

  const bool heavy = std::getenv("AGL_CHAOS_HEAVY") != nullptr;
  const int schedules = heavy ? 80 : 30;
  int clean_failures = 0;
  int absorbed = 0;
  int warm_reopens = 0;
  for (int i = 0; i < schedules; ++i) {
    const std::string spec = make_schedule(static_cast<uint64_t>(i));
    SCOPED_TRACE("serve schedule " + std::to_string(i) +
                 ": AGL_FAILPOINTS=\"" + spec + "\"");
    const std::string run_root = root_ + "/srun" + std::to_string(i);
    ASSERT_TRUE(fail::ApplySpec(spec).ok());
    ServeOut out = run_sequence(run_root);
    fail::FailpointRegistry::Global().ClearAll();

    // Byte-identity for every stage that produced scores, regardless of
    // how the run ended: a degraded store recomputes, it never lies.
    if (!out.pre.empty()) {
      EXPECT_EQ(out.pre, ref.pre);
    }
    if (!out.post.empty()) {
      EXPECT_EQ(out.post, ref.post);
    }
    if (!out.warm.empty()) {
      EXPECT_EQ(out.warm, ref.post);
    }

    if (out.status.ok()) {
      ++absorbed;
      if (out.opened_warm) ++warm_reopens;
    } else {
      ++clean_failures;
    }

    auto reopened = mr::LocalDfs::Open(run_root + "/dfs");
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    agl::Status integrity = reopened->ValidateAllDatasets();
    EXPECT_TRUE(integrity.ok()) << integrity.ToString();
    std::filesystem::remove_all(run_root);
  }
  EXPECT_GT(clean_failures, 0);
  EXPECT_GT(absorbed, 0);
  EXPECT_GT(warm_reopens, 0);
  std::cerr << "[chaos] serve: " << schedules << " schedules, "
            << clean_failures << " clean failures, " << absorbed
            << " absorbed (" << warm_reopens << " warm re-opens)\n";
}

TEST_F(ChaosTest, EnvSpecSmoke) {
  // The exact path a reproduction uses: arm via the spec grammar, one
  // deterministic crash in GraphFlat's reduce, then verify the DFS is
  // recoverable and a clean re-run succeeds.
  ASSERT_TRUE(fail::ApplySpec("mr.reduce=crash@1x1").ok());
  PipelineOutput out = RunPipeline(root_ + "/env");
  fail::FailpointRegistry::Global().ClearAll();
  ASSERT_FALSE(out.status.ok());
  EXPECT_TRUE(fail::IsInjectedCrash(out.status)) << out.status.ToString();
  auto reopened = mr::LocalDfs::Open(root_ + "/env/dfs");
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->ValidateAllDatasets().ok());
  // The sweep left a usable root: the pipeline completes on retry.
  PipelineOutput retry = RunPipeline(root_ + "/env");
  EXPECT_TRUE(retry.status.ok()) << retry.status.ToString();
}

}  // namespace
}  // namespace agl
