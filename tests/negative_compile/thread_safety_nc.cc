// Negative-compile harness for the thread-safety annotations.
//
// Each AGL_NC_* macro selects one known-bad snippet that MUST be rejected
// by clang's -Wthread-safety -Werror. The CMake side (negative_compile/
// CMakeLists.txt) builds one object-library target per case and registers
// a WILL_FAIL ctest entry per bad case, so a regression that silently
// disables the analysis (a broken macro, a lost compile flag) turns the
// "build fails" assertion into a test failure.
//
// With no AGL_NC_* macro defined, the file compiles a correct usage — the
// control that proves failures come from the analysis, not from the
// harness being broken.
//
// Only meaningful under clang: the annotation macros expand to nothing
// elsewhere, so the CMake side registers these tests only when
// CMAKE_CXX_COMPILER_ID matches Clang.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) EXCLUDES(mu_) {
    agl::common::MutexLock lock(&mu_);
    balance_ += amount;
  }

  int balance() const EXCLUDES(mu_) {
    agl::common::MutexLock lock(&mu_);
    return balance_;
  }

  void Audit() EXCLUDES(mu_) {
    agl::common::MutexLock lock(&mu_);
    AuditLocked();
  }

 private:
  void AuditLocked() REQUIRES(mu_) { ++audits_; }

  mutable agl::common::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
  int audits_ GUARDED_BY(mu_) = 0;

#if defined(AGL_NC_UNLOCKED_WRITE)
  // BAD: writes a GUARDED_BY member without holding its mutex.
 public:
  void Corrupt() { balance_ = -1; }  // expected-error: writing without mu_
#endif

#if defined(AGL_NC_UNLOCKED_READ)
  // BAD: reads a GUARDED_BY member without holding its mutex.
 public:
  int Peek() const { return balance_; }  // expected-error: reading w/o mu_
#endif

#if defined(AGL_NC_MISSING_REQUIRES)
  // BAD: calls a REQUIRES(mu_) helper without holding the mutex.
 public:
  void AuditUnlocked() { AuditLocked(); }  // expected-error: mu_ not held
#endif

#if defined(AGL_NC_DOUBLE_LOCK)
  // BAD: acquires a mutex the caller already holds (self-deadlock).
 public:
  void DoubleLock() EXCLUDES(mu_) {
    agl::common::MutexLock outer(&mu_);
    agl::common::MutexLock inner(&mu_);  // expected-error: already held
    balance_ += 0;
  }
#endif

#if defined(AGL_NC_WAIT_WITHOUT_LOCK)
  // BAD: CondVar::Wait REQUIRES the mutex; calling it unlocked is the
  // classic lost-wakeup/undefined-behaviour bug.
 public:
  void WaitUnlocked() { cv_.Wait(&mu_); }  // expected-error: mu_ not held
 private:
  agl::common::CondVar cv_;
#endif
};

}  // namespace

// The harness compiles object files only; give each TU one live symbol so
// -Wunused doesn't fire on the control build.
void agl_nc_anchor() {
  Account a;
  a.Deposit(1);
  a.Audit();
  (void)a.balance();
}
