// Property tests for SyncMode::kSsp and the staged training pipeline:
//   * staleness bound 0 reproduces kBsp bit-for-bit on a fixed partition;
//   * unbounded staleness matches kAsync's PS traffic stats and never
//     blocks at the clock gate;
//   * with bound k, no admitted pull ever observes a clock skew > k
//     (asserted through the ServerStats staleness histogram);
//   * an injected mid-epoch fault tears the pipeline down cleanly (no
//     deadlock on the bounded queues or the SSP gate).

#include <gtest/gtest.h>

#include <cmath>

#include "common/failpoint.h"
#include "data/dataset.h"
#include "flat/graphflat.h"
#include "trainer/trainer.h"

namespace agl::trainer {
namespace {

struct Prepared {
  data::Dataset dataset;
  data::FeatureSplits splits;
};

Prepared MakeCase(int train_size = 128) {
  data::UugLikeOptions opts;
  opts.num_nodes = 240;
  opts.feature_dim = 8;
  opts.train_size = train_size;
  opts.val_size = 40;
  opts.test_size = 40;
  Prepared p;
  p.dataset = data::MakeUugLike(opts);
  flat::GraphFlatConfig fc;
  fc.hops = 1;
  auto features =
      flat::RunGraphFlatInMemory(fc, p.dataset.nodes, p.dataset.edges);
  AGL_CHECK(features.ok());
  p.splits = data::SplitFeatures(std::move(features).value(), p.dataset);
  return p;
}

TrainerConfig BaseConfig(const Prepared& p, int workers) {
  TrainerConfig config;
  config.model.type = gnn::ModelType::kGcn;
  config.model.num_layers = 1;
  config.model.in_dim = p.dataset.feature_dim;
  config.model.hidden_dim = 8;
  config.model.out_dim = 2;
  config.model.dropout = 0.f;
  config.task = TaskKind::kBinaryAuc;
  config.num_workers = workers;
  config.batch_size = 16;
  config.epochs = 4;
  config.sync_mode = SyncMode::kSsp;
  config.staleness_bound = 1;
  return config;
}

void ExpectBitIdentical(const TrainReport& a, const TrainReport& b) {
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].mean_train_loss, b.epochs[i].mean_train_loss)
        << "epoch " << i;
  }
  ASSERT_EQ(a.final_state.size(), b.final_state.size());
  for (const auto& [key, value] : a.final_state) {
    EXPECT_TRUE(b.final_state.at(key).AllClose(value, 0.f)) << key;
  }
}

TEST(SspTrainerTest, BoundZeroMatchesBspBitExact) {
  // At bound 0 every worker runs in lockstep and each tick commits as one
  // averaged update, summed in worker order — exactly the BSP round
  // reducer. The trajectories must be bit-identical, not merely close.
  Prepared p = MakeCase();
  for (int workers : {1, 3, 4}) {
    TrainerConfig ssp = BaseConfig(p, workers);
    ssp.staleness_bound = 0;
    TrainerConfig bsp = BaseConfig(p, workers);
    bsp.sync_mode = SyncMode::kBsp;
    auto a = GraphTrainer(ssp).Train(p.splits.train, p.splits.val);
    auto b = GraphTrainer(bsp).Train(p.splits.train, p.splits.val);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ExpectBitIdentical(*a, *b);
  }
}

TEST(SspTrainerTest, BoundZeroBitExactWithRaggedPartitions) {
  // 5 workers over 128 features -> uneven tick counts; early-finishing
  // workers must stop holding the clock and later ticks must average over
  // the remaining contributors only (mirroring BSP's idle workers).
  Prepared p = MakeCase();
  TrainerConfig ssp = BaseConfig(p, 5);
  ssp.batch_size = 10;
  ssp.staleness_bound = 0;
  TrainerConfig bsp = ssp;
  bsp.sync_mode = SyncMode::kBsp;
  auto a = GraphTrainer(ssp).Train(p.splits.train, p.splits.val);
  auto b = GraphTrainer(bsp).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectBitIdentical(*a, *b);
}

TEST(SspTrainerTest, BoundZeroPipelineOffMatchesPipelineOn) {
  // The stage threads reorder execution, never arithmetic: inline and
  // pipelined runs of the same SSP schedule are bit-identical.
  Prepared p = MakeCase();
  TrainerConfig on = BaseConfig(p, 3);
  on.staleness_bound = 0;
  on.use_pipeline = true;
  TrainerConfig off = on;
  off.use_pipeline = false;
  auto a = GraphTrainer(on).Train(p.splits.train, p.splits.val);
  auto b = GraphTrainer(off).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectBitIdentical(*a, *b);
}

TEST(SspTrainerTest, UnboundedStalenessMatchesAsyncStats) {
  // With an unbounded clock the gate never blocks and the PS traffic is
  // the async schedule's: same pull/push/byte counters, zero gate waits.
  Prepared p = MakeCase();
  TrainerConfig ssp = BaseConfig(p, 4);
  ssp.staleness_bound = ps::kUnboundedStaleness;
  TrainerConfig async = BaseConfig(p, 4);
  async.sync_mode = SyncMode::kAsync;
  auto a = GraphTrainer(ssp).Train(p.splits.train, p.splits.val);
  auto b = GraphTrainer(async).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ps_stats.pulls, b->ps_stats.pulls);
  EXPECT_EQ(a->ps_stats.pushes, b->ps_stats.pushes);
  EXPECT_EQ(a->ps_stats.bytes_pulled, b->ps_stats.bytes_pulled);
  EXPECT_EQ(a->ps_stats.bytes_pushed, b->ps_stats.bytes_pushed);
  EXPECT_EQ(a->ps_stats.ssp_waits, 0);
  EXPECT_GT(a->ps_stats.ssp_pulls, 0);
  // And it still learns.
  EXPECT_GT(a->best_val_metric, 0.6);
}

TEST(SspTrainerTest, StalenessNeverExceedsBound) {
  Prepared p = MakeCase();
  for (int64_t bound : {0, 1, 2, 4}) {
    TrainerConfig config = BaseConfig(p, 4);
    config.staleness_bound = bound;
    config.batch_size = 8;  // more ticks -> more chances to race ahead
    auto report = GraphTrainer(config).Train(p.splits.train, p.splits.val);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const ps::ServerStats& stats = report->ps_stats;
    EXPECT_LE(stats.max_staleness, bound) << "bound " << bound;
    ASSERT_EQ(static_cast<int>(stats.staleness_hist.size()),
              ps::kStalenessBuckets);
    int64_t admitted = 0;
    for (int s = 0; s < ps::kStalenessBuckets; ++s) {
      if (s > bound) {
        EXPECT_EQ(stats.staleness_hist[s], 0)
            << "bound " << bound << " bucket " << s;
      }
      admitted += stats.staleness_hist[s];
    }
    EXPECT_EQ(admitted, stats.ssp_pulls);
  }
}

TEST(SspTrainerTest, SspLearnsAboveChance) {
  Prepared p = MakeCase();
  TrainerConfig config = BaseConfig(p, 3);
  config.staleness_bound = 2;
  auto report = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->best_val_metric, 0.6);
}

TEST(SspTrainerTest, DeterministicAcrossRunsAtBoundZero) {
  Prepared p = MakeCase();
  TrainerConfig config = BaseConfig(p, 4);
  config.staleness_bound = 0;
  auto a = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  auto b = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectBitIdentical(*a, *b);
}

TEST(SspTrainerTest, NegativeBoundRejected) {
  Prepared p = MakeCase();
  TrainerConfig config = BaseConfig(p, 2);
  config.staleness_bound = -1;
  auto report = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// --- Fault-injected teardown ----------------------------------------------
//
// The dangerous configuration: lockstep (bound 0) so every other worker is
// blocked at the SSP gate when one worker dies mid-epoch. The trainer must
// cancel the gate and the bounded queues, join every stage thread, and
// surface the injected error — under the 300 s ctest timeout, a deadlock
// IS the failure mode.

TEST(SspTrainerTest, PipelineTeardownCleanUnderInjectedFault) {
  Prepared p = MakeCase();
  TrainerConfig config = BaseConfig(p, 4);
  config.staleness_bound = 0;
  config.epochs = 3;
  // 4 workers x 2 batches = 8 "trainer.step" hits per epoch; hit 10 lands
  // mid-way through epoch 1, with the other three workers parked at the
  // bound-0 gate.
  fail::SiteConfig cfg;
  cfg.mode = fail::Mode::kError;
  cfg.code = StatusCode::kInternal;
  cfg.first_hit = 10;
  cfg.max_fires = 1;
  fail::ScopedFailpoint fault("trainer.step", cfg);
  auto report = GraphTrainer(config).Train(p.splits.train, p.splits.val);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
  EXPECT_NE(report.status().ToString().find("injected fault"),
            std::string::npos);
}

TEST(SspTrainerTest, TeardownCleanAcrossModesAndFaultSites) {
  // Sweep the fault across workers and both pipeline settings; every
  // combination must terminate with the injected error, never hang.
  Prepared p = MakeCase(64);
  for (bool pipelined : {true, false}) {
    for (int64_t fault_hit : {1, 3, 5}) {
      TrainerConfig config = BaseConfig(p, 3);
      config.staleness_bound = 0;
      config.epochs = 2;
      config.use_pipeline = pipelined;
      fail::SiteConfig cfg;
      cfg.mode = fail::Mode::kError;
      cfg.code = StatusCode::kInternal;
      cfg.first_hit = fault_hit;
      cfg.max_fires = 1;
      fail::ScopedFailpoint fault("trainer.step", cfg);
      auto report = GraphTrainer(config).Train(p.splits.train, {});
      ASSERT_FALSE(report.ok())
          << "pipelined=" << pipelined << " hit=" << fault_hit;
      EXPECT_EQ(report.status().code(), StatusCode::kInternal);
    }
  }
}

TEST(SspTrainerTest, AsyncPipelineTeardownCleanUnderInjectedFault) {
  // Same property for the async pipeline (no gate to cancel, but the
  // bounded queues still must unwind).
  Prepared p = MakeCase(64);
  TrainerConfig config = BaseConfig(p, 3);
  config.sync_mode = SyncMode::kAsync;
  config.epochs = 2;
  fail::SiteConfig cfg;
  cfg.mode = fail::Mode::kError;
  cfg.code = StatusCode::kInternal;
  cfg.first_hit = 2;
  cfg.max_fires = 1;
  fail::ScopedFailpoint fault("trainer.step", cfg);
  auto report = GraphTrainer(config).Train(p.splits.train, {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace agl::trainer
