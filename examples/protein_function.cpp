// Multi-label protein function prediction (the PPI protocol of §4.1):
// 24 disjoint graphs, 121 labels per node, inductive split by graph —
// train on 20 graphs, validate on 2, test on 2 unseen graphs. GraphSAGE
// with the mean aggregator, micro-F1 metric.

#include <cstdio>

#include "agl/agl.h"
#include "data/dataset.h"

int main() {
  using namespace agl;

  data::PpiLikeOptions dopts;
  dopts.num_graphs = 12;
  dopts.nodes_per_graph = 150;
  dopts.feature_dim = 50;
  dopts.num_labels = 121;
  dopts.train_graphs = 9;
  dopts.val_graphs = 1;
  data::Dataset ds = data::MakePpiLike(dopts);
  std::printf("PPI-like: %lld graphs, %lld proteins, %lld interactions\n",
              static_cast<long long>(dopts.num_graphs),
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.num_edges()));

  flat::GraphFlatConfig fconfig;
  fconfig.hops = 2;
  fconfig.sampler = {sampling::Strategy::kUniform, 10};
  auto features = flat::RunGraphFlatInMemory(fconfig, ds.nodes, ds.edges);
  if (!features.ok()) {
    std::fprintf(stderr, "GraphFlat: %s\n",
                 features.status().ToString().c_str());
    return 1;
  }
  auto splits = data::SplitFeatures(std::move(features).value(), ds);

  trainer::TrainerConfig tconfig;
  tconfig.model.type = gnn::ModelType::kGraphSage;
  tconfig.model.num_layers = 2;
  tconfig.model.in_dim = ds.feature_dim;
  tconfig.model.hidden_dim = 64;  // paper's PPI embedding size
  tconfig.model.out_dim = dopts.num_labels;
  tconfig.task = trainer::TaskKind::kMultiLabel;
  tconfig.num_workers = 4;
  tconfig.epochs = 8;
  tconfig.batch_size = 64;
  tconfig.adam.lr = 0.01f;
  trainer::GraphTrainer trainer(tconfig);
  auto report = trainer.Train(splits.train, splits.val);
  if (!report.ok()) {
    std::fprintf(stderr, "GraphTrainer: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  for (const auto& e : report->epochs) {
    std::printf("  epoch %d  loss %.4f  val micro-F1 %.4f  (%.2fs)\n",
                e.epoch, e.mean_train_loss, e.val_metric, e.seconds);
  }
  auto test_f1 = trainer.Evaluate(report->final_state, splits.test);
  std::printf("\ninductive test micro-F1 (2 unseen graphs): %.4f\n",
              test_f1.value_or(0.0));
  return 0;
}
