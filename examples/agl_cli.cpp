// agl_cli — the command-line front end of Figure 6:
//
//   agl_cli graphflat -n node.csv -e edge.csv -h 2 -s uniform -o dfs:features
//   agl_cli train     -m gcn -i dfs:features --labels node.csv -o dfs:model
//   agl_cli infer     -m dfs:model -n node.csv -e edge.csv -o scores.csv
//   agl_cli serve     -m dfs:model -n node.csv -e edge.csv --script ops.txt
//                     -o scores.csv
//   agl_cli gendata   -d uug -n 1000 --nodes-out node.csv --edges-out edge.csv
//   agl_cli analytics pagerank -n node.csv -e edge.csv -o ranks.csv
//   agl_cli driver    graphflat -n node.csv -e edge.csv --coord /tmp/coord
//                     --shards 4 -o dfs:features
//
// DFS locations are "<root-dir>:<dataset>"; every stage round-trips
// through CSV tables and the LocalDfs so the pipeline can be driven one
// command at a time, as in production.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>

#include "agl/agl.h"
#include "analytics/programs.h"
#include "analytics/vertex_program.h"
#include "common/failpoint.h"
#include "common/flags.h"
#include "data/dataset.h"
#include "driver/driver.h"
#include "flat/csv_io.h"
#include "infer/segmentation.h"

namespace {

using namespace agl;

struct DfsLocation {
  std::string root;
  std::string dataset;
};

agl::Result<DfsLocation> ParseDfsLocation(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return agl::Status::InvalidArgument(
        "expected <dfs-root>:<dataset>, got '" + spec + "'");
  }
  return DfsLocation{spec.substr(0, colon), spec.substr(colon + 1)};
}

int Fail(const agl::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Arms the failpoints of a --failpoints spec. Validated before anything
/// is armed, so a typo names the bad entry (and the known sites) up front
/// instead of silently running fault-free.
agl::Status ArmFailpoints(const std::string& spec) {
  if (spec.empty()) return agl::Status::OK();
  AGL_RETURN_IF_ERROR(fail::ValidateSpec(spec));
  return fail::ApplySpec(spec);
}

int RunGraphFlatCmd(const std::vector<std::string>& args) {
  std::string node_csv, edge_csv, sampling = "none", output, failpoints;
  int64_t hops = 2, max_neighbors = 0, hub_threshold = 10000, workers = 4,
          shards = 1;
  FlagParser parser;
  parser.AddString("n", &node_csv, "node table CSV")
      .AddString("e", &edge_csv, "edge table CSV")
      .AddInt("h", &hops, "neighborhood hops")
      .AddString("s", &sampling, "sampling strategy (none|uniform|weighted|topk)")
      .AddInt("max-neighbors", &max_neighbors, "sampling cap per node")
      .AddInt("hub-threshold", &hub_threshold, "re-indexing threshold")
      .AddInt("workers", &workers, "MapReduce workers")
      .AddInt("shards", &shards, "GraphFlat shards (merged output)")
      .AddString("failpoints", &failpoints,
                 "fault-injection spec, e.g. 'mr.map=error(0.1);seed=7'")
      .AddString("o", &output, "output <dfs-root>:<dataset>");
  if (agl::Status s = parser.Parse(args); !s.ok()) return Fail(s);
  if (node_csv.empty() || edge_csv.empty() || output.empty()) {
    std::fprintf(stderr, "graphflat requires -n, -e and -o\n%s",
                 parser.Help().c_str());
    return 1;
  }
  if (agl::Status s = ArmFailpoints(failpoints); !s.ok()) return Fail(s);

  auto nodes = flat::ReadNodeCsv(node_csv);
  if (!nodes.ok()) return Fail(nodes.status());
  auto edges = flat::ReadEdgeCsv(edge_csv);
  if (!edges.ok()) return Fail(edges.status());
  auto loc = ParseDfsLocation(output);
  if (!loc.ok()) return Fail(loc.status());
  auto dfs = mr::LocalDfs::Open(loc->root);
  if (!dfs.ok()) return Fail(dfs.status());

  flat::GraphFlatConfig config;
  config.hops = static_cast<int>(hops);
  auto strategy = sampling::ParseStrategy(sampling);
  if (!strategy.ok()) return Fail(strategy.status());
  config.sampler = {*strategy, max_neighbors};
  config.hub_threshold = hub_threshold;
  config.job.num_workers = static_cast<int>(workers);
  config.num_shards = static_cast<int>(shards);
  auto stats = GraphFlat(config, *nodes, *edges, &*dfs, loc->dataset);
  if (!stats.ok()) return Fail(stats.status());
  std::printf("GraphFlat: %lld features (avg %.1f nodes) -> %s:%s in %.2fs\n",
              static_cast<long long>(stats->num_features),
              static_cast<double>(stats->total_nodes) /
                  std::max<int64_t>(1, stats->num_features),
              loc->root.c_str(), loc->dataset.c_str(),
              stats->elapsed_seconds);
  return 0;
}

int RunTrainCmd(const std::vector<std::string>& args) {
  std::string model_name = "gcn", input, output, task = "single",
              val_input, sync = "async", failpoints;
  int64_t layers = 2, hidden = 16, classes = 2, workers = 2, epochs = 10,
          batch = 32, heads = 1, staleness = 1, prefetch = 2,
          checkpoint_every = 0;
  double lr = 0.01, dropout = 0.0;
  bool stream = false, no_pipeline = false, resume = false;
  FlagParser parser;
  parser.AddString("m", &model_name, "model (gcn|graphsage|gat)")
      .AddString("i", &input, "training features <dfs-root>:<dataset>")
      .AddString("val", &val_input, "validation features <dfs-root>:<dataset>")
      .AddString("t", &task, "task (single|multi|auc)")
      .AddInt("layers", &layers, "GNN depth")
      .AddInt("hidden", &hidden, "hidden width")
      .AddInt("classes", &classes, "output width")
      .AddInt("heads", &heads, "GAT attention heads")
      .AddInt("workers", &workers, "trainer workers")
      .AddInt("epochs", &epochs, "training epochs")
      .AddInt("batch", &batch, "batch size")
      .AddString("sync", &sync, "consistency (async|bsp|ssp)")
      .AddInt("staleness", &staleness,
              "SSP clock slack in batches (-1 = unbounded, 0 = BSP-exact)")
      .AddInt("prefetch", &prefetch, "pipeline reader queue depth")
      .AddBool("stream", &stream,
               "stream features off the DFS (O(prefetch x batch) memory)")
      .AddBool("no-pipeline", &no_pipeline,
               "run the stages inline (disables the training pipeline)")
      .AddDouble("lr", &lr, "Adam learning rate")
      .AddDouble("dropout", &dropout, "dropout probability")
      .AddInt("checkpoint-every-batches", &checkpoint_every,
              "write a resumable mid-epoch checkpoint every N global "
              "batches (0 = epoch-boundary checkpoints only)")
      .AddBool("resume", &resume,
               "resume from the latest mid-epoch checkpoint on the input "
               "DFS root if one exists")
      .AddString("failpoints", &failpoints,
                 "fault-injection spec, e.g. 'ps.push=error(0.1);seed=7'")
      .AddString("o", &output, "model output <dfs-root>:<dataset>");
  if (agl::Status s = parser.Parse(args); !s.ok()) return Fail(s);
  if (input.empty() || output.empty()) {
    std::fprintf(stderr, "train requires -i and -o\n%s",
                 parser.Help().c_str());
    return 1;
  }
  if (agl::Status s = ArmFailpoints(failpoints); !s.ok()) return Fail(s);

  auto in_loc = ParseDfsLocation(input);
  if (!in_loc.ok()) return Fail(in_loc.status());
  auto dfs = mr::LocalDfs::Open(in_loc->root);
  if (!dfs.ok()) return Fail(dfs.status());

  // Streaming keeps memory bounded: only the first feature is read up
  // front (the input width is needed to shape the model).
  std::vector<subgraph::GraphFeature> features;
  std::unique_ptr<trainer::DfsFeatureSource> source;
  int64_t in_dim = 0;
  if (stream) {
    auto src = trainer::DfsFeatureSource::Open(*dfs, in_loc->dataset);
    if (!src.ok()) return Fail(src.status());
    source = std::make_unique<trainer::DfsFeatureSource>(std::move(*src));
    // Probe part files until the first record (leading parts may be
    // empty); read errors surface as themselves, not as "empty dataset".
    for (int64_t part = 0; part < source->num_parts() && !in_dim; ++part) {
      agl::Status probe = source->ScanPart(
          part, [&in_dim](subgraph::GraphFeature gf) {
            in_dim = gf.node_features.cols();
            return agl::Status::Aborted("first record read");
          });
      if (!probe.ok() && probe.code() != agl::StatusCode::kAborted) {
        return Fail(probe);
      }
    }
    if (!in_dim) {
      return Fail(agl::Status::InvalidArgument("no training features"));
    }
  } else {
    auto loaded = LoadGraphFeatures(*dfs, in_loc->dataset);
    if (!loaded.ok()) return Fail(loaded.status());
    features = std::move(loaded).value();
    if (features.empty()) {
      return Fail(agl::Status::InvalidArgument("no training features"));
    }
    in_dim = features[0].node_features.cols();
  }

  std::vector<subgraph::GraphFeature> val;
  if (!val_input.empty()) {
    auto val_loc = ParseDfsLocation(val_input);
    if (!val_loc.ok()) return Fail(val_loc.status());
    auto val_dfs = mr::LocalDfs::Open(val_loc->root);
    if (!val_dfs.ok()) return Fail(val_dfs.status());
    auto v = LoadGraphFeatures(*val_dfs, val_loc->dataset);
    if (!v.ok()) return Fail(v.status());
    val = std::move(v).value();
  }

  trainer::TrainerConfig config;
  auto type = gnn::ParseModelType(model_name);
  if (!type.ok()) return Fail(type.status());
  config.model.type = *type;
  config.model.num_layers = static_cast<int>(layers);
  config.model.in_dim = in_dim;
  config.model.hidden_dim = hidden;
  config.model.out_dim = classes;
  config.model.gat_heads = static_cast<int>(heads);
  config.model.dropout = static_cast<float>(dropout);
  config.task = task == "multi"  ? trainer::TaskKind::kMultiLabel
                : task == "auc" ? trainer::TaskKind::kBinaryAuc
                                : trainer::TaskKind::kSingleLabel;
  if (sync == "async") {
    config.sync_mode = trainer::SyncMode::kAsync;
  } else if (sync == "bsp") {
    config.sync_mode = trainer::SyncMode::kBsp;
  } else if (sync == "ssp") {
    config.sync_mode = trainer::SyncMode::kSsp;
  } else {
    return Fail(agl::Status::InvalidArgument(
        "unknown --sync '" + sync + "' (async|bsp|ssp)"));
  }
  config.staleness_bound =
      staleness < 0 ? ps::kUnboundedStaleness : staleness;
  config.prefetch_batches = static_cast<int>(prefetch);
  config.use_pipeline = !no_pipeline;
  config.num_workers = static_cast<int>(workers);
  config.epochs = static_cast<int>(epochs);
  config.batch_size = static_cast<int>(batch);
  config.adam.lr = static_cast<float>(lr);
  config.verbose = true;
  if (checkpoint_every > 0 || resume) {
    // Mid-epoch checkpoints live next to the training features; the
    // trainer validates mode compatibility (async/streaming reject them).
    config.checkpoint_dfs = &*dfs;
    config.checkpoint_every_batches = checkpoint_every;
    config.resume = resume;
  }
  // The probe already opened the source; reuse it instead of letting the
  // facade list the dataset a second time.
  auto report = stream
                    ? trainer::GraphTrainer(config).TrainStreaming(*source,
                                                                   val)
                    : GraphTrainer(config, features, val);
  if (!report.ok()) return Fail(report.status());

  auto out_loc = ParseDfsLocation(output);
  if (!out_loc.ok()) return Fail(out_loc.status());
  auto out_dfs = mr::LocalDfs::Open(out_loc->root);
  if (!out_dfs.ok()) return Fail(out_dfs.status());
  if (agl::Status s = out_dfs->WriteDataset(
          out_loc->dataset, {SerializeState(report->final_state)}, 1);
      !s.ok()) {
    return Fail(s);
  }
  std::printf("trained %s: best val metric %.4f, model -> %s:%s\n",
              model_name.c_str(), report->best_val_metric,
              out_loc->root.c_str(), out_loc->dataset.c_str());
  return 0;
}

/// The in_dim a trained state dict was built for, read off its layer-0
/// parameters (rows of the input-side weight of the given model type).
agl::Result<int64_t> ModelStateInDim(
    const std::map<std::string, tensor::Tensor>& state,
    gnn::ModelType type) {
  const char* key = nullptr;
  switch (type) {
    case gnn::ModelType::kGcn:
      key = "layer0.linear.weight";
      break;
    case gnn::ModelType::kGraphSage:
      key = "layer0.self.weight";
      break;
    case gnn::ModelType::kGat:
      key = "layer0.weight_0";
      break;
  }
  auto it = state.find(key);
  if (it == state.end()) {
    return agl::Status::InvalidArgument(
        std::string("model state has no '") + key +
        "' parameter — was the model trained with a different --model-type?");
  }
  return it->second.rows();
}

int RunInferCmd(const std::vector<std::string>& args) {
  std::string model_loc_str, node_csv, edge_csv, output, model_name = "gcn",
              failpoints;
  int64_t layers = 2, hidden = 16, classes = 2, heads = 1, workers = 4,
          shards = 1, batch_slices = 1, cache_mb = 0;
  FlagParser parser;
  parser.AddString("m", &model_loc_str, "trained model <dfs-root>:<dataset>")
      .AddString("model-type", &model_name, "model (gcn|graphsage|gat)")
      .AddString("n", &node_csv, "node table CSV")
      .AddString("e", &edge_csv, "edge table CSV")
      .AddInt("layers", &layers, "GNN depth")
      .AddInt("hidden", &hidden, "hidden width")
      .AddInt("classes", &classes, "output width")
      .AddInt("heads", &heads, "GAT attention heads")
      .AddInt("workers", &workers, "MapReduce workers")
      .AddInt("shards", &shards, "inference shards")
      .AddInt("batch-slices", &batch_slices,
              "target slices batched through the pipeline (>1 enables the "
              "cross-slice embedding cache path)")
      .AddInt("cache-mb", &cache_mb,
              "embedding-cache budget in MiB (0 = off, -1 = unbounded); "
              "evictions spill to <dfs-root>/infer_cache.spill")
      .AddString("failpoints", &failpoints,
                 "fault-injection spec, e.g. 'infer.spill=crash@3x1'")
      .AddString("o", &output, "scores CSV output path");
  if (agl::Status s = parser.Parse(args); !s.ok()) return Fail(s);
  if (model_loc_str.empty() || node_csv.empty() || edge_csv.empty() ||
      output.empty()) {
    std::fprintf(stderr, "infer requires -m, -n, -e and -o\n%s",
                 parser.Help().c_str());
    return 1;
  }
  if (agl::Status s = ArmFailpoints(failpoints); !s.ok()) return Fail(s);

  // Validate every input artifact up front, so a broken pipeline names the
  // artifact that is wrong instead of failing deep inside the rounds.
  auto model_loc = ParseDfsLocation(model_loc_str);
  if (!model_loc.ok()) return Fail(model_loc.status());
  auto dfs = mr::LocalDfs::Open(model_loc->root);
  if (!dfs.ok()) return Fail(dfs.status());
  if (!dfs->DatasetExists(model_loc->dataset)) {
    return Fail(agl::Status::NotFound(
        "model dataset '" + model_loc->dataset + "' not found under DFS "
        "root '" + model_loc->root + "' — train one first: agl_cli train "
        "... -o " + model_loc_str));
  }
  auto records = dfs->ReadDataset(model_loc->dataset);
  if (!records.ok()) return Fail(records.status());
  if (records->size() != 1) {
    return Fail(agl::Status::Corruption(
        "model dataset '" + model_loc_str + "' must hold exactly 1 record, "
        "found " + std::to_string(records->size()) +
        " — is it a GraphFeature dataset instead of a trained model?"));
  }
  auto state = ParseState((*records)[0]);
  if (!state.ok()) {
    return Fail(agl::Status(state.status().code(),
                            "model dataset '" + model_loc_str +
                                "' does not parse as a trained state "
                                "dict: " + state.status().message()));
  }

  auto type = gnn::ParseModelType(model_name);
  if (!type.ok()) return Fail(type.status());
  auto model_in_dim = ModelStateInDim(*state, *type);
  if (!model_in_dim.ok()) return Fail(model_in_dim.status());
  const int state_layers = infer::CountStateLayers(*state);
  if (state_layers != static_cast<int>(layers)) {
    return Fail(agl::Status::InvalidArgument(
        "model dataset '" + model_loc_str + "' holds " +
        std::to_string(state_layers) + " layers but --layers is " +
        std::to_string(layers)));
  }

  auto nodes = flat::ReadNodeCsv(node_csv);
  if (!nodes.ok()) return Fail(nodes.status());
  auto edges = flat::ReadEdgeCsv(edge_csv);
  if (!edges.ok()) return Fail(edges.status());
  if (nodes->empty()) {
    return Fail(agl::Status::InvalidArgument("node table '" + node_csv +
                                             "' has no rows"));
  }
  const int64_t feature_dim =
      static_cast<int64_t>((*nodes)[0].features.size());
  for (const flat::NodeRecord& n : *nodes) {
    if (static_cast<int64_t>(n.features.size()) != feature_dim) {
      return Fail(agl::Status::InvalidArgument(
          "node table '" + node_csv + "' has inconsistent feature widths: "
          "node " + std::to_string(n.id) + " has " +
          std::to_string(n.features.size()) + ", node " +
          std::to_string((*nodes)[0].id) + " has " +
          std::to_string(feature_dim)));
    }
  }
  if (feature_dim != *model_in_dim) {
    return Fail(agl::Status::InvalidArgument(
        "model dataset '" + model_loc_str + "' was trained for in_dim=" +
        std::to_string(*model_in_dim) + " but node table '" + node_csv +
        "' has " + std::to_string(feature_dim) +
        "-dim features — wrong model or wrong node table"));
  }

  infer::InferConfig config;
  config.model.type = *type;
  config.model.num_layers = static_cast<int>(layers);
  config.model.in_dim = feature_dim;
  config.model.hidden_dim = hidden;
  config.model.out_dim = classes;
  config.model.gat_heads = static_cast<int>(heads);
  config.job.num_workers = static_cast<int>(workers);
  config.num_shards = static_cast<int>(shards);
  config.batch_slices = static_cast<int>(batch_slices);
  // With a single slice every (node, round) is reduced exactly once, so a
  // cache could never hit — don't pay its bookkeeping for nothing.
  const bool batched = batch_slices > 1;
  if (!batched && cache_mb != 0) {
    std::fprintf(stderr,
                 "note: --cache-mb only takes effect with --batch-slices > "
                 "1; running unbatched without a cache\n");
  }
  if (batched) {
    config.cache_budget_bytes =
        cache_mb < 0 ? int64_t{-1} : cache_mb * (int64_t{1} << 20);
    if (config.cache_budget_bytes > 0) {
      config.cache_spill_path = dfs->root() + "/infer_cache.spill";
    }
  }
  // The unified facade routes to the batched driver iff the config enables
  // it (batch_slices > 1 / cache on) — same scores either way.
  auto result = Run(config, *state, *nodes, *edges);
  if (!result.ok()) return Fail(result.status());

  std::FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    return Fail(agl::Status::IoError("cannot write " + output));
  }
  std::fprintf(f, "# node_id,scores...\n");
  for (const auto& [id, scores] : result->scores) {
    std::fprintf(f, "%llu", static_cast<unsigned long long>(id));
    for (float v : scores) std::fprintf(f, ",%g", v);
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  std::printf("inferred %zu nodes in %.2fs -> %s\n", result->scores.size(),
              result->costs.time_seconds, output.c_str());
  if (batched) {
    std::printf(
        "batched: %d slices, %lld embedding evals, cache %lld hits / "
        "%lld misses (%lld spilled, %lld spill hits)\n",
        result->num_slices,
        static_cast<long long>(result->costs.embedding_evaluations),
        static_cast<long long>(result->costs.cache_hits),
        static_cast<long long>(result->costs.cache_misses),
        static_cast<long long>(result->costs.cache_spilled),
        static_cast<long long>(result->costs.cache_spill_hits));
  }
  return 0;
}

int RunGenDataCmd(const std::vector<std::string>& args) {
  std::string kind = "uug", nodes_out, edges_out;
  int64_t num_nodes = 1000, feature_dim = 16;
  FlagParser parser;
  parser.AddString("d", &kind, "dataset kind (uug|cora|ppi)")
      .AddInt("n", &num_nodes, "node count (uug/cora)")
      .AddInt("f", &feature_dim, "feature dim (uug)")
      .AddString("nodes-out", &nodes_out, "node table CSV path")
      .AddString("edges-out", &edges_out, "edge table CSV path");
  if (agl::Status s = parser.Parse(args); !s.ok()) return Fail(s);
  if (nodes_out.empty() || edges_out.empty()) {
    std::fprintf(stderr, "gendata requires --nodes-out and --edges-out\n%s",
                 parser.Help().c_str());
    return 1;
  }
  data::Dataset ds;
  if (kind == "uug") {
    data::UugLikeOptions opts;
    opts.num_nodes = num_nodes;
    opts.feature_dim = feature_dim;
    opts.train_size = num_nodes / 2;
    opts.val_size = num_nodes / 8;
    opts.test_size = num_nodes / 4;
    ds = data::MakeUugLike(opts);
  } else if (kind == "cora") {
    data::CoraLikeOptions opts;
    opts.num_nodes = num_nodes;
    opts.val_size = num_nodes / 8;
    opts.test_size = num_nodes / 4;
    ds = data::MakeCoraLike(opts);
  } else if (kind == "ppi") {
    ds = data::MakePpiLike({});
  } else {
    return Fail(agl::Status::InvalidArgument("unknown dataset: " + kind));
  }
  if (agl::Status s = flat::WriteNodeCsvFile(nodes_out, ds.nodes); !s.ok()) {
    return Fail(s);
  }
  if (agl::Status s = flat::WriteEdgeCsvFile(edges_out, ds.edges); !s.ok()) {
    return Fail(s);
  }
  std::printf("generated %s: %lld nodes -> %s, %lld edges -> %s\n",
              ds.name.c_str(), static_cast<long long>(ds.num_nodes()),
              nodes_out.c_str(), static_cast<long long>(ds.num_edges()),
              edges_out.c_str());
  return 0;
}

/// `agl_cli analytics <pagerank|cc|sssp|lp> ...` — run a vertex program
/// over CSV tables. The result can go to a scores CSV (-o), a GraphFeatures
/// dataset on the DFS (--dfs-out), and/or an augmented node-table CSV with
/// the value appended as one extra feature column
/// (--augmented-nodes-out), ready to feed back into `agl_cli graphflat`.
int RunAnalyticsCmd(const std::vector<std::string>& args) {
  if (args.empty() || args[0].empty() || args[0][0] == '-') {
    std::fprintf(stderr,
                 "usage: agl_cli analytics <pagerank|cc|sssp|lp> [flags]\n");
    return 1;
  }
  const std::string program_name = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());

  std::string node_csv, edge_csv, output, dfs_out, augmented_out, failpoints;
  int64_t workers = 4, shards = 1, max_supersteps = 100, source = 0;
  double damping = 0.85, tolerance = 1e-10;
  FlagParser parser;
  parser.AddString("n", &node_csv, "node table CSV")
      .AddString("e", &edge_csv, "edge table CSV")
      .AddString("o", &output, "scores CSV (node_id,value per line)")
      .AddString("dfs-out", &dfs_out,
                 "also store as GraphFeatures: <dfs-root>:<dataset>")
      .AddString("augmented-nodes-out", &augmented_out,
                 "node CSV with the value appended as a feature column")
      .AddInt("workers", &workers, "MapReduce workers")
      .AddInt("shards", &shards, "analytics shards (output is invariant)")
      .AddInt("max-supersteps", &max_supersteps, "superstep cap")
      .AddDouble("damping", &damping, "pagerank damping factor")
      .AddDouble("tolerance", &tolerance, "pagerank activation tolerance")
      .AddInt("source", &source, "sssp source node id")
      .AddString("failpoints", &failpoints, "fault-injection spec");
  if (agl::Status s = parser.Parse(rest); !s.ok()) return Fail(s);
  if (node_csv.empty() || edge_csv.empty()) {
    std::fprintf(stderr, "analytics requires -n and -e\n%s",
                 parser.Help().c_str());
    return 1;
  }
  if (output.empty() && dfs_out.empty() && augmented_out.empty()) {
    std::fprintf(stderr,
                 "analytics requires at least one of -o, --dfs-out, "
                 "--augmented-nodes-out\n%s",
                 parser.Help().c_str());
    return 1;
  }
  if (agl::Status s = ArmFailpoints(failpoints); !s.ok()) return Fail(s);

  analytics::ProgramOptions options;
  options.damping = damping;
  options.tolerance = tolerance;
  options.source = static_cast<flat::NodeId>(source);
  auto program = analytics::MakeProgram(program_name, options);
  if (!program.ok()) return Fail(program.status());

  auto nodes = flat::ReadNodeCsv(node_csv);
  if (!nodes.ok()) return Fail(nodes.status());
  auto edges = flat::ReadEdgeCsv(edge_csv);
  if (!edges.ok()) return Fail(edges.status());

  analytics::AnalyticsConfig config;
  config.max_supersteps = static_cast<int>(max_supersteps);
  config.num_shards = static_cast<int>(shards);
  config.job.num_workers = static_cast<int>(workers);

  agl::Result<analytics::AnalyticsResult> result =
      agl::Status::Internal("analytics did not run");
  if (!dfs_out.empty()) {
    auto loc = ParseDfsLocation(dfs_out);
    if (!loc.ok()) return Fail(loc.status());
    auto dfs = mr::LocalDfs::Open(loc->root);
    if (!dfs.ok()) return Fail(dfs.status());
    result = Run(config, **program, *nodes, *edges, &*dfs, loc->dataset);
  } else {
    result = Run(config, **program, *nodes, *edges);
  }
  if (!result.ok()) return Fail(result.status());

  if (!output.empty()) {
    std::FILE* f = std::fopen(output.c_str(), "w");
    if (f == nullptr) {
      return Fail(agl::Status::IoError("cannot write " + output));
    }
    std::fprintf(f, "# node_id,%s\n", program_name.c_str());
    for (const auto& [id, value] : result->values) {
      std::fprintf(f, "%llu,%.17g\n", static_cast<unsigned long long>(id),
                   value);
    }
    std::fclose(f);
  }
  if (!augmented_out.empty()) {
    auto augmented = analytics::AugmentNodeTable(*nodes, *result);
    if (!augmented.ok()) return Fail(augmented.status());
    if (agl::Status s = flat::WriteNodeCsvFile(augmented_out, *augmented);
        !s.ok()) {
      return Fail(s);
    }
  }
  std::printf(
      "%s: %lld vertices, %lld gather edges, %d supersteps (%s) in %.2fs\n",
      program_name.c_str(), static_cast<long long>(result->stats.num_vertices),
      static_cast<long long>(result->stats.num_gather_edges),
      result->stats.supersteps,
      result->stats.converged ? "converged" : "superstep cap hit",
      result->stats.elapsed_seconds);
  return 0;
}

/// `agl_cli serve` — drive the always-on inference service from a script
/// file (our stand-in for a network front end): one operation per line,
///
///   score <id,id,...>                 submit a scoring request
///   add-edge <src> <dst> <w> [f,...]  mutation (serve/mutation.h)
///   remove-edge <src> <dst>           mutation
///   update-features <node> <f,...>    mutation
///   persist                           publish the store (index + spill)
///
/// Requests admitted after a mutation line observe it — the service's
/// FIFO consistency contract. The store persists under the model's DFS
/// root, so a re-run of the same command starts warm and reports nonzero
/// cache hits — unless the script mutated the graph, in which case the
/// persisted store describes the mutated tables, a re-run from the
/// original CSVs fingerprints differently, and the service deliberately
/// starts cold rather than serve stale embeddings. Scores go to -o as
/// "request,node_id,scores...".
int RunServeCmd(const std::vector<std::string>& args) {
  std::string model_loc_str, node_csv, edge_csv, script_path, output,
      model_name = "gcn", store_name = "embedding_store", features_dataset,
      failpoints;
  int64_t layers = 2, hidden = 16, classes = 2, heads = 1, workers = 4,
          shards = 1, batch_slices = 2, store_budget_mb = -1,
          max_pending = 256, max_batch_targets = 1024, hops = 2;
  bool no_persist = false;
  FlagParser parser;
  parser.AddString("m", &model_loc_str, "trained model <dfs-root>:<dataset>")
      .AddString("model-type", &model_name, "model (gcn|graphsage|gat)")
      .AddString("n", &node_csv, "node table CSV")
      .AddString("e", &edge_csv, "edge table CSV")
      .AddString("script", &script_path,
                 "serving script: score/add-edge/remove-edge/"
                 "update-features/persist lines")
      .AddInt("layers", &layers, "GNN depth")
      .AddInt("hidden", &hidden, "hidden width")
      .AddInt("classes", &classes, "output width")
      .AddInt("heads", &heads, "GAT attention heads")
      .AddInt("workers", &workers, "MapReduce workers")
      .AddInt("shards", &shards, "inference shards")
      .AddInt("batch-slices", &batch_slices,
              "slices each coalesced batch is partitioned into")
      .AddString("store", &store_name,
                 "persistent embedding store name under the model DFS root")
      .AddInt("store-budget-mb", &store_budget_mb,
              "resident budget of the store in MiB (-1 = unbounded)")
      .AddInt("max-pending", &max_pending, "admission queue bound")
      .AddInt("max-batch-targets", &max_batch_targets,
              "coalescing cap (targets per pipeline pass)")
      .AddString("features", &features_dataset,
                 "flattened dataset (on the model DFS root) to keep fresh "
                 "via incremental re-flatten")
      .AddInt("hops", &hops, "GraphFlat hops of --features")
      .AddBool("no-persist", &no_persist,
               "skip the final store publish on exit")
      .AddString("failpoints", &failpoints,
                 "fault-injection spec, e.g. 'infer.spill=error(0.05)'")
      .AddString("o", &output, "scores CSV output path");
  if (agl::Status s = parser.Parse(args); !s.ok()) return Fail(s);
  if (model_loc_str.empty() || node_csv.empty() || edge_csv.empty() ||
      script_path.empty() || output.empty()) {
    std::fprintf(stderr,
                 "serve requires -m, -n, -e, --script and -o\n%s",
                 parser.Help().c_str());
    return 1;
  }
  if (agl::Status s = ArmFailpoints(failpoints); !s.ok()) return Fail(s);

  auto model_loc = ParseDfsLocation(model_loc_str);
  if (!model_loc.ok()) return Fail(model_loc.status());
  auto dfs = mr::LocalDfs::Open(model_loc->root);
  if (!dfs.ok()) return Fail(dfs.status());
  auto records = dfs->ReadDataset(model_loc->dataset);
  if (!records.ok()) return Fail(records.status());
  if (records->size() != 1) {
    return Fail(agl::Status::Corruption(
        "model dataset '" + model_loc_str + "' must hold exactly 1 record"));
  }
  auto state = ParseState((*records)[0]);
  if (!state.ok()) return Fail(state.status());
  auto nodes = flat::ReadNodeCsv(node_csv);
  if (!nodes.ok()) return Fail(nodes.status());
  auto edges = flat::ReadEdgeCsv(edge_csv);
  if (!edges.ok()) return Fail(edges.status());
  if (nodes->empty()) {
    return Fail(agl::Status::InvalidArgument("empty node table"));
  }
  auto type = gnn::ParseModelType(model_name);
  if (!type.ok()) return Fail(type.status());

  serve::ServeConfig config;
  config.infer.model.type = *type;
  config.infer.model.num_layers = static_cast<int>(layers);
  config.infer.model.in_dim =
      static_cast<int64_t>((*nodes)[0].features.size());
  config.infer.model.hidden_dim = hidden;
  config.infer.model.out_dim = classes;
  config.infer.model.gat_heads = static_cast<int>(heads);
  config.infer.job.num_workers = static_cast<int>(workers);
  config.infer.num_shards = static_cast<int>(shards);
  config.infer.batch_slices = static_cast<int>(batch_slices);
  config.store_name = store_name;
  config.store_budget_bytes =
      store_budget_mb < 0 ? int64_t{-1} : store_budget_mb * (int64_t{1} << 20);
  config.max_pending = static_cast<std::size_t>(max_pending);
  config.max_batch_targets = static_cast<std::size_t>(max_batch_targets);
  if (!features_dataset.empty()) {
    config.features_dataset = features_dataset;
    config.flat.hops = static_cast<int>(hops);
    config.flat.job.num_workers = static_cast<int>(workers);
  }

  std::ifstream script(script_path);
  if (!script) {
    return Fail(agl::Status::IoError("cannot read " + script_path));
  }
  auto service = Run(config, *state, std::move(*nodes), std::move(*edges),
                     &*dfs);
  if (!service.ok()) return Fail(service.status());

  std::FILE* out = std::fopen(output.c_str(), "w");
  if (out == nullptr) {
    return Fail(agl::Status::IoError("cannot write " + output));
  }
  std::fprintf(out, "# request,node_id,scores...\n");
  std::string line;
  int lineno = 0, request = 0;
  while (std::getline(script, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream in(line);
    std::string op;
    in >> op;
    agl::Status status = agl::Status::OK();
    if (op == "score") {
      std::string ids_csv;
      in >> ids_csv;
      std::vector<flat::NodeId> targets;
      std::stringstream ids(ids_csv);
      std::string id;
      while (std::getline(ids, id, ',')) {
        targets.push_back(std::strtoull(id.c_str(), nullptr, 10));
      }
      auto scores = (*service)->Score(std::move(targets));
      if (scores.ok()) {
        for (const auto& [node, vec] : *scores) {
          std::fprintf(out, "%d,%llu", request,
                       static_cast<unsigned long long>(node));
          for (float v : vec) std::fprintf(out, ",%g", v);
          std::fprintf(out, "\n");
        }
        ++request;
      } else {
        status = scores.status();
      }
    } else if (op == "persist") {
      status = (*service)->Persist();
    } else {
      auto mutation = serve::Mutation::Parse(line);
      status = mutation.ok()
                   ? (*service)->ApplyMutations({*mutation})
                   : mutation.status();
    }
    if (!status.ok()) {
      std::fclose(out);
      return Fail(agl::Status(
          status.code(), script_path + ":" + std::to_string(lineno) + ": " +
                             status.message()));
    }
  }
  std::fclose(out);
  if (!no_persist) {
    if (agl::Status s = (*service)->Persist(); !s.ok()) return Fail(s);
  }
  const serve::ServeStats stats = (*service)->stats();
  if (agl::Status s = (*service)->Shutdown(); !s.ok()) return Fail(s);
  std::printf(
      "served %lld requests in %lld passes (%.2fs inference), "
      "%lld mutations in %lld batches\n",
      static_cast<long long>(stats.served),
      static_cast<long long>(stats.batches), stats.infer_seconds,
      static_cast<long long>(stats.mutations_applied),
      static_cast<long long>(stats.mutation_batches));
  std::printf(
      "store[%s]: %s, %lld hits / %lld misses (%lld spill hits), "
      "%lld invalidation floors -> %s\n",
      store_name.c_str(), stats.opened_warm ? "warm" : "cold",
      static_cast<long long>(stats.store.hits),
      static_cast<long long>(stats.store.misses),
      static_cast<long long>(stats.store.spill_hits),
      static_cast<long long>(stats.invalidated_nodes), output.c_str());
  return 0;
}

/// The supervision/transport counters of a multi-process run — the
/// observability surface of the distributed runtime.
void PrintDriverStats(const driver::DriverStats& stats) {
  std::printf(
      "driver: %lld spawns (%lld restarts), exits clean=%lld signal=%lld "
      "error=%lld\n",
      static_cast<long long>(stats.spawns),
      static_cast<long long>(stats.restarts),
      static_cast<long long>(stats.clean_exits),
      static_cast<long long>(stats.signal_exits),
      static_cast<long long>(stats.error_exits));
  const flat::ExchangeStats& ex = stats.exchange;
  if (ex.publishes + ex.collects + ex.allgathers > 0) {
    std::printf(
        "exchange: %lld publishes / %lld collects / %lld allgathers, "
        "%lld records out / %lld in, %lld bytes out / %lld in, "
        "%.2fs waiting on peers\n",
        static_cast<long long>(ex.publishes),
        static_cast<long long>(ex.collects),
        static_cast<long long>(ex.allgathers),
        static_cast<long long>(ex.records_published),
        static_cast<long long>(ex.records_collected),
        static_cast<long long>(ex.bytes_published),
        static_cast<long long>(ex.bytes_collected), ex.wait_seconds);
  }
  const ps::PsTransportStats& tp = stats.ps_transport;
  if (tp.connections + tp.requests > 0) {
    std::printf(
        "ps-transport: %lld connections, %lld requests (%lld failed), "
        "%lld bytes in / %lld out\n",
        static_cast<long long>(tp.connections),
        static_cast<long long>(tp.requests),
        static_cast<long long>(tp.failed_requests),
        static_cast<long long>(tp.bytes_received),
        static_cast<long long>(tp.bytes_sent));
  }
}

/// `agl_cli driver <graphflat|analytics|train>` — run a job with its
/// shards/workers promoted to real OS processes (this binary re-exec'd),
/// coordinated through a shared DFS root and, for training, a wire
/// parameter server hosted by the driver. Output is byte-identical to the
/// in-process subcommands; on top of each mode's usual summary the driver
/// prints its supervision and transport counters.
///
/// --worker-failpoints arms a spec in each worker's FIRST attempt only
/// (e.g. 'trainer.step=crash@3'), so an injected crash exercises the
/// classified-retry path while every relaunch runs clean; --failpoints
/// arms the driver process itself (e.g. 'driver.spawn=error(1)').
int RunDriverCmd(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: agl_cli driver <graphflat|analytics|train> [flags]\n");
    return 1;
  }
  const std::string mode = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());

  std::string node_csv, edge_csv, input, val_input, output, coord,
      job_prefix = "job", program_name = "pagerank", model_name = "gcn",
      sampling = "none", task = "single", sync = "bsp", failpoints,
      worker_failpoints;
  int64_t hops = 2, max_neighbors = 0, hub_threshold = 10000, workers = 2,
          shards = 2, max_restarts = 2, max_supersteps = 100, source = 0,
          layers = 2, hidden = 16, classes = 2, heads = 1, epochs = 10,
          batch = 32, staleness = 0;
  double damping = 0.85, tolerance = 1e-10, lr = 0.01, dropout = 0.0;
  FlagParser parser;
  parser
      .AddString("coord", &coord,
                 "coordination DFS root (job specs, exchange buckets, "
                 "worker reports)")
      .AddString("job-prefix", &job_prefix,
                 "dataset namespace for this job on the coordination root")
      .AddInt("max-restarts", &max_restarts,
              "relaunches granted to a signal-killed worker (trainer: "
              "broken epoch) before the job fails")
      .AddString("worker-failpoints", &worker_failpoints,
                 "fault spec armed in each worker's first attempt only")
      .AddString("failpoints", &failpoints,
                 "fault spec armed in the driver process")
      .AddString("n", &node_csv, "node table CSV (graphflat|analytics)")
      .AddString("e", &edge_csv, "edge table CSV (graphflat|analytics)")
      .AddInt("shards", &shards, "shard processes (graphflat|analytics)")
      .AddInt("workers", &workers,
              "per-shard MapReduce workers; train: worker processes")
      .AddInt("h", &hops, "graphflat: neighborhood hops")
      .AddString("s", &sampling,
                 "graphflat: sampling strategy (none|uniform|weighted|topk)")
      .AddInt("max-neighbors", &max_neighbors, "graphflat: sampling cap")
      .AddInt("hub-threshold", &hub_threshold,
              "graphflat: re-indexing threshold")
      .AddString("program", &program_name,
                 "analytics: vertex program (pagerank|cc|sssp|lp)")
      .AddInt("max-supersteps", &max_supersteps, "analytics: superstep cap")
      .AddDouble("damping", &damping, "analytics: pagerank damping factor")
      .AddDouble("tolerance", &tolerance,
                 "analytics: pagerank activation tolerance")
      .AddInt("source", &source, "analytics: sssp source node id")
      .AddString("i", &input, "train: features <dfs-root>:<dataset>")
      .AddString("val", &val_input,
                 "train: validation features <dfs-root>:<dataset>")
      .AddString("m", &model_name, "train: model (gcn|graphsage|gat)")
      .AddString("t", &task, "train: task (single|multi|auc)")
      .AddString("sync", &sync, "train: consistency (bsp|ssp)")
      .AddInt("staleness", &staleness, "train: SSP clock slack in batches")
      .AddInt("layers", &layers, "train: GNN depth")
      .AddInt("hidden", &hidden, "train: hidden width")
      .AddInt("classes", &classes, "train: output width")
      .AddInt("heads", &heads, "train: GAT attention heads")
      .AddInt("epochs", &epochs, "train: epochs")
      .AddInt("batch", &batch, "train: batch size")
      .AddDouble("lr", &lr, "train: Adam learning rate")
      .AddDouble("dropout", &dropout, "train: dropout probability")
      .AddString("o", &output,
                 "output: graphflat/train <dfs-root>:<dataset>, analytics "
                 "scores CSV");
  if (agl::Status s = parser.Parse(rest); !s.ok()) return Fail(s);
  if (coord.empty() || output.empty()) {
    std::fprintf(stderr, "driver requires --coord and -o\n%s",
                 parser.Help().c_str());
    return 1;
  }
  if (agl::Status s = ArmFailpoints(failpoints); !s.ok()) return Fail(s);

  auto coord_dfs = mr::LocalDfs::Open(coord);
  if (!coord_dfs.ok()) return Fail(coord_dfs.status());
  driver::DriverOptions options;
  options.dfs = &*coord_dfs;
  options.job_prefix = job_prefix;
  options.max_restarts = static_cast<int>(max_restarts);
  if (!worker_failpoints.empty()) {
    if (agl::Status s = fail::ValidateSpec(worker_failpoints); !s.ok()) {
      return Fail(s);
    }
    options.first_attempt_env.push_back("AGL_FAILPOINTS=" +
                                        worker_failpoints);
  }
  driver::DriverStats stats;

  if (mode == "graphflat") {
    if (node_csv.empty() || edge_csv.empty()) {
      std::fprintf(stderr, "driver graphflat requires -n and -e\n");
      return 1;
    }
    auto nodes = flat::ReadNodeCsv(node_csv);
    if (!nodes.ok()) return Fail(nodes.status());
    auto edges = flat::ReadEdgeCsv(edge_csv);
    if (!edges.ok()) return Fail(edges.status());
    auto loc = ParseDfsLocation(output);
    if (!loc.ok()) return Fail(loc.status());
    auto out_dfs = mr::LocalDfs::Open(loc->root);
    if (!out_dfs.ok()) return Fail(out_dfs.status());

    flat::GraphFlatConfig config;
    config.hops = static_cast<int>(hops);
    auto strategy = sampling::ParseStrategy(sampling);
    if (!strategy.ok()) return Fail(strategy.status());
    config.sampler = {*strategy, max_neighbors};
    config.hub_threshold = hub_threshold;
    config.job.num_workers = static_cast<int>(workers);
    config.num_shards = static_cast<int>(shards);
    auto result = driver::RunGraphFlatProcesses(
        options, config, *nodes, *edges, &*out_dfs, loc->dataset, &stats);
    if (!result.ok()) return Fail(result.status());
    std::printf(
        "GraphFlat[%lld shard processes]: %lld features -> %s:%s in %.2fs\n",
        static_cast<long long>(shards),
        static_cast<long long>(result->num_features), loc->root.c_str(),
        loc->dataset.c_str(), result->elapsed_seconds);
  } else if (mode == "analytics") {
    if (node_csv.empty() || edge_csv.empty()) {
      std::fprintf(stderr, "driver analytics requires -n and -e\n");
      return 1;
    }
    auto nodes = flat::ReadNodeCsv(node_csv);
    if (!nodes.ok()) return Fail(nodes.status());
    auto edges = flat::ReadEdgeCsv(edge_csv);
    if (!edges.ok()) return Fail(edges.status());

    analytics::AnalyticsConfig config;
    config.max_supersteps = static_cast<int>(max_supersteps);
    config.num_shards = static_cast<int>(shards);
    config.job.num_workers = static_cast<int>(workers);
    driver::ProgramSpec program;
    program.name = program_name;
    program.damping = damping;
    program.tolerance = tolerance;
    program.source = static_cast<flat::NodeId>(source);
    auto result = driver::RunAnalyticsProcesses(options, config, program,
                                                *nodes, *edges, &stats);
    if (!result.ok()) return Fail(result.status());

    std::FILE* f = std::fopen(output.c_str(), "w");
    if (f == nullptr) {
      return Fail(agl::Status::IoError("cannot write " + output));
    }
    std::fprintf(f, "# node_id,%s\n", program_name.c_str());
    for (const auto& [id, value] : result->values) {
      std::fprintf(f, "%llu,%.17g\n", static_cast<unsigned long long>(id),
                   value);
    }
    std::fclose(f);
    std::printf(
        "%s[%lld shard processes]: %lld vertices, %d supersteps (%s) in "
        "%.2fs\n",
        program_name.c_str(), static_cast<long long>(shards),
        static_cast<long long>(result->stats.num_vertices),
        result->stats.supersteps,
        result->stats.converged ? "converged" : "superstep cap hit",
        result->stats.elapsed_seconds);
  } else if (mode == "train") {
    if (input.empty()) {
      std::fprintf(stderr, "driver train requires -i\n");
      return 1;
    }
    auto in_loc = ParseDfsLocation(input);
    if (!in_loc.ok()) return Fail(in_loc.status());
    auto dfs = mr::LocalDfs::Open(in_loc->root);
    if (!dfs.ok()) return Fail(dfs.status());
    auto features = LoadGraphFeatures(*dfs, in_loc->dataset);
    if (!features.ok()) return Fail(features.status());
    if (features->empty()) {
      return Fail(agl::Status::InvalidArgument("no training features"));
    }
    std::vector<subgraph::GraphFeature> val;
    if (!val_input.empty()) {
      auto val_loc = ParseDfsLocation(val_input);
      if (!val_loc.ok()) return Fail(val_loc.status());
      auto val_dfs = mr::LocalDfs::Open(val_loc->root);
      if (!val_dfs.ok()) return Fail(val_dfs.status());
      auto v = LoadGraphFeatures(*val_dfs, val_loc->dataset);
      if (!v.ok()) return Fail(v.status());
      val = std::move(v).value();
    }

    trainer::TrainerConfig config;
    auto type = gnn::ParseModelType(model_name);
    if (!type.ok()) return Fail(type.status());
    config.model.type = *type;
    config.model.num_layers = static_cast<int>(layers);
    config.model.in_dim = (*features)[0].node_features.cols();
    config.model.hidden_dim = hidden;
    config.model.out_dim = classes;
    config.model.gat_heads = static_cast<int>(heads);
    config.model.dropout = static_cast<float>(dropout);
    config.task = task == "multi"  ? trainer::TaskKind::kMultiLabel
                  : task == "auc" ? trainer::TaskKind::kBinaryAuc
                                  : trainer::TaskKind::kSingleLabel;
    if (sync == "bsp") {
      config.sync_mode = trainer::SyncMode::kBsp;
    } else if (sync == "ssp") {
      config.sync_mode = trainer::SyncMode::kSsp;
    } else {
      return Fail(agl::Status::InvalidArgument(
          "unknown --sync '" + sync +
          "' (bsp|ssp; async has no replayable schedule across a process "
          "respawn)"));
    }
    config.staleness_bound = staleness;
    config.num_workers = static_cast<int>(workers);
    config.epochs = static_cast<int>(epochs);
    config.batch_size = static_cast<int>(batch);
    config.adam.lr = static_cast<float>(lr);
    auto report =
        driver::TrainProcesses(options, config, *features, val, &stats);
    if (!report.ok()) return Fail(report.status());

    auto out_loc = ParseDfsLocation(output);
    if (!out_loc.ok()) return Fail(out_loc.status());
    auto out_dfs = mr::LocalDfs::Open(out_loc->root);
    if (!out_dfs.ok()) return Fail(out_dfs.status());
    if (agl::Status s = out_dfs->WriteDataset(
            out_loc->dataset, {SerializeState(report->final_state)}, 1);
        !s.ok()) {
      return Fail(s);
    }
    std::printf(
        "trained %s[%lld worker processes]: best val metric %.4f, "
        "model -> %s:%s\n",
        model_name.c_str(), static_cast<long long>(workers),
        report->best_val_metric, out_loc->root.c_str(),
        out_loc->dataset.c_str());
  } else {
    std::fprintf(stderr, "unknown driver mode: %s\n", mode.c_str());
    return 1;
  }
  PrintDriverStats(stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Worker processes re-enter through this same binary; divert them
  // before any user flag parsing.
  if (auto code = agl::driver::RunWorkerIfSpawned(argc, argv)) return *code;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: agl_cli "
                 "<graphflat|train|infer|serve|gendata|analytics|driver> "
                 "[flags]\n");
    return 1;
  }
  const std::string cmd = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  if (cmd == "graphflat") return RunGraphFlatCmd(args);
  if (cmd == "train") return RunTrainCmd(args);
  if (cmd == "infer") return RunInferCmd(args);
  if (cmd == "serve") return RunServeCmd(args);
  if (cmd == "gendata") return RunGenDataCmd(args);
  if (cmd == "analytics") return RunAnalyticsCmd(args);
  if (cmd == "driver") return RunDriverCmd(args);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 1;
}
