// Quickstart: the smallest complete AGL pipeline, mirroring Figure 6.
//
//   1. GraphFlat    — flatten a toy social graph into 2-hop GraphFeatures
//   2. GraphTrainer — train a GCN on the parameter server
//   3. GraphInfer   — sliced MapReduce inference over the whole graph
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "agl/agl.h"
#include "data/dataset.h"

int main() {
  using namespace agl;

  // --- A small synthetic social graph (two communities, binary labels).
  data::UugLikeOptions dopts;
  dopts.num_nodes = 400;
  dopts.feature_dim = 16;
  dopts.train_size = 200;
  dopts.val_size = 60;
  dopts.test_size = 100;
  data::Dataset ds = data::MakeUugLike(dopts);
  std::printf("graph: %lld nodes, %lld edges, %lld features/node\n",
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.num_edges()),
              static_cast<long long>(ds.feature_dim));

  // --- Stage 1: GraphFlat -n node_table -e edge_table -h 2 -s uniform
  auto dfs = mr::LocalDfs::Open("/tmp/agl_quickstart_dfs");
  if (!dfs.ok()) {
    std::fprintf(stderr, "DFS: %s\n", dfs.status().ToString().c_str());
    return 1;
  }
  flat::GraphFlatConfig fconfig;
  fconfig.hops = 2;
  fconfig.sampler = {sampling::Strategy::kUniform, 15};
  auto fstats = GraphFlat(fconfig, ds.nodes, ds.edges, &*dfs, "features");
  if (!fstats.ok()) {
    std::fprintf(stderr, "GraphFlat: %s\n",
                 fstats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "GraphFlat: %lld GraphFeatures (avg %.1f nodes, %.1f edges each) in "
      "%.2fs\n",
      static_cast<long long>(fstats->num_features),
      static_cast<double>(fstats->total_nodes) / fstats->num_features,
      static_cast<double>(fstats->total_edges) / fstats->num_features,
      fstats->elapsed_seconds);

  // --- Stage 2: GraphTrainer -m gcn -i features -c {workers:4}
  auto features = LoadGraphFeatures(*dfs, "features");
  if (!features.ok()) return 1;
  auto splits = data::SplitFeatures(std::move(features).value(), ds);

  trainer::TrainerConfig tconfig;
  tconfig.model.type = gnn::ModelType::kGcn;
  tconfig.model.num_layers = 2;
  tconfig.model.in_dim = ds.feature_dim;
  tconfig.model.hidden_dim = 16;
  tconfig.model.out_dim = 2;
  tconfig.task = trainer::TaskKind::kBinaryAuc;
  tconfig.num_workers = 4;
  tconfig.epochs = 6;
  tconfig.batch_size = 32;
  tconfig.adam.lr = 0.01f;
  auto report = GraphTrainer(tconfig, splits.train, splits.val);
  if (!report.ok()) {
    std::fprintf(stderr, "GraphTrainer: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  for (const auto& e : report->epochs) {
    std::printf("  epoch %d  loss %.4f  val AUC %.4f  (%.2fs)\n", e.epoch,
                e.mean_train_loss, e.val_metric, e.seconds);
  }

  // --- Stage 3: GraphInfer -m model -i graph
  infer::InferConfig iconfig;
  iconfig.model = tconfig.model;
  auto inference =
      GraphInfer(iconfig, report->final_state, ds.nodes, ds.edges);
  if (!inference.ok()) {
    std::fprintf(stderr, "GraphInfer: %s\n",
                 inference.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "GraphInfer: scored %zu nodes in %.2fs (%lld embedding evaluations)\n",
      inference->scores.size(), inference->costs.time_seconds,
      static_cast<long long>(inference->costs.embedding_evaluations));
  std::printf("first scores: ");
  for (std::size_t i = 0; i < 3 && i < inference->scores.size(); ++i) {
    std::printf("node %llu -> P(class1)=%.3f  ",
                static_cast<unsigned long long>(inference->scores[i].first),
                inference->scores[i].second[1]);
  }
  std::printf("\n");
  return 0;
}
