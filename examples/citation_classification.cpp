// Citation classification (the Cora protocol of §4.1): train all three
// built-in GNNs on a citation-style graph through the same AGL pipeline
// and compare validation/test accuracy — the developer-facing view of the
// Table 3 experiment.

#include <cstdio>

#include "agl/agl.h"
#include "data/dataset.h"

int main() {
  using namespace agl;

  data::CoraLikeOptions dopts;
  dopts.num_nodes = 1000;
  dopts.feature_dim = 128;
  dopts.num_classes = 7;
  dopts.val_size = 200;
  dopts.test_size = 300;
  data::Dataset ds = data::MakeCoraLike(dopts);
  std::printf("citation graph: %lld papers, %lld citations, %lld classes\n",
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.num_edges()),
              static_cast<long long>(ds.num_classes));

  flat::GraphFlatConfig fconfig;
  fconfig.hops = 2;
  auto features = flat::RunGraphFlatInMemory(fconfig, ds.nodes, ds.edges);
  if (!features.ok()) {
    std::fprintf(stderr, "GraphFlat: %s\n",
                 features.status().ToString().c_str());
    return 1;
  }
  auto splits = data::SplitFeatures(std::move(features).value(), ds);
  std::printf("splits: %zu train / %zu val / %zu test GraphFeatures\n\n",
              splits.train.size(), splits.val.size(), splits.test.size());

  std::printf("%-12s %10s %10s %10s\n", "model", "val acc", "test acc",
              "time(s)");
  for (gnn::ModelType type : {gnn::ModelType::kGcn,
                              gnn::ModelType::kGraphSage,
                              gnn::ModelType::kGat}) {
    trainer::TrainerConfig tconfig;
    tconfig.model.type = type;
    tconfig.model.num_layers = 2;
    tconfig.model.in_dim = ds.feature_dim;
    tconfig.model.hidden_dim = 16;  // paper's Cora embedding size
    tconfig.model.out_dim = ds.num_classes;
    tconfig.model.dropout = 0.1f;
    tconfig.task = trainer::TaskKind::kSingleLabel;
    tconfig.num_workers = 2;
    tconfig.epochs = 10;
    tconfig.batch_size = 35;
    tconfig.adam.lr = 0.01f;
    trainer::GraphTrainer trainer(tconfig);
    auto report = trainer.Train(splits.train, splits.val);
    if (!report.ok()) {
      std::fprintf(stderr, "train %s: %s\n", gnn::ModelTypeName(type),
                   report.status().ToString().c_str());
      return 1;
    }
    auto test_acc = trainer.Evaluate(report->final_state, splits.test);
    std::printf("%-12s %10.4f %10.4f %10.1f\n", gnn::ModelTypeName(type),
                report->best_val_metric, test_acc.value_or(0.0),
                report->total_seconds);
  }
  return 0;
}
