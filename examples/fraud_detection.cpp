// Fraud detection on a social graph — the paper's motivating Ant Financial
// scenario (§1): a power-law User-User Graph with a small labeled set,
// trained with GAT (the model the paper found strongest on UUG because
// attention weighs different relation types differently), then scored over
// the *entire* graph with GraphInfer, since in production the unlabeled
// population dwarfs the labeled one.
//
// This example exercises the skew machinery end-to-end: hub users exist by
// construction, so GraphFlat runs with weighted sampling and a low
// re-indexing threshold.

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "agl/agl.h"
#include "data/dataset.h"
#include "nn/metrics.h"

int main() {
  using namespace agl;

  data::UugLikeOptions dopts;
  dopts.num_nodes = 1500;
  dopts.feature_dim = 24;
  dopts.attach_edges = 6;  // heavier tail -> real hubs
  dopts.train_size = 500;
  dopts.val_size = 150;
  dopts.test_size = 300;
  data::Dataset ds = data::MakeUugLike(dopts);

  // Report the hubbiness that makes re-indexing necessary.
  std::vector<int64_t> in_degree(ds.num_nodes(), 0);
  for (const auto& e : ds.edges) in_degree[e.dst]++;
  std::printf("users: %lld  relations: %lld  max in-degree: %lld\n",
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.num_edges()),
              static_cast<long long>(
                  *std::max_element(in_degree.begin(), in_degree.end())));

  // GraphFlat with weighted sampling + aggressive hub re-indexing.
  flat::GraphFlatConfig fconfig;
  fconfig.hops = 2;
  fconfig.sampler = {sampling::Strategy::kWeighted, 12};
  fconfig.hub_threshold = 64;
  fconfig.reindex_fanout = 8;
  fconfig.job.num_workers = 8;
  flat::GraphFlatStats fstats;
  auto features =
      flat::RunGraphFlatInMemory(fconfig, ds.nodes, ds.edges, &fstats);
  if (!features.ok()) {
    std::fprintf(stderr, "GraphFlat: %s\n",
                 features.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "GraphFlat: %lld neighborhoods, largest %lld nodes (sampling caps "
      "hubs), %.2fs\n",
      static_cast<long long>(fstats.num_features),
      static_cast<long long>(fstats.max_nodes), fstats.elapsed_seconds);

  auto splits = data::SplitFeatures(std::move(features).value(), ds);

  // GAT, 2 layers, trained on the PS with 4 workers.
  trainer::TrainerConfig tconfig;
  tconfig.model.type = gnn::ModelType::kGat;
  tconfig.model.num_layers = 2;
  tconfig.model.in_dim = ds.feature_dim;
  tconfig.model.hidden_dim = 8;
  tconfig.model.out_dim = 2;
  tconfig.model.gat_heads = 2;
  tconfig.model.aggregation_threads = 4;
  tconfig.task = trainer::TaskKind::kBinaryAuc;
  tconfig.num_workers = 4;
  tconfig.epochs = 6;
  tconfig.batch_size = 32;
  tconfig.adam.lr = 0.005f;
  auto report = GraphTrainer(tconfig, splits.train, splits.val);
  if (!report.ok()) {
    std::fprintf(stderr, "GraphTrainer: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("training: best val AUC %.4f over %zu epochs (%.1fs total)\n",
              report->best_val_metric, report->epochs.size(),
              report->total_seconds);

  // Score every user in the graph.
  infer::InferConfig iconfig;
  iconfig.model = tconfig.model;
  iconfig.job.num_workers = 8;
  auto inference =
      GraphInfer(iconfig, report->final_state, ds.nodes, ds.edges);
  if (!inference.ok()) {
    std::fprintf(stderr, "GraphInfer: %s\n",
                 inference.status().ToString().c_str());
    return 1;
  }

  // Held-out AUC from the full-graph scores.
  std::unordered_map<uint64_t, int> label_of;
  for (const auto& n : ds.nodes) label_of[n.id] = static_cast<int>(n.label);
  std::unordered_set<uint64_t> test_ids(ds.test_ids.begin(),
                                        ds.test_ids.end());
  std::vector<float> scores;
  std::vector<int> labels;
  for (const auto& [id, s] : inference->scores) {
    if (test_ids.count(id) == 0) continue;
    scores.push_back(s[1]);
    labels.push_back(label_of[id]);
  }
  std::printf("inference: %zu users scored in %.2fs, held-out AUC %.4f\n",
              inference->scores.size(), inference->costs.time_seconds,
              nn::Auc(scores, labels));

  // Top-risk users (what a fraud analyst would consume).
  std::vector<std::pair<float, uint64_t>> ranked;
  for (const auto& [id, s] : inference->scores) ranked.push_back({s[1], id});
  std::partial_sort(ranked.begin(), ranked.begin() + 5, ranked.end(),
                    std::greater<>());
  std::printf("top-5 risk scores: ");
  for (int i = 0; i < 5; ++i) {
    std::printf("user %llu (%.3f)  ",
                static_cast<unsigned long long>(ranked[i].second),
                ranked[i].first);
  }
  std::printf("\n");
  return 0;
}
