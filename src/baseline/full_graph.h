// Full-graph in-memory engine — the DGL/PyG stand-in for Tables 3 and 4.
//
// Like the single-machine systems AGL is compared against, this engine
// keeps the entire graph and all features in memory, trains full-batch
// (layer-wise SpMM over the whole adjacency, loss masked to the training
// nodes) and uses none of AGL's optimizations: no per-sample subgraphs, no
// pruning, no pipeline. The algorithmic distinction from GraphTrainer —
// whole-graph versus subgraph-batched computation — is what Table 4's
// comparison exercises.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "gnn/model.h"
#include "trainer/trainer.h"

namespace agl::baseline {

struct FullGraphConfig {
  gnn::ModelConfig model;
  trainer::TaskKind task = trainer::TaskKind::kSingleLabel;
  nn::Adam::Options adam;
  int epochs = 100;
  uint64_t seed = 5;
  bool verbose = false;
};

struct FullGraphReport {
  std::vector<double> epoch_seconds;
  std::vector<double> train_loss;
  double val_metric = 0;
  double test_metric = 0;
  double mean_epoch_seconds = 0;
  std::map<std::string, tensor::Tensor> final_state;
};

/// Trains a GNN full-batch over `dataset`'s whole graph.
agl::Result<FullGraphReport> TrainFullGraph(const FullGraphConfig& config,
                                            const data::Dataset& dataset);

/// Forward-only full-graph inference: returns per-node class scores
/// (softmax) for every node, in dataset node order. Used as the numeric
/// ground truth GraphInfer must match.
agl::Result<tensor::Tensor> FullGraphScores(
    const gnn::ModelConfig& model_config,
    const std::map<std::string, tensor::Tensor>& state,
    const data::Dataset& dataset);

}  // namespace agl::baseline
