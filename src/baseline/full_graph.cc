#include "baseline/full_graph.h"

#include <algorithm>
#include <unordered_map>

#include "autograd/ops.h"
#include "common/timer.h"
#include "nn/optimizer.h"

namespace agl::baseline {
namespace {

using data::Dataset;
using data::NodeId;

/// Builds the whole-graph PreparedBatch for a given target set.
agl::Result<gnn::PreparedBatch> BuildWholeGraphBatch(
    const gnn::GnnModel& model, const Dataset& dataset,
    const std::vector<NodeId>& targets) {
  std::unordered_map<NodeId, int64_t> local_of;
  local_of.reserve(dataset.nodes.size());
  for (std::size_t i = 0; i < dataset.nodes.size(); ++i) {
    local_of.emplace(dataset.nodes[i].id, static_cast<int64_t>(i));
  }
  const int64_t n = dataset.num_nodes();

  gnn::PreparedBatch batch;
  batch.node_features = tensor::Tensor(n, dataset.feature_dim);
  for (int64_t i = 0; i < n; ++i) {
    const auto& f = dataset.nodes[i].features;
    std::copy(f.begin(), f.end(), batch.node_features.row(i));
  }

  std::vector<tensor::CooEntry> entries;
  entries.reserve(dataset.edges.size());
  for (const auto& e : dataset.edges) {
    auto sit = local_of.find(e.src);
    auto dit = local_of.find(e.dst);
    if (sit == local_of.end() || dit == local_of.end()) {
      return agl::Status::NotFound("edge references missing node");
    }
    entries.push_back({dit->second, sit->second, e.weight});
  }
  auto normalized = std::make_shared<autograd::SharedAdjacency>(
      model.NormalizeAdjacency(tensor::SparseMatrix::FromCoo(
          n, n, std::move(entries))));
  batch.layer_adj.assign(model.config().num_layers, normalized);

  const int64_t ml_width = dataset.multilabel && !dataset.nodes.empty()
                               ? static_cast<int64_t>(
                                     dataset.nodes[0].multilabel.size())
                               : 0;
  if (ml_width > 0) {
    batch.multilabels =
        tensor::Tensor(static_cast<int64_t>(targets.size()), ml_width);
  }
  for (std::size_t t = 0; t < targets.size(); ++t) {
    auto it = local_of.find(targets[t]);
    if (it == local_of.end()) {
      return agl::Status::NotFound("target not in dataset");
    }
    batch.target_indices.push_back(it->second);
    const auto& node = dataset.nodes[it->second];
    batch.labels.push_back(node.label);
    if (ml_width > 0) {
      std::copy(node.multilabel.begin(), node.multilabel.end(),
                batch.multilabels.row(static_cast<int64_t>(t)));
    }
  }
  return batch;
}

}  // namespace

agl::Result<FullGraphReport> TrainFullGraph(const FullGraphConfig& config,
                                            const data::Dataset& dataset) {
  gnn::ModelConfig model_config = config.model;
  model_config.use_pruning = false;  // meaningless on the whole graph
  gnn::GnnModel model(model_config);
  Rng rng(config.seed);

  AGL_ASSIGN_OR_RETURN(
      gnn::PreparedBatch train_batch,
      BuildWholeGraphBatch(model, dataset, dataset.train_ids));
  AGL_ASSIGN_OR_RETURN(gnn::PreparedBatch val_batch,
                       BuildWholeGraphBatch(model, dataset, dataset.val_ids));
  AGL_ASSIGN_OR_RETURN(
      gnn::PreparedBatch test_batch,
      BuildWholeGraphBatch(model, dataset, dataset.test_ids));

  nn::Adam optimizer(model.Parameters(), config.adam);
  FullGraphReport report;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Stopwatch watch;
    autograd::Variable logits =
        model.Forward(train_batch, /*training=*/true, &rng);
    autograd::Variable loss =
        trainer::TaskLoss(config.task, logits, train_batch);
    autograd::Backward(loss);
    optimizer.Step();
    report.train_loss.push_back(loss.value().at(0, 0));
    report.epoch_seconds.push_back(watch.Seconds());
    if (config.verbose && epoch % 20 == 0) {
      AGL_LOG(Info) << "full-graph epoch " << epoch << " loss "
                    << loss.value().at(0, 0);
    }
  }

  autograd::Variable val_logits =
      model.Forward(val_batch, /*training=*/false, &rng);
  report.val_metric =
      trainer::TaskMetric(config.task, val_logits.value(), val_batch);
  autograd::Variable test_logits =
      model.Forward(test_batch, /*training=*/false, &rng);
  report.test_metric =
      trainer::TaskMetric(config.task, test_logits.value(), test_batch);

  double total = 0;
  for (double s : report.epoch_seconds) total += s;
  report.mean_epoch_seconds =
      report.epoch_seconds.empty() ? 0 : total / report.epoch_seconds.size();
  report.final_state = model.StateDict();
  return report;
}

agl::Result<tensor::Tensor> FullGraphScores(
    const gnn::ModelConfig& model_config,
    const std::map<std::string, tensor::Tensor>& state,
    const data::Dataset& dataset) {
  gnn::ModelConfig cfg = model_config;
  cfg.use_pruning = false;
  gnn::GnnModel model(cfg);
  AGL_RETURN_IF_ERROR(model.LoadStateDict(state));
  Rng rng(cfg.seed);

  std::vector<NodeId> all_ids;
  all_ids.reserve(dataset.nodes.size());
  for (const auto& n : dataset.nodes) all_ids.push_back(n.id);
  AGL_ASSIGN_OR_RETURN(gnn::PreparedBatch batch,
                       BuildWholeGraphBatch(model, dataset, all_ids));
  autograd::Variable logits = model.Forward(batch, /*training=*/false, &rng);
  return tensor::RowSoftmax(logits.value());
}

}  // namespace agl::baseline
