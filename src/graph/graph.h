// In-memory attributed directed graph (§2.1 of the paper).
//
// G = {V, E, A, X, E}: weighted directed edges, per-node feature vectors,
// per-edge feature vectors. The adjacency convention follows the paper:
// A[v,u] > 0 means an edge u -> v, so u is an *in-edge neighbour* of v and
// the in-edges of v are what its GNN layers aggregate over.
//
// This container is used for the reference single-machine paths (tests,
// baselines, the Original inference module). The distributed path
// (GraphFlat) never materializes it — it works from node/edge tables.

#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace agl::graph {

/// External node identifier (arbitrary, sparse).
using NodeId = uint64_t;

/// One directed edge in adjacency storage, kept in both in- and out-edge
/// indexes.
struct Edge {
  int64_t src = 0;  // local index of the source node
  int64_t dst = 0;  // local index of the destination node
  float weight = 1.f;
  int64_t feature_offset = -1;  // row into edge feature matrix, -1 if none
};

/// Immutable attributed graph; build with GraphBuilder.
class Graph {
 public:
  int64_t num_nodes() const { return static_cast<int64_t>(node_ids_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  int64_t node_feature_dim() const { return node_features_.cols(); }
  int64_t edge_feature_dim() const { return edge_features_.cols(); }

  /// External id of a local node index.
  NodeId node_id(int64_t local) const { return node_ids_[local]; }
  /// Local index for an external id (kNotFound when absent).
  static constexpr int64_t kNotFound = -1;
  int64_t LocalIndex(NodeId id) const {
    auto it = id_to_local_.find(id);
    return it == id_to_local_.end() ? kNotFound : it->second;
  }

  const tensor::Tensor& node_features() const { return node_features_; }
  const tensor::Tensor& edge_features() const { return edge_features_; }

  /// In-edges of `v` (edges pointing at v; what GNN layers aggregate).
  std::span<const Edge> InEdges(int64_t v) const {
    return {edges_.data() + in_ptr_[v],
            static_cast<std::size_t>(in_ptr_[v + 1] - in_ptr_[v])};
  }
  /// Out-edges of `v` (edges v points along; the propagation direction).
  /// Returned as indices into a secondary permutation.
  std::span<const int64_t> OutEdgeIndices(int64_t v) const {
    return {out_edge_idx_.data() + out_ptr_[v],
            static_cast<std::size_t>(out_ptr_[v + 1] - out_ptr_[v])};
  }
  const Edge& edge(int64_t idx) const { return edges_[idx]; }

  int64_t InDegree(int64_t v) const { return in_ptr_[v + 1] - in_ptr_[v]; }
  int64_t OutDegree(int64_t v) const { return out_ptr_[v + 1] - out_ptr_[v]; }

  /// Per-node integer class labels; empty when the graph is unlabeled.
  const std::vector<int64_t>& labels() const { return labels_; }
  /// Per-node multi-label targets [num_nodes x num_classes]; may be empty.
  const tensor::Tensor& multilabels() const { return multilabels_; }

 private:
  friend class GraphBuilder;

  std::vector<NodeId> node_ids_;
  std::unordered_map<NodeId, int64_t> id_to_local_;
  tensor::Tensor node_features_;
  tensor::Tensor edge_features_;
  std::vector<int64_t> labels_;
  tensor::Tensor multilabels_;

  std::vector<Edge> edges_;          // grouped by dst (in-edge CSR ordering)
  std::vector<int64_t> in_ptr_;      // len num_nodes+1
  std::vector<int64_t> out_ptr_;     // len num_nodes+1
  std::vector<int64_t> out_edge_idx_;  // edge indices grouped by src
};

/// Accumulates nodes and edges, then freezes into a Graph.
class GraphBuilder {
 public:
  /// `node_feature_dim` / `edge_feature_dim` fix X / E widths up front
  /// (edge_feature_dim == 0 means unfeatured edges).
  GraphBuilder(int64_t node_feature_dim, int64_t edge_feature_dim = 0)
      : node_dim_(node_feature_dim), edge_dim_(edge_feature_dim) {}

  /// Adds a node; `features` must have node_feature_dim entries.
  agl::Status AddNode(NodeId id, std::vector<float> features);
  /// Adds a node with an integer class label.
  agl::Status AddNode(NodeId id, std::vector<float> features, int64_t label);

  /// Adds a directed edge src -> dst (both endpoints must exist by Build
  /// time; order of insertion is free).
  void AddEdge(NodeId src, NodeId dst, float weight = 1.f,
               std::vector<float> features = {});

  /// Attaches a multi-label target row to a node (width fixed by first call).
  agl::Status SetMultilabel(NodeId id, const std::vector<float>& targets);

  /// Freezes into an immutable Graph; fails if an edge references a missing
  /// endpoint or a feature width mismatches.
  agl::Result<Graph> Build();

  int64_t num_nodes() const { return static_cast<int64_t>(ids_.size()); }

 private:
  struct PendingEdge {
    NodeId src;
    NodeId dst;
    float weight;
    std::vector<float> features;
  };

  int64_t node_dim_;
  int64_t edge_dim_;
  std::vector<NodeId> ids_;
  std::unordered_map<NodeId, int64_t> id_to_local_;
  std::vector<std::vector<float>> feats_;
  std::vector<int64_t> labels_;
  bool any_label_ = false;
  std::unordered_map<NodeId, std::vector<float>> multilabels_;
  int64_t multilabel_dim_ = 0;
  std::vector<PendingEdge> pending_;
};

}  // namespace agl::graph
