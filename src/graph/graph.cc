#include "graph/graph.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace agl::graph {

agl::Status GraphBuilder::AddNode(NodeId id, std::vector<float> features) {
  if (static_cast<int64_t>(features.size()) != node_dim_) {
    return agl::Status::InvalidArgument(
        "node feature width mismatch: expected " + std::to_string(node_dim_) +
        " got " + std::to_string(features.size()));
  }
  if (id_to_local_.count(id) > 0) {
    return agl::Status::AlreadyExists("duplicate node id " +
                                      std::to_string(id));
  }
  id_to_local_.emplace(id, static_cast<int64_t>(ids_.size()));
  ids_.push_back(id);
  feats_.push_back(std::move(features));
  labels_.push_back(-1);
  return agl::Status::OK();
}

agl::Status GraphBuilder::AddNode(NodeId id, std::vector<float> features,
                                  int64_t label) {
  AGL_RETURN_IF_ERROR(AddNode(id, std::move(features)));
  labels_.back() = label;
  any_label_ = true;
  return agl::Status::OK();
}

void GraphBuilder::AddEdge(NodeId src, NodeId dst, float weight,
                           std::vector<float> features) {
  pending_.push_back({src, dst, weight, std::move(features)});
}

agl::Status GraphBuilder::SetMultilabel(NodeId id,
                                        const std::vector<float>& targets) {
  if (id_to_local_.count(id) == 0) {
    return agl::Status::NotFound("SetMultilabel: unknown node " +
                                 std::to_string(id));
  }
  if (multilabel_dim_ == 0) {
    multilabel_dim_ = static_cast<int64_t>(targets.size());
  } else if (multilabel_dim_ != static_cast<int64_t>(targets.size())) {
    return agl::Status::InvalidArgument("multilabel width mismatch");
  }
  multilabels_[id] = targets;
  return agl::Status::OK();
}

agl::Result<Graph> GraphBuilder::Build() {
  Graph g;
  const int64_t n = static_cast<int64_t>(ids_.size());
  g.node_ids_ = std::move(ids_);
  g.id_to_local_ = std::move(id_to_local_);

  g.node_features_ = tensor::Tensor(n, node_dim_);
  for (int64_t i = 0; i < n; ++i) {
    std::copy(feats_[i].begin(), feats_[i].end(), g.node_features_.row(i));
  }
  if (any_label_) g.labels_ = std::move(labels_);
  if (multilabel_dim_ > 0) {
    g.multilabels_ = tensor::Tensor(n, multilabel_dim_);
    for (const auto& [id, row] : multilabels_) {
      const int64_t local = g.id_to_local_.at(id);
      std::copy(row.begin(), row.end(), g.multilabels_.row(local));
    }
  }

  // Resolve endpoints and validate edge feature widths.
  struct ResolvedEdge {
    int64_t src, dst;
    float weight;
    const std::vector<float>* features;
  };
  std::vector<ResolvedEdge> resolved;
  resolved.reserve(pending_.size());
  int64_t num_featured = 0;
  for (const PendingEdge& e : pending_) {
    auto sit = g.id_to_local_.find(e.src);
    auto dit = g.id_to_local_.find(e.dst);
    if (sit == g.id_to_local_.end() || dit == g.id_to_local_.end()) {
      return agl::Status::NotFound("edge references missing node " +
                                   std::to_string(sit == g.id_to_local_.end()
                                                      ? e.src
                                                      : e.dst));
    }
    if (!e.features.empty()) {
      if (static_cast<int64_t>(e.features.size()) != edge_dim_) {
        return agl::Status::InvalidArgument("edge feature width mismatch");
      }
      ++num_featured;
    } else if (edge_dim_ > 0) {
      // Unfeatured edge in a featured graph gets a zero row.
      ++num_featured;
    }
    resolved.push_back({sit->second, dit->second, e.weight, &e.features});
  }

  // Sort by destination (then source) — the in-edge CSR grouping that
  // subgraph vectorization relies on ("edges sorted by destination").
  std::vector<int64_t> order(resolved.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    if (resolved[a].dst != resolved[b].dst) {
      return resolved[a].dst < resolved[b].dst;
    }
    return resolved[a].src < resolved[b].src;
  });

  g.edge_features_ = tensor::Tensor(edge_dim_ > 0 ? num_featured : 0,
                                    edge_dim_);
  g.edges_.reserve(resolved.size());
  g.in_ptr_.assign(n + 1, 0);
  int64_t feat_row = 0;
  for (int64_t pos : order) {
    const ResolvedEdge& e = resolved[pos];
    Edge edge;
    edge.src = e.src;
    edge.dst = e.dst;
    edge.weight = e.weight;
    if (edge_dim_ > 0) {
      edge.feature_offset = feat_row;
      if (!e.features->empty()) {
        std::copy(e.features->begin(), e.features->end(),
                  g.edge_features_.row(feat_row));
      }
      ++feat_row;
    }
    g.in_ptr_[e.dst + 1]++;
    g.edges_.push_back(edge);
  }
  for (int64_t v = 0; v < n; ++v) g.in_ptr_[v + 1] += g.in_ptr_[v];

  // Out-edge index: edge positions grouped by source.
  g.out_ptr_.assign(n + 1, 0);
  for (const Edge& e : g.edges_) g.out_ptr_[e.src + 1]++;
  for (int64_t v = 0; v < n; ++v) g.out_ptr_[v + 1] += g.out_ptr_[v];
  g.out_edge_idx_.resize(g.edges_.size());
  std::vector<int64_t> cursor(g.out_ptr_.begin(), g.out_ptr_.end() - 1);
  for (std::size_t i = 0; i < g.edges_.size(); ++i) {
    g.out_edge_idx_[cursor[g.edges_[i].src]++] = static_cast<int64_t>(i);
  }
  return g;
}

}  // namespace agl::graph
