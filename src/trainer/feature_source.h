// Streaming access to GraphFeature datasets on the DFS.
//
// The paper's workers "just have to process their own partitions of
// training data" read from disk; this wrapper gives each worker its shard
// of a DFS dataset without materializing the others — part files are
// assigned round-robin to workers, and records stream through the
// checksummed reader one at a time.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "mr/local_dfs.h"
#include "subgraph/graph_feature.h"

namespace agl::trainer {

/// A handle on one GraphFeature dataset.
class DfsFeatureSource {
 public:
  /// Binds to `dataset` inside `dfs`. A dataset produced by a sharded
  /// GraphFlat reads transparently: the merged dataset when it exists,
  /// otherwise the unmerged "<dataset>.shard-NN" family as one logical
  /// dataset. Fails if neither is present.
  static agl::Result<DfsFeatureSource> Open(const mr::LocalDfs& dfs,
                                            const std::string& dataset);

  /// Number of part files (the sharding granularity).
  int64_t num_parts() const { return static_cast<int64_t>(parts_.size()); }

  /// Parses every record of the parts assigned to `worker` out of
  /// `num_workers` (parts are dealt round-robin; workers beyond the part
  /// count receive empty shards).
  agl::Result<std::vector<subgraph::GraphFeature>> ReadShard(
      int worker, int num_workers) const;

  /// Parses the entire dataset.
  agl::Result<std::vector<subgraph::GraphFeature>> ReadAll() const;

  /// Streams records of one part file through `fn` without keeping them:
  /// `fn` gets each parsed GraphFeature; returning a non-OK status stops
  /// the scan and is propagated.
  agl::Status ScanPart(
      int64_t part,
      const std::function<agl::Status(subgraph::GraphFeature)>& fn) const;

 private:
  explicit DfsFeatureSource(std::vector<std::string> parts)
      : parts_(std::move(parts)) {}

  std::vector<std::string> parts_;  // absolute part-file paths, sorted
};

}  // namespace agl::trainer
