// Streaming access to GraphFeature datasets on the DFS.
//
// The paper's workers "just have to process their own partitions of
// training data" read from disk; this wrapper gives each worker its shard
// of a DFS dataset without materializing the others — part files are
// assigned round-robin to workers, and records stream through the
// checksummed reader one at a time.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "mr/local_dfs.h"
#include "subgraph/graph_feature.h"

namespace agl::trainer {

/// A handle on one GraphFeature dataset.
class DfsFeatureSource {
 public:
  /// Binds to `dataset` inside `dfs`. A dataset produced by a sharded
  /// GraphFlat reads transparently: the merged dataset when it exists,
  /// otherwise the unmerged "<dataset>.shard-NN" family as one logical
  /// dataset. Fails if neither is present.
  static agl::Result<DfsFeatureSource> Open(const mr::LocalDfs& dfs,
                                            const std::string& dataset);

  /// Number of part files (the sharding granularity).
  int64_t num_parts() const { return static_cast<int64_t>(parts_.size()); }

  /// Parses every record of the parts assigned to `worker` out of
  /// `num_workers` (parts are dealt round-robin; workers beyond the part
  /// count receive empty shards).
  agl::Result<std::vector<subgraph::GraphFeature>> ReadShard(
      int worker, int num_workers) const;

  /// Parses the entire dataset.
  agl::Result<std::vector<subgraph::GraphFeature>> ReadAll() const;

  /// Streams records of one part file through `fn` without keeping them:
  /// `fn` gets each parsed GraphFeature; returning a non-OK status stops
  /// the scan and is propagated.
  agl::Status ScanPart(
      int64_t part,
      const std::function<agl::Status(subgraph::GraphFeature)>& fn) const;

 private:
  explicit DfsFeatureSource(std::vector<std::string> parts)
      : parts_(std::move(parts)) {}

  std::vector<std::string> parts_;  // absolute part-file paths, sorted
};

/// Streaming prefetch over one worker's shard of a feature dataset.
///
/// Unlike ReadShard (which materializes the whole shard up front), a
/// background reader thread scans the assigned part files one record at a
/// time and batches them into a bounded queue, so resident memory stays
/// O(prefetch_batches x batch_size) regardless of shard size. This is the
/// DFS reader stage of the trainer's pipeline.
class StreamingShardReader {
 public:
  struct Options {
    int64_t batch_size = 32;
    /// Queue depth: how many batches the reader may run ahead.
    int prefetch_batches = 2;
  };

  /// Starts prefetching the parts of `source` assigned to `worker` out of
  /// `num_workers` (round-robin, exactly ReadShard's assignment, so the
  /// record order matches the materialized path). The source's parts list
  /// is copied; the source itself need not outlive the reader.
  static agl::Result<std::unique_ptr<StreamingShardReader>> Open(
      const DfsFeatureSource& source, int worker, int num_workers,
      const Options& options);

  /// Joins the reader thread (cancelling it first if still running).
  ~StreamingShardReader();

  StreamingShardReader(const StreamingShardReader&) = delete;
  StreamingShardReader& operator=(const StreamingShardReader&) = delete;

  /// Pops the next batch (up to batch_size features, in shard order). An
  /// empty vector signals a cleanly exhausted shard; read/parse errors and
  /// Cancel() surface as statuses.
  agl::Result<std::vector<subgraph::GraphFeature>> Next();

  /// Early teardown: unblocks the reader thread and pending Next() calls,
  /// which then fail with kAborted.
  void Cancel();

 private:
  StreamingShardReader(DfsFeatureSource source, const Options& options);
  void ReaderLoop(int worker, int num_workers);

  const DfsFeatureSource source_;
  const int64_t batch_size_;
  BoundedQueue<std::vector<subgraph::GraphFeature>> queue_;
  common::Mutex status_mu_;
  // First reader-side error, if any. Published under status_mu_ before the
  // queue is cancelled, so a consumer that observed the cancellation
  // always sees it.
  agl::Status reader_status_ GUARDED_BY(status_mu_);
  std::thread thread_;
};

}  // namespace agl::trainer
