#include "trainer/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "io/codec.h"

namespace agl::trainer {
namespace {

constexpr char kMagic[8] = {'A', 'G', 'L', 'C', 'K', 'P', 'T', '1'};

void PutTensor(io::BufferWriter* w, const tensor::Tensor& t) {
  w->PutVarint64(static_cast<uint64_t>(t.rows()));
  w->PutVarint64(static_cast<uint64_t>(t.cols()));
  w->PutFloatArray(std::vector<float>(t.data(), t.data() + t.size()));
}

agl::Status GetTensor(io::BufferReader* r, tensor::Tensor* out) {
  uint64_t rows = 0, cols = 0;
  AGL_RETURN_IF_ERROR(r->GetVarint64(&rows));
  AGL_RETURN_IF_ERROR(r->GetVarint64(&cols));
  std::vector<float> data;
  AGL_RETURN_IF_ERROR(r->GetFloatArray(&data));
  if (data.size() != rows * cols) {
    return agl::Status::Corruption("checkpoint tensor size mismatch");
  }
  if (rows == 0 || cols == 0) {
    *out = tensor::Tensor();
    return agl::Status::OK();
  }
  tensor::Tensor t(static_cast<int64_t>(rows), static_cast<int64_t>(cols));
  std::memcpy(t.data(), data.data(), data.size() * sizeof(float));
  *out = std::move(t);
  return agl::Status::OK();
}

}  // namespace

std::string MidCheckpointName(const std::string& prefix) {
  return prefix + "-mid";
}

std::string SerializeTrainCheckpoint(const TrainCheckpoint& ckpt) {
  io::BufferWriter w;
  w.PutBytes(kMagic, sizeof(kMagic));
  w.PutVarint64(ckpt.fingerprint);
  w.PutVarint64(static_cast<uint64_t>(ckpt.epoch));
  w.PutVarint64(static_cast<uint64_t>(ckpt.tick));
  w.PutDouble(ckpt.best_val_metric);
  w.PutVarint64(static_cast<uint64_t>(ckpt.bad_evals));
  w.PutVarint64(ckpt.cursors.size());
  for (const WorkerCursor& c : ckpt.cursors) {
    w.PutVarint64(static_cast<uint64_t>(c.next_batch));
    w.PutDouble(c.loss_sum);
    w.PutString(c.rng_state);
  }
  w.PutVarint64(ckpt.ps_state.size());
  for (const auto& [name, param] : ckpt.ps_state) {
    w.PutString(name);
    PutTensor(&w, param.value);
    w.PutVarint64(static_cast<uint64_t>(param.opt_state.t));
    PutTensor(&w, param.opt_state.m);
    PutTensor(&w, param.opt_state.v);
  }
  return w.Release();
}

agl::Result<TrainCheckpoint> ParseTrainCheckpoint(
    const std::string& bytes, uint64_t expected_fingerprint) {
  io::BufferReader r(bytes);
  char magic[sizeof(kMagic)];
  AGL_RETURN_IF_ERROR(r.GetRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return agl::Status::Corruption("not a trainer checkpoint (bad magic)");
  }
  TrainCheckpoint ckpt;
  uint64_t u = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&ckpt.fingerprint));
  if (ckpt.fingerprint != expected_fingerprint) {
    return agl::Status::FailedPrecondition(
        "checkpoint was written by an incompatible run (config/dataset "
        "fingerprint mismatch)");
  }
  AGL_RETURN_IF_ERROR(r.GetVarint64(&u));
  ckpt.epoch = static_cast<int64_t>(u);
  AGL_RETURN_IF_ERROR(r.GetVarint64(&u));
  ckpt.tick = static_cast<int64_t>(u);
  AGL_RETURN_IF_ERROR(r.GetDouble(&ckpt.best_val_metric));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&u));
  ckpt.bad_evals = static_cast<int64_t>(u);
  uint64_t num_cursors = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&num_cursors));
  ckpt.cursors.resize(num_cursors);
  for (WorkerCursor& c : ckpt.cursors) {
    AGL_RETURN_IF_ERROR(r.GetVarint64(&u));
    c.next_batch = static_cast<int64_t>(u);
    AGL_RETURN_IF_ERROR(r.GetDouble(&c.loss_sum));
    AGL_RETURN_IF_ERROR(r.GetString(&c.rng_state));
  }
  uint64_t num_params = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&num_params));
  for (uint64_t i = 0; i < num_params; ++i) {
    std::string name;
    AGL_RETURN_IF_ERROR(r.GetString(&name));
    ps::ExportedParam param;
    AGL_RETURN_IF_ERROR(GetTensor(&r, &param.value));
    AGL_RETURN_IF_ERROR(r.GetVarint64(&u));
    param.opt_state.t = static_cast<int64_t>(u);
    AGL_RETURN_IF_ERROR(GetTensor(&r, &param.opt_state.m));
    AGL_RETURN_IF_ERROR(GetTensor(&r, &param.opt_state.v));
    ckpt.ps_state.emplace(std::move(name), std::move(param));
  }
  if (!r.AtEnd()) {
    return agl::Status::Corruption("checkpoint has trailing bytes");
  }
  return ckpt;
}

// --- CheckpointCoordinator -------------------------------------------------

CheckpointCoordinator::CheckpointCoordinator(
    int num_workers, int64_t every,
    std::function<agl::Status(int64_t, std::vector<WorkerCursor>)> sink)
    : num_workers_(num_workers),
      every_(every),
      sink_(std::move(sink)),
      active_(num_workers),
      cursors_(num_workers),
      have_cursor_(num_workers, false) {}

bool CheckpointCoordinator::IsCheckpointTick(int64_t tick) const {
  if (every_ <= 0 || tick <= 0 || tick % every_ != 0) return false;
  common::MutexLock lock(&mu_);
  return !disabled_ && !cancelled_;
}

void CheckpointCoordinator::Deposit(int worker, int64_t tick,
                                    WorkerCursor cursor) {
  if (every_ <= 0 || tick <= 0 || tick % every_ != 0) return;
  common::MutexLock lock(&mu_);
  if (disabled_ || cancelled_) return;
  if (gen_tick_ != tick) {
    // First worker to reach this checkpoint tick opens its barrier. The
    // previous barrier fully drained before anyone proceeded past it, so
    // at most one is ever in flight.
    gen_tick_ = tick;
    arrived_ = 0;
    gen_done_ = false;
    gen_status_ = agl::Status::OK();
    std::fill(have_cursor_.begin(), have_cursor_.end(), false);
  }
  cursors_[worker] = std::move(cursor);
  have_cursor_[worker] = true;
}

agl::Status CheckpointCoordinator::Arrive(int worker, int64_t tick) {
  if (every_ <= 0 || tick <= 0 || tick % every_ != 0) {
    return agl::Status::OK();
  }
  common::MutexLock lock(&mu_);
  if (cancelled_) {
    return agl::Status::Aborted("checkpoint coordinator cancelled");
  }
  if (disabled_ || gen_tick_ != tick) return agl::Status::OK();
  if (gen_done_) return gen_status_;  // barrier abandoned by a Finish
  AGL_CHECK(have_cursor_[worker])
      << "worker " << worker << " arrived at checkpoint tick " << tick
      << " without a deposited cursor";
  ++arrived_;
  if (arrived_ >= active_) {
    // Every active worker is parked right after its push for this tick:
    // all pushed gradients are committed and nobody is pulling, so the
    // PS snapshot the sink takes is exact.
    gen_status_ = sink_(tick, cursors_);
    gen_done_ = true;
    cv_.SignalAll();
    return gen_status_;
  }
  while (!gen_done_ && !cancelled_) cv_.Wait(&mu_);
  if (gen_done_) return gen_status_;
  return agl::Status::Aborted("checkpoint coordinator cancelled");
}

void CheckpointCoordinator::Finish(int worker) {
  (void)worker;
  if (every_ <= 0) return;
  {
    common::MutexLock lock(&mu_);
    active_ = std::max(0, active_ - 1);
    disabled_ = true;
    if (gen_tick_ >= 0 && !gen_done_) {
      // Abandon the barrier in progress: without this worker it can no
      // longer describe a resumable state. Waiters proceed uncheckpointed.
      gen_done_ = true;
      gen_status_ = agl::Status::OK();
    }
  }
  cv_.SignalAll();
}

void CheckpointCoordinator::Cancel() {
  if (every_ <= 0) return;
  {
    common::MutexLock lock(&mu_);
    cancelled_ = true;
  }
  cv_.SignalAll();
}

}  // namespace agl::trainer
