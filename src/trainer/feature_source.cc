#include "trainer/feature_source.h"

#include <algorithm>
#include <iterator>

#include "common/logging.h"
#include "io/record_file.h"

namespace agl::trainer {

agl::Result<DfsFeatureSource> DfsFeatureSource::Open(
    const mr::LocalDfs& dfs, const std::string& dataset) {
  agl::Result<std::vector<std::string>> parts = dfs.ListParts(dataset);
  if (parts.ok()) return DfsFeatureSource(std::move(parts).value());
  if (parts.status().code() != agl::StatusCode::kNotFound) {
    return parts.status();
  }
  // Transparent multi-shard fallback: a sharded GraphFlat whose merge has
  // not (yet) unified its staging output leaves a "<dataset>.shard-NN"
  // family behind; read it as one logical dataset, shards in order.
  std::vector<std::string> family;
  for (int s = 0; dfs.DatasetExists(mr::ShardDatasetName(dataset, s)); ++s) {
    AGL_ASSIGN_OR_RETURN(std::vector<std::string> shard_parts,
                         dfs.ListParts(mr::ShardDatasetName(dataset, s)));
    family.insert(family.end(),
                  std::make_move_iterator(shard_parts.begin()),
                  std::make_move_iterator(shard_parts.end()));
  }
  if (family.empty()) return parts.status();
  return DfsFeatureSource(std::move(family));
}

agl::Status DfsFeatureSource::ScanPart(
    int64_t part,
    const std::function<agl::Status(subgraph::GraphFeature)>& fn) const {
  if (part < 0 || part >= num_parts()) {
    return agl::Status::OutOfRange("part index " + std::to_string(part));
  }
  AGL_ASSIGN_OR_RETURN(io::RecordReader reader,
                       io::RecordReader::Open(parts_[part]));
  while (true) {
    std::string bytes;
    agl::Status s = reader.Next(&bytes);
    if (s.code() == agl::StatusCode::kOutOfRange) return agl::Status::OK();
    AGL_RETURN_IF_ERROR(s);
    AGL_ASSIGN_OR_RETURN(subgraph::GraphFeature gf,
                         subgraph::GraphFeature::Parse(bytes));
    AGL_RETURN_IF_ERROR(fn(std::move(gf)));
  }
}

agl::Result<std::vector<subgraph::GraphFeature>> DfsFeatureSource::ReadShard(
    int worker, int num_workers) const {
  if (worker < 0 || num_workers <= 0 || worker >= num_workers) {
    return agl::Status::InvalidArgument("bad shard spec");
  }
  std::vector<subgraph::GraphFeature> out;
  for (int64_t part = worker; part < num_parts(); part += num_workers) {
    AGL_RETURN_IF_ERROR(ScanPart(part, [&out](subgraph::GraphFeature gf) {
      out.push_back(std::move(gf));
      return agl::Status::OK();
    }));
  }
  return out;
}

agl::Result<std::vector<subgraph::GraphFeature>> DfsFeatureSource::ReadAll()
    const {
  return ReadShard(0, 1);
}

agl::Result<std::unique_ptr<StreamingShardReader>> StreamingShardReader::Open(
    const DfsFeatureSource& source, int worker, int num_workers,
    const Options& options) {
  if (worker < 0 || num_workers <= 0 || worker >= num_workers) {
    return agl::Status::InvalidArgument("bad shard spec");
  }
  if (options.batch_size <= 0) {
    return agl::Status::InvalidArgument("batch_size must be positive");
  }
  std::unique_ptr<StreamingShardReader> reader(
      new StreamingShardReader(source, options));
  reader->thread_ = std::thread(
      [r = reader.get(), worker, num_workers] {
        r->ReaderLoop(worker, num_workers);
      });
  return reader;
}

StreamingShardReader::StreamingShardReader(DfsFeatureSource source,
                                           const Options& options)
    : source_(std::move(source)),
      batch_size_(options.batch_size),
      queue_(static_cast<std::size_t>(std::max(1, options.prefetch_batches))) {
}

StreamingShardReader::~StreamingShardReader() {
  queue_.Cancel();
  if (thread_.joinable()) thread_.join();
}

void StreamingShardReader::ReaderLoop(int worker, int num_workers) {
  std::vector<subgraph::GraphFeature> batch;
  batch.reserve(static_cast<std::size_t>(batch_size_));
  for (int64_t part = worker; part < source_.num_parts();
       part += num_workers) {
    agl::Status s =
        source_.ScanPart(part, [&](subgraph::GraphFeature gf) {
          batch.push_back(std::move(gf));
          if (static_cast<int64_t>(batch.size()) == batch_size_) {
            if (!queue_.Push(std::move(batch))) {
              // Consumer cancelled; stop the scan without recording an
              // error of our own.
              return agl::Status::Aborted("stream cancelled");
            }
            batch.clear();
            batch.reserve(static_cast<std::size_t>(batch_size_));
          }
          return agl::Status::OK();
        });
    if (!s.ok()) {
      if (!queue_.cancelled()) {
        common::MutexLock lock(&status_mu_);
        reader_status_ = s;
        queue_.Cancel();
      }
      return;
    }
  }
  if (!batch.empty()) {
    if (!queue_.Push(std::move(batch))) return;
  }
  queue_.Close();
}

agl::Result<std::vector<subgraph::GraphFeature>> StreamingShardReader::Next() {
  std::vector<subgraph::GraphFeature> batch;
  if (queue_.Pop(&batch)) return batch;
  if (queue_.cancelled()) {
    common::MutexLock lock(&status_mu_);
    if (!reader_status_.ok()) return reader_status_;
    return agl::Status::Aborted("stream cancelled");
  }
  return std::vector<subgraph::GraphFeature>{};  // cleanly exhausted
}

void StreamingShardReader::Cancel() { queue_.Cancel(); }

}  // namespace agl::trainer
