// GraphTrainer (§3.3): parameter-server training over self-contained k-hop
// neighborhoods.
//
// Because every GraphFeature carries its whole receptive field, workers are
// independent: each processes its own partition of the training data with
// no cross-worker communication — only pull/push against the PS. Three
// optimizations from the paper are implemented and individually togglable
// so Table 4 can ablate them:
//   * training pipeline  — batch preprocessing (vectorize + prune +
//     normalize) runs one batch ahead of model computation;
//   * graph pruning      — per-layer adjacency A^(k) (model config);
//   * edge partitioning  — multi-threaded conflict-free aggregation
//     (model config aggregation_threads).

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "gnn/model.h"
#include "mr/local_dfs.h"
#include "ps/parameter_server.h"
#include "subgraph/graph_feature.h"

namespace agl::trainer {

/// What the labels mean (drives loss + validation metric).
enum class TaskKind {
  kSingleLabel,  // integer classes, softmax CE, accuracy
  kMultiLabel,   // {0,1}^L targets, BCE-with-logits, micro-F1
  kBinaryAuc,    // 2 classes, softmax CE, AUC on P(class 1)
};

/// Consistency model for the parameter server ("flexible model
/// consistency", §3.1/§3.3).
enum class SyncMode {
  /// Workers pull/push independently; updates apply as they arrive. The
  /// production default (Figure 7's behaviour).
  kAsync,
  /// Bulk-synchronous: per step every worker computes a gradient on the
  /// same parameter snapshot; gradients are averaged into one update.
  /// Deterministic for a fixed partition, at the cost of lock-step
  /// barriers.
  kBsp,
};

struct TrainerConfig {
  gnn::ModelConfig model;
  TaskKind task = TaskKind::kSingleLabel;
  SyncMode sync_mode = SyncMode::kAsync;
  int num_workers = 1;
  int ps_shards = 4;
  nn::Adam::Options adam;
  int batch_size = 32;
  int epochs = 10;
  /// Training pipeline optimization (batch-level, §3.3.2).
  bool use_pipeline = true;
  uint64_t seed = 2024;
  /// Evaluate on the validation set every `eval_every` epochs (0 = never).
  int eval_every = 1;
  /// Optional early stop when validation metric fails to improve this many
  /// evaluations in a row (0 = disabled).
  int patience = 0;
  bool verbose = false;
  /// Warm start: when non-empty, the PS is initialized from this state
  /// dict instead of fresh model weights (resume-from-checkpoint).
  std::map<std::string, tensor::Tensor> initial_state;
  /// When set, the PS snapshot is checkpointed to this DFS after every
  /// epoch as dataset "<checkpoint_prefix>-epoch-<n>" (fault tolerance for
  /// long jobs; restore with LoadCheckpoint + initial_state).
  mr::LocalDfs* checkpoint_dfs = nullptr;
  std::string checkpoint_prefix = "checkpoint";
};

struct EpochRecord {
  int epoch = 0;
  double mean_train_loss = 0;
  double val_metric = 0;  // NaN when not evaluated
  double seconds = 0;
  /// Time split per stage (summed across workers): preprocessing (read +
  /// subgraph vectorization + pruning + normalization) vs model
  /// computation (forward/backward/push/pull). With the training pipeline
  /// on hardware with spare cores, the epoch cost approaches
  /// max(prep, compute) — the §3.3.2 claim.
  double prep_seconds = 0;
  double compute_seconds = 0;
};

struct TrainReport {
  std::vector<EpochRecord> epochs;
  double total_seconds = 0;
  double best_val_metric = 0;
  /// Final parameters (PS snapshot after the last epoch).
  std::map<std::string, tensor::Tensor> final_state;
};

namespace internal {
/// Per-worker accumulation for one epoch (exposed for the epoch runners).
struct WorkerResult {
  double loss_sum = 0;
  int64_t batches = 0;
  double prep_seconds = 0;
  double compute_seconds = 0;
  agl::Status status;
};
}  // namespace internal

/// Distributed (simulated: worker threads + in-process PS) GNN trainer.
class GraphTrainer {
 public:
  explicit GraphTrainer(const TrainerConfig& config);

  /// Trains on `train`, optionally evaluating on `val` per epoch.
  agl::Result<TrainReport> Train(
      std::span<const subgraph::GraphFeature> train,
      std::span<const subgraph::GraphFeature> val) const;

  /// Evaluates `state` on a dataset; returns the task metric.
  agl::Result<double> Evaluate(
      const std::map<std::string, tensor::Tensor>& state,
      std::span<const subgraph::GraphFeature> data) const;

  const TrainerConfig& config() const { return config_; }

 private:
  agl::Status RunAsyncEpoch(
      std::span<const subgraph::GraphFeature> train, int epoch,
      ps::ParameterServer* server, ThreadPool* pool,
      const std::vector<std::pair<std::size_t, std::size_t>>& partitions,
      std::vector<internal::WorkerResult>* results) const;
  agl::Status RunBspEpoch(
      std::span<const subgraph::GraphFeature> train, int epoch,
      ps::ParameterServer* server, ThreadPool* pool,
      const std::vector<std::pair<std::size_t, std::size_t>>& partitions,
      std::vector<internal::WorkerResult>* results) const;

  TrainerConfig config_;
};

/// Reads a checkpoint written during training back into a state dict.
agl::Result<std::map<std::string, tensor::Tensor>> LoadCheckpoint(
    const mr::LocalDfs& dfs, const std::string& prefix, int epoch);

/// Computes the task loss for a forward pass.
autograd::Variable TaskLoss(TaskKind task, const autograd::Variable& logits,
                            const gnn::PreparedBatch& batch);

/// Computes the task metric from logits.
double TaskMetric(TaskKind task, const tensor::Tensor& logits,
                  const gnn::PreparedBatch& batch);

}  // namespace agl::trainer
