// GraphTrainer (§3.3): parameter-server training over self-contained k-hop
// neighborhoods.
//
// Because every GraphFeature carries its whole receptive field, workers are
// independent: each processes its own partition of the training data with
// no cross-worker communication — only pull/push against the PS. The inner
// loop is a staged pipeline per worker (§3.3.2 "training pipeline"):
//
//   reader/prep stage   — reads + vectorizes + prunes + normalizes batches
//                         one queue-depth ahead of the model computation
//                         (a dedicated thread feeding a bounded queue; in
//                         streaming mode it deserializes GraphFeatures
//                         straight off the DFS part files);
//   compute stage       — forward/backward on the worker's model replica;
//   push/pull stage     — a dedicated thread owns all PS traffic, so the
//                         gradient push and the next parameter snapshot
//                         (double-buffered through a queue) overlap the
//                         compute stage's batch handling.
//
// Consistency is a tunable ("flexible model consistency", §3.1): fully
// asynchronous, bulk-synchronous, or stale-synchronous with a bounded
// clock skew — see SyncMode.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "gnn/model.h"
#include "mr/local_dfs.h"
#include "ps/client.h"
#include "ps/parameter_server.h"
#include "subgraph/graph_feature.h"
#include "trainer/checkpoint.h"
#include "trainer/feature_source.h"

namespace agl::trainer {

/// What the labels mean (drives loss + validation metric).
enum class TaskKind {
  kSingleLabel,  // integer classes, softmax CE, accuracy
  kMultiLabel,   // {0,1}^L targets, BCE-with-logits, micro-F1
  kBinaryAuc,    // 2 classes, softmax CE, AUC on P(class 1)
};

/// Consistency model for the parameter server ("flexible model
/// consistency", §3.1/§3.3).
enum class SyncMode {
  /// Workers pull/push independently; updates apply as they arrive. The
  /// production default (Figure 7's behaviour).
  kAsync,
  /// Bulk-synchronous: per step every worker computes a gradient on the
  /// same parameter snapshot; gradients are averaged into one update.
  /// Deterministic for a fixed partition, at the cost of lock-step
  /// barriers.
  kBsp,
  /// Stale-synchronous parallel: every worker owns a clock that ticks once
  /// per batch; a worker may run at most `staleness_bound` ticks ahead of
  /// the slowest, and a tick's gradients commit as one averaged update the
  /// moment every worker has contributed it. Bound 0 reproduces kBsp
  /// bit-for-bit; ps::kUnboundedStaleness never blocks (async progress).
  kSsp,
};

struct TrainerConfig {
  gnn::ModelConfig model;
  TaskKind task = TaskKind::kSingleLabel;
  SyncMode sync_mode = SyncMode::kAsync;
  int num_workers = 1;
  int ps_shards = 4;
  nn::Adam::Options adam;
  int batch_size = 32;
  int epochs = 10;
  /// Training pipeline optimization (§3.3.2): stage threads + bounded
  /// queues. Off = the same schedule executed inline (no overlap).
  bool use_pipeline = true;
  /// Depth of the per-worker prepared-batch queue (reader stage run-ahead;
  /// pipeline memory is O(prefetch_batches x batch)).
  int prefetch_batches = 2;
  /// SSP clock slack (kSsp only): how many batches any worker may run
  /// ahead of the slowest. 0 = BSP-exact lockstep;
  /// ps::kUnboundedStaleness = never block.
  int64_t staleness_bound = 1;
  uint64_t seed = 2024;
  /// Evaluate on the validation set every `eval_every` epochs (0 = never).
  int eval_every = 1;
  /// Optional early stop when validation metric fails to improve this many
  /// evaluations in a row (0 = disabled).
  int patience = 0;
  bool verbose = false;
  /// Warm start: when non-empty, the PS is initialized from this state
  /// dict instead of fresh model weights (resume-from-checkpoint).
  std::map<std::string, tensor::Tensor> initial_state;
  /// When set, the PS snapshot is checkpointed to this DFS after every
  /// epoch as dataset "<checkpoint_prefix>-epoch-<n>" (fault tolerance for
  /// long jobs; restore with LoadCheckpoint + initial_state).
  mr::LocalDfs* checkpoint_dfs = nullptr;
  std::string checkpoint_prefix = "checkpoint";
  /// Mid-epoch fault tolerance: checkpoint the full training state (PS
  /// values + Adam moments, SSP clocks, per-worker batch cursors and RNG
  /// streams) to the rolling dataset "<checkpoint_prefix>-mid" every this
  /// many per-worker batches (0 = epoch-boundary checkpoints only). Needs
  /// checkpoint_dfs and a deterministic mode — kBsp or kSsp; kAsync and
  /// TrainStreaming are rejected. Resume is bit-exact for kBsp and for
  /// kSsp at staleness bound 0.
  int64_t checkpoint_every_batches = 0;
  /// When true and "<checkpoint_prefix>-mid" exists on checkpoint_dfs,
  /// training resumes from it (mid-epoch) instead of starting fresh. The
  /// checkpoint must have been written by a run with this config and
  /// dataset (fingerprint-checked, kFailedPrecondition otherwise). The
  /// rolling checkpoint is dropped once training completes.
  bool resume = false;

  /// Structural validation, called up front by every `agl::Run` facade
  /// entry point (and usable directly).
  agl::Status Validate() const;
};

struct EpochRecord {
  int epoch = 0;
  double mean_train_loss = 0;
  double val_metric = 0;  // NaN when not evaluated
  double seconds = 0;
  /// Time split per pipeline stage (summed across workers): preprocessing
  /// (read + subgraph vectorization + pruning + normalization), model
  /// computation (forward/backward), and PS traffic (push/pull incl. SSP
  /// gate waits). With the pipeline on hardware with spare cores, the
  /// epoch cost approaches max over stages — the §3.3.2 claim.
  double prep_seconds = 0;
  double compute_seconds = 0;
  double comm_seconds = 0;
};

struct TrainReport {
  std::vector<EpochRecord> epochs;
  double total_seconds = 0;
  double best_val_metric = 0;
  /// Final parameters (PS snapshot after the last epoch).
  std::map<std::string, tensor::Tensor> final_state;
  /// PS traffic + SSP staleness accounting for the whole run.
  ps::ServerStats ps_stats;
};

namespace internal {
/// Per-worker accumulation for one epoch (exposed for the epoch runners).
/// The three stage timers are written by different pipeline threads and
/// must stay distinct members.
struct WorkerResult {
  double loss_sum = 0;
  int64_t batches = 0;
  double prep_seconds = 0;
  double compute_seconds = 0;
  double comm_seconds = 0;
  agl::Status status;
};

/// Mid-epoch checkpoint plumbing handed from TrainLoop to the epoch
/// runners. `resume` is non-null only for the epoch being resumed into;
/// the metric pointers let the checkpoint sink stamp the live TrainLoop
/// early-stopping state into each checkpoint.
struct MidCheckpointEnv {
  mr::LocalDfs* dfs = nullptr;
  std::string dataset;  // "<checkpoint_prefix>-mid"
  uint64_t fingerprint = 0;
  int64_t every = 0;
  const TrainCheckpoint* resume = nullptr;
  const double* best_val_metric = nullptr;
  const int* bad_evals = nullptr;
};

/// One worker's complete epoch over its partition slice, against an
/// arbitrary PS transport — the unit the multi-process driver runs inside
/// a spawned worker process with a ps::RemotePsClient (the in-process
/// trainer reaches the same code through its epoch runners with a
/// LocalPsClient). `config.sync_mode` kSsp engages the SSP clock
/// protocol; the driver maps kBsp onto kSsp at staleness bound 0, which
/// the consistency suite proves bit-identical. The returned result's
/// `status` field carries the worker's outcome (an error Result is
/// reserved for setup failures).
agl::Result<WorkerResult> RunWorkerEpoch(
    const TrainerConfig& config,
    std::span<const subgraph::GraphFeature> train, std::size_t begin,
    std::size_t end, int worker, int epoch, ps::PsClient* client);
}  // namespace internal

/// Distributed (simulated: worker threads + in-process PS) GNN trainer.
class GraphTrainer {
 public:
  explicit GraphTrainer(const TrainerConfig& config);

  /// Trains on `train`, optionally evaluating on `val` per epoch.
  agl::Result<TrainReport> Train(
      std::span<const subgraph::GraphFeature> train,
      std::span<const subgraph::GraphFeature> val) const;

  /// Trains directly off a DFS feature dataset: each worker's reader stage
  /// streams and deserializes its round-robin share of the part files one
  /// record at a time (memory O(prefetch_batches x batch), not O(shard)).
  /// kBsp needs random access and is rejected here; use Train().
  agl::Result<TrainReport> TrainStreaming(
      const DfsFeatureSource& source,
      std::span<const subgraph::GraphFeature> val) const;

  /// Evaluates `state` on a dataset; returns the task metric.
  agl::Result<double> Evaluate(
      const std::map<std::string, tensor::Tensor>& state,
      std::span<const subgraph::GraphFeature> data) const;

  const TrainerConfig& config() const { return config_; }

 private:
  /// `num_examples` identifies the training set for the mid-checkpoint
  /// fingerprint; nullopt (the streaming path) rejects mid-epoch
  /// checkpoint/resume configs up front.
  agl::Result<TrainReport> TrainLoop(
      const std::function<agl::Status(
          int epoch, ps::PsClient* client, ThreadPool* pool,
          std::vector<internal::WorkerResult>* results,
          const internal::MidCheckpointEnv* ckpt)>& run_epoch,
      int active_workers, std::span<const subgraph::GraphFeature> val,
      std::optional<uint64_t> num_examples) const;
  agl::Status RunPipelinedEpoch(
      std::span<const subgraph::GraphFeature> train, int epoch,
      ps::PsClient* client, ThreadPool* pool,
      const std::vector<std::pair<std::size_t, std::size_t>>& partitions,
      std::vector<internal::WorkerResult>* results,
      const internal::MidCheckpointEnv* ckpt) const;
  agl::Status RunStreamingEpoch(
      const DfsFeatureSource& source, int epoch,
      ps::PsClient* client, ThreadPool* pool, int active_workers,
      std::vector<internal::WorkerResult>* results) const;
  agl::Status RunBspEpoch(
      std::span<const subgraph::GraphFeature> train, int epoch,
      ps::PsClient* client, ThreadPool* pool,
      const std::vector<std::pair<std::size_t, std::size_t>>& partitions,
      std::vector<internal::WorkerResult>* results,
      const internal::MidCheckpointEnv* ckpt) const;

  TrainerConfig config_;
};

/// Reads a checkpoint written during training back into a state dict.
agl::Result<std::map<std::string, tensor::Tensor>> LoadCheckpoint(
    const mr::LocalDfs& dfs, const std::string& prefix, int epoch);

/// Computes the task loss for a forward pass.
autograd::Variable TaskLoss(TaskKind task, const autograd::Variable& logits,
                            const gnn::PreparedBatch& batch);

/// Computes the task metric from logits.
double TaskMetric(TaskKind task, const tensor::Tensor& logits,
                  const gnn::PreparedBatch& batch);

}  // namespace agl::trainer
