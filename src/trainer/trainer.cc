#include "trainer/trainer.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>

#include "autograd/ops.h"
#include "common/bounded_queue.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "io/codec.h"
#include "nn/metrics.h"
#include "nn/state_io.h"
#include "subgraph/batch.h"

namespace agl::trainer {

using autograd::Variable;
using subgraph::GraphFeature;

Variable TaskLoss(TaskKind task, const Variable& logits,
                  const gnn::PreparedBatch& batch) {
  switch (task) {
    case TaskKind::kSingleLabel:
    case TaskKind::kBinaryAuc:
      return autograd::SoftmaxCrossEntropy(logits, batch.labels);
    case TaskKind::kMultiLabel:
      return autograd::BceWithLogits(logits, batch.multilabels);
  }
  AGL_CHECK(false) << "unreachable";
  return Variable();
}

double TaskMetric(TaskKind task, const tensor::Tensor& logits,
                  const gnn::PreparedBatch& batch) {
  switch (task) {
    case TaskKind::kSingleLabel:
      return nn::Accuracy(logits, batch.labels);
    case TaskKind::kMultiLabel:
      return nn::MicroF1(logits, batch.multilabels);
    case TaskKind::kBinaryAuc: {
      std::vector<float> scores(logits.rows());
      std::vector<int> labels(logits.rows());
      for (int64_t i = 0; i < logits.rows(); ++i) {
        scores[i] = logits.at(i, 1) - logits.at(i, 0);  // monotone in P(1)
        labels[i] = batch.labels[i] == 1 ? 1 : 0;
      }
      return nn::Auc(scores, labels);
    }
  }
  AGL_CHECK(false) << "unreachable";
  return 0;
}

namespace {

using internal::WorkerResult;

/// Splits [0, n) into `parts` nearly equal contiguous ranges.
std::vector<std::pair<std::size_t, std::size_t>> SplitRanges(std::size_t n,
                                                             int parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  parts = std::max(1, parts);
  const std::size_t chunk = (n + parts - 1) / parts;
  for (int p = 0; p < parts; ++p) {
    const std::size_t begin = static_cast<std::size_t>(p) * chunk;
    if (begin >= n) break;
    out.emplace_back(begin, std::min(n, begin + chunk));
  }
  return out;
}

/// Prepares one batch: merge + vectorize + prune + normalize. This is the
/// "preprocessing stage" of the training pipeline.
gnn::PreparedBatch PrepareSlice(const gnn::GnnModel& model,
                                std::span<const GraphFeature> features,
                                std::size_t begin, std::size_t end) {
  const subgraph::VectorizedBatch vec = subgraph::MergeAndVectorize(
      std::span<const GraphFeature>(features.data() + begin, end - begin));
  return model.Prepare(vec);
}

/// Source of prepared batches for one worker's reader stage. Prepare() is
/// weight-independent, so the stage runs it on its own model replica.
class BatchProducer {
 public:
  virtual ~BatchProducer() = default;
  /// Returns the next prepared batch, or nullopt once the worker's
  /// partition is exhausted for this epoch.
  virtual agl::Result<std::optional<gnn::PreparedBatch>> Next(
      const gnn::GnnModel& prep_model) = 0;
  /// Total batches this producer will yield, when known up front (span
  /// mode); nullopt for open-ended streams. Lets the compute stage mark
  /// the final gradient push so the comm stage skips the dead pull after
  /// it. Must be safe to call concurrently with Next().
  virtual std::optional<int64_t> TotalBatches() const { return {}; }
};

/// Contiguous slices of an in-memory span (the Train() path).
class SpanBatchProducer : public BatchProducer {
 public:
  /// `skip_batches` fast-forwards past batches a resumed epoch already
  /// completed (TotalBatches then reports the remaining count).
  SpanBatchProducer(std::span<const GraphFeature> features,
                    std::size_t begin, std::size_t end, std::size_t bs,
                    std::size_t skip_batches = 0)
      : features_(features),
        begin_(std::min(end, begin + skip_batches * bs)),
        next_(begin_),
        end_(end),
        bs_(bs) {}

  agl::Result<std::optional<gnn::PreparedBatch>> Next(
      const gnn::GnnModel& prep_model) override {
    if (next_ >= end_) return std::optional<gnn::PreparedBatch>();
    const std::size_t s = next_;
    const std::size_t e = std::min(end_, s + bs_);
    next_ = e;
    return std::optional<gnn::PreparedBatch>(
        PrepareSlice(prep_model, features_, s, e));
  }

  std::optional<int64_t> TotalBatches() const override {
    return static_cast<int64_t>((end_ - begin_ + bs_ - 1) / bs_);
  }

 private:
  std::span<const GraphFeature> features_;
  const std::size_t begin_;
  std::size_t next_;
  const std::size_t end_;
  const std::size_t bs_;
};

/// Batches deserialized straight off the DFS part files (TrainStreaming):
/// the shard reader keeps memory bounded; this stage vectorizes them.
class StreamBatchProducer : public BatchProducer {
 public:
  explicit StreamBatchProducer(std::unique_ptr<StreamingShardReader> reader)
      : reader_(std::move(reader)) {}

  agl::Result<std::optional<gnn::PreparedBatch>> Next(
      const gnn::GnnModel& prep_model) override {
    AGL_ASSIGN_OR_RETURN(std::vector<GraphFeature> features,
                         reader_->Next());
    if (features.empty()) return std::optional<gnn::PreparedBatch>();
    return std::optional<gnn::PreparedBatch>(
        PrepareSlice(prep_model, features, 0, features.size()));
  }

 private:
  std::unique_ptr<StreamingShardReader> reader_;
};

/// One gradient set travelling from the compute stage to the push/pull
/// stage. `last` tells the comm stage not to pull a snapshot nobody will
/// consume (and, under SSP, not to park at the gate for it).
struct GradMsg {
  std::map<std::string, tensor::Tensor> grads;
  bool last = false;
};

using Snapshot = std::map<std::string, tensor::Tensor>;

/// Everything one worker's pipeline stages share for one epoch. The PS is
/// reached through the transport-neutral client, so the same pipeline
/// runs against the in-process server or a remote PS process.
struct WorkerEpochContext {
  const TrainerConfig* config;
  ps::PsClient* server;
  int worker;
  int epoch;
  bool ssp;
  /// Mid-epoch checkpoint barrier (null = no mid-epoch checkpoints).
  CheckpointCoordinator* coord = nullptr;
  /// Per-worker batches already completed before this run of the epoch
  /// (non-zero only when resuming); ticks continue from here.
  int64_t base_tick = 0;
  /// This worker's restored cursor (null unless resuming).
  const WorkerCursor* resume_cursor = nullptr;
};

/// Pulls a parameter snapshot through the mode-appropriate path.
agl::Result<Snapshot> PullSnapshot(const WorkerEpochContext& ctx) {
  if (ctx.ssp) return ctx.server->PullSsp(ctx.worker);
  return ctx.server->PullAll();
}

/// Pushes one gradient set through the mode-appropriate path.
agl::Status PushGrads(const WorkerEpochContext& ctx, GradMsg msg) {
  if (ctx.ssp) return ctx.server->PushSsp(ctx.worker, std::move(msg.grads));
  return ctx.server->PushGradients(msg.grads);
}

/// Forward/backward for one batch on the worker's replica; fills `out`
/// with the named gradients.
agl::Status ComputeBatch(const WorkerEpochContext& ctx, gnn::GnnModel* model,
                         Rng* rng, const Snapshot& snapshot,
                         const gnn::PreparedBatch& batch, WorkerResult* res,
                         GradMsg* out) {
  AGL_RETURN_IF_ERROR(model->LoadStateDict(snapshot));
  Variable logits = model->Forward(batch, /*training=*/true, rng);
  Variable loss = TaskLoss(ctx.config->task, logits, batch);
  autograd::Backward(loss);
  res->loss_sum += loss.value().at(0, 0);
  res->batches++;
  for (const nn::NamedParameter& p : model->Parameters()) {
    if (p.variable.node()->has_grad()) {
      out->grads.emplace(p.name, p.variable.grad());
    }
  }
  // Failpoint "trainer.step": an injected fault here aborts training after
  // this batch's compute, and the pipeline must tear down without
  // deadlocking (the legacy fault_injector hook's contract).
  return fail::MaybeFail("trainer.step");
}

/// The staged pipeline for one worker-epoch:
///
///   [prep thread] --PreparedBatch--> [compute] --GradMsg--> [comm thread]
///                     bounded queue              bounded queue
///                                    <--Snapshot--
///                                      bounded queue (double buffer)
///
/// The comm thread owns every PS interaction: it pre-pulls the snapshot
/// for step t+1 right after pushing step t's gradients, so PS traffic
/// (including SSP gate waits) overlaps the reader stage's run-ahead. The
/// compute stage consumes snapshots in step order, which keeps the
/// schedule's arithmetic identical to the inline (use_pipeline=false)
/// execution — and, at staleness bound 0, identical to kBsp.
///
/// Teardown invariant: every exit path (end-of-data, injected fault, PS
/// error, SSP cancellation) cancels all three queues and, under SSP, the
/// server's clock gate, so each stage thread is always joinable.
void RunPipelinedWorker(const WorkerEpochContext& ctx,
                        BatchProducer* producer, WorkerResult* res) {
  const TrainerConfig& config = *ctx.config;
  gnn::GnnModel model(config.model);
  gnn::GnnModel prep_model(config.model);
  Rng rng(DeriveSeed(config.seed,
                     static_cast<uint64_t>(ctx.epoch) * 1000 + ctx.worker));
  if (ctx.resume_cursor != nullptr) {
    // Resume mid-epoch: continue the dropout RNG stream and the loss
    // accounting exactly where the checkpoint froze them.
    if (!ctx.resume_cursor->rng_state.empty()) {
      std::istringstream iss(ctx.resume_cursor->rng_state);
      iss >> rng.engine();
    }
    res->loss_sum = ctx.resume_cursor->loss_sum;
    res->batches = ctx.resume_cursor->next_batch;
  }
  // Snapshot of this worker's position right after it computed batch
  // `tick - 1`, i.e. with `tick` batches done and their RNG draws
  // consumed. Only taken at checkpoint ticks (serializing the engine per
  // batch would be waste).
  const auto make_cursor = [&](int64_t tick) {
    WorkerCursor cursor;
    cursor.next_batch = tick;
    cursor.loss_sum = res->loss_sum;
    std::ostringstream oss;
    oss << rng.engine();
    cursor.rng_state = oss.str();
    return cursor;
  };

  agl::Status status;  // first failure from any stage of this worker

  if (!config.use_pipeline) {
    // Inline execution of the same schedule: prep, pull, compute, push.
    int64_t tick = ctx.base_tick;
    while (status.ok()) {
      Stopwatch prep_watch;
      auto next = producer->Next(prep_model);
      res->prep_seconds += prep_watch.Seconds();
      if (!next.ok()) {
        status = next.status();
        break;
      }
      if (!next->has_value()) break;
      Stopwatch comm_watch;
      auto snapshot = PullSnapshot(ctx);
      res->comm_seconds += comm_watch.Seconds();
      if (!snapshot.ok()) {
        status = snapshot.status();
        break;
      }
      Stopwatch compute_watch;
      GradMsg msg;
      status = ComputeBatch(ctx, &model, &rng, *snapshot, **next, res, &msg);
      res->compute_seconds += compute_watch.Seconds();
      if (!status.ok()) break;
      ++tick;
      if (ctx.coord != nullptr && ctx.coord->IsCheckpointTick(tick)) {
        ctx.coord->Deposit(ctx.worker, tick, make_cursor(tick));
      }
      Stopwatch push_watch;
      status = PushGrads(ctx, std::move(msg));
      res->comm_seconds += push_watch.Seconds();
      if (status.ok() && ctx.coord != nullptr) {
        status = ctx.coord->Arrive(ctx.worker, tick);
      }
    }
  } else {
    BoundedQueue<gnn::PreparedBatch> prep_q(
        static_cast<std::size_t>(std::max(1, config.prefetch_batches)));
    BoundedQueue<GradMsg> grad_q(1);
    BoundedQueue<Snapshot> snap_q(1);
    agl::Status prep_status;  // written by prep thread, read after join
    agl::Status comm_status;  // written by comm thread, read after join
    const auto cancel_all = [&] {
      prep_q.Cancel();
      grad_q.Cancel();
      snap_q.Cancel();
    };

    std::thread prep_thread([&] {
      while (true) {
        Stopwatch prep_watch;
        auto next = producer->Next(prep_model);
        res->prep_seconds += prep_watch.Seconds();
        if (!next.ok()) {
          prep_status = next.status();
          cancel_all();
          return;
        }
        if (!next->has_value()) {
          prep_q.Close();
          return;
        }
        if (!prep_q.Push(std::move(**next))) return;  // torn down
      }
    });

    std::thread comm_thread([&] {
      // Times PS interactions only (incl. SSP gate waits), not the idle
      // time spent waiting for the compute stage's gradients.
      const auto timed_pull = [&] {
        Stopwatch watch;
        auto snapshot = PullSnapshot(ctx);
        res->comm_seconds += watch.Seconds();
        return snapshot;
      };
      auto first = timed_pull();
      if (!first.ok()) {
        comm_status = first.status();
        cancel_all();
        return;
      }
      if (!snap_q.Push(std::move(*first))) return;
      GradMsg msg;
      int64_t pushed = ctx.base_tick;
      while (grad_q.Pop(&msg)) {
        const bool last = msg.last;
        Stopwatch push_watch;
        agl::Status s = PushGrads(ctx, std::move(msg));
        res->comm_seconds += push_watch.Seconds();
        if (s.ok()) {
          ++pushed;
          // Checkpoint barrier: parks here (post-push, pre-pull) at
          // checkpoint ticks until every worker's push for this tick has
          // landed; the last arrival snapshots the quiescent PS.
          if (ctx.coord != nullptr) {
            s = ctx.coord->Arrive(ctx.worker, pushed);
          }
        }
        if (s.ok()) {
          if (last) return;  // nobody will consume another snapshot
          // Double buffer: pre-pull the next step's snapshot while the
          // compute stage chews on the batch it already holds.
          auto snapshot = timed_pull();
          if (snapshot.ok()) {
            if (!snap_q.Push(std::move(*snapshot))) break;
            continue;
          }
          s = snapshot.status();
        }
        comm_status = s;
        cancel_all();
        if (ctx.coord != nullptr) ctx.coord->Cancel();
        return;
      }
    });

    const std::optional<int64_t> total_batches = producer->TotalBatches();
    int64_t tick = ctx.base_tick;
    gnn::PreparedBatch batch;
    bool have = prep_q.Pop(&batch);
    while (have) {
      Snapshot snapshot;
      if (!snap_q.Pop(&snapshot)) break;  // comm stage failed
      Stopwatch compute_watch;
      GradMsg msg;
      status = ComputeBatch(ctx, &model, &rng, snapshot, batch, res, &msg);
      res->compute_seconds += compute_watch.Seconds();
      if (!status.ok()) break;
      ++tick;
      // Cursor deposit must precede handing the comm stage this tick's
      // gradient, so the worker's own barrier arrival always finds it.
      if (ctx.coord != nullptr && ctx.coord->IsCheckpointTick(tick)) {
        ctx.coord->Deposit(ctx.worker, tick, make_cursor(tick));
      }
      // Mark the epoch's final push: exactly when the batch count is
      // known up front, best-effort (non-blocking peek at the reader
      // stage) for open-ended streams. A false negative only costs the
      // one spare pull the marker exists to avoid.
      gnn::PreparedBatch next;
      bool have_next = false;
      if (total_batches.has_value()) {
        msg.last = tick - ctx.base_tick == *total_batches;
      } else {
        switch (prep_q.TryPop(&next)) {
          case BoundedQueue<gnn::PreparedBatch>::TryPopResult::kItem:
            have_next = true;
            break;
          case BoundedQueue<gnn::PreparedBatch>::TryPopResult::kDone:
            msg.last = true;
            break;
          case BoundedQueue<gnn::PreparedBatch>::TryPopResult::kEmpty:
            break;
        }
      }
      const bool last = msg.last;
      if (!grad_q.Push(std::move(msg))) break;
      if (last) break;
      if (have_next) {
        batch = std::move(next);
      } else {
        have = prep_q.Pop(&batch);
      }
    }
    grad_q.Close();
    if (!status.ok()) {
      // Injected fault / compute failure: release every stage, including
      // peers blocked at the SSP gate or checkpoint barrier on other
      // workers.
      cancel_all();
      if (ctx.ssp) ctx.server->CancelSsp();
      if (ctx.coord != nullptr) ctx.coord->Cancel();
    }
    prep_thread.join();
    comm_thread.join();
    if (status.ok() && !prep_status.ok()) status = prep_status;
    if (status.ok() && !comm_status.ok()) status = comm_status;
  }

  if (!status.ok() && status.code() != agl::StatusCode::kAborted) {
    // A primary failure (not the echo of someone else's cancellation)
    // must release peers blocked at the clock gate or checkpoint barrier.
    if (ctx.ssp) ctx.server->CancelSsp();
    if (ctx.coord != nullptr) ctx.coord->Cancel();
  }
  if (ctx.ssp) {
    // Transport loss here (a dead PS process) must surface: peers would
    // otherwise wait forever on this worker's clock.
    const agl::Status finish = ctx.server->FinishSspWorker(ctx.worker);
    if (status.ok() && !finish.ok()) status = finish;
  }
  if (ctx.coord != nullptr) ctx.coord->Finish(ctx.worker);
  res->status = status;
}

/// Surfaces the most informative status: a primary error beats the
/// kAborted echoes that cancellation spreads to the other workers. An
/// injected crash is also kAborted, so it ranks between the two — it is
/// the root cause, the echoes are not.
agl::Status CollectWorkerStatuses(const std::vector<WorkerResult>& results) {
  for (const WorkerResult& r : results) {
    if (!r.status.ok() && r.status.code() != agl::StatusCode::kAborted) {
      return r.status;
    }
  }
  for (const WorkerResult& r : results) {
    if (fail::IsInjectedCrash(r.status)) return r.status;
  }
  for (const WorkerResult& r : results) {
    AGL_RETURN_IF_ERROR(r.status);
  }
  return agl::Status::OK();
}

}  // namespace

agl::Status TrainerConfig::Validate() const {
  if (model.num_layers < 1) {
    return agl::Status::InvalidArgument(
        "TrainerConfig: model.num_layers must be >= 1");
  }
  if (model.in_dim <= 0 || model.hidden_dim <= 0 || model.out_dim <= 0) {
    return agl::Status::InvalidArgument(
        "TrainerConfig: model dimensions must be positive");
  }
  if (num_workers < 1 || ps_shards < 1) {
    return agl::Status::InvalidArgument(
        "TrainerConfig: num_workers and ps_shards must be >= 1");
  }
  if (batch_size < 1 || epochs < 1) {
    return agl::Status::InvalidArgument(
        "TrainerConfig: batch_size and epochs must be >= 1");
  }
  if (use_pipeline && prefetch_batches < 1) {
    return agl::Status::InvalidArgument(
        "TrainerConfig: the pipeline needs prefetch_batches >= 1");
  }
  if (staleness_bound < 0 && staleness_bound != ps::kUnboundedStaleness) {
    return agl::Status::InvalidArgument(
        "TrainerConfig: staleness_bound must be >= 0 (or "
        "kUnboundedStaleness)");
  }
  if (eval_every < 0 || patience < 0) {
    return agl::Status::InvalidArgument(
        "TrainerConfig: eval_every and patience must be >= 0");
  }
  if (checkpoint_every_batches < 0) {
    return agl::Status::InvalidArgument(
        "TrainerConfig: checkpoint_every_batches must be >= 0");
  }
  if ((checkpoint_every_batches > 0 || resume) &&
      checkpoint_dfs == nullptr) {
    return agl::Status::InvalidArgument(
        "TrainerConfig: mid-epoch checkpointing/resume needs "
        "checkpoint_dfs");
  }
  return agl::Status::OK();
}

GraphTrainer::GraphTrainer(const TrainerConfig& config) : config_(config) {}

agl::Result<std::map<std::string, tensor::Tensor>> LoadCheckpoint(
    const mr::LocalDfs& dfs, const std::string& prefix, int epoch) {
  AGL_ASSIGN_OR_RETURN(
      std::vector<std::string> records,
      dfs.ReadDataset(prefix + "-epoch-" + std::to_string(epoch)));
  if (records.size() != 1) {
    return agl::Status::Corruption("checkpoint must hold exactly 1 record");
  }
  return nn::ParseStateDict(records[0]);
}

agl::Result<TrainReport> GraphTrainer::TrainLoop(
    const std::function<agl::Status(
        int epoch, ps::PsClient* client, ThreadPool* pool,
        std::vector<WorkerResult>* results,
        const internal::MidCheckpointEnv* ckpt)>& run_epoch,
    int active_workers, std::span<const GraphFeature> val,
    std::optional<uint64_t> num_examples) const {
  if (config_.staleness_bound < 0) {
    return agl::Status::InvalidArgument("staleness_bound must be >= 0");
  }
  const bool want_mid = config_.checkpoint_every_batches > 0 ||
                        config_.resume;
  if (want_mid) {
    if (!num_examples.has_value()) {
      return agl::Status::InvalidArgument(
          "mid-epoch checkpoint/resume is only supported by Train()");
    }
    if (config_.checkpoint_dfs == nullptr) {
      return agl::Status::InvalidArgument(
          "checkpoint_every_batches/resume need checkpoint_dfs");
    }
    if (config_.sync_mode == SyncMode::kAsync) {
      return agl::Status::InvalidArgument(
          "mid-epoch checkpoints need a deterministic mode (kBsp or "
          "kSsp); kAsync has no replayable schedule");
    }
  }
  Stopwatch total_watch;

  // Global model: provides the initial parameter values (and the layer
  // shapes every worker replica shares). A non-empty initial_state warm-
  // starts from a checkpoint instead.
  gnn::GnnModel init_model(config_.model);
  ps::ServerOptions ps_opts;
  ps_opts.num_shards = config_.ps_shards;
  ps_opts.adam = config_.adam;
  ps::ParameterServer server(ps_opts);
  // All PS access below goes through the transport-neutral client — the
  // loopback here; the multi-process driver substitutes a RemotePsClient
  // in front of the exact same control flow.
  ps::LocalPsClient client(&server);
  if (config_.initial_state.empty()) {
    AGL_RETURN_IF_ERROR(client.Initialize(init_model.StateDict()));
  } else {
    AGL_RETURN_IF_ERROR(init_model.LoadStateDict(config_.initial_state));
    AGL_RETURN_IF_ERROR(client.Initialize(config_.initial_state));
  }

  TrainReport report;
  report.best_val_metric = -std::numeric_limits<double>::infinity();
  int bad_evals = 0;

  // Fingerprint of everything that shapes the training schedule and
  // arithmetic: a mid-epoch checkpoint is only resumable into an
  // identical run. The initial state dict covers the model architecture
  // and seed-derived init (or the warm start).
  uint64_t fingerprint = 0;
  std::string mid_name;
  if (want_mid) {
    io::BufferWriter fp;
    fp.PutVarint64(static_cast<uint64_t>(config_.sync_mode));
    fp.PutVarint64(static_cast<uint64_t>(config_.task));
    fp.PutVarint64(static_cast<uint64_t>(active_workers));
    fp.PutVarint64(static_cast<uint64_t>(config_.batch_size));
    fp.PutVarint64(static_cast<uint64_t>(config_.staleness_bound));
    fp.PutVarint64(config_.seed);
    fp.PutVarint64(*num_examples);
    fp.PutString(nn::SerializeStateDict(init_model.StateDict()));
    fingerprint = Fnv1aHash(fp.Release());
    mid_name = MidCheckpointName(config_.checkpoint_prefix);
  }

  int start_epoch = 0;
  std::optional<TrainCheckpoint> resume_ckpt;
  if (config_.resume && config_.checkpoint_dfs->DatasetExists(mid_name)) {
    AGL_ASSIGN_OR_RETURN(std::vector<std::string> records,
                         config_.checkpoint_dfs->ReadDataset(mid_name));
    if (records.size() != 1) {
      return agl::Status::Corruption(
          "mid-epoch checkpoint must hold exactly 1 record");
    }
    AGL_ASSIGN_OR_RETURN(TrainCheckpoint loaded,
                         ParseTrainCheckpoint(records[0], fingerprint));
    if (static_cast<int>(loaded.cursors.size()) != active_workers) {
      return agl::Status::FailedPrecondition(
          "mid-epoch checkpoint worker count mismatch");
    }
    resume_ckpt = std::move(loaded);
    AGL_RETURN_IF_ERROR(client.ImportState(resume_ckpt->ps_state));
    start_epoch = static_cast<int>(resume_ckpt->epoch);
    report.best_val_metric = resume_ckpt->best_val_metric;
    bad_evals = static_cast<int>(resume_ckpt->bad_evals);
  }

  ThreadPool pool(static_cast<std::size_t>(active_workers));
  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    Stopwatch epoch_watch;
    std::vector<WorkerResult> results(active_workers);
    internal::MidCheckpointEnv env;
    const internal::MidCheckpointEnv* env_ptr = nullptr;
    const bool resume_this_epoch =
        resume_ckpt.has_value() && epoch == start_epoch;
    if (config_.checkpoint_every_batches > 0 || resume_this_epoch) {
      env.dfs = config_.checkpoint_dfs;
      env.dataset = mid_name;
      env.fingerprint = fingerprint;
      env.every = config_.checkpoint_every_batches;
      env.resume = resume_this_epoch ? &*resume_ckpt : nullptr;
      env.best_val_metric = &report.best_val_metric;
      env.bad_evals = &bad_evals;
      env_ptr = &env;
    }
    AGL_RETURN_IF_ERROR(run_epoch(epoch, &client, &pool, &results,
                                  env_ptr));

    EpochRecord rec;
    rec.epoch = epoch;
    double loss_sum = 0;
    int64_t batches = 0;
    for (const WorkerResult& r : results) {
      loss_sum += r.loss_sum;
      batches += r.batches;
      rec.prep_seconds += r.prep_seconds;
      rec.compute_seconds += r.compute_seconds;
      rec.comm_seconds += r.comm_seconds;
    }
    rec.mean_train_loss = batches > 0 ? loss_sum / batches : 0;
    rec.seconds = epoch_watch.Seconds();
    rec.val_metric = std::numeric_limits<double>::quiet_NaN();

    if (!val.empty() && config_.eval_every > 0 &&
        (epoch + 1) % config_.eval_every == 0) {
      AGL_ASSIGN_OR_RETURN(const Snapshot eval_state, client.PullAll());
      AGL_ASSIGN_OR_RETURN(rec.val_metric, Evaluate(eval_state, val));
      if (rec.val_metric > report.best_val_metric) {
        report.best_val_metric = rec.val_metric;
        bad_evals = 0;
      } else {
        ++bad_evals;
      }
    }
    if (config_.verbose) {
      AGL_LOG(Info) << "epoch " << epoch << " loss " << rec.mean_train_loss
                    << " val " << rec.val_metric << " (" << rec.seconds
                    << "s)";
    }
    report.epochs.push_back(rec);
    if (config_.checkpoint_dfs != nullptr) {
      AGL_ASSIGN_OR_RETURN(const Snapshot ckpt_state, client.PullAll());
      AGL_RETURN_IF_ERROR(config_.checkpoint_dfs->WriteDataset(
          config_.checkpoint_prefix + "-epoch-" + std::to_string(epoch),
          {nn::SerializeStateDict(ckpt_state)}, /*num_parts=*/1));
    }
    if (config_.patience > 0 && bad_evals >= config_.patience) break;
  }

  // Training completed: the rolling mid-epoch checkpoint would otherwise
  // make a later resume=true run silently redo finished work.
  if (want_mid && config_.checkpoint_dfs->DatasetExists(mid_name)) {
    AGL_RETURN_IF_ERROR(config_.checkpoint_dfs->DropDataset(mid_name));
  }

  AGL_ASSIGN_OR_RETURN(report.final_state, client.PullAll());
  AGL_ASSIGN_OR_RETURN(report.ps_stats, client.Stats());
  report.total_seconds = total_watch.Seconds();
  return report;
}

agl::Result<TrainReport> GraphTrainer::Train(
    std::span<const GraphFeature> train,
    std::span<const GraphFeature> val) const {
  if (train.empty()) {
    return agl::Status::InvalidArgument("empty training set");
  }
  // Static partition of the training data across workers (the paper's
  // workers each own a partition of GraphFeatures on the DFS).
  const auto partitions = SplitRanges(train.size(), config_.num_workers);
  const int active_workers = static_cast<int>(partitions.size());

  return TrainLoop(
      [&](int epoch, ps::PsClient* client, ThreadPool* pool,
          std::vector<WorkerResult>* results,
          const internal::MidCheckpointEnv* ckpt) {
        if (config_.sync_mode == SyncMode::kBsp) {
          return RunBspEpoch(train, epoch, client, pool, partitions,
                             results, ckpt);
        }
        return RunPipelinedEpoch(train, epoch, client, pool, partitions,
                                 results, ckpt);
      },
      active_workers, val, static_cast<uint64_t>(train.size()));
}

agl::Result<TrainReport> GraphTrainer::TrainStreaming(
    const DfsFeatureSource& source,
    std::span<const GraphFeature> val) const {
  if (config_.sync_mode == SyncMode::kBsp) {
    return agl::Status::InvalidArgument(
        "kBsp needs random access; use Train()");
  }
  if (source.num_parts() == 0) {
    return agl::Status::InvalidArgument("empty feature source");
  }
  // More workers than part files would only idle: parts are the
  // round-robin granularity of the stream.
  const int active_workers = static_cast<int>(
      std::min<int64_t>(std::max(1, config_.num_workers),
                        source.num_parts()));

  return TrainLoop(
      [&](int epoch, ps::PsClient* client, ThreadPool* pool,
          std::vector<WorkerResult>* results,
          const internal::MidCheckpointEnv* ckpt) {
        (void)ckpt;  // validation rejects mid-epoch checkpoints up front
        return RunStreamingEpoch(source, epoch, client, pool,
                                 active_workers, results);
      },
      active_workers, val, std::nullopt);
}

agl::Status GraphTrainer::RunPipelinedEpoch(
    std::span<const GraphFeature> train, int epoch,
    ps::PsClient* client, ThreadPool* pool,
    const std::vector<std::pair<std::size_t, std::size_t>>& partitions,
    std::vector<WorkerResult>* results,
    const internal::MidCheckpointEnv* ckpt) const {
  const int active_workers = static_cast<int>(partitions.size());
  const bool ssp = config_.sync_mode == SyncMode::kSsp;
  const TrainCheckpoint* resume = ckpt != nullptr ? ckpt->resume : nullptr;
  const int64_t base_tick = resume != nullptr ? resume->tick : 0;
  if (ssp) {
    if (resume != nullptr) {
      // The checkpoint barrier guarantees every worker's clock equalled
      // the committed tick; restore both instead of starting at 0.
      std::vector<int64_t> clocks;
      clocks.reserve(resume->cursors.size());
      for (const WorkerCursor& c : resume->cursors) {
        clocks.push_back(c.next_batch);
      }
      AGL_RETURN_IF_ERROR(
          client->BeginSspEpochAt(active_workers, config_.staleness_bound,
                                  std::move(clocks), resume->tick));
    } else {
      AGL_RETURN_IF_ERROR(
          client->BeginSspEpoch(active_workers, config_.staleness_bound));
    }
  }

  std::optional<CheckpointCoordinator> coord;
  if (ckpt != nullptr && ckpt->every > 0) {
    coord.emplace(
        active_workers, ckpt->every,
        [&, epoch](int64_t tick, std::vector<WorkerCursor> cursors) {
          TrainCheckpoint c;
          c.fingerprint = ckpt->fingerprint;
          c.epoch = epoch;
          c.tick = tick;
          c.best_val_metric = *ckpt->best_val_metric;
          c.bad_evals = *ckpt->bad_evals;
          c.cursors = std::move(cursors);
          auto exported = client->ExportState();
          if (!exported.ok()) return exported.status();
          c.ps_state = *std::move(exported);
          return ckpt->dfs->WriteDataset(
              ckpt->dataset, {SerializeTrainCheckpoint(c)},
              /*num_parts=*/1);
        });
  }

  const std::size_t bs =
      static_cast<std::size_t>(std::max(1, config_.batch_size));
  std::vector<std::future<void>> futs;
  for (int w = 0; w < active_workers; ++w) {
    futs.push_back(pool->Submit([&, w] {
      const auto [begin, end] = partitions[w];
      SpanBatchProducer producer(
          train, begin, end, bs,
          static_cast<std::size_t>(
              resume != nullptr ? resume->cursors[w].next_batch : 0));
      WorkerEpochContext ctx{&config_,
                             client,
                             w,
                             epoch,
                             ssp,
                             coord.has_value() ? &*coord : nullptr,
                             base_tick,
                             resume != nullptr ? &resume->cursors[w]
                                               : nullptr};
      RunPipelinedWorker(ctx, &producer, &(*results)[w]);
    }));
  }
  for (auto& f : futs) f.get();
  agl::Status end_status;
  if (ssp) end_status = client->EndSspEpoch();
  AGL_RETURN_IF_ERROR(CollectWorkerStatuses(*results));
  return end_status;
}

agl::Status GraphTrainer::RunStreamingEpoch(
    const DfsFeatureSource& source, int epoch, ps::PsClient* client,
    ThreadPool* pool, int active_workers,
    std::vector<WorkerResult>* results) const {
  const bool ssp = config_.sync_mode == SyncMode::kSsp;
  if (ssp) {
    AGL_RETURN_IF_ERROR(
        client->BeginSspEpoch(active_workers, config_.staleness_bound));
  }
  StreamingShardReader::Options opts;
  opts.batch_size = std::max(1, config_.batch_size);
  opts.prefetch_batches = std::max(1, config_.prefetch_batches);
  std::vector<std::future<void>> futs;
  for (int w = 0; w < active_workers; ++w) {
    futs.push_back(pool->Submit([&, w] {
      WorkerResult& res = (*results)[w];
      auto reader =
          StreamingShardReader::Open(source, w, active_workers, opts);
      if (!reader.ok()) {
        res.status = reader.status();
        if (ssp) {
          client->CancelSsp();
          client->FinishSspWorker(w);
        }
        return;
      }
      StreamBatchProducer producer(std::move(*reader));
      WorkerEpochContext ctx{&config_, client, w, epoch, ssp};
      RunPipelinedWorker(ctx, &producer, &res);
    }));
  }
  for (auto& f : futs) f.get();
  agl::Status end_status;
  if (ssp) end_status = client->EndSspEpoch();
  AGL_RETURN_IF_ERROR(CollectWorkerStatuses(*results));
  return end_status;
}

agl::Status GraphTrainer::RunBspEpoch(
    std::span<const GraphFeature> train, int epoch,
    ps::PsClient* client, ThreadPool* pool,
    const std::vector<std::pair<std::size_t, std::size_t>>& partitions,
    std::vector<WorkerResult>* results,
    const internal::MidCheckpointEnv* ckpt) const {
  const int active_workers = static_cast<int>(partitions.size());
  const std::size_t bs =
      static_cast<std::size_t>(std::max(1, config_.batch_size));
  const TrainCheckpoint* resume = ckpt != nullptr ? ckpt->resume : nullptr;

  // Lock-step rounds: the number of rounds is set by the largest
  // partition; workers with fewer batches idle in later rounds.
  std::vector<std::vector<std::size_t>> starts(active_workers);
  std::size_t rounds = 0;
  std::size_t min_rounds = std::numeric_limits<std::size_t>::max();
  for (int w = 0; w < active_workers; ++w) {
    const auto [begin, end] = partitions[w];
    for (std::size_t s = begin; s < end; s += bs) starts[w].push_back(s);
    rounds = std::max(rounds, starts[w].size());
    min_rounds = std::min(min_rounds, starts[w].size());
  }

  // Persistent per-worker replicas avoid per-round construction cost.
  std::vector<std::unique_ptr<gnn::GnnModel>> models;
  std::vector<Rng> rngs;
  for (int w = 0; w < active_workers; ++w) {
    models.push_back(std::make_unique<gnn::GnnModel>(config_.model));
    rngs.emplace_back(DeriveSeed(config_.seed,
                                 static_cast<uint64_t>(epoch) * 1000 + w));
  }
  std::size_t start_round = 0;
  if (resume != nullptr) {
    // A BSP round is one tick for every worker; restore each worker's
    // RNG stream and loss accounting alongside the round cursor.
    start_round = static_cast<std::size_t>(resume->tick);
    for (int w = 0; w < active_workers; ++w) {
      const WorkerCursor& c = resume->cursors[w];
      if (!c.rng_state.empty()) {
        std::istringstream iss(c.rng_state);
        iss >> rngs[w].engine();
      }
      (*results)[w].loss_sum = c.loss_sum;
      (*results)[w].batches = c.next_batch;
    }
  }

  for (std::size_t round = start_round; round < rounds; ++round) {
    // Barrier 1: every participating worker sees the same snapshot.
    AGL_ASSIGN_OR_RETURN(const Snapshot snapshot, client->PullAll());
    std::vector<std::map<std::string, tensor::Tensor>> grads(active_workers);
    std::vector<agl::Status> statuses(active_workers);
    std::vector<std::future<void>> futs;
    for (int w = 0; w < active_workers; ++w) {
      if (round >= starts[w].size()) continue;
      futs.push_back(pool->Submit([&, w] {
        WorkerResult& res = (*results)[w];
        const std::size_t s = starts[w][round];
        const std::size_t e = std::min(partitions[w].second, s + bs);
        Stopwatch prep_watch;
        gnn::PreparedBatch batch = PrepareSlice(*models[w], train, s, e);
        res.prep_seconds += prep_watch.Seconds();
        Stopwatch compute_watch;
        statuses[w] = models[w]->LoadStateDict(snapshot);
        if (!statuses[w].ok()) return;
        Variable logits = models[w]->Forward(batch, true, &rngs[w]);
        Variable loss = TaskLoss(config_.task, logits, batch);
        autograd::Backward(loss);
        res.loss_sum += loss.value().at(0, 0);
        res.batches++;
        for (const nn::NamedParameter& p : models[w]->Parameters()) {
          if (p.variable.node()->has_grad()) {
            grads[w].emplace(p.name, p.variable.grad());
          }
        }
        res.compute_seconds += compute_watch.Seconds();
        // Same "trainer.step" injection site the pipelined runner has.
        statuses[w] = fail::MaybeFail("trainer.step");
      }));
    }
    for (auto& f : futs) f.get();
    for (const agl::Status& s : statuses) AGL_RETURN_IF_ERROR(s);

    // Barrier 2: average the round's gradients into one update.
    std::map<std::string, tensor::Tensor> avg;
    int contributors = 0;
    for (int w = 0; w < active_workers; ++w) {
      if (grads[w].empty()) continue;
      ++contributors;
      for (const auto& [key, g] : grads[w]) {
        auto it = avg.find(key);
        if (it == avg.end()) {
          avg.emplace(key, g);
        } else {
          it->second.Add(g);
        }
      }
    }
    if (contributors == 0) continue;
    for (auto& [key, g] : avg) {
      g.Scale(1.f / static_cast<float>(contributors));
    }
    AGL_RETURN_IF_ERROR(client->PushGradients(avg));

    // Between rounds the main thread is the only PS client, so the
    // checkpoint is trivially consistent. Stop once the smallest
    // partition is exhausted — past that a round is no longer one tick
    // for every worker, matching the SSP coordinator's rule.
    const int64_t tick = static_cast<int64_t>(round) + 1;
    if (ckpt != nullptr && ckpt->every > 0 && tick % ckpt->every == 0 &&
        round + 1 <= min_rounds) {
      TrainCheckpoint c;
      c.fingerprint = ckpt->fingerprint;
      c.epoch = epoch;
      c.tick = tick;
      c.best_val_metric = *ckpt->best_val_metric;
      c.bad_evals = *ckpt->bad_evals;
      for (int w = 0; w < active_workers; ++w) {
        WorkerCursor cursor;
        cursor.next_batch = tick;
        cursor.loss_sum = (*results)[w].loss_sum;
        std::ostringstream oss;
        oss << rngs[w].engine();
        cursor.rng_state = oss.str();
        c.cursors.push_back(std::move(cursor));
      }
      AGL_ASSIGN_OR_RETURN(c.ps_state, client->ExportState());
      AGL_RETURN_IF_ERROR(ckpt->dfs->WriteDataset(
          ckpt->dataset, {SerializeTrainCheckpoint(c)}, /*num_parts=*/1));
    }
  }
  return agl::Status::OK();
}

namespace internal {

agl::Result<WorkerResult> RunWorkerEpoch(
    const TrainerConfig& config, std::span<const GraphFeature> train,
    std::size_t begin, std::size_t end, int worker, int epoch,
    ps::PsClient* client) {
  if (begin > end || end > train.size()) {
    return agl::Status::InvalidArgument("RunWorkerEpoch: bad partition");
  }
  WorkerResult res;
  const bool ssp = config.sync_mode == SyncMode::kSsp;
  SpanBatchProducer producer(
      train, begin, end,
      static_cast<std::size_t>(std::max(1, config.batch_size)),
      /*start_batch=*/0);
  WorkerEpochContext ctx{&config, client, worker, epoch, ssp};
  RunPipelinedWorker(ctx, &producer, &res);
  return res;
}

}  // namespace internal

agl::Result<double> GraphTrainer::Evaluate(
    const std::map<std::string, tensor::Tensor>& state,
    std::span<const GraphFeature> data) const {
  if (data.empty()) {
    return agl::Status::InvalidArgument("empty evaluation set");
  }
  gnn::GnnModel model(config_.model);
  AGL_RETURN_IF_ERROR(model.LoadStateDict(state));
  Rng rng(config_.seed);

  // Evaluate in batches; aggregate logits/labels for a dataset-level metric
  // (AUC and micro-F1 are not batch-decomposable).
  const std::size_t bs =
      static_cast<std::size_t>(std::max(1, config_.batch_size));
  std::vector<tensor::Tensor> logit_chunks;
  std::vector<gnn::PreparedBatch> batches;
  int64_t total_targets = 0;
  for (std::size_t s = 0; s < data.size(); s += bs) {
    const std::size_t e = std::min(data.size(), s + bs);
    gnn::PreparedBatch batch = PrepareSlice(model, data, s, e);
    Variable logits = model.Forward(batch, /*training=*/false, &rng);
    total_targets += logits.value().rows();
    logit_chunks.push_back(logits.value());
    batches.push_back(std::move(batch));
  }
  // Stitch into one pseudo-batch for metric computation.
  const int64_t cols = logit_chunks[0].cols();
  tensor::Tensor all_logits(total_targets, cols);
  gnn::PreparedBatch all;
  int64_t row = 0;
  const int64_t ml_cols =
      batches[0].multilabels.rows() > 0 ? batches[0].multilabels.cols() : 0;
  if (ml_cols > 0) all.multilabels = tensor::Tensor(total_targets, ml_cols);
  for (std::size_t c = 0; c < logit_chunks.size(); ++c) {
    for (int64_t i = 0; i < logit_chunks[c].rows(); ++i, ++row) {
      std::copy(logit_chunks[c].row(i), logit_chunks[c].row(i) + cols,
                all_logits.row(row));
      all.labels.push_back(batches[c].labels[i]);
      if (ml_cols > 0) {
        std::copy(batches[c].multilabels.row(i),
                  batches[c].multilabels.row(i) + ml_cols,
                  all.multilabels.row(row));
      }
    }
  }
  return TaskMetric(config_.task, all_logits, all);
}

}  // namespace agl::trainer
