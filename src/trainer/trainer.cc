#include "trainer/trainer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <limits>

#include "autograd/ops.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "nn/metrics.h"
#include "nn/state_io.h"
#include "subgraph/batch.h"

namespace agl::trainer {

using autograd::Variable;
using subgraph::GraphFeature;

Variable TaskLoss(TaskKind task, const Variable& logits,
                  const gnn::PreparedBatch& batch) {
  switch (task) {
    case TaskKind::kSingleLabel:
    case TaskKind::kBinaryAuc:
      return autograd::SoftmaxCrossEntropy(logits, batch.labels);
    case TaskKind::kMultiLabel:
      return autograd::BceWithLogits(logits, batch.multilabels);
  }
  AGL_CHECK(false) << "unreachable";
  return Variable();
}

double TaskMetric(TaskKind task, const tensor::Tensor& logits,
                  const gnn::PreparedBatch& batch) {
  switch (task) {
    case TaskKind::kSingleLabel:
      return nn::Accuracy(logits, batch.labels);
    case TaskKind::kMultiLabel:
      return nn::MicroF1(logits, batch.multilabels);
    case TaskKind::kBinaryAuc: {
      std::vector<float> scores(logits.rows());
      std::vector<int> labels(logits.rows());
      for (int64_t i = 0; i < logits.rows(); ++i) {
        scores[i] = logits.at(i, 1) - logits.at(i, 0);  // monotone in P(1)
        labels[i] = batch.labels[i] == 1 ? 1 : 0;
      }
      return nn::Auc(scores, labels);
    }
  }
  AGL_CHECK(false) << "unreachable";
  return 0;
}

namespace {

/// Splits [0, n) into `parts` nearly equal contiguous ranges.
std::vector<std::pair<std::size_t, std::size_t>> SplitRanges(std::size_t n,
                                                             int parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  parts = std::max(1, parts);
  const std::size_t chunk = (n + parts - 1) / parts;
  for (int p = 0; p < parts; ++p) {
    const std::size_t begin = static_cast<std::size_t>(p) * chunk;
    if (begin >= n) break;
    out.emplace_back(begin, std::min(n, begin + chunk));
  }
  return out;
}

/// Prepares one batch: merge + vectorize + prune + normalize. This is the
/// "preprocessing stage" of the training pipeline.
gnn::PreparedBatch PrepareSlice(const gnn::GnnModel& model,
                                std::span<const GraphFeature> features,
                                std::size_t begin, std::size_t end) {
  const subgraph::VectorizedBatch vec = subgraph::MergeAndVectorize(
      std::span<const GraphFeature>(features.data() + begin, end - begin));
  return model.Prepare(vec);
}

}  // namespace

using internal::WorkerResult;

GraphTrainer::GraphTrainer(const TrainerConfig& config) : config_(config) {}

agl::Result<std::map<std::string, tensor::Tensor>> LoadCheckpoint(
    const mr::LocalDfs& dfs, const std::string& prefix, int epoch) {
  AGL_ASSIGN_OR_RETURN(
      std::vector<std::string> records,
      dfs.ReadDataset(prefix + "-epoch-" + std::to_string(epoch)));
  if (records.size() != 1) {
    return agl::Status::Corruption("checkpoint must hold exactly 1 record");
  }
  return nn::ParseStateDict(records[0]);
}

agl::Result<TrainReport> GraphTrainer::Train(
    std::span<const GraphFeature> train,
    std::span<const GraphFeature> val) const {
  if (train.empty()) {
    return agl::Status::InvalidArgument("empty training set");
  }
  Stopwatch total_watch;

  // Global model: provides the initial parameter values (and the layer
  // shapes every worker replica shares). A non-empty initial_state warm-
  // starts from a checkpoint instead.
  gnn::GnnModel init_model(config_.model);
  ps::ServerOptions ps_opts;
  ps_opts.num_shards = config_.ps_shards;
  ps_opts.adam = config_.adam;
  ps::ParameterServer server(ps_opts);
  if (config_.initial_state.empty()) {
    server.Initialize(init_model.StateDict());
  } else {
    AGL_RETURN_IF_ERROR(init_model.LoadStateDict(config_.initial_state));
    server.Initialize(config_.initial_state);
  }

  // Static partition of the training data across workers (the paper's
  // workers each own a partition of GraphFeatures on the DFS).
  const auto partitions = SplitRanges(train.size(), config_.num_workers);
  const int active_workers = static_cast<int>(partitions.size());

  TrainReport report;
  report.best_val_metric = -std::numeric_limits<double>::infinity();
  int bad_evals = 0;

  ThreadPool pool(static_cast<std::size_t>(active_workers));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Stopwatch epoch_watch;
    std::vector<WorkerResult> results(active_workers);
    if (config_.sync_mode == SyncMode::kBsp) {
      AGL_RETURN_IF_ERROR(RunBspEpoch(train, epoch, &server, &pool,
                                      partitions, &results));
    } else {
      AGL_RETURN_IF_ERROR(RunAsyncEpoch(train, epoch, &server, &pool,
                                        partitions, &results));
    }

    EpochRecord rec;
    rec.epoch = epoch;
    double loss_sum = 0;
    int64_t batches = 0;
    for (const WorkerResult& r : results) {
      loss_sum += r.loss_sum;
      batches += r.batches;
      rec.prep_seconds += r.prep_seconds;
      rec.compute_seconds += r.compute_seconds;
    }
    rec.mean_train_loss = batches > 0 ? loss_sum / batches : 0;
    rec.seconds = epoch_watch.Seconds();
    rec.val_metric = std::numeric_limits<double>::quiet_NaN();

    if (!val.empty() && config_.eval_every > 0 &&
        (epoch + 1) % config_.eval_every == 0) {
      AGL_ASSIGN_OR_RETURN(rec.val_metric,
                           Evaluate(server.PullAll(), val));
      if (rec.val_metric > report.best_val_metric) {
        report.best_val_metric = rec.val_metric;
        bad_evals = 0;
      } else {
        ++bad_evals;
      }
    }
    if (config_.verbose) {
      AGL_LOG(Info) << "epoch " << epoch << " loss " << rec.mean_train_loss
                    << " val " << rec.val_metric << " (" << rec.seconds
                    << "s)";
    }
    report.epochs.push_back(rec);
    if (config_.checkpoint_dfs != nullptr) {
      AGL_RETURN_IF_ERROR(config_.checkpoint_dfs->WriteDataset(
          config_.checkpoint_prefix + "-epoch-" + std::to_string(epoch),
          {nn::SerializeStateDict(server.PullAll())}, /*num_parts=*/1));
    }
    if (config_.patience > 0 && bad_evals >= config_.patience) break;
  }

  report.final_state = server.PullAll();
  report.total_seconds = total_watch.Seconds();
  return report;
}

agl::Status GraphTrainer::RunAsyncEpoch(
    std::span<const GraphFeature> train, int epoch,
    ps::ParameterServer* server, ThreadPool* pool,
    const std::vector<std::pair<std::size_t, std::size_t>>& partitions,
    std::vector<WorkerResult>* results) const {
  const int active_workers = static_cast<int>(partitions.size());
  ps::ParameterServer& srv = *server;
  std::vector<std::future<void>> futs;
  for (int w = 0; w < active_workers; ++w) {
    futs.push_back(pool->Submit([&, w] {
        const auto [begin, end] = partitions[w];
        // Each worker owns a model replica and a deterministic RNG stream.
        gnn::GnnModel model(config_.model);
        Rng rng(DeriveSeed(config_.seed,
                           static_cast<uint64_t>(epoch) * 1000 + w));
        WorkerResult& res = (*results)[w];

        const std::size_t bs =
            static_cast<std::size_t>(std::max(1, config_.batch_size));
        std::vector<std::size_t> starts;
        for (std::size_t s = begin; s < end; s += bs) starts.push_back(s);

        // Training pipeline: preprocessing of batch i+1 overlaps the model
        // computation of batch i via an async prefetch.
        std::future<gnn::PreparedBatch> prefetch;
        auto launch_prefetch = [&](std::size_t idx) {
          const std::size_t s = starts[idx];
          const std::size_t e = std::min(end, s + bs);
          prefetch = std::async(std::launch::async,
                                [&model, &res, train, s, e] {
            Stopwatch prep_watch;
            gnn::PreparedBatch out = PrepareSlice(model, train, s, e);
            res.prep_seconds += prep_watch.Seconds();
            return out;
          });
        };
        if (config_.use_pipeline && !starts.empty()) launch_prefetch(0);

        for (std::size_t bi = 0; bi < starts.size(); ++bi) {
          gnn::PreparedBatch batch;
          if (config_.use_pipeline) {
            batch = prefetch.get();
            if (bi + 1 < starts.size()) launch_prefetch(bi + 1);
          } else {
            const std::size_t s = starts[bi];
            const std::size_t e = std::min(end, s + bs);
            Stopwatch prep_watch;
            batch = PrepareSlice(model, train, s, e);
            res.prep_seconds += prep_watch.Seconds();
          }
          Stopwatch compute_watch;

          // Pull fresh parameters, compute, push gradients.
          res.status = model.LoadStateDict(srv.PullAll());
          if (!res.status.ok()) return;
          Variable logits = model.Forward(batch, /*training=*/true, &rng);
          Variable loss = TaskLoss(config_.task, logits, batch);
          autograd::Backward(loss);
          res.loss_sum += loss.value().at(0, 0);
          res.batches++;

          std::map<std::string, tensor::Tensor> grads;
          for (const nn::NamedParameter& p : model.Parameters()) {
            if (p.variable.node()->has_grad()) {
              grads.emplace(p.name, p.variable.grad());
            }
          }
          res.status = srv.PushGradients(grads);
          if (!res.status.ok()) return;
          res.compute_seconds += compute_watch.Seconds();
        }
        res.status = agl::Status::OK();
      }));
  }
  for (auto& f : futs) f.get();
  for (const WorkerResult& r : *results) {
    AGL_RETURN_IF_ERROR(r.status);
  }
  return agl::Status::OK();
}

agl::Status GraphTrainer::RunBspEpoch(
    std::span<const GraphFeature> train, int epoch,
    ps::ParameterServer* server, ThreadPool* pool,
    const std::vector<std::pair<std::size_t, std::size_t>>& partitions,
    std::vector<WorkerResult>* results) const {
  const int active_workers = static_cast<int>(partitions.size());
  const std::size_t bs =
      static_cast<std::size_t>(std::max(1, config_.batch_size));

  // Lock-step rounds: the number of rounds is set by the largest
  // partition; workers with fewer batches idle in later rounds.
  std::vector<std::vector<std::size_t>> starts(active_workers);
  std::size_t rounds = 0;
  for (int w = 0; w < active_workers; ++w) {
    const auto [begin, end] = partitions[w];
    for (std::size_t s = begin; s < end; s += bs) starts[w].push_back(s);
    rounds = std::max(rounds, starts[w].size());
  }

  // Persistent per-worker replicas avoid per-round construction cost.
  std::vector<std::unique_ptr<gnn::GnnModel>> models;
  std::vector<Rng> rngs;
  for (int w = 0; w < active_workers; ++w) {
    models.push_back(std::make_unique<gnn::GnnModel>(config_.model));
    rngs.emplace_back(DeriveSeed(config_.seed,
                                 static_cast<uint64_t>(epoch) * 1000 + w));
  }

  for (std::size_t round = 0; round < rounds; ++round) {
    // Barrier 1: every participating worker sees the same snapshot.
    const std::map<std::string, tensor::Tensor> snapshot = server->PullAll();
    std::vector<std::map<std::string, tensor::Tensor>> grads(active_workers);
    std::vector<agl::Status> statuses(active_workers);
    std::vector<std::future<void>> futs;
    for (int w = 0; w < active_workers; ++w) {
      if (round >= starts[w].size()) continue;
      futs.push_back(pool->Submit([&, w] {
        WorkerResult& res = (*results)[w];
        const std::size_t s = starts[w][round];
        const std::size_t e = std::min(partitions[w].second, s + bs);
        Stopwatch prep_watch;
        gnn::PreparedBatch batch = PrepareSlice(*models[w], train, s, e);
        res.prep_seconds += prep_watch.Seconds();
        Stopwatch compute_watch;
        statuses[w] = models[w]->LoadStateDict(snapshot);
        if (!statuses[w].ok()) return;
        Variable logits = models[w]->Forward(batch, true, &rngs[w]);
        Variable loss = TaskLoss(config_.task, logits, batch);
        autograd::Backward(loss);
        res.loss_sum += loss.value().at(0, 0);
        res.batches++;
        for (const nn::NamedParameter& p : models[w]->Parameters()) {
          if (p.variable.node()->has_grad()) {
            grads[w].emplace(p.name, p.variable.grad());
          }
        }
        res.compute_seconds += compute_watch.Seconds();
      }));
    }
    for (auto& f : futs) f.get();
    for (const agl::Status& s : statuses) AGL_RETURN_IF_ERROR(s);

    // Barrier 2: average the round's gradients into one update.
    std::map<std::string, tensor::Tensor> avg;
    int contributors = 0;
    for (int w = 0; w < active_workers; ++w) {
      if (grads[w].empty()) continue;
      ++contributors;
      for (const auto& [key, g] : grads[w]) {
        auto it = avg.find(key);
        if (it == avg.end()) {
          avg.emplace(key, g);
        } else {
          it->second.Add(g);
        }
      }
    }
    if (contributors == 0) continue;
    for (auto& [key, g] : avg) {
      g.Scale(1.f / static_cast<float>(contributors));
    }
    AGL_RETURN_IF_ERROR(server->PushGradients(avg));
  }
  return agl::Status::OK();
}

agl::Result<double> GraphTrainer::Evaluate(
    const std::map<std::string, tensor::Tensor>& state,
    std::span<const GraphFeature> data) const {
  if (data.empty()) {
    return agl::Status::InvalidArgument("empty evaluation set");
  }
  gnn::GnnModel model(config_.model);
  AGL_RETURN_IF_ERROR(model.LoadStateDict(state));
  Rng rng(config_.seed);

  // Evaluate in batches; aggregate logits/labels for a dataset-level metric
  // (AUC and micro-F1 are not batch-decomposable).
  const std::size_t bs =
      static_cast<std::size_t>(std::max(1, config_.batch_size));
  std::vector<tensor::Tensor> logit_chunks;
  std::vector<gnn::PreparedBatch> batches;
  int64_t total_targets = 0;
  for (std::size_t s = 0; s < data.size(); s += bs) {
    const std::size_t e = std::min(data.size(), s + bs);
    gnn::PreparedBatch batch = PrepareSlice(model, data, s, e);
    Variable logits = model.Forward(batch, /*training=*/false, &rng);
    total_targets += logits.value().rows();
    logit_chunks.push_back(logits.value());
    batches.push_back(std::move(batch));
  }
  // Stitch into one pseudo-batch for metric computation.
  const int64_t cols = logit_chunks[0].cols();
  tensor::Tensor all_logits(total_targets, cols);
  gnn::PreparedBatch all;
  int64_t row = 0;
  const int64_t ml_cols =
      batches[0].multilabels.rows() > 0 ? batches[0].multilabels.cols() : 0;
  if (ml_cols > 0) all.multilabels = tensor::Tensor(total_targets, ml_cols);
  for (std::size_t c = 0; c < logit_chunks.size(); ++c) {
    for (int64_t i = 0; i < logit_chunks[c].rows(); ++i, ++row) {
      std::copy(logit_chunks[c].row(i), logit_chunks[c].row(i) + cols,
                all_logits.row(row));
      all.labels.push_back(batches[c].labels[i]);
      if (ml_cols > 0) {
        std::copy(batches[c].multilabels.row(i),
                  batches[c].multilabels.row(i) + ml_cols,
                  all.multilabels.row(row));
      }
    }
  }
  return TaskMetric(config_.task, all_logits, all);
}

}  // namespace agl::trainer
