// Mid-epoch trainer checkpoints (fault tolerance for long epochs).
//
// The per-epoch checkpoint datasets ("<prefix>-epoch-<n>") only capture
// parameter values at epoch boundaries; a kill inside a long epoch loses
// the whole epoch. This layer checkpoints the full training state every
// `checkpoint_every_batches` per-worker batches into the rolling dataset
// "<prefix>-mid" (atomically republished each time, so a crash during the
// write leaves the previous checkpoint intact):
//
//   * every parameter value plus its Adam moments and step count
//     (ps::ExportedParam — the optimizer trajectory, not just weights);
//   * the SSP clocks / committed-tick watermark;
//   * each worker's batch cursor, dropout RNG stream, and running loss;
//   * the TrainLoop's best-metric / patience counters.
//
// Restoring all of that makes resume *bit-exact* for the deterministic
// modes (kBsp, and kSsp at staleness bound 0): the resumed run replays the
// exact arithmetic the uninterrupted run would have performed.
//
// Consistency protocol. A checkpoint is only meaningful when no gradient
// is in flight. The BSP runner checkpoints between rounds on the main
// thread, where that holds trivially. The pipelined SSP runner uses
// CheckpointCoordinator: at each checkpoint tick every worker's comm
// thread parks at a barrier right after its push, and the compute stage
// has deposited its cursor (taken right after computing that tick's
// batch, before any draw for the next one). When the last worker arrives,
// all pushed ticks are committed and the PS is quiescent, so the last
// arrival snapshots it and writes the checkpoint. Once any worker
// exhausts its partition the barrier can no longer be made consistent,
// so checkpointing simply stops for the rest of that epoch.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "ps/parameter_server.h"

namespace agl::trainer {

/// One worker's position inside an epoch, captured right after it finished
/// computing batch `next_batch - 1` (so `next_batch` batches are done).
struct WorkerCursor {
  int64_t next_batch = 0;
  double loss_sum = 0;
  /// The worker's dropout RNG stream (std::mt19937_64 stream state), taken
  /// after the last completed batch's draws.
  std::string rng_state;
};

/// Full mid-epoch training state. `tick` is the per-worker batch count the
/// checkpoint was taken at; under the coordinator protocol every cursor's
/// next_batch equals it.
struct TrainCheckpoint {
  /// Guards against resuming with an incompatible run setup; computed by
  /// the trainer from its config + dataset size.
  uint64_t fingerprint = 0;
  int64_t epoch = 0;
  int64_t tick = 0;
  double best_val_metric = 0;
  int64_t bad_evals = 0;
  std::vector<WorkerCursor> cursors;
  std::map<std::string, ps::ExportedParam> ps_state;
};

/// Dataset name the rolling mid-epoch checkpoint is published under.
std::string MidCheckpointName(const std::string& prefix);

/// Flattens a checkpoint to a versioned byte string ("AGLCKPT1" magic).
std::string SerializeTrainCheckpoint(const TrainCheckpoint& ckpt);

/// Parses bytes produced by SerializeTrainCheckpoint. Truncated or
/// malformed input (including a bad magic) surfaces as kCorruption; a
/// fingerprint differing from `expected_fingerprint` — a checkpoint from
/// some other run setup — as kFailedPrecondition.
agl::Result<TrainCheckpoint> ParseTrainCheckpoint(
    const std::string& bytes, uint64_t expected_fingerprint);

/// Barrier that makes pipelined SSP checkpoints consistent (see the file
/// comment for the protocol). All methods are no-ops when `every <= 0`.
class CheckpointCoordinator {
 public:
  /// `sink` runs on the last arriving comm thread with the PS quiescent;
  /// its status propagates to every worker arriving at that tick.
  CheckpointCoordinator(
      int num_workers, int64_t every,
      std::function<agl::Status(int64_t tick,
                                std::vector<WorkerCursor> cursors)>
          sink);

  /// True when `tick` (1-based per-worker batch count) is a checkpoint
  /// tick, i.e. Deposit/Arrive will act on it. Lets the compute stage
  /// skip serializing its RNG on every other batch.
  bool IsCheckpointTick(int64_t tick) const EXCLUDES(mu_);

  /// Compute stage: records worker `worker`'s cursor for checkpoint tick
  /// `tick`. Must happen before that tick's gradient is handed to the
  /// comm stage (which orders it before the worker's own Arrive).
  void Deposit(int worker, int64_t tick, WorkerCursor cursor) EXCLUDES(mu_);

  /// Comm stage: called after the push for `tick` completed. At
  /// checkpoint ticks, blocks until every active worker arrived; the last
  /// arrival runs the sink. Returns the sink's status (every arrival of
  /// the tick sees it), kAborted after Cancel().
  agl::Status Arrive(int worker, int64_t tick) EXCLUDES(mu_);

  /// Worker exhausted its partition: stop counting it and disable all
  /// further checkpoints this epoch (a barrier without it can no longer
  /// describe a resumable state). Any barrier in progress is abandoned
  /// (its waiters are released with OK, no checkpoint is written).
  void Finish(int worker) EXCLUDES(mu_);

  /// Error teardown: release every present and future Arrive with
  /// kAborted so pipeline threads stay joinable.
  void Cancel() EXCLUDES(mu_);

 private:
  const int num_workers_;
  const int64_t every_;
  const std::function<agl::Status(int64_t, std::vector<WorkerCursor>)>
      sink_;

  mutable common::Mutex mu_;
  common::CondVar cv_;
  int active_ GUARDED_BY(mu_);
  bool disabled_ GUARDED_BY(mu_) = false;
  bool cancelled_ GUARDED_BY(mu_) = false;
  // The barrier currently forming (at most one is ever in flight: nobody
  // proceeds past a checkpoint tick until everyone arrived at it).
  int64_t gen_tick_ GUARDED_BY(mu_) = -1;
  int arrived_ GUARDED_BY(mu_) = 0;
  bool gen_done_ GUARDED_BY(mu_) = false;
  agl::Status gen_status_ GUARDED_BY(mu_);
  std::vector<WorkerCursor> cursors_ GUARDED_BY(mu_);
  std::vector<bool> have_cursor_ GUARDED_BY(mu_);
};

}  // namespace agl::trainer
