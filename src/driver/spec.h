// Job-spec codecs for the multi-process driver: everything a spawned
// worker process needs to run its slice of a job — the job config, its
// table/feature partition, and the result/error payloads it reports back —
// serialized through the shared DFS. The encodings reuse the row/state
// serializers the pipelines already emit (NodeRecord/EdgeRecord/
// GraphFeature/state dicts), so a value that crosses the process boundary
// is byte-identical to its in-process twin.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analytics/vertex_program.h"
#include "common/status.h"
#include "io/codec.h"
#include "flat/exchange.h"
#include "flat/graphflat.h"
#include "flat/tables.h"
#include "mr/mapreduce.h"
#include "trainer/trainer.h"

namespace agl::driver {

/// Which vertex program an analytics shard process should instantiate —
/// programs are stateless-by-parameters, so a name + scalars round-trips
/// them across the exec boundary.
struct ProgramSpec {
  std::string name;  // "pagerank" | "cc" | "sssp" | "lp"
  double damping = 0.85;
  double tolerance = 1e-10;
  flat::NodeId source = 0;  // sssp only
};

/// Builds the program a spec names; kInvalidArgument for unknown names.
agl::Result<std::unique_ptr<analytics::VertexProgram>> MakeProgram(
    const ProgramSpec& spec);

// --- status / stats ---------------------------------------------------------

void PutStatus(io::BufferWriter* w, const agl::Status& status);
agl::Status GetStatus(io::BufferReader* r, agl::Status* out);

void PutJobStats(io::BufferWriter* w, const mr::JobStats& stats);
agl::Status GetJobStats(io::BufferReader* r, mr::JobStats* out);

void PutExchangeStats(io::BufferWriter* w, const flat::ExchangeStats& stats);
agl::Status GetExchangeStats(io::BufferReader* r, flat::ExchangeStats* out);

// --- table slices -----------------------------------------------------------

/// One shard's map input: its node rows followed by its incident edges.
std::string EncodeTableSlice(const std::vector<flat::NodeRecord>& nodes,
                             const std::vector<flat::EdgeRecord>& edges);
agl::Status DecodeTableSlice(const std::string& bytes,
                             std::vector<flat::NodeRecord>* nodes,
                             std::vector<flat::EdgeRecord>* edges);

// --- job metas --------------------------------------------------------------

/// GraphFlat shard-job meta: the config plus the feature dims the driver
/// inferred from the full tables (a shard's slice may be edgeless).
struct FlatJobMeta {
  flat::GraphFlatConfig config;
  int64_t node_feature_dim = 0;
  int64_t edge_feature_dim = 0;
  int exchange_poll_ms = 2;
  int exchange_timeout_ms = 120000;
};
std::string EncodeFlatJobMeta(const FlatJobMeta& meta);
agl::Result<FlatJobMeta> DecodeFlatJobMeta(const std::string& bytes);

/// Analytics shard-job meta: config + program + the global vertex count
/// every shard's convergence bookkeeping divides through.
struct AnalyticsJobMeta {
  analytics::AnalyticsConfig config;
  ProgramSpec program;
  int64_t num_vertices = 0;
  int exchange_poll_ms = 2;
  int exchange_timeout_ms = 120000;
};
std::string EncodeAnalyticsJobMeta(const AnalyticsJobMeta& meta);
agl::Result<AnalyticsJobMeta> DecodeAnalyticsJobMeta(const std::string& bytes);

/// Trainer worker-job meta. Only the schedule-shaping scalar config
/// travels; DFS pointers and warm-start state stay with the driver (the
/// worker pulls parameters from the wire PS).
struct TrainJobMeta {
  trainer::TrainerConfig config;
  /// Workers actually running (partition count; <= config.num_workers).
  int active_workers = 0;
  int64_t num_examples = 0;
};
std::string EncodeTrainJobMeta(const TrainJobMeta& meta);
agl::Result<TrainJobMeta> DecodeTrainJobMeta(const std::string& bytes);

// --- worker reports ---------------------------------------------------------

/// One trainer worker's epoch outcome (internal::WorkerResult + status).
std::string EncodeWorkerResult(const trainer::internal::WorkerResult& res);
agl::Result<trainer::internal::WorkerResult> DecodeWorkerResult(
    const std::string& bytes);

/// Analytics per-shard stats the driver folds into the job stats.
std::string EncodeAnalyticsStats(const analytics::AnalyticsStats& stats);
agl::Result<analytics::AnalyticsStats> DecodeAnalyticsStats(
    const std::string& bytes);

}  // namespace agl::driver
