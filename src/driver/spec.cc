#include "driver/spec.h"

#include <utility>

#include "analytics/programs.h"

namespace agl::driver {

namespace {

void PutInt(io::BufferWriter* w, int64_t v) { w->PutVarint64Signed(v); }

agl::Status GetInt(io::BufferReader* r, int64_t* out) {
  return r->GetVarint64Signed(out);
}

agl::Status GetIntAs(io::BufferReader* r, int* out) {
  int64_t v = 0;
  AGL_RETURN_IF_ERROR(r->GetVarint64Signed(&v));
  *out = static_cast<int>(v);
  return agl::Status::OK();
}

void PutInt64Vector(io::BufferWriter* w, const std::vector<int64_t>& v) {
  w->PutVarint64(v.size());
  for (int64_t x : v) w->PutVarint64Signed(x);
}

agl::Status GetInt64Vector(io::BufferReader* r, std::vector<int64_t>* out) {
  uint64_t n = 0;
  AGL_RETURN_IF_ERROR(r->GetVarint64(&n));
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    int64_t x = 0;
    AGL_RETURN_IF_ERROR(r->GetVarint64Signed(&x));
    out->push_back(x);
  }
  return agl::Status::OK();
}

void PutJobConfig(io::BufferWriter* w, const mr::JobConfig& c) {
  PutInt(w, c.num_workers);
  PutInt(w, c.num_map_tasks);
  PutInt(w, c.num_reduce_tasks);
  PutInt(w, c.max_task_attempts);
  w->PutDouble(c.backoff_initial_ms);
  w->PutDouble(c.backoff_max_ms);
  w->PutDouble(c.retry_deadline_ms);
  w->PutVarint64(c.seed);
}

agl::Status GetJobConfig(io::BufferReader* r, mr::JobConfig* c) {
  AGL_RETURN_IF_ERROR(GetIntAs(r, &c->num_workers));
  AGL_RETURN_IF_ERROR(GetIntAs(r, &c->num_map_tasks));
  AGL_RETURN_IF_ERROR(GetIntAs(r, &c->num_reduce_tasks));
  AGL_RETURN_IF_ERROR(GetIntAs(r, &c->max_task_attempts));
  AGL_RETURN_IF_ERROR(r->GetDouble(&c->backoff_initial_ms));
  AGL_RETURN_IF_ERROR(r->GetDouble(&c->backoff_max_ms));
  AGL_RETURN_IF_ERROR(r->GetDouble(&c->retry_deadline_ms));
  return r->GetVarint64(&c->seed);
}

}  // namespace

agl::Result<std::unique_ptr<analytics::VertexProgram>> MakeProgram(
    const ProgramSpec& spec) {
  if (spec.name == "pagerank") {
    return std::unique_ptr<analytics::VertexProgram>(
        new analytics::PageRankProgram(spec.damping, spec.tolerance));
  }
  if (spec.name == "cc") {
    return std::unique_ptr<analytics::VertexProgram>(
        new analytics::ConnectedComponentsProgram());
  }
  if (spec.name == "sssp") {
    return std::unique_ptr<analytics::VertexProgram>(
        new analytics::SsspProgram(spec.source));
  }
  if (spec.name == "lp") {
    return std::unique_ptr<analytics::VertexProgram>(
        new analytics::LabelPropagationProgram());
  }
  return agl::Status::InvalidArgument("unknown vertex program '" +
                                      spec.name + "'");
}

void PutStatus(io::BufferWriter* w, const agl::Status& status) {
  w->PutVarint64(static_cast<uint64_t>(status.code()));
  w->PutString(status.message());
}

agl::Status GetStatus(io::BufferReader* r, agl::Status* out) {
  uint64_t code = 0;
  std::string message;
  AGL_RETURN_IF_ERROR(r->GetVarint64(&code));
  AGL_RETURN_IF_ERROR(r->GetString(&message));
  if (code > static_cast<uint64_t>(agl::StatusCode::kInternal)) {
    return agl::Status::Corruption("status code out of range");
  }
  *out = code == 0 ? agl::Status::OK()
                   : agl::Status(static_cast<agl::StatusCode>(code),
                                 std::move(message));
  return agl::Status::OK();
}

void PutJobStats(io::BufferWriter* w, const mr::JobStats& stats) {
  PutInt(w, stats.map_tasks);
  PutInt(w, stats.reduce_tasks);
  PutInt(w, stats.failed_attempts);
  PutInt(w, stats.task_attempts);
  w->PutDouble(stats.retry_backoff_ms);
  PutInt(w, stats.input_records);
  PutInt(w, stats.shuffled_records);
  PutInt(w, stats.output_records);
  PutInt(w, stats.max_reduce_task_records);
  w->PutDouble(stats.elapsed_seconds);
}

agl::Status GetJobStats(io::BufferReader* r, mr::JobStats* out) {
  AGL_RETURN_IF_ERROR(GetInt(r, &out->map_tasks));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->reduce_tasks));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->failed_attempts));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->task_attempts));
  AGL_RETURN_IF_ERROR(r->GetDouble(&out->retry_backoff_ms));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->input_records));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->shuffled_records));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->output_records));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->max_reduce_task_records));
  return r->GetDouble(&out->elapsed_seconds);
}

void PutExchangeStats(io::BufferWriter* w, const flat::ExchangeStats& stats) {
  PutInt(w, stats.publishes);
  PutInt(w, stats.collects);
  PutInt(w, stats.allgathers);
  PutInt(w, stats.records_published);
  PutInt(w, stats.records_collected);
  PutInt(w, stats.bytes_published);
  PutInt(w, stats.bytes_collected);
  w->PutDouble(stats.wait_seconds);
}

agl::Status GetExchangeStats(io::BufferReader* r, flat::ExchangeStats* out) {
  AGL_RETURN_IF_ERROR(GetInt(r, &out->publishes));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->collects));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->allgathers));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->records_published));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->records_collected));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->bytes_published));
  AGL_RETURN_IF_ERROR(GetInt(r, &out->bytes_collected));
  return r->GetDouble(&out->wait_seconds);
}

std::string EncodeTableSlice(const std::vector<flat::NodeRecord>& nodes,
                             const std::vector<flat::EdgeRecord>& edges) {
  io::BufferWriter w;
  w.PutVarint64(nodes.size());
  for (const flat::NodeRecord& n : nodes) w.PutString(n.Serialize());
  w.PutVarint64(edges.size());
  for (const flat::EdgeRecord& e : edges) w.PutString(e.Serialize());
  return w.Release();
}

agl::Status DecodeTableSlice(const std::string& bytes,
                             std::vector<flat::NodeRecord>* nodes,
                             std::vector<flat::EdgeRecord>* edges) {
  io::BufferReader r(bytes);
  uint64_t n = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&n));
  nodes->clear();
  nodes->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string row;
    AGL_RETURN_IF_ERROR(r.GetString(&row));
    AGL_ASSIGN_OR_RETURN(flat::NodeRecord rec, flat::NodeRecord::Parse(row));
    nodes->push_back(std::move(rec));
  }
  AGL_RETURN_IF_ERROR(r.GetVarint64(&n));
  edges->clear();
  edges->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string row;
    AGL_RETURN_IF_ERROR(r.GetString(&row));
    AGL_ASSIGN_OR_RETURN(flat::EdgeRecord rec, flat::EdgeRecord::Parse(row));
    edges->push_back(std::move(rec));
  }
  if (!r.AtEnd()) {
    return agl::Status::Corruption("table slice has trailing bytes");
  }
  return agl::Status::OK();
}

std::string EncodeFlatJobMeta(const FlatJobMeta& meta) {
  io::BufferWriter w;
  const flat::GraphFlatConfig& c = meta.config;
  PutInt(&w, c.hops);
  w.PutVarint64(static_cast<uint64_t>(c.sampler.strategy));
  PutInt(&w, c.sampler.max_neighbors);
  PutInt(&w, c.hub_threshold);
  PutInt(&w, c.reindex_fanout);
  w.PutVarint64(static_cast<uint64_t>(c.targets));
  PutInt(&w, c.output_parts);
  PutInt(&w, c.num_shards);
  PutJobConfig(&w, c.job);
  PutInt(&w, meta.node_feature_dim);
  PutInt(&w, meta.edge_feature_dim);
  PutInt(&w, meta.exchange_poll_ms);
  PutInt(&w, meta.exchange_timeout_ms);
  return w.Release();
}

agl::Result<FlatJobMeta> DecodeFlatJobMeta(const std::string& bytes) {
  io::BufferReader r(bytes);
  FlatJobMeta meta;
  flat::GraphFlatConfig& c = meta.config;
  uint64_t e = 0;
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.hops));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&e));
  c.sampler.strategy = static_cast<sampling::Strategy>(e);
  AGL_RETURN_IF_ERROR(GetInt(&r, &c.sampler.max_neighbors));
  AGL_RETURN_IF_ERROR(GetInt(&r, &c.hub_threshold));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.reindex_fanout));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&e));
  c.targets = static_cast<flat::GraphFlatConfig::Targets>(e);
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.output_parts));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.num_shards));
  AGL_RETURN_IF_ERROR(GetJobConfig(&r, &c.job));
  AGL_RETURN_IF_ERROR(GetInt(&r, &meta.node_feature_dim));
  AGL_RETURN_IF_ERROR(GetInt(&r, &meta.edge_feature_dim));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &meta.exchange_poll_ms));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &meta.exchange_timeout_ms));
  if (!r.AtEnd()) {
    return agl::Status::Corruption("flat job meta has trailing bytes");
  }
  return meta;
}

std::string EncodeAnalyticsJobMeta(const AnalyticsJobMeta& meta) {
  io::BufferWriter w;
  const analytics::AnalyticsConfig& c = meta.config;
  PutInt(&w, c.max_supersteps);
  PutInt(&w, c.num_shards);
  PutInt(&w, c.output_parts);
  PutJobConfig(&w, c.job);
  w.PutString(meta.program.name);
  w.PutDouble(meta.program.damping);
  w.PutDouble(meta.program.tolerance);
  w.PutVarint64(meta.program.source);
  PutInt(&w, meta.num_vertices);
  PutInt(&w, meta.exchange_poll_ms);
  PutInt(&w, meta.exchange_timeout_ms);
  return w.Release();
}

agl::Result<AnalyticsJobMeta> DecodeAnalyticsJobMeta(
    const std::string& bytes) {
  io::BufferReader r(bytes);
  AnalyticsJobMeta meta;
  analytics::AnalyticsConfig& c = meta.config;
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.max_supersteps));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.num_shards));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.output_parts));
  AGL_RETURN_IF_ERROR(GetJobConfig(&r, &c.job));
  AGL_RETURN_IF_ERROR(r.GetString(&meta.program.name));
  AGL_RETURN_IF_ERROR(r.GetDouble(&meta.program.damping));
  AGL_RETURN_IF_ERROR(r.GetDouble(&meta.program.tolerance));
  uint64_t source = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&source));
  meta.program.source = source;
  AGL_RETURN_IF_ERROR(GetInt(&r, &meta.num_vertices));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &meta.exchange_poll_ms));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &meta.exchange_timeout_ms));
  if (!r.AtEnd()) {
    return agl::Status::Corruption("analytics job meta has trailing bytes");
  }
  return meta;
}

std::string EncodeTrainJobMeta(const TrainJobMeta& meta) {
  io::BufferWriter w;
  const trainer::TrainerConfig& c = meta.config;
  w.PutVarint64(static_cast<uint64_t>(c.model.type));
  PutInt(&w, c.model.num_layers);
  PutInt(&w, c.model.in_dim);
  PutInt(&w, c.model.hidden_dim);
  PutInt(&w, c.model.out_dim);
  PutInt(&w, c.model.gat_heads);
  w.PutFloat(c.model.dropout);
  w.PutVarint64(c.model.use_pruning ? 1 : 0);
  PutInt(&w, c.model.aggregation_threads);
  w.PutVarint64(c.model.seed);
  w.PutVarint64(static_cast<uint64_t>(c.task));
  w.PutVarint64(static_cast<uint64_t>(c.sync_mode));
  PutInt(&w, c.num_workers);
  PutInt(&w, c.ps_shards);
  w.PutFloat(c.adam.lr);
  w.PutFloat(c.adam.beta1);
  w.PutFloat(c.adam.beta2);
  w.PutFloat(c.adam.eps);
  w.PutFloat(c.adam.weight_decay);
  PutInt(&w, c.batch_size);
  PutInt(&w, c.epochs);
  w.PutVarint64(c.use_pipeline ? 1 : 0);
  PutInt(&w, c.prefetch_batches);
  PutInt(&w, c.staleness_bound);
  w.PutVarint64(c.seed);
  PutInt(&w, meta.active_workers);
  PutInt(&w, meta.num_examples);
  return w.Release();
}

agl::Result<TrainJobMeta> DecodeTrainJobMeta(const std::string& bytes) {
  io::BufferReader r(bytes);
  TrainJobMeta meta;
  trainer::TrainerConfig& c = meta.config;
  uint64_t e = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&e));
  c.model.type = static_cast<gnn::ModelType>(e);
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.model.num_layers));
  AGL_RETURN_IF_ERROR(GetInt(&r, &c.model.in_dim));
  AGL_RETURN_IF_ERROR(GetInt(&r, &c.model.hidden_dim));
  AGL_RETURN_IF_ERROR(GetInt(&r, &c.model.out_dim));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.model.gat_heads));
  AGL_RETURN_IF_ERROR(r.GetFloat(&c.model.dropout));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&e));
  c.model.use_pruning = e != 0;
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.model.aggregation_threads));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&c.model.seed));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&e));
  c.task = static_cast<trainer::TaskKind>(e);
  AGL_RETURN_IF_ERROR(r.GetVarint64(&e));
  c.sync_mode = static_cast<trainer::SyncMode>(e);
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.num_workers));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.ps_shards));
  AGL_RETURN_IF_ERROR(r.GetFloat(&c.adam.lr));
  AGL_RETURN_IF_ERROR(r.GetFloat(&c.adam.beta1));
  AGL_RETURN_IF_ERROR(r.GetFloat(&c.adam.beta2));
  AGL_RETURN_IF_ERROR(r.GetFloat(&c.adam.eps));
  AGL_RETURN_IF_ERROR(r.GetFloat(&c.adam.weight_decay));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.batch_size));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.epochs));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&e));
  c.use_pipeline = e != 0;
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &c.prefetch_batches));
  AGL_RETURN_IF_ERROR(GetInt(&r, &c.staleness_bound));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&c.seed));
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &meta.active_workers));
  AGL_RETURN_IF_ERROR(GetInt(&r, &meta.num_examples));
  if (!r.AtEnd()) {
    return agl::Status::Corruption("train job meta has trailing bytes");
  }
  return meta;
}

std::string EncodeWorkerResult(const trainer::internal::WorkerResult& res) {
  io::BufferWriter w;
  w.PutDouble(res.loss_sum);
  PutInt(&w, res.batches);
  w.PutDouble(res.prep_seconds);
  w.PutDouble(res.compute_seconds);
  w.PutDouble(res.comm_seconds);
  PutStatus(&w, res.status);
  return w.Release();
}

agl::Result<trainer::internal::WorkerResult> DecodeWorkerResult(
    const std::string& bytes) {
  io::BufferReader r(bytes);
  trainer::internal::WorkerResult res;
  AGL_RETURN_IF_ERROR(r.GetDouble(&res.loss_sum));
  AGL_RETURN_IF_ERROR(GetInt(&r, &res.batches));
  AGL_RETURN_IF_ERROR(r.GetDouble(&res.prep_seconds));
  AGL_RETURN_IF_ERROR(r.GetDouble(&res.compute_seconds));
  AGL_RETURN_IF_ERROR(r.GetDouble(&res.comm_seconds));
  AGL_RETURN_IF_ERROR(GetStatus(&r, &res.status));
  if (!r.AtEnd()) {
    return agl::Status::Corruption("worker result has trailing bytes");
  }
  return res;
}

std::string EncodeAnalyticsStats(const analytics::AnalyticsStats& stats) {
  io::BufferWriter w;
  PutInt(&w, stats.supersteps);
  w.PutVarint64(stats.converged ? 1 : 0);
  PutInt(&w, stats.num_vertices);
  PutInt(&w, stats.num_gather_edges);
  PutInt64Vector(&w, stats.active_per_round);
  PutInt64Vector(&w, stats.messages_per_round);
  w.PutDouble(stats.elapsed_seconds);
  PutJobStats(&w, stats.job_stats);
  PutExchangeStats(&w, stats.exchange);
  return w.Release();
}

agl::Result<analytics::AnalyticsStats> DecodeAnalyticsStats(
    const std::string& bytes) {
  io::BufferReader r(bytes);
  analytics::AnalyticsStats stats;
  uint64_t b = 0;
  AGL_RETURN_IF_ERROR(GetIntAs(&r, &stats.supersteps));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&b));
  stats.converged = b != 0;
  AGL_RETURN_IF_ERROR(GetInt(&r, &stats.num_vertices));
  AGL_RETURN_IF_ERROR(GetInt(&r, &stats.num_gather_edges));
  AGL_RETURN_IF_ERROR(GetInt64Vector(&r, &stats.active_per_round));
  AGL_RETURN_IF_ERROR(GetInt64Vector(&r, &stats.messages_per_round));
  AGL_RETURN_IF_ERROR(r.GetDouble(&stats.elapsed_seconds));
  AGL_RETURN_IF_ERROR(GetJobStats(&r, &stats.job_stats));
  AGL_RETURN_IF_ERROR(GetExchangeStats(&r, &stats.exchange));
  if (!r.AtEnd()) {
    return agl::Status::Corruption("analytics stats has trailing bytes");
  }
  return stats;
}

}  // namespace agl::driver
