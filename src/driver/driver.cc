#include "driver/driver.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/mutex.h"
#include "common/subprocess.h"
#include "common/timer.h"
#include "gnn/model.h"
#include "io/codec.h"
#include "nn/state_io.h"
#include "ps/client.h"
#include "ps/parameter_server.h"
#include "ps/remote.h"

namespace agl::driver {

namespace {

using common::ExitStatus;
using trainer::internal::WorkerResult;

/// Marker argv[1] of a spawned worker process.
constexpr char kWorkerArgv1[] = "__agl_worker";
constexpr char kRoleFlat[] = "flat";
constexpr char kRoleAnalytics[] = "analytics";
constexpr char kRoleTrain[] = "train";

// Every coordination dataset of a job lives under "<prefix>." so one
// CleanupPrefix sweep removes the whole job (including the exchange's
// buckets under "<prefix>.ex.").
std::string MetaName(const std::string& prefix) { return prefix + ".meta"; }
std::string SliceName(const std::string& prefix, int shard) {
  return prefix + ".in.s" + std::to_string(shard);
}
std::string ExchangePrefix(const std::string& prefix) { return prefix + ".ex"; }
std::string OutName(const std::string& prefix, int shard) {
  return prefix + ".out.s" + std::to_string(shard);
}
std::string ShardErrName(const std::string& prefix, int shard) {
  return prefix + ".err.s" + std::to_string(shard);
}
std::string FeatName(const std::string& prefix) { return prefix + ".feat"; }
std::string ResName(const std::string& prefix, int epoch, int worker) {
  return prefix + ".res.e" + std::to_string(epoch) + ".w" +
         std::to_string(worker);
}
std::string TrainErrName(const std::string& prefix, int epoch, int worker) {
  return prefix + ".err.e" + std::to_string(epoch) + ".w" +
         std::to_string(worker);
}

/// Splits [0, n) into `parts` nearly equal contiguous ranges — must stay
/// identical to the trainer's partitioner so a worker process picks up
/// exactly the slice the in-process path would give it.
std::vector<std::pair<std::size_t, std::size_t>> SplitRanges(std::size_t n,
                                                             int parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  parts = std::max(1, parts);
  const std::size_t chunk = (n + parts - 1) / parts;
  for (int p = 0; p < parts; ++p) {
    const std::size_t begin = static_cast<std::size_t>(p) * chunk;
    if (begin >= n) break;
    out.emplace_back(begin, std::min(n, begin + chunk));
  }
  return out;
}

void MergeStats(DriverStats* into, const DriverStats& from) {
  into->spawns += from.spawns;
  into->restarts += from.restarts;
  into->clean_exits += from.clean_exits;
  into->signal_exits += from.signal_exits;
  into->error_exits += from.error_exits;
  into->exchange.Accumulate(from.exchange);
  into->ps_transport.connections += from.ps_transport.connections;
  into->ps_transport.requests += from.ps_transport.requests;
  into->ps_transport.bytes_received += from.ps_transport.bytes_received;
  into->ps_transport.bytes_sent += from.ps_transport.bytes_sent;
  into->ps_transport.failed_requests += from.ps_transport.failed_requests;
}

/// Reads the status a failed worker left behind; nullopt when it died
/// before reporting (or the record is unreadable).
std::optional<agl::Status> ReadReportedError(mr::LocalDfs* dfs,
                                             const std::string& dataset) {
  auto records = dfs->ReadDataset(dataset);
  if (!records.ok() || records->size() != 1) return std::nullopt;
  io::BufferReader r((*records)[0]);
  agl::Status reported;
  if (!GetStatus(&r, &reported).ok() || reported.ok()) return std::nullopt;
  return reported;
}

// --- worker-process role bodies ---------------------------------------------

agl::Status RunFlatShardWorker(const std::string& root,
                               const std::string& prefix, int shard) {
  AGL_ASSIGN_OR_RETURN(mr::LocalDfs dfs, mr::LocalDfs::Open(root));
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> meta_records,
                       dfs.ReadDataset(MetaName(prefix)));
  if (meta_records.size() != 1) {
    return agl::Status::Corruption("flat job meta must hold exactly 1 record");
  }
  AGL_ASSIGN_OR_RETURN(const FlatJobMeta meta,
                       DecodeFlatJobMeta(meta_records[0]));
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> slice_records,
                       dfs.ReadDataset(SliceName(prefix, shard)));
  if (slice_records.size() != 1) {
    return agl::Status::Corruption("table slice must hold exactly 1 record");
  }
  std::vector<flat::NodeRecord> nodes;
  std::vector<flat::EdgeRecord> edges;
  AGL_RETURN_IF_ERROR(DecodeTableSlice(slice_records[0], &nodes, &edges));

  flat::DfsExchange::Options xopts;
  xopts.poll_interval_ms = meta.exchange_poll_ms;
  xopts.timeout_ms = meta.exchange_timeout_ms;
  flat::DfsExchange exchange(
      &dfs, ExchangePrefix(prefix),
      flat::ShardPlan(std::max(1, meta.config.num_shards)), xopts);

  mr::JobStats job_stats;
  AGL_ASSIGN_OR_RETURN(
      std::vector<mr::KeyValue> records,
      flat::RunFlatShard(meta.config, shard, nodes, edges,
                         meta.node_feature_dim, meta.edge_feature_dim,
                         &exchange, &job_stats));

  io::BufferWriter stats_blob;
  PutJobStats(&stats_blob, job_stats);
  PutExchangeStats(&stats_blob, exchange.stats());
  return dfs.WriteDataset(
      OutName(prefix, shard),
      {flat::SerializeExchangeRecords(records), stats_blob.Release()},
      /*num_parts=*/1);
}

agl::Status RunAnalyticsShardWorker(const std::string& root,
                                    const std::string& prefix, int shard) {
  AGL_ASSIGN_OR_RETURN(mr::LocalDfs dfs, mr::LocalDfs::Open(root));
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> meta_records,
                       dfs.ReadDataset(MetaName(prefix)));
  if (meta_records.size() != 1) {
    return agl::Status::Corruption(
        "analytics job meta must hold exactly 1 record");
  }
  AGL_ASSIGN_OR_RETURN(const AnalyticsJobMeta meta,
                       DecodeAnalyticsJobMeta(meta_records[0]));
  AGL_ASSIGN_OR_RETURN(std::unique_ptr<analytics::VertexProgram> program,
                       MakeProgram(meta.program));
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> slice_records,
                       dfs.ReadDataset(SliceName(prefix, shard)));
  if (slice_records.size() != 1) {
    return agl::Status::Corruption("table slice must hold exactly 1 record");
  }
  std::vector<flat::NodeRecord> nodes;
  std::vector<flat::EdgeRecord> edges;
  AGL_RETURN_IF_ERROR(DecodeTableSlice(slice_records[0], &nodes, &edges));

  flat::DfsExchange::Options xopts;
  xopts.poll_interval_ms = meta.exchange_poll_ms;
  xopts.timeout_ms = meta.exchange_timeout_ms;
  flat::DfsExchange exchange(
      &dfs, ExchangePrefix(prefix),
      flat::ShardPlan(std::max(1, meta.config.num_shards)), xopts);

  analytics::AnalyticsStats stats;
  AGL_ASSIGN_OR_RETURN(
      std::vector<mr::KeyValue> records,
      analytics::RunAnalyticsShard(meta.config, *program, shard, nodes, edges,
                                   meta.num_vertices, &exchange, &stats));
  stats.exchange = exchange.stats();
  return dfs.WriteDataset(
      OutName(prefix, shard),
      {flat::SerializeExchangeRecords(records), EncodeAnalyticsStats(stats)},
      /*num_parts=*/1);
}

agl::Status RunTrainWorker(const std::string& root, const std::string& prefix,
                           int worker, int epoch, int port) {
  AGL_ASSIGN_OR_RETURN(mr::LocalDfs dfs, mr::LocalDfs::Open(root));
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> meta_records,
                       dfs.ReadDataset(MetaName(prefix)));
  if (meta_records.size() != 1) {
    return agl::Status::Corruption("train job meta must hold exactly 1 record");
  }
  AGL_ASSIGN_OR_RETURN(const TrainJobMeta meta,
                       DecodeTrainJobMeta(meta_records[0]));
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> feature_records,
                       dfs.ReadDataset(FeatName(prefix)));
  if (static_cast<int64_t>(feature_records.size()) != meta.num_examples) {
    return agl::Status::Corruption("feature dataset size mismatch");
  }
  std::vector<subgraph::GraphFeature> features;
  features.reserve(feature_records.size());
  for (const std::string& record : feature_records) {
    AGL_ASSIGN_OR_RETURN(subgraph::GraphFeature gf,
                         subgraph::GraphFeature::Parse(record));
    features.push_back(std::move(gf));
  }
  const auto partitions =
      SplitRanges(features.size(), meta.config.num_workers);
  if (static_cast<int>(partitions.size()) != meta.active_workers ||
      worker < 0 || worker >= meta.active_workers) {
    return agl::Status::Internal("train worker partition mismatch");
  }

  ps::RemotePsClient client(port);
  AGL_ASSIGN_OR_RETURN(
      WorkerResult result,
      trainer::internal::RunWorkerEpoch(
          meta.config, std::span<const subgraph::GraphFeature>(features),
          partitions[worker].first, partitions[worker].second, worker, epoch,
          &client));
  // A failed epoch reports through the error dataset (exit 1), never
  // through a result the parent would mistake for progress.
  AGL_RETURN_IF_ERROR(result.status);
  return dfs.WriteDataset(ResName(prefix, epoch, worker),
                          {EncodeWorkerResult(result)}, /*num_parts=*/1);
}

/// Worker epilogue: an injected-crash failpoint becomes a REAL signal
/// death (so the chaos schedule exercises exactly the recovery path an
/// OOM kill would); any other error is reported through `err_dataset` for
/// the supervisor to read and exits 1.
int FinishWorker(const agl::Status& status, const std::string& root,
                 const std::string& err_dataset) {
  if (status.ok()) return 0;
#if !defined(_WIN32)
  if (fail::IsInjectedCrash(status)) ::raise(SIGKILL);
#endif
  auto dfs = mr::LocalDfs::Open(root);
  if (dfs.ok()) {
    io::BufferWriter w;
    PutStatus(&w, status);
    (void)dfs->WriteDataset(err_dataset, {w.Release()}, /*num_parts=*/1);
  }
  std::fprintf(stderr, "agl worker: %s\n", status.ToString().c_str());
  return 1;
}

// --- driver-side supervision ------------------------------------------------

/// Runs one shard worker to a clean exit, restarting signal deaths (and
/// retryable worker-reported errors, e.g. an exchange timeout caused by a
/// dead peer) up to the classified-retry budget. Runs concurrently for all
/// shards, hence the guarded stats.
agl::Status SuperviseShard(const DriverOptions& options,
                           const std::vector<std::string>& argv,
                           const std::string& err_dataset,
                           const std::string& what, DriverStats* stats,
                           common::Mutex* mu) {
  for (int attempt = 0;; ++attempt) {
    // A fresh attempt must not inherit a stale error report.
    (void)options.dfs->DropDataset(err_dataset);
    std::vector<std::string> env = options.worker_env;
    if (attempt == 0) {
      env.insert(env.end(), options.first_attempt_env.begin(),
                 options.first_attempt_env.end());
    }
    agl::Status attempt_status;
    auto pid = common::Spawn(argv, env);
    if (pid.ok()) {
      {
        common::MutexLock lock(mu);
        stats->spawns++;
      }
      AGL_ASSIGN_OR_RETURN(const ExitStatus exit, common::Wait(*pid));
      {
        common::MutexLock lock(mu);
        if (exit.clean()) {
          stats->clean_exits++;
        } else if (exit.signaled) {
          stats->signal_exits++;
        } else {
          stats->error_exits++;
        }
      }
      attempt_status = common::ClassifyExit(exit, what);
      if (attempt_status.ok()) return agl::Status::OK();
      if (!exit.signaled) {
        if (auto reported = ReadReportedError(options.dfs, err_dataset)) {
          attempt_status = *std::move(reported);
        }
        if (!agl::IsRetryableError(attempt_status)) return attempt_status;
      }
    } else {
      // Spawn failure (the driver.spawn failpoint, or fork/exec trouble).
      attempt_status = pid.status();
      if (!agl::IsRetryableError(attempt_status)) return attempt_status;
    }
    if (attempt >= options.max_restarts) return attempt_status;
    {
      common::MutexLock lock(mu);
      stats->restarts++;
    }
  }
}

agl::Status ValidateDriverOptions(const DriverOptions& options) {
  if (options.dfs == nullptr) {
    return agl::Status::InvalidArgument("driver: options.dfs is required");
  }
  if (options.job_prefix.empty()) {
    return agl::Status::InvalidArgument("driver: job_prefix must be non-empty");
  }
  if (options.max_restarts < 0) {
    return agl::Status::InvalidArgument("driver: max_restarts must be >= 0");
  }
  return agl::Status::OK();
}

}  // namespace

agl::Result<flat::GraphFlatStats> RunGraphFlatProcesses(
    const DriverOptions& options, const flat::GraphFlatConfig& config,
    const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges, mr::LocalDfs* out_dfs,
    const std::string& dataset, DriverStats* stats) {
  Stopwatch watch;
  AGL_RETURN_IF_ERROR(ValidateDriverOptions(options));
  AGL_RETURN_IF_ERROR(config.Validate());
  if (out_dfs == nullptr) {
    return agl::Status::InvalidArgument("driver: out_dfs is required");
  }
  if (nodes.empty()) {
    return agl::Status::InvalidArgument("GraphFlat: empty node table");
  }
  const std::string& prefix = options.job_prefix;
  AGL_RETURN_IF_ERROR(flat::DfsExchange::CleanupPrefix(options.dfs, prefix));

  const int num_shards = std::max(1, config.num_shards);
  FlatJobMeta meta;
  meta.config = config;
  meta.config.num_shards = num_shards;
  meta.node_feature_dim = static_cast<int64_t>(nodes[0].features.size());
  meta.edge_feature_dim =
      edges.empty() ? 0 : static_cast<int64_t>(edges[0].features.size());
  meta.exchange_poll_ms = options.exchange_poll_ms;
  meta.exchange_timeout_ms = options.exchange_timeout_ms;
  AGL_RETURN_IF_ERROR(options.dfs->WriteDataset(
      MetaName(prefix), {EncodeFlatJobMeta(meta)}, /*num_parts=*/1));

  flat::ShardRouter router{flat::ShardPlan(num_shards)};
  const flat::ShardedTables tables = router.PartitionTables(nodes, edges);
  for (int s = 0; s < num_shards; ++s) {
    AGL_RETURN_IF_ERROR(options.dfs->WriteDataset(
        SliceName(prefix, s),
        {EncodeTableSlice(tables.nodes[s], tables.edges[s])},
        /*num_parts=*/1));
  }

  AGL_ASSIGN_OR_RETURN(const std::string self, common::SelfExecutable());
  DriverStats local;
  common::Mutex stats_mu;
  AGL_RETURN_IF_ERROR(flat::ParallelOverShards(num_shards, [&](int s) {
    return SuperviseShard(
        options,
        {self, kWorkerArgv1, kRoleFlat, options.dfs->root(), prefix,
         std::to_string(s)},
        ShardErrName(prefix, s), "flat shard " + std::to_string(s), &local,
        &stats_mu);
  }));

  flat::GraphFlatStats out_stats;
  std::vector<std::pair<flat::NodeId, std::string>> finals;
  for (int s = 0; s < num_shards; ++s) {
    AGL_ASSIGN_OR_RETURN(std::vector<std::string> records,
                         options.dfs->ReadDataset(OutName(prefix, s)));
    if (records.size() != 2) {
      return agl::Status::Corruption("shard output must hold 2 records");
    }
    AGL_ASSIGN_OR_RETURN(std::vector<mr::KeyValue> shard_records,
                         flat::ParseExchangeRecords(records[0]));
    for (mr::KeyValue& kv : shard_records) {
      // 'F' tags the final GraphFeature records RunFlatShard emits.
      if (kv.value.empty() || kv.value[0] != 'F') continue;
      finals.emplace_back(static_cast<flat::NodeId>(std::stoull(kv.key)),
                          kv.value.substr(1));
    }
    io::BufferReader r(records[1]);
    mr::JobStats job_stats;
    flat::ExchangeStats exchange_stats;
    AGL_RETURN_IF_ERROR(GetJobStats(&r, &job_stats));
    AGL_RETURN_IF_ERROR(GetExchangeStats(&r, &exchange_stats));
    out_stats.job_stats.Accumulate(job_stats);
    out_stats.exchange.Accumulate(exchange_stats);
  }
  for (const auto& [id, bytes] : finals) {
    AGL_ASSIGN_OR_RETURN(subgraph::GraphFeature gf,
                         subgraph::GraphFeature::Parse(bytes));
    out_stats.num_features++;
    out_stats.total_nodes += gf.num_nodes();
    out_stats.total_edges += gf.num_edges();
    out_stats.max_nodes = std::max(out_stats.max_nodes, gf.num_nodes());
  }
  AGL_RETURN_IF_ERROR(
      flat::StoreFeaturePayloads(meta.config, std::move(finals), out_dfs,
                                 dataset));
  AGL_RETURN_IF_ERROR(flat::DfsExchange::CleanupPrefix(options.dfs, prefix));
  out_stats.elapsed_seconds = watch.Seconds();
  local.exchange = out_stats.exchange;
  if (stats != nullptr) MergeStats(stats, local);
  return out_stats;
}

agl::Result<analytics::AnalyticsResult> RunAnalyticsProcesses(
    const DriverOptions& options, const analytics::AnalyticsConfig& config,
    const ProgramSpec& program, const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges, DriverStats* stats) {
  Stopwatch watch;
  AGL_RETURN_IF_ERROR(ValidateDriverOptions(options));
  AGL_RETURN_IF_ERROR(config.Validate());
  AGL_ASSIGN_OR_RETURN(std::unique_ptr<analytics::VertexProgram> prog,
                       MakeProgram(program));
  AGL_ASSIGN_OR_RETURN(std::vector<flat::EdgeRecord> normalized,
                       analytics::NormalizeEdgeTable(*prog, nodes, edges));
  const std::string& prefix = options.job_prefix;
  AGL_RETURN_IF_ERROR(flat::DfsExchange::CleanupPrefix(options.dfs, prefix));

  const int num_shards = std::max(1, config.num_shards);
  AnalyticsJobMeta meta;
  meta.config = config;
  meta.config.num_shards = num_shards;
  meta.program = program;
  meta.num_vertices = static_cast<int64_t>(nodes.size());
  meta.exchange_poll_ms = options.exchange_poll_ms;
  meta.exchange_timeout_ms = options.exchange_timeout_ms;
  AGL_RETURN_IF_ERROR(options.dfs->WriteDataset(
      MetaName(prefix), {EncodeAnalyticsJobMeta(meta)}, /*num_parts=*/1));

  flat::ShardRouter router{flat::ShardPlan(num_shards)};
  const flat::ShardedTables tables = router.PartitionTables(nodes, normalized);
  for (int s = 0; s < num_shards; ++s) {
    AGL_RETURN_IF_ERROR(options.dfs->WriteDataset(
        SliceName(prefix, s),
        {EncodeTableSlice(tables.nodes[s], tables.edges[s])},
        /*num_parts=*/1));
  }

  AGL_ASSIGN_OR_RETURN(const std::string self, common::SelfExecutable());
  DriverStats local;
  common::Mutex stats_mu;
  AGL_RETURN_IF_ERROR(flat::ParallelOverShards(num_shards, [&](int s) {
    return SuperviseShard(
        options,
        {self, kWorkerArgv1, kRoleAnalytics, options.dfs->root(), prefix,
         std::to_string(s)},
        ShardErrName(prefix, s), "analytics shard " + std::to_string(s),
        &local, &stats_mu);
  }));

  analytics::AnalyticsResult result;
  result.stats.num_vertices = static_cast<int64_t>(nodes.size());
  result.stats.num_gather_edges = static_cast<int64_t>(normalized.size());
  std::vector<std::vector<mr::KeyValue>> shard_records(num_shards);
  std::vector<analytics::AnalyticsStats> shard_stats(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    AGL_ASSIGN_OR_RETURN(std::vector<std::string> records,
                         options.dfs->ReadDataset(OutName(prefix, s)));
    if (records.size() != 2) {
      return agl::Status::Corruption("shard output must hold 2 records");
    }
    AGL_ASSIGN_OR_RETURN(shard_records[s],
                         flat::ParseExchangeRecords(records[0]));
    AGL_ASSIGN_OR_RETURN(shard_stats[s], DecodeAnalyticsStats(records[1]));
  }
  AGL_ASSIGN_OR_RETURN(
      result.values,
      analytics::CollectFinalValues(shard_records,
                                    static_cast<int64_t>(nodes.size())));
  // Superstep accounting is AllGather-agreed and identical on every shard;
  // job and exchange counters are per-shard work.
  result.stats.supersteps = shard_stats[0].supersteps;
  result.stats.converged = shard_stats[0].converged;
  result.stats.active_per_round = std::move(shard_stats[0].active_per_round);
  result.stats.messages_per_round =
      std::move(shard_stats[0].messages_per_round);
  for (const analytics::AnalyticsStats& ss : shard_stats) {
    result.stats.job_stats.Accumulate(ss.job_stats);
    result.stats.exchange.Accumulate(ss.exchange);
  }
  AGL_RETURN_IF_ERROR(flat::DfsExchange::CleanupPrefix(options.dfs, prefix));
  result.stats.elapsed_seconds = watch.Seconds();
  local.exchange = result.stats.exchange;
  if (stats != nullptr) MergeStats(stats, local);
  return result;
}

namespace {

/// One spawn-run-reap cycle of a trainer epoch's worker fleet. OK means
/// every worker exited clean and `results` holds their decoded reports;
/// kUnavailable (a signal death somewhere) asks the caller to re-import
/// the epoch snapshot and retry; anything else is fatal.
agl::Status RunTrainEpochAttempt(
    const DriverOptions& options, const std::string& self, int epoch,
    int attempt, int active_workers, int64_t staleness_bound, int port,
    ps::PsClient* client, std::vector<WorkerResult>* results,
    DriverStats* stats, common::Mutex* mu) {
  const std::string& prefix = options.job_prefix;
  for (int w = 0; w < active_workers; ++w) {
    (void)options.dfs->DropDataset(ResName(prefix, epoch, w));
    (void)options.dfs->DropDataset(TrainErrName(prefix, epoch, w));
  }
  AGL_RETURN_IF_ERROR(client->BeginSspEpoch(active_workers, staleness_bound));

  std::vector<pid_t> pids;
  pids.reserve(active_workers);
  agl::Status spawn_status;
  for (int w = 0; w < active_workers; ++w) {
    std::vector<std::string> env = options.worker_env;
    if (attempt == 0) {
      env.insert(env.end(), options.first_attempt_env.begin(),
                 options.first_attempt_env.end());
    }
    auto pid = common::Spawn(
        {self, kWorkerArgv1, kRoleTrain, options.dfs->root(), prefix,
         std::to_string(w), std::to_string(epoch), std::to_string(port)},
        env);
    if (!pid.ok()) {
      spawn_status = pid.status();
      break;
    }
    {
      common::MutexLock lock(mu);
      stats->spawns++;
    }
    pids.push_back(*pid);
  }
  if (!spawn_status.ok()) {
    // Starved of workers (the driver.spawn failpoint, or fork trouble):
    // tear the half-spawned fleet down and let the caller classify.
    (void)client->CancelSsp();
    for (pid_t pid : pids) {
      (void)common::Kill(pid, SIGKILL);
      (void)common::Wait(pid);
    }
    (void)client->EndSspEpoch();
    return spawn_status;
  }

  // One waiter thread per child: a worker parked at the SSP clock gate
  // only unparks after CancelSsp, so a sequential Wait over the fleet
  // could block forever behind a survivor of someone else's death.
  std::vector<ExitStatus> exits(active_workers);
  std::vector<agl::Status> wait_errors(active_workers);
  std::atomic<bool> cancelled{false};
  std::vector<std::thread> waiters;
  waiters.reserve(active_workers);
  for (int w = 0; w < active_workers; ++w) {
    waiters.emplace_back([&, w] {
      auto exit = common::Wait(pids[w]);
      if (!exit.ok()) {
        wait_errors[w] = exit.status();
        if (!cancelled.exchange(true)) (void)client->CancelSsp();
        return;
      }
      exits[w] = *exit;
      // First non-clean exit releases every parked survivor so the whole
      // fleet can be reaped and the epoch retried.
      if (!exit->clean() && !cancelled.exchange(true)) {
        (void)client->CancelSsp();
      }
    });
  }
  for (std::thread& t : waiters) t.join();
  (void)client->EndSspEpoch();

  bool signaled = false;
  for (int w = 0; w < active_workers; ++w) {
    AGL_RETURN_IF_ERROR(wait_errors[w]);
    {
      common::MutexLock lock(mu);
      if (exits[w].clean()) {
        stats->clean_exits++;
      } else if (exits[w].signaled) {
        stats->signal_exits++;
      } else {
        stats->error_exits++;
      }
    }
    if (exits[w].signaled) signaled = true;
  }
  if (signaled) {
    return agl::Status::Unavailable(
        "trainer worker killed by signal (epoch " + std::to_string(epoch) +
        ", attempt " + std::to_string(attempt) + ")");
  }
  // Error exits without a signal: surface the root cause, preferring a
  // worker's own report over the kAborted collateral its cancelled peers
  // produce.
  agl::Status first_error;
  for (int w = 0; w < active_workers; ++w) {
    if (exits[w].clean()) continue;
    agl::Status reported = common::ClassifyExit(
        exits[w], "trainer worker " + std::to_string(w));
    if (auto from_dfs =
            ReadReportedError(options.dfs, TrainErrName(prefix, epoch, w))) {
      reported = *std::move(from_dfs);
    }
    if (reported.code() != agl::StatusCode::kAborted) return reported;
    if (first_error.ok()) first_error = reported;
  }
  AGL_RETURN_IF_ERROR(first_error);

  for (int w = 0; w < active_workers; ++w) {
    AGL_ASSIGN_OR_RETURN(std::vector<std::string> records,
                         options.dfs->ReadDataset(ResName(prefix, epoch, w)));
    if (records.size() != 1) {
      return agl::Status::Corruption(
          "worker result must hold exactly 1 record");
    }
    AGL_ASSIGN_OR_RETURN((*results)[w], DecodeWorkerResult(records[0]));
  }
  return agl::Status::OK();
}

}  // namespace

agl::Result<trainer::TrainReport> TrainProcesses(
    const DriverOptions& options, const trainer::TrainerConfig& config,
    std::span<const subgraph::GraphFeature> train,
    std::span<const subgraph::GraphFeature> val, DriverStats* stats) {
  using StateDict = std::map<std::string, tensor::Tensor>;
  using PsSnapshot = std::map<std::string, ps::ExportedParam>;
  AGL_RETURN_IF_ERROR(ValidateDriverOptions(options));
  AGL_RETURN_IF_ERROR(config.Validate());
  if (train.empty()) {
    return agl::Status::InvalidArgument("empty training set");
  }
  if (config.sync_mode == trainer::SyncMode::kAsync) {
    return agl::Status::InvalidArgument(
        "TrainProcesses: kAsync has no replayable schedule across a process "
        "respawn; use kBsp or kSsp");
  }
  if (config.staleness_bound < 0) {
    return agl::Status::InvalidArgument("staleness_bound must be >= 0");
  }
  if (config.checkpoint_every_batches > 0 || config.resume) {
    return agl::Status::InvalidArgument(
        "TrainProcesses: mid-epoch checkpoint/resume is in-process only; "
        "recovery here is epoch-grained");
  }

  const std::string& prefix = options.job_prefix;
  AGL_RETURN_IF_ERROR(flat::DfsExchange::CleanupPrefix(options.dfs, prefix));

  const auto partitions = SplitRanges(train.size(), config.num_workers);
  const int active_workers = static_cast<int>(partitions.size());
  // kBsp rides the wire as SSP at bound 0 — proven bit-identical by the
  // consistency suite, and it gives both modes one recovery protocol.
  const int64_t staleness_bound =
      config.sync_mode == trainer::SyncMode::kBsp ? 0 : config.staleness_bound;

  TrainJobMeta meta;
  meta.config = config;
  meta.config.sync_mode = trainer::SyncMode::kSsp;
  meta.config.staleness_bound = staleness_bound;
  meta.config.checkpoint_dfs = nullptr;
  meta.config.initial_state.clear();
  meta.config.verbose = false;
  meta.active_workers = active_workers;
  meta.num_examples = static_cast<int64_t>(train.size());
  AGL_RETURN_IF_ERROR(options.dfs->WriteDataset(
      MetaName(prefix), {EncodeTrainJobMeta(meta)}, /*num_parts=*/1));
  {
    // One part keeps record order == span order, so every worker sees the
    // exact index space the partitioner split.
    std::vector<std::string> features;
    features.reserve(train.size());
    for (const subgraph::GraphFeature& gf : train) {
      features.push_back(gf.Serialize());
    }
    AGL_RETURN_IF_ERROR(options.dfs->WriteDataset(FeatName(prefix), features,
                                                  /*num_parts=*/1));
  }

  Stopwatch total_watch;
  gnn::GnnModel init_model(config.model);
  ps::ServerOptions ps_opts;
  ps_opts.num_shards = config.ps_shards;
  ps_opts.adam = config.adam;
  ps::ParameterServer server(ps_opts);
  ps::LocalPsClient client(&server);
  if (config.initial_state.empty()) {
    AGL_RETURN_IF_ERROR(client.Initialize(init_model.StateDict()));
  } else {
    AGL_RETURN_IF_ERROR(init_model.LoadStateDict(config.initial_state));
    AGL_RETURN_IF_ERROR(client.Initialize(config.initial_state));
  }
  ps::PsServer wire(&server);
  AGL_RETURN_IF_ERROR(wire.Start());

  AGL_ASSIGN_OR_RETURN(const std::string self, common::SelfExecutable());
  trainer::GraphTrainer evaluator(config);
  DriverStats local;
  common::Mutex stats_mu;

  trainer::TrainReport report;
  report.best_val_metric = -std::numeric_limits<double>::infinity();
  int bad_evals = 0;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Stopwatch epoch_watch;
    std::vector<WorkerResult> results(active_workers);
    // Epoch-grained recovery point: values + Adam moments as of the epoch
    // start. A worker-epoch is a pure function of (config, seed, epoch,
    // worker) given this state, so a respawned attempt recomputes the
    // identical bytes.
    AGL_ASSIGN_OR_RETURN(const PsSnapshot snapshot, client.ExportState());
    for (int attempt = 0;; ++attempt) {
      agl::Status st = RunTrainEpochAttempt(
          options, self, epoch, attempt, active_workers, staleness_bound,
          wire.port(), &client, &results, &local, &stats_mu);
      if (st.ok()) break;
      if (!agl::IsRetryableError(st) || attempt >= options.max_restarts) {
        return st;
      }
      {
        common::MutexLock lock(&stats_mu);
        local.restarts++;
      }
      AGL_RETURN_IF_ERROR(client.ImportState(snapshot));
    }

    trainer::EpochRecord rec;
    rec.epoch = epoch;
    double loss_sum = 0;
    int64_t batches = 0;
    for (const WorkerResult& r : results) {
      loss_sum += r.loss_sum;
      batches += r.batches;
      rec.prep_seconds += r.prep_seconds;
      rec.compute_seconds += r.compute_seconds;
      rec.comm_seconds += r.comm_seconds;
    }
    rec.mean_train_loss = batches > 0 ? loss_sum / batches : 0;
    rec.seconds = epoch_watch.Seconds();
    rec.val_metric = std::numeric_limits<double>::quiet_NaN();
    if (!val.empty() && config.eval_every > 0 &&
        (epoch + 1) % config.eval_every == 0) {
      AGL_ASSIGN_OR_RETURN(const StateDict eval_state, client.PullAll());
      AGL_ASSIGN_OR_RETURN(rec.val_metric, evaluator.Evaluate(eval_state, val));
      if (rec.val_metric > report.best_val_metric) {
        report.best_val_metric = rec.val_metric;
        bad_evals = 0;
      } else {
        ++bad_evals;
      }
    }
    report.epochs.push_back(rec);
    if (config.checkpoint_dfs != nullptr) {
      AGL_ASSIGN_OR_RETURN(const StateDict ckpt_state, client.PullAll());
      AGL_RETURN_IF_ERROR(config.checkpoint_dfs->WriteDataset(
          config.checkpoint_prefix + "-epoch-" + std::to_string(epoch),
          {nn::SerializeStateDict(ckpt_state)}, /*num_parts=*/1));
    }
    if (config.patience > 0 && bad_evals >= config.patience) break;
  }

  AGL_ASSIGN_OR_RETURN(report.final_state, client.PullAll());
  AGL_ASSIGN_OR_RETURN(report.ps_stats, client.Stats());
  report.total_seconds = total_watch.Seconds();
  wire.Stop();
  local.ps_transport = wire.transport_stats();
  AGL_RETURN_IF_ERROR(flat::DfsExchange::CleanupPrefix(options.dfs, prefix));
  if (stats != nullptr) MergeStats(stats, local);
  return report;
}

std::optional<int> RunWorkerIfSpawned(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) != kWorkerArgv1) return std::nullopt;
  auto usage = [](const char* msg) {
    std::fprintf(stderr, "agl worker: %s\n", msg);
    return 2;
  };
  if (argc < 3) return usage("missing role");
  const std::string role = argv[2];
  if (role == kRoleFlat || role == kRoleAnalytics) {
    if (argc != 6) return usage("shard worker wants: role root prefix shard");
    const std::string root = argv[3];
    const std::string prefix = argv[4];
    const int shard = std::atoi(argv[5]);
    agl::Status status =
        role == kRoleFlat ? RunFlatShardWorker(root, prefix, shard)
                          : RunAnalyticsShardWorker(root, prefix, shard);
    return FinishWorker(status, root, ShardErrName(prefix, shard));
  }
  if (role == kRoleTrain) {
    if (argc != 8) {
      return usage("train worker wants: role root prefix worker epoch port");
    }
    const std::string root = argv[3];
    const std::string prefix = argv[4];
    const int worker = std::atoi(argv[5]);
    const int epoch = std::atoi(argv[6]);
    const int port = std::atoi(argv[7]);
    agl::Status status = RunTrainWorker(root, prefix, worker, epoch, port);
    return FinishWorker(status, root, TrainErrName(prefix, epoch, worker));
  }
  return usage("unknown role");
}

}  // namespace agl::driver
