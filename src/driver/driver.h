// The supervising driver: promotes shards and trainer workers to real OS
// processes while keeping the in-process thread path's output byte-
// identical.
//
// Topology. The driver process (the one the user invoked) re-execs ITSELF
// as workers: `Spawn(SelfExecutable(), "__agl_worker", role, ...)`. A
// binary opts in by calling RunWorkerIfSpawned() first thing in main();
// when argv marks the process as a worker it runs its role and exits
// instead of parsing user flags. All bulk data crosses the boundary
// through the crash-consistent LocalDfs (job specs, table slices, the
// DfsExchange's boundary buckets, worker results); the trainer's hot path
// speaks the ps/ wire protocol to a PsServer the driver hosts.
//
// Failure semantics. Worker exits feed common::ClassifyExit into the same
// classified-retry policy the in-process layers use: a signal death (the
// chaos harness's SIGKILL, an OOM kill, or a worker turning an injected
// crash failpoint into a real `raise(SIGKILL)`) is kUnavailable and
// retryable up to `max_restarts`; a nonzero exit carries a worker-reported
// Status read back off the DFS and is fatal. GraphFlat/analytics shards
// restart individually — their DfsExchange publishes are idempotent
// (atomic replace, byte-identical recomputation), so peers simply keep
// polling. Trainer recovery is epoch-grained: the driver exports the PS
// state at each epoch start, and on a worker death cancels the SSP epoch,
// re-imports the snapshot (values + Adam moments), and respawns the
// epoch's workers — bit-exact for kBsp and kSsp at bound 0 because each
// worker-epoch's schedule and RNG are pure functions of (config, seed,
// epoch, worker).

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analytics/vertex_program.h"
#include "common/status.h"
#include "driver/spec.h"
#include "flat/graphflat.h"
#include "mr/local_dfs.h"
#include "ps/server.h"
#include "subgraph/graph_feature.h"
#include "trainer/trainer.h"

namespace agl::driver {

struct DriverOptions {
  /// Coordination DFS: job specs, exchange buckets, worker results. Must
  /// be reachable by the worker processes (same machine/root).
  mr::LocalDfs* dfs = nullptr;
  /// Namespace for this job's datasets on `dfs`; everything under
  /// "<job_prefix>." is dropped when the job ends.
  std::string job_prefix = "job";
  /// Classified-retry budget: how many times a signal-killed process (or,
  /// for the trainer, a broken epoch) is relaunched before giving up.
  int max_restarts = 2;
  /// Extra "KEY=VALUE" env entries for every worker spawn.
  std::vector<std::string> worker_env;
  /// Env entries applied ONLY to each process's first launch — the chaos
  /// hook: arm a crash failpoint here (e.g. "AGL_FAILPOINTS=
  /// trainer.step=crash@3") and the first attempt dies by SIGKILL while
  /// every retry runs clean.
  std::vector<std::string> first_attempt_env;
  /// DfsExchange pacing for shard workers.
  int exchange_poll_ms = 2;
  int exchange_timeout_ms = 120000;
};

/// Supervision counters (the driver-side complement of the transport
/// stats), printed by `agl_cli driver`.
struct DriverStats {
  int64_t spawns = 0;
  int64_t restarts = 0;
  int64_t clean_exits = 0;
  int64_t signal_exits = 0;
  int64_t error_exits = 0;
  /// Worker-side boundary traffic, summed across shard processes
  /// (GraphFlat/analytics jobs).
  flat::ExchangeStats exchange;
  /// Driver-side PS socket traffic (trainer jobs).
  ps::PsTransportStats ps_transport;
};

/// GraphFlat with S shard processes over a DfsExchange; byte-identical to
/// RunGraphFlat with the same config (the sharding suite's oracle).
/// `out_dfs`/`dataset` receive the flattened features exactly as
/// RunGraphFlat writes them; `options.dfs` carries the coordination state.
agl::Result<flat::GraphFlatStats> RunGraphFlatProcesses(
    const DriverOptions& options, const flat::GraphFlatConfig& config,
    const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges, mr::LocalDfs* out_dfs,
    const std::string& dataset, DriverStats* stats = nullptr);

/// Vertex-program analytics with S shard processes; byte-identical to
/// RunVertexProgram (values compare bit-for-bit via SerializeValues).
agl::Result<analytics::AnalyticsResult> RunAnalyticsProcesses(
    const DriverOptions& options, const analytics::AnalyticsConfig& config,
    const ProgramSpec& program, const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges,
    DriverStats* stats = nullptr);

/// Parameter-server training with worker processes against a wire PS
/// hosted by the driver. Supports kBsp (run as SSP bound 0 on the wire —
/// proven bit-identical by the consistency suite) and kSsp; kAsync and
/// mid-epoch checkpointing are rejected (no replayable schedule across a
/// process respawn). Epoch-boundary checkpoints (`checkpoint_dfs`),
/// eval_every and patience behave exactly as GraphTrainer::Train.
agl::Result<trainer::TrainReport> TrainProcesses(
    const DriverOptions& options, const trainer::TrainerConfig& config,
    std::span<const subgraph::GraphFeature> train,
    std::span<const subgraph::GraphFeature> val,
    DriverStats* stats = nullptr);

/// The worker-process hook: call FIRST in main() of every binary that can
/// act as a driver. Returns the process exit code when this invocation is
/// a spawned worker (argv[1] == "__agl_worker"), nullopt when it is a
/// normal user invocation.
std::optional<int> RunWorkerIfSpawned(int argc, char** argv);

}  // namespace agl::driver
