// Always-on inference service (the serving face of §3.4).
//
// A long-running process admits scoring requests into a bounded queue, a
// single serving thread coalesces adjacent pending requests into one
// batched pipeline pass (the targets flow through PartitionTargets /
// RunGraphInferBatched exactly as an offline batch would), and every pass
// shares one PersistentEmbeddingStore — so segment embeddings survive
// across requests *and* across process restarts: a service re-opened over
// the same DFS root serves warm hits out of the previous process's
// published spill file.
//
// Mutations (serve/mutation.h) interleave with requests on the same FIFO:
//
//   admit(r1) .. admit(m) .. admit(r2)
//
// guarantees r1 is scored on the pre-m graph and r2 on the post-m graph —
// a request observes exactly the mutation batches enqueued before it.
// Applying a batch (1) updates the in-memory tables, (2) invalidates the
// precisely-dirtied (node, round) store entries (model-aware; see
// mutation.h), and (3) incrementally re-flattens the dirtied targets of
// the configured flattened dataset (flat::ReflattenDirty). Consequence —
// the freshness/consistency contract: every served score is byte-identical
// to a cold offline RunGraphInferBatched over the tables as mutated by the
// batches admitted before the request.
//
// Failure contract: a failed pipeline pass fails every request coalesced
// into it (kUnavailable and the underlying message); a mutation batch that
// fails to apply is rolled back wholesale; a re-flatten failure after a
// successful apply is reported but leaves serving correct (the store was
// already invalidated — only the on-DFS dataset lags). Store corruption
// degrades to recompute, never to a wrong score.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "flat/graphflat.h"
#include "flat/tables.h"
#include "infer/graphinfer.h"
#include "infer/persistent_store.h"
#include "mr/local_dfs.h"
#include "serve/mutation.h"
#include "tensor/tensor.h"

namespace agl::serve {

struct ServeConfig {
  /// Pipeline configuration for every pass. `target_ids` is ignored (set
  /// per coalesced batch); `cache_budget_bytes` / `cache_spill_path` are
  /// ignored (the persistent store supplies the cache).
  infer::InferConfig infer;
  /// Name of the persistent embedding store under the DFS root
  /// ("<root>/<name>.spill" + "<name>.index" dataset).
  std::string store_name = "embedding_store";
  /// RAM budget of the store's resident tier (negative = unbounded).
  int64_t store_budget_bytes = -1;
  /// Admission bound: scoring requests queued but not yet picked up by the
  /// serving thread. Submit returns kResourceExhausted beyond it.
  std::size_t max_pending = 256;
  /// Coalescing cap: adjacent requests are merged into one pass while
  /// their combined target count stays within this (a single larger
  /// request still runs, alone).
  std::size_t max_batch_targets = 1024;
  /// When non-empty, the service keeps this flattened dataset fresh under
  /// mutations via flat::ReflattenDirty (it must have been produced by
  /// RunGraphFlat with `flat` over the same tables).
  std::string features_dataset;
  /// GraphFlat configuration matching `features_dataset`. Must satisfy the
  /// incremental-path requirements (sampling none; hub pass dormant).
  flat::GraphFlatConfig flat;

  agl::Status Validate() const;
};

/// Service counters (cumulative since Start).
struct ServeStats {
  int64_t admitted = 0;        // requests accepted into the queue
  int64_t rejected = 0;        // requests bounced by the admission bound
  int64_t served = 0;          // requests completed successfully
  int64_t failed = 0;          // requests failed by a pipeline error
  int64_t batches = 0;         // pipeline passes run
  int64_t batched_targets = 0;  // coalesced unique targets across passes
  int64_t mutation_batches = 0;
  int64_t mutations_applied = 0;
  int64_t invalidated_nodes = 0;  // (node, min_round) floors issued
  int64_t reflatten_runs = 0;
  int64_t reflatten_dirty_targets = 0;
  double infer_seconds = 0;    // time inside RunGraphInferBatched
  /// Lifetime counters of the persistent store (hits/misses/spill/...).
  infer::EmbeddingCacheStats store;
  /// Whether Start re-attached a previous process's published snapshot.
  bool opened_warm = false;
};

class InferenceService {
 public:
  using Scores = std::vector<std::pair<flat::NodeId, std::vector<float>>>;

  /// Completion handle for one submitted request.
  class Pending {
   public:
    /// Blocks until the request is served or failed; returns the scores
    /// for the request's targets (deduplicated, sorted by node id).
    agl::Result<Scores> Wait();

   private:
    friend class InferenceService;
    void Complete(agl::Status status, Scores scores);

    common::Mutex mu_;
    common::CondVar cv_;
    bool done_ GUARDED_BY(mu_) = false;
    agl::Status status_ GUARDED_BY(mu_);
    Scores scores_ GUARDED_BY(mu_);
  };

  /// Validates the config, opens (or re-opens warm) the persistent store
  /// under `dfs`, and starts the serving thread. The service takes its own
  /// copies of the state dict and tables; `dfs` must outlive it.
  static agl::Result<std::unique_ptr<InferenceService>> Start(
      const ServeConfig& config,
      const std::map<std::string, tensor::Tensor>& state,
      std::vector<flat::NodeRecord> nodes,
      std::vector<flat::EdgeRecord> edges, mr::LocalDfs* dfs);

  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Admits a scoring request. kInvalidArgument for an empty target list,
  /// kNotFound for a target outside the node table, kResourceExhausted when
  /// the queue is at max_pending, kFailedPrecondition after Shutdown.
  agl::Result<std::shared_ptr<Pending>> Submit(
      std::vector<flat::NodeId> targets);

  /// Submit + Wait.
  agl::Result<Scores> Score(std::vector<flat::NodeId> targets);

  /// Enqueues a mutation batch and blocks until it is applied (tables +
  /// store invalidation + incremental re-flatten). Requests submitted
  /// after this returns are scored on the post-mutation graph. The batch
  /// is atomic: on an apply error the tables roll back and nothing is
  /// invalidated.
  agl::Status ApplyMutations(std::vector<Mutation> batch);

  /// Durability point: flushes the store's spill batch with one fsync and
  /// atomically publishes its index, so a future process Start()s warm.
  /// Runs on the serving thread (after Shutdown: inline).
  agl::Status Persist();

  /// Drains the queue, stops the serving thread. Idempotent; the
  /// destructor calls it.
  agl::Status Shutdown();

  ServeStats stats() const;

  /// The store fingerprint serving lookups (StateFingerprint of the state
  /// dict passed to Start).
  uint64_t model_version() const { return model_version_; }

 private:
  struct Item {
    enum class Kind { kScore, kMutate, kPersist };
    Kind kind = Kind::kScore;
    std::vector<flat::NodeId> targets;  // kScore
    std::vector<Mutation> mutations;    // kMutate
    std::shared_ptr<Pending> pending;   // completion for any kind
  };

  InferenceService(const ServeConfig& config,
                   std::map<std::string, tensor::Tensor> state,
                   std::vector<flat::NodeRecord> nodes,
                   std::vector<flat::EdgeRecord> edges, mr::LocalDfs* dfs);

  void ServeLoop();
  void ProcessScoreBatch(std::vector<Item> batch);
  void ProcessControlItem(Item item);

  const ServeConfig config_;
  const std::map<std::string, tensor::Tensor> state_;
  const uint64_t model_version_;
  mr::LocalDfs* const dfs_;
  /// Immutable universe of node ids (the supported mutations never add or
  /// remove nodes), so admission-time validation needs no lock.
  std::unordered_set<flat::NodeId> node_ids_;

  // Owned by the serving thread after Start (and by whoever holds the
  // joined thread afterwards — Shutdown's join orders the accesses).
  std::vector<flat::NodeRecord> nodes_;
  std::vector<flat::EdgeRecord> edges_;
  std::unique_ptr<infer::PersistentEmbeddingStore> store_;

  mutable common::Mutex mu_;
  common::CondVar work_cv_;
  std::deque<Item> queue_ GUARDED_BY(mu_);
  std::size_t pending_scores_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  bool joined_ GUARDED_BY(mu_) = false;
  ServeStats stats_ GUARDED_BY(mu_);

  std::thread thread_;
};

}  // namespace agl::serve
