// Graph mutations for the always-on inference service.
//
// The service accepts a stream of edge/feature mutations interleaved with
// scoring requests. Each mutation dirties (a) the flattened-feature payloads
// of every stored target whose K-hop in-neighborhood it touches — the
// dataset side, handled by flat::ReflattenDirty — and (b) the cached
// (node, round) segment embeddings that were derived from the pre-mutation
// graph — the store side, handled by EmbeddingStore::Invalidate.
//
// The store side is model-aware, because each model type reads a different
// slice of the adjacency normalization (gnn::GnnModel::NormalizeAdjacency):
//
//   GraphSAGE  RowNormalized: row w holds w's in-edges only, so an edge
//              a->b mutation directly dirties row b alone.
//   GAT        WithSelfLoops, no degree normalization: same as SAGE — only
//              row b changes.
//   GCN        WithSelfLoops().GcnNormalized(): entries scale by
//              1/sqrt(row_deg(dst) * col_deg(src)). Edge a->b changes
//              row_deg(b) (all of row b) and col_deg(a) (every entry in
//              column a, i.e. rows outN(a) and a's own self-loop entry), so
//              rows {a, b} + outN(a) are directly dirty.
//
// A directly-dirty row w invalidates (w, r) for every cached round r >= 1;
// the dirt then propagates one out-hop per round: (x, r) is stale iff
// r >= base(w) + dist(w -> x) for some directly-dirty seed (w, base). A
// feature update at u seeds (u, base 0) — u's round-0 embedding is its raw
// feature row. Distances are taken over the union of the pre- and
// post-mutation edge tables, which upper-bounds both the old influence
// being removed and the new influence being added.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "flat/tables.h"
#include "gnn/model.h"

namespace agl::serve {

/// One graph mutation. Text form (one per line, '#' comments allowed):
///   add-edge <src> <dst> <weight> [f1,f2,...]
///   remove-edge <src> <dst>
///   update-features <node> f1,f2,...
struct Mutation {
  enum class Type { kAddEdge, kRemoveEdge, kUpdateFeatures };
  Type type = Type::kAddEdge;
  /// kAddEdge / kRemoveEdge: the edge (weight/features used by kAddEdge).
  flat::EdgeRecord edge;
  /// kUpdateFeatures: the node and its replacement feature row.
  flat::NodeId node = 0;
  std::vector<float> features;

  static agl::Result<Mutation> Parse(const std::string& line);
  std::string ToString() const;
};

/// Parses a mutation-stream text file body: one mutation per line, blank
/// lines and lines starting with '#' skipped.
agl::Result<std::vector<Mutation>> ParseMutationStream(
    const std::string& text);

/// Applies one mutation to the service's node/edge tables. Strict, so a
/// mutation either happened exactly or not at all: kAddEdge requires both
/// endpoints in the node table and no existing (src, dst) edge
/// (multi-edges are not supported by the serving path); kRemoveEdge
/// requires the edge to exist; kUpdateFeatures requires the node to exist
/// and the replacement row to keep the table's feature width.
agl::Status ApplyMutation(const Mutation& m,
                          std::vector<flat::NodeRecord>* nodes,
                          std::vector<flat::EdgeRecord>* edges);

/// The two dirty frontiers of a mutation batch, before propagation.
struct DirtySeeds {
  /// Structural seeds for the flattened dataset: a node whose round-0 info
  /// (its table row + its in-edge set) changed. Forward K-hop closure of
  /// these over pre+post edges = the dirty stored targets.
  std::vector<flat::NodeId> dataset_seeds;
  /// Model-aware (node, base-round) seeds for the embedding store: the
  /// node's aggregation row changed (base 1) or its raw features changed
  /// (base 0).
  std::vector<std::pair<flat::NodeId, int>> cache_seeds;
};

/// Computes both frontiers for `batch` applied on top of `pre_edges`
/// (yielding `post_edges`). GCN's column-degree coupling reads outN(a)
/// over the union of the two tables.
DirtySeeds ComputeDirtySeeds(gnn::ModelType model,
                             const std::vector<Mutation>& batch,
                             const std::vector<flat::EdgeRecord>& pre_edges,
                             const std::vector<flat::EdgeRecord>& post_edges);

/// Propagates cache seeds through `num_layers` rounds of out-edge hops over
/// `edges` (pass the pre+post union) and returns the per-node invalidation
/// floor: pairs (node, min_round) meaning every cached (node, r >= min_round)
/// entry is stale. min_round is clamped to >= 1 (round 0 is never cached)
/// and nodes whose best seed distance exceeds `num_layers` are dropped
/// (their cached rounds all predate the dirt's arrival).
/// Order-insensitive fingerprint of the graph table contents (every field
/// of every row, combined commutatively, plus the row counts). Two table
/// pairs fingerprint equal iff they hold the same multiset of rows — so a
/// restart that re-reads identical tables in a different row order still
/// matches. The persistent store stamps this next to the model version:
/// embeddings are a function of (weights, graph), and a published index
/// whose graph no longer matches the serving tables must come up cold.
uint64_t GraphFingerprint(const std::vector<flat::NodeRecord>& nodes,
                          const std::vector<flat::EdgeRecord>& edges);

std::vector<std::pair<flat::NodeId, int32_t>> PropagateInvalidations(
    const std::vector<std::pair<flat::NodeId, int>>& cache_seeds,
    const std::vector<flat::EdgeRecord>& edges, int num_layers);

}  // namespace agl::serve
