#include "serve/mutation.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace agl::serve {
namespace {

std::vector<std::string> SplitWs(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

agl::Result<std::vector<float>> ParseFloats(const std::string& csv) {
  std::vector<float> out;
  std::stringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) {
      return agl::Status::InvalidArgument("empty float in list: " + csv);
    }
    char* end = nullptr;
    const float v = std::strtof(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0') {
      return agl::Status::InvalidArgument("bad float '" + item + "'");
    }
    out.push_back(v);
  }
  return out;
}

agl::Result<uint64_t> ParseId(const std::string& tok) {
  char* end = nullptr;
  const uint64_t v = std::strtoull(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0') {
    return agl::Status::InvalidArgument("bad node id '" + tok + "'");
  }
  return v;
}

std::string JoinFloats(const std::vector<float>& v) {
  std::string out;
  char buf[32];
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(v[i]));
    if (i > 0) out += ',';
    out += buf;
  }
  return out;
}

}  // namespace

agl::Result<Mutation> Mutation::Parse(const std::string& line) {
  const std::vector<std::string> tok = SplitWs(line);
  if (tok.empty()) {
    return agl::Status::InvalidArgument("empty mutation line");
  }
  Mutation m;
  if (tok[0] == "add-edge") {
    if (tok.size() < 4 || tok.size() > 5) {
      return agl::Status::InvalidArgument(
          "add-edge wants: add-edge <src> <dst> <weight> [f1,f2,...]");
    }
    m.type = Type::kAddEdge;
    AGL_ASSIGN_OR_RETURN(m.edge.src, ParseId(tok[1]));
    AGL_ASSIGN_OR_RETURN(m.edge.dst, ParseId(tok[2]));
    char* end = nullptr;
    m.edge.weight = std::strtof(tok[3].c_str(), &end);
    if (end == tok[3].c_str() || *end != '\0') {
      return agl::Status::InvalidArgument("bad weight '" + tok[3] + "'");
    }
    if (tok.size() == 5) {
      AGL_ASSIGN_OR_RETURN(m.edge.features, ParseFloats(tok[4]));
    }
    return m;
  }
  if (tok[0] == "remove-edge") {
    if (tok.size() != 3) {
      return agl::Status::InvalidArgument(
          "remove-edge wants: remove-edge <src> <dst>");
    }
    m.type = Type::kRemoveEdge;
    AGL_ASSIGN_OR_RETURN(m.edge.src, ParseId(tok[1]));
    AGL_ASSIGN_OR_RETURN(m.edge.dst, ParseId(tok[2]));
    return m;
  }
  if (tok[0] == "update-features") {
    if (tok.size() != 3) {
      return agl::Status::InvalidArgument(
          "update-features wants: update-features <node> f1,f2,...");
    }
    m.type = Type::kUpdateFeatures;
    AGL_ASSIGN_OR_RETURN(m.node, ParseId(tok[1]));
    AGL_ASSIGN_OR_RETURN(m.features, ParseFloats(tok[2]));
    return m;
  }
  return agl::Status::InvalidArgument("unknown mutation '" + tok[0] + "'");
}

std::string Mutation::ToString() const {
  char buf[64];
  switch (type) {
    case Type::kAddEdge: {
      std::snprintf(buf, sizeof(buf), "add-edge %llu %llu %g",
                    static_cast<unsigned long long>(edge.src),
                    static_cast<unsigned long long>(edge.dst),
                    static_cast<double>(edge.weight));
      std::string out = buf;
      if (!edge.features.empty()) {
        out += ' ';
        out += JoinFloats(edge.features);
      }
      return out;
    }
    case Type::kRemoveEdge:
      std::snprintf(buf, sizeof(buf), "remove-edge %llu %llu",
                    static_cast<unsigned long long>(edge.src),
                    static_cast<unsigned long long>(edge.dst));
      return buf;
    case Type::kUpdateFeatures:
      std::snprintf(buf, sizeof(buf), "update-features %llu ",
                    static_cast<unsigned long long>(node));
      return std::string(buf) + JoinFloats(features);
  }
  return "";
}

agl::Result<std::vector<Mutation>> ParseMutationStream(
    const std::string& text) {
  std::vector<Mutation> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    auto parsed = Mutation::Parse(line);
    if (!parsed.ok()) {
      return agl::Status::InvalidArgument(
          "mutation stream line " + std::to_string(lineno) + ": " +
          parsed.status().message());
    }
    out.push_back(std::move(parsed).value());
  }
  return out;
}

agl::Status ApplyMutation(const Mutation& m,
                          std::vector<flat::NodeRecord>* nodes,
                          std::vector<flat::EdgeRecord>* edges) {
  auto find_node = [&](flat::NodeId id) -> flat::NodeRecord* {
    for (flat::NodeRecord& n : *nodes) {
      if (n.id == id) return &n;
    }
    return nullptr;
  };
  switch (m.type) {
    case Mutation::Type::kAddEdge: {
      if (find_node(m.edge.src) == nullptr ||
          find_node(m.edge.dst) == nullptr) {
        return agl::Status::NotFound(
            "add-edge: endpoint not in the node table");
      }
      for (const flat::EdgeRecord& e : *edges) {
        if (e.src == m.edge.src && e.dst == m.edge.dst) {
          return agl::Status::AlreadyExists(
              "add-edge: edge " + std::to_string(m.edge.src) + "->" +
              std::to_string(m.edge.dst) + " already present");
        }
      }
      if (!edges->empty() &&
          m.edge.features.size() != (*edges)[0].features.size()) {
        return agl::Status::InvalidArgument(
            "add-edge: feature width " +
            std::to_string(m.edge.features.size()) + " != table width " +
            std::to_string((*edges)[0].features.size()));
      }
      edges->push_back(m.edge);
      return agl::Status::OK();
    }
    case Mutation::Type::kRemoveEdge: {
      for (auto it = edges->begin(); it != edges->end(); ++it) {
        if (it->src == m.edge.src && it->dst == m.edge.dst) {
          edges->erase(it);
          return agl::Status::OK();
        }
      }
      return agl::Status::NotFound(
          "remove-edge: edge " + std::to_string(m.edge.src) + "->" +
          std::to_string(m.edge.dst) + " not present");
    }
    case Mutation::Type::kUpdateFeatures: {
      flat::NodeRecord* n = find_node(m.node);
      if (n == nullptr) {
        return agl::Status::NotFound("update-features: node " +
                                     std::to_string(m.node) +
                                     " not in the node table");
      }
      if (m.features.size() != n->features.size()) {
        return agl::Status::InvalidArgument(
            "update-features: width " + std::to_string(m.features.size()) +
            " != table width " + std::to_string(n->features.size()));
      }
      n->features = m.features;
      return agl::Status::OK();
    }
  }
  return agl::Status::Internal("unreachable mutation type");
}

DirtySeeds ComputeDirtySeeds(gnn::ModelType model,
                             const std::vector<Mutation>& batch,
                             const std::vector<flat::EdgeRecord>& pre_edges,
                             const std::vector<flat::EdgeRecord>& post_edges) {
  // outN over pre + post, only needed for GCN's column-degree coupling.
  std::unordered_map<flat::NodeId, std::vector<flat::NodeId>> out_of;
  if (model == gnn::ModelType::kGcn) {
    for (const flat::EdgeRecord& e : pre_edges) {
      out_of[e.src].push_back(e.dst);
    }
    for (const flat::EdgeRecord& e : post_edges) {
      out_of[e.src].push_back(e.dst);
    }
  }
  std::unordered_set<flat::NodeId> dataset;
  // node -> best (lowest) base round.
  std::unordered_map<flat::NodeId, int> cache;
  auto seed_cache = [&](flat::NodeId id, int base) {
    auto [it, inserted] = cache.emplace(id, base);
    if (!inserted && base < it->second) it->second = base;
  };
  for (const Mutation& m : batch) {
    switch (m.type) {
      case Mutation::Type::kAddEdge:
      case Mutation::Type::kRemoveEdge: {
        // Dataset: only dst's round-0 info (its in-edge set) changed.
        dataset.insert(m.edge.dst);
        seed_cache(m.edge.dst, 1);
        if (model == gnn::ModelType::kGcn) {
          // col_deg(src) changed: every entry in column src, i.e. src's
          // self-loop row and every out-neighbor's row.
          seed_cache(m.edge.src, 1);
          auto it = out_of.find(m.edge.src);
          if (it != out_of.end()) {
            for (flat::NodeId w : it->second) seed_cache(w, 1);
          }
        }
        break;
      }
      case Mutation::Type::kUpdateFeatures:
        dataset.insert(m.node);
        seed_cache(m.node, 0);
        break;
    }
  }
  DirtySeeds out;
  out.dataset_seeds.assign(dataset.begin(), dataset.end());
  std::sort(out.dataset_seeds.begin(), out.dataset_seeds.end());
  out.cache_seeds.assign(cache.begin(), cache.end());
  std::sort(out.cache_seeds.begin(), out.cache_seeds.end());
  return out;
}

std::vector<std::pair<flat::NodeId, int32_t>> PropagateInvalidations(
    const std::vector<std::pair<flat::NodeId, int>>& cache_seeds,
    const std::vector<flat::EdgeRecord>& edges, int num_layers) {
  std::unordered_map<flat::NodeId, std::vector<flat::NodeId>> out_of;
  for (const flat::EdgeRecord& e : edges) out_of[e.src].push_back(e.dst);
  // Level-bucketed multi-source BFS where a node's level is
  // min(base + dist) over seeds — bases are 0/1 and hops cost 1, so
  // expanding levels in order is exact (a tiny Dijkstra with unit edges).
  std::unordered_map<flat::NodeId, int> best;
  std::vector<std::vector<flat::NodeId>> bucket(
      static_cast<std::size_t>(num_layers) + 1);
  for (const auto& [id, base] : cache_seeds) {
    if (base > num_layers) continue;
    auto [it, inserted] = best.emplace(id, base);
    if (inserted || base < it->second) {
      it->second = base;
      bucket[base].push_back(id);
    }
  }
  for (int level = 0; level <= num_layers; ++level) {
    for (std::size_t i = 0; i < bucket[level].size(); ++i) {
      const flat::NodeId v = bucket[level][i];
      if (best[v] != level) continue;  // superseded by a lower level
      if (level == num_layers) continue;
      auto it = out_of.find(v);
      if (it == out_of.end()) continue;
      for (flat::NodeId dst : it->second) {
        auto [jt, inserted] = best.emplace(dst, level + 1);
        if (inserted || level + 1 < jt->second) {
          jt->second = level + 1;
          bucket[level + 1].push_back(dst);
        }
      }
    }
  }
  std::vector<std::pair<flat::NodeId, int32_t>> out;
  out.reserve(best.size());
  for (const auto& [id, level] : best) {
    out.emplace_back(id, static_cast<int32_t>(std::max(1, level)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a(const void* data, std::size_t n, uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t HashFloats(const std::vector<float>& v, uint64_t h) {
  h = Fnv1a(v.data(), v.size() * sizeof(float), h);
  const uint64_t n = v.size();
  return Fnv1a(&n, sizeof(n), h);
}

}  // namespace

uint64_t GraphFingerprint(const std::vector<flat::NodeRecord>& nodes,
                          const std::vector<flat::EdgeRecord>& edges) {
  // Per-row FNV-1a hashes combined by addition: commutative (row order is
  // irrelevant) but still sensitive to any field of any row. Node and edge
  // rows seed differently so an id can't masquerade as a src.
  uint64_t acc = 0x9ae16a3b2f90404fULL;
  for (const flat::NodeRecord& n : nodes) {
    uint64_t h = Fnv1a(&n.id, sizeof(n.id), kFnvOffset ^ 0x4eULL);
    h = HashFloats(n.features, h);
    h = Fnv1a(&n.label, sizeof(n.label), h);
    h = HashFloats(n.multilabel, h);
    acc += h * 0x9e3779b97f4a7c15ULL;
  }
  for (const flat::EdgeRecord& e : edges) {
    uint64_t h = Fnv1a(&e.src, sizeof(e.src), kFnvOffset ^ 0x45ULL);
    h = Fnv1a(&e.dst, sizeof(e.dst), h);
    h = Fnv1a(&e.weight, sizeof(e.weight), h);
    h = HashFloats(e.features, h);
    acc += h * 0xbf58476d1ce4e5b9ULL;
  }
  acc ^= nodes.size() * kFnvPrime;
  acc ^= edges.size();
  return acc;
}

}  // namespace agl::serve
