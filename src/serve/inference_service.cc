#include "serve/inference_service.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/timer.h"
#include "flat/incremental.h"

namespace agl::serve {

agl::Status ServeConfig::Validate() const {
  AGL_RETURN_IF_ERROR(infer.Validate());
  if (store_name.empty()) {
    return agl::Status::InvalidArgument("ServeConfig: empty store_name");
  }
  if (store_budget_bytes == 0) {
    return agl::Status::InvalidArgument(
        "ServeConfig: store_budget_bytes 0 disables the store; a serving "
        "loop without a store has nothing to persist (use a negative "
        "budget for unbounded)");
  }
  if (max_pending < 1) {
    return agl::Status::InvalidArgument("ServeConfig: max_pending < 1");
  }
  if (max_batch_targets < 1) {
    return agl::Status::InvalidArgument(
        "ServeConfig: max_batch_targets < 1");
  }
  if (!features_dataset.empty()) {
    AGL_RETURN_IF_ERROR(flat.Validate());
    if (flat.sampler.strategy != sampling::Strategy::kNone) {
      return agl::Status::InvalidArgument(
          "ServeConfig: features_dataset maintenance requires sampling "
          "'none' (incremental re-flatten is not byte-reproducible under "
          "sampling)");
    }
  }
  return agl::Status::OK();
}

agl::Result<InferenceService::Scores> InferenceService::Pending::Wait() {
  common::MutexLock lock(&mu_);
  while (!done_) cv_.Wait(&mu_);
  if (!status_.ok()) return status_;
  return scores_;
}

void InferenceService::Pending::Complete(agl::Status status, Scores scores) {
  {
    common::MutexLock lock(&mu_);
    done_ = true;
    status_ = std::move(status);
    scores_ = std::move(scores);
  }
  cv_.SignalAll();
}

InferenceService::InferenceService(
    const ServeConfig& config, std::map<std::string, tensor::Tensor> state,
    std::vector<flat::NodeRecord> nodes, std::vector<flat::EdgeRecord> edges,
    mr::LocalDfs* dfs)
    : config_(config),
      state_(std::move(state)),
      model_version_(infer::StateFingerprint(state_)),
      dfs_(dfs),
      nodes_(std::move(nodes)),
      edges_(std::move(edges)) {
  node_ids_.reserve(nodes_.size());
  for (const flat::NodeRecord& n : nodes_) node_ids_.insert(n.id);
}

agl::Result<std::unique_ptr<InferenceService>> InferenceService::Start(
    const ServeConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    std::vector<flat::NodeRecord> nodes, std::vector<flat::EdgeRecord> edges,
    mr::LocalDfs* dfs) {
  AGL_RETURN_IF_ERROR(config.Validate());
  if (dfs == nullptr) {
    return agl::Status::InvalidArgument("InferenceService: null dfs");
  }
  if (nodes.empty()) {
    return agl::Status::InvalidArgument(
        "InferenceService: empty node table");
  }
  if (!config.features_dataset.empty() &&
      !dfs->DatasetExists(config.features_dataset)) {
    return agl::Status::FailedPrecondition(
        "InferenceService: features_dataset '" + config.features_dataset +
        "' does not exist; run GraphFlat first");
  }
  std::unique_ptr<InferenceService> svc(new InferenceService(
      config, state, std::move(nodes), std::move(edges), dfs));
  infer::PersistentEmbeddingStore::Options opts;
  opts.budget_bytes = config.store_budget_bytes;
  opts.model_version = svc->model_version_;
  // Embeddings are a function of (weights, graph): a published index from
  // an incarnation that persisted after mutations must not serve against
  // these tables, so the store comes up warm only on a double match.
  opts.graph_version = GraphFingerprint(svc->nodes_, svc->edges_);
  AGL_ASSIGN_OR_RETURN(
      svc->store_,
      infer::PersistentEmbeddingStore::Open(dfs, config.store_name, opts));
  svc->thread_ = std::thread([raw = svc.get()] { raw->ServeLoop(); });
  return svc;
}

InferenceService::~InferenceService() { Shutdown(); }

agl::Result<std::shared_ptr<InferenceService::Pending>>
InferenceService::Submit(std::vector<flat::NodeId> targets) {
  if (targets.empty()) {
    return agl::Status::InvalidArgument("Submit: empty target list");
  }
  for (flat::NodeId t : targets) {
    if (node_ids_.count(t) == 0) {
      return agl::Status::NotFound("Submit: target " + std::to_string(t) +
                                   " not in the node table");
    }
  }
  auto pending = std::make_shared<Pending>();
  {
    common::MutexLock lock(&mu_);
    if (stop_) {
      return agl::Status::FailedPrecondition("Submit: service stopped");
    }
    if (pending_scores_ >= config_.max_pending) {
      ++stats_.rejected;
      return agl::Status::ResourceExhausted(
          "Submit: admission queue full (" +
          std::to_string(config_.max_pending) + " pending)");
    }
    ++pending_scores_;
    ++stats_.admitted;
    Item item;
    item.kind = Item::Kind::kScore;
    item.targets = std::move(targets);
    item.pending = pending;
    queue_.push_back(std::move(item));
  }
  work_cv_.Signal();
  return pending;
}

agl::Result<InferenceService::Scores> InferenceService::Score(
    std::vector<flat::NodeId> targets) {
  AGL_ASSIGN_OR_RETURN(std::shared_ptr<Pending> pending,
                       Submit(std::move(targets)));
  return pending->Wait();
}

agl::Status InferenceService::ApplyMutations(std::vector<Mutation> batch) {
  if (batch.empty()) return agl::Status::OK();
  auto pending = std::make_shared<Pending>();
  {
    common::MutexLock lock(&mu_);
    if (stop_) {
      return agl::Status::FailedPrecondition(
          "ApplyMutations: service stopped");
    }
    Item item;
    item.kind = Item::Kind::kMutate;
    item.mutations = std::move(batch);
    item.pending = pending;
    queue_.push_back(std::move(item));
  }
  work_cv_.Signal();
  return pending->Wait().status();
}

agl::Status InferenceService::Persist() {
  auto pending = std::make_shared<Pending>();
  {
    common::MutexLock lock(&mu_);
    if (stop_) {
      // The serving thread is gone (Shutdown's join ordered its last
      // store access before ours): publish inline.
      return store_->Publish();
    }
    Item item;
    item.kind = Item::Kind::kPersist;
    item.pending = pending;
    queue_.push_back(std::move(item));
  }
  work_cv_.Signal();
  return pending->Wait().status();
}

agl::Status InferenceService::Shutdown() {
  {
    common::MutexLock lock(&mu_);
    if (joined_) return agl::Status::OK();
    stop_ = true;
    joined_ = true;
  }
  work_cv_.SignalAll();
  thread_.join();
  return agl::Status::OK();
}

ServeStats InferenceService::stats() const {
  ServeStats out;
  {
    common::MutexLock lock(&mu_);
    out = stats_;
  }
  out.store = store_->stats();
  out.opened_warm = store_->opened_warm();
  return out;
}

void InferenceService::ServeLoop() {
  while (true) {
    std::vector<Item> batch;
    {
      common::MutexLock lock(&mu_);
      while (queue_.empty() && !stop_) work_cv_.Wait(&mu_);
      if (queue_.empty()) break;  // stop_ set and the queue drained
      if (queue_.front().kind != Item::Kind::kScore) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      } else {
        // Coalesce the run of adjacent score requests at the head — never
        // across a mutation (FIFO order is the consistency contract).
        std::size_t total = 0;
        while (!queue_.empty() &&
               queue_.front().kind == Item::Kind::kScore) {
          const std::size_t n = queue_.front().targets.size();
          if (!batch.empty() && total + n > config_.max_batch_targets) break;
          total += n;
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
          --pending_scores_;
        }
      }
    }
    if (batch[0].kind == Item::Kind::kScore) {
      ProcessScoreBatch(std::move(batch));
    } else {
      ProcessControlItem(std::move(batch[0]));
    }
  }
}

void InferenceService::ProcessScoreBatch(std::vector<Item> batch) {
  // Union the targets in arrival order; PartitionTargets slices the union
  // contiguously, so adjacent requests land in adjacent slices.
  std::vector<flat::NodeId> united;
  {
    std::unordered_set<flat::NodeId> seen;
    for (const Item& item : batch) {
      for (flat::NodeId t : item.targets) {
        if (seen.insert(t).second) united.push_back(t);
      }
    }
  }
  infer::InferConfig cfg = config_.infer;
  cfg.target_ids = united;
  cfg.cache_budget_bytes = 0;
  cfg.cache_spill_path.clear();
  Stopwatch watch;
  auto result =
      infer::RunGraphInferBatched(cfg, state_, nodes_, edges_, store_.get());
  const double seconds = watch.Seconds();
  {
    common::MutexLock lock(&mu_);
    ++stats_.batches;
    stats_.batched_targets += static_cast<int64_t>(united.size());
    stats_.infer_seconds += seconds;
    if (result.ok()) {
      stats_.served += static_cast<int64_t>(batch.size());
    } else {
      stats_.failed += static_cast<int64_t>(batch.size());
    }
  }
  if (!result.ok()) {
    const agl::Status failure = agl::Status::Unavailable(
        "pipeline pass failed: " + result.status().message());
    for (Item& item : batch) item.pending->Complete(failure, {});
    return;
  }
  std::unordered_map<flat::NodeId, const std::vector<float>*> score_of;
  score_of.reserve(result->scores.size());
  for (const auto& [id, vec] : result->scores) score_of.emplace(id, &vec);
  for (Item& item : batch) {
    Scores scores;
    std::vector<flat::NodeId> ids = item.targets;
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    scores.reserve(ids.size());
    for (flat::NodeId id : ids) {
      auto it = score_of.find(id);
      if (it != score_of.end()) scores.emplace_back(id, *it->second);
    }
    item.pending->Complete(agl::Status::OK(), std::move(scores));
  }
}

void InferenceService::ProcessControlItem(Item item) {
  if (item.kind == Item::Kind::kPersist) {
    item.pending->Complete(store_->Publish(), {});
    return;
  }
  // Mutation batch. Snapshot the pre tables: seeds and closures read both
  // sides, and an apply error rolls back wholesale.
  const std::vector<flat::NodeRecord> pre_nodes = nodes_;
  const std::vector<flat::EdgeRecord> pre_edges = edges_;
  for (std::size_t i = 0; i < item.mutations.size(); ++i) {
    agl::Status s = ApplyMutation(item.mutations[i], &nodes_, &edges_);
    if (!s.ok()) {
      nodes_ = pre_nodes;
      edges_ = pre_edges;
      item.pending->Complete(
          agl::Status(s.code(), "mutation " + std::to_string(i) + " (" +
                                    item.mutations[i].ToString() +
                                    "): " + s.message()),
          {});
      return;
    }
  }
  const DirtySeeds seeds = ComputeDirtySeeds(config_.infer.model.type,
                                             item.mutations, pre_edges,
                                             edges_);
  // Distances for both the removed (pre) and added (post) influence are
  // bounded below by distances over the union table.
  std::vector<flat::EdgeRecord> union_edges = pre_edges;
  union_edges.insert(union_edges.end(), edges_.begin(), edges_.end());
  const std::vector<std::pair<flat::NodeId, int32_t>> floors =
      PropagateInvalidations(seeds.cache_seeds, union_edges,
                             config_.infer.model.num_layers);
  for (const auto& [node, min_round] : floors) {
    store_->Invalidate(node, min_round);
  }
  // The graph moved: restamp the store so the next Publish() pins the
  // index to the tables it actually describes.
  store_->set_graph_version(GraphFingerprint(nodes_, edges_));
  agl::Status status = agl::Status::OK();
  flat::ReflattenStats rstats;
  if (!config_.features_dataset.empty()) {
    const std::vector<flat::NodeId> dirty = flat::ForwardClosure(
        union_edges, seeds.dataset_seeds, config_.flat.hops);
    status = flat::ReflattenDirty(config_.flat, nodes_, edges_, dirty, dfs_,
                                  config_.features_dataset, &rstats);
  }
  {
    common::MutexLock lock(&mu_);
    ++stats_.mutation_batches;
    stats_.mutations_applied += static_cast<int64_t>(item.mutations.size());
    stats_.invalidated_nodes += static_cast<int64_t>(floors.size());
    if (!config_.features_dataset.empty()) {
      ++stats_.reflatten_runs;
      stats_.reflatten_dirty_targets += rstats.dirty_targets;
    }
  }
  item.pending->Complete(std::move(status), {});
}

}  // namespace agl::serve
