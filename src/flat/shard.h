// Sharded GraphFlat (§3.2 at scale): the node/edge tables are
// hash-partitioned across S logical MapReduce shards, each shard runs the
// GraphFlat rounds over its own key range, and a router exchanges boundary
// records (neighbor states whose destination lives on another shard)
// between rounds. Every shuffle key has exactly one home shard, so each
// reduce group sees the same value multiset as a single-shard run — which,
// combined with the engine's canonical value ordering, makes the pipeline's
// output invariant to the shard count (the property tests/sharding_test.cpp
// proves byte-for-byte).
//
// GraphInfer reuses the same plan/router to shard its message-passing
// rounds.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "flat/tables.h"
#include "mr/mapreduce.h"

namespace agl::flat {

/// Deterministic assignment of shuffle keys to `num_shards` logical shards.
/// The hash is salted independently of the engine's reduce-task partitioner
/// so shard and task assignment stay decorrelated.
class ShardPlan {
 public:
  explicit ShardPlan(int num_shards);

  int num_shards() const { return num_shards_; }

  /// Home shard of a shuffle key (decimal node ids in GraphFlat/GraphInfer).
  int HomeShard(const std::string& key) const;

  /// Home shard of a node id; agrees with HomeShard(std::to_string(id)).
  int HomeShardOf(NodeId id) const;

 private:
  int num_shards_ = 1;
};

/// Per-shard slices of the raw input tables.
struct ShardedTables {
  std::vector<std::vector<NodeRecord>> nodes;  // [shard] -> owned node rows
  std::vector<std::vector<EdgeRecord>> edges;  // [shard] -> incident edges
};

/// Moves records between the per-shard jobs.
class ShardRouter {
 public:
  explicit ShardRouter(ShardPlan plan) : plan_(plan) {}

  /// Splits the raw tables into per-shard map inputs: a node row goes to
  /// the node's home shard; an edge row goes to BOTH endpoint shards (once,
  /// when they coincide) so the round-0 join stays local — the in-edge stub
  /// is consumed at dst's shard and the out-edge stub at src's shard.
  ShardedTables PartitionTables(const std::vector<NodeRecord>& nodes,
                                const std::vector<EdgeRecord>& edges) const;

  /// Drops records whose key is not homed on `shard`. Applied to each
  /// shard's map output: an edge mapped on both endpoint shards emits its
  /// two stubs twice, and the filter keeps each stub only on its home
  /// shard, so every record survives exactly once globally.
  void FilterToShard(int shard, std::vector<mr::KeyValue>* records) const;

  /// The inter-round exchange: regroups every shard's output by the home
  /// shard of each record's key. This is the boundary traffic — neighbor
  /// states propagated along edges that cross the partition.
  std::vector<std::vector<mr::KeyValue>> Exchange(
      std::vector<std::vector<mr::KeyValue>> per_shard) const;

  const ShardPlan& plan() const { return plan_; }

 private:
  ShardPlan plan_;
};

/// Runs `fn(shard)` for every shard concurrently (each shard job is itself
/// a multi-threaded MapReduce job; the paper runs them on disjoint cluster
/// slices) and returns the first non-OK status in shard order.
agl::Status ParallelOverShards(int num_shards,
                               const std::function<agl::Status(int)>& fn);

}  // namespace agl::flat
