// The boundary-state exchange behind sharded GraphFlat and the analytics
// round loop, abstracted so the same per-shard code runs in-process
// (threads moving vectors through memory) or multi-process (records
// spilled through the crash-consistent LocalDfs and collected by other
// OS processes).
//
// Contract: for every round, each of the S shards calls
// Publish(round, src, records) exactly once-logically (a restarted shard
// may re-publish — publishes are idempotent because the per-shard record
// stream is deterministic and DFS publishes are atomic), and
// Collect(round, dst) blocks until all S publishes for `round` landed,
// returning exactly the records whose shuffle key is homed on `dst`,
// ordered source-shard-major with the original emit order preserved
// within each source. That ordering plus the reduce engine's canonical
// value ordering is what keeps output byte-identical across
// {in-memory, DFS} × shard counts.
//
// AllGather is the small-value barrier the analytics convergence check
// runs on: every shard deposits one payload under a tag; all shards
// receive the S payloads indexed by shard.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "flat/shard.h"
#include "mr/local_dfs.h"
#include "mr/mapreduce.h"

namespace agl::flat {

/// Traffic counters of one exchange (aggregated across shards).
struct ExchangeStats {
  int64_t publishes = 0;
  int64_t collects = 0;
  int64_t allgathers = 0;
  int64_t records_published = 0;
  int64_t records_collected = 0;
  /// Serialized bytes moved through the DFS (0 for the in-memory path).
  int64_t bytes_published = 0;
  int64_t bytes_collected = 0;
  /// Time shards spent blocked waiting for peers' publishes.
  double wait_seconds = 0;

  void Accumulate(const ExchangeStats& other);
};

class Exchange {
 public:
  virtual ~Exchange() = default;

  /// Routes every record to its key's home shard for pickup at `round`.
  virtual agl::Status Publish(int round, int src_shard,
                              std::vector<mr::KeyValue> records) = 0;

  /// Blocks until all shards published `round`; returns `dst_shard`'s
  /// records (source-major order).
  virtual agl::Result<std::vector<mr::KeyValue>> Collect(int round,
                                                         int dst_shard) = 0;

  /// Deposits `payload` for (`tag`, `shard`) and blocks until every shard
  /// deposited under `tag`; returns the payloads indexed by shard. Tags
  /// must be unique per barrier within a job.
  virtual agl::Result<std::vector<std::string>> AllGather(
      const std::string& tag, int shard, std::string payload) = 0;

  /// Poisons the exchange: every blocked Collect/AllGather wakes with
  /// `status`, and every later call fails with it too. Pulled when a peer
  /// shard dies without restart — without it the surviving shards would
  /// park forever at the next barrier. Idempotent; the first status wins.
  /// `status` must be an error.
  virtual void Abort(agl::Status status) = 0;

  virtual ExchangeStats stats() const = 0;
};

/// Thread-backed exchange: mutex + condvar over per-(round, src, dst)
/// buckets. This is the single-process fast path.
class InMemoryExchange : public Exchange {
 public:
  explicit InMemoryExchange(ShardPlan plan);

  agl::Status Publish(int round, int src_shard,
                      std::vector<mr::KeyValue> records) override;
  agl::Result<std::vector<mr::KeyValue>> Collect(int round,
                                                 int dst_shard) override;
  agl::Result<std::vector<std::string>> AllGather(const std::string& tag,
                                                  int shard,
                                                  std::string payload) override;
  void Abort(agl::Status status) override;
  ExchangeStats stats() const override;

 private:
  struct Round {
    // [src][dst] record buckets; published[src] marks src's deposit.
    std::vector<std::vector<std::vector<mr::KeyValue>>> buckets;
    std::vector<bool> published;
    int num_published = 0;
  };
  struct Gather {
    std::vector<std::string> payloads;
    std::vector<bool> present;
    int num_present = 0;
  };

  ShardPlan plan_;
  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::unordered_map<int, Round> rounds_ GUARDED_BY(mu_);
  std::unordered_map<std::string, Gather> gathers_ GUARDED_BY(mu_);
  agl::Status aborted_ GUARDED_BY(mu_);
  ExchangeStats stats_ GUARDED_BY(mu_);
};

/// DFS-backed exchange: each (round, src, dst) bucket is one atomically
/// published dataset "<prefix>.x.r<round>.f<src>.t<dst>"; collectors poll
/// for the S source datasets of their round. Because every dataset is
/// written with the crash-consistent scratch+rename publish, a shard
/// process that dies mid-publish leaves no readable partial, and its
/// restarted attempt re-publishes byte-identical data. Datasets are
/// retained for the life of the job (restart safety) and removed with
/// CleanupPrefix afterwards.
class DfsExchange : public Exchange {
 public:
  struct Options {
    int poll_interval_ms = 2;
    /// Collect/AllGather give up after this long without the missing
    /// peer datasets appearing (a dead, unrestarted shard).
    int timeout_ms = 120000;
  };

  DfsExchange(mr::LocalDfs* dfs, std::string prefix, ShardPlan plan);
  DfsExchange(mr::LocalDfs* dfs, std::string prefix, ShardPlan plan,
              Options options);

  agl::Status Publish(int round, int src_shard,
                      std::vector<mr::KeyValue> records) override;
  agl::Result<std::vector<mr::KeyValue>> Collect(int round,
                                                 int dst_shard) override;
  agl::Result<std::vector<std::string>> AllGather(const std::string& tag,
                                                  int shard,
                                                  std::string payload) override;
  void Abort(agl::Status status) override;
  ExchangeStats stats() const override;

  /// Drops every dataset under `prefix` (driver cleanup after a job).
  static agl::Status CleanupPrefix(mr::LocalDfs* dfs,
                                   const std::string& prefix);

 private:
  agl::Result<std::string> AwaitAndRead(const std::string& dataset);

  mr::LocalDfs* dfs_;
  std::string prefix_;
  ShardPlan plan_;
  Options options_;
  mutable common::Mutex mu_;
  agl::Status aborted_ GUARDED_BY(mu_);
  ExchangeStats stats_ GUARDED_BY(mu_);
};

/// (De)serialization of one exchange bucket — exposed for tests.
std::string SerializeExchangeRecords(const std::vector<mr::KeyValue>& records);
agl::Result<std::vector<mr::KeyValue>> ParseExchangeRecords(
    const std::string& bytes);

}  // namespace agl::flat
