// SubgraphState: the "self information" a GraphFlat reducer accumulates for
// a node across Reduce rounds — a growing partial subgraph. Merging is a
// set union over nodes (by id) and edges (by endpoint pair), which makes it
// associative and commutative, the property that lets hub keys be partially
// merged on re-indexed reducers (§3.2.2) without changing the result.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "flat/tables.h"
#include "subgraph/graph_feature.h"

namespace agl::flat {

/// A partial k-hop neighborhood keyed by its root node.
class SubgraphState {
 public:
  SubgraphState() = default;
  explicit SubgraphState(NodeId root) : root_(root) {}

  NodeId root() const { return root_; }

  /// Inserts a node (no-op if the id is already present).
  void AddNode(const NodeRecord& node);
  /// Inserts an edge (no-op if (src, dst) is already present). Endpoints
  /// need not have node entries yet; dangling edges are dropped at
  /// finalization.
  void AddEdge(const EdgeRecord& edge);
  /// Set-union with another state.
  void Merge(const SubgraphState& other);

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  bool HasNode(NodeId id) const { return nodes_.count(id) > 0; }

  const std::map<NodeId, NodeRecord>& nodes() const { return nodes_; }
  const std::map<std::pair<NodeId, NodeId>, EdgeRecord>& edges() const {
    return edges_;
  }

  /// Looks up the weight of edge (src -> dst); 1.0 when unknown.
  float EdgeWeightOr(NodeId src, NodeId dst, float fallback) const;

  std::string Serialize() const;
  static agl::Result<SubgraphState> Parse(const std::string& bytes);

  /// Converts to the final GraphFeature: nodes get dense local indices
  /// (root first), edges referencing nodes without features are dropped,
  /// edges sort by (dst, src). `edge_feature_dim` 0 omits the edge feature
  /// matrix.
  agl::Result<subgraph::GraphFeature> ToGraphFeature(
      int64_t node_feature_dim, int64_t edge_feature_dim) const;

  bool operator==(const SubgraphState& o) const {
    return root_ == o.root_ && nodes_ == o.nodes_ && edges_ == o.edges_;
  }

 private:
  NodeId root_ = 0;
  // Ordered maps keep serialization canonical (deterministic bytes for
  // identical states regardless of merge order).
  std::map<NodeId, NodeRecord> nodes_;
  std::map<std::pair<NodeId, NodeId>, EdgeRecord> edges_;
};

}  // namespace agl::flat
