#include "flat/incremental.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "flat/state.h"
#include "subgraph/graph_feature.h"

namespace agl::flat {
namespace {

bool IsTargetNode(const GraphFlatConfig& config, const NodeRecord& n) {
  return config.targets == GraphFlatConfig::Targets::kAllNodes ||
         n.label >= 0 || !n.multilabel.empty();
}

}  // namespace

std::vector<NodeId> ForwardClosure(const std::vector<EdgeRecord>& edges,
                                   const std::vector<NodeId>& seeds,
                                   int hops) {
  std::unordered_map<NodeId, std::vector<NodeId>> out_of;
  for (const EdgeRecord& e : edges) out_of[e.src].push_back(e.dst);
  std::unordered_set<NodeId> reached;
  std::vector<NodeId> frontier;
  for (NodeId s : seeds) {
    if (reached.insert(s).second) frontier.push_back(s);
  }
  for (int hop = 0; hop < hops && !frontier.empty(); ++hop) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      auto it = out_of.find(v);
      if (it == out_of.end()) continue;
      for (NodeId dst : it->second) {
        if (reached.insert(dst).second) next.push_back(dst);
      }
    }
    frontier = std::move(next);
  }
  std::vector<NodeId> out(reached.begin(), reached.end());
  std::sort(out.begin(), out.end());
  return out;
}

agl::Status ReflattenDirty(const GraphFlatConfig& config,
                           const std::vector<NodeRecord>& nodes,
                           const std::vector<EdgeRecord>& edges,
                           const std::vector<NodeId>& dirty,
                           mr::LocalDfs* dfs, const std::string& dataset,
                           ReflattenStats* stats) {
  Stopwatch watch;
  AGL_RETURN_IF_ERROR(config.Validate());
  if (nodes.empty()) {
    return agl::Status::InvalidArgument("ReflattenDirty: empty node table");
  }
  if (dfs == nullptr) {
    return agl::Status::InvalidArgument("ReflattenDirty: null dfs");
  }
  if (config.sampler.strategy != sampling::Strategy::kNone) {
    return agl::Status::FailedPrecondition(
        "ReflattenDirty: incremental re-flatten requires sampling 'none' "
        "(a sampled pipeline is not byte-reproducible on a pruned graph)");
  }
  // The hub re-index pass force-samples keys above the threshold; it must
  // stay dormant in both the cold reference and the pruned re-run. Per-key
  // sampleable multiplicity is bounded by the in-degree.
  if (config.hub_threshold > 0) {
    std::unordered_map<NodeId, int64_t> indeg;
    for (const EdgeRecord& e : edges) {
      if (++indeg[e.dst] > config.hub_threshold) {
        return agl::Status::FailedPrecondition(
            "ReflattenDirty: node " + std::to_string(e.dst) +
            " exceeds hub_threshold; hub re-indexing samples, so the "
            "incremental path cannot reproduce the cold run");
      }
    }
  }
  if (!dfs->DatasetExists(dataset)) {
    return agl::Status::FailedPrecondition(
        "ReflattenDirty: dataset " + dataset +
        " does not exist; run full GraphFlat first");
  }

  std::unordered_map<NodeId, const NodeRecord*> node_of;
  node_of.reserve(nodes.size());
  std::unordered_set<NodeId> target_set;
  for (const NodeRecord& n : nodes) {
    node_of.emplace(n.id, &n);
    if (IsTargetNode(config, n)) target_set.insert(n.id);
  }

  // Load the stored payloads; the stored target set must match the current
  // one exactly (the supported mutations never change it).
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> records,
                       dfs->ReadDataset(dataset));
  std::unordered_map<NodeId, std::string> payload_of;
  payload_of.reserve(records.size());
  for (std::string& bytes : records) {
    AGL_ASSIGN_OR_RETURN(subgraph::GraphFeature gf,
                         subgraph::GraphFeature::Parse(bytes));
    payload_of[gf.target_id] = std::move(bytes);
  }
  if (payload_of.size() != target_set.size()) {
    return agl::Status::FailedPrecondition(
        "ReflattenDirty: dataset stores " +
        std::to_string(payload_of.size()) + " targets but the tables have " +
        std::to_string(target_set.size()) + "; run full GraphFlat");
  }
  for (NodeId t : target_set) {
    if (payload_of.find(t) == payload_of.end()) {
      return agl::Status::FailedPrecondition(
          "ReflattenDirty: dataset is missing target " + std::to_string(t) +
          "; run full GraphFlat");
    }
  }

  std::vector<NodeId> dirty_targets;
  {
    std::unordered_set<NodeId> seen;
    for (NodeId id : dirty) {
      if (target_set.count(id) > 0 && seen.insert(id).second) {
        dirty_targets.push_back(id);
      }
    }
  }
  ReflattenStats local;
  local.candidate_targets = static_cast<int64_t>(dirty.size());
  local.dirty_targets = static_cast<int64_t>(dirty_targets.size());
  local.reused_payloads =
      static_cast<int64_t>(target_set.size() - dirty_targets.size());
  if (dirty_targets.empty()) {
    // Nothing stored depends on the mutated nodes: the dataset is already
    // byte-identical to a cold run.
    local.elapsed_seconds = watch.Seconds();
    if (stats != nullptr) *stats = local;
    return agl::Status::OK();
  }

  // K-hop in-closure of the dirty targets. Keeping every edge whose dst is
  // in the closure preserves each kept node's complete in-edge set, which
  // is what makes the dirty targets' re-flattened states exact: a target's
  // final state is the union of the round-0 infos of its <=K in-hop
  // sources, and every node on such a path is itself in the closure.
  std::unordered_map<NodeId, std::vector<NodeId>> in_of;
  for (const EdgeRecord& e : edges) in_of[e.dst].push_back(e.src);
  std::unordered_set<NodeId> kept;
  std::vector<NodeId> frontier;
  for (NodeId t : dirty_targets) {
    if (kept.insert(t).second) frontier.push_back(t);
  }
  for (int hop = 0; hop < config.hops && !frontier.empty(); ++hop) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      auto it = in_of.find(v);
      if (it == in_of.end()) continue;
      for (NodeId src : it->second) {
        if (kept.insert(src).second) next.push_back(src);
      }
    }
    frontier = std::move(next);
  }
  std::vector<NodeRecord> pruned_nodes;
  for (const NodeRecord& n : nodes) {
    if (kept.count(n.id) > 0) pruned_nodes.push_back(n);
  }
  // An edge whose src falls outside the closure is kept anyway: the
  // pipeline handles structure-only endpoints, and the src's own info can
  // never reach a dirty target within K rounds.
  std::vector<EdgeRecord> pruned_edges;
  for (const EdgeRecord& e : edges) {
    if (kept.count(e.dst) > 0) pruned_edges.push_back(e);
  }
  local.pruned_nodes = static_cast<int64_t>(pruned_nodes.size());
  local.pruned_edges = static_cast<int64_t>(pruned_edges.size());

  std::unordered_set<NodeId> dirty_set(dirty_targets.begin(),
                                       dirty_targets.end());
  if (pruned_edges.empty() && !edges.empty()) {
    // Every dirty target is isolated within K hops, but the cold pipeline
    // would still stamp its zero-row edge tensor with the table-wide edge
    // feature width — which a pruned run couldn't infer from an empty edge
    // list. Build the single-node features directly at the full widths.
    const int64_t node_dim =
        static_cast<int64_t>(nodes[0].features.size());
    const int64_t edge_dim =
        static_cast<int64_t>(edges[0].features.size());
    for (NodeId t : dirty_targets) {
      SubgraphState state(t);
      state.AddNode(*node_of.at(t));
      AGL_ASSIGN_OR_RETURN(subgraph::GraphFeature gf,
                           state.ToGraphFeature(node_dim, edge_dim));
      payload_of[t] = gf.Serialize();
    }
  } else {
    // Re-run the pipeline on the pruned subgraph. Single-shard is enough:
    // output bytes are shard-count-invariant (the sharding_test property),
    // and the pruned graph is the small one.
    GraphFlatConfig sub = config;
    sub.num_shards = 1;
    AGL_ASSIGN_OR_RETURN(std::vector<subgraph::GraphFeature> features,
                         RunGraphFlatInMemory(sub, pruned_nodes,
                                              pruned_edges));
    std::size_t replaced = 0;
    for (const subgraph::GraphFeature& gf : features) {
      if (dirty_set.count(gf.target_id) == 0) continue;
      payload_of[gf.target_id] = gf.Serialize();
      ++replaced;
    }
    if (replaced != dirty_targets.size()) {
      return agl::Status::Internal(
          "ReflattenDirty: pruned re-run produced " +
          std::to_string(replaced) + " of " +
          std::to_string(dirty_targets.size()) + " dirty features");
    }
  }

  std::vector<std::pair<NodeId, std::string>> finals;
  finals.reserve(payload_of.size());
  for (auto& [id, bytes] : payload_of) {
    finals.emplace_back(id, std::move(bytes));
  }
  AGL_RETURN_IF_ERROR(
      StoreFeaturePayloads(config, std::move(finals), dfs, dataset));
  local.elapsed_seconds = watch.Seconds();
  if (stats != nullptr) *stats = local;
  return agl::Status::OK();
}

}  // namespace agl::flat
