// Node / edge table records — GraphFlat's raw inputs (§3.2.1):
// "Assume that we take a node table and an edge table as input. The node
//  table consists of node ids and node features, while the edge table
//  consists of source node ids, destination node ids and edge features."

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace agl::flat {

using NodeId = uint64_t;

/// One row of the node table.
struct NodeRecord {
  NodeId id = 0;
  std::vector<float> features;
  /// Class label; -1 means unlabeled.
  int64_t label = -1;
  /// Optional multi-label target (empty if unused).
  std::vector<float> multilabel;

  std::string Serialize() const;
  static agl::Result<NodeRecord> Parse(const std::string& bytes);

  bool operator==(const NodeRecord& o) const {
    return id == o.id && features == o.features && label == o.label &&
           multilabel == o.multilabel;
  }
};

/// One row of the edge table (directed src -> dst).
struct EdgeRecord {
  NodeId src = 0;
  NodeId dst = 0;
  float weight = 1.f;
  std::vector<float> features;

  std::string Serialize() const;
  static agl::Result<EdgeRecord> Parse(const std::string& bytes);

  bool operator==(const EdgeRecord& o) const {
    return src == o.src && dst == o.dst && weight == o.weight &&
           features == o.features;
  }
};

}  // namespace agl::flat
