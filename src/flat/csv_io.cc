#include "flat/csv_io.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_set>

namespace agl::flat {
namespace {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

agl::Result<uint64_t> ParseU64(const std::string& s, const char* what) {
  uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return agl::Status::InvalidArgument(std::string("bad ") + what + ": '" +
                                        s + "'");
  }
  return v;
}

agl::Result<int64_t> ParseI64(const std::string& s, const char* what) {
  int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return agl::Status::InvalidArgument(std::string("bad ") + what + ": '" +
                                        s + "'");
  }
  return v;
}

agl::Result<float> ParseF32(const std::string& s, const char* what) {
  // std::from_chars<float> is not universally available; strtof suffices —
  // but strtof silently skips leading whitespace and saturates on
  // overflow, so both are rejected explicitly (from_chars-parity with the
  // integer columns).
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return agl::Status::InvalidArgument(std::string("bad ") + what + ": '" +
                                        s + "'");
  }
  char* end = nullptr;
  errno = 0;
  const float v = std::strtof(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return agl::Status::InvalidArgument(std::string("bad ") + what + ": '" +
                                        s + "'");
  }
  if (errno == ERANGE && std::isinf(v)) {
    return agl::Status::InvalidArgument(std::string("out-of-range ") + what +
                                        ": '" + s + "'");
  }
  return v;
}

agl::Result<std::vector<float>> ParseFloatList(const std::string& s,
                                               const char* what) {
  std::vector<float> out;
  if (s.empty()) return out;
  for (const std::string& piece : Split(s, ';')) {
    AGL_ASSIGN_OR_RETURN(float v, ParseF32(piece, what));
    out.push_back(v);
  }
  return out;
}

/// Trailing empty columns (spreadsheet exports pad rows, and a CRLF file
/// stripped of its '\r' can leave one) are treated as absent optional
/// columns rather than mis-parsed as empty values. `min_cols` protects the
/// required columns, whose emptiness must stay visible to validation.
void DropTrailingEmptyColumns(std::vector<std::string>* cols,
                              std::size_t min_cols) {
  while (cols->size() > min_cols && cols->back().empty()) cols->pop_back();
}

std::string JoinFloats(const std::vector<float>& v) {
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ';';
    os << v[i];
  }
  return os.str();
}

/// Iterates data lines (skipping blanks and '#' comments).
template <typename Fn>
agl::Status ForEachLine(const std::string& text, Fn&& fn) {
  std::size_t start = 0;
  int line_no = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line[0] != '#') {
      agl::Status s = fn(line);
      if (!s.ok()) {
        return agl::Status(s.code(), "line " + std::to_string(line_no) +
                                         ": " + s.message());
      }
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return agl::Status::OK();
}

agl::Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return agl::Status::IoError("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace

agl::Result<std::vector<NodeRecord>> ParseNodeCsv(const std::string& text) {
  std::vector<NodeRecord> nodes;
  std::unordered_set<NodeId> seen_ids;
  AGL_RETURN_IF_ERROR(ForEachLine(text, [&](const std::string& line) {
    std::vector<std::string> cols = Split(line, ',');
    DropTrailingEmptyColumns(&cols, 3);
    if (cols.size() < 3 || cols.size() > 4) {
      return agl::Status::InvalidArgument(
          "node row needs 3-4 columns (id,label,features[,multilabel])");
    }
    NodeRecord node;
    AGL_ASSIGN_OR_RETURN(node.id, ParseU64(cols[0], "node id"));
    if (!seen_ids.insert(node.id).second) {
      return agl::Status::InvalidArgument("duplicate node id " + cols[0]);
    }
    if (!cols[1].empty()) {
      AGL_ASSIGN_OR_RETURN(node.label, ParseI64(cols[1], "label"));
    }
    if (cols[2].empty()) {
      return agl::Status::InvalidArgument(
          "node row has an empty feature column");
    }
    AGL_ASSIGN_OR_RETURN(node.features,
                         ParseFloatList(cols[2], "node feature"));
    if (cols.size() == 4) {
      AGL_ASSIGN_OR_RETURN(node.multilabel,
                           ParseFloatList(cols[3], "multilabel"));
    }
    nodes.push_back(std::move(node));
    return agl::Status::OK();
  }));
  return nodes;
}

agl::Result<std::vector<EdgeRecord>> ParseEdgeCsv(const std::string& text) {
  std::vector<EdgeRecord> edges;
  AGL_RETURN_IF_ERROR(ForEachLine(text, [&](const std::string& line) {
    std::vector<std::string> cols = Split(line, ',');
    DropTrailingEmptyColumns(&cols, 2);
    if (cols.size() < 2 || cols.size() > 4) {
      return agl::Status::InvalidArgument(
          "edge row needs 2-4 columns (src,dst[,weight[,features]])");
    }
    EdgeRecord edge;
    AGL_ASSIGN_OR_RETURN(edge.src, ParseU64(cols[0], "src id"));
    AGL_ASSIGN_OR_RETURN(edge.dst, ParseU64(cols[1], "dst id"));
    if (cols.size() >= 3 && !cols[2].empty()) {
      AGL_ASSIGN_OR_RETURN(edge.weight, ParseF32(cols[2], "weight"));
    }
    if (cols.size() == 4) {
      AGL_ASSIGN_OR_RETURN(edge.features,
                           ParseFloatList(cols[3], "edge feature"));
    }
    edges.push_back(std::move(edge));
    return agl::Status::OK();
  }));
  return edges;
}

agl::Result<std::vector<NodeRecord>> ReadNodeCsv(const std::string& path) {
  AGL_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseNodeCsv(text);
}

agl::Result<std::vector<EdgeRecord>> ReadEdgeCsv(const std::string& path) {
  AGL_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseEdgeCsv(text);
}

std::string WriteNodeCsv(const std::vector<NodeRecord>& nodes) {
  std::ostringstream os;
  os << "# id,label,features[,multilabel]\n";
  for (const NodeRecord& n : nodes) {
    os << n.id << ',' << n.label << ',' << JoinFloats(n.features);
    if (!n.multilabel.empty()) os << ',' << JoinFloats(n.multilabel);
    os << '\n';
  }
  return os.str();
}

std::string WriteEdgeCsv(const std::vector<EdgeRecord>& edges) {
  std::ostringstream os;
  os << "# src,dst,weight[,features]\n";
  for (const EdgeRecord& e : edges) {
    os << e.src << ',' << e.dst << ',' << e.weight;
    if (!e.features.empty()) os << ',' << JoinFloats(e.features);
    os << '\n';
  }
  return os.str();
}

namespace {
agl::Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return agl::Status::IoError("cannot write " + path);
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (n != content.size()) return agl::Status::IoError("short write " + path);
  return agl::Status::OK();
}
}  // namespace

agl::Status WriteNodeCsvFile(const std::string& path,
                             const std::vector<NodeRecord>& nodes) {
  return WriteFile(path, WriteNodeCsv(nodes));
}

agl::Status WriteEdgeCsvFile(const std::string& path,
                             const std::vector<EdgeRecord>& edges) {
  return WriteFile(path, WriteEdgeCsv(edges));
}

}  // namespace agl::flat
