#include "flat/exchange.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "io/codec.h"

namespace agl::flat {

void ExchangeStats::Accumulate(const ExchangeStats& other) {
  publishes += other.publishes;
  collects += other.collects;
  allgathers += other.allgathers;
  records_published += other.records_published;
  records_collected += other.records_collected;
  bytes_published += other.bytes_published;
  bytes_collected += other.bytes_collected;
  wait_seconds += other.wait_seconds;
}

std::string SerializeExchangeRecords(
    const std::vector<mr::KeyValue>& records) {
  io::BufferWriter w;
  w.PutVarint64(records.size());
  for (const mr::KeyValue& kv : records) {
    w.PutString(kv.key);
    w.PutString(kv.value);
  }
  return w.Release();
}

agl::Result<std::vector<mr::KeyValue>> ParseExchangeRecords(
    const std::string& bytes) {
  io::BufferReader r(bytes);
  uint64_t n = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&n));
  std::vector<mr::KeyValue> records;
  records.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    mr::KeyValue kv;
    AGL_RETURN_IF_ERROR(r.GetString(&kv.key));
    AGL_RETURN_IF_ERROR(r.GetString(&kv.value));
    records.push_back(std::move(kv));
  }
  if (!r.AtEnd()) {
    return agl::Status::Corruption("exchange bucket has trailing bytes");
  }
  return records;
}

// --- InMemoryExchange ------------------------------------------------------

InMemoryExchange::InMemoryExchange(ShardPlan plan) : plan_(plan) {}

agl::Status InMemoryExchange::Publish(int round, int src_shard,
                                      std::vector<mr::KeyValue> records) {
  const int s = plan_.num_shards();
  common::MutexLock lock(&mu_);
  AGL_RETURN_IF_ERROR(aborted_);
  Round& r = rounds_[round];
  if (r.buckets.empty()) {
    r.buckets.assign(s, std::vector<std::vector<mr::KeyValue>>(s));
    r.published.assign(s, false);
  }
  if (r.published[src_shard]) {
    return agl::Status::FailedPrecondition(
        "shard " + std::to_string(src_shard) + " already published round " +
        std::to_string(round));
  }
  stats_.publishes++;
  stats_.records_published += static_cast<int64_t>(records.size());
  for (mr::KeyValue& kv : records) {
    const int dst = plan_.HomeShard(kv.key);
    r.buckets[src_shard][dst].push_back(std::move(kv));
  }
  r.published[src_shard] = true;
  r.num_published++;
  cv_.SignalAll();
  return agl::Status::OK();
}

agl::Result<std::vector<mr::KeyValue>> InMemoryExchange::Collect(
    int round, int dst_shard) {
  Stopwatch watch;
  common::MutexLock lock(&mu_);
  Round& r = rounds_[round];
  const int s = plan_.num_shards();
  if (r.buckets.empty()) {
    r.buckets.assign(s, std::vector<std::vector<mr::KeyValue>>(s));
    r.published.assign(s, false);
  }
  while (r.num_published < s && aborted_.ok()) cv_.Wait(&mu_);
  AGL_RETURN_IF_ERROR(aborted_);
  std::vector<mr::KeyValue> out;
  std::size_t total = 0;
  for (int src = 0; src < s; ++src) total += r.buckets[src][dst_shard].size();
  out.reserve(total);
  for (int src = 0; src < s; ++src) {
    for (mr::KeyValue& kv : r.buckets[src][dst_shard]) {
      out.push_back(std::move(kv));
    }
    r.buckets[src][dst_shard].clear();
  }
  stats_.collects++;
  stats_.records_collected += static_cast<int64_t>(out.size());
  stats_.wait_seconds += watch.Seconds();
  return out;
}

agl::Result<std::vector<std::string>> InMemoryExchange::AllGather(
    const std::string& tag, int shard, std::string payload) {
  Stopwatch watch;
  const int s = plan_.num_shards();
  common::MutexLock lock(&mu_);
  Gather& g = gathers_[tag];
  if (g.payloads.empty()) {
    g.payloads.assign(s, "");
    g.present.assign(s, false);
  }
  if (!g.present[shard]) {
    g.payloads[shard] = std::move(payload);
    g.present[shard] = true;
    g.num_present++;
    cv_.SignalAll();
  }
  while (g.num_present < s && aborted_.ok()) cv_.Wait(&mu_);
  AGL_RETURN_IF_ERROR(aborted_);
  stats_.allgathers++;
  stats_.wait_seconds += watch.Seconds();
  return g.payloads;
}

void InMemoryExchange::Abort(agl::Status status) {
  common::MutexLock lock(&mu_);
  if (!aborted_.ok() || status.ok()) return;
  aborted_ = std::move(status);
  cv_.SignalAll();
}

ExchangeStats InMemoryExchange::stats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

// --- DfsExchange -----------------------------------------------------------

namespace {

std::string BucketName(const std::string& prefix, int round, int src,
                       int dst) {
  return prefix + ".x.r" + std::to_string(round) + ".f" +
         std::to_string(src) + ".t" + std::to_string(dst);
}

std::string GatherName(const std::string& prefix, const std::string& tag,
                       int shard) {
  return prefix + ".ag." + tag + ".s" + std::to_string(shard);
}

}  // namespace

DfsExchange::DfsExchange(mr::LocalDfs* dfs, std::string prefix,
                         ShardPlan plan)
    : DfsExchange(dfs, std::move(prefix), plan, Options()) {}

DfsExchange::DfsExchange(mr::LocalDfs* dfs, std::string prefix,
                         ShardPlan plan, Options options)
    : dfs_(dfs), prefix_(std::move(prefix)), plan_(plan), options_(options) {}

agl::Status DfsExchange::Publish(int round, int src_shard,
                                 std::vector<mr::KeyValue> records) {
  {
    common::MutexLock lock(&mu_);
    AGL_RETURN_IF_ERROR(aborted_);
  }
  const int s = plan_.num_shards();
  std::vector<std::vector<mr::KeyValue>> by_dst(s);
  for (mr::KeyValue& kv : records) {
    by_dst[plan_.HomeShard(kv.key)].push_back(std::move(kv));
  }
  int64_t bytes = 0;
  // Every (src, dst) bucket is written — an empty one included — so a
  // collector can distinguish "src published nothing for me" from "src
  // has not published yet".
  for (int dst = 0; dst < s; ++dst) {
    const std::string payload = SerializeExchangeRecords(by_dst[dst]);
    bytes += static_cast<int64_t>(payload.size());
    AGL_RETURN_IF_ERROR(dfs_->WriteDataset(
        BucketName(prefix_, round, src_shard, dst), {payload}, 1));
  }
  common::MutexLock lock(&mu_);
  stats_.publishes++;
  stats_.records_published += static_cast<int64_t>(records.size());
  stats_.bytes_published += bytes;
  return agl::Status::OK();
}

agl::Result<std::string> DfsExchange::AwaitAndRead(
    const std::string& dataset) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.timeout_ms);
  while (!dfs_->DatasetExists(dataset)) {
    {
      common::MutexLock lock(&mu_);
      AGL_RETURN_IF_ERROR(aborted_);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return agl::Status::Unavailable("exchange dataset '" + dataset +
                                      "' never appeared (dead shard?)");
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
  }
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> recs,
                       dfs_->ReadDataset(dataset));
  if (recs.size() != 1) {
    return agl::Status::Corruption("exchange dataset '" + dataset +
                                   "' must hold exactly 1 record");
  }
  return std::move(recs[0]);
}

agl::Result<std::vector<mr::KeyValue>> DfsExchange::Collect(int round,
                                                            int dst_shard) {
  Stopwatch watch;
  const int s = plan_.num_shards();
  std::vector<mr::KeyValue> out;
  int64_t bytes = 0;
  for (int src = 0; src < s; ++src) {
    AGL_ASSIGN_OR_RETURN(
        std::string payload,
        AwaitAndRead(BucketName(prefix_, round, src, dst_shard)));
    bytes += static_cast<int64_t>(payload.size());
    AGL_ASSIGN_OR_RETURN(std::vector<mr::KeyValue> recs,
                         ParseExchangeRecords(payload));
    for (mr::KeyValue& kv : recs) out.push_back(std::move(kv));
  }
  common::MutexLock lock(&mu_);
  stats_.collects++;
  stats_.records_collected += static_cast<int64_t>(out.size());
  stats_.bytes_collected += bytes;
  stats_.wait_seconds += watch.Seconds();
  return out;
}

agl::Result<std::vector<std::string>> DfsExchange::AllGather(
    const std::string& tag, int shard, std::string payload) {
  Stopwatch watch;
  AGL_RETURN_IF_ERROR(dfs_->WriteDataset(GatherName(prefix_, tag, shard),
                                         {std::move(payload)}, 1));
  const int s = plan_.num_shards();
  std::vector<std::string> payloads(s);
  for (int i = 0; i < s; ++i) {
    AGL_ASSIGN_OR_RETURN(payloads[i],
                         AwaitAndRead(GatherName(prefix_, tag, i)));
  }
  common::MutexLock lock(&mu_);
  stats_.allgathers++;
  stats_.wait_seconds += watch.Seconds();
  return payloads;
}

void DfsExchange::Abort(agl::Status status) {
  common::MutexLock lock(&mu_);
  if (!aborted_.ok() || status.ok()) return;
  aborted_ = std::move(status);
}

ExchangeStats DfsExchange::stats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

agl::Status DfsExchange::CleanupPrefix(mr::LocalDfs* dfs,
                                       const std::string& prefix) {
  for (const std::string& name : dfs->ListDatasets()) {
    if (name.rfind(prefix + ".", 0) == 0) {
      AGL_RETURN_IF_ERROR(dfs->DropDataset(name));
    }
  }
  return agl::Status::OK();
}

}  // namespace agl::flat
