#include "flat/tables.h"

#include "io/codec.h"

namespace agl::flat {

std::string NodeRecord::Serialize() const {
  io::BufferWriter w;
  w.PutVarint64(id);
  w.PutFloatArray(features);
  w.PutVarint64Signed(label);
  w.PutFloatArray(multilabel);
  return w.Release();
}

agl::Result<NodeRecord> NodeRecord::Parse(const std::string& bytes) {
  io::BufferReader r(bytes);
  NodeRecord rec;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&rec.id));
  AGL_RETURN_IF_ERROR(r.GetFloatArray(&rec.features));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&rec.label));
  AGL_RETURN_IF_ERROR(r.GetFloatArray(&rec.multilabel));
  return rec;
}

std::string EdgeRecord::Serialize() const {
  io::BufferWriter w;
  w.PutVarint64(src);
  w.PutVarint64(dst);
  w.PutFloat(weight);
  w.PutFloatArray(features);
  return w.Release();
}

agl::Result<EdgeRecord> EdgeRecord::Parse(const std::string& bytes) {
  io::BufferReader r(bytes);
  EdgeRecord rec;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&rec.src));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&rec.dst));
  AGL_RETURN_IF_ERROR(r.GetFloat(&rec.weight));
  AGL_RETURN_IF_ERROR(r.GetFloatArray(&rec.features));
  return rec;
}

}  // namespace agl::flat
