// Incremental GraphFlat maintenance under a mutation stream.
//
// A flattened dataset stores, per target t, exactly the union of the
// round-0 infos of every node within K in-hops of t. A mutation therefore
// dirties target t iff one of its K-hop in-neighborhood round-0 infos
// changed — i.e. iff a mutated node's *forward* (out-edge) K-hop closure
// reaches t. ReflattenDirty re-runs the GraphFlat pipeline only on the
// union of the dirty targets' K-hop in-neighborhoods (every <=K in-path of
// a dirty target survives the pruning, so the re-flattened features are
// byte-identical to a cold full run over the mutated graph — the GraphLab
// DynPageRank idea of re-activating only affected vertices, applied to
// feature generation) and republishes the dataset through the same Storing
// step as RunGraphFlat.
//
// Byte-identity requires a deterministic pipeline: sampling must be off,
// and the hub re-index pass (which force-samples above `hub_threshold`)
// must not engage for any key. Both are validated up front.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "flat/graphflat.h"
#include "flat/tables.h"
#include "mr/local_dfs.h"

namespace agl::flat {

/// Nodes reachable from any seed within `hops` hops along out-edges
/// (seeds included, at distance 0). This is the "which stored targets can
/// a change at these nodes dirty" closure: the caller seeds it with the
/// mutated nodes on the pre- and post-mutation edge tables and unions the
/// results. Returned sorted and deduplicated.
std::vector<NodeId> ForwardClosure(const std::vector<EdgeRecord>& edges,
                                   const std::vector<NodeId>& seeds,
                                   int hops);

struct ReflattenStats {
  int64_t candidate_targets = 0;  // dirty candidates passed in
  int64_t dirty_targets = 0;      // candidates that are stored targets
  int64_t reused_payloads = 0;    // stored features carried over untouched
  int64_t pruned_nodes = 0;       // node rows the re-run actually processed
  int64_t pruned_edges = 0;
  double elapsed_seconds = 0;
};

/// Recomputes the flattened features of the targets in `dirty` (candidates
/// outside the stored target set are ignored) against the *post-mutation*
/// `nodes`/`edges` tables and republishes `dataset` with every other stored
/// payload reused as-is. The republished dataset is byte-identical to a
/// cold `RunGraphFlat` over the same tables.
///
/// Requirements (kFailedPrecondition otherwise): `dataset` exists and
/// stores exactly the current target set, `config.sampler` is
/// Strategy::kNone, and no node's in-degree exceeds `hub_threshold` (when
/// hub handling is enabled) — sampling and hub re-indexing would make the
/// pruned re-run diverge from the cold reference.
agl::Status ReflattenDirty(const GraphFlatConfig& config,
                           const std::vector<NodeRecord>& nodes,
                           const std::vector<EdgeRecord>& edges,
                           const std::vector<NodeId>& dirty,
                           mr::LocalDfs* dfs, const std::string& dataset,
                           ReflattenStats* stats = nullptr);

}  // namespace agl::flat
