#include "flat/shard.h"

#include <algorithm>
#include <future>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace agl::flat {
namespace {

// Decorrelates shard assignment from the reduce-task partitioner, which
// hashes the same keys with unsalted Fnv1aHash.
constexpr uint64_t kShardSalt = 0x5ca1ab1e5eedULL;

}  // namespace

ShardPlan::ShardPlan(int num_shards)
    : num_shards_(std::max(1, num_shards)) {}

int ShardPlan::HomeShard(const std::string& key) const {
  if (num_shards_ == 1) return 0;
  return static_cast<int>(DeriveSeed(kShardSalt, Fnv1aHash(key)) %
                          static_cast<uint64_t>(num_shards_));
}

int ShardPlan::HomeShardOf(NodeId id) const {
  return HomeShard(std::to_string(id));
}

ShardedTables ShardRouter::PartitionTables(
    const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges) const {
  const int s = plan_.num_shards();
  ShardedTables out;
  out.nodes.resize(s);
  out.edges.resize(s);
  for (const NodeRecord& n : nodes) {
    out.nodes[plan_.HomeShardOf(n.id)].push_back(n);
  }
  for (const EdgeRecord& e : edges) {
    const int src_shard = plan_.HomeShardOf(e.src);
    const int dst_shard = plan_.HomeShardOf(e.dst);
    out.edges[src_shard].push_back(e);
    if (dst_shard != src_shard) out.edges[dst_shard].push_back(e);
  }
  return out;
}

void ShardRouter::FilterToShard(int shard,
                                std::vector<mr::KeyValue>* records) const {
  std::erase_if(*records, [this, shard](const mr::KeyValue& kv) {
    return plan_.HomeShard(kv.key) != shard;
  });
}

std::vector<std::vector<mr::KeyValue>> ShardRouter::Exchange(
    std::vector<std::vector<mr::KeyValue>> per_shard) const {
  std::vector<std::vector<mr::KeyValue>> routed(plan_.num_shards());
  for (std::vector<mr::KeyValue>& records : per_shard) {
    for (mr::KeyValue& kv : records) {
      routed[plan_.HomeShard(kv.key)].push_back(std::move(kv));
    }
    records.clear();
  }
  return routed;
}

agl::Status ParallelOverShards(int num_shards,
                               const std::function<agl::Status(int)>& fn) {
  if (num_shards <= 1) return fn(0);
  std::vector<agl::Status> status(num_shards);
  ThreadPool pool(static_cast<std::size_t>(num_shards));
  std::vector<std::future<void>> futs;
  futs.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    futs.push_back(pool.Submit([&status, &fn, s] { status[s] = fn(s); }));
  }
  for (auto& f : futs) f.get();
  for (const agl::Status& st : status) {
    if (!st.ok()) return st;
  }
  return agl::Status::OK();
}

}  // namespace agl::flat
