// GraphFlat (§3.2): the distributed MapReduce generator of k-hop
// neighborhoods. Usage mirrors Figure 6:
//
//   GraphFlat -n node_table -e edge_table -h hops -s sampling_strategy
//
// The pipeline:
//   Map    — runs once; per node emits self info keyed by the node, per
//            edge emits in-edge info keyed by the destination and out-edge
//            info keyed by the source.
//   Reduce — runs k+1 times. Round 0 folds the in-edge structure into each
//            node's self info (this joins neighbor ids/edge features; the
//            paper's input tables arrive pre-joined, ours do the join as
//            the first round). Rounds 1..k merge the neighbor states
//            propagated along out-edges, growing the self info by one hop
//            per round, then propagate the merged state again.
//   Store  — final self infos for the requested targets are flattened to
//            GraphFeature byte strings on the LocalDfs.
//
// Skew handling (§3.2.2): before each Reduce round, records whose shuffle
// key exceeds `hub_threshold` are re-indexed with random suffixes, partially
// sampled+merged per suffix shard (sound because state merge is a set
// union), and inverted back to the original key.
//
// Sharding (`num_shards` > 1): the tables are hash-partitioned across S
// logical shards, one job runs per shard with boundary states exchanged
// between rounds, and a merge stage set-unions per-node states before
// Store. Output is byte-identical for every shard count; see shard.h.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "flat/exchange.h"
#include "flat/tables.h"
#include "mr/local_dfs.h"
#include "mr/mapreduce.h"
#include "sampling/sampler.h"
#include "subgraph/graph_feature.h"

namespace agl::flat {

struct GraphFlatConfig {
  /// Neighborhood radius k (the GNN depth it must support).
  int hops = 2;
  /// Sampling applied to each node's in-edge neighbor set every round.
  sampling::SamplerConfig sampler;
  /// In-degree above which a shuffle key is re-indexed across suffix shards
  /// ("like 10k" in the paper; tests use small values).
  int64_t hub_threshold = 10000;
  /// Number of suffix shards a hub key is split into.
  int reindex_fanout = 8;
  /// Which nodes receive a GraphFeature.
  enum class Targets { kLabeledNodes, kAllNodes };
  Targets targets = Targets::kLabeledNodes;
  /// Part files written to the DFS dataset (per shard when sharded).
  int output_parts = 4;
  /// Logical MapReduce shards. The tables are hash-partitioned (nodes to
  /// their home shard, edges to both endpoint shards so the round-0 join
  /// stays local), one GraphFlat job runs per shard with boundary states
  /// exchanged between rounds, and a merge stage set-unions the states of
  /// nodes touched by multiple shards before the Storing step. Output is
  /// invariant to this value; see src/flat/shard.h.
  int num_shards = 1;
  mr::JobConfig job;

  /// Structural validation, called up front by every `agl::Run` facade
  /// entry point (and usable directly).
  agl::Status Validate() const;
};

struct GraphFlatStats {
  int64_t num_features = 0;
  int64_t total_nodes = 0;   // sum over features
  int64_t total_edges = 0;
  int64_t max_nodes = 0;     // largest single neighborhood
  double elapsed_seconds = 0;
  mr::JobStats job_stats;
  /// Boundary-exchange traffic (sharded runs only; zeros otherwise).
  ExchangeStats exchange;
};

/// Runs the full pipeline and writes the flattened GraphFeatures to
/// `dfs`/`dataset`. Feature dims are inferred from the first node/edge.
agl::Result<GraphFlatStats> RunGraphFlat(const GraphFlatConfig& config,
                                         const std::vector<NodeRecord>& nodes,
                                         const std::vector<EdgeRecord>& edges,
                                         mr::LocalDfs* dfs,
                                         const std::string& dataset);

/// In-memory variant used by tests and small benchmarks: returns the
/// GraphFeatures directly instead of writing to the DFS.
agl::Result<std::vector<subgraph::GraphFeature>> RunGraphFlatInMemory(
    const GraphFlatConfig& config, const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges, GraphFlatStats* stats = nullptr);

/// Exposed for tests: applies the re-index/sample/invert pass to one
/// round's shuffle input. Records with key multiplicity above
/// `hub_threshold` are suffixed, each suffix shard is sampled down, and the
/// original keys restored.
agl::Result<std::vector<mr::KeyValue>> ReindexAndSampleHubKeys(
    const GraphFlatConfig& config, std::vector<mr::KeyValue> records,
    int round);

/// Publishes id-sorted `(target id, serialized GraphFeature)` payloads as
/// `dataset` exactly the way RunGraphFlat's Storing step does — round-robin
/// over `output_parts` part files, or per-home-shard staging datasets
/// unified under one name when `num_shards` > 1. Shared by RunGraphFlat and
/// the incremental re-flatten path so both publish byte-identical datasets
/// for the same payload set.
agl::Status StoreFeaturePayloads(
    const GraphFlatConfig& config,
    std::vector<std::pair<NodeId, std::string>> finals, mr::LocalDfs* dfs,
    const std::string& dataset);

/// One shard's complete sharded-pipeline run against an Exchange: map over
/// the shard's table slice, the k+1 reduce rounds with Publish/Collect of
/// boundary states between them, then the shard-local merge + Storing
/// step. Returns the shard's final 'F'-tagged GraphFeature records. This
/// is the unit the in-process path runs on S threads over an
/// InMemoryExchange and the multi-process driver runs in S shard worker
/// processes over a DfsExchange — byte-identical either way, because each
/// reduce group sees the same value multiset and the engine delivers
/// values in canonical order.
agl::Result<std::vector<mr::KeyValue>> RunFlatShard(
    const GraphFlatConfig& config, int shard,
    const std::vector<NodeRecord>& shard_nodes,
    const std::vector<EdgeRecord>& shard_edges, int64_t node_feature_dim,
    int64_t edge_feature_dim, Exchange* exchange,
    mr::JobStats* stats = nullptr);

/// Exposed for tests: the shard-merge stage over one shard's last-round
/// state records ('S'-tagged SubgraphState bytes keyed by node id). States
/// sharing a key are set-unioned — the reconcile-before-Store contract
/// that looser routing (e.g. at-least-once delivery) relies on — and the
/// Storing step emits the 'F'-tagged GraphFeature records for targets.
agl::Result<std::vector<mr::KeyValue>> MergeShardStates(
    const GraphFlatConfig& config, int64_t node_feature_dim,
    int64_t edge_feature_dim, std::vector<mr::KeyValue> records,
    mr::JobStats* stats = nullptr);

}  // namespace agl::flat
