#include "flat/state.h"

#include <algorithm>

#include "io/codec.h"

namespace agl::flat {

void SubgraphState::AddNode(const NodeRecord& node) {
  nodes_.emplace(node.id, node);
}

void SubgraphState::AddEdge(const EdgeRecord& edge) {
  edges_.emplace(std::make_pair(edge.src, edge.dst), edge);
}

void SubgraphState::Merge(const SubgraphState& other) {
  for (const auto& [id, node] : other.nodes_) nodes_.emplace(id, node);
  for (const auto& [key, edge] : other.edges_) edges_.emplace(key, edge);
}

float SubgraphState::EdgeWeightOr(NodeId src, NodeId dst,
                                  float fallback) const {
  auto it = edges_.find({src, dst});
  return it == edges_.end() ? fallback : it->second.weight;
}

std::string SubgraphState::Serialize() const {
  io::BufferWriter w;
  w.PutVarint64(root_);
  w.PutVarint64(nodes_.size());
  for (const auto& [id, node] : nodes_) w.PutString(node.Serialize());
  w.PutVarint64(edges_.size());
  for (const auto& [key, edge] : edges_) w.PutString(edge.Serialize());
  return w.Release();
}

agl::Result<SubgraphState> SubgraphState::Parse(const std::string& bytes) {
  io::BufferReader r(bytes);
  SubgraphState state;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&state.root_));
  uint64_t num_nodes;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&num_nodes));
  std::string buf;
  for (uint64_t i = 0; i < num_nodes; ++i) {
    AGL_RETURN_IF_ERROR(r.GetString(&buf));
    AGL_ASSIGN_OR_RETURN(NodeRecord node, NodeRecord::Parse(buf));
    state.nodes_.emplace(node.id, std::move(node));
  }
  uint64_t num_edges;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&num_edges));
  for (uint64_t i = 0; i < num_edges; ++i) {
    AGL_RETURN_IF_ERROR(r.GetString(&buf));
    AGL_ASSIGN_OR_RETURN(EdgeRecord edge, EdgeRecord::Parse(buf));
    state.edges_.emplace(std::make_pair(edge.src, edge.dst), std::move(edge));
  }
  return state;
}

agl::Result<subgraph::GraphFeature> SubgraphState::ToGraphFeature(
    int64_t node_feature_dim, int64_t edge_feature_dim) const {
  auto root_it = nodes_.find(root_);
  if (root_it == nodes_.end()) {
    return agl::Status::Internal("state missing its root node " +
                                 std::to_string(root_));
  }
  subgraph::GraphFeature gf;
  gf.target_id = root_;
  gf.label = root_it->second.label;
  gf.multilabel = root_it->second.multilabel;

  // Local index assignment: root first, remaining nodes in id order.
  std::map<NodeId, int64_t> local_of;
  local_of.emplace(root_, 0);
  gf.node_ids.push_back(root_);
  for (const auto& [id, node] : nodes_) {
    if (id == root_) continue;
    local_of.emplace(id, static_cast<int64_t>(gf.node_ids.size()));
    gf.node_ids.push_back(id);
  }
  gf.target_index = 0;

  gf.node_features = tensor::Tensor(
      static_cast<int64_t>(gf.node_ids.size()), node_feature_dim);
  for (std::size_t i = 0; i < gf.node_ids.size(); ++i) {
    const NodeRecord& node = nodes_.at(gf.node_ids[i]);
    if (static_cast<int64_t>(node.features.size()) != node_feature_dim) {
      return agl::Status::InvalidArgument(
          "node " + std::to_string(node.id) + " feature width " +
          std::to_string(node.features.size()) + " != expected " +
          std::to_string(node_feature_dim));
    }
    std::copy(node.features.begin(), node.features.end(),
              gf.node_features.row(static_cast<int64_t>(i)));
  }

  // Edges with both endpoints materialized; frontier edges whose source
  // features never arrived are structural noise and get dropped.
  std::vector<const EdgeRecord*> kept;
  for (const auto& [key, edge] : edges_) {
    if (local_of.count(edge.src) > 0 && local_of.count(edge.dst) > 0) {
      kept.push_back(&edge);
    }
  }
  std::sort(kept.begin(), kept.end(),
            [&](const EdgeRecord* a, const EdgeRecord* b) {
              const int64_t da = local_of.at(a->dst), db = local_of.at(b->dst);
              if (da != db) return da < db;
              return local_of.at(a->src) < local_of.at(b->src);
            });
  gf.edge_features = tensor::Tensor(
      edge_feature_dim > 0 ? static_cast<int64_t>(kept.size()) : 0,
      edge_feature_dim);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const EdgeRecord& e = *kept[i];
    gf.edges.push_back({local_of.at(e.src), local_of.at(e.dst), e.weight});
    if (edge_feature_dim > 0 &&
        static_cast<int64_t>(e.features.size()) == edge_feature_dim) {
      std::copy(e.features.begin(), e.features.end(),
                gf.edge_features.row(static_cast<int64_t>(i)));
    }
  }
  return gf;
}

}  // namespace agl::flat
