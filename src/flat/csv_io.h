// CSV readers/writers for the node and edge tables — the concrete file
// format behind Figure 6's `GraphFlat -n node_table -e edge_table`.
//
// Node table row:   id,label,f0;f1;...;fn[,m0;m1;...;mk]
//   - label -1 (or empty) means unlabeled
//   - the optional 4th column holds multi-label targets
// Edge table row:   src,dst,weight,f0;f1;...;fm
//   - trailing columns optional (weight defaults to 1, features to none)
//
// Feature vectors use ';' as the inner separator so the files stay plain
// single-char-delimited CSV.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "flat/tables.h"

namespace agl::flat {

/// Parses a node table from CSV text (one record per line, '#' comments
/// and blank lines skipped; CRLF endings and trailing empty optional
/// columns tolerated). Malformed rows — non-numeric or duplicate ids, bad
/// or empty feature lists, out-of-range values — are kInvalidArgument
/// errors carrying the line number, never silent mis-parses.
agl::Result<std::vector<NodeRecord>> ParseNodeCsv(const std::string& text);

/// Parses an edge table from CSV text.
agl::Result<std::vector<EdgeRecord>> ParseEdgeCsv(const std::string& text);

/// Reads and parses a node table file.
agl::Result<std::vector<NodeRecord>> ReadNodeCsv(const std::string& path);

/// Reads and parses an edge table file.
agl::Result<std::vector<EdgeRecord>> ReadEdgeCsv(const std::string& path);

/// Serializes tables back to CSV (round-trips with the parsers).
std::string WriteNodeCsv(const std::vector<NodeRecord>& nodes);
std::string WriteEdgeCsv(const std::vector<EdgeRecord>& edges);

/// Writes a table file; parent directory must exist.
agl::Status WriteNodeCsvFile(const std::string& path,
                             const std::vector<NodeRecord>& nodes);
agl::Status WriteEdgeCsvFile(const std::string& path,
                             const std::vector<EdgeRecord>& edges);

}  // namespace agl::flat
