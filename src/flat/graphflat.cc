#include "flat/graphflat.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/timer.h"
#include "flat/shard.h"
#include "flat/state.h"

namespace agl::flat {
namespace {

// Value tags for the records flowing through the pipeline.
constexpr char kTagNode = 'N';      // NodeRecord (map output, self info)
constexpr char kTagInEdge = 'I';    // EdgeRecord keyed by dst
constexpr char kTagOutEdge = 'O';   // EdgeRecord keyed by src
constexpr char kTagState = 'S';     // SubgraphState (self info, rounds >= 1)
constexpr char kTagNeighbor = 'P';  // propagated neighbor SubgraphState
constexpr char kTagFinal = 'F';     // flattened GraphFeature bytes

std::string Tagged(char tag, const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 1);
  out.push_back(tag);
  out.append(payload);
  return out;
}

// --- Map phase ------------------------------------------------------------

/// Parses raw table rows and emits the three kinds of information of
/// §3.2.1: self, in-edge, out-edge.
class FlatMapper : public mr::Mapper {
 public:
  agl::Status Map(const mr::KeyValue& input, mr::Emitter* out) override {
    if (input.value.empty()) {
      return agl::Status::InvalidArgument("empty input record");
    }
    const char tag = input.value[0];
    const std::string payload = input.value.substr(1);
    if (tag == kTagNode) {
      AGL_ASSIGN_OR_RETURN(NodeRecord node, NodeRecord::Parse(payload));
      out->Emit(std::to_string(node.id), Tagged(kTagNode, payload));
      return agl::Status::OK();
    }
    if (tag == kTagInEdge) {  // raw edge row
      AGL_ASSIGN_OR_RETURN(EdgeRecord edge, EdgeRecord::Parse(payload));
      out->Emit(std::to_string(edge.dst), Tagged(kTagInEdge, payload));
      out->Emit(std::to_string(edge.src), Tagged(kTagOutEdge, payload));
      return agl::Status::OK();
    }
    return agl::Status::InvalidArgument("unknown input tag");
  }
};

// --- Reduce rounds ----------------------------------------------------------

struct RoundContext {
  int round = 0;       // 0..hops
  int last_round = 0;  // == hops
  sampling::SamplerConfig sampler_config;
  uint64_t seed = 0;
  GraphFlatConfig::Targets targets = GraphFlatConfig::Targets::kLabeledNodes;
  int64_t node_feature_dim = 0;
  int64_t edge_feature_dim = 0;
  /// Sharded mode: the last round emits the merged SubgraphState instead of
  /// flattening, deferring the Storing step to the shard-merge stage.
  bool emit_state_at_last = false;
};

/// Does `self` receive a GraphFeature under the configured target policy?
bool IsTarget(const RoundContext& ctx, const NodeRecord& self) {
  return ctx.targets == GraphFlatConfig::Targets::kAllNodes ||
         self.label >= 0 || !self.multilabel.empty();
}

/// The Storing step (§3.2.1): flattens `state` to a GraphFeature record iff
/// the node is a requested target. Shared by the single-shard last round
/// and the shard-merge reducer so both paths emit identical bytes.
agl::Status EmitFinalIfTarget(const RoundContext& ctx, const std::string& key,
                              NodeId self_id, const SubgraphState& state,
                              mr::Emitter* out) {
  if (!state.HasNode(self_id)) return agl::Status::OK();
  if (IsTarget(ctx, state.nodes().at(self_id))) {
    AGL_ASSIGN_OR_RETURN(
        subgraph::GraphFeature gf,
        state.ToGraphFeature(ctx.node_feature_dim, ctx.edge_feature_dim));
    out->Emit(key, Tagged(kTagFinal, gf.Serialize()));
  }
  return agl::Status::OK();
}

/// One merging/propagation round (Figure 2). See header for the schedule.
class FlatReducer : public mr::Reducer {
 public:
  explicit FlatReducer(const RoundContext& ctx)
      : ctx_(ctx), sampler_(sampling::MakeSampler(ctx.sampler_config)) {}

  agl::Status Reduce(const std::string& key,
                     const std::vector<std::string>& values,
                     mr::Emitter* out) override {
    SubgraphState state;
    bool have_state = false;
    std::vector<EdgeRecord> in_edges;
    std::vector<std::string> out_edges;  // retained serialized payloads
    std::vector<SubgraphState> neighbor_states;

    for (const std::string& v : values) {
      if (v.empty()) return agl::Status::Corruption("empty reduce value");
      const char tag = v[0];
      const std::string payload = v.substr(1);
      switch (tag) {
        case kTagNode: {
          AGL_ASSIGN_OR_RETURN(NodeRecord node, NodeRecord::Parse(payload));
          if (!have_state) {
            state = SubgraphState(node.id);
            have_state = true;
          }
          state.AddNode(node);
          break;
        }
        case kTagState: {
          AGL_ASSIGN_OR_RETURN(SubgraphState s, SubgraphState::Parse(payload));
          if (have_state) {
            state.Merge(s);
          } else {
            state = std::move(s);
            have_state = true;
          }
          break;
        }
        case kTagInEdge: {
          AGL_ASSIGN_OR_RETURN(EdgeRecord e, EdgeRecord::Parse(payload));
          in_edges.push_back(std::move(e));
          break;
        }
        case kTagOutEdge:
          out_edges.push_back(payload);
          break;
        case kTagNeighbor: {
          AGL_ASSIGN_OR_RETURN(SubgraphState s, SubgraphState::Parse(payload));
          neighbor_states.push_back(std::move(s));
          break;
        }
        default:
          return agl::Status::Corruption("unknown value tag in reduce");
      }
    }

    const NodeId self_id = static_cast<NodeId>(std::stoull(key));
    if (!have_state) {
      // Edge endpoint without a node-table row: keep a featureless state so
      // out-edges still propagate structure.
      state = SubgraphState(self_id);
    }

    // Deterministic per (key, round): retried task attempts sample
    // identically.
    Rng rng(DeriveSeed(ctx_.seed, Fnv1aHash(key) * 31 +
                                      static_cast<uint64_t>(ctx_.round)));

    // Merge via in-edges (round 0: raw stubs; later rounds: neighbor
    // states filtered to this node's kept in-edges).
    if (!in_edges.empty()) {
      std::vector<float> weights(in_edges.size());
      for (std::size_t i = 0; i < in_edges.size(); ++i) {
        weights[i] = in_edges[i].weight;
      }
      for (std::size_t pos :
           sampler_->Sample({weights.data(), weights.size()}, &rng)) {
        state.AddEdge(in_edges[pos]);
      }
    }
    if (!neighbor_states.empty()) {
      // Respect round-0 sampling: only merge states from sources this node
      // kept as in-edges.
      std::vector<const SubgraphState*> eligible;
      std::vector<float> weights;
      for (const SubgraphState& s : neighbor_states) {
        const float w = state.EdgeWeightOr(s.root(), self_id, -1.f);
        if (w < 0.f) continue;
        eligible.push_back(&s);
        weights.push_back(w);
      }
      for (std::size_t pos :
           sampler_->Sample({weights.data(), weights.size()}, &rng)) {
        state.Merge(*eligible[pos]);
      }
    }

    if (ctx_.round == ctx_.last_round) {
      if (ctx_.emit_state_at_last) {
        // Sharded mode: hand the merged state to the merge stage, which
        // reconciles per-node states (see MergeReducer) and then performs
        // the Storing step. Non-targets can never produce a final record,
        // so their (large) states are not worth serializing and shuffling.
        if (state.HasNode(self_id) &&
            IsTarget(ctx_, state.nodes().at(self_id))) {
          out->Emit(key, Tagged(kTagState, state.Serialize()));
        }
        return agl::Status::OK();
      }
      return EmitFinalIfTarget(ctx_, key, self_id, state, out);
    }

    // Propagation via out-edges: the merged self info becomes the new
    // in-edge information of each destination.
    const std::string state_bytes = state.Serialize();
    for (const std::string& payload : out_edges) {
      AGL_ASSIGN_OR_RETURN(EdgeRecord e, EdgeRecord::Parse(payload));
      out->Emit(std::to_string(e.dst), Tagged(kTagNeighbor, state_bytes));
      out->Emit(key, Tagged(kTagOutEdge, payload));
    }
    out->Emit(key, Tagged(kTagState, state_bytes));
    return agl::Status::OK();
  }

 private:
  RoundContext ctx_;
  std::unique_ptr<sampling::NeighborSampler> sampler_;
};

// --- Re-indexing ------------------------------------------------------------

/// Combiner for re-indexed hub shards: samples the shard's in-edge /
/// neighbor-state records down to the per-shard budget and restores the
/// original shuffle key (inverted indexing). Non-suffixed keys pass
/// through untouched.
class ReindexCombiner : public mr::Reducer {
 public:
  ReindexCombiner(const sampling::SamplerConfig& sampler_config,
                  int64_t per_shard_cap, uint64_t seed)
      : per_shard_cap_(per_shard_cap), seed_(seed) {
    sampling::SamplerConfig capped = sampler_config;
    if (capped.strategy == sampling::Strategy::kNone) {
      capped.strategy = sampling::Strategy::kUniform;
    }
    capped.max_neighbors = per_shard_cap;
    sampler_ = sampling::MakeSampler(capped);
  }

  agl::Status Reduce(const std::string& key,
                     const std::vector<std::string>& values,
                     mr::Emitter* out) override {
    const std::size_t hash_pos = key.find('#');
    if (hash_pos == std::string::npos) {
      for (const std::string& v : values) out->Emit(key, v);
      return agl::Status::OK();
    }
    const std::string original_key = key.substr(0, hash_pos);
    // Split sampleable records from pass-through ones.
    std::vector<const std::string*> sampleable;
    std::vector<float> weights;
    for (const std::string& v : values) {
      if (v.empty()) return agl::Status::Corruption("empty combiner value");
      if (v[0] == kTagInEdge || v[0] == kTagNeighbor) {
        sampleable.push_back(&v);
        float w = 1.f;
        if (v[0] == kTagInEdge) {
          AGL_ASSIGN_OR_RETURN(EdgeRecord e, EdgeRecord::Parse(v.substr(1)));
          w = e.weight;
        }
        weights.push_back(w);
      } else {
        out->Emit(original_key, v);
      }
    }
    Rng rng(DeriveSeed(seed_, Fnv1aHash(key)));
    for (std::size_t pos :
         sampler_->Sample({weights.data(), weights.size()}, &rng)) {
      out->Emit(original_key, *sampleable[pos]);
    }
    return agl::Status::OK();
  }

 private:
  int64_t per_shard_cap_;
  uint64_t seed_;
  std::unique_ptr<sampling::NeighborSampler> sampler_;
};

}  // namespace

agl::Result<std::vector<mr::KeyValue>> ReindexAndSampleHubKeys(
    const GraphFlatConfig& config, std::vector<mr::KeyValue> records,
    int round) {
  if (config.hub_threshold <= 0) return records;
  // Count the sampleable (merge-side) records per key.
  std::unordered_map<std::string, int64_t> in_count;
  for (const mr::KeyValue& kv : records) {
    if (!kv.value.empty() &&
        (kv.value[0] == kTagInEdge || kv.value[0] == kTagNeighbor)) {
      in_count[kv.key]++;
    }
  }
  bool any_hub = false;
  for (const auto& [key, count] : in_count) {
    if (count > config.hub_threshold) {
      any_hub = true;
      break;
    }
  }
  if (!any_hub) return records;

  const int fanout = std::max(1, config.reindex_fanout);
  // Per-shard budget: the sampler cap (or hub threshold) split over shards.
  const int64_t total_cap = config.sampler.max_neighbors > 0
                                ? config.sampler.max_neighbors
                                : config.hub_threshold;
  const int64_t per_shard = std::max<int64_t>(1, total_cap / fanout);

  // Re-indexing: append a random-but-deterministic suffix to hub keys.
  for (mr::KeyValue& kv : records) {
    if (kv.value.empty()) continue;
    const char tag = kv.value[0];
    if (tag != kTagInEdge && tag != kTagNeighbor) continue;
    auto it = in_count.find(kv.key);
    if (it == in_count.end() || it->second <= config.hub_threshold) continue;
    const uint64_t shard =
        DeriveSeed(config.job.seed + static_cast<uint64_t>(round),
                   Fnv1aHash(kv.value)) %
        static_cast<uint64_t>(fanout);
    kv.key += '#';
    kv.key += std::to_string(shard);
  }

  const uint64_t seed = DeriveSeed(config.job.seed, 777 + round);
  return mr::RunReducePhase(
      config.job, std::move(records),
      [&] {
        return std::make_unique<ReindexCombiner>(config.sampler, per_shard,
                                                 seed);
      },
      nullptr);
}

namespace {

/// Shard-merge stage: reconciles per-node states before Store. With the
/// exact home-shard routing above, each node normally arrives with exactly
/// one state; the set-union here (sound and order-free because
/// SubgraphState::Merge is a set union over nodes and edges) is the
/// reconcile-before-Store contract that keeps the Storing step correct
/// under looser routing — e.g. the planned multi-process exchange through
/// the DFS, where at-least-once delivery can duplicate a node's state.
class MergeReducer : public mr::Reducer {
 public:
  explicit MergeReducer(const RoundContext& ctx) : ctx_(ctx) {}

  agl::Status Reduce(const std::string& key,
                     const std::vector<std::string>& values,
                     mr::Emitter* out) override {
    SubgraphState merged;
    bool have = false;
    for (const std::string& v : values) {
      if (v.empty() || v[0] != kTagState) {
        return agl::Status::Corruption("non-state record in shard merge");
      }
      AGL_ASSIGN_OR_RETURN(SubgraphState s, SubgraphState::Parse(v.substr(1)));
      if (have) {
        merged.Merge(s);
      } else {
        merged = std::move(s);
        have = true;
      }
    }
    if (!have) return agl::Status::OK();
    const NodeId self_id = static_cast<NodeId>(std::stoull(key));
    return EmitFinalIfTarget(ctx_, key, self_id, merged, out);
  }

 private:
  RoundContext ctx_;
};

/// Raw-table rows tagged as map input, shared by both pipelines.
std::vector<mr::KeyValue> BuildMapInput(const std::vector<NodeRecord>& nodes,
                                        const std::vector<EdgeRecord>& edges) {
  std::vector<mr::KeyValue> input;
  input.reserve(nodes.size() + edges.size());
  for (const NodeRecord& n : nodes) {
    input.push_back({"", Tagged(kTagNode, n.Serialize())});
  }
  for (const EdgeRecord& e : edges) {
    input.push_back({"", Tagged(kTagInEdge, e.Serialize())});
  }
  return input;
}

RoundContext MakeContext(const GraphFlatConfig& config,
                         const std::vector<NodeRecord>& nodes,
                         const std::vector<EdgeRecord>& edges) {
  RoundContext ctx;
  ctx.last_round = config.hops;
  ctx.sampler_config = config.sampler;
  ctx.seed = config.job.seed;
  ctx.targets = config.targets;
  ctx.node_feature_dim = static_cast<int64_t>(nodes[0].features.size());
  ctx.edge_feature_dim =
      edges.empty() ? 0 : static_cast<int64_t>(edges[0].features.size());
  return ctx;
}

/// The sharded pipeline: one complete GraphFlat shard run (map, rounds,
/// merge) per shard over an in-memory exchange. Produces the same final
/// records as the single-shard pipeline (tests/sharding_test.cpp holds the
/// byte-identity property over shard counts), and the same records the
/// multi-process driver collects from shard worker processes running the
/// identical per-shard unit over a DfsExchange.
agl::Result<std::vector<mr::KeyValue>> RunShardedPipeline(
    const GraphFlatConfig& config, const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges, GraphFlatStats* stats) {
  Stopwatch watch;
  if (nodes.empty()) {
    return agl::Status::InvalidArgument("GraphFlat: empty node table");
  }
  const RoundContext ctx = MakeContext(config, nodes, edges);

  const int num_shards = std::max(1, config.num_shards);
  ShardRouter router{ShardPlan(num_shards)};
  const ShardedTables tables = router.PartitionTables(nodes, edges);

  InMemoryExchange exchange{ShardPlan(num_shards)};
  std::vector<std::vector<mr::KeyValue>> shard_records(num_shards);
  std::vector<mr::JobStats> shard_stats(num_shards);

  // Each shard runs its whole pipeline span concurrently; the per-round
  // barriers are implicit in Exchange::Collect, which blocks until every
  // peer published the round.
  AGL_RETURN_IF_ERROR(ParallelOverShards(num_shards, [&](int s) {
    auto records = RunFlatShard(config, s, tables.nodes[s], tables.edges[s],
                                ctx.node_feature_dim, ctx.edge_feature_dim,
                                &exchange, &shard_stats[s]);
    if (!records.ok()) {
      // A failed shard never publishes again — release the peers parked
      // at the next barrier instead of deadlocking the pool.
      exchange.Abort(records.status());
      return records.status();
    }
    shard_records[s] = *std::move(records);
    return agl::Status::OK();
  }));

  std::vector<mr::KeyValue> records;
  std::size_t total = 0;
  for (const auto& recs : shard_records) total += recs.size();
  records.reserve(total);
  for (auto& recs : shard_records) {
    for (mr::KeyValue& kv : recs) records.push_back(std::move(kv));
  }
  if (stats != nullptr) {
    for (const mr::JobStats& js : shard_stats) stats->job_stats.Accumulate(js);
    stats->exchange = exchange.stats();
    stats->elapsed_seconds = watch.Seconds();
  }
  return records;
}

agl::Result<std::vector<mr::KeyValue>> RunPipeline(
    const GraphFlatConfig& config, const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges, GraphFlatStats* stats) {
  if (config.num_shards > 1) {
    return RunShardedPipeline(config, nodes, edges, stats);
  }
  Stopwatch watch;
  if (nodes.empty()) {
    return agl::Status::InvalidArgument("GraphFlat: empty node table");
  }
  RoundContext ctx = MakeContext(config, nodes, edges);

  mr::JobStats job_stats;
  AGL_ASSIGN_OR_RETURN(
      std::vector<mr::KeyValue> records,
      mr::RunMapPhase(config.job, BuildMapInput(nodes, edges),
                      [] { return std::make_unique<FlatMapper>(); },
                      &job_stats));

  for (int round = 0; round <= config.hops; ++round) {
    AGL_ASSIGN_OR_RETURN(records,
                         ReindexAndSampleHubKeys(config, std::move(records),
                                                 round));
    ctx.round = round;
    RoundContext round_ctx = ctx;
    AGL_ASSIGN_OR_RETURN(
        records,
        mr::RunReducePhase(config.job, std::move(records),
                           [round_ctx] {
                             return std::make_unique<FlatReducer>(round_ctx);
                           },
                           &job_stats));
  }
  if (stats != nullptr) {
    stats->job_stats = job_stats;
    stats->elapsed_seconds = watch.Seconds();
  }
  return records;
}

}  // namespace

agl::Result<std::vector<mr::KeyValue>> RunFlatShard(
    const GraphFlatConfig& config, int shard,
    const std::vector<NodeRecord>& shard_nodes,
    const std::vector<EdgeRecord>& shard_edges, int64_t node_feature_dim,
    int64_t edge_feature_dim, Exchange* exchange, mr::JobStats* stats) {
  RoundContext ctx;
  ctx.last_round = config.hops;
  ctx.sampler_config = config.sampler;
  ctx.seed = config.job.seed;
  ctx.targets = config.targets;
  ctx.node_feature_dim = node_feature_dim;
  ctx.edge_feature_dim = edge_feature_dim;
  ctx.emit_state_at_last = true;

  const int num_shards = std::max(1, config.num_shards);
  ShardRouter router{ShardPlan(num_shards)};
  mr::JobStats job_stats;

  // Map phase: local to this shard's table slice; the home filter drops
  // the duplicate stubs of edges mapped on both endpoint shards.
  AGL_ASSIGN_OR_RETURN(
      std::vector<mr::KeyValue> records,
      mr::RunMapPhase(config.job, BuildMapInput(shard_nodes, shard_edges),
                      [] { return std::make_unique<FlatMapper>(); },
                      &job_stats));
  router.FilterToShard(shard, &records);

  for (int round = 0; round <= config.hops; ++round) {
    ctx.round = round;
    const RoundContext round_ctx = ctx;
    // Every record of a key sits on its home shard here, so the hub
    // counts (and the suffix-shard sampling) match the single-shard run.
    AGL_ASSIGN_OR_RETURN(
        records, ReindexAndSampleHubKeys(config, std::move(records), round));
    AGL_ASSIGN_OR_RETURN(
        records,
        mr::RunReducePhase(config.job, std::move(records),
                           [round_ctx] {
                             return std::make_unique<FlatReducer>(round_ctx);
                           },
                           &job_stats));
    if (round < config.hops) {
      // Boundary exchange: neighbor states propagated along cross-shard
      // edges move to their destination's home shard.
      AGL_RETURN_IF_ERROR(exchange->Publish(round, shard, std::move(records)));
      AGL_ASSIGN_OR_RETURN(records, exchange->Collect(round, shard));
    }
  }

  // Merge stage (its own fault-tolerant job per shard): set-union the
  // states per node, then Store. See MergeReducer for why this stays a
  // separate stage even though exact routing leaves one state per node.
  AGL_ASSIGN_OR_RETURN(records,
                       MergeShardStates(config, node_feature_dim,
                                        edge_feature_dim, std::move(records),
                                        &job_stats));
  if (stats != nullptr) stats->Accumulate(job_stats);
  return records;
}

agl::Result<std::vector<mr::KeyValue>> MergeShardStates(
    const GraphFlatConfig& config, int64_t node_feature_dim,
    int64_t edge_feature_dim, std::vector<mr::KeyValue> records,
    mr::JobStats* stats) {
  RoundContext ctx;
  ctx.targets = config.targets;
  ctx.node_feature_dim = node_feature_dim;
  ctx.edge_feature_dim = edge_feature_dim;
  return mr::RunReducePhase(
      config.job, std::move(records),
      [ctx] { return std::make_unique<MergeReducer>(ctx); }, stats);
}

agl::Result<std::vector<subgraph::GraphFeature>> RunGraphFlatInMemory(
    const GraphFlatConfig& config, const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges, GraphFlatStats* stats) {
  GraphFlatStats local_stats;
  AGL_ASSIGN_OR_RETURN(std::vector<mr::KeyValue> records,
                       RunPipeline(config, nodes, edges, &local_stats));
  std::vector<subgraph::GraphFeature> features;
  for (const mr::KeyValue& kv : records) {
    if (kv.value.empty() || kv.value[0] != kTagFinal) continue;
    AGL_ASSIGN_OR_RETURN(subgraph::GraphFeature gf,
                         subgraph::GraphFeature::Parse(kv.value.substr(1)));
    local_stats.num_features++;
    local_stats.total_nodes += gf.num_nodes();
    local_stats.total_edges += gf.num_edges();
    local_stats.max_nodes = std::max(local_stats.max_nodes, gf.num_nodes());
    features.push_back(std::move(gf));
  }
  // Deterministic output order regardless of reduce-task interleaving.
  std::sort(features.begin(), features.end(),
            [](const subgraph::GraphFeature& a,
               const subgraph::GraphFeature& b) {
              return a.target_id < b.target_id;
            });
  if (stats != nullptr) *stats = local_stats;
  return features;
}

agl::Status GraphFlatConfig::Validate() const {
  if (hops < 1) {
    return agl::Status::InvalidArgument("GraphFlatConfig: hops must be >= 1");
  }
  if (output_parts < 1) {
    return agl::Status::InvalidArgument(
        "GraphFlatConfig: output_parts must be >= 1");
  }
  if (num_shards < 1) {
    return agl::Status::InvalidArgument(
        "GraphFlatConfig: num_shards must be >= 1");
  }
  if (reindex_fanout < 1) {
    return agl::Status::InvalidArgument(
        "GraphFlatConfig: reindex_fanout must be >= 1");
  }
  if (sampler.strategy != sampling::Strategy::kNone &&
      sampler.max_neighbors <= 0) {
    return agl::Status::InvalidArgument(
        "GraphFlatConfig: a sampling strategy needs max_neighbors > 0");
  }
  return agl::Status::OK();
}

agl::Status StoreFeaturePayloads(
    const GraphFlatConfig& config,
    std::vector<std::pair<NodeId, std::string>> finals, mr::LocalDfs* dfs,
    const std::string& dataset) {
  std::sort(finals.begin(), finals.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> payloads;
  payloads.reserve(finals.size());
  for (auto& [id, bytes] : finals) payloads.push_back(std::move(bytes));
  if (config.num_shards > 1) {
    // Each shard stores its own slice (id-sorted within the shard), then
    // the part files of every shard are unified under the one logical
    // dataset with stable part numbering: shard s's local part j becomes
    // global part s * output_parts + j.
    ShardPlan plan(config.num_shards);
    std::vector<std::vector<std::string>> by_shard(plan.num_shards());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      by_shard[plan.HomeShardOf(finals[i].first)].push_back(
          std::move(payloads[i]));
    }
    std::vector<std::string> staging;
    for (int s = 0; s < plan.num_shards(); ++s) {
      staging.push_back(mr::ShardDatasetName(dataset, s));
      AGL_RETURN_IF_ERROR(
          dfs->WriteDataset(staging.back(), by_shard[s], config.output_parts));
    }
    return dfs->UnifyDatasets(dataset, staging);
  }
  return dfs->WriteDataset(dataset, payloads, config.output_parts);
}

agl::Result<GraphFlatStats> RunGraphFlat(const GraphFlatConfig& config,
                                         const std::vector<NodeRecord>& nodes,
                                         const std::vector<EdgeRecord>& edges,
                                         mr::LocalDfs* dfs,
                                         const std::string& dataset) {
  GraphFlatStats stats;
  AGL_ASSIGN_OR_RETURN(std::vector<mr::KeyValue> records,
                       RunPipeline(config, nodes, edges, &stats));
  std::vector<std::pair<NodeId, std::string>> finals;
  for (mr::KeyValue& kv : records) {
    if (kv.value.empty() || kv.value[0] != kTagFinal) continue;
    finals.emplace_back(static_cast<NodeId>(std::stoull(kv.key)),
                        kv.value.substr(1));
  }
  for (const auto& [id, bytes] : finals) {
    AGL_ASSIGN_OR_RETURN(subgraph::GraphFeature gf,
                         subgraph::GraphFeature::Parse(bytes));
    stats.num_features++;
    stats.total_nodes += gf.num_nodes();
    stats.total_edges += gf.num_edges();
    stats.max_nodes = std::max(stats.max_nodes, gf.num_nodes());
  }
  AGL_RETURN_IF_ERROR(
      StoreFeaturePayloads(config, std::move(finals), dfs, dataset));
  return stats;
}

}  // namespace agl::flat
