#include "subgraph/batch.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

#include "common/logging.h"

namespace agl::subgraph {
namespace {

constexpr int64_t kUnreachable = std::numeric_limits<int64_t>::max() / 2;

}  // namespace

VectorizedBatch MergeAndVectorize(std::span<const GraphFeature> features) {
  VectorizedBatch batch;

  // 1. Merge nodes by external id; first occurrence wins (all replicas of a
  //    node carry identical features by construction).
  std::unordered_map<NodeId, int64_t> local_of;
  int64_t fn = 0, fe = 0;
  for (const GraphFeature& gf : features) {
    fn = std::max(fn, gf.node_features.cols());
    fe = std::max(fe, gf.edge_features.cols());
    for (NodeId id : gf.node_ids) {
      if (local_of.emplace(id, static_cast<int64_t>(batch.node_ids.size()))
              .second) {
        batch.node_ids.push_back(id);
      }
    }
  }
  const int64_t n = static_cast<int64_t>(batch.node_ids.size());

  batch.node_features = tensor::Tensor(n, fn);
  std::vector<bool> feature_set(n, false);
  std::vector<tensor::CooEntry> entries;
  struct EdgeFeatRow {
    int64_t row_in_source;
    const GraphFeature* source;
  };
  std::vector<EdgeFeatRow> edge_feat_rows;

  for (const GraphFeature& gf : features) {
    // Node features.
    for (int64_t i = 0; i < gf.num_nodes(); ++i) {
      const int64_t local = local_of.at(gf.node_ids[i]);
      if (!feature_set[local]) {
        std::copy(gf.node_features.row(i), gf.node_features.row(i) + fn,
                  batch.node_features.row(local));
        feature_set[local] = true;
      }
    }
    // Targets.
    const int64_t t = local_of.at(gf.node_ids[gf.target_index]);
    batch.target_indices.push_back(t);
    batch.labels.push_back(gf.label);
    // Edges (remapped into merged indices); duplicates coalesce below.
    for (std::size_t ei = 0; ei < gf.edges.size(); ++ei) {
      const GraphFeature::EdgeRec& e = gf.edges[ei];
      entries.push_back({local_of.at(gf.node_ids[e.dst]),
                         local_of.at(gf.node_ids[e.src]), e.weight});
      if (fe > 0 && gf.edge_features.rows() > 0) {
        edge_feat_rows.push_back({static_cast<int64_t>(ei), &gf});
      }
    }
  }

  // Multi-labels (all-or-nothing across the batch).
  const int64_t ml_width =
      features.empty() ? 0 : static_cast<int64_t>(features[0].multilabel.size());
  if (ml_width > 0) {
    batch.multilabels =
        tensor::Tensor(static_cast<int64_t>(features.size()), ml_width);
    for (std::size_t i = 0; i < features.size(); ++i) {
      AGL_CHECK_EQ(static_cast<int64_t>(features[i].multilabel.size()),
                   ml_width)
          << "inconsistent multilabel widths in batch";
      std::copy(features[i].multilabel.begin(), features[i].multilabel.end(),
                batch.multilabels.row(static_cast<int64_t>(i)));
    }
  }

  // 2. Deduplicate edges on (dst, src): overlapping neighborhoods replicate
  //    the same graph edge; keep one copy (not a sum).
  std::sort(entries.begin(), entries.end(),
            [](const tensor::CooEntry& a, const tensor::CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const tensor::CooEntry& a,
                               const tensor::CooEntry& b) {
                              return a.row == b.row && a.col == b.col;
                            }),
                entries.end());

  // Edge features: aligned with the deduplicated CSR ordering. A simple
  // lookup keyed by endpoints keeps the first-seen feature row.
  if (fe > 0 && !edge_feat_rows.empty()) {
    std::unordered_map<uint64_t, const float*> feat_by_edge;
    std::unordered_map<NodeId, int64_t>& lof = local_of;
    for (const GraphFeature& gf : features) {
      if (gf.edge_features.rows() == 0) continue;
      for (std::size_t ei = 0; ei < gf.edges.size(); ++ei) {
        const GraphFeature::EdgeRec& e = gf.edges[ei];
        const uint64_t key =
            (static_cast<uint64_t>(lof.at(gf.node_ids[e.dst])) << 32) |
            static_cast<uint64_t>(lof.at(gf.node_ids[e.src]));
        feat_by_edge.emplace(key, gf.edge_features.row(ei));
      }
    }
    batch.edge_features =
        tensor::Tensor(static_cast<int64_t>(entries.size()), fe);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const uint64_t key = (static_cast<uint64_t>(entries[i].row) << 32) |
                           static_cast<uint64_t>(entries[i].col);
      auto it = feat_by_edge.find(key);
      if (it != feat_by_edge.end()) {
        std::copy(it->second, it->second + fe,
                  batch.edge_features.row(static_cast<int64_t>(i)));
      }
    }
  }

  batch.adjacency = std::make_shared<autograd::SharedAdjacency>(
      tensor::SparseMatrix::FromCoo(n, n, entries));

  // 3. Distances d(V_B, u): multi-source BFS from targets, traversing edges
  //    backwards (dst -> src), i.e. following the in-edge aggregation
  //    direction outwards.
  batch.target_distance.assign(n, kUnreachable);
  std::queue<int64_t> q;
  for (int64_t t : batch.target_indices) {
    if (batch.target_distance[t] != 0) {
      batch.target_distance[t] = 0;
      q.push(t);
    }
  }
  const tensor::SparseMatrix& adj = batch.adjacency->matrix();
  while (!q.empty()) {
    const int64_t v = q.front();
    q.pop();
    for (int64_t p = adj.row_ptr()[v]; p < adj.row_ptr()[v + 1]; ++p) {
      const int64_t u = adj.col_idx()[p];
      if (batch.target_distance[u] > batch.target_distance[v] + 1) {
        batch.target_distance[u] = batch.target_distance[v] + 1;
        q.push(u);
      }
    }
  }
  return batch;
}

std::vector<autograd::AdjacencyPtr> VectorizedBatch::PrunedAdjacencies(
    int num_layers) const {
  AGL_CHECK_GE(num_layers, 1);
  const tensor::SparseMatrix& full = adjacency->matrix();
  // The deepest distance that actually occurs; layers whose cutoff covers it
  // can reuse the unpruned adjacency without copying.
  int64_t max_observed = 0;
  for (int64_t d : target_distance) {
    if (d < kUnreachable) max_observed = std::max(max_observed, d);
  }
  std::vector<autograd::AdjacencyPtr> out(num_layers);
  for (int k = 0; k < num_layers; ++k) {
    const int64_t max_dist = num_layers - k - 1;
    if (max_dist >= max_observed) {
      out[k] = adjacency;
      continue;
    }
    std::vector<tensor::CooEntry> kept;
    for (int64_t r = 0; r < full.rows(); ++r) {
      if (target_distance[r] > max_dist) continue;
      for (int64_t p = full.row_ptr()[r]; p < full.row_ptr()[r + 1]; ++p) {
        kept.push_back({r, full.col_idx()[p], full.values()[p]});
      }
    }
    out[k] = std::make_shared<autograd::SharedAdjacency>(
        tensor::SparseMatrix::FromCoo(full.rows(), full.cols(),
                                      std::move(kept)));
  }
  return out;
}

}  // namespace agl::subgraph
