// Subgraph vectorization (paper §3.3.1) and graph pruning (§3.3.2).
//
// A training batch B = {<TargetedNodeId, Label, GraphFeature>} is merged
// into one subgraph and vectorized into the three matrices the model
// computation phase consumes: adjacency A_B, node features X_B and edge
// features E_B, plus target indices and labels. Pruning derives the
// per-layer adjacencies A_B^(k) that drop rows whose embeddings cannot
// reach any target.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "autograd/ops.h"
#include "subgraph/graph_feature.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace agl::subgraph {

/// The vectorized form of a merged batch of GraphFeatures.
struct VectorizedBatch {
  /// Merged adjacency: entry (dst, src) per edge, rows sorted by
  /// destination as Figure 4 prescribes.
  autograd::AdjacencyPtr adjacency;
  tensor::Tensor node_features;  // X_B
  tensor::Tensor edge_features;  // E_B (may be empty)
  std::vector<NodeId> node_ids;  // merged local index -> external id
  std::vector<int64_t> target_indices;  // local rows of the targets
  std::vector<int64_t> labels;          // per-target class labels (-1 ok)
  tensor::Tensor multilabels;           // [num_targets x L] or empty
  /// d(V_B, u): hops from node u to the nearest target following the
  /// aggregation direction; INT64_MAX/2 when unreachable.
  std::vector<int64_t> target_distance;

  int64_t num_nodes() const { return static_cast<int64_t>(node_ids.size()); }

  /// Per-layer pruned adjacencies for a K-layer model. Element k is used by
  /// layer k (which computes H^(k+1)): it keeps only destination rows at
  /// distance <= K - k - 1 from the batch targets, so the last layer only
  /// aggregates into the targets themselves. Element k == nullptr never
  /// happens; an un-pruned model can simply pass `adjacency` everywhere.
  std::vector<autograd::AdjacencyPtr> PrunedAdjacencies(int num_layers) const;
};

/// Merges GraphFeatures (deduplicating shared nodes by external id and
/// duplicate edges by endpoint pair) and vectorizes the result.
VectorizedBatch MergeAndVectorize(std::span<const GraphFeature> features);

}  // namespace agl::subgraph
