#include "subgraph/khop.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace agl::subgraph {

agl::Result<GraphFeature> ExtractKHop(const graph::Graph& g,
                                      graph::NodeId target,
                                      const KHopOptions& opts) {
  const int64_t root = g.LocalIndex(target);
  if (root == graph::Graph::kNotFound) {
    return agl::Status::NotFound("target node not in graph: " +
                                 std::to_string(target));
  }
  Rng rng(DeriveSeed(opts.seed, target));
  auto sampler = sampling::MakeSampler(opts.sampler);

  // BFS from the target following in-edges backwards (dst -> src), since a
  // node at distance d feeds the target's layer-(k-d) embeddings.
  std::unordered_map<int64_t, int64_t> local_of;  // graph idx -> subgraph idx
  std::vector<int64_t> order;                     // subgraph idx -> graph idx
  std::vector<int> depth;
  local_of.emplace(root, 0);
  order.push_back(root);
  depth.push_back(0);

  // Tree edges discovered during expansion (used when !opts.induced).
  std::vector<GraphFeature::EdgeRec> tree_edges;

  std::queue<int64_t> frontier;  // subgraph indices
  frontier.push(0);
  std::vector<float> weights;
  while (!frontier.empty()) {
    const int64_t sub_v = frontier.front();
    frontier.pop();
    if (depth[sub_v] >= opts.k) continue;
    const int64_t v = order[sub_v];
    const auto in_edges = g.InEdges(v);
    weights.clear();
    weights.reserve(in_edges.size());
    for (const graph::Edge& e : in_edges) weights.push_back(e.weight);
    const std::vector<std::size_t> kept =
        sampler->Sample({weights.data(), weights.size()}, &rng);
    for (std::size_t pos : kept) {
      const graph::Edge& e = in_edges[pos];
      auto [it, inserted] =
          local_of.emplace(e.src, static_cast<int64_t>(order.size()));
      if (inserted) {
        order.push_back(e.src);
        depth.push_back(depth[sub_v] + 1);
        frontier.push(it->second);
      }
      tree_edges.push_back({it->second, sub_v, e.weight});
    }
  }

  GraphFeature gf;
  gf.target_id = target;
  gf.target_index = 0;
  gf.node_ids.reserve(order.size());
  for (int64_t v : order) gf.node_ids.push_back(g.node_id(v));
  if (!g.labels().empty()) gf.label = g.labels()[root];
  if (g.multilabels().rows() > 0) {
    const float* row = g.multilabels().row(root);
    gf.multilabel.assign(row, row + g.multilabels().cols());
  }

  gf.node_features =
      tensor::Tensor(static_cast<int64_t>(order.size()), g.node_feature_dim());
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::copy(g.node_features().row(order[i]),
              g.node_features().row(order[i]) + g.node_feature_dim(),
              gf.node_features.row(static_cast<int64_t>(i)));
  }

  if (opts.induced) {
    // Induced edge set: every graph edge with both endpoints collected.
    // Walk in-edges of each collected node so ordering is by (dst, src).
    for (std::size_t sub_dst = 0; sub_dst < order.size(); ++sub_dst) {
      for (const graph::Edge& e : g.InEdges(order[sub_dst])) {
        auto it = local_of.find(e.src);
        if (it == local_of.end()) continue;
        gf.edges.push_back(
            {it->second, static_cast<int64_t>(sub_dst), e.weight});
      }
    }
  } else {
    gf.edges = std::move(tree_edges);
  }
  std::sort(gf.edges.begin(), gf.edges.end(),
            [](const GraphFeature::EdgeRec& a, const GraphFeature::EdgeRec& b) {
              return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
            });
  gf.edges.erase(std::unique(gf.edges.begin(), gf.edges.end(),
                             [](const GraphFeature::EdgeRec& a,
                                const GraphFeature::EdgeRec& b) {
                               return a.src == b.src && a.dst == b.dst;
                             }),
                 gf.edges.end());
  return gf;
}

}  // namespace agl::subgraph
