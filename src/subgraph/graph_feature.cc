#include "subgraph/graph_feature.h"

#include "io/codec.h"

namespace agl::subgraph {
namespace {

constexpr uint32_t kMagic = 0x41474c46;  // "AGLF"
constexpr uint32_t kVersion = 1;

}  // namespace

std::string GraphFeature::Serialize() const {
  io::BufferWriter w;
  w.PutFixed32(kMagic);
  w.PutVarint64(kVersion);
  w.PutVarint64(target_id);
  w.PutVarint64Signed(target_index);
  w.PutVarint64Signed(label);
  w.PutFloatArray(multilabel);

  w.PutVarint64(node_ids.size());
  for (NodeId id : node_ids) w.PutVarint64(id);
  w.PutVarint64Signed(node_features.rows());
  w.PutVarint64Signed(node_features.cols());
  w.PutBytes(node_features.data(), node_features.size() * sizeof(float));

  w.PutVarint64(edges.size());
  for (const EdgeRec& e : edges) {
    w.PutVarint64Signed(e.src);
    w.PutVarint64Signed(e.dst);
    w.PutFloat(e.weight);
  }
  w.PutVarint64Signed(edge_features.rows());
  w.PutVarint64Signed(edge_features.cols());
  w.PutBytes(edge_features.data(), edge_features.size() * sizeof(float));
  return w.Release();
}

agl::Result<GraphFeature> GraphFeature::Parse(const std::string& bytes) {
  io::BufferReader r(bytes);
  uint32_t magic;
  AGL_RETURN_IF_ERROR(r.GetFixed32(&magic));
  if (magic != kMagic) {
    return agl::Status::Corruption("GraphFeature: bad magic");
  }
  uint64_t version;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&version));
  if (version != kVersion) {
    return agl::Status::Corruption("GraphFeature: unsupported version " +
                                   std::to_string(version));
  }
  GraphFeature gf;
  uint64_t target_id;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&target_id));
  gf.target_id = target_id;
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&gf.target_index));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&gf.label));
  AGL_RETURN_IF_ERROR(r.GetFloatArray(&gf.multilabel));

  uint64_t num_nodes;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&num_nodes));
  gf.node_ids.reserve(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    uint64_t id;
    AGL_RETURN_IF_ERROR(r.GetVarint64(&id));
    gf.node_ids.push_back(id);
  }
  int64_t rows, cols;
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&rows));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&cols));
  if (rows < 0 || cols < 0 ||
      static_cast<uint64_t>(rows) != num_nodes) {
    return agl::Status::Corruption("GraphFeature: node feature shape");
  }
  {
    std::vector<float> data(static_cast<std::size_t>(rows * cols));
    AGL_RETURN_IF_ERROR(r.GetRaw(data.data(), data.size() * sizeof(float)));
    gf.node_features = tensor::Tensor(rows, cols, std::move(data));
  }

  uint64_t num_edges;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&num_edges));
  gf.edges.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    EdgeRec e;
    AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&e.src));
    AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&e.dst));
    AGL_RETURN_IF_ERROR(r.GetFloat(&e.weight));
    if (e.src < 0 || e.dst < 0 || e.src >= rows || e.dst >= rows) {
      return agl::Status::Corruption("GraphFeature: edge endpoint range");
    }
    gf.edges.push_back(e);
  }
  int64_t erows, ecols;
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&erows));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&ecols));
  if (erows < 0 || ecols < 0) {
    return agl::Status::Corruption("GraphFeature: edge feature shape");
  }
  {
    std::vector<float> data(static_cast<std::size_t>(erows * ecols));
    AGL_RETURN_IF_ERROR(r.GetRaw(data.data(), data.size() * sizeof(float)));
    gf.edge_features = tensor::Tensor(erows, ecols, std::move(data));
  }
  if (gf.target_index < 0 || gf.target_index >= gf.num_nodes()) {
    return agl::Status::Corruption("GraphFeature: target index range");
  }
  return gf;
}

bool GraphFeature::operator==(const GraphFeature& other) const {
  auto edges_eq = [&] {
    if (edges.size() != other.edges.size()) return false;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].src != other.edges[i].src ||
          edges[i].dst != other.edges[i].dst ||
          edges[i].weight != other.edges[i].weight) {
        return false;
      }
    }
    return true;
  };
  return target_id == other.target_id && target_index == other.target_index &&
         label == other.label && multilabel == other.multilabel &&
         node_ids == other.node_ids &&
         node_features.AllClose(other.node_features, 0.f) &&
         edges_eq() && edge_features.AllClose(other.edge_features, 0.f);
}

}  // namespace agl::subgraph
