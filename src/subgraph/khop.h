// Reference single-machine k-hop neighborhood extraction (Definition 1).
//
// This is the semantic ground truth that the distributed GraphFlat pipeline
// must match: BFS over in-edges from the target, with per-node neighbor
// sampling applied at expansion time. Tests assert GraphFlat's MapReduce
// output is equivalent to this extractor; the Original inference baseline
// uses it directly.

#pragma once

#include <cstdint>

#include "common/rng.h"
#include "graph/graph.h"
#include "sampling/sampler.h"
#include "subgraph/graph_feature.h"

namespace agl::subgraph {

struct KHopOptions {
  int k = 2;
  sampling::SamplerConfig sampler;
  /// Seed for the sampling Rng; derived per target for determinism.
  uint64_t seed = 7;
  /// When true (default) edges among all collected nodes are induced; when
  /// false only tree edges discovered by the BFS are kept. The paper's
  /// Definition 1 is the induced subgraph.
  bool induced = true;
};

/// Extracts the k-hop neighborhood of the node with external id `target`.
/// The label is copied from the graph when present. Fails with kNotFound if
/// the target is not in the graph.
agl::Result<GraphFeature> ExtractKHop(const graph::Graph& g,
                                      graph::NodeId target,
                                      const KHopOptions& opts);

}  // namespace agl::subgraph
