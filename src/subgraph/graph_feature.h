// GraphFeature: the serialized k-hop neighborhood (paper §3.2.1).
//
// "At the end of this pipeline, the k-hop neighborhood w.r.t. a certain
//  targeted node is flattened to a protobuf string. ... since the k-hop
//  neighborhood w.r.t. a node helps discriminate the node from others, we
//  also call it GraphFeature."
//
// Our byte format plays the protobuf role: a versioned, varint-coded,
// self-contained subgraph that round-trips through the LocalDfs record
// files produced by GraphFlat and consumed by GraphTrainer.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace agl::subgraph {

using NodeId = uint64_t;

/// An information-complete subgraph for one target node.
struct GraphFeature {
  /// One directed edge with endpoints as local node indices.
  struct EdgeRec {
    int64_t src = 0;
    int64_t dst = 0;
    float weight = 1.f;
  };

  NodeId target_id = 0;
  /// Local index of the target inside `node_ids` (always present).
  int64_t target_index = 0;
  /// Integer class label; -1 when unlabeled (inference-time features).
  int64_t label = -1;
  /// Optional multi-label target vector (PPI-style tasks); empty if unused.
  std::vector<float> multilabel;

  std::vector<NodeId> node_ids;
  tensor::Tensor node_features;  // [num_nodes x fn]
  std::vector<EdgeRec> edges;    // sorted by (dst, src)
  tensor::Tensor edge_features;  // [num_edges x fe] or empty

  int64_t num_nodes() const { return static_cast<int64_t>(node_ids.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges.size()); }

  /// Flattens to the versioned byte string stored on the DFS.
  std::string Serialize() const;
  /// Parses a byte string; kCorruption on malformed input.
  static agl::Result<GraphFeature> Parse(const std::string& bytes);

  /// Structural + value equality (used heavily by round-trip tests).
  bool operator==(const GraphFeature& other) const;
};

}  // namespace agl::subgraph
