// Cross-slice segment-embedding cache for batched GraphInfer.
//
// The paper's GraphInfer computes every segment (per-round) embedding
// exactly once *within* one pipeline run, but a production serving flow runs
// many inference slices over the same graph and re-derives the shared
// neighborhood embeddings per slice. This cache keeps those intermediates
// resident between slices (the Polynesia co-design lesson: hot intermediate
// state stays put instead of being recomputed across stages): entries are
// keyed by (node, round, model_version), kept LRU under a byte budget, and
// — when a spill file is configured — evicted entries spill to a
// record_file on the DFS instead of being dropped, so budgets smaller than
// the working set still serve hits.
//
// The cache is a pure optimization layer: every entry holds a value that is
// bit-identical to what the reducer would recompute, and any failure on the
// spill path (fault-injected or real) degrades to a miss, never to a wrong
// answer.
//
// Spill writes are batched: an eviction appends into the stdio buffer and
// the bytes are only pushed down (a) lazily, right before a spill read that
// needs them, or (b) durably, by PublishSpill() — one fsync per publish
// instead of one flush per evicted entry.

#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "infer/embedding_store.h"
#include "io/record_file.h"

namespace agl::infer {

/// Everything a restarted process needs to re-attach a spill file:
/// the durable byte prefix and the (key -> offset) index into it.
/// PersistentEmbeddingStore serializes this into its index dataset.
struct SpillSnapshot {
  uint64_t valid_bytes = 0;
  std::vector<std::pair<CacheKey, uint64_t>> entries;
};

/// Thread-safe LRU embedding cache with optional record_file spill.
///
/// Budget semantics: negative = unbounded, 0 = disabled (lookups fail and
/// inserts are dropped without touching the counters), positive = resident
/// byte budget (approximate: payload + fixed per-entry overhead).
class EmbeddingCache final : public EmbeddingStore {
 public:
  explicit EmbeddingCache(int64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  bool enabled() const override { return budget_bytes_ != 0; }
  bool bounded() const { return budget_bytes_ > 0; }
  int64_t budget_bytes() const { return budget_bytes_; }

  /// Routes future evictions to a record_file at `path` (created/truncated
  /// now) instead of dropping them. The file uses the LocalDfs part-file
  /// format, so a spill parked under a DFS root is readable with the
  /// ordinary record tooling.
  agl::Status EnableSpill(const std::string& path) EXCLUDES(mu_);

  /// Re-attaches an existing spill file from a snapshot taken by a previous
  /// process: appends resume after `snap.valid_bytes` (anything past that —
  /// a torn tail from a crash mid-append — is truncated away) and the
  /// offset index is restored, so lookups hit the old process's entries.
  agl::Status RestoreSpill(const std::string& path, const SpillSnapshot& snap)
      EXCLUDES(mu_);

  /// Spills every RAM-resident entry that has no spill slot yet, then
  /// flushes and fsyncs the file once and returns the snapshot needed to
  /// re-attach it. The cache keeps serving afterwards; only the snapshot's
  /// prefix is durable.
  agl::Result<SpillSnapshot> PublishSpill() EXCLUDES(mu_);

  /// Returns true and fills `*out` when `key` is resident (in RAM or in the
  /// spill file). A spill hit is re-admitted to RAM.
  bool Lookup(const CacheKey& key, std::vector<float>* out) override
      EXCLUDES(mu_);

  /// Admits `embedding` under `key` (no-op when disabled or already
  /// present; an existing entry is only refreshed in LRU order — values are
  /// immutable per (node, round, version)).
  void Insert(const CacheKey& key, const std::vector<float>& embedding)
      override EXCLUDES(mu_);

  /// Drops every entry (RAM and spill index) for `node` with
  /// round >= `min_round`, across all model versions.
  void Invalidate(uint64_t node, int32_t min_round) override EXCLUDES(mu_);

  EmbeddingCacheStats stats() const override EXCLUDES(mu_);

 private:
  struct Entry {
    CacheKey key;
    std::vector<float> embedding;
  };

  static int64_t EntryBytes(const std::vector<float>& embedding) {
    // Payload + approximate list/index node overhead.
    return static_cast<int64_t>(embedding.size() * sizeof(float)) + 64;
  }

  /// Inserts at the LRU front and evicts (spilling when configured) until
  /// the budget holds again.
  void AdmitLocked(const CacheKey& key, std::vector<float> embedding)
      REQUIRES(mu_);
  void EvictOneLocked() REQUIRES(mu_);
  /// Appends one entry to the spill file (buffered; no flush) and records
  /// its offset. Counts a spill_failure and reports non-OK on error.
  agl::Status SpillAppendLocked(const CacheKey& key,
                                const std::vector<float>& embedding)
      REQUIRES(mu_);
  /// Attempts to serve `key` from the spill file.
  bool SpillLookupLocked(const CacheKey& key, std::vector<float>* out)
      REQUIRES(mu_);

  const int64_t budget_bytes_;

  // One mutex guards everything, including spill I/O: evictions and spill
  // reads are rare next to RAM hits, and the offset map stays trivially
  // consistent. If spill traffic ever dominates a profile, stage the
  // encode/IO outside the lock (collect victims under it, write after
  // release, re-check the offset map on re-entry).
  mutable common::Mutex mu_;
  std::list<Entry> lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_ GUARDED_BY(mu_);
  // Spill state: append-only writer plus a byte-offset index into the file.
  // Entries are immutable, so an offset written once stays valid and a
  // re-evicted entry is never rewritten. Appends sit in the stdio buffer
  // until a read needs them: `spill_flushed_bytes_` is the prefix known
  // visible to the reader (always a record boundary — it only advances to
  // bytes_written() right after a flush).
  std::string spill_path_ GUARDED_BY(mu_);
  std::optional<io::RecordWriter> spill_writer_ GUARDED_BY(mu_);
  std::optional<io::RecordReader> spill_reader_ GUARDED_BY(mu_);
  uint64_t spill_flushed_bytes_ GUARDED_BY(mu_) = 0;
  std::unordered_map<CacheKey, uint64_t, CacheKeyHash> spill_offset_
      GUARDED_BY(mu_);
  EmbeddingCacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace agl::infer
