// Cross-slice segment-embedding cache for batched GraphInfer.
//
// The paper's GraphInfer computes every segment (per-round) embedding
// exactly once *within* one pipeline run, but a production serving flow runs
// many inference slices over the same graph and re-derives the shared
// neighborhood embeddings per slice. This cache keeps those intermediates
// resident between slices (the Polynesia co-design lesson: hot intermediate
// state stays put instead of being recomputed across stages): entries are
// keyed by (node, round, model_version), kept LRU under a byte budget, and
// — when a spill file is configured — evicted entries spill to a
// record_file on the DFS instead of being dropped, so budgets smaller than
// the working set still serve hits.
//
// The cache is a pure optimization layer: every entry holds a value that is
// bit-identical to what the reducer would recompute, and any failure on the
// spill path (fault-injected or real) degrades to a miss, never to a wrong
// answer.

#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "io/record_file.h"

namespace agl::infer {

/// Identity of one cached segment embedding. `version` fingerprints the
/// trained state dict, so a cache shared across model pushes can never
/// serve embeddings from stale weights.
struct CacheKey {
  uint64_t node = 0;
  int32_t round = 0;
  uint64_t version = 0;

  bool operator==(const CacheKey& o) const {
    return node == o.node && round == o.round && version == o.version;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    // splitmix-style mix of the three fields.
    uint64_t h = k.node * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<uint64_t>(static_cast<uint32_t>(k.round)) + 0x7f4a7c15ULL)
         << 17;
    h ^= k.version;
    h ^= h >> 31;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
  }
};

/// Counters surfaced into InferCosts by the batched driver.
struct EmbeddingCacheStats {
  int64_t hits = 0;          // lookups served (RAM or spill)
  int64_t misses = 0;        // lookups that found nothing
  int64_t inserts = 0;       // distinct entries admitted
  int64_t evictions = 0;     // entries pushed out of RAM by the budget
  int64_t spilled = 0;       // evictions written to the spill file
  int64_t spill_hits = 0;    // hits served by reading the spill file back
  int64_t spill_failures = 0;  // spill writes/reads that failed (degraded
                               // to drop/miss; injected faults land here)
  int64_t resident_bytes = 0;
  int64_t resident_entries = 0;
};

/// Thread-safe LRU embedding cache with optional record_file spill.
///
/// Budget semantics: negative = unbounded, 0 = disabled (lookups fail and
/// inserts are dropped without touching the counters), positive = resident
/// byte budget (approximate: payload + fixed per-entry overhead).
class EmbeddingCache {
 public:
  explicit EmbeddingCache(int64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  bool enabled() const { return budget_bytes_ != 0; }
  bool bounded() const { return budget_bytes_ > 0; }
  int64_t budget_bytes() const { return budget_bytes_; }

  /// Routes future evictions to a record_file at `path` (created/truncated
  /// now) instead of dropping them. The file uses the LocalDfs part-file
  /// format, so a spill parked under a DFS root is readable with the
  /// ordinary record tooling.
  agl::Status EnableSpill(const std::string& path) EXCLUDES(mu_);

  /// Returns true and fills `*out` when `key` is resident (in RAM or in the
  /// spill file). A spill hit is re-admitted to RAM.
  bool Lookup(const CacheKey& key, std::vector<float>* out) EXCLUDES(mu_);

  /// Admits `embedding` under `key` (no-op when disabled or already
  /// present; an existing entry is only refreshed in LRU order — values are
  /// immutable per (node, round, version)).
  void Insert(const CacheKey& key, const std::vector<float>& embedding)
      EXCLUDES(mu_);

  EmbeddingCacheStats stats() const EXCLUDES(mu_);

 private:
  struct Entry {
    CacheKey key;
    std::vector<float> embedding;
  };

  static int64_t EntryBytes(const std::vector<float>& embedding) {
    // Payload + approximate list/index node overhead.
    return static_cast<int64_t>(embedding.size() * sizeof(float)) + 64;
  }

  /// Inserts at the LRU front and evicts (spilling when configured) until
  /// the budget holds again.
  void AdmitLocked(const CacheKey& key, std::vector<float> embedding)
      REQUIRES(mu_);
  void EvictOneLocked() REQUIRES(mu_);
  /// Attempts to serve `key` from the spill file.
  bool SpillLookupLocked(const CacheKey& key, std::vector<float>* out)
      REQUIRES(mu_);

  const int64_t budget_bytes_;

  // One mutex guards everything, including spill I/O: evictions and spill
  // reads are rare next to RAM hits, and the offset map stays trivially
  // consistent. If spill traffic ever dominates a profile, stage the
  // encode/IO outside the lock (collect victims under it, write after
  // release, re-check the offset map on re-entry).
  mutable common::Mutex mu_;
  std::list<Entry> lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_ GUARDED_BY(mu_);
  // Spill state: append-only writer plus a byte-offset index into the file.
  // Entries are immutable, so an offset written once stays valid and a
  // re-evicted entry is never rewritten.
  std::string spill_path_ GUARDED_BY(mu_);
  std::optional<io::RecordWriter> spill_writer_ GUARDED_BY(mu_);
  std::optional<io::RecordReader> spill_reader_ GUARDED_BY(mu_);
  std::unordered_map<CacheKey, uint64_t, CacheKeyHash> spill_offset_
      GUARDED_BY(mu_);
  EmbeddingCacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace agl::infer
