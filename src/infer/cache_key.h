// Key and counter types shared by every EmbeddingStore implementation.

#pragma once

#include <cstddef>
#include <cstdint>

namespace agl::infer {

/// Identity of one cached segment embedding. `version` fingerprints the
/// trained state dict, so a cache shared across model pushes can never
/// serve embeddings from stale weights.
struct CacheKey {
  uint64_t node = 0;
  int32_t round = 0;
  uint64_t version = 0;

  bool operator==(const CacheKey& o) const {
    return node == o.node && round == o.round && version == o.version;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    // splitmix-style mix of the three fields.
    uint64_t h = k.node * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<uint64_t>(static_cast<uint32_t>(k.round)) + 0x7f4a7c15ULL)
         << 17;
    h ^= k.version;
    h ^= h >> 31;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
  }
};

/// Counters surfaced into InferCosts by the batched driver.
struct EmbeddingCacheStats {
  int64_t hits = 0;          // lookups served (RAM or spill)
  int64_t misses = 0;        // lookups that found nothing
  int64_t inserts = 0;       // distinct entries admitted
  int64_t evictions = 0;     // entries pushed out of RAM by the budget
  int64_t spilled = 0;       // evictions written to the spill file
  int64_t spill_hits = 0;    // hits served by reading the spill file back
  int64_t spill_failures = 0;  // spill writes/reads that failed (degraded
                               // to drop/miss; injected faults land here)
  int64_t invalidations = 0;   // entries dropped by Invalidate (RAM + spill)
  int64_t resident_bytes = 0;
  int64_t resident_entries = 0;
};

}  // namespace agl::infer
