#include "infer/segmentation.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace agl::infer {
namespace {

/// Strict layer index of a "layer<k>.<...>" state-dict key, or -1 when the
/// key does not match the convention exactly (e.g. "layer1x.w" is malformed,
/// not layer 1).
int ParseLayerIndex(const std::string& key) {
  if (key.rfind("layer", 0) != 0) return -1;
  const std::size_t dot = key.find('.');
  if (dot == std::string::npos || dot <= 5) return -1;
  int layer = -1;
  const char* begin = key.data() + 5;
  const char* end = key.data() + dot;
  const auto [ptr, ec] = std::from_chars(begin, end, layer);
  if (ec != std::errc() || ptr != end || layer < 0) return -1;
  return layer;
}

/// y += x @ W (x is [1 x in], W is [in x out], y is [1 x out]).
void AddVecMat(const std::vector<float>& x, const tensor::Tensor& w,
               float scale, std::vector<float>* y) {
  AGL_CHECK_EQ(static_cast<int64_t>(x.size()), w.rows());
  AGL_CHECK_EQ(static_cast<int64_t>(y->size()), w.cols());
  for (int64_t i = 0; i < w.rows(); ++i) {
    const float xv = x[i] * scale;
    if (xv == 0.f) continue;
    const float* wrow = w.row(i);
    for (int64_t j = 0; j < w.cols(); ++j) (*y)[j] += xv * wrow[j];
  }
}

float Dot(const std::vector<float>& x, const tensor::Tensor& col) {
  AGL_CHECK_EQ(static_cast<int64_t>(x.size()), col.rows());
  float s = 0.f;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * col.at(i, 0);
  return s;
}

const tensor::Tensor& Param(const ModelSlice& slice, const std::string& key) {
  auto it = slice.params.find(key);
  AGL_CHECK(it != slice.params.end())
      << "slice " << slice.layer << " missing parameter " << key;
  return it->second;
}

void Relu(std::vector<float>* v) {
  for (float& x : *v) x = std::max(0.f, x);
}

void EluInPlace(std::vector<float>* v) {
  for (float& x : *v) x = x > 0.f ? x : std::exp(x) - 1.f;
}

}  // namespace

agl::Result<std::vector<ModelSlice>> SegmentModel(
    const std::map<std::string, tensor::Tensor>& state, int num_layers) {
  std::vector<ModelSlice> slices(num_layers + 1);
  for (int k = 0; k <= num_layers; ++k) slices[k].layer = k;
  for (const auto& [key, value] : state) {
    const int layer = ParseLayerIndex(key);
    if (layer < 0) {
      return agl::Status::InvalidArgument("unrecognized parameter key: " +
                                          key);
    }
    if (layer >= num_layers) {
      return agl::Status::InvalidArgument("layer index out of range in key " +
                                          key);
    }
    slices[layer].params.emplace(key.substr(key.find('.') + 1), value);
  }
  // slices[num_layers] (the prediction slice) stays empty: the models end
  // in an identity head; kept so the pipeline shape matches the paper.
  return slices;
}

int CountStateLayers(const std::map<std::string, tensor::Tensor>& state) {
  int max_layer = -1;
  for (const auto& [key, value] : state) {
    max_layer = std::max(max_layer, ParseLayerIndex(key));
  }
  return max_layer + 1;
}

agl::Result<std::vector<float>> ApplySlice(
    const gnn::ModelConfig& config, const ModelSlice& slice,
    const std::vector<float>& self,
    const std::vector<NeighborEmbedding>& neighbors) {
  const bool last = slice.layer == config.num_layers - 1;
  std::vector<float> out;

  switch (config.type) {
    case gnn::ModelType::kGcn: {
      // out = sum_j w_j (h_j W + b); the normalized adjacency row includes
      // the self loop, so `self` participates through `neighbors`.
      const tensor::Tensor& w = Param(slice, "linear.weight");
      const tensor::Tensor& b = Param(slice, "linear.bias");
      out.assign(w.cols(), 0.f);
      float weight_sum = 0.f;
      for (const NeighborEmbedding& nb : neighbors) {
        AddVecMat(nb.embedding, w, nb.weight, &out);
        weight_sum += nb.weight;
      }
      for (int64_t j = 0; j < b.cols(); ++j) {
        out[j] += weight_sum * b.at(0, j);
      }
      if (!last) Relu(&out);
      return out;
    }
    case gnn::ModelType::kGraphSage: {
      const tensor::Tensor& ws = Param(slice, "self.weight");
      const tensor::Tensor& bs = Param(slice, "self.bias");
      const tensor::Tensor& wn = Param(slice, "neigh.weight");
      // Aggregate neighbors first (row-normalized mean weights), then
      // transform: (sum_j w_j h_j) Wn + (h_self Ws + bs).
      std::vector<float> agg(ws.rows(), 0.f);
      for (const NeighborEmbedding& nb : neighbors) {
        AGL_CHECK_EQ(nb.embedding.size(), agg.size());
        for (std::size_t i = 0; i < agg.size(); ++i) {
          agg[i] += nb.weight * nb.embedding[i];
        }
      }
      out.assign(ws.cols(), 0.f);
      AddVecMat(self, ws, 1.f, &out);
      for (int64_t j = 0; j < bs.cols(); ++j) out[j] += bs.at(0, j);
      AddVecMat(agg, wn, 1.f, &out);
      if (!last) Relu(&out);
      return out;
    }
    case gnn::ModelType::kGat: {
      const tensor::Tensor& bias = Param(slice, "bias");
      const int heads = config.gat_heads;
      const bool concat = !last;
      std::vector<float> combined;
      for (int hd = 0; hd < heads; ++hd) {
        const std::string s = std::to_string(hd);
        const tensor::Tensor& w = Param(slice, "weight_" + s);
        const tensor::Tensor& al = Param(slice, "attn_l_" + s);
        const tensor::Tensor& ar = Param(slice, "attn_r_" + s);
        // Transform every neighbor (the self-loop entry covers `self`).
        std::vector<std::vector<float>> wh(neighbors.size());
        std::vector<float> scores(neighbors.size());
        std::vector<float> wh_self(w.cols(), 0.f);
        AddVecMat(self, w, 1.f, &wh_self);
        const float al_self = Dot(wh_self, al);
        float mx = -std::numeric_limits<float>::infinity();
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          wh[i].assign(w.cols(), 0.f);
          AddVecMat(neighbors[i].embedding, w, 1.f, &wh[i]);
          const float z = al_self + Dot(wh[i], ar);
          scores[i] = z > 0.f ? z : 0.2f * z;
          mx = std::max(mx, scores[i]);
        }
        std::vector<float> head(w.cols(), 0.f);
        if (!neighbors.empty()) {
          float denom = 0.f;
          for (float& sc : scores) {
            sc = std::exp(sc - mx);
            denom += sc;
          }
          for (std::size_t i = 0; i < neighbors.size(); ++i) {
            const float a = scores[i] / denom;
            for (int64_t j = 0; j < w.cols(); ++j) head[j] += a * wh[i][j];
          }
        }
        if (concat) {
          combined.insert(combined.end(), head.begin(), head.end());
        } else if (combined.empty()) {
          combined = head;
        } else {
          for (std::size_t j = 0; j < head.size(); ++j) {
            combined[j] += head[j];
          }
        }
      }
      if (!concat && heads > 1) {
        for (float& x : combined) x /= static_cast<float>(heads);
      }
      AGL_CHECK_EQ(static_cast<int64_t>(combined.size()), bias.cols());
      for (int64_t j = 0; j < bias.cols(); ++j) combined[j] += bias.at(0, j);
      if (!last) EluInPlace(&combined);
      return combined;
    }
  }
  return agl::Status::Internal("unknown model type");
}

std::vector<float> ApplyPredictionSlice(const gnn::ModelConfig& config,
                                        const std::vector<float>& embedding) {
  (void)config;
  // Identity head + softmax: the predicted class distribution.
  std::vector<float> out = embedding;
  float mx = -std::numeric_limits<float>::infinity();
  for (float v : out) mx = std::max(mx, v);
  float denom = 0.f;
  for (float& v : out) {
    v = std::exp(v - mx);
    denom += v;
  }
  for (float& v : out) v /= denom;
  return out;
}

}  // namespace agl::infer
