#include "infer/persistent_store.h"

#include <algorithm>
#include <filesystem>

#include "io/codec.h"

namespace agl::infer {
namespace {

// Bumped whenever the index record layout changes; an unknown magic is
// treated as "no usable index", i.e. a cold start.
constexpr const char* kIndexMagic = "AGLESTORE2";

std::string EncodeIndexHeader(uint64_t model_version, uint64_t graph_version,
                              uint64_t valid_bytes, uint64_t entry_count) {
  io::BufferWriter w;
  w.PutString(kIndexMagic);
  w.PutVarint64(model_version);
  w.PutVarint64(graph_version);
  w.PutVarint64(valid_bytes);
  w.PutVarint64(entry_count);
  return w.Release();
}

std::string EncodeIndexEntry(const CacheKey& key, uint64_t offset) {
  io::BufferWriter w;
  w.PutVarint64(key.node);
  w.PutVarint64(static_cast<uint64_t>(static_cast<uint32_t>(key.round)));
  w.PutVarint64(key.version);
  w.PutVarint64(offset);
  return w.Release();
}

/// Parses the published index records into a snapshot. Any structural
/// problem (bad magic, short records, count mismatch) returns kCorruption —
/// the caller degrades to a cold start.
agl::Result<SpillSnapshot> ParseIndex(const std::vector<std::string>& records,
                                      uint64_t expected_version,
                                      uint64_t expected_graph_version) {
  if (records.empty()) return agl::Status::Corruption("empty index");
  io::BufferReader header(records[0]);
  std::string magic;
  uint64_t version = 0, graph_version = 0, valid_bytes = 0, entry_count = 0;
  AGL_RETURN_IF_ERROR(header.GetString(&magic));
  if (magic != kIndexMagic) {
    return agl::Status::Corruption("bad index magic: " + magic);
  }
  AGL_RETURN_IF_ERROR(header.GetVarint64(&version));
  AGL_RETURN_IF_ERROR(header.GetVarint64(&graph_version));
  AGL_RETURN_IF_ERROR(header.GetVarint64(&valid_bytes));
  AGL_RETURN_IF_ERROR(header.GetVarint64(&entry_count));
  if (version != expected_version) {
    // Not corruption — a model push happened between publish and reopen.
    // The embeddings are valid for weights we no longer serve.
    return agl::Status::FailedPrecondition("index model_version mismatch");
  }
  if (graph_version != expected_graph_version) {
    // Also not corruption: the graph moved (e.g. the last incarnation
    // persisted after mutations and this one serves different tables).
    // Its embeddings answer questions about a graph we are not serving.
    return agl::Status::FailedPrecondition("index graph_version mismatch");
  }
  if (entry_count != records.size() - 1) {
    return agl::Status::Corruption("index entry count mismatch");
  }
  SpillSnapshot snap;
  snap.valid_bytes = valid_bytes;
  snap.entries.reserve(records.size() - 1);
  for (std::size_t i = 1; i < records.size(); ++i) {
    io::BufferReader r(records[i]);
    uint64_t node = 0, round = 0, key_version = 0, offset = 0;
    AGL_RETURN_IF_ERROR(r.GetVarint64(&node));
    AGL_RETURN_IF_ERROR(r.GetVarint64(&round));
    AGL_RETURN_IF_ERROR(r.GetVarint64(&key_version));
    AGL_RETURN_IF_ERROR(r.GetVarint64(&offset));
    CacheKey key;
    key.node = node;
    key.round = static_cast<int32_t>(static_cast<uint32_t>(round));
    key.version = key_version;
    snap.entries.emplace_back(key, offset);
  }
  return snap;
}

}  // namespace

agl::Result<std::unique_ptr<PersistentEmbeddingStore>>
PersistentEmbeddingStore::Open(mr::LocalDfs* dfs, const std::string& name,
                               const Options& options) {
  if (dfs == nullptr) {
    return agl::Status::InvalidArgument("persistent store needs a DFS");
  }
  if (name.empty()) {
    return agl::Status::InvalidArgument("persistent store needs a name");
  }
  if (options.budget_bytes == 0) {
    return agl::Status::InvalidArgument(
        "persistent store budget_bytes must not be 0 (disabled cache)");
  }
  std::unique_ptr<PersistentEmbeddingStore> store(
      new PersistentEmbeddingStore(dfs, name, options));

  // Try to re-attach the previous incarnation. Everything short of success
  // degrades to a cold start — the store must come up serving either way.
  if (dfs->DatasetExists(store->index_dataset_) &&
      std::filesystem::exists(store->spill_path_)) {
    auto records = dfs->ReadDataset(store->index_dataset_);
    if (records.ok()) {
      auto snap = ParseIndex(*records, options.model_version,
                             options.graph_version);
      if (snap.ok() &&
          store->cache_.RestoreSpill(store->spill_path_, *snap).ok()) {
        store->opened_warm_ = !snap->entries.empty();
      }
    }
  }
  if (!store->opened_warm_) {
    // Cold start. If a spill file already exists (a published index we
    // could not use, or a crashed incarnation), append past it instead of
    // truncating: the old bytes are unreachable from this incarnation, but
    // a still-published index describes that prefix, and clobbering it
    // would orphan the index for any later incarnation it DOES match.
    std::error_code ec;
    const auto size = std::filesystem::file_size(store->spill_path_, ec);
    if (!ec) {
      SpillSnapshot fresh;
      fresh.valid_bytes = size;
      AGL_RETURN_IF_ERROR(
          store->cache_.RestoreSpill(store->spill_path_, fresh));
    } else {
      AGL_RETURN_IF_ERROR(store->cache_.EnableSpill(store->spill_path_));
    }
  }
  return store;
}

agl::Status PersistentEmbeddingStore::Publish() {
  AGL_ASSIGN_OR_RETURN(SpillSnapshot snap, cache_.PublishSpill());
  // Canonical entry order: the published bytes are a deterministic function
  // of the store contents, not of unordered_map iteration order.
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const auto& a, const auto& b) {
              const CacheKey& x = a.first;
              const CacheKey& y = b.first;
              if (x.node != y.node) return x.node < y.node;
              if (x.round != y.round) return x.round < y.round;
              return x.version < y.version;
            });
  std::vector<std::string> records;
  records.reserve(snap.entries.size() + 1);
  records.push_back(EncodeIndexHeader(model_version_, graph_version_,
                                      snap.valid_bytes, snap.entries.size()));
  for (const auto& [key, offset] : snap.entries) {
    records.push_back(EncodeIndexEntry(key, offset));
  }
  // Atomic publish: a crash before the rename leaves the previous index in
  // place, which still describes a valid (shorter) prefix of the spill.
  return dfs_->WriteDataset(index_dataset_, records, /*num_parts=*/1);
}

}  // namespace agl::infer
