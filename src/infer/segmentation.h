// Hierarchical model segmentation (§3.4, step 1): a trained K-layer GNN is
// split into K + 1 slices — one per layer plus the final prediction model.
// Each GraphInfer Reduce round loads exactly one slice and applies it to a
// node given its current embedding and its in-edge neighbors' embeddings.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "gnn/model.h"
#include "tensor/tensor.h"

namespace agl::infer {

/// One model slice: the parameters of a single layer (or of the prediction
/// head for the K+1-th slice).
struct ModelSlice {
  int layer = 0;  // 0..K-1 for GNN layers; K for the prediction slice
  std::map<std::string, tensor::Tensor> params;
};

/// Splits a state dict whose keys follow the GnnModel convention
/// ("layer<k>.<...>") into K layer slices plus one (possibly empty)
/// prediction slice. Unknown keys are an error.
agl::Result<std::vector<ModelSlice>> SegmentModel(
    const std::map<std::string, tensor::Tensor>& state, int num_layers);

/// Number of GNN layers a state dict holds (max "layer<k>." index + 1,
/// strictly parsed; malformed keys are ignored). Lets callers validate a
/// --layers flag against a trained artifact before running the pipeline.
int CountStateLayers(const std::map<std::string, tensor::Tensor>& state);

/// In-edge neighbor of a node during one inference round.
struct NeighborEmbedding {
  uint64_t id = 0;
  /// Weight from the (pre-normalized) adjacency; ignored by GAT slices.
  float weight = 1.f;
  std::vector<float> embedding;
};

/// Applies slice `k` of the model to one destination node, reproducing the
/// corresponding GnnModel::ForwardLayer output row exactly (including the
/// inter-layer activation). `self` is the node's own h^(k); `neighbors`
/// must carry the same (normalized) weights the training-time adjacency
/// had, including the self-loop entry where the model type adds one.
agl::Result<std::vector<float>> ApplySlice(
    const gnn::ModelConfig& config, const ModelSlice& slice,
    const std::vector<float>& self,
    const std::vector<NeighborEmbedding>& neighbors);

/// Applies the prediction slice: maps the final embedding to the output
/// scores (identity head followed by softmax for classification tasks).
std::vector<float> ApplyPredictionSlice(const gnn::ModelConfig& config,
                                        const std::vector<float>& embedding);

}  // namespace agl::infer
