#include "infer/original.h"

#include <algorithm>

#include "common/timer.h"
#include "subgraph/batch.h"
#include "trainer/trainer.h"

namespace agl::infer {

agl::Status OriginalInferenceConfig::Validate() const {
  if (model.num_layers < 1) {
    return agl::Status::InvalidArgument(
        "OriginalInferenceConfig: model.num_layers must be >= 1");
  }
  if (model.in_dim <= 0 || model.hidden_dim <= 0 || model.out_dim <= 0) {
    return agl::Status::InvalidArgument(
        "OriginalInferenceConfig: model dimensions must be positive");
  }
  if (batch_size < 1) {
    return agl::Status::InvalidArgument(
        "OriginalInferenceConfig: batch_size must be >= 1");
  }
  // hops/targets are overridden by the driver; validate the rest.
  return flat.Validate();
}

agl::Result<OriginalResult> RunOriginalInference(
    const OriginalInferenceConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges) {
  Stopwatch total_watch;
  const double cpu_start = ProcessCpuSeconds();
  OriginalResult result;

  // Phase 1: GraphFlat over every node.
  flat::GraphFlatConfig flat_config = config.flat;
  flat_config.hops = config.model.num_layers;
  flat_config.targets = flat::GraphFlatConfig::Targets::kAllNodes;
  Stopwatch flat_watch;
  flat::GraphFlatStats flat_stats;
  AGL_ASSIGN_OR_RETURN(
      std::vector<subgraph::GraphFeature> features,
      flat::RunGraphFlatInMemory(flat_config, nodes, edges, &flat_stats));
  result.flat_seconds = flat_watch.Seconds();

  // Memory-cost proxy: every GraphFeature is materialized (this is the
  // "Original" module's bulk — overlapping neighborhoods are replicated).
  int64_t feature_bytes = 0;
  for (const subgraph::GraphFeature& gf : features) {
    feature_bytes +=
        gf.node_features.size() * static_cast<int64_t>(sizeof(float)) +
        gf.num_edges() * 3 * static_cast<int64_t>(sizeof(int64_t));
  }

  // Phase 2: forward pass per batch of GraphFeatures. Every node in every
  // neighborhood gets its embeddings recomputed — count them.
  gnn::GnnModel model(config.model);
  AGL_RETURN_IF_ERROR(model.LoadStateDict(state));
  Rng rng(config.model.seed);
  Stopwatch fwd_watch;
  int64_t embedding_evals = 0;
  const std::size_t bs =
      static_cast<std::size_t>(std::max(1, config.batch_size));
  for (std::size_t s = 0; s < features.size(); s += bs) {
    const std::size_t e = std::min(features.size(), s + bs);
    const subgraph::VectorizedBatch vec =
        subgraph::MergeAndVectorize(std::span<const subgraph::GraphFeature>(
            features.data() + s, e - s));
    const gnn::PreparedBatch prepared = model.Prepare(vec);
    autograd::Variable logits =
        model.Forward(prepared, /*training=*/false, &rng);
    // Each layer evaluates an embedding for every (remaining) node row.
    for (const auto& adj : prepared.layer_adj) {
      embedding_evals += adj->matrix().rows();
    }
    const tensor::Tensor probs = tensor::RowSoftmax(logits.value());
    for (std::size_t i = s; i < e; ++i) {
      const float* row = probs.row(static_cast<int64_t>(i - s));
      result.scores.emplace_back(
          features[i].target_id,
          std::vector<float>(row, row + probs.cols()));
    }
  }
  result.forward_seconds = fwd_watch.Seconds();

  std::sort(result.scores.begin(), result.scores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  result.costs.time_seconds = total_watch.Seconds();
  result.costs.cpu_core_minutes = (ProcessCpuSeconds() - cpu_start) / 60.0;
  result.costs.memory_gb_minutes =
      static_cast<double>(feature_bytes) / (1024.0 * 1024.0 * 1024.0) *
      (result.costs.time_seconds / 60.0);
  result.costs.embedding_evaluations = embedding_evals;
  return result;
}

}  // namespace agl::infer
