// The narrow store interface behind batched GraphInfer's segment-embedding
// reuse: (node, round, model_version) -> embedding bytes.
//
// Two implementations live behind it: the in-memory LRU `EmbeddingCache`
// (optionally spilling evictions to a record_file) and the
// `PersistentEmbeddingStore` that additionally publishes its spill + offset
// index through the crash-consistent LocalDfs path so a restarted process
// re-opens the store warm. The inference core only sees this interface, so
// a serving loop can hand the same store to many inference passes.
//
// Contract: a store is a pure optimization layer. Every Lookup hit must
// return bytes bit-identical to what the reducer would recompute for that
// key on the current graph; when the graph changes, the owner must
// Invalidate the affected (node, round) range before the next Lookup.
// Any internal failure degrades to a miss, never to a wrong answer.

#pragma once

#include <cstdint>
#include <vector>

#include "infer/cache_key.h"

namespace agl::infer {

class EmbeddingStore {
 public:
  virtual ~EmbeddingStore() = default;

  /// False = the store ignores all traffic (Lookups miss silently, Inserts
  /// drop). Callers may skip encoding work when disabled.
  virtual bool enabled() const = 0;

  /// Returns true and fills `*out` when `key` is resident.
  virtual bool Lookup(const CacheKey& key, std::vector<float>* out) = 0;

  /// Admits `embedding` under `key`. Values are immutable per key: an
  /// insert over an existing entry must not change its bytes.
  virtual void Insert(const CacheKey& key,
                      const std::vector<float>& embedding) = 0;

  /// Drops every entry for `node` with round >= `min_round` (all model
  /// versions). The serving layer calls this when a mutation dirties a
  /// node's round-`min_round` embedding: deeper rounds at that node
  /// transitively depend on it, shallower ones do not.
  virtual void Invalidate(uint64_t node, int32_t min_round) = 0;

  virtual EmbeddingCacheStats stats() const = 0;
};

}  // namespace agl::infer
