// The "Original" inference baseline of Table 5: generate a GraphFeature per
// target node with GraphFlat, then run the forward pass on each
// neighborhood independently. Overlapping neighborhoods recompute shared
// intermediate embeddings, which is exactly the repetition GraphInfer
// eliminates.

#pragma once

#include <map>
#include <vector>

#include "common/status.h"
#include "flat/graphflat.h"
#include "infer/graphinfer.h"

namespace agl::infer {

struct OriginalInferenceConfig {
  gnn::ModelConfig model;
  flat::GraphFlatConfig flat;
  /// Targets per forward batch.
  int batch_size = 64;

  /// Structural validation, called up front by the `agl::Run` facade.
  agl::Status Validate() const;
};

/// Runs GraphFlat (targets = all nodes) followed by per-batch forward
/// passes. Returns scores in the same format as RunGraphInfer, with costs
/// split between the two phases (the paper reports GraphFlat + forward
/// separately; `costs` here is the total and `flat_seconds` /
/// `forward_seconds` the split).
struct OriginalResult {
  std::vector<std::pair<flat::NodeId, std::vector<float>>> scores;
  InferCosts costs;
  double flat_seconds = 0;
  double forward_seconds = 0;
};

agl::Result<OriginalResult> RunOriginalInference(
    const OriginalInferenceConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges);

}  // namespace agl::infer
