// GraphInfer (§3.4): distributed MapReduce inference with model slices.
//
// A trained K-layer model is segmented into K+1 slices. The pipeline runs
// the message-passing scheme K+1 times: round k merges each node's in-edge
// neighbors' layer-(k-1) embeddings through slice k and propagates the new
// embedding along out-edges; the last round applies the prediction slice.
// Every node's layer-k embedding is computed exactly once — this is the
// source of the Table 5 win over per-GraphFeature ("Original") inference,
// whose overlapping neighborhoods recompute shared embeddings many times.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "flat/tables.h"
#include "gnn/model.h"
#include "mr/mapreduce.h"

namespace agl::infer {

struct InferConfig {
  gnn::ModelConfig model;
  mr::JobConfig job;
  /// Logical MapReduce shards, mirroring GraphFlat's sharding: records are
  /// hash-partitioned by node key, one job runs per shard per round, and
  /// boundary embeddings are exchanged between rounds. Scores are invariant
  /// to this value (bit-exact: the engine's canonical value ordering fixes
  /// the float accumulation order).
  int num_shards = 1;
  /// When non-empty, inference runs only for these target nodes and the
  /// pipeline is pruned to their K-hop in-neighborhoods (§3.4: "the
  /// pruning strategy similar to that in GraphTrainer also works in this
  /// pipeline in the case the inference task is performed over a part of
  /// the entire graph"). Scores are returned for exactly these ids.
  std::vector<flat::NodeId> target_ids;
};

/// Cost accounting in the paper's Table 5 units.
struct InferCosts {
  double time_seconds = 0;
  double cpu_core_minutes = 0;
  /// Integral of live record bytes over round durations.
  double memory_gb_minutes = 0;
  /// Embedding evaluations performed (layer applications per node); the
  /// Original baseline repeats these across overlapping neighborhoods.
  int64_t embedding_evaluations = 0;
};

struct InferResult {
  /// Predicted score vector per node, sorted by node id.
  std::vector<std::pair<flat::NodeId, std::vector<float>>> scores;
  InferCosts costs;
};

/// Runs distributed inference over the full node/edge tables with a trained
/// state dict (GnnModel::StateDict / TrainReport::final_state).
agl::Result<InferResult> RunGraphInfer(
    const InferConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges);

}  // namespace agl::infer
