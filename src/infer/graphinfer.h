// GraphInfer (§3.4): distributed MapReduce inference with model slices.
//
// A trained K-layer model is segmented into K+1 slices. The pipeline runs
// the message-passing scheme K+1 times: round k merges each node's in-edge
// neighbors' layer-(k-1) embeddings through slice k and propagates the new
// embedding along out-edges; the last round applies the prediction slice.
// Every node's layer-k embedding is computed exactly once — this is the
// source of the Table 5 win over per-GraphFeature ("Original") inference,
// whose overlapping neighborhoods recompute shared embeddings many times.
//
// RunGraphInferBatched extends the win *across* pipeline runs: the target
// nodes are partitioned into slices that flow through the rounds one after
// another, and a cross-slice EmbeddingCache lets round r of a later slice
// reuse any segment embedding an earlier slice already materialized,
// instead of re-deriving the overlapping K-hop halos from scratch.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "flat/tables.h"
#include "gnn/model.h"
#include "mr/mapreduce.h"

namespace agl::infer {

class EmbeddingStore;

struct InferConfig {
  gnn::ModelConfig model;
  mr::JobConfig job;
  /// Logical MapReduce shards, mirroring GraphFlat's sharding: records are
  /// hash-partitioned by node key, one job runs per shard per round, and
  /// boundary embeddings are exchanged between rounds. Scores are invariant
  /// to this value (bit-exact: the engine's canonical value ordering fixes
  /// the float accumulation order).
  int num_shards = 1;
  /// When non-empty, inference runs only for these target nodes and the
  /// pipeline is pruned to their K-hop in-neighborhoods (§3.4: "the
  /// pruning strategy similar to that in GraphTrainer also works in this
  /// pipeline in the case the inference task is performed over a part of
  /// the entire graph"). Scores are returned for exactly these ids.
  std::vector<flat::NodeId> target_ids;

  // --- Batched driver (RunGraphInferBatched) only -----------------------
  /// Number of slices the targets are partitioned into; each slice runs
  /// the full MapReduce round schedule over its pruned K-hop neighborhood.
  /// Scores are bit-identical to running the slices independently through
  /// RunGraphInfer, for every (batch_slices, num_shards, cache budget)
  /// combination.
  int batch_slices = 1;
  /// Resident byte budget of the cross-slice segment-embedding cache:
  /// 0 disables the cache entirely, negative means unbounded.
  int64_t cache_budget_bytes = 0;
  /// When non-empty and the cache is enabled, budget evictions spill to
  /// this record_file (park it under a LocalDfs root to emulate the
  /// paper's DFS) instead of being dropped, so a budget smaller than the
  /// working set still serves cross-slice hits.
  std::string cache_spill_path;

  /// Structural validation, called up front by every `agl::Run` facade
  /// entry point (and usable directly): shape/range errors surface as
  /// kInvalidArgument before any work runs.
  agl::Status Validate() const;
};

/// Cost accounting in the paper's Table 5 units.
struct InferCosts {
  double time_seconds = 0;
  double cpu_core_minutes = 0;
  /// Integral of live record bytes over round durations.
  double memory_gb_minutes = 0;
  /// Embedding evaluations performed (layer applications per node); the
  /// Original baseline repeats these across overlapping neighborhoods, and
  /// the batched driver's cache hits skip them entirely.
  int64_t embedding_evaluations = 0;

  // Cross-slice EmbeddingCache counters (zero outside the batched driver).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_spilled = 0;
  int64_t cache_spill_hits = 0;
  int64_t cache_spill_failures = 0;
};

struct InferResult {
  /// Predicted score vector per node, sorted by node id.
  std::vector<std::pair<flat::NodeId, std::vector<float>>> scores;
  InferCosts costs;
  /// Target slices the batched driver actually ran (1 for RunGraphInfer).
  int num_slices = 1;
};

/// Runs distributed inference over the full node/edge tables with a trained
/// state dict (GnnModel::StateDict / TrainReport::final_state).
agl::Result<InferResult> RunGraphInfer(
    const InferConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges);

/// Batched inference: partitions `config.target_ids` (or every node id when
/// empty) into `config.batch_slices` slices via PartitionTargets, runs the
/// sliced pipeline per slice, and shares one EmbeddingCache across the
/// slices so overlapping neighborhood embeddings are evaluated once.
/// Scores are bit-identical to per-slice RunGraphInfer runs.
agl::Result<InferResult> RunGraphInferBatched(
    const InferConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges);

/// Same, but reusing a caller-owned EmbeddingStore instead of a cache local
/// to the call — the serving loop hands every pass the same (persistent)
/// store so embeddings survive across requests and process restarts. The
/// store's entries must fingerprint the same weights as `state`
/// (CacheKey.version == StateFingerprint(state)); `config.cache_budget_bytes`
/// and `config.cache_spill_path` are ignored. The cache counters in
/// InferCosts report this call's delta, not the store's lifetime totals.
agl::Result<InferResult> RunGraphInferBatched(
    const InferConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<flat::NodeRecord>& nodes,
    const std::vector<flat::EdgeRecord>& edges, EmbeddingStore* store);

/// Deterministic contiguous partition of `targets` into at most
/// `batch_slices` non-empty slices (duplicates dropped, first occurrence
/// kept, caller order preserved). Shared by the batched driver and the
/// batched-vs-unbatched equivalence tests.
std::vector<std::vector<flat::NodeId>> PartitionTargets(
    const std::vector<flat::NodeId>& targets, int batch_slices);

/// FNV-1a fingerprint of a trained state dict (keys, shapes, raw values) —
/// the model_version component of the embedding-cache key.
uint64_t StateFingerprint(const std::map<std::string, tensor::Tensor>& state);

}  // namespace agl::infer
