#include "infer/embedding_cache.h"

#include "common/failpoint.h"
#include "io/codec.h"

namespace agl::infer {
namespace {

std::string EncodeSpillRecord(const CacheKey& key,
                              const std::vector<float>& embedding) {
  io::BufferWriter w;
  w.PutVarint64(key.node);
  w.PutVarint64(static_cast<uint64_t>(static_cast<uint32_t>(key.round)));
  w.PutVarint64(key.version);
  w.PutFloatArray(embedding);
  return w.Release();
}

agl::Status DecodeSpillRecord(const std::string& bytes, CacheKey* key,
                              std::vector<float>* embedding) {
  io::BufferReader r(bytes);
  uint64_t node, round, version;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&node));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&round));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&version));
  AGL_RETURN_IF_ERROR(r.GetFloatArray(embedding));
  key->node = node;
  key->round = static_cast<int32_t>(static_cast<uint32_t>(round));
  key->version = version;
  return agl::Status::OK();
}

}  // namespace

agl::Status EmbeddingCache::EnableSpill(const std::string& path) {
  common::MutexLock lock(&mu_);
  AGL_ASSIGN_OR_RETURN(io::RecordWriter writer, io::RecordWriter::Open(path));
  spill_writer_.emplace(std::move(writer));
  spill_reader_.reset();
  spill_offset_.clear();
  spill_flushed_bytes_ = 0;
  spill_path_ = path;
  return agl::Status::OK();
}

agl::Status EmbeddingCache::RestoreSpill(const std::string& path,
                                         const SpillSnapshot& snap) {
  common::MutexLock lock(&mu_);
  AGL_ASSIGN_OR_RETURN(io::RecordWriter writer,
                       io::RecordWriter::OpenAppend(path, snap.valid_bytes));
  spill_writer_.emplace(std::move(writer));
  spill_reader_.reset();
  spill_offset_.clear();
  for (const auto& [key, offset] : snap.entries) {
    // Defensive: an offset at or past the durable prefix points into the
    // truncated tail; admitting it would read garbage, so drop it.
    if (offset < snap.valid_bytes) spill_offset_[key] = offset;
  }
  spill_flushed_bytes_ = snap.valid_bytes;
  spill_path_ = path;
  return agl::Status::OK();
}

agl::Result<SpillSnapshot> EmbeddingCache::PublishSpill() {
  common::MutexLock lock(&mu_);
  if (!spill_writer_.has_value()) {
    return agl::Status::FailedPrecondition("no spill file configured");
  }
  // Park every RAM-resident entry in the spill file so the snapshot covers
  // the full working set, not just what the budget already evicted.
  for (const Entry& e : lru_) {
    if (spill_offset_.find(e.key) != spill_offset_.end()) continue;
    AGL_RETURN_IF_ERROR(SpillAppendLocked(e.key, e.embedding));
  }
  // One durability point for the whole batch.
  agl::Status synced = spill_writer_->Sync();
  if (!synced.ok()) {
    ++stats_.spill_failures;
    return synced;
  }
  spill_flushed_bytes_ = spill_writer_->bytes_written();
  SpillSnapshot snap;
  snap.valid_bytes = spill_flushed_bytes_;
  snap.entries.assign(spill_offset_.begin(), spill_offset_.end());
  return snap;
}

bool EmbeddingCache::Lookup(const CacheKey& key, std::vector<float>* out) {
  if (!enabled()) return false;
  common::MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->embedding;
    ++stats_.hits;
    return true;
  }
  if (SpillLookupLocked(key, out)) {
    ++stats_.hits;
    ++stats_.spill_hits;
    // Re-admit: the entry is hot again. Its spill offset stays valid, so a
    // later re-eviction is free.
    AdmitLocked(key, *out);
    return true;
  }
  ++stats_.misses;
  return false;
}

void EmbeddingCache::Insert(const CacheKey& key,
                            const std::vector<float>& embedding) {
  if (!enabled()) return;
  common::MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Values are immutable per key: only refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  AdmitLocked(key, embedding);
}

void EmbeddingCache::Invalidate(uint64_t node, int32_t min_round) {
  if (!enabled()) return;
  common::MutexLock lock(&mu_);
  for (auto it = index_.begin(); it != index_.end();) {
    if (it->first.node == node && it->first.round >= min_round) {
      stats_.resident_bytes -= EntryBytes(it->second->embedding);
      lru_.erase(it->second);
      it = index_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
  // The spilled bytes stay in the file (it is append-only); forgetting the
  // offset is what makes the entry unreachable.
  for (auto it = spill_offset_.begin(); it != spill_offset_.end();) {
    if (it->first.node == node && it->first.round >= min_round) {
      it = spill_offset_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

EmbeddingCacheStats EmbeddingCache::stats() const {
  common::MutexLock lock(&mu_);
  EmbeddingCacheStats out = stats_;
  out.resident_entries = static_cast<int64_t>(lru_.size());
  return out;
}

void EmbeddingCache::AdmitLocked(const CacheKey& key,
                                 std::vector<float> embedding) {
  stats_.resident_bytes += EntryBytes(embedding);
  lru_.push_front(Entry{key, std::move(embedding)});
  index_[key] = lru_.begin();
  ++stats_.inserts;
  if (bounded()) {
    while (stats_.resident_bytes > budget_bytes_ && !lru_.empty()) {
      EvictOneLocked();
    }
  }
}

void EmbeddingCache::EvictOneLocked() {
  Entry& victim = lru_.back();
  if (spill_writer_.has_value() &&
      spill_offset_.find(victim.key) == spill_offset_.end()) {
    // A failed append degrades the eviction to a plain drop — correctness
    // holds, the entry is just recomputed on the next miss.
    (void)SpillAppendLocked(victim.key, victim.embedding);
  }
  stats_.resident_bytes -= EntryBytes(victim.embedding);
  index_.erase(victim.key);
  lru_.pop_back();
  ++stats_.evictions;
}

agl::Status EmbeddingCache::SpillAppendLocked(
    const CacheKey& key, const std::vector<float>& embedding) {
  // Failpoint "infer.spill": an injected fault fails this spill write only.
  agl::Status s = fail::MaybeFail("infer.spill");
  if (s.ok()) {
    const uint64_t offset = spill_writer_->bytes_written();
    s = spill_writer_->Append(EncodeSpillRecord(key, embedding));
    if (s.ok()) {
      // Buffered append: the bytes reach the reader lazily (flush before a
      // read past spill_flushed_bytes_) and stable storage on PublishSpill.
      spill_offset_[key] = offset;
      ++stats_.spilled;
    }
  }
  if (!s.ok()) ++stats_.spill_failures;
  return s;
}

bool EmbeddingCache::SpillLookupLocked(const CacheKey& key,
                                       std::vector<float>* out) {
  auto it = spill_offset_.find(key);
  if (it == spill_offset_.end() || !spill_writer_.has_value()) return false;
  // Failpoint "infer.spill": an injected read fault is transient — count
  // it and miss, but keep the offset so a later lookup can still be
  // served.
  if (agl::Status injected = fail::MaybeFail("infer.spill");
      !injected.ok()) {
    ++stats_.spill_failures;
    return false;
  }
  agl::Status s = agl::Status::OK();
  // The target record may still sit in the writer's stdio buffer; push the
  // batch down before reading past the flushed prefix. Offsets are record
  // starts and the boundary is a record boundary, so a record is fully
  // visible iff it starts below the boundary.
  if (it->second >= spill_flushed_bytes_) {
    s = spill_writer_->Flush();
    if (s.ok()) spill_flushed_bytes_ = spill_writer_->bytes_written();
  }
  if (s.ok() && !spill_reader_.has_value()) {
    auto reader = io::RecordReader::Open(spill_path_);
    if (reader.ok()) {
      spill_reader_.emplace(std::move(*reader));
    } else {
      s = reader.status();
    }
  }
  std::string bytes;
  if (s.ok()) s = spill_reader_->SeekTo(it->second);
  if (s.ok()) s = spill_reader_->Next(&bytes);
  CacheKey stored;
  if (s.ok()) s = DecodeSpillRecord(bytes, &stored, out);
  if (s.ok() && !(stored == key)) {
    s = agl::Status::Corruption("spill entry key mismatch");
  }
  if (!s.ok()) {
    // A failed read (injected fault, torn write, bad offset) is just a
    // miss; drop the offset so we stop consulting a bad slot.
    spill_offset_.erase(it);
    ++stats_.spill_failures;
    return false;
  }
  return true;
}

}  // namespace agl::infer
