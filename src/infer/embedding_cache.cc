#include "infer/embedding_cache.h"

#include "common/failpoint.h"
#include "io/codec.h"

namespace agl::infer {
namespace {

std::string EncodeSpillRecord(const CacheKey& key,
                              const std::vector<float>& embedding) {
  io::BufferWriter w;
  w.PutVarint64(key.node);
  w.PutVarint64(static_cast<uint64_t>(static_cast<uint32_t>(key.round)));
  w.PutVarint64(key.version);
  w.PutFloatArray(embedding);
  return w.Release();
}

agl::Status DecodeSpillRecord(const std::string& bytes, CacheKey* key,
                              std::vector<float>* embedding) {
  io::BufferReader r(bytes);
  uint64_t node, round, version;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&node));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&round));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&version));
  AGL_RETURN_IF_ERROR(r.GetFloatArray(embedding));
  key->node = node;
  key->round = static_cast<int32_t>(static_cast<uint32_t>(round));
  key->version = version;
  return agl::Status::OK();
}

}  // namespace

agl::Status EmbeddingCache::EnableSpill(const std::string& path) {
  common::MutexLock lock(&mu_);
  AGL_ASSIGN_OR_RETURN(io::RecordWriter writer, io::RecordWriter::Open(path));
  spill_writer_.emplace(std::move(writer));
  spill_reader_.reset();
  spill_offset_.clear();
  spill_path_ = path;
  return agl::Status::OK();
}

bool EmbeddingCache::Lookup(const CacheKey& key, std::vector<float>* out) {
  if (!enabled()) return false;
  common::MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->embedding;
    ++stats_.hits;
    return true;
  }
  if (SpillLookupLocked(key, out)) {
    ++stats_.hits;
    ++stats_.spill_hits;
    // Re-admit: the entry is hot again. Its spill offset stays valid, so a
    // later re-eviction is free.
    AdmitLocked(key, *out);
    return true;
  }
  ++stats_.misses;
  return false;
}

void EmbeddingCache::Insert(const CacheKey& key,
                            const std::vector<float>& embedding) {
  if (!enabled()) return;
  common::MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Values are immutable per key: only refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  AdmitLocked(key, embedding);
}

EmbeddingCacheStats EmbeddingCache::stats() const {
  common::MutexLock lock(&mu_);
  EmbeddingCacheStats out = stats_;
  out.resident_entries = static_cast<int64_t>(lru_.size());
  return out;
}

void EmbeddingCache::AdmitLocked(const CacheKey& key,
                                 std::vector<float> embedding) {
  stats_.resident_bytes += EntryBytes(embedding);
  lru_.push_front(Entry{key, std::move(embedding)});
  index_[key] = lru_.begin();
  ++stats_.inserts;
  if (bounded()) {
    while (stats_.resident_bytes > budget_bytes_ && !lru_.empty()) {
      EvictOneLocked();
    }
  }
}

void EmbeddingCache::EvictOneLocked() {
  Entry& victim = lru_.back();
  if (spill_writer_.has_value() &&
      spill_offset_.find(victim.key) == spill_offset_.end()) {
    // Failpoint "infer.spill": an injected fault fails this spill write
    // only; the entry degrades to a plain drop and correctness holds.
    agl::Status s = fail::MaybeFail("infer.spill");
    if (s.ok()) {
      const uint64_t offset = spill_writer_->bytes_written();
      s = spill_writer_->Append(
          EncodeSpillRecord(victim.key, victim.embedding));
      // Eager flush: the reader shares the file, and an entry whose bytes
      // only live in the stdio buffer would read back torn.
      if (s.ok()) s = spill_writer_->Flush();
      if (s.ok()) {
        spill_offset_[victim.key] = offset;
        ++stats_.spilled;
      }
    }
    if (!s.ok()) ++stats_.spill_failures;  // degraded to a plain drop
  }
  stats_.resident_bytes -= EntryBytes(victim.embedding);
  index_.erase(victim.key);
  lru_.pop_back();
  ++stats_.evictions;
}

bool EmbeddingCache::SpillLookupLocked(const CacheKey& key,
                                       std::vector<float>* out) {
  auto it = spill_offset_.find(key);
  if (it == spill_offset_.end() || !spill_writer_.has_value()) return false;
  // Failpoint "infer.spill": an injected read fault is transient — count
  // it and miss, but keep the offset so a later lookup can still be
  // served.
  if (agl::Status injected = fail::MaybeFail("infer.spill");
      !injected.ok()) {
    ++stats_.spill_failures;
    return false;
  }
  agl::Status s = agl::Status::OK();
  if (!spill_reader_.has_value()) {
    auto reader = io::RecordReader::Open(spill_path_);
    if (reader.ok()) {
      spill_reader_.emplace(std::move(*reader));
    } else {
      s = reader.status();
    }
  }
  std::string bytes;
  if (s.ok()) s = spill_reader_->SeekTo(it->second);
  if (s.ok()) s = spill_reader_->Next(&bytes);
  CacheKey stored;
  if (s.ok()) s = DecodeSpillRecord(bytes, &stored, out);
  if (s.ok() && !(stored == key)) {
    s = agl::Status::Corruption("spill entry key mismatch");
  }
  if (!s.ok()) {
    // A failed read (injected fault, torn write, bad offset) is just a
    // miss; drop the offset so we stop consulting a bad slot.
    spill_offset_.erase(it);
    ++stats_.spill_failures;
    return false;
  }
  return true;
}

}  // namespace agl::infer
