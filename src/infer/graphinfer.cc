#include "infer/graphinfer.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "flat/shard.h"
#include "infer/segmentation.h"
#include "io/codec.h"
#include "tensor/sparse.h"

namespace agl::infer {
namespace {

using flat::EdgeRecord;
using flat::NodeId;
using flat::NodeRecord;

// Record tags.
constexpr char kTagEmb = 'H';       // self embedding
constexpr char kTagInStub = 'I';    // in-edge: (src, normalized weight)
constexpr char kTagOutEdge = 'O';   // out-edge: (dst)
constexpr char kTagNeighbor = 'P';  // propagated neighbor embedding
constexpr char kTagScore = 'F';     // final predicted scores

std::string EncodeEmbedding(NodeId id, const std::vector<float>& h) {
  io::BufferWriter w;
  w.PutVarint64(id);
  w.PutFloatArray(h);
  return w.Release();
}

agl::Status DecodeEmbedding(const std::string& bytes, NodeId* id,
                            std::vector<float>* h) {
  io::BufferReader r(bytes);
  AGL_RETURN_IF_ERROR(r.GetVarint64(id));
  return r.GetFloatArray(h);
}

std::string EncodeStub(NodeId src, float weight) {
  io::BufferWriter w;
  w.PutVarint64(src);
  w.PutFloat(weight);
  return w.Release();
}

agl::Status DecodeStub(const std::string& bytes, NodeId* src, float* weight) {
  io::BufferReader r(bytes);
  AGL_RETURN_IF_ERROR(r.GetVarint64(src));
  return r.GetFloat(weight);
}

std::string Tagged(char tag, const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 1);
  out.push_back(tag);
  out.append(payload);
  return out;
}

struct RoundContext {
  int round = 0;       // 0 = propagation bootstrap; 1..K layer slices;
                       // K+1 = prediction slice
  int num_layers = 0;
  gnn::ModelConfig model;
  const std::vector<ModelSlice>* slices = nullptr;
  std::atomic<int64_t>* embedding_evals = nullptr;
};

/// One GraphInfer Reduce round. Round 0 only bootstraps propagation (our
/// node/edge tables are not pre-joined; see GraphFlat's round-0 note).
/// Rounds 1..K apply slice k-1; round K+1 applies the prediction slice.
class InferReducer : public mr::Reducer {
 public:
  explicit InferReducer(const RoundContext& ctx) : ctx_(ctx) {}

  agl::Status Reduce(const std::string& key,
                     const std::vector<std::string>& values,
                     mr::Emitter* out) override {
    std::vector<float> self_emb;
    bool have_self = false;
    std::vector<NeighborEmbedding> neighbors;
    std::vector<std::pair<NodeId, float>> in_stubs;
    std::vector<std::string> out_edges;
    std::vector<std::pair<NodeId, std::vector<float>>> arrived;

    for (const std::string& v : values) {
      if (v.empty()) return agl::Status::Corruption("empty infer value");
      const std::string payload = v.substr(1);
      switch (v[0]) {
        case kTagEmb: {
          NodeId id;
          AGL_RETURN_IF_ERROR(DecodeEmbedding(payload, &id, &self_emb));
          have_self = true;
          break;
        }
        case kTagInStub: {
          NodeId src;
          float w;
          AGL_RETURN_IF_ERROR(DecodeStub(payload, &src, &w));
          in_stubs.emplace_back(src, w);
          break;
        }
        case kTagOutEdge:
          out_edges.push_back(payload);
          break;
        case kTagNeighbor: {
          NodeId src;
          std::vector<float> h;
          AGL_RETURN_IF_ERROR(DecodeEmbedding(payload, &src, &h));
          arrived.emplace_back(src, std::move(h));
          break;
        }
        default:
          return agl::Status::Corruption("unknown infer tag");
      }
    }
    if (!have_self) {
      // Structure-only node (no node-table row): drop.
      return agl::Status::OK();
    }
    const NodeId self_id = static_cast<NodeId>(std::stoull(key));

    std::vector<float> new_emb;
    if (ctx_.round == 0) {
      new_emb = self_emb;  // bootstrap: propagate raw features
    } else if (ctx_.round <= ctx_.num_layers) {
      // Join arrived neighbor embeddings with the normalized in-edge
      // weights; the self-loop stub (src == self) uses the self embedding.
      std::unordered_map<NodeId, const std::vector<float>*> by_src;
      by_src.reserve(arrived.size());
      for (const auto& [aid, h] : arrived) by_src.emplace(aid, &h);
      neighbors.reserve(in_stubs.size());
      for (const auto& [src, w] : in_stubs) {
        if (src == self_id) {
          neighbors.push_back({src, w, self_emb});
          continue;
        }
        auto it = by_src.find(src);
        if (it != by_src.end()) neighbors.push_back({src, w, *it->second});
      }
      AGL_ASSIGN_OR_RETURN(
          new_emb, ApplySlice(ctx_.model, (*ctx_.slices)[ctx_.round - 1],
                              self_emb, neighbors));
      ctx_.embedding_evals->fetch_add(1, std::memory_order_relaxed);
    } else {
      // Prediction round: output scores, nothing else.
      const std::vector<float> scores =
          ApplyPredictionSlice(ctx_.model, self_emb);
      out->Emit(key, Tagged(kTagScore, EncodeEmbedding(self_id, scores)));
      return agl::Status::OK();
    }

    // Propagate the new embedding along out-edges for the next round and
    // carry the structure forward.
    const bool propagate = ctx_.round < ctx_.num_layers;
    const std::string emb_bytes = EncodeEmbedding(self_id, new_emb);
    if (propagate) {
      for (const std::string& payload : out_edges) {
        io::BufferReader r(payload);
        uint64_t dst;
        AGL_RETURN_IF_ERROR(r.GetVarint64(&dst));
        out->Emit(std::to_string(dst), Tagged(kTagNeighbor, emb_bytes));
      }
      for (const std::string& payload : out_edges) {
        out->Emit(key, Tagged(kTagOutEdge, payload));
      }
      for (const auto& [src, w] : in_stubs) {
        out->Emit(key, Tagged(kTagInStub, EncodeStub(src, w)));
      }
    }
    out->Emit(key, Tagged(kTagEmb, emb_bytes));
    return agl::Status::OK();
  }

 private:
  RoundContext ctx_;
};

}  // namespace

agl::Result<InferResult> RunGraphInfer(
    const InferConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges) {
  if (nodes.empty()) {
    return agl::Status::InvalidArgument("GraphInfer: empty node table");
  }
  Stopwatch watch;
  const double cpu_start = ProcessCpuSeconds();

  // Target-subset pruning: restrict the pipeline to the union of the
  // targets' K-hop in-neighborhoods. Nodes outside can never influence a
  // target's embedding (Theorem 1), so dropping them up front is the
  // inference-side analogue of the trainer's graph pruning.
  if (!config.target_ids.empty()) {
    std::unordered_map<NodeId, std::vector<std::pair<NodeId, float>>>
        in_edges_of;
    for (const EdgeRecord& e : edges) {
      in_edges_of[e.dst].emplace_back(e.src, e.weight);
    }
    std::unordered_set<NodeId> keep(config.target_ids.begin(),
                                    config.target_ids.end());
    std::vector<NodeId> frontier(keep.begin(), keep.end());
    for (int hop = 0; hop < config.model.num_layers; ++hop) {
      std::vector<NodeId> next;
      for (NodeId v : frontier) {
        auto it = in_edges_of.find(v);
        if (it == in_edges_of.end()) continue;
        for (const auto& [src, w] : it->second) {
          if (keep.insert(src).second) next.push_back(src);
        }
      }
      frontier = std::move(next);
    }
    std::vector<NodeRecord> pruned_nodes;
    for (const NodeRecord& n : nodes) {
      if (keep.count(n.id) > 0) pruned_nodes.push_back(n);
    }
    std::vector<EdgeRecord> pruned_edges;
    for (const EdgeRecord& e : edges) {
      if (keep.count(e.src) > 0 && keep.count(e.dst) > 0) {
        pruned_edges.push_back(e);
      }
    }
    InferConfig sub_config = config;
    sub_config.target_ids.clear();
    AGL_ASSIGN_OR_RETURN(
        InferResult sub,
        RunGraphInfer(sub_config, state, pruned_nodes, pruned_edges));
    // Keep only the requested targets (neighborhood nodes were computed
    // with possibly pruned in-neighborhoods of their own).
    std::unordered_set<NodeId> wanted(config.target_ids.begin(),
                                      config.target_ids.end());
    InferResult out;
    out.costs = sub.costs;
    for (auto& entry : sub.scores) {
      if (wanted.count(entry.first) > 0) out.scores.push_back(std::move(entry));
    }
    out.costs.time_seconds = watch.Seconds();
    return out;
  }

  AGL_ASSIGN_OR_RETURN(std::vector<ModelSlice> slices,
                       SegmentModel(state, config.model.num_layers));

  // Pre-normalize the adjacency exactly as the trainer does (our stand-in
  // for the paper's degree-joining preprocessing): each in-edge stub carries
  // its normalized weight, self-loops included where the model adds them.
  std::unordered_map<NodeId, int64_t> local_of;
  local_of.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    local_of.emplace(nodes[i].id, static_cast<int64_t>(i));
  }
  std::vector<tensor::CooEntry> entries;
  entries.reserve(edges.size());
  for (const EdgeRecord& e : edges) {
    auto sit = local_of.find(e.src);
    auto dit = local_of.find(e.dst);
    if (sit == local_of.end() || dit == local_of.end()) {
      return agl::Status::NotFound("edge references missing node");
    }
    entries.push_back({dit->second, sit->second, e.weight});
  }
  gnn::GnnModel model_for_norm(config.model);
  const tensor::SparseMatrix norm = model_for_norm.NormalizeAdjacency(
      tensor::SparseMatrix::FromCoo(static_cast<int64_t>(nodes.size()),
                                    static_cast<int64_t>(nodes.size()),
                                    std::move(entries)));

  // Map-equivalent bootstrap input: self embeddings (raw features), in-edge
  // stubs with normalized weights, out-edge lists.
  std::vector<mr::KeyValue> records;
  records.reserve(nodes.size() + 2 * norm.nnz());
  int64_t live_bytes = 0;
  for (const NodeRecord& n : nodes) {
    const std::string key = std::to_string(n.id);
    records.push_back(
        {key, Tagged(kTagEmb, EncodeEmbedding(n.id, n.features))});
  }
  for (int64_t dst = 0; dst < norm.rows(); ++dst) {
    const std::string dst_key = std::to_string(nodes[dst].id);
    for (int64_t p = norm.row_ptr()[dst]; p < norm.row_ptr()[dst + 1]; ++p) {
      const NodeId src_id = nodes[norm.col_idx()[p]].id;
      records.push_back(
          {dst_key,
           Tagged(kTagInStub, EncodeStub(src_id, norm.values()[p]))});
      if (src_id != nodes[dst].id) {
        io::BufferWriter w;
        w.PutVarint64(nodes[dst].id);
        records.push_back(
            {std::to_string(src_id), Tagged(kTagOutEdge, w.Release())});
      }
    }
  }

  RoundContext ctx;
  ctx.num_layers = config.model.num_layers;
  ctx.model = config.model;
  ctx.slices = &slices;
  std::atomic<int64_t> embedding_evals{0};
  ctx.embedding_evals = &embedding_evals;

  InferResult result;
  // Sharded execution mirrors GraphFlat: records live on their key's home
  // shard, one reduce job runs per shard per round, and propagated
  // neighbor embeddings are exchanged across the partition between rounds.
  // num_shards == 1 degenerates to the single global job.
  const int num_shards = std::max(1, config.num_shards);
  flat::ShardRouter router{flat::ShardPlan(num_shards)};
  std::vector<std::vector<mr::KeyValue>> seeded;
  seeded.push_back(std::move(records));
  std::vector<std::vector<mr::KeyValue>> shard_records =
      router.Exchange(std::move(seeded));
  std::vector<mr::JobStats> shard_stats(num_shards);
  for (int round = 0; round <= config.model.num_layers + 1; ++round) {
    Stopwatch round_watch;
    ctx.round = round;
    const RoundContext round_ctx = ctx;
    for (const auto& recs : shard_records) {
      for (const mr::KeyValue& kv : recs) {
        live_bytes += static_cast<int64_t>(kv.key.size() + kv.value.size());
      }
    }
    AGL_RETURN_IF_ERROR(flat::ParallelOverShards(num_shards, [&](int s) {
      AGL_ASSIGN_OR_RETURN(
          shard_records[s],
          mr::RunReducePhase(config.job, std::move(shard_records[s]),
                             [round_ctx] {
                               return std::make_unique<InferReducer>(round_ctx);
                             },
                             &shard_stats[s]));
      return agl::Status::OK();
    }));
    // Cross-key (neighbor) records exist only while rounds still
    // propagate; afterwards everything is self-keyed and already home.
    if (round < config.model.num_layers) {
      shard_records = router.Exchange(std::move(shard_records));
    }
    result.costs.memory_gb_minutes +=
        static_cast<double>(live_bytes) / (1024.0 * 1024.0 * 1024.0) *
        (round_watch.Seconds() / 60.0);
    live_bytes = 0;
  }

  for (const auto& recs : shard_records) {
    for (const mr::KeyValue& kv : recs) {
      if (kv.value.empty() || kv.value[0] != kTagScore) continue;
      NodeId id;
      std::vector<float> scores;
      AGL_RETURN_IF_ERROR(DecodeEmbedding(kv.value.substr(1), &id, &scores));
      result.scores.emplace_back(id, std::move(scores));
    }
  }
  std::sort(result.scores.begin(), result.scores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  result.costs.time_seconds = watch.Seconds();
  result.costs.cpu_core_minutes = (ProcessCpuSeconds() - cpu_start) / 60.0;
  result.costs.embedding_evaluations = embedding_evals.load();
  return result;
}

}  // namespace agl::infer
