#include "infer/graphinfer.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "flat/shard.h"
#include "infer/embedding_cache.h"
#include "infer/segmentation.h"
#include "io/codec.h"
#include "tensor/sparse.h"

namespace agl::infer {
namespace {

using flat::EdgeRecord;
using flat::NodeId;
using flat::NodeRecord;

// Record tags.
constexpr char kTagEmb = 'H';       // self embedding
constexpr char kTagInStub = 'I';    // in-edge: (src, normalized weight)
constexpr char kTagOutEdge = 'O';   // out-edge: (dst)
constexpr char kTagNeighbor = 'P';  // propagated neighbor embedding
constexpr char kTagScore = 'F';     // final predicted scores

std::string EncodeEmbedding(NodeId id, const std::vector<float>& h) {
  io::BufferWriter w;
  w.PutVarint64(id);
  w.PutFloatArray(h);
  return w.Release();
}

agl::Status DecodeEmbedding(const std::string& bytes, NodeId* id,
                            std::vector<float>* h) {
  io::BufferReader r(bytes);
  AGL_RETURN_IF_ERROR(r.GetVarint64(id));
  return r.GetFloatArray(h);
}

std::string EncodeStub(NodeId src, float weight) {
  io::BufferWriter w;
  w.PutVarint64(src);
  w.PutFloat(weight);
  return w.Release();
}

agl::Status DecodeStub(const std::string& bytes, NodeId* src, float* weight) {
  io::BufferReader r(bytes);
  AGL_RETURN_IF_ERROR(r.GetVarint64(src));
  return r.GetFloat(weight);
}

std::string Tagged(char tag, const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 1);
  out.push_back(tag);
  out.append(payload);
  return out;
}

struct RoundContext {
  int round = 0;       // 0 = propagation bootstrap; 1..K layer slices;
                       // K+1 = prediction slice
  int num_layers = 0;
  gnn::ModelConfig model;
  const std::vector<ModelSlice>* slices = nullptr;
  std::atomic<int64_t>* embedding_evals = nullptr;

  // Cross-slice embedding store (batched driver only; nullptr otherwise).
  EmbeddingStore* cache = nullptr;
  /// In-BFS depth of each pruned-graph node from the slice targets;
  /// nullptr means the run is unpruned.
  const std::unordered_map<NodeId, int>* depth = nullptr;
  /// True when the slice graph kept the whole input graph (no frontier
  /// truncation): every round of every node is then exact.
  bool cache_all_rounds = false;
  uint64_t model_version = 0;
};

/// One GraphInfer Reduce round. Round 0 only bootstraps propagation (our
/// node/edge tables are not pre-joined; see GraphFlat's round-0 note).
/// Rounds 1..K apply slice k-1; round K+1 applies the prediction slice.
class InferReducer : public mr::Reducer {
 public:
  explicit InferReducer(const RoundContext& ctx) : ctx_(ctx) {}

  agl::Status Reduce(const std::string& key,
                     const std::vector<std::string>& values,
                     mr::Emitter* out) override {
    std::vector<float> self_emb;
    bool have_self = false;
    std::vector<NeighborEmbedding> neighbors;
    std::vector<std::pair<NodeId, float>> in_stubs;
    std::vector<std::string> out_edges;
    std::vector<std::pair<NodeId, std::vector<float>>> arrived;

    for (const std::string& v : values) {
      if (v.empty()) return agl::Status::Corruption("empty infer value");
      const std::string payload = v.substr(1);
      switch (v[0]) {
        case kTagEmb: {
          NodeId id;
          AGL_RETURN_IF_ERROR(DecodeEmbedding(payload, &id, &self_emb));
          have_self = true;
          break;
        }
        case kTagInStub: {
          NodeId src;
          float w;
          AGL_RETURN_IF_ERROR(DecodeStub(payload, &src, &w));
          in_stubs.emplace_back(src, w);
          break;
        }
        case kTagOutEdge:
          out_edges.push_back(payload);
          break;
        case kTagNeighbor: {
          NodeId src;
          std::vector<float> h;
          AGL_RETURN_IF_ERROR(DecodeEmbedding(payload, &src, &h));
          arrived.emplace_back(src, std::move(h));
          break;
        }
        default:
          return agl::Status::Corruption("unknown infer tag");
      }
    }
    if (!have_self) {
      // Structure-only node (no node-table row): drop.
      return agl::Status::OK();
    }
    const NodeId self_id = static_cast<NodeId>(std::stoull(key));

    std::vector<float> new_emb;
    if (ctx_.round == 0) {
      new_emb = self_emb;  // bootstrap: propagate raw features
    } else if (ctx_.round <= ctx_.num_layers) {
      const bool cacheable = Cacheable(self_id);
      const CacheKey cache_key{self_id, ctx_.round, ctx_.model_version};
      if (cacheable && ctx_.cache->Lookup(cache_key, &new_emb)) {
        // Cross-slice hit: an earlier slice already materialized this
        // segment embedding (possibly via the spill file). Skip the
        // neighbor join and the slice application entirely.
      } else {
        // Join arrived neighbor embeddings with the normalized in-edge
        // weights; the self-loop stub (src == self) uses the self
        // embedding.
        std::unordered_map<NodeId, const std::vector<float>*> by_src;
        by_src.reserve(arrived.size());
        for (const auto& [aid, h] : arrived) by_src.emplace(aid, &h);
        neighbors.reserve(in_stubs.size());
        for (const auto& [src, w] : in_stubs) {
          if (src == self_id) {
            neighbors.push_back({src, w, self_emb});
            continue;
          }
          auto it = by_src.find(src);
          if (it != by_src.end()) neighbors.push_back({src, w, *it->second});
        }
        AGL_ASSIGN_OR_RETURN(
            new_emb, ApplySlice(ctx_.model, (*ctx_.slices)[ctx_.round - 1],
                                self_emb, neighbors));
        ctx_.embedding_evals->fetch_add(1, std::memory_order_relaxed);
        if (cacheable) ctx_.cache->Insert(cache_key, new_emb);
      }
    } else {
      // Prediction round: output scores, nothing else.
      const std::vector<float> scores =
          ApplyPredictionSlice(ctx_.model, self_emb);
      out->Emit(key, Tagged(kTagScore, EncodeEmbedding(self_id, scores)));
      return agl::Status::OK();
    }

    // Propagate the new embedding along out-edges for the next round and
    // carry the structure forward.
    const bool propagate = ctx_.round < ctx_.num_layers;
    const std::string emb_bytes = EncodeEmbedding(self_id, new_emb);
    if (propagate) {
      for (const std::string& payload : out_edges) {
        io::BufferReader r(payload);
        uint64_t dst;
        AGL_RETURN_IF_ERROR(r.GetVarint64(&dst));
        out->Emit(std::to_string(dst), Tagged(kTagNeighbor, emb_bytes));
      }
      for (const std::string& payload : out_edges) {
        out->Emit(key, Tagged(kTagOutEdge, payload));
      }
      for (const auto& [src, w] : in_stubs) {
        out->Emit(key, Tagged(kTagInStub, EncodeStub(src, w)));
      }
    }
    out->Emit(key, Tagged(kTagEmb, emb_bytes));
    return agl::Status::OK();
  }

 private:
  /// Whether node `id`'s embedding for the current round may be cached and
  /// served from the cache. Requires the value to be *slice-independent*:
  /// a node at in-BFS depth d from the slice targets carries its complete
  /// r-hop in-neighborhood (and hence a bit-exact, slice-invariant round-r
  /// value) only while round + d <= K — beyond that horizon the truncated
  /// frontier makes the locally computed value depend on the slice, so it
  /// is neither stored nor substituted.
  bool Cacheable(NodeId id) const {
    if (ctx_.cache == nullptr || !ctx_.cache->enabled()) return false;
    if (ctx_.cache_all_rounds) return true;
    if (ctx_.depth == nullptr) return false;
    auto it = ctx_.depth->find(id);
    if (it == ctx_.depth->end()) return false;
    return ctx_.round + it->second <= ctx_.num_layers;
  }

  RoundContext ctx_;
};

/// A pruned per-slice input graph plus the BFS metadata the cache horizon
/// needs.
struct SliceGraph {
  std::vector<NodeRecord> nodes;
  std::vector<EdgeRecord> edges;
  /// In-BFS hop at which each kept node was first reached from the targets
  /// (targets have depth 0).
  std::unordered_map<NodeId, int> depth;
  /// The pruning kept every node and edge — the slice covers the graph.
  bool complete = false;
};

using InEdgeIndex = std::unordered_map<NodeId, std::vector<NodeId>>;

InEdgeIndex BuildInEdgeIndex(const std::vector<EdgeRecord>& edges) {
  InEdgeIndex in_edges_of;
  for (const EdgeRecord& e : edges) in_edges_of[e.dst].push_back(e.src);
  return in_edges_of;
}

/// Target-subset pruning: restrict the pipeline to the union of the
/// targets' K-hop in-neighborhoods. Nodes outside can never influence a
/// target's embedding (Theorem 1), so dropping them up front is the
/// inference-side analogue of the trainer's graph pruning.
SliceGraph PruneToTargets(const std::vector<NodeRecord>& nodes,
                          const std::vector<EdgeRecord>& edges,
                          const InEdgeIndex& in_edges_of,
                          const std::vector<NodeId>& targets, int hops) {
  SliceGraph g;
  g.depth.reserve(targets.size());
  std::vector<NodeId> frontier;
  for (NodeId t : targets) {
    if (g.depth.emplace(t, 0).second) frontier.push_back(t);
  }
  for (int hop = 0; hop < hops; ++hop) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      auto it = in_edges_of.find(v);
      if (it == in_edges_of.end()) continue;
      for (NodeId src : it->second) {
        if (g.depth.emplace(src, hop + 1).second) next.push_back(src);
      }
    }
    frontier = std::move(next);
  }
  for (const NodeRecord& n : nodes) {
    if (g.depth.count(n.id) > 0) g.nodes.push_back(n);
  }
  for (const EdgeRecord& e : edges) {
    if (g.depth.count(e.src) > 0 && g.depth.count(e.dst) > 0) {
      g.edges.push_back(e);
    }
  }
  g.complete =
      g.nodes.size() == nodes.size() && g.edges.size() == edges.size();
  return g;
}

struct CoreOptions {
  const std::vector<ModelSlice>* slices = nullptr;
  EmbeddingStore* cache = nullptr;
  const std::unordered_map<NodeId, int>* depth = nullptr;
  bool cache_all_rounds = false;
  uint64_t model_version = 0;
};

/// The MapReduce round schedule over one (possibly pruned) input graph —
/// the body both RunGraphInfer and the batched driver share.
agl::Result<InferResult> RunInferCore(const InferConfig& config,
                                      const std::vector<NodeRecord>& nodes,
                                      const std::vector<EdgeRecord>& edges,
                                      const CoreOptions& opts) {
  if (nodes.empty()) {
    return agl::Status::InvalidArgument("GraphInfer: empty node table");
  }
  Stopwatch watch;
  const double cpu_start = ProcessCpuSeconds();

  // Pre-normalize the adjacency exactly as the trainer does (our stand-in
  // for the paper's degree-joining preprocessing): each in-edge stub carries
  // its normalized weight, self-loops included where the model adds them.
  std::unordered_map<NodeId, int64_t> local_of;
  local_of.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    local_of.emplace(nodes[i].id, static_cast<int64_t>(i));
  }
  std::vector<tensor::CooEntry> entries;
  entries.reserve(edges.size());
  for (const EdgeRecord& e : edges) {
    auto sit = local_of.find(e.src);
    auto dit = local_of.find(e.dst);
    if (sit == local_of.end() || dit == local_of.end()) {
      return agl::Status::NotFound("edge references missing node");
    }
    entries.push_back({dit->second, sit->second, e.weight});
  }
  gnn::GnnModel model_for_norm(config.model);
  const tensor::SparseMatrix norm = model_for_norm.NormalizeAdjacency(
      tensor::SparseMatrix::FromCoo(static_cast<int64_t>(nodes.size()),
                                    static_cast<int64_t>(nodes.size()),
                                    std::move(entries)));

  // Map-equivalent bootstrap input: self embeddings (raw features), in-edge
  // stubs with normalized weights, out-edge lists.
  std::vector<mr::KeyValue> records;
  records.reserve(nodes.size() + 2 * norm.nnz());
  int64_t live_bytes = 0;
  for (const NodeRecord& n : nodes) {
    const std::string key = std::to_string(n.id);
    records.push_back(
        {key, Tagged(kTagEmb, EncodeEmbedding(n.id, n.features))});
  }
  for (int64_t dst = 0; dst < norm.rows(); ++dst) {
    const std::string dst_key = std::to_string(nodes[dst].id);
    for (int64_t p = norm.row_ptr()[dst]; p < norm.row_ptr()[dst + 1]; ++p) {
      const NodeId src_id = nodes[norm.col_idx()[p]].id;
      records.push_back(
          {dst_key,
           Tagged(kTagInStub, EncodeStub(src_id, norm.values()[p]))});
      if (src_id != nodes[dst].id) {
        io::BufferWriter w;
        w.PutVarint64(nodes[dst].id);
        records.push_back(
            {std::to_string(src_id), Tagged(kTagOutEdge, w.Release())});
      }
    }
  }

  RoundContext ctx;
  ctx.num_layers = config.model.num_layers;
  ctx.model = config.model;
  ctx.slices = opts.slices;
  std::atomic<int64_t> embedding_evals{0};
  ctx.embedding_evals = &embedding_evals;
  ctx.cache = opts.cache;
  ctx.depth = opts.depth;
  ctx.cache_all_rounds = opts.cache_all_rounds;
  ctx.model_version = opts.model_version;

  InferResult result;
  // Sharded execution mirrors GraphFlat: records live on their key's home
  // shard, one reduce job runs per shard per round, and propagated
  // neighbor embeddings are exchanged across the partition between rounds.
  // num_shards == 1 degenerates to the single global job.
  const int num_shards = std::max(1, config.num_shards);
  flat::ShardRouter router{flat::ShardPlan(num_shards)};
  std::vector<std::vector<mr::KeyValue>> seeded;
  seeded.push_back(std::move(records));
  std::vector<std::vector<mr::KeyValue>> shard_records =
      router.Exchange(std::move(seeded));
  std::vector<mr::JobStats> shard_stats(num_shards);
  for (int round = 0; round <= config.model.num_layers + 1; ++round) {
    Stopwatch round_watch;
    ctx.round = round;
    const RoundContext round_ctx = ctx;
    for (const auto& recs : shard_records) {
      for (const mr::KeyValue& kv : recs) {
        live_bytes += static_cast<int64_t>(kv.key.size() + kv.value.size());
      }
    }
    AGL_RETURN_IF_ERROR(flat::ParallelOverShards(num_shards, [&](int s) {
      AGL_ASSIGN_OR_RETURN(
          shard_records[s],
          mr::RunReducePhase(config.job, std::move(shard_records[s]),
                             [round_ctx] {
                               return std::make_unique<InferReducer>(round_ctx);
                             },
                             &shard_stats[s]));
      return agl::Status::OK();
    }));
    // Cross-key (neighbor) records exist only while rounds still
    // propagate; afterwards everything is self-keyed and already home.
    if (round < config.model.num_layers) {
      shard_records = router.Exchange(std::move(shard_records));
    }
    result.costs.memory_gb_minutes +=
        static_cast<double>(live_bytes) / (1024.0 * 1024.0 * 1024.0) *
        (round_watch.Seconds() / 60.0);
    live_bytes = 0;
  }

  for (const auto& recs : shard_records) {
    for (const mr::KeyValue& kv : recs) {
      if (kv.value.empty() || kv.value[0] != kTagScore) continue;
      NodeId id;
      std::vector<float> scores;
      AGL_RETURN_IF_ERROR(DecodeEmbedding(kv.value.substr(1), &id, &scores));
      result.scores.emplace_back(id, std::move(scores));
    }
  }
  std::sort(result.scores.begin(), result.scores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  result.costs.time_seconds = watch.Seconds();
  result.costs.cpu_core_minutes = (ProcessCpuSeconds() - cpu_start) / 60.0;
  result.costs.embedding_evaluations = embedding_evals.load();
  return result;
}

/// Keeps only the scores of `targets` (neighborhood nodes were computed
/// with possibly pruned in-neighborhoods of their own).
void FilterScoresToTargets(const std::vector<NodeId>& targets,
                           InferResult* result) {
  std::unordered_set<NodeId> wanted(targets.begin(), targets.end());
  std::vector<std::pair<NodeId, std::vector<float>>> kept;
  kept.reserve(std::min(result->scores.size(), wanted.size()));
  for (auto& entry : result->scores) {
    if (wanted.count(entry.first) > 0) kept.push_back(std::move(entry));
  }
  result->scores = std::move(kept);
}

}  // namespace

agl::Status InferConfig::Validate() const {
  if (model.num_layers < 1) {
    return agl::Status::InvalidArgument(
        "InferConfig: model.num_layers must be >= 1");
  }
  if (model.in_dim <= 0 || model.hidden_dim <= 0 || model.out_dim <= 0) {
    return agl::Status::InvalidArgument(
        "InferConfig: model dimensions must be positive");
  }
  if (num_shards < 1) {
    return agl::Status::InvalidArgument(
        "InferConfig: num_shards must be >= 1");
  }
  if (batch_slices < 1) {
    return agl::Status::InvalidArgument(
        "InferConfig: batch_slices must be >= 1");
  }
  if (!cache_spill_path.empty() && cache_budget_bytes == 0) {
    return agl::Status::InvalidArgument(
        "InferConfig: cache_spill_path needs an enabled cache "
        "(cache_budget_bytes != 0)");
  }
  return agl::Status::OK();
}

std::vector<std::vector<NodeId>> PartitionTargets(
    const std::vector<NodeId>& targets, int batch_slices) {
  std::vector<NodeId> unique;
  unique.reserve(targets.size());
  std::unordered_set<NodeId> seen;
  seen.reserve(targets.size());
  for (NodeId t : targets) {
    if (seen.insert(t).second) unique.push_back(t);
  }
  std::vector<std::vector<NodeId>> slices;
  if (unique.empty()) return slices;
  const std::size_t n = unique.size();
  const std::size_t count =
      std::min<std::size_t>(n, static_cast<std::size_t>(
                                   std::max(1, batch_slices)));
  slices.reserve(count);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t size = n / count + (s < n % count ? 1 : 0);
    slices.emplace_back(unique.begin() + begin, unique.begin() + begin + size);
    begin += size;
  }
  return slices;
}

uint64_t StateFingerprint(
    const std::map<std::string, tensor::Tensor>& state) {
  io::BufferWriter w;
  for (const auto& [key, value] : state) {
    w.PutString(key);
    w.PutVarint64(static_cast<uint64_t>(value.rows()));
    w.PutVarint64(static_cast<uint64_t>(value.cols()));
    w.PutBytes(value.data(),
               static_cast<std::size_t>(value.rows() * value.cols()) *
                   sizeof(float));
  }
  return agl::Fnv1aHash(w.data());
}

agl::Result<InferResult> RunGraphInfer(
    const InferConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges) {
  if (nodes.empty()) {
    return agl::Status::InvalidArgument("GraphInfer: empty node table");
  }
  AGL_ASSIGN_OR_RETURN(std::vector<ModelSlice> slices,
                       SegmentModel(state, config.model.num_layers));
  CoreOptions opts;
  opts.slices = &slices;
  if (config.target_ids.empty()) {
    return RunInferCore(config, nodes, edges, opts);
  }

  Stopwatch watch;
  const InEdgeIndex in_edges_of = BuildInEdgeIndex(edges);
  const SliceGraph g = PruneToTargets(nodes, edges, in_edges_of,
                                      config.target_ids,
                                      config.model.num_layers);
  InferConfig sub_config = config;
  sub_config.target_ids.clear();
  AGL_ASSIGN_OR_RETURN(InferResult out,
                       RunInferCore(sub_config, g.nodes, g.edges, opts));
  FilterScoresToTargets(config.target_ids, &out);
  out.costs.time_seconds = watch.Seconds();
  return out;
}

namespace {

/// Shared batched-driver body: `store` is whichever EmbeddingStore this
/// pass shares — a call-local cache or a caller-owned (persistent) one.
agl::Result<InferResult> RunBatchedWithStore(
    const InferConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges, EmbeddingStore* store) {
  if (nodes.empty()) {
    return agl::Status::InvalidArgument("GraphInfer: empty node table");
  }
  Stopwatch watch;
  const double cpu_start = ProcessCpuSeconds();

  AGL_ASSIGN_OR_RETURN(std::vector<ModelSlice> slices,
                       SegmentModel(state, config.model.num_layers));

  std::vector<NodeId> targets = config.target_ids;
  if (targets.empty()) {
    targets.reserve(nodes.size());
    for (const NodeRecord& n : nodes) targets.push_back(n.id);
  }
  const std::vector<std::vector<NodeId>> target_slices =
      PartitionTargets(targets, config.batch_slices);

  const uint64_t version = StateFingerprint(state);
  // A shared store accumulates counters across calls; report this call's
  // delta so InferCosts keeps its per-run meaning.
  const EmbeddingCacheStats stats_before = store->stats();

  const InEdgeIndex in_edges_of = BuildInEdgeIndex(edges);

  InferResult out;
  out.num_slices = static_cast<int>(target_slices.size());
  for (const std::vector<NodeId>& slice_targets : target_slices) {
    const SliceGraph g = PruneToTargets(nodes, edges, in_edges_of,
                                        slice_targets,
                                        config.model.num_layers);
    InferConfig sub_config = config;
    sub_config.target_ids.clear();
    CoreOptions opts;
    opts.slices = &slices;
    opts.depth = &g.depth;
    opts.cache_all_rounds = g.complete;
    opts.model_version = version;
    // GCN's symmetric normalization folds in *out*-degrees, which frontier
    // truncation changes, so a pruned GCN slice has no slice-invariant
    // embeddings to share — the cache stays out of the loop there (the
    // complete-graph case is still safe and still cached).
    const bool gcn_pruned =
        config.model.type == gnn::ModelType::kGcn && !g.complete;
    opts.cache = gcn_pruned ? nullptr : store;
    AGL_ASSIGN_OR_RETURN(InferResult slice_result,
                         RunInferCore(sub_config, g.nodes, g.edges, opts));
    FilterScoresToTargets(slice_targets, &slice_result);
    out.costs.embedding_evaluations +=
        slice_result.costs.embedding_evaluations;
    out.costs.memory_gb_minutes += slice_result.costs.memory_gb_minutes;
    out.scores.insert(out.scores.end(),
                      std::make_move_iterator(slice_result.scores.begin()),
                      std::make_move_iterator(slice_result.scores.end()));
  }
  std::sort(out.scores.begin(), out.scores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const EmbeddingCacheStats cache_stats = store->stats();
  out.costs.cache_hits = cache_stats.hits - stats_before.hits;
  out.costs.cache_misses = cache_stats.misses - stats_before.misses;
  out.costs.cache_evictions =
      cache_stats.evictions - stats_before.evictions;
  out.costs.cache_spilled = cache_stats.spilled - stats_before.spilled;
  out.costs.cache_spill_hits =
      cache_stats.spill_hits - stats_before.spill_hits;
  out.costs.cache_spill_failures =
      cache_stats.spill_failures - stats_before.spill_failures;
  out.costs.time_seconds = watch.Seconds();
  out.costs.cpu_core_minutes = (ProcessCpuSeconds() - cpu_start) / 60.0;
  return out;
}

}  // namespace

agl::Result<InferResult> RunGraphInferBatched(
    const InferConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges) {
  EmbeddingCache cache(config.cache_budget_bytes);
  if (cache.enabled() && !config.cache_spill_path.empty()) {
    AGL_RETURN_IF_ERROR(cache.EnableSpill(config.cache_spill_path));
  }
  return RunBatchedWithStore(config, state, nodes, edges, &cache);
}

agl::Result<InferResult> RunGraphInferBatched(
    const InferConfig& config,
    const std::map<std::string, tensor::Tensor>& state,
    const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges, EmbeddingStore* store) {
  if (store == nullptr) {
    return agl::Status::InvalidArgument(
        "RunGraphInferBatched: external store must not be null");
  }
  return RunBatchedWithStore(config, state, nodes, edges, store);
}

}  // namespace agl::infer
