// Cross-process persistent EmbeddingStore.
//
// Wraps the LRU EmbeddingCache and makes its spill file survive the
// process: the spill lives as a plain record_file under a LocalDfs root
// (plain files are exempt from the scratch sweep), and Publish() pushes the
// whole batch of buffered spill writes down with ONE fsync, then publishes
// an index dataset — (model_version, durable spill prefix, key -> offset
// table) — through the crash-consistent WriteDataset path (scratch + fsync
// + rename + MANIFEST). A restarted process re-opens the store from the
// index and serves warm hits straight out of the old spill file via
// RecordReader::SeekTo.
//
// Failure contract (degrade-to-recompute): a missing/corrupt/stale index,
// a torn spill tail past the published prefix, or a checksum-failing spill
// record each degrade to a cold miss — never to a wrong answer. An index
// fingerprinting different model weights or a different graph state is
// discarded wholesale.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "infer/embedding_cache.h"
#include "infer/embedding_store.h"
#include "mr/local_dfs.h"

namespace agl::infer {

class PersistentEmbeddingStore final : public EmbeddingStore {
 public:
  struct Options {
    /// RAM budget forwarded to the underlying EmbeddingCache (negative =
    /// unbounded, positive = bytes; 0 is rejected — a disabled store has
    /// nothing to persist).
    int64_t budget_bytes = -1;
    /// StateFingerprint of the weights being served. An index published
    /// under any other version is ignored on Open.
    uint64_t model_version = 0;
    /// Fingerprint of the graph tables being served (serve::GraphFingerprint
    /// or any caller-stable hash; 0 = not tracked). Cached embeddings are a
    /// function of (weights, graph), so an index published against a
    /// different graph state is ignored on Open the same way a model
    /// mismatch is. Mutations move it via set_graph_version() before the
    /// next Publish().
    uint64_t graph_version = 0;
  };

  /// Opens store `name` under `dfs` ("<root>/<name>.spill" +
  /// "<name>.index" dataset). Re-attaches the previous process's spill when
  /// a matching index is published; starts cold (fresh spill) otherwise.
  static agl::Result<std::unique_ptr<PersistentEmbeddingStore>> Open(
      mr::LocalDfs* dfs, const std::string& name, const Options& options);

  bool enabled() const override { return cache_.enabled(); }
  bool Lookup(const CacheKey& key, std::vector<float>* out) override {
    return cache_.Lookup(key, out);
  }
  void Insert(const CacheKey& key,
              const std::vector<float>& embedding) override {
    cache_.Insert(key, embedding);
  }
  void Invalidate(uint64_t node, int32_t min_round) override {
    cache_.Invalidate(node, min_round);
  }
  EmbeddingCacheStats stats() const override { return cache_.stats(); }

  /// Durability point: spills all resident entries, fsyncs the spill file
  /// once, and atomically publishes the index dataset. Safe to call
  /// repeatedly; serving continues afterwards.
  agl::Status Publish();

  /// True when Open() restored a prior process's snapshot (the spill file
  /// plus a non-empty offset index).
  bool opened_warm() const { return opened_warm_; }

  const std::string& spill_path() const { return spill_path_; }
  const std::string& index_dataset() const { return index_dataset_; }
  uint64_t model_version() const { return model_version_; }

  /// Records that the serving graph changed (a mutation batch applied).
  /// The next Publish() stamps this value, so a restart against any other
  /// graph state starts cold. Called only from the serving thread (or
  /// after it is joined), like Publish().
  void set_graph_version(uint64_t v) { graph_version_ = v; }
  uint64_t graph_version() const { return graph_version_; }

 private:
  PersistentEmbeddingStore(mr::LocalDfs* dfs, std::string name,
                           const Options& options)
      : dfs_(dfs),
        name_(std::move(name)),
        spill_path_(dfs->root() + "/" + name_ + ".spill"),
        index_dataset_(name_ + ".index"),
        model_version_(options.model_version),
        graph_version_(options.graph_version),
        cache_(options.budget_bytes) {}

  mr::LocalDfs* const dfs_;
  const std::string name_;
  const std::string spill_path_;
  const std::string index_dataset_;
  const uint64_t model_version_;
  uint64_t graph_version_;
  EmbeddingCache cache_;
  bool opened_warm_ = false;
};

}  // namespace agl::infer
