// Edge-featured GNN (extension). Equation 1 of the paper includes edge
// features {e_vu} in every layer's aggregation, but the three models it
// evaluates ignore them. EdgeGcnModel exercises that part of the design: a
// learned per-edge gate conditions the aggregation on the edge's feature
// vector,
//
//   gate_p = sigmoid(e_p . w_e + b_e)
//   h'_v   = act( W_self h_v + W_neigh * sum_{p: dst(p)=v} a_p gate_p h_src(p) )
//
// where a_p is the row-normalized edge weight. The gate path uses
// autograd::EdgeGatedAggregate, so edge-feature gradients flow end-to-end.
// Pruning support: gates are computed from the batch's edge feature matrix,
// which is CSR-aligned with the *unpruned* adjacency, so this model runs
// unpruned (the trade-off is documented in DESIGN.md).

#pragma once

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "subgraph/batch.h"

namespace agl::gnn {

struct EdgeModelConfig {
  int num_layers = 2;
  int64_t in_dim = 0;
  int64_t edge_dim = 0;
  int64_t hidden_dim = 16;
  int64_t out_dim = 0;
  int aggregation_threads = 1;
  float dropout = 0.f;
  uint64_t seed = 29;
};

/// GCN-style model whose aggregation is gated by learned edge-feature
/// scores.
class EdgeGcnModel : public nn::Module {
 public:
  explicit EdgeGcnModel(const EdgeModelConfig& config);

  const EdgeModelConfig& config() const { return config_; }

  /// Forward over a merged batch (must carry edge features). Returns
  /// logits for the batch targets.
  agl::Result<autograd::Variable> Forward(
      const subgraph::VectorizedBatch& batch, bool training, Rng* rng) const;

 private:
  struct Layer {
    std::unique_ptr<nn::Linear> self_linear;
    std::unique_ptr<nn::Linear> neigh_linear;
  };

  EdgeModelConfig config_;
  mutable Rng init_rng_;
  std::vector<Layer> layers_;
  std::unique_ptr<nn::Linear> gate_linear_;  // [edge_dim -> 1], shared
};

}  // namespace agl::gnn
