// End-to-end GNN models over vectorized subgraph batches — the "Model File"
// of Figure 6: parse GraphFeature -> vectorize -> per-layer pruned adjacency
// -> K layers -> look_up(target) -> logits.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "subgraph/batch.h"

namespace agl::gnn {

enum class ModelType { kGcn, kGraphSage, kGat };

agl::Result<ModelType> ParseModelType(const std::string& name);
const char* ModelTypeName(ModelType t);

struct ModelConfig {
  ModelType type = ModelType::kGcn;
  int num_layers = 2;
  int64_t in_dim = 0;
  int64_t hidden_dim = 16;
  int64_t out_dim = 0;  // number of classes / label width
  int gat_heads = 1;
  float dropout = 0.0f;
  /// Graph pruning optimization (§3.3.2); per-layer A^(k) when true.
  bool use_pruning = true;
  /// Threads for edge-partitioned aggregation; 1 disables partitioning.
  int aggregation_threads = 1;
  uint64_t seed = 13;
};

/// A batch after model-specific preprocessing (normalization + pruning),
/// produced in the trainer's preprocessing pipeline stage so that model
/// computation overlaps with it (§3.3.2 "training pipeline").
struct PreparedBatch {
  std::vector<autograd::AdjacencyPtr> layer_adj;  // one per layer
  tensor::Tensor node_features;
  std::vector<int64_t> target_indices;
  std::vector<int64_t> labels;
  tensor::Tensor multilabels;
};

/// K-layer GNN classifier.
class GnnModel : public nn::Module {
 public:
  explicit GnnModel(const ModelConfig& config);

  const ModelConfig& config() const { return config_; }

  /// Normalizes (model-specific) and prunes the batch adjacency.
  PreparedBatch Prepare(const subgraph::VectorizedBatch& batch) const;

  /// Full forward pass; returns logits for the batch targets
  /// [num_targets x out_dim].
  autograd::Variable Forward(const PreparedBatch& batch, bool training,
                             Rng* rng) const;

  /// Single-layer forward used by GraphInfer's model slices: applies layer
  /// `k` (and the final activation) to embeddings `h` under adjacency `adj`.
  autograd::Variable ForwardLayer(int k, const autograd::AdjacencyPtr& adj,
                                  const autograd::Variable& h) const;

  /// Applies the prediction slice (identity for these models — logits come
  /// straight from the last layer; kept explicit so GraphInfer's K+1-th
  /// slice has a home).
  autograd::Variable Predict(const autograd::Variable& h) const;

  /// Model-specific adjacency normalization used by Prepare and GraphInfer.
  tensor::SparseMatrix NormalizeAdjacency(
      const tensor::SparseMatrix& adj) const;

 private:
  int64_t LayerInputDim(int k) const;
  int64_t LayerOutputDim(int k) const;

  ModelConfig config_;
  mutable Rng init_rng_;
  std::vector<std::unique_ptr<nn::Module>> layers_;
};

}  // namespace agl::gnn
