#include "gnn/edge_model.h"

namespace agl::gnn {

using autograd::Variable;

EdgeGcnModel::EdgeGcnModel(const EdgeModelConfig& config)
    : config_(config), init_rng_(config.seed) {
  AGL_CHECK_GE(config.num_layers, 1);
  AGL_CHECK_GT(config.in_dim, 0);
  AGL_CHECK_GT(config.edge_dim, 0);
  AGL_CHECK_GT(config.out_dim, 0);
  for (int k = 0; k < config_.num_layers; ++k) {
    const int64_t in = k == 0 ? config_.in_dim : config_.hidden_dim;
    const int64_t out =
        k == config_.num_layers - 1 ? config_.out_dim : config_.hidden_dim;
    Layer layer;
    layer.self_linear =
        std::make_unique<nn::Linear>(in, out, &init_rng_, /*bias=*/true);
    layer.neigh_linear =
        std::make_unique<nn::Linear>(in, out, &init_rng_, /*bias=*/false);
    RegisterChild("layer" + std::to_string(k) + ".self",
                  layer.self_linear.get());
    RegisterChild("layer" + std::to_string(k) + ".neigh",
                  layer.neigh_linear.get());
    layers_.push_back(std::move(layer));
  }
  gate_linear_ = std::make_unique<nn::Linear>(config_.edge_dim, 1,
                                              &init_rng_, /*bias=*/true);
  RegisterChild("gate", gate_linear_.get());
}

agl::Result<Variable> EdgeGcnModel::Forward(
    const subgraph::VectorizedBatch& batch, bool training, Rng* rng) const {
  const tensor::SparseMatrix& raw = batch.adjacency->matrix();
  if (batch.edge_features.rows() != raw.nnz()) {
    return agl::Status::InvalidArgument(
        "EdgeGcnModel needs per-edge features aligned with the adjacency (" +
        std::to_string(batch.edge_features.rows()) + " rows vs " +
        std::to_string(raw.nnz()) + " edges)");
  }
  if (batch.edge_features.cols() != config_.edge_dim) {
    return agl::Status::InvalidArgument("edge feature width mismatch");
  }

  // Row-normalize once (preserves CSR order, keeping the edge-feature
  // alignment intact).
  auto adj = std::make_shared<autograd::SharedAdjacency>(raw.RowNormalized());
  const tensor::SpmmOptions opts{config_.aggregation_threads};

  // Shared per-edge gate from edge features.
  Variable efeat = Variable::Constant(batch.edge_features);
  Variable gate = autograd::Sigmoid(gate_linear_->Forward(efeat));

  Variable h = Variable::Constant(batch.node_features);
  for (int k = 0; k < config_.num_layers; ++k) {
    if (training && config_.dropout > 0.f) {
      h = autograd::Dropout(h, config_.dropout, training, rng);
    }
    Variable self_term = layers_[k].self_linear->Forward(h);
    Variable neigh = autograd::EdgeGatedAggregate(adj, h, gate, opts);
    Variable neigh_term = layers_[k].neigh_linear->Forward(neigh);
    h = autograd::Add(self_term, neigh_term);
    if (k < config_.num_layers - 1) h = autograd::Relu(h);
  }
  return autograd::GatherRows(h, batch.target_indices);
}

}  // namespace agl::gnn
