#include "gnn/layers.h"

namespace agl::gnn {

using autograd::Variable;

GcnLayer::GcnLayer(int64_t in_dim, int64_t out_dim, Rng* rng)
    : linear_(in_dim, out_dim, rng, /*bias=*/true) {
  RegisterChild("linear", &linear_);
}

Variable GcnLayer::Forward(const autograd::AdjacencyPtr& adj,
                           const Variable& h,
                           const tensor::SpmmOptions& opts) const {
  // Transform then aggregate: Â @ (h W) — cheaper when out_dim < in_dim.
  return autograd::SpmmAggregate(adj, linear_.Forward(h), opts);
}

SageLayer::SageLayer(int64_t in_dim, int64_t out_dim, Rng* rng)
    : self_linear_(in_dim, out_dim, rng, /*bias=*/true),
      neigh_linear_(in_dim, out_dim, rng, /*bias=*/false) {
  RegisterChild("self", &self_linear_);
  RegisterChild("neigh", &neigh_linear_);
}

Variable SageLayer::Forward(const autograd::AdjacencyPtr& adj,
                            const Variable& h,
                            const tensor::SpmmOptions& opts) const {
  Variable neigh =
      neigh_linear_.Forward(autograd::SpmmAggregate(adj, h, opts));
  return autograd::Add(self_linear_.Forward(h), neigh);
}

GatLayer::GatLayer(int64_t in_dim, int64_t out_dim, int num_heads,
                   bool concat_heads, Rng* rng, float leaky_slope)
    : out_dim_(out_dim),
      num_heads_(num_heads),
      concat_heads_(concat_heads),
      leaky_slope_(leaky_slope) {
  AGL_CHECK_GE(num_heads, 1);
  for (int hd = 0; hd < num_heads; ++hd) {
    const std::string suffix = std::to_string(hd);
    weights_.push_back(RegisterParameter(
        "weight_" + suffix, tensor::Tensor::GlorotUniform(in_dim, out_dim, rng)));
    attn_left_.push_back(RegisterParameter(
        "attn_l_" + suffix, tensor::Tensor::GlorotUniform(out_dim, 1, rng)));
    attn_right_.push_back(RegisterParameter(
        "attn_r_" + suffix, tensor::Tensor::GlorotUniform(out_dim, 1, rng)));
  }
  bias_ = RegisterParameter("bias", tensor::Tensor(1, output_dim()));
}

Variable GatLayer::Forward(const autograd::AdjacencyPtr& adj,
                           const Variable& h,
                           const tensor::SpmmOptions& opts) const {
  Variable combined;
  for (int hd = 0; hd < num_heads_; ++hd) {
    Variable wh = autograd::MatMul(h, weights_[hd]);
    Variable al = autograd::MatMul(wh, attn_left_[hd]);
    Variable ar = autograd::MatMul(wh, attn_right_[hd]);
    Variable head =
        autograd::GatAggregate(adj, wh, al, ar, leaky_slope_, opts);
    if (!combined.defined()) {
      combined = head;
    } else if (concat_heads_) {
      combined = autograd::ConcatCols(combined, head);
    } else {
      combined = autograd::Add(combined, head);
    }
  }
  if (!concat_heads_ && num_heads_ > 1) {
    combined = autograd::Scale(combined, 1.f / static_cast<float>(num_heads_));
  }
  return autograd::AddBias(combined, bias_);
}

}  // namespace agl::gnn
