#include "gnn/model.h"

#include <limits>

#include "autograd/ops.h"
#include "gnn/layers.h"

namespace agl::gnn {

using autograd::Variable;

agl::Result<ModelType> ParseModelType(const std::string& name) {
  if (name == "gcn") return ModelType::kGcn;
  if (name == "graphsage" || name == "sage") return ModelType::kGraphSage;
  if (name == "gat") return ModelType::kGat;
  return agl::Status::InvalidArgument("unknown model type: " + name);
}

const char* ModelTypeName(ModelType t) {
  switch (t) {
    case ModelType::kGcn:
      return "gcn";
    case ModelType::kGraphSage:
      return "graphsage";
    case ModelType::kGat:
      return "gat";
  }
  return "?";
}

GnnModel::GnnModel(const ModelConfig& config)
    : config_(config), init_rng_(config.seed) {
  AGL_CHECK_GE(config.num_layers, 1);
  AGL_CHECK_GT(config.in_dim, 0);
  AGL_CHECK_GT(config.out_dim, 0);
  for (int k = 0; k < config_.num_layers; ++k) {
    const int64_t in = LayerInputDim(k);
    const int64_t out = LayerOutputDim(k);
    const std::string name = "layer" + std::to_string(k);
    switch (config_.type) {
      case ModelType::kGcn:
        layers_.push_back(std::make_unique<GcnLayer>(in, out, &init_rng_));
        break;
      case ModelType::kGraphSage:
        layers_.push_back(std::make_unique<SageLayer>(in, out, &init_rng_));
        break;
      case ModelType::kGat: {
        const bool last = k == config_.num_layers - 1;
        layers_.push_back(std::make_unique<GatLayer>(
            in, out, config_.gat_heads, /*concat_heads=*/!last, &init_rng_));
        break;
      }
    }
    RegisterChild(name, layers_.back().get());
  }
}

int64_t GnnModel::LayerInputDim(int k) const {
  if (k == 0) return config_.in_dim;
  // Hidden GAT layers concatenate heads.
  if (config_.type == ModelType::kGat) {
    return config_.hidden_dim * config_.gat_heads;
  }
  return config_.hidden_dim;
}

int64_t GnnModel::LayerOutputDim(int k) const {
  return k == config_.num_layers - 1 ? config_.out_dim : config_.hidden_dim;
}

tensor::SparseMatrix GnnModel::NormalizeAdjacency(
    const tensor::SparseMatrix& adj) const {
  switch (config_.type) {
    case ModelType::kGcn:
      return adj.WithSelfLoops().GcnNormalized();
    case ModelType::kGraphSage:
      // Mean aggregator: self term is handled by the layer itself.
      return adj.RowNormalized();
    case ModelType::kGat:
      // Attention normalizes per-row; self-loop lets a node attend to
      // itself.
      return adj.WithSelfLoops();
  }
  return adj;
}

namespace {

/// Drops every row whose distance to the batch targets exceeds `max_dist`
/// (keeping the row's values untouched, so normalization computed on the
/// full matrix is preserved — pruning is a pure compute-saving rewrite).
tensor::SparseMatrix PruneRows(const tensor::SparseMatrix& full,
                               const std::vector<int64_t>& distance,
                               int64_t max_dist) {
  // Whole-row copies preserve CSR ordering, so the pruned matrix can be
  // assembled without any sorting — this runs per batch per layer, in the
  // preprocessing stage of the training pipeline.
  std::vector<int64_t> row_ptr(full.rows() + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<float> values;
  for (int64_t r = 0; r < full.rows(); ++r) {
    if (distance[r] <= max_dist) {
      const int64_t begin = full.row_ptr()[r], end = full.row_ptr()[r + 1];
      col_idx.insert(col_idx.end(), full.col_idx().begin() + begin,
                     full.col_idx().begin() + end);
      values.insert(values.end(), full.values().begin() + begin,
                    full.values().begin() + end);
    }
    row_ptr[r + 1] = static_cast<int64_t>(col_idx.size());
  }
  return tensor::SparseMatrix::FromCsr(full.rows(), full.cols(),
                                       std::move(row_ptr),
                                       std::move(col_idx),
                                       std::move(values));
}

}  // namespace

PreparedBatch GnnModel::Prepare(const subgraph::VectorizedBatch& batch) const {
  PreparedBatch out;
  out.node_features = batch.node_features;
  out.target_indices = batch.target_indices;
  out.labels = batch.labels;
  out.multilabels = batch.multilabels;

  // Normalize the full merged adjacency once, THEN prune rows per layer:
  // pruning only removes whole destination rows, so normalized weights of
  // surviving rows are untouched and the target logits are bit-compatible
  // with the unpruned computation.
  auto normalized = std::make_shared<autograd::SharedAdjacency>(
      NormalizeAdjacency(batch.adjacency->matrix()));
  if (!config_.use_pruning) {
    out.layer_adj.assign(config_.num_layers, normalized);
    return out;
  }

  int64_t max_observed = 0;
  constexpr int64_t kFar = std::numeric_limits<int64_t>::max() / 4;
  for (int64_t d : batch.target_distance) {
    if (d < kFar) max_observed = std::max(max_observed, d);
  }
  out.layer_adj.reserve(config_.num_layers);
  for (int k = 0; k < config_.num_layers; ++k) {
    const int64_t max_dist = config_.num_layers - k - 1;
    if (max_dist >= max_observed) {
      out.layer_adj.push_back(normalized);
      continue;
    }
    out.layer_adj.push_back(std::make_shared<autograd::SharedAdjacency>(
        PruneRows(normalized->matrix(), batch.target_distance, max_dist)));
  }
  return out;
}

Variable GnnModel::ForwardLayer(int k, const autograd::AdjacencyPtr& adj,
                                const Variable& h) const {
  tensor::SpmmOptions opts{config_.aggregation_threads};
  Variable out;
  switch (config_.type) {
    case ModelType::kGcn:
      out = static_cast<const GcnLayer*>(layers_[k].get())
                ->Forward(adj, h, opts);
      break;
    case ModelType::kGraphSage:
      out = static_cast<const SageLayer*>(layers_[k].get())
                ->Forward(adj, h, opts);
      break;
    case ModelType::kGat:
      out = static_cast<const GatLayer*>(layers_[k].get())
                ->Forward(adj, h, opts);
      break;
  }
  if (k < config_.num_layers - 1) {
    out = config_.type == ModelType::kGat ? autograd::Elu(out)
                                          : autograd::Relu(out);
  }
  return out;
}

Variable GnnModel::Predict(const Variable& h) const { return h; }

Variable GnnModel::Forward(const PreparedBatch& batch, bool training,
                           Rng* rng) const {
  AGL_CHECK_EQ(static_cast<int>(batch.layer_adj.size()), config_.num_layers);
  Variable h = Variable::Constant(batch.node_features);
  for (int k = 0; k < config_.num_layers; ++k) {
    if (training && config_.dropout > 0.f) {
      h = autograd::Dropout(h, config_.dropout, training, rng);
    }
    h = ForwardLayer(k, batch.layer_adj[k], h);
  }
  Variable target_h = autograd::GatherRows(h, batch.target_indices);
  return Predict(target_h);
}

}  // namespace agl::gnn
