// GNN layers (Equation 1): each layer aggregates a node's in-edge
// neighborhood into its next embedding. All layers take the adjacency as an
// AdjacencyPtr prepared by the batch vectorizer (possibly pruned per layer,
// §3.3.2) and thread-count options controlling edge-partitioned aggregation.

#pragma once

#include <cstdint>
#include <memory>

#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace agl::gnn {

/// Kipf & Welling GCN layer: h' = act(Â @ h @ W + b). The adjacency passed
/// in must already be GCN-normalized (see PrepareBatch).
class GcnLayer : public nn::Module {
 public:
  GcnLayer(int64_t in_dim, int64_t out_dim, Rng* rng);

  autograd::Variable Forward(const autograd::AdjacencyPtr& adj,
                             const autograd::Variable& h,
                             const tensor::SpmmOptions& opts) const;

 private:
  nn::Linear linear_;
};

/// GraphSAGE-mean layer with the "add" combine the paper notes all three
/// systems use: h' = act(W_self h + W_neigh mean(h_neighbors)).
/// The adjacency must be row-normalized (mean aggregation).
class SageLayer : public nn::Module {
 public:
  SageLayer(int64_t in_dim, int64_t out_dim, Rng* rng);

  autograd::Variable Forward(const autograd::AdjacencyPtr& adj,
                             const autograd::Variable& h,
                             const tensor::SpmmOptions& opts) const;

 private:
  nn::Linear self_linear_;
  nn::Linear neigh_linear_;
};

/// Multi-head graph attention layer (Velickovic et al.). Heads are
/// concatenated (hidden layers) or averaged (output layer).
class GatLayer : public nn::Module {
 public:
  GatLayer(int64_t in_dim, int64_t out_dim, int num_heads, bool concat_heads,
           Rng* rng, float leaky_slope = 0.2f);

  autograd::Variable Forward(const autograd::AdjacencyPtr& adj,
                             const autograd::Variable& h,
                             const tensor::SpmmOptions& opts) const;

  int64_t output_dim() const {
    return concat_heads_ ? out_dim_ * num_heads_ : out_dim_;
  }

 private:
  int64_t out_dim_;
  int num_heads_;
  bool concat_heads_;
  float leaky_slope_;
  std::vector<autograd::Variable> weights_;   // per head [in x out]
  std::vector<autograd::Variable> attn_left_;   // per head [out x 1]
  std::vector<autograd::Variable> attn_right_;  // per head [out x 1]
  autograd::Variable bias_;  // [1 x output_dim()]
};

}  // namespace agl::gnn
