#include "ps/parameter_server.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"

namespace agl::ps {

ParameterServer::ParameterServer(const ServerOptions& options)
    : options_(options) {
  const int n = std::max(1, options_.num_shards);
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::size_t ParameterServer::ShardOf(const std::string& key) const {
  uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h % shards_.size();
}

void ParameterServer::Initialize(
    const std::map<std::string, tensor::Tensor>& state) {
  for (auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    shard->entries.clear();
  }
  for (const auto& [key, value] : state) {
    Shard& shard = *shards_[ShardOf(key)];
    common::MutexLock lock(&shard.mu);
    shard.entries[key] = Entry{value, nn::AdamState{}};
  }
}

std::map<std::string, ExportedParam> ParameterServer::ExportState() const {
  std::map<std::string, ExportedParam> out;
  for (const auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    for (const auto& [key, entry] : shard->entries) {
      out.emplace(key, ExportedParam{entry.value, entry.opt_state});
    }
  }
  return out;
}

void ParameterServer::ImportState(
    std::map<std::string, ExportedParam> state) {
  for (auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    shard->entries.clear();
  }
  for (auto& [key, param] : state) {
    Shard& shard = *shards_[ShardOf(key)];
    common::MutexLock lock(&shard.mu);
    shard.entries[key] =
        Entry{std::move(param.value), std::move(param.opt_state)};
  }
}

std::map<std::string, tensor::Tensor> ParameterServer::PullAll() const {
  std::map<std::string, tensor::Tensor> out;
  for (const auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    for (const auto& [key, entry] : shard->entries) {
      out.emplace(key, entry.value);
      shard->pulls++;
      shard->bytes_pulled +=
          entry.value.size() * static_cast<int64_t>(sizeof(float));
    }
  }
  return out;
}

agl::Status ParameterServer::ValidateGradients(
    const std::map<std::string, tensor::Tensor>& grads) const {
  for (const auto& [key, grad] : grads) {
    Shard& shard = *shards_[ShardOf(key)];
    common::MutexLock lock(&shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      return agl::Status::NotFound("push to unknown parameter: " + key);
    }
    if (grad.rows() != it->second.value.rows() ||
        grad.cols() != it->second.value.cols()) {
      return agl::Status::InvalidArgument("gradient shape mismatch for " +
                                          key);
    }
  }
  return agl::Status::OK();
}

void ParameterServer::ApplyUpdate(
    const std::map<std::string, tensor::Tensor>& grads) {
  for (const auto& [key, grad] : grads) {
    Shard& shard = *shards_[ShardOf(key)];
    common::MutexLock lock(&shard.mu);
    auto it = shard.entries.find(key);
    AGL_CHECK(it != shard.entries.end()) << "unvalidated gradient " << key;
    nn::AdamApply(options_.adam, grad, &it->second.value,
                  &it->second.opt_state);
  }
}

agl::Status ParameterServer::PushGradients(
    const std::map<std::string, tensor::Tensor>& grads) {
  // Failpoint "ps.push": an injected fault rejects the push before any
  // shard is touched, so the all-or-nothing contract below still holds.
  AGL_RETURN_IF_ERROR(fail::MaybeFail("ps.push"));
  // Validate-then-apply (all-or-nothing on bad input, same contract as
  // PushSsp): a rejected push never leaves the PS half-updated.
  AGL_RETURN_IF_ERROR(ValidateGradients(grads));
  ApplyUpdate(grads);
  for (const auto& [key, grad] : grads) {
    Shard& shard = *shards_[ShardOf(key)];
    common::MutexLock lock(&shard.mu);
    shard.pushes++;
    shard.bytes_pushed += grad.size() * static_cast<int64_t>(sizeof(float));
  }
  return agl::Status::OK();
}

// --- SSP coordination ------------------------------------------------------

void ParameterServer::BeginSspEpoch(int num_workers,
                                    int64_t staleness_bound) {
  BeginSspEpochAt(num_workers, staleness_bound,
                  std::vector<int64_t>(num_workers, 0), /*committed=*/0);
}

void ParameterServer::BeginSspEpochAt(int num_workers,
                                      int64_t staleness_bound,
                                      std::vector<int64_t> clocks,
                                      int64_t committed) {
  common::MutexLock lock(&ssp_mu_);
  AGL_CHECK_GT(num_workers, 0);
  AGL_CHECK_GE(staleness_bound, 0);
  AGL_CHECK_EQ(static_cast<int>(clocks.size()), num_workers);
  AGL_CHECK_GE(committed, 0);
  for (int64_t c : clocks) {
    // A clock below the committed watermark would re-buffer ticks that
    // were already applied; a checkpoint barrier never produces one.
    AGL_CHECK_GE(c, committed);
  }
  ssp_.active = true;
  ssp_.cancelled = false;
  ssp_.bound = staleness_bound;
  ssp_.clock = std::move(clocks);
  ssp_.finished.assign(num_workers, false);
  ssp_.committed = committed;
  ssp_.pending.clear();
}

int64_t ParameterServer::MinActiveClockLocked() const {
  int64_t min_clock = std::numeric_limits<int64_t>::max();
  int64_t max_clock = 0;
  bool any_active = false;
  for (std::size_t w = 0; w < ssp_.clock.size(); ++w) {
    max_clock = std::max(max_clock, ssp_.clock[w]);
    if (!ssp_.finished[w]) {
      any_active = true;
      min_clock = std::min(min_clock, ssp_.clock[w]);
    }
  }
  return any_active ? min_clock : max_clock;
}

void ParameterServer::CommitReadyLocked() {
  const int64_t target = MinActiveClockLocked();
  while (ssp_.committed < target) {
    auto it = ssp_.pending.find(ssp_.committed);
    if (it != ssp_.pending.end()) {
      // Average the tick's gradients exactly like the BSP round reducer:
      // contributions summed in worker order, scaled by 1/contributors,
      // then one optimizer step per key. This is what makes bound 0
      // reproduce kBsp bit-for-bit.
      std::map<std::string, tensor::Tensor> avg;
      int contributors = 0;
      for (auto& [worker, grads] : it->second) {
        if (grads.empty()) continue;
        ++contributors;
        for (auto& [key, g] : grads) {
          auto slot = avg.find(key);
          if (slot == avg.end()) {
            // The pending buffer dies with the erase below, so the first
            // contribution can be moved rather than copied.
            avg.emplace(key, std::move(g));
          } else {
            slot->second.Add(g);
          }
        }
      }
      ssp_.pending.erase(it);
      if (contributors > 0) {
        for (auto& [key, g] : avg) {
          g.Scale(1.f / static_cast<float>(contributors));
        }
        ApplyUpdate(avg);
        ssp_commits_++;
      }
    }
    ssp_.committed++;
  }
}

agl::Status ParameterServer::WaitAtSspGateLocked(int worker) {
  if (!ssp_.active) {
    return agl::Status::FailedPrecondition("no SSP epoch in progress");
  }
  if (worker < 0 || worker >= static_cast<int>(ssp_.clock.size())) {
    return agl::Status::InvalidArgument("bad SSP worker id");
  }
  bool counted_wait = false;
  while (true) {
    if (ssp_.cancelled) {
      return agl::Status::Aborted("SSP epoch cancelled");
    }
    if (!ssp_.active) {
      // EndSspEpoch disarmed the layer while we were parked.
      return agl::Status::FailedPrecondition("SSP epoch ended");
    }
    // A finished worker (excluded from the minimum) can sit below it;
    // clamp so the histogram never sees a negative bucket.
    const int64_t skew =
        std::max<int64_t>(0, ssp_.clock[worker] - MinActiveClockLocked());
    if (skew <= ssp_.bound) {
      ssp_pulls_++;
      ssp_max_staleness_ = std::max(ssp_max_staleness_, skew);
      ssp_hist_[std::min<int64_t>(skew, kStalenessBuckets - 1)]++;
      return agl::Status::OK();
    }
    if (!counted_wait) {
      // Counted when the wait engages so watchers can observe a worker
      // parked at the gate.
      counted_wait = true;
      ssp_waits_++;
    }
    ssp_cv_.Wait(&ssp_mu_);
  }
}

agl::Result<std::map<std::string, tensor::Tensor>> ParameterServer::PullSsp(
    int worker) {
  // Failpoint "ps.pull": fail the pull before parking at the gate.
  AGL_RETURN_IF_ERROR(fail::MaybeFail("ps.pull"));
  {
    common::MutexLock lock(&ssp_mu_);
    AGL_RETURN_IF_ERROR(WaitAtSspGateLocked(worker));
  }
  return PullAll();
}

agl::Status ParameterServer::PushSsp(
    int worker, std::map<std::string, tensor::Tensor> grads) {
  // Failpoint "ps.push": reject before buffering; the worker's clock does
  // not advance, so a retried push lands on the same tick.
  AGL_RETURN_IF_ERROR(fail::MaybeFail("ps.push"));
  {
    common::MutexLock lock(&ssp_mu_);
    if (!ssp_.active) {
      return agl::Status::FailedPrecondition("no SSP epoch in progress");
    }
    if (worker < 0 || worker >= static_cast<int>(ssp_.clock.size())) {
      return agl::Status::InvalidArgument("bad SSP worker id");
    }
    if (ssp_.cancelled) return agl::Status::Aborted("SSP epoch cancelled");
    if (ssp_.finished[worker]) {
      return agl::Status::FailedPrecondition("push from finished worker");
    }
    AGL_RETURN_IF_ERROR(ValidateGradients(grads));
    // Traffic is accounted at receipt; the optimizer applies at commit.
    ssp_pushes_ += static_cast<int64_t>(grads.size());
    for (const auto& [key, g] : grads) {
      ssp_bytes_pushed_ += g.size() * static_cast<int64_t>(sizeof(float));
    }
    const int64_t tick = ssp_.clock[worker];
    ssp_.pending[tick].emplace(worker, std::move(grads));
    ssp_.clock[worker]++;
    CommitReadyLocked();
  }
  ssp_cv_.SignalAll();
  return agl::Status::OK();
}

void ParameterServer::FinishSspWorker(int worker) {
  {
    common::MutexLock lock(&ssp_mu_);
    if (!ssp_.active || worker < 0 ||
        worker >= static_cast<int>(ssp_.finished.size())) {
      return;
    }
    if (ssp_.finished[worker]) return;
    ssp_.finished[worker] = true;
    if (!ssp_.cancelled) CommitReadyLocked();
  }
  ssp_cv_.SignalAll();
}

void ParameterServer::CancelSsp() {
  {
    common::MutexLock lock(&ssp_mu_);
    if (!ssp_.active) return;
    ssp_.cancelled = true;
    ssp_.pending.clear();
  }
  ssp_cv_.SignalAll();
}

void ParameterServer::EndSspEpoch() {
  {
    common::MutexLock lock(&ssp_mu_);
    ssp_.active = false;
    ssp_.pending.clear();
  }
  // A pull still parked at the gate must fail out, not hang: the clocks
  // it is waiting on are gone.
  ssp_cv_.SignalAll();
}

int64_t ParameterServer::NumParameters() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    n += static_cast<int64_t>(shard->entries.size());
  }
  return n;
}

ServerStats ParameterServer::stats() const {
  ServerStats s;
  for (const auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    s.pulls += shard->pulls;
    s.pushes += shard->pushes;
    s.bytes_pulled += shard->bytes_pulled;
    s.bytes_pushed += shard->bytes_pushed;
  }
  common::MutexLock lock(&ssp_mu_);
  s.pushes += ssp_pushes_;
  s.bytes_pushed += ssp_bytes_pushed_;
  s.ssp_pulls = ssp_pulls_;
  s.ssp_waits = ssp_waits_;
  s.ssp_commits = ssp_commits_;
  s.max_staleness = ssp_max_staleness_;
  s.staleness_hist = ssp_hist_;
  return s;
}

}  // namespace agl::ps
