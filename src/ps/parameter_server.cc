#include "ps/parameter_server.h"

#include "common/logging.h"

namespace agl::ps {

ParameterServer::ParameterServer(const ServerOptions& options)
    : options_(options) {
  const int n = std::max(1, options_.num_shards);
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::size_t ParameterServer::ShardOf(const std::string& key) const {
  uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h % shards_.size();
}

void ParameterServer::Initialize(
    const std::map<std::string, tensor::Tensor>& state) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
  }
  for (const auto& [key, value] : state) {
    Shard& shard = *shards_[ShardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries[key] = Entry{value, nn::AdamState{}};
  }
}

std::map<std::string, tensor::Tensor> ParameterServer::PullAll() const {
  std::map<std::string, tensor::Tensor> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->entries) {
      out.emplace(key, entry.value);
      shard->pulls++;
      shard->bytes_pulled +=
          entry.value.size() * static_cast<int64_t>(sizeof(float));
    }
  }
  return out;
}

agl::Status ParameterServer::PushGradients(
    const std::map<std::string, tensor::Tensor>& grads) {
  for (const auto& [key, grad] : grads) {
    Shard& shard = *shards_[ShardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      return agl::Status::NotFound("push to unknown parameter: " + key);
    }
    if (grad.rows() != it->second.value.rows() ||
        grad.cols() != it->second.value.cols()) {
      return agl::Status::InvalidArgument("gradient shape mismatch for " +
                                          key);
    }
    nn::AdamApply(options_.adam, grad, &it->second.value,
                  &it->second.opt_state);
    shard.pushes++;
    shard.bytes_pushed += grad.size() * static_cast<int64_t>(sizeof(float));
  }
  return agl::Status::OK();
}

int64_t ParameterServer::NumParameters() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += static_cast<int64_t>(shard->entries.size());
  }
  return n;
}

ServerStats ParameterServer::stats() const {
  ServerStats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.pulls += shard->pulls;
    s.pushes += shard->pushes;
    s.bytes_pulled += shard->bytes_pulled;
    s.bytes_pushed += shard->bytes_pushed;
  }
  return s;
}

}  // namespace agl::ps
