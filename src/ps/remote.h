// RemotePsClient: a PsClient whose every call becomes one request frame
// to a PsServer and one response frame back, over a small pool of
// loopback connections (one acquired per in-flight call). Pooling
// matters for SSP: a PullSsp parked at the server's clock gate keeps its
// connection blocked, and the CancelSsp that must release it travels on
// a different connection.
//
// Transport failures (server process gone, connection reset) surface as
// kUnavailable — the retryable class the driver maps to a PS restart.

#pragma once

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/net.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "ps/client.h"
#include "ps/wire.h"

namespace agl::ps {

/// Client-side transport counters (requests = completed round trips).
struct ClientTransportStats {
  int64_t requests = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t connections_opened = 0;
  /// Calls that failed at the transport layer (before a response landed).
  int64_t transport_errors = 0;
};

class RemotePsClient : public PsClient {
 public:
  struct Options {
    int connect_timeout_ms = 10000;
  };

  explicit RemotePsClient(int port);
  RemotePsClient(int port, Options options);

  agl::Status Initialize(
      const std::map<std::string, tensor::Tensor>& state) override;
  agl::Result<std::map<std::string, ExportedParam>> ExportState() override;
  agl::Status ImportState(std::map<std::string, ExportedParam> state) override;
  agl::Status BeginSspEpoch(int num_workers, int64_t staleness_bound) override;
  agl::Status BeginSspEpochAt(int num_workers, int64_t staleness_bound,
                              std::vector<int64_t> clocks,
                              int64_t committed) override;
  agl::Status EndSspEpoch() override;
  agl::Result<int64_t> NumParameters() override;
  agl::Result<ServerStats> Stats() override;

  agl::Result<std::map<std::string, tensor::Tensor>> PullAll() override;
  agl::Status PushGradients(
      const std::map<std::string, tensor::Tensor>& grads) override;
  agl::Result<std::map<std::string, tensor::Tensor>> PullSsp(
      int worker) override;
  agl::Status PushSsp(int worker,
                      std::map<std::string, tensor::Tensor> grads) override;
  agl::Status FinishSspWorker(int worker) override;
  agl::Status CancelSsp() override;

  /// Asks the server to stop accepting and exit its serve loop (the
  /// driver's orderly PS teardown).
  agl::Status Shutdown();

  ClientTransportStats transport_stats() const;

 private:
  /// One round trip on a pooled connection. The returned response's
  /// `status` is the server-side outcome; a non-OK Result is a transport
  /// or protocol failure.
  agl::Result<PsResponse> Call(const PsRequest& req);

  int port_;
  Options options_;
  mutable common::Mutex mu_;
  std::vector<common::Socket> idle_ GUARDED_BY(mu_);
  ClientTransportStats stats_ GUARDED_BY(mu_);
};

}  // namespace agl::ps
