#include "ps/client.h"

#include <utility>

namespace agl::ps {

agl::Status LocalPsClient::Initialize(
    const std::map<std::string, tensor::Tensor>& state) {
  server_->Initialize(state);
  return agl::Status::OK();
}

agl::Result<std::map<std::string, ExportedParam>>
LocalPsClient::ExportState() {
  return server_->ExportState();
}

agl::Status LocalPsClient::ImportState(
    std::map<std::string, ExportedParam> state) {
  server_->ImportState(std::move(state));
  return agl::Status::OK();
}

agl::Status LocalPsClient::BeginSspEpoch(int num_workers,
                                         int64_t staleness_bound) {
  server_->BeginSspEpoch(num_workers, staleness_bound);
  return agl::Status::OK();
}

agl::Status LocalPsClient::BeginSspEpochAt(int num_workers,
                                           int64_t staleness_bound,
                                           std::vector<int64_t> clocks,
                                           int64_t committed) {
  server_->BeginSspEpochAt(num_workers, staleness_bound, std::move(clocks),
                           committed);
  return agl::Status::OK();
}

agl::Status LocalPsClient::EndSspEpoch() {
  server_->EndSspEpoch();
  return agl::Status::OK();
}

agl::Result<int64_t> LocalPsClient::NumParameters() {
  return server_->NumParameters();
}

agl::Result<ServerStats> LocalPsClient::Stats() { return server_->stats(); }

agl::Result<std::map<std::string, tensor::Tensor>> LocalPsClient::PullAll() {
  return server_->PullAll();
}

agl::Status LocalPsClient::PushGradients(
    const std::map<std::string, tensor::Tensor>& grads) {
  return server_->PushGradients(grads);
}

agl::Result<std::map<std::string, tensor::Tensor>> LocalPsClient::PullSsp(
    int worker) {
  return server_->PullSsp(worker);
}

agl::Status LocalPsClient::PushSsp(int worker,
                                   std::map<std::string, tensor::Tensor> grads) {
  return server_->PushSsp(worker, std::move(grads));
}

agl::Status LocalPsClient::FinishSspWorker(int worker) {
  server_->FinishSspWorker(worker);
  return agl::Status::OK();
}

agl::Status LocalPsClient::CancelSsp() {
  server_->CancelSsp();
  return agl::Status::OK();
}

}  // namespace agl::ps
