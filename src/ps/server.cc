#include "ps/server.h"

#include <utility>

#include "ps/wire.h"

namespace agl::ps {
namespace {

/// Validates the BeginSspEpoch* preconditions that the in-process server
/// enforces with CHECKs — a malformed remote request must become an error
/// response, not a dead PS process.
agl::Status ValidateBeginSsp(const PsRequest& req) {
  if (req.num_workers <= 0) {
    return agl::Status::InvalidArgument("BeginSspEpoch: num_workers <= 0");
  }
  if (req.staleness_bound < 0) {
    return agl::Status::InvalidArgument("BeginSspEpoch: negative bound");
  }
  if (req.op == PsOp::kBeginSspEpochAt) {
    if (static_cast<int>(req.clocks.size()) != req.num_workers) {
      return agl::Status::InvalidArgument(
          "BeginSspEpochAt: clocks/num_workers mismatch");
    }
    if (req.committed < 0) {
      return agl::Status::InvalidArgument("BeginSspEpochAt: committed < 0");
    }
    for (int64_t c : req.clocks) {
      if (c < req.committed) {
        return agl::Status::InvalidArgument(
            "BeginSspEpochAt: clock precedes committed watermark");
      }
    }
  }
  return agl::Status::OK();
}

PsResponse Handle(ParameterServer* ps, PsRequest req, bool* shutdown) {
  PsResponse resp;
  switch (req.op) {
    case PsOp::kInitialize:
      ps->Initialize(req.tensors);
      break;
    case PsOp::kPullAll:
      resp.tensors = ps->PullAll();
      break;
    case PsOp::kPushGradients:
      resp.status = ps->PushGradients(req.tensors);
      break;
    case PsOp::kBeginSspEpoch:
      resp.status = ValidateBeginSsp(req);
      if (resp.status.ok()) {
        ps->BeginSspEpoch(req.num_workers, req.staleness_bound);
      }
      break;
    case PsOp::kBeginSspEpochAt:
      resp.status = ValidateBeginSsp(req);
      if (resp.status.ok()) {
        ps->BeginSspEpochAt(req.num_workers, req.staleness_bound,
                            std::move(req.clocks), req.committed);
      }
      break;
    case PsOp::kPullSsp: {
      auto snapshot = ps->PullSsp(req.worker);
      if (snapshot.ok()) {
        resp.tensors = *std::move(snapshot);
      } else {
        resp.status = snapshot.status();
      }
      break;
    }
    case PsOp::kPushSsp:
      resp.status = ps->PushSsp(req.worker, std::move(req.tensors));
      break;
    case PsOp::kFinishSspWorker:
      ps->FinishSspWorker(req.worker);
      break;
    case PsOp::kCancelSsp:
      ps->CancelSsp();
      break;
    case PsOp::kEndSspEpoch:
      ps->EndSspEpoch();
      break;
    case PsOp::kExportState:
      resp.exported = ps->ExportState();
      break;
    case PsOp::kImportState:
      ps->ImportState(std::move(req.exported));
      break;
    case PsOp::kNumParameters:
      resp.num_parameters = ps->NumParameters();
      break;
    case PsOp::kStats:
      resp.stats = ps->stats();
      break;
    case PsOp::kShutdown:
      *shutdown = true;
      break;
  }
  return resp;
}

}  // namespace

agl::Status PsServer::Start() {
  AGL_ASSIGN_OR_RETURN(listener_, common::Listener::Loopback());
  {
    common::MutexLock lock(&mu_);
    started_ = true;
    stopping_ = false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return agl::Status::OK();
}

bool PsServer::running() const {
  common::MutexLock lock(&mu_);
  return started_ && !stopping_;
}

void PsServer::AcceptLoop() {
  while (true) {
    auto sock = listener_.Accept();
    if (!sock.ok()) return;  // listener closed — shutdown
    common::MutexLock lock(&mu_);
    if (stopping_) return;
    stats_.connections++;
    conns_.push_back(std::make_unique<common::Socket>(std::move(*sock)));
    const std::size_t slot = conns_.size() - 1;
    conn_threads_.emplace_back([this, slot] { Serve(slot); });
  }
}

void PsServer::Serve(std::size_t slot) {
  common::Socket* sock;
  {
    common::MutexLock lock(&mu_);
    sock = conns_[slot].get();
  }
  while (true) {
    auto frame = sock->ReadFrame();
    if (!frame.ok()) return;  // peer gone (or Stop closed us)
    PsResponse resp;
    bool shutdown = false;
    auto req = DecodePsRequest(*frame);
    if (!req.ok()) {
      resp.status = req.status();
    } else {
      resp = Handle(server_, *std::move(req), &shutdown);
    }
    const std::string out = EncodePsResponse(resp);
    const agl::Status write = sock->WriteFrame(out);
    {
      common::MutexLock lock(&mu_);
      stats_.requests++;
      stats_.bytes_received += static_cast<int64_t>(frame->size()) + 4;
      stats_.bytes_sent += static_cast<int64_t>(out.size()) + 4;
      if (!resp.status.ok()) stats_.failed_requests++;
    }
    if (shutdown) {
      // Reply already sent; tear the server down from outside the
      // connection threads so this thread stays joinable.
      {
        common::MutexLock lock(&mu_);
        stopping_ = true;
      }
      listener_.Close();
      shutdown_cv_.SignalAll();
      return;
    }
    if (!write.ok()) return;
  }
}

void PsServer::Stop() {
  std::thread accept;
  std::vector<std::thread> conn_threads;
  {
    common::MutexLock lock(&mu_);
    if (!started_) return;
    stopping_ = true;
    accept = std::move(accept_thread_);
    conn_threads = std::move(conn_threads_);
    conn_threads_.clear();
    // Wake every blocked ReadFrame; a handler parked inside PullSsp is
    // released by the CancelSsp below.
    for (auto& conn : conns_) conn->Close();
  }
  listener_.Close();
  server_->CancelSsp();
  shutdown_cv_.SignalAll();
  if (accept.joinable()) accept.join();
  for (std::thread& t : conn_threads) {
    if (t.joinable()) t.join();
  }
  common::MutexLock lock(&mu_);
  started_ = false;
  conns_.clear();
}

void PsServer::AwaitShutdown() {
  common::MutexLock lock(&mu_);
  while (!stopping_) shutdown_cv_.Wait(&mu_);
}

PsTransportStats PsServer::transport_stats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

}  // namespace agl::ps
