// The parameter-server wire protocol: pure encode/decode of the request
// and response frames RemotePsClient and PsServer move over
// common::Socket. One request frame = one operation = one response frame
// (strict request/response alternation per connection, no pipelining).
//
// Framing is the transport's job (4-byte length prefix, common/net.h);
// this layer only defines the payload bytes: a 1-byte opcode followed by
// the operation fields in io::BufferWriter encoding. State dicts ride as
// nn::SerializeStateDict strings — the exact bytes the checkpoint and
// serve paths already use — so a pulled snapshot is bit-identical to the
// in-process map and the trained model cannot diverge across transports.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "ps/parameter_server.h"
#include "tensor/tensor.h"

namespace agl::ps {

/// Operation selector, the first byte of every request frame.
enum class PsOp : uint8_t {
  kInitialize = 1,
  kPullAll = 2,
  kPushGradients = 3,
  kBeginSspEpoch = 4,
  kBeginSspEpochAt = 5,
  kPullSsp = 6,
  kPushSsp = 7,
  kFinishSspWorker = 8,
  kCancelSsp = 9,
  kEndSspEpoch = 10,
  kExportState = 11,
  kImportState = 12,
  kNumParameters = 13,
  kStats = 14,
  /// Orderly server teardown: the server replies OK, then stops accepting.
  kShutdown = 15,
};

const char* PsOpName(PsOp op);

/// One decoded request. Unused fields stay at their defaults; every field
/// is always encoded, so decoding is opcode-independent.
struct PsRequest {
  PsOp op = PsOp::kPullAll;
  int worker = 0;
  int num_workers = 0;
  int64_t staleness_bound = 0;
  std::vector<int64_t> clocks;
  int64_t committed = 0;
  std::map<std::string, tensor::Tensor> tensors;   // grads / initial state
  std::map<std::string, ExportedParam> exported;   // ImportState payload
};

/// One decoded response: the server-side operation outcome plus whatever
/// payload the operation produces.
struct PsResponse {
  agl::Status status;
  std::map<std::string, tensor::Tensor> tensors;   // PullAll / PullSsp
  std::map<std::string, ExportedParam> exported;   // ExportState
  int64_t num_parameters = 0;
  ServerStats stats;
};

std::string EncodePsRequest(const PsRequest& req);
agl::Result<PsRequest> DecodePsRequest(const std::string& frame);

std::string EncodePsResponse(const PsResponse& resp);
agl::Result<PsResponse> DecodePsResponse(const std::string& frame);

/// (De)serialization of an ExportState snapshot — also used by the driver
/// to park PS state on the DFS between epoch attempts.
std::string SerializeExportedState(
    const std::map<std::string, ExportedParam>& state);
agl::Result<std::map<std::string, ExportedParam>> ParseExportedState(
    const std::string& bytes);

}  // namespace agl::ps
