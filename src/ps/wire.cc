#include "ps/wire.h"

#include <cstring>
#include <utility>

#include "io/codec.h"
#include "nn/state_io.h"

namespace agl::ps {
namespace {

void PutTensor(io::BufferWriter* w, const tensor::Tensor& t) {
  w->PutVarint64(static_cast<uint64_t>(t.rows()));
  w->PutVarint64(static_cast<uint64_t>(t.cols()));
  w->PutFloatArray(std::vector<float>(t.data(), t.data() + t.size()));
}

agl::Status GetTensor(io::BufferReader* r, tensor::Tensor* out) {
  uint64_t rows = 0, cols = 0;
  AGL_RETURN_IF_ERROR(r->GetVarint64(&rows));
  AGL_RETURN_IF_ERROR(r->GetVarint64(&cols));
  std::vector<float> data;
  AGL_RETURN_IF_ERROR(r->GetFloatArray(&data));
  if (data.size() != rows * cols) {
    return agl::Status::Corruption("ps wire: tensor size mismatch");
  }
  if (rows == 0 || cols == 0) {
    *out = tensor::Tensor();
    return agl::Status::OK();
  }
  tensor::Tensor t(static_cast<int64_t>(rows), static_cast<int64_t>(cols));
  std::memcpy(t.data(), data.data(), data.size() * sizeof(float));
  *out = std::move(t);
  return agl::Status::OK();
}

agl::Result<std::map<std::string, tensor::Tensor>> GetStateDict(
    io::BufferReader* r) {
  std::string bytes;
  AGL_RETURN_IF_ERROR(r->GetString(&bytes));
  if (bytes.empty()) return std::map<std::string, tensor::Tensor>();
  return nn::ParseStateDict(bytes);
}

void PutStateDict(io::BufferWriter* w,
                  const std::map<std::string, tensor::Tensor>& state) {
  w->PutString(state.empty() ? std::string() : nn::SerializeStateDict(state));
}

}  // namespace

const char* PsOpName(PsOp op) {
  switch (op) {
    case PsOp::kInitialize: return "Initialize";
    case PsOp::kPullAll: return "PullAll";
    case PsOp::kPushGradients: return "PushGradients";
    case PsOp::kBeginSspEpoch: return "BeginSspEpoch";
    case PsOp::kBeginSspEpochAt: return "BeginSspEpochAt";
    case PsOp::kPullSsp: return "PullSsp";
    case PsOp::kPushSsp: return "PushSsp";
    case PsOp::kFinishSspWorker: return "FinishSspWorker";
    case PsOp::kCancelSsp: return "CancelSsp";
    case PsOp::kEndSspEpoch: return "EndSspEpoch";
    case PsOp::kExportState: return "ExportState";
    case PsOp::kImportState: return "ImportState";
    case PsOp::kNumParameters: return "NumParameters";
    case PsOp::kStats: return "Stats";
    case PsOp::kShutdown: return "Shutdown";
  }
  return "Unknown";
}

std::string SerializeExportedState(
    const std::map<std::string, ExportedParam>& state) {
  io::BufferWriter w;
  w.PutVarint64(state.size());
  for (const auto& [name, param] : state) {
    w.PutString(name);
    PutTensor(&w, param.value);
    w.PutVarint64(static_cast<uint64_t>(param.opt_state.t));
    PutTensor(&w, param.opt_state.m);
    PutTensor(&w, param.opt_state.v);
  }
  return w.Release();
}

agl::Result<std::map<std::string, ExportedParam>> ParseExportedState(
    const std::string& bytes) {
  io::BufferReader r(bytes);
  uint64_t n = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&n));
  std::map<std::string, ExportedParam> state;
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    AGL_RETURN_IF_ERROR(r.GetString(&name));
    ExportedParam param;
    AGL_RETURN_IF_ERROR(GetTensor(&r, &param.value));
    uint64_t t = 0;
    AGL_RETURN_IF_ERROR(r.GetVarint64(&t));
    param.opt_state.t = static_cast<int64_t>(t);
    AGL_RETURN_IF_ERROR(GetTensor(&r, &param.opt_state.m));
    AGL_RETURN_IF_ERROR(GetTensor(&r, &param.opt_state.v));
    state.emplace(std::move(name), std::move(param));
  }
  if (!r.AtEnd()) {
    return agl::Status::Corruption("ps wire: trailing bytes in export");
  }
  return state;
}

std::string EncodePsRequest(const PsRequest& req) {
  io::BufferWriter w;
  w.PutVarint64(static_cast<uint64_t>(req.op));
  w.PutVarint64Signed(req.worker);
  w.PutVarint64Signed(req.num_workers);
  w.PutVarint64Signed(req.staleness_bound);
  w.PutVarint64(req.clocks.size());
  for (int64_t c : req.clocks) w.PutVarint64Signed(c);
  w.PutVarint64Signed(req.committed);
  PutStateDict(&w, req.tensors);
  w.PutString(req.exported.empty() ? std::string()
                                   : SerializeExportedState(req.exported));
  return w.Release();
}

agl::Result<PsRequest> DecodePsRequest(const std::string& frame) {
  io::BufferReader r(frame);
  PsRequest req;
  uint64_t op = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&op));
  if (op < static_cast<uint64_t>(PsOp::kInitialize) ||
      op > static_cast<uint64_t>(PsOp::kShutdown)) {
    return agl::Status::Corruption("ps wire: unknown opcode " +
                                   std::to_string(op));
  }
  req.op = static_cast<PsOp>(op);
  int64_t worker = 0, num_workers = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&worker));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&num_workers));
  req.worker = static_cast<int>(worker);
  req.num_workers = static_cast<int>(num_workers);
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&req.staleness_bound));
  uint64_t num_clocks = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&num_clocks));
  if (num_clocks > r.remaining()) {
    return agl::Status::Corruption("ps wire: clock count overflows");
  }
  req.clocks.reserve(num_clocks);
  for (uint64_t i = 0; i < num_clocks; ++i) {
    int64_t c = 0;
    AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&c));
    req.clocks.push_back(c);
  }
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&req.committed));
  AGL_ASSIGN_OR_RETURN(req.tensors, GetStateDict(&r));
  std::string exported;
  AGL_RETURN_IF_ERROR(r.GetString(&exported));
  if (!exported.empty()) {
    AGL_ASSIGN_OR_RETURN(req.exported, ParseExportedState(exported));
  }
  if (!r.AtEnd()) {
    return agl::Status::Corruption("ps wire: trailing bytes in request");
  }
  return req;
}

std::string EncodePsResponse(const PsResponse& resp) {
  io::BufferWriter w;
  w.PutVarint64(static_cast<uint64_t>(resp.status.code()));
  w.PutString(resp.status.message());
  PutStateDict(&w, resp.tensors);
  w.PutString(resp.exported.empty() ? std::string()
                                    : SerializeExportedState(resp.exported));
  w.PutVarint64Signed(resp.num_parameters);
  const ServerStats& s = resp.stats;
  w.PutVarint64Signed(s.pulls);
  w.PutVarint64Signed(s.pushes);
  w.PutVarint64Signed(s.bytes_pulled);
  w.PutVarint64Signed(s.bytes_pushed);
  w.PutVarint64Signed(s.ssp_pulls);
  w.PutVarint64Signed(s.ssp_waits);
  w.PutVarint64Signed(s.ssp_commits);
  w.PutVarint64Signed(s.max_staleness);
  w.PutVarint64(s.staleness_hist.size());
  for (int64_t b : s.staleness_hist) w.PutVarint64Signed(b);
  return w.Release();
}

agl::Result<PsResponse> DecodePsResponse(const std::string& frame) {
  io::BufferReader r(frame);
  PsResponse resp;
  uint64_t code = 0;
  std::string message;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&code));
  AGL_RETURN_IF_ERROR(r.GetString(&message));
  if (code > static_cast<uint64_t>(agl::StatusCode::kInternal)) {
    return agl::Status::Corruption("ps wire: unknown status code " +
                                   std::to_string(code));
  }
  resp.status =
      agl::Status(static_cast<agl::StatusCode>(code), std::move(message));
  AGL_ASSIGN_OR_RETURN(resp.tensors, GetStateDict(&r));
  std::string exported;
  AGL_RETURN_IF_ERROR(r.GetString(&exported));
  if (!exported.empty()) {
    AGL_ASSIGN_OR_RETURN(resp.exported, ParseExportedState(exported));
  }
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&resp.num_parameters));
  ServerStats& s = resp.stats;
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&s.pulls));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&s.pushes));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&s.bytes_pulled));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&s.bytes_pushed));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&s.ssp_pulls));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&s.ssp_waits));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&s.ssp_commits));
  AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&s.max_staleness));
  uint64_t hist = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&hist));
  if (hist > r.remaining()) {
    return agl::Status::Corruption("ps wire: histogram size overflows");
  }
  s.staleness_hist.resize(hist);
  for (uint64_t i = 0; i < hist; ++i) {
    AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&s.staleness_hist[i]));
  }
  if (!r.AtEnd()) {
    return agl::Status::Corruption("ps wire: trailing bytes in response");
  }
  return resp;
}

}  // namespace agl::ps
