// The transport-neutral face of the parameter server. The trainer's
// workers and control loop talk to a PsClient; whether that resolves to a
// direct method call on an in-process ParameterServer (LocalPsClient, the
// single-process fast path) or to length-prefixed frames over a loopback
// socket into another OS process (RemotePsClient, ps/remote.h) is the
// execution substrate's choice — the arithmetic, the SSP clock protocol,
// and therefore the trained bytes are identical either way.
//
// Every operation returns Status/Result so transport loss (a killed PS or
// worker process) surfaces as kUnavailable — the retryable class the
// driver's classified-retry policy maps onto process restarts.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "ps/parameter_server.h"
#include "tensor/tensor.h"

namespace agl::ps {

class PsClient {
 public:
  virtual ~PsClient() = default;

  // --- Control plane (driver / train loop) --------------------------------
  virtual agl::Status Initialize(
      const std::map<std::string, tensor::Tensor>& state) = 0;
  virtual agl::Result<std::map<std::string, ExportedParam>> ExportState() = 0;
  virtual agl::Status ImportState(
      std::map<std::string, ExportedParam> state) = 0;
  virtual agl::Status BeginSspEpoch(int num_workers,
                                    int64_t staleness_bound) = 0;
  virtual agl::Status BeginSspEpochAt(int num_workers, int64_t staleness_bound,
                                      std::vector<int64_t> clocks,
                                      int64_t committed) = 0;
  virtual agl::Status EndSspEpoch() = 0;
  virtual agl::Result<int64_t> NumParameters() = 0;
  virtual agl::Result<ServerStats> Stats() = 0;

  // --- Data plane (workers) -----------------------------------------------
  virtual agl::Result<std::map<std::string, tensor::Tensor>> PullAll() = 0;
  virtual agl::Status PushGradients(
      const std::map<std::string, tensor::Tensor>& grads) = 0;
  virtual agl::Result<std::map<std::string, tensor::Tensor>> PullSsp(
      int worker) = 0;
  virtual agl::Status PushSsp(int worker,
                              std::map<std::string, tensor::Tensor> grads) = 0;
  virtual agl::Status FinishSspWorker(int worker) = 0;
  virtual agl::Status CancelSsp() = 0;
};

/// The loopback: direct calls into an in-process ParameterServer. Never
/// fails with transport errors; the Status returns just forward the
/// server's own results.
class LocalPsClient : public PsClient {
 public:
  explicit LocalPsClient(ParameterServer* server) : server_(server) {}

  agl::Status Initialize(
      const std::map<std::string, tensor::Tensor>& state) override;
  agl::Result<std::map<std::string, ExportedParam>> ExportState() override;
  agl::Status ImportState(std::map<std::string, ExportedParam> state) override;
  agl::Status BeginSspEpoch(int num_workers, int64_t staleness_bound) override;
  agl::Status BeginSspEpochAt(int num_workers, int64_t staleness_bound,
                              std::vector<int64_t> clocks,
                              int64_t committed) override;
  agl::Status EndSspEpoch() override;
  agl::Result<int64_t> NumParameters() override;
  agl::Result<ServerStats> Stats() override;

  agl::Result<std::map<std::string, tensor::Tensor>> PullAll() override;
  agl::Status PushGradients(
      const std::map<std::string, tensor::Tensor>& grads) override;
  agl::Result<std::map<std::string, tensor::Tensor>> PullSsp(
      int worker) override;
  agl::Status PushSsp(int worker,
                      std::map<std::string, tensor::Tensor> grads) override;
  agl::Status FinishSspWorker(int worker) override;
  agl::Status CancelSsp() override;

 private:
  ParameterServer* server_;
};

}  // namespace agl::ps
