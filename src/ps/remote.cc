#include "ps/remote.h"

#include <utility>

namespace agl::ps {
namespace {

/// Collapses a round trip whose server-side outcome is the only payload.
agl::Status StatusOnly(agl::Result<PsResponse> resp) {
  if (!resp.ok()) return resp.status();
  return resp->status;
}

}  // namespace

RemotePsClient::RemotePsClient(int port)
    : RemotePsClient(port, Options()) {}

RemotePsClient::RemotePsClient(int port, Options options)
    : port_(port), options_(options) {}

agl::Result<PsResponse> RemotePsClient::Call(const PsRequest& req) {
  common::Socket sock;
  {
    common::MutexLock lock(&mu_);
    if (!idle_.empty()) {
      sock = std::move(idle_.back());
      idle_.pop_back();
    }
  }
  if (!sock.valid()) {
    auto fresh = common::ConnectLoopback(port_, options_.connect_timeout_ms);
    if (!fresh.ok()) {
      common::MutexLock lock(&mu_);
      stats_.transport_errors++;
      return fresh.status();
    }
    sock = std::move(*fresh);
    common::MutexLock lock(&mu_);
    stats_.connections_opened++;
  }
  const std::string out = EncodePsRequest(req);
  agl::Status write = sock.WriteFrame(out);
  if (!write.ok()) {
    common::MutexLock lock(&mu_);
    stats_.transport_errors++;
    return write;  // socket dropped — a fresh one is dialed next call
  }
  auto frame = sock.ReadFrame();
  if (!frame.ok()) {
    common::MutexLock lock(&mu_);
    stats_.transport_errors++;
    return frame.status();
  }
  {
    common::MutexLock lock(&mu_);
    stats_.requests++;
    stats_.bytes_sent += static_cast<int64_t>(out.size()) + 4;
    stats_.bytes_received += static_cast<int64_t>(frame->size()) + 4;
    idle_.push_back(std::move(sock));
  }
  return DecodePsResponse(*frame);
}

agl::Status RemotePsClient::Initialize(
    const std::map<std::string, tensor::Tensor>& state) {
  PsRequest req;
  req.op = PsOp::kInitialize;
  req.tensors = state;
  return StatusOnly(Call(req));
}

agl::Result<std::map<std::string, ExportedParam>>
RemotePsClient::ExportState() {
  PsRequest req;
  req.op = PsOp::kExportState;
  AGL_ASSIGN_OR_RETURN(PsResponse resp, Call(req));
  AGL_RETURN_IF_ERROR(resp.status);
  return std::move(resp.exported);
}

agl::Status RemotePsClient::ImportState(
    std::map<std::string, ExportedParam> state) {
  PsRequest req;
  req.op = PsOp::kImportState;
  req.exported = std::move(state);
  return StatusOnly(Call(req));
}

agl::Status RemotePsClient::BeginSspEpoch(int num_workers,
                                          int64_t staleness_bound) {
  PsRequest req;
  req.op = PsOp::kBeginSspEpoch;
  req.num_workers = num_workers;
  req.staleness_bound = staleness_bound;
  return StatusOnly(Call(req));
}

agl::Status RemotePsClient::BeginSspEpochAt(int num_workers,
                                            int64_t staleness_bound,
                                            std::vector<int64_t> clocks,
                                            int64_t committed) {
  PsRequest req;
  req.op = PsOp::kBeginSspEpochAt;
  req.num_workers = num_workers;
  req.staleness_bound = staleness_bound;
  req.clocks = std::move(clocks);
  req.committed = committed;
  return StatusOnly(Call(req));
}

agl::Status RemotePsClient::EndSspEpoch() {
  PsRequest req;
  req.op = PsOp::kEndSspEpoch;
  return StatusOnly(Call(req));
}

agl::Result<int64_t> RemotePsClient::NumParameters() {
  PsRequest req;
  req.op = PsOp::kNumParameters;
  AGL_ASSIGN_OR_RETURN(PsResponse resp, Call(req));
  AGL_RETURN_IF_ERROR(resp.status);
  return resp.num_parameters;
}

agl::Result<ServerStats> RemotePsClient::Stats() {
  PsRequest req;
  req.op = PsOp::kStats;
  AGL_ASSIGN_OR_RETURN(PsResponse resp, Call(req));
  AGL_RETURN_IF_ERROR(resp.status);
  return std::move(resp.stats);
}

agl::Result<std::map<std::string, tensor::Tensor>> RemotePsClient::PullAll() {
  PsRequest req;
  req.op = PsOp::kPullAll;
  AGL_ASSIGN_OR_RETURN(PsResponse resp, Call(req));
  AGL_RETURN_IF_ERROR(resp.status);
  return std::move(resp.tensors);
}

agl::Status RemotePsClient::PushGradients(
    const std::map<std::string, tensor::Tensor>& grads) {
  PsRequest req;
  req.op = PsOp::kPushGradients;
  req.tensors = grads;
  return StatusOnly(Call(req));
}

agl::Result<std::map<std::string, tensor::Tensor>> RemotePsClient::PullSsp(
    int worker) {
  PsRequest req;
  req.op = PsOp::kPullSsp;
  req.worker = worker;
  AGL_ASSIGN_OR_RETURN(PsResponse resp, Call(req));
  AGL_RETURN_IF_ERROR(resp.status);
  return std::move(resp.tensors);
}

agl::Status RemotePsClient::PushSsp(int worker,
                                    std::map<std::string, tensor::Tensor> grads) {
  PsRequest req;
  req.op = PsOp::kPushSsp;
  req.worker = worker;
  req.tensors = std::move(grads);
  return StatusOnly(Call(req));
}

agl::Status RemotePsClient::FinishSspWorker(int worker) {
  PsRequest req;
  req.op = PsOp::kFinishSspWorker;
  req.worker = worker;
  return StatusOnly(Call(req));
}

agl::Status RemotePsClient::CancelSsp() {
  PsRequest req;
  req.op = PsOp::kCancelSsp;
  return StatusOnly(Call(req));
}

agl::Status RemotePsClient::Shutdown() {
  PsRequest req;
  req.op = PsOp::kShutdown;
  return StatusOnly(Call(req));
}

ClientTransportStats RemotePsClient::transport_stats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

}  // namespace agl::ps
