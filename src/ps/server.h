// PsServer: serves an in-process ParameterServer over the loopback frame
// transport (common/net.h) speaking the ps/wire.h protocol. One thread
// per connection, strict request/response alternation — a connection
// whose request blocks (PullSsp parked at the clock gate) holds only its
// own thread, and a CancelSsp arriving on another connection unblocks it.
//
// The server owns no parameter state; it is a transport shim in front of
// the ParameterServer the caller passes in, which keeps the in-process
// and multi-process substrates running the exact same server arithmetic.

#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/net.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "ps/parameter_server.h"

namespace agl::ps {

/// Transport-level counters of one PsServer (JSON-friendly observability
/// for `agl_cli driver`; the parameter-level counters live in
/// ServerStats).
struct PsTransportStats {
  int64_t connections = 0;
  int64_t requests = 0;
  int64_t bytes_received = 0;
  int64_t bytes_sent = 0;
  /// Requests whose handler returned a non-OK status (sent to the client
  /// as an error response — the transport itself stayed healthy).
  int64_t failed_requests = 0;
};

class PsServer {
 public:
  explicit PsServer(ParameterServer* server) : server_(server) {}
  ~PsServer() { Stop(); }

  PsServer(const PsServer&) = delete;
  PsServer& operator=(const PsServer&) = delete;

  /// Binds an ephemeral loopback port (port()) and starts the accept loop.
  agl::Status Start();

  int port() const { return listener_.port(); }

  /// True until a kShutdown request or Stop() lands.
  bool running() const;

  /// Closes the listener and every live connection, then joins all
  /// threads. Idempotent; also runs on destruction.
  void Stop();

  /// Blocks until a kShutdown request stops the server (the PS worker
  /// process's main loop).
  void AwaitShutdown();

  PsTransportStats transport_stats() const;

 private:
  void AcceptLoop();
  void Serve(std::size_t slot);

  ParameterServer* server_;
  common::Listener listener_;
  std::thread accept_thread_;

  mutable common::Mutex mu_;
  common::CondVar shutdown_cv_;
  bool started_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Connection slots; a slot's socket is closed by Stop() to unblock its
  /// thread. Slots are never reused — connections are cheap and finite in
  /// the driver's topology.
  std::vector<std::unique_ptr<common::Socket>> conns_ GUARDED_BY(mu_);
  std::vector<std::thread> conn_threads_ GUARDED_BY(mu_);
  PsTransportStats stats_ GUARDED_BY(mu_);
};

}  // namespace agl::ps
