// Sharded parameter server (the Kunpeng-style substrate of §3.3).
//
// Because GraphFlat makes every training example self-contained, the
// trainer is plain data-parallel: workers pull the current parameters,
// compute gradients on their own k-hop neighborhoods, and push gradients
// back. Servers apply the optimizer update (Adam) shard-locally. Pushes
// are applied as they arrive (asynchronous / eventual consistency), which
// is what produces the paper's Figure 7 behaviour: more workers need a few
// more epochs but converge to the same AUC.
//
// "Flexible model consistency" (§3.1/§3.3) is realised by an optional
// bounded-staleness (SSP) coordination layer on top of the same shards:
// each worker owns a logical clock that ticks once per pushed batch, and
//   * PullSsp(w) admits worker w only while it is at most
//     `staleness_bound` ticks ahead of the slowest unfinished worker
//     (blocking otherwise — the SSP read fence);
//   * gradients pushed for the same tick are buffered and committed as ONE
//     averaged optimizer update the moment every unfinished worker has
//     contributed that tick (summed in worker order, so the arithmetic is
//     deterministic).
// Bound 0 therefore reproduces bulk-synchronous training bit-for-bit.
// An unbounded staleness never blocks anybody — the schedule and PS
// traffic match the asynchronous mode — but updates still commit in tick
// order, so gradients a run-ahead worker pushes stay buffered (memory
// O(skew x model size)) and invisible until the slowest worker passes
// their tick; true eager application is what SyncMode::kAsync is for.
// (ROADMAP: spill pending ticks to the DFS for very large bounds.)

#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace agl::ps {

struct ServerOptions {
  /// Number of server shards; parameters are assigned by key hash.
  int num_shards = 4;
  /// Server-side optimizer settings (one AdamState per parameter).
  nn::Adam::Options adam;
};

/// Staleness value meaning "never block" (SSP degenerates to async).
inline constexpr int64_t kUnboundedStaleness =
    std::numeric_limits<int64_t>::max();

/// Buckets of the observed-staleness histogram (last bucket = overflow).
inline constexpr int kStalenessBuckets = 65;

/// Counters for traffic accounting (exposed to the scalability benches).
struct ServerStats {
  int64_t pulls = 0;
  int64_t pushes = 0;
  int64_t bytes_pulled = 0;
  int64_t bytes_pushed = 0;
  /// SSP coordination counters (zero unless BeginSspEpoch was used).
  int64_t ssp_pulls = 0;    // pulls admitted through the staleness gate
  int64_t ssp_waits = 0;    // pulls that had to block at the gate
  int64_t ssp_commits = 0;  // clock ticks committed (averaged updates)
  int64_t max_staleness = 0;
  /// staleness_hist[s] = pulls admitted while s ticks ahead of the
  /// slowest worker; the final bucket absorbs larger skews.
  std::vector<int64_t> staleness_hist;
};

/// One parameter's full server-side state as captured by ExportState():
/// the current value plus the Adam moments and per-key step count that
/// accompany it. Round-tripping through Import preserves the optimizer
/// trajectory bit-for-bit.
struct ExportedParam {
  tensor::Tensor value;
  nn::AdamState opt_state;
};

/// In-process sharded parameter server.
class ParameterServer {
 public:
  explicit ParameterServer(const ServerOptions& options);

  /// Registers the initial values (typically a model's StateDict). Resets
  /// any previous state.
  void Initialize(const std::map<std::string, tensor::Tensor>& state);

  /// Snapshots every parameter together with its optimizer state. Like
  /// PullAll() the snapshot is per-shard consistent; take it while no
  /// pushes are in flight (a checkpoint barrier) for an exact one.
  std::map<std::string, ExportedParam> ExportState() const;

  /// Restores a snapshot taken by ExportState(), replacing any previous
  /// parameters and optimizer state (the checkpoint/resume path).
  void ImportState(std::map<std::string, ExportedParam> state);

  /// Returns a consistent-enough snapshot of all parameters (per-shard
  /// locking; cross-shard staleness is part of the async model).
  std::map<std::string, tensor::Tensor> PullAll() const;

  /// Applies one optimizer step per pushed gradient, shard-locally.
  /// Unknown keys fail.
  agl::Status PushGradients(
      const std::map<std::string, tensor::Tensor>& grads);

  // --- Bounded-staleness (SSP) coordination -------------------------------

  /// Arms the SSP clock layer for one epoch: `num_workers` clocks at 0,
  /// staleness bound as given (0 = BSP-exact, kUnboundedStaleness = async).
  void BeginSspEpoch(int num_workers, int64_t staleness_bound);

  /// BeginSspEpoch variant for resume: restores the per-worker clocks and
  /// committed-tick watermark captured at a checkpoint barrier (where
  /// nothing was pending) instead of starting everyone at tick 0.
  /// `clocks.size()` must equal `num_workers` and no clock may precede
  /// `committed`.
  void BeginSspEpochAt(int num_workers, int64_t staleness_bound,
                       std::vector<int64_t> clocks, int64_t committed);

  /// Blocking SSP pull for `worker`: waits until the worker is within the
  /// staleness bound of the slowest unfinished worker, then snapshots the
  /// parameters. Fails with kAborted after CancelSsp() (teardown) and with
  /// kFailedPrecondition outside an SSP epoch.
  agl::Result<std::map<std::string, tensor::Tensor>> PullSsp(int worker);

  /// Buffers `worker`'s gradient for its current tick, advances the
  /// worker's clock, and commits every tick that all unfinished workers
  /// have now contributed (one averaged update per tick, summed in worker
  /// order). Traffic is accounted here; the optimizer applies at commit.
  agl::Status PushSsp(int worker,
                      std::map<std::string, tensor::Tensor> grads);

  /// Marks `worker` done for this epoch (its partition is exhausted): it
  /// stops holding back the minimum clock and later ticks commit with the
  /// remaining contributors only.
  void FinishSspWorker(int worker);

  /// Error teardown: every blocked or future PullSsp/PushSsp returns
  /// kAborted so pipeline threads can always be joined.
  void CancelSsp();

  /// Disarms the SSP layer (stats survive; clocks/pending are dropped).
  void EndSspEpoch();

  /// Number of distinct parameters.
  int64_t NumParameters() const;

  ServerStats stats() const;

 private:
  struct Entry {
    tensor::Tensor value;
    nn::AdamState opt_state;
  };
  struct Shard {
    mutable common::Mutex mu;
    std::map<std::string, Entry> entries GUARDED_BY(mu);
    mutable int64_t pulls GUARDED_BY(mu) = 0;
    int64_t pushes GUARDED_BY(mu) = 0;
    mutable int64_t bytes_pulled GUARDED_BY(mu) = 0;
    int64_t bytes_pushed GUARDED_BY(mu) = 0;
  };
  struct SspState {
    bool active = false;
    bool cancelled = false;
    int64_t bound = 0;
    std::vector<int64_t> clock;  // ticks completed per worker
    std::vector<bool> finished;
    int64_t committed = 0;  // ticks [0, committed) applied to the shards
    // tick -> (worker -> gradient set); worker order fixes the sum order.
    std::map<int64_t, std::map<int, std::map<std::string, tensor::Tensor>>>
        pending;
  };

  std::size_t ShardOf(const std::string& key) const;
  /// Applies one optimizer step per gradient without stats accounting;
  /// caller guarantees keys/shapes were validated.
  void ApplyUpdate(const std::map<std::string, tensor::Tensor>& grads);
  /// Validates that every gradient matches a registered parameter.
  agl::Status ValidateGradients(
      const std::map<std::string, tensor::Tensor>& grads) const;
  /// Smallest clock among unfinished workers (or the largest clock when
  /// everyone finished — everything pending becomes committable).
  int64_t MinActiveClockLocked() const REQUIRES(ssp_mu_);
  /// Commits every tick below the minimum active clock.
  void CommitReadyLocked() REQUIRES(ssp_mu_);
  /// The SSP read fence: blocks `worker` at the clock gate until it is
  /// within the staleness bound (accounting the pull), or fails out on
  /// cancellation / epoch end. The snapshot itself is taken unlocked by
  /// the caller — this is the locked phase of PullSsp.
  agl::Status WaitAtSspGateLocked(int worker) REQUIRES(ssp_mu_);

  ServerOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable common::Mutex ssp_mu_;
  common::CondVar ssp_cv_;
  SspState ssp_ GUARDED_BY(ssp_mu_);
  // Cumulative across epochs (merged into stats()).
  int64_t ssp_pulls_ GUARDED_BY(ssp_mu_) = 0;
  int64_t ssp_waits_ GUARDED_BY(ssp_mu_) = 0;
  int64_t ssp_commits_ GUARDED_BY(ssp_mu_) = 0;
  int64_t ssp_pushes_ GUARDED_BY(ssp_mu_) = 0;
  int64_t ssp_bytes_pushed_ GUARDED_BY(ssp_mu_) = 0;
  int64_t ssp_max_staleness_ GUARDED_BY(ssp_mu_) = 0;
  std::vector<int64_t> ssp_hist_ GUARDED_BY(ssp_mu_) =
      std::vector<int64_t>(kStalenessBuckets, 0);
};

}  // namespace agl::ps
