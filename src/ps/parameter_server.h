// Sharded parameter server (the Kunpeng-style substrate of §3.3).
//
// Because GraphFlat makes every training example self-contained, the
// trainer is plain data-parallel: workers pull the current parameters,
// compute gradients on their own k-hop neighborhoods, and push gradients
// back. Servers apply the optimizer update (Adam) shard-locally. Pushes
// are applied as they arrive (asynchronous / eventual consistency), which
// is what produces the paper's Figure 7 behaviour: more workers need a few
// more epochs but converge to the same AUC.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace agl::ps {

struct ServerOptions {
  /// Number of server shards; parameters are assigned by key hash.
  int num_shards = 4;
  /// Server-side optimizer settings (one AdamState per parameter).
  nn::Adam::Options adam;
};

/// Counters for traffic accounting (exposed to the scalability benches).
struct ServerStats {
  int64_t pulls = 0;
  int64_t pushes = 0;
  int64_t bytes_pulled = 0;
  int64_t bytes_pushed = 0;
};

/// In-process sharded parameter server.
class ParameterServer {
 public:
  explicit ParameterServer(const ServerOptions& options);

  /// Registers the initial values (typically a model's StateDict). Resets
  /// any previous state.
  void Initialize(const std::map<std::string, tensor::Tensor>& state);

  /// Returns a consistent-enough snapshot of all parameters (per-shard
  /// locking; cross-shard staleness is part of the async model).
  std::map<std::string, tensor::Tensor> PullAll() const;

  /// Applies one optimizer step per pushed gradient, shard-locally.
  /// Unknown keys fail.
  agl::Status PushGradients(
      const std::map<std::string, tensor::Tensor>& grads);

  /// Number of distinct parameters.
  int64_t NumParameters() const;

  ServerStats stats() const;

 private:
  struct Entry {
    tensor::Tensor value;
    nn::AdamState opt_state;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Entry> entries;
    mutable int64_t pulls = 0;
    int64_t pushes = 0;
    mutable int64_t bytes_pulled = 0;
    int64_t bytes_pushed = 0;
  };

  std::size_t ShardOf(const std::string& key) const;

  ServerOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace agl::ps
