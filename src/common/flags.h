// Minimal command-line flag parsing for the CLI front-ends (Figure 6's
// `GraphFlat -n node_table -e edge_table -h hops -s sampling_strategy`).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace agl {

/// Registers typed flags, then parses `argv`-style input. Flags are given
/// as `-name value` or `--name value` (bools also accept bare `--name`).
class FlagParser {
 public:
  FlagParser& AddString(const std::string& name, std::string* target,
                        std::string help = "");
  FlagParser& AddInt(const std::string& name, int64_t* target,
                     std::string help = "");
  FlagParser& AddDouble(const std::string& name, double* target,
                        std::string help = "");
  FlagParser& AddBool(const std::string& name, bool* target,
                      std::string help = "");

  /// Parses arguments (excluding argv[0]). Unknown flags are an error;
  /// non-flag positional arguments are collected into positional().
  agl::Status Parse(const std::vector<std::string>& args);
  agl::Status Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// One line per flag: "-name (type)  help [default: ...]".
  std::string Help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    void* target;
    std::string help;
    std::string default_value;
  };

  agl::Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace agl
