// Deterministic random number utilities.
//
// All stochastic components (samplers, initializers, dataset generators,
// fault injection) take an explicit Rng so experiments are reproducible.

#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace agl {

/// Thin wrapper around a 64-bit Mersenne Twister with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Draws an index in [0, weights.size()) proportionally to weights.
  std::size_t Discrete(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Samples `k` distinct indices from [0, n) (k >= n returns all of them).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives a child seed from a parent seed and a stream id (splitmix64 mix),
/// so parallel workers get decorrelated deterministic streams.
uint64_t DeriveSeed(uint64_t parent, uint64_t stream);

/// FNV-1a over a byte string. The one definition shared by the MapReduce
/// shuffle partitioner, GraphFlat's per-key seeds, and the shard plan
/// (which salts it through DeriveSeed precisely to stay decorrelated from
/// the unsalted partitioner — an assumption that holds only while everyone
/// uses this same hash).
uint64_t Fnv1aHash(const std::string& bytes);

}  // namespace agl
