// Wall-clock stopwatch and resource accounting used by the benchmark
// harnesses (Table 5 reports time-cost, CPU-cost and memory-cost).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace agl {

/// Simple monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates simulated resource costs for a distributed job, mirroring the
/// units of the paper's Table 5: CPU-cost in core*min and memory-cost in
/// GB*min. Thread-safe.
class ResourceMeter {
 public:
  /// Charges `seconds` of busy time on one core.
  void ChargeCpuSeconds(double seconds) {
    AddAtomic(&cpu_core_seconds_, seconds);
  }

  /// Charges `bytes` held for `seconds`.
  void ChargeMemory(double bytes, double seconds) {
    AddAtomic(&mem_byte_seconds_, bytes * seconds);
  }

  double cpu_core_minutes() const { return Load(&cpu_core_seconds_) / 60.0; }
  double memory_gb_minutes() const {
    return Load(&mem_byte_seconds_) / (1024.0 * 1024.0 * 1024.0) / 60.0;
  }

  void Reset() {
    cpu_core_seconds_.store(0.0);
    mem_byte_seconds_.store(0.0);
  }

 private:
  static void AddAtomic(std::atomic<double>* a, double v) {
    double cur = a->load(std::memory_order_relaxed);
    while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
  static double Load(const std::atomic<double>* a) {
    return a->load(std::memory_order_relaxed);
  }

  std::atomic<double> cpu_core_seconds_{0.0};
  std::atomic<double> mem_byte_seconds_{0.0};
};

/// Current process resident-set size in bytes (Linux; 0 if unavailable).
uint64_t CurrentRssBytes();

/// Total CPU time (user+sys) consumed by the process, in seconds.
double ProcessCpuSeconds();

}  // namespace agl
