#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace agl {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

void EmitLine(LogLevel level, const char* file, int line,
              const std::string& body) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  auto now = std::chrono::system_clock::now();
  std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf;
  localtime_r(&tt, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "%s %s %s:%d] %s\n", LevelTag(level), ts, base, line,
               body.c_str());
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    EmitLine(level_, file_, line_, stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line)
    : file_(file), line_(line) {}

FatalLogMessage::~FatalLogMessage() {
  EmitLine(LogLevel::kError, file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace agl
