#include "common/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/failpoint.h"

namespace agl::common {
namespace {

// Largest frame the transport accepts. Generous (a full exported PS state
// rides in one frame) while still rejecting garbage length prefixes from a
// desynchronized stream.
constexpr uint32_t kMaxFrameBytes = 1u << 30;

agl::Status Errno(const std::string& what) {
  return agl::Status::IoError(what + ": " + std::strerror(errno));
}

/// Full write, resuming across short writes and EINTR. Peer-gone errors
/// come back as kUnavailable so retry layers classify them as transient.
agl::Status WriteAll(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return agl::Status::Unavailable("peer closed the connection");
      }
      return Errno("socket write");
    }
    off += static_cast<std::size_t>(w);
  }
  return agl::Status::OK();
}

/// Full read; `eof_ok` distinguishes a clean close between frames from a
/// truncation inside one.
agl::Status ReadAll(int fd, char* data, std::size_t n, bool eof_ok) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return agl::Status::Unavailable("peer reset the connection");
      }
      return Errno("socket read");
    }
    if (r == 0) {
      if (eof_ok && off == 0) {
        return agl::Status::Unavailable("peer closed the connection");
      }
      return agl::Status::Unavailable("connection closed mid-frame");
    }
    off += static_cast<std::size_t>(r);
  }
  return agl::Status::OK();
}

}  // namespace

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), stats_(other.stats_) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    stats_ = other.stats_;
  }
  return *this;
}

agl::Status Socket::WriteFrame(const std::string& payload) {
  if (fd_ < 0) return agl::Status::FailedPrecondition("socket is closed");
  if (payload.size() > kMaxFrameBytes) {
    return agl::Status::InvalidArgument("frame exceeds the transport cap");
  }
  AGL_RETURN_IF_ERROR(fail::MaybeFail("rpc.send"));
  char prefix[4];
  const uint32_t n = static_cast<uint32_t>(payload.size());
  prefix[0] = static_cast<char>(n & 0xff);
  prefix[1] = static_cast<char>((n >> 8) & 0xff);
  prefix[2] = static_cast<char>((n >> 16) & 0xff);
  prefix[3] = static_cast<char>((n >> 24) & 0xff);
  AGL_RETURN_IF_ERROR(WriteAll(fd_, prefix, sizeof(prefix)));
  AGL_RETURN_IF_ERROR(WriteAll(fd_, payload.data(), payload.size()));
  stats_.frames_sent++;
  stats_.bytes_sent += static_cast<int64_t>(sizeof(prefix) + payload.size());
  return agl::Status::OK();
}

agl::Result<std::string> Socket::ReadFrame() {
  if (fd_ < 0) return agl::Status::FailedPrecondition("socket is closed");
  AGL_RETURN_IF_ERROR(fail::MaybeFail("rpc.recv"));
  char prefix[4];
  AGL_RETURN_IF_ERROR(ReadAll(fd_, prefix, sizeof(prefix), /*eof_ok=*/true));
  const uint32_t n = static_cast<uint32_t>(
      static_cast<unsigned char>(prefix[0]) |
      (static_cast<unsigned char>(prefix[1]) << 8) |
      (static_cast<unsigned char>(prefix[2]) << 16) |
      (static_cast<unsigned char>(prefix[3]) << 24));
  if (n > kMaxFrameBytes) {
    return agl::Status::Corruption("frame length prefix exceeds the cap");
  }
  std::string payload(n, '\0');
  if (n > 0) {
    AGL_RETURN_IF_ERROR(ReadAll(fd_, payload.data(), n, /*eof_ok=*/false));
  }
  stats_.frames_received++;
  stats_.bytes_received += static_cast<int64_t>(sizeof(prefix) + n);
  return payload;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

agl::Result<Listener> Listener::Loopback() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const agl::Status s = Errno("bind 127.0.0.1");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) < 0) {
    const agl::Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const agl::Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  Listener l;
  l.fd_ = fd;
  l.port_ = ntohs(addr.sin_port);
  return l;
}

agl::Result<Socket> Listener::Accept() {
  if (fd_ < 0) return agl::Status::Unavailable("listener is closed");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // Close() from another thread surfaces here as EBADF/EINVAL; report
    // it as the shutdown signal rather than an I/O failure.
    if (errno == EBADF || errno == EINVAL) {
      return agl::Status::Unavailable("listener is closed");
    }
    return Errno("accept");
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    // shutdown() wakes a concurrently-blocked accept() on Linux; close()
    // alone may leave it parked forever.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

agl::Result<Socket> ConnectLoopback(int port, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      return agl::Status::Unavailable(
          "connect 127.0.0.1:" + std::to_string(port) + " timed out");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace agl::common
