#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace agl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

bool IsRetryableError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kAborted:
    case StatusCode::kIoError:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of failed Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace agl
