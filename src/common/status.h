// Status / Result error-handling primitives for the AGL library.
//
// Library code returns Status (or Result<T>) instead of throwing across the
// public API boundary, following the style used by large C++ database systems
// (RocksDB, Arrow). Internal invariants use the CHECK macros in logging.h.

#pragma once

#include <optional>
#include <string>
#include <utility>

namespace agl {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kCorruption,
  kIoError,
  kFailedPrecondition,
  kResourceExhausted,
  kAborted,
  kUnavailable,
  kUnimplemented,
  kInternal,
};

/// Returns a short human-readable name for a StatusCode ("OK", "NotFound"...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// The OK status is cheap to construct and copy (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "<CodeName>: <message>" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// True for the transient error classes a retry loop may re-run: kAborted
/// (lost/preempted work), kIoError (flaky storage), kUnavailable (resource
/// temporarily gone). Everything else — notably kCorruption and
/// kInvalidArgument — is permanent and must fail fast.
bool IsRetryableError(const Status& status);

/// Either a value of type T or a non-OK Status explaining why there is none.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Accessing the value of a failed Result aborts.
  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfNotOk() const {
  if (!ok()) internal::DieBadResultAccess(status_);
}

}  // namespace agl

/// Propagates a non-OK status to the caller.
#define AGL_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::agl::Status _agl_status = (expr);             \
    if (!_agl_status.ok()) return _agl_status;      \
  } while (0)

/// Evaluates a Result<T> expression, assigning the value or returning the
/// error. Usage: AGL_ASSIGN_OR_RETURN(auto v, MakeV());
#define AGL_ASSIGN_OR_RETURN(decl, expr)            \
  AGL_ASSIGN_OR_RETURN_IMPL_(                       \
      AGL_STATUS_CONCAT_(_agl_result, __LINE__), decl, expr)

#define AGL_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  decl = std::move(tmp).value()

#define AGL_STATUS_CONCAT_INNER_(a, b) a##b
#define AGL_STATUS_CONCAT_(a, b) AGL_STATUS_CONCAT_INNER_(a, b)
