#include "common/subprocess.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

extern char** environ;

namespace agl::common {

agl::Result<pid_t> Spawn(const std::vector<std::string>& argv,
                         const std::vector<std::string>& extra_env) {
  if (argv.empty()) {
    return agl::Status::InvalidArgument("Spawn: empty argv");
  }
  AGL_RETURN_IF_ERROR(fail::MaybeFail("driver.spawn"));

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  // Inherited environment with extra_env appended: later entries win in
  // getenv(), so appending overrides without editing in place.
  std::vector<char*> cenv;
  for (char** e = environ; *e != nullptr; ++e) cenv.push_back(*e);
  for (const std::string& e : extra_env) {
    cenv.push_back(const_cast<char*>(e.c_str()));
  }
  cenv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return agl::Status::ResourceExhausted(
        std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execve(cargv[0], cargv.data(), cenv.data());
    // Reached only when exec failed; _exit avoids running the parent's
    // atexit handlers from the forked image.
    ::_exit(127);
  }
  return pid;
}

agl::Result<ExitStatus> Wait(pid_t pid) {
  int wstatus = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &wstatus, 0);
    if (r == pid) break;
    if (r < 0 && errno == EINTR) continue;
    return agl::Status::Internal(std::string("waitpid: ") +
                                 std::strerror(errno));
  }
  ExitStatus exit;
  if (WIFSIGNALED(wstatus)) {
    exit.signaled = true;
    exit.value = WTERMSIG(wstatus);
  } else if (WIFEXITED(wstatus)) {
    exit.value = WEXITSTATUS(wstatus);
  } else {
    return agl::Status::Internal("waitpid: child neither exited nor died");
  }
  return exit;
}

agl::Status Kill(pid_t pid, int sig) {
  if (::kill(pid, sig) == 0) return agl::Status::OK();
  if (errno == ESRCH) {
    return agl::Status::NotFound("process " + std::to_string(pid) +
                                 " is gone");
  }
  return agl::Status::Internal(std::string("kill: ") + std::strerror(errno));
}

bool IsAlive(pid_t pid) {
  if (pid <= 0) return false;
  return ::kill(pid, 0) == 0 || errno == EPERM;
}

agl::Status ClassifyExit(const ExitStatus& exit, const std::string& what) {
  if (exit.clean()) return agl::Status::OK();
  if (exit.signaled) {
    return agl::Status::Unavailable(what + " killed by signal " +
                                    std::to_string(exit.value));
  }
  return agl::Status::Internal(what + " exited with code " +
                               std::to_string(exit.value));
}

agl::Result<std::string> SelfExecutable() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n < 0) {
    return agl::Status::IoError(std::string("readlink /proc/self/exe: ") +
                                std::strerror(errno));
  }
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace agl::common
