// Clang thread-safety-analysis annotations (-Wthread-safety).
//
// These macros attach locking contracts to types, members, and functions so
// the compiler — not the reviewer — enforces them: a `GUARDED_BY(mu_)`
// member touched without `mu_` held, or a `REQUIRES(mu_)` helper called
// unlocked, is a build error on the clang CI leg (AGL_WERROR promotes
// -Wthread-safety -Wthread-safety-beta to errors). Under GCC and MSVC every
// macro expands to nothing, so annotated code stays portable.
//
// Conventions used across the tree (see README "Concurrency & static
// analysis"):
//   * every mutex-protected member carries GUARDED_BY(<its mutex>);
//   * a private helper that assumes the lock is held is named `*Locked` and
//     annotated REQUIRES(<mutex>);
//   * public entry points that take the lock themselves are annotated
//     EXCLUDES(<mutex>) when calling them locked would self-deadlock.

#pragma once

#if defined(__clang__) && !defined(SWIG)
#define AGL_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define AGL_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

// Documents that a data member is protected by the given capability
// (mutex). Reads and writes require the capability to be held.
#define GUARDED_BY(x) AGL_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Like GUARDED_BY, but for the data a pointer/smart-pointer member points
// at (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) AGL_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// The function may only be called while the listed capabilities are held;
// they are neither acquired nor released by the call.
#define REQUIRES(...) \
  AGL_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  AGL_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// The function acquires / releases the listed capabilities.
#define ACQUIRE(...) \
  AGL_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  AGL_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  AGL_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  AGL_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

// The function attempts to acquire the capability; the first argument is
// the return value that signals success.
#define TRY_ACQUIRE(...) \
  AGL_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// The function may not be called while the listed capabilities are held
// (it acquires them itself; calling locked would self-deadlock).
#define EXCLUDES(...) \
  AGL_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Declares a type to be a capability ("mutex") the analysis can track.
#define CAPABILITY(x) AGL_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Declares an RAII type whose constructor acquires and destructor releases
// a capability.
#define SCOPED_CAPABILITY AGL_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Run-time assertion that the calling thread holds the capability; tells
// the analysis to treat it as held from here on.
#define ASSERT_CAPABILITY(x) \
  AGL_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

// The function returns a reference to the given capability (lets accessors
// expose a member mutex for annotation purposes).
#define RETURN_CAPABILITY(x) AGL_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch for code the analysis cannot model (e.g. the adopt/release
// interop inside CondVar::Wait). Use sparingly and justify at the use site.
#define NO_THREAD_SAFETY_ANALYSIS \
  AGL_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
